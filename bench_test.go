// Package arlo's root benchmarks regenerate the measured quantities behind
// every table and figure of the paper's evaluation as testing.B targets:
//
//	go test -bench=. -benchmem
//
// Each benchmark corresponds to one experiment (see DESIGN.md's
// per-experiment index); full printed tables come from cmd/arlobench.
package arlo_test

import (
	"context"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/baselines"
	"arlo/internal/core"
	"arlo/internal/dispatch"
	"arlo/internal/experiments"
	"arlo/internal/model"
	"arlo/internal/obs"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/sim"
	"arlo/internal/trace"
)

// BenchmarkFig1TraceGen measures synthesizing a 10-minute Twitter-
// calibrated trace (the Fig. 1 workload).
func BenchmarkFig1TraceGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := trace.Generate(trace.Config{
			Seed:     int64(i),
			Duration: 10 * time.Minute,
			Arrivals: trace.Poisson{Rate: 300},
			Lengths:  trace.TwitterLengths(int64(i)),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2LatencyModel measures the calibrated latency model over the
// full length range for all three profiled models (Fig. 2).
func BenchmarkFig2LatencyModel(b *testing.B) {
	models := []*model.LatencyModel{model.BertBase(), model.BertLarge(), model.Dolly()}
	b.ResetTimer()
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		for _, lm := range models {
			for s := 1; s <= 512; s++ {
				sink += lm.IdealStaticLatency(s) + lm.DynamicLatency(s)
			}
		}
	}
	_ = sink
}

// BenchmarkFig6Testbed measures one full four-scheme testbed comparison at
// the Fig. 6 Bert-Base operating point (shortened trace).
func BenchmarkFig6Testbed(b *testing.B) {
	benchComparison(b, model.BertBase(), 150*time.Millisecond, 1000, 10)
}

// BenchmarkFig7LoadPoint measures one Fig. 7 sweep point (Bert-Base at
// 2000 req/s on 10 GPUs).
func BenchmarkFig7LoadPoint(b *testing.B) {
	benchComparison(b, model.BertBase(), 150*time.Millisecond, 2000, 10)
}

func benchComparison(b *testing.B, lm *model.LatencyModel, slo time.Duration, rate float64, gpus int) {
	b.Helper()
	tr, err := trace.Generate(trace.Stable(1, rate, 10*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	arlo, err := baselines.Arlo(lm, slo)
	if err != nil {
		b.Fatal(err)
	}
	st, err := baselines.ST(lm, slo)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range []*baselines.System{arlo, st} {
			cfg, err := s.SimConfig(tr, gpus, 5*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(tr.Requests)), "requests/run")
}

// BenchmarkFig8AutoScaled measures a full auto-scaled simulation (Fig. 8
// conditions, shortened trace).
func BenchmarkFig8AutoScaled(b *testing.B) {
	a, err := core.NewSystem(core.WithModel("bert-large"), core.WithAllocPeriod(30*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(trace.Bursty(3, 500, time.Minute))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.SimulateAutoScaled(tr, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 2: the ILP solve time at the paper's three scales. The reported
// ns/op IS the table entry.
func BenchmarkTable2ILP50GPUs8Runtimes(b *testing.B)    { benchILP(b, 50, 8) }
func BenchmarkTable2ILP200GPUs12Runtimes(b *testing.B)  { benchILP(b, 200, 12) }
func BenchmarkTable2ILP1000GPUs16Runtimes(b *testing.B) { benchILP(b, 1000, 16) }

func benchILP(b *testing.B, gpus, runtimes int) {
	b.Helper()
	arch := model.Arch{
		Name: "bench", Layers: 12, Hidden: 768, Heads: 12, Intermediate: 3072,
		MaxLength: 64 * runtimes, TileStep: 64,
	}
	lm, err := model.Calibrate(arch, 1150*time.Microsecond,
		1150*time.Microsecond*time.Duration(4*runtimes)/8, 3.56, 1.22)
	if err != nil {
		b.Fatal(err)
	}
	p, err := profiler.StaticProfile(lm, arch.RuntimeLengths(), 150*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := allocator.NewSolver(p)
	if err != nil {
		b.Fatal(err)
	}
	q := make([]float64, runtimes)
	weight := 0.0
	for i := range q {
		q[i] = math.Exp(-0.4 * float64(i))
		weight += q[i] / float64(p.Runtimes[i].Capacity)
	}
	for i := range q {
		q[i] *= 0.6 * float64(gpus) / weight
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Allocate(gpus, q); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 9: per-dispatch overhead of the Request Scheduler at scale. The
// ns/op IS the figure's per-dispatch time.
func BenchmarkFig9Dispatch200Instances(b *testing.B)  { benchDispatch(b, 200, 6) }
func BenchmarkFig9Dispatch1200Instances(b *testing.B) { benchDispatch(b, 1200, 6) }
func BenchmarkFig9Dispatch1200L12(b *testing.B)       { benchDispatch(b, 1200, 12) }

func benchDispatch(b *testing.B, instances, L int) {
	b.Helper()
	rs, ml := benchScheduler(b, instances, L)
	lengths := benchLengths()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, err := rs.Dispatch(lengths[i%len(lengths)])
		if err != nil {
			b.Fatal(err)
		}
		ml.OnComplete(in) // keep load steady across iterations
	}
}

// BenchmarkFig9DispatchParallel measures the same per-dispatch overhead
// with every core dispatching at once — the concurrent serving path the
// lock-striped queue exists for. Run with -cpu 1,4,8 to see scaling.
func BenchmarkFig9DispatchParallel200Instances(b *testing.B)  { benchDispatchParallel(b, 200, 6) }
func BenchmarkFig9DispatchParallel1200Instances(b *testing.B) { benchDispatchParallel(b, 1200, 6) }
func BenchmarkFig9DispatchParallel1200L12(b *testing.B)       { benchDispatchParallel(b, 1200, 12) }

func benchDispatchParallel(b *testing.B, instances, L int) {
	b.Helper()
	rs, ml := benchScheduler(b, instances, L)
	lengths := benchLengths()
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Stagger each goroutine's walk through the length cycle so the
		// benchmark models independent request streams, not eight clients
		// replaying identical traffic in lockstep.
		i := int(gid.Add(1)) * 509
		for pb.Next() {
			in, err := rs.Dispatch(lengths[i%len(lengths)])
			if err != nil {
				b.Error(err)
				return
			}
			ml.OnComplete(in)
			i++
		}
	})
}

// BenchmarkFig9DispatchObserver measures the Fig. 9 dispatch decision
// plus everything the observability plane adds to the hot path: a submit
// count, the context-first dispatch (Decision by value), a demotion
// count when taken, and a span fold into the striped histograms. The Off
// variant runs the identical code against a nil recorder — the gap
// between the two IS the cost of enabling observability, and Off vs
// BenchmarkFig9Dispatch1200Instances is the cost of having the plane
// compiled in at all (`make bench-obs` prints all three).
func BenchmarkFig9DispatchObserverOff(b *testing.B) { benchDispatchObserver(b, nil) }
func BenchmarkFig9DispatchObserverOn(b *testing.B) {
	benchDispatchObserver(b, obs.NewRecorder(12))
}

func benchDispatchObserver(b *testing.B, rec *obs.Recorder) {
	b.Helper()
	rs, ml := benchScheduler(b, 1200, 6)
	lengths := benchLengths()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		length := lengths[i%len(lengths)]
		rec.RecordSubmit()
		in, dec, err := rs.DispatchCtx(ctx, length)
		if err != nil {
			b.Fatal(err)
		}
		if dec.Level > dec.IdealLevel {
			rec.RecordDemotion(dec.IdealLevel, dec.Level)
		}
		ml.OnComplete(in)
		span := obs.Span{
			Length:     length,
			Queue:      50 * time.Microsecond,
			Exec:       2 * time.Millisecond,
			Total:      2050 * time.Microsecond,
			IdealLevel: dec.IdealLevel,
			Level:      dec.Level,
			Instance:   in.ID,
			Peeked:     dec.Peeked,
		}
		rec.RecordSpan(&span)
	}
}

// BenchmarkFig9DispatchParallelGlobalMutex is the pre-striping baseline:
// identical work, but every dispatch+complete serialized through one
// global mutex the way cluster.Cluster used to. The gap between this and
// BenchmarkFig9DispatchParallel1200L12 at -cpu 8 is the tentpole's win.
func BenchmarkFig9DispatchParallelGlobalMutex(b *testing.B) {
	rs, ml := benchScheduler(b, 1200, 12)
	lengths := benchLengths()
	var mu sync.Mutex
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(gid.Add(1)) * 509 // same stagger as the striped variant
		for pb.Next() {
			mu.Lock()
			in, err := rs.Dispatch(lengths[i%len(lengths)])
			if err != nil {
				mu.Unlock()
				b.Error(err)
				return
			}
			ml.OnComplete(in)
			mu.Unlock()
			i++
		}
	})
}

func benchScheduler(b *testing.B, instances, L int) (*dispatch.RequestScheduler, *queue.MultiLevel) {
	b.Helper()
	maxLens := make([]int, 12)
	for i := range maxLens {
		maxLens[i] = 64 * (i + 1)
	}
	ml, err := queue.NewMultiLevel(maxLens)
	if err != nil {
		b.Fatal(err)
	}
	for id := 0; id < instances; id++ {
		if err := ml.Add(queue.NewInstance(id, id%12, id%40, 60)); err != nil {
			b.Fatal(err)
		}
	}
	rs, err := dispatch.NewRequestSchedulerParams(ml, 0.85, 0.9, L)
	if err != nil {
		b.Fatal(err)
	}
	return rs, ml
}

func benchLengths() []int {
	lengths := make([]int, 4096)
	for i := range lengths {
		lengths[i] = 1 + (i*193)%768
	}
	return lengths
}

// BenchmarkFig10LargeScale measures the Bert-Large large-scale simulation
// (Fig. 10 conditions, scaled down).
func BenchmarkFig10LargeScale(b *testing.B) {
	lm := model.BertLarge()
	tr, err := trace.Generate(trace.Bursty(5, 8000, 15*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	arlo, err := baselines.Arlo(lm, 450*time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, err := arlo.SimConfig(tr, 100, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed == 0 {
			b.Fatal("no requests completed")
		}
	}
	b.ReportMetric(float64(len(tr.Requests)), "requests/run")
}

// BenchmarkFig11RuntimeSweep measures one N-runtimes configuration
// (Fig. 11, N=8).
func BenchmarkFig11RuntimeSweep(b *testing.B) {
	lm := model.BertLarge()
	tr, err := trace.Generate(trace.Bursty(7, 4800, 15*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	s, err := baselines.ArloN(lm, 450*time.Millisecond, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, err := s.SimConfig(tr, 40, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3PeriodicAllocation measures the periodic-allocation
// policy end to end (Table 3 conditions, shortened trace).
func BenchmarkTable3PeriodicAllocation(b *testing.B) {
	a, err := core.NewSystem(core.WithModel("bert-large"), core.WithAllocPeriod(20*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(trace.Config{
		Seed: 9, Duration: time.Minute,
		Arrivals: trace.Poisson{Rate: 4200},
		Lengths: trace.DriftingLengths{
			Mu: math.Log(120), SigmaWindow: 0.4, DriftAmp: 0.3,
			DriftPeriod: 160 * time.Second, Min: 1, Max: 512,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Simulate(tr, 40); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Dispatchers measures the RS-vs-baselines ablation on one
// shortened Table 4 trace.
func BenchmarkTable4Dispatchers(b *testing.B) {
	lm := model.BertLarge()
	tr, err := trace.Generate(trace.Bursty(13, 2200, 20*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	systems := make([]*baselines.System, 0, 3)
	for _, policy := range []string{"RS", "ILB", "IG"} {
		s, err := baselines.ArloWithDispatcher(lm, 450*time.Millisecond, policy)
		if err != nil {
			b.Fatal(err)
		}
		systems = append(systems, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range systems {
			cfg, err := s.SimConfig(tr, 20, 5*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig12AllocationSeries measures the Runtime Scheduler tracking a
// drifting trace (Fig. 12 conditions, shortened).
func BenchmarkFig12AllocationSeries(b *testing.B) {
	a, err := core.NewSystem(core.WithModel("bert-large"), core.WithAllocPeriod(15*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(trace.Bursty(15, 5000, time.Minute))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := a.Simulate(tr, 40)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Allocations) < 2 {
			b.Fatal("expected reallocations")
		}
	}
}

// BenchmarkCalibrationSimulator measures the simulator half of the
// section 5.2.1 calibration (the prototype half runs in real time and is
// exercised by cmd/arlobench -exp calib).
func BenchmarkCalibrationSimulator(b *testing.B) {
	a, err := core.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(trace.Stable(17, 300, 10*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Simulate(tr, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationExactVsEvenAllocation compares the exact solver against
// the even-split heuristic on identical demand (design choice: exact
// Pareto-DP vs cheap heuristics).
func BenchmarkAblationExactVsEvenAllocation(b *testing.B) {
	a, err := core.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{400, 300, 150, 80, 40, 20, 10, 5}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.Allocate(50, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("even", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := allocator.EvenAllocation(50, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationStaircaseStep sweeps the runtime spacing (32 vs 64 vs
// 128 tokens) — the staircase design choice of section 3.3.
func BenchmarkAblationStaircaseStep(b *testing.B) {
	lm := model.BertLarge()
	tr, err := trace.Generate(trace.Stable(19, 3000, 15*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{4, 8, 16} {
		s, err := baselines.ArloN(lm, 450*time.Millisecond, n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(map[int]string{4: "step128", 8: "step64", 16: "step32"}[n], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg, err := s.SimConfig(tr, 40, 5*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExperimentSuite runs the cheap experiment drivers end to end,
// guarding against regressions in the harness itself.
func BenchmarkExperimentSuite(b *testing.B) {
	for _, id := range []string{"fig2", "fig4", "fig5"} {
		spec, ok := experiments.ByID(id)
		if !ok {
			b.Fatalf("missing experiment %s", id)
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := spec.Run(io.Discard, experiments.Options{Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
