package core

import (
	"time"

	"arlo/internal/controller"
	"arlo/internal/model"
	"arlo/internal/tenant"
)

// Option configures an Arlo system for NewSystem. Options are applied in
// order; later options override earlier ones. Every unset knob keeps the
// paper's default.
type Option func(*Options)

// WithModel selects a latency-model preset by name ("bert-base",
// "bert-large", "dolly").
func WithModel(name string) Option {
	return func(o *Options) { o.Model = name }
}

// WithLatencyModel supplies a custom calibrated latency model, overriding
// WithModel.
func WithLatencyModel(lm *model.LatencyModel) Option {
	return func(o *Options) { o.LatencyModel = lm }
}

// WithSLO overrides the preset service-level objective.
func WithSLO(d time.Duration) Option {
	return func(o *Options) { o.SLO = d }
}

// WithNumRuntimes overrides the staircase runtime count (must evenly
// divide the model's max length).
func WithNumRuntimes(n int) Option {
	return func(o *Options) { o.NumRuntimes = n }
}

// WithSchedulerParams sets the Request Scheduler's Algorithm 1 knobs:
// congestion threshold lambda, per-level decay alpha, and peek bound L.
// Zero keeps the respective default (0.85, 0.9, 6).
func WithSchedulerParams(lambda, alpha float64, maxPeek int) Option {
	return func(o *Options) {
		o.Lambda = lambda
		o.Alpha = alpha
		o.MaxPeek = maxPeek
	}
}

// WithDispatchPolicy selects the dispatch policy by name: "RS" (the
// paper's Request Scheduler, the default), or the baselines "ILB", "IG",
// "LL", "INFaaS".
func WithDispatchPolicy(name string) Option {
	return func(o *Options) { o.DispatchPolicy = name }
}

// WithAllocPeriod sets the Runtime Scheduler reallocation period
// (default 120s).
func WithAllocPeriod(d time.Duration) Option {
	return func(o *Options) { o.AllocPeriod = d }
}

// WithBatching enables dynamic batching: cluster instances coalesce up to
// maxSize same-runtime requests per emulated kernel (clamped per runtime
// to the profiled SLO headroom), holding a partial batch at most maxDelay
// waiting for followers. maxSize <= 1 disables batching; maxDelay 0
// selects the SLO-aware default window (SLO/100), negative disables
// waiting (greedy formation).
func WithBatching(maxSize int, maxDelay time.Duration) Option {
	return func(o *Options) {
		o.BatchSize = maxSize
		o.BatchDelay = maxDelay
	}
}

// WithContinuousBatching switches clusters built by NewCluster to
// iteration-level (continuous) batching for generative workloads: up to
// maxSize decode slots per instance (clamped per runtime to the profiled
// SLO headroom), batches re-formed every iteration, finished sequences
// exiting immediately and queued requests admitted into freed slots
// mid-flight. meanOutTokens hints the expected output length for the
// gen-aware capacity model (0 defaults to 16).
func WithContinuousBatching(maxSize int, meanOutTokens float64) Option {
	return func(o *Options) {
		o.BatchSize = maxSize
		o.Continuous = true
		o.MeanOutTokens = meanOutTokens
	}
}

// WithTenants enables multi-tenant serving in clusters built by
// NewCluster: the given tenant records (id, SLO class, token-bucket
// capacity/refill, fair-share weight) form the admission registry, and
// dispatch order becomes weighted-fair across tenants. A "default" record
// (unlimited, standard class, weight 1) is added when none is given.
func WithTenants(cfgs ...tenant.Config) Option {
	return func(o *Options) { o.Tenants = append([]tenant.Config(nil), cfgs...) }
}

// WithController tunes control loops built by Arlo.NewController: the
// replanning period (0 inherits the system's AllocPeriod), the autoscaler,
// the hysteresis margin, the per-period replacement budget, and dry-run
// mode. The option only configures; the loop is created per cluster with
// NewController.
func WithController(opts controller.Options) Option {
	return func(o *Options) { o.Controller = opts }
}

// NewSystem builds an Arlo system from functional options:
//
//	a, err := core.NewSystem(core.WithModel("bert-base"), core.WithSLO(150*time.Millisecond))
func NewSystem(opts ...Option) (*Arlo, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return build(o)
}
