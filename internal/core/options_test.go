package core

import (
	"testing"
	"time"

	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/queue"
)

func TestNewSystemDefaults(t *testing.T) {
	a, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if a.Model.Arch().Name != model.BertBaseArch.Name {
		t.Errorf("default model = %q, want bert-base", a.Model.Arch().Name)
	}
	if a.SLO() != 150*time.Millisecond {
		t.Errorf("default SLO = %v, want 150ms", a.SLO())
	}
	if a.DispatchPolicy() != "RS" {
		t.Errorf("default policy = %q, want RS", a.DispatchPolicy())
	}
}

func TestNewSystemOptions(t *testing.T) {
	a, err := NewSystem(
		WithModel("bert-large"),
		WithSLO(450*time.Millisecond),
		WithSchedulerParams(0.7, 0.8, 4),
		WithAllocPeriod(60*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	if a.Model.Arch().Name != model.BertLargeArch.Name {
		t.Errorf("model = %q, want bert-large", a.Model.Arch().Name)
	}
	if a.SLO() != 450*time.Millisecond {
		t.Errorf("SLO = %v", a.SLO())
	}
	if a.lambda != 0.7 || a.alpha != 0.8 || a.maxPeek != 4 {
		t.Errorf("scheduler params = (%v, %v, %d)", a.lambda, a.alpha, a.maxPeek)
	}
	if a.allocPeriod != 60*time.Second {
		t.Errorf("alloc period = %v", a.allocPeriod)
	}
}

func TestNewSystemDispatchPolicy(t *testing.T) {
	a, err := NewSystem(WithDispatchPolicy("ILB"))
	if err != nil {
		t.Fatal(err)
	}
	ml, err := queue.NewMultiLevel(a.Profile.MaxLengths())
	if err != nil {
		t.Fatal(err)
	}
	d, err := a.DispatcherFactory()(ml)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*dispatch.ILB); !ok {
		t.Errorf("dispatcher = %T, want *dispatch.ILB", d)
	}
}

func TestNewSystemRejectsBadOptions(t *testing.T) {
	if _, err := NewSystem(WithModel("no-such-model")); err == nil {
		t.Error("unknown model should fail")
	}
	if _, err := NewSystem(WithDispatchPolicy("no-such-policy")); err == nil {
		t.Error("unknown policy should fail at construction, not first dispatch")
	}
	if _, err := NewSystem(WithSchedulerParams(2.0, 0.9, 6)); err == nil {
		t.Error("lambda out of range should fail")
	}
	if _, err := NewSystem(WithNumRuntimes(7)); err == nil {
		t.Error("runtime count not dividing max length should fail")
	}
}
