package core

import (
	"sync"
	"testing"
	"time"

	"arlo/internal/allocator"
)

func TestNewControllerValidation(t *testing.T) {
	a, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.NewController(nil, ControllerOptions{}); err == nil {
		t.Error("nil cluster should fail")
	}
}

func TestControllerReallocatesTowardDemand(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time control loop")
	}
	a, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := a.NewCluster(8, nil) // even split: one instance per runtime
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctrl, err := a.NewController(cl, ControllerOptions{
		AllocPeriod:  300 * time.Millisecond,
		ReplaceDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	defer ctrl.Stop()

	// Drive pure short traffic for a second: the controller should move
	// GPUs toward the small runtimes.
	deadline := time.Now().Add(1200 * time.Millisecond)
	var wg sync.WaitGroup
	for time.Now().Before(deadline) {
		ch, err := cl.SubmitAsync(20)
		if err == nil {
			wg.Add(1)
			go func() {
				defer wg.Done()
				lat := <-ch
				ctrl.Observe(20, lat)
			}()
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	time.Sleep(400 * time.Millisecond) // let a final round land

	alloc := cl.Allocation()
	shortShare := alloc[0] + alloc[1]
	if shortShare < 4 {
		t.Errorf("controller should shift GPUs toward short runtimes, got %v", alloc)
	}
	reallocs, replacements, _, _ := ctrl.Stats()
	if reallocs == 0 {
		t.Error("controller never reallocated")
	}
	if replacements == 0 {
		t.Errorf("expected instance replacements, allocation %v", alloc)
	}
	if got := cl.Instances(); got != 8 {
		t.Errorf("fixed pool should stay at 8 instances, got %d", got)
	}
}

func TestControllerAutoScalesOut(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time control loop")
	}
	a, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := a.NewCluster(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	scaler, err := allocator.NewAutoScaler(a.SLO())
	if err != nil {
		t.Fatal(err)
	}
	scaler.OutCooldown = 100 * time.Millisecond
	ctrl, err := a.NewController(cl, ControllerOptions{
		AllocPeriod: time.Hour, // isolate the scaler
		Scaler:      scaler,
		ScalePeriod: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	defer ctrl.Stop()

	// Feed latencies right at the SLO so the scaler sees pressure.
	hot := a.SLO()
	for i := 0; i < 200; i++ {
		ctrl.Observe(100, hot)
	}
	time.Sleep(400 * time.Millisecond)
	_, _, outs, _ := ctrl.Stats()
	if outs == 0 {
		t.Error("sustained SLO-level p98 should scale out")
	}
	if got := cl.Instances(); got <= 8 {
		t.Errorf("instances = %d, want > 8 after scale-out", got)
	}
}

func TestControllerStopIdempotent(t *testing.T) {
	a, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := a.NewCluster(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctrl, err := a.NewController(cl, ControllerOptions{AllocPeriod: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	time.Sleep(120 * time.Millisecond)
	ctrl.Stop()
	// A second Stop must not panic or deadlock.
	done := make(chan struct{})
	go func() {
		ctrl.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("second Stop deadlocked")
	}
}
