package core

import (
	"testing"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/controller"
	"arlo/internal/obs"
)

// ctrlVT maps a virtual offset onto the absolute timeline the obs window
// slots on: the controller tests here drive Step/Autoscale with explicit
// timestamps instead of wall-clock sleeps.
func ctrlVT(d time.Duration) time.Time { return time.Unix(0, 0).Add(d) }

func TestNewControllerValidation(t *testing.T) {
	a, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.NewController(nil); err == nil {
		t.Error("nil cluster should fail")
	}
}

func TestNewControllerInstallsRecorderAndPeriod(t *testing.T) {
	a, err := NewSystem(WithAllocPeriod(42 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := a.NewCluster(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Observer() != nil {
		t.Fatal("cluster unexpectedly starts with an observer")
	}
	ctrl, err := a.NewController(cl)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Observer() == nil {
		t.Fatal("NewController did not install an observability recorder")
	}
	if cl.Observer().LengthDist() == nil {
		t.Fatal("installed recorder has no length bins")
	}
	if st := ctrl.Status(); st.PeriodMS != 42000 {
		t.Fatalf("controller period = %gms, want the system's AllocPeriod (42000ms)", st.PeriodMS)
	}
}

func TestControllerReallocatesTowardDemand(t *testing.T) {
	// Hysteresis off: the even split satisfies the light synthetic demand,
	// so with the default margin the controller would (correctly) hold it.
	a, err := NewSystem(WithController(controller.Options{Hysteresis: -1}))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := a.NewCluster(8, nil) // even split: one instance per runtime
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctrl, err := a.NewController(cl)
	if err != nil {
		t.Fatal(err)
	}

	// Pure short traffic in the observation window: replanning must walk
	// the topology to the solver's target for that demand. Fed at virtual
	// timestamps — no wall-clock control loop involved.
	rec := cl.Observer()
	now := ctrlVT(time.Minute)
	for i := 0; i < 400; i++ {
		rec.RecordSpanAt(&obs.Span{Length: 20, Total: 2 * time.Millisecond, Instance: i}, now)
	}
	var target []int
	for period := 0; period < 8; period++ { // budget-bounded: iterate periods to convergence
		res := ctrl.Step(now)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		target = res.Target
		if res.Applied == 0 {
			break
		}
	}
	alloc := cl.Allocation()
	if len(target) == 0 {
		t.Fatal("controller never produced a target")
	}
	for i := range alloc {
		if alloc[i] != target[i] {
			t.Fatalf("allocation %v did not converge to solver target %v", alloc, target)
		}
	}
	if st := ctrl.Status(); st.Replans == 0 || st.Replacements == 0 {
		t.Errorf("expected replans and replacements, status %+v", st)
	}
	if got := cl.Instances(); got != 8 {
		t.Errorf("fixed pool should stay at 8 instances, got %d", got)
	}
}

func TestControllerAutoScalesOut(t *testing.T) {
	scaler, err := allocator.NewAutoScaler(150 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewSystem(WithSLO(150*time.Millisecond), WithController(controller.Options{Scaler: scaler}))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := a.NewCluster(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctrl, err := a.NewController(cl)
	if err != nil {
		t.Fatal(err)
	}

	// Latencies right at the SLO: the target tracker sees pressure and
	// adds a worker on the first observation.
	rec := cl.Observer()
	now := ctrlVT(time.Minute)
	for i := 0; i < 200; i++ {
		rec.RecordSpanAt(&obs.Span{Length: 100, Total: a.SLO(), Instance: i}, now)
	}
	if act := ctrl.Autoscale(now); act != allocator.ScaleOut {
		t.Fatalf("autoscale = %v, want scale-out", act)
	}
	if got := cl.Instances(); got != 9 {
		t.Errorf("instances = %d, want 9 after scale-out", got)
	}
}

func TestControllerStopIdempotent(t *testing.T) {
	a, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := a.NewCluster(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctrl, err := a.NewController(cl)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	ctrl.Stop()
	// A second Stop must not panic or deadlock.
	done := make(chan struct{})
	go func() {
		ctrl.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("second Stop deadlocked")
	}
}
