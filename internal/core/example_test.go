package core_test

import (
	"fmt"
	"log"
	"time"

	"arlo/internal/core"
	"arlo/internal/trace"
)

// ExampleNewSystem shows the one-call construction of a full Arlo system with
// the paper's defaults.
func ExampleNewSystem() {
	a, err := core.NewSystem(core.WithModel("bert-base"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a.Model.Arch().Name, a.SLO(), len(a.Profile.Runtimes), "runtimes")
	fmt.Println("max_lengths:", a.Profile.MaxLengths())
	// Output:
	// bert-base 150ms 8 runtimes
	// max_lengths: [64 128 192 256 320 384 448 512]
}

// ExampleArlo_Allocate solves the Runtime Scheduler's program for an
// explicit demand vector: most GPUs go to the loaded short bins, and the
// largest runtime always keeps an instance (Eq. 7).
func ExampleArlo_Allocate() {
	a, err := core.NewSystem(core.WithModel("bert-base"))
	if err != nil {
		log.Fatal(err)
	}
	// Demand per SLO window per length bin: short-heavy, Twitter-like.
	q := []float64{120, 220, 70, 18, 5, 1, 0, 0}
	alloc, err := a.Allocate(10, q)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, n := range alloc.N {
		total += n
	}
	fmt.Println("GPUs used:", total)
	fmt.Println("largest runtime instances:", alloc.N[len(alloc.N)-1])
	// Output:
	// GPUs used: 10
	// largest runtime instances: 1
}

// ExampleArlo_Simulate runs the full system on a synthesized trace; with
// a fixed seed the simulation is fully deterministic.
func ExampleArlo_Simulate() {
	a, err := core.NewSystem(core.WithModel("bert-base"))
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.Generate(trace.Stable(7, 800, 10*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.Simulate(tr, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("completed:", res.Completed == len(tr.Requests))
	fmt.Println("SLO violations:", res.Summary.SLOViolations)
	// Output:
	// completed: true
	// SLO violations: 0
}
