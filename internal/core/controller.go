package core

import (
	"fmt"

	"arlo/internal/cluster"
	"arlo/internal/controller"
	"arlo/internal/obs"
)

// NewController wires the closed control loop (internal/controller) to a
// running cluster: periodic replanning of the GPU split from the observed
// length distribution, plus target-tracking autoscaling when a Scaler is
// configured via WithController. The loop reads its demand and latency
// signals from the cluster's observability recorder; one is created and
// installed when the cluster runs without observability.
//
// The controller is returned stopped: call Start for the wall-clock
// ticker loop, or drive Step/Autoscale directly with explicit timestamps
// (the deterministic path the convergence tests use).
//
// Options come from WithController at system construction; an explicit
// override argument replaces them wholesale for this one loop (useful
// when the options depend on values only known post-construction, like a
// scaler built from the resolved SLO). Either way a zero Period inherits
// the system's AllocPeriod.
func (a *Arlo) NewController(cl *cluster.Cluster, override ...controller.Options) (*controller.Controller, error) {
	if cl == nil {
		return nil, fmt.Errorf("core: nil cluster")
	}
	opts := a.ctrlOpts
	if len(override) > 0 {
		opts = override[0]
	}
	if opts.Period <= 0 {
		opts.Period = a.allocPeriod
	}
	rec := cl.Observer()
	if rec == nil {
		rec = obs.NewRecorder(cl.NumLevels())
		cl.SetObserver(rec)
	}
	return controller.New(cl, a.Solver, rec, opts)
}
