package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/cluster"
	"arlo/internal/metrics"
)

// ControllerOptions tune the live control plane. Zero values select
// defaults suited to demos (short periods); production deployments would
// use the paper's 120 s allocation period.
type ControllerOptions struct {
	// AllocPeriod is how often the Runtime Scheduler re-solves the
	// allocation (default: the system's configured period).
	AllocPeriod time.Duration
	// Scaler enables auto-scaling when non-nil, observed every
	// ScalePeriod (default 1 s) over LatencyWindow (default 10 s).
	Scaler        *allocator.AutoScaler
	ScalePeriod   time.Duration
	LatencyWindow time.Duration
	// ReplaceDelay emulates the instance swap time (default 1 s; the
	// paper's replacements take about a second).
	ReplaceDelay time.Duration
	// BatchSize bounds concurrent replacements (default 2).
	BatchSize int
}

// Controller runs Arlo's online control plane over a live emulated
// cluster: it accumulates the served requests' length distribution,
// periodically re-solves the GPU allocation and rolls out a minimal
// batched replacement plan, and (optionally) auto-scales the pool by
// target tracking — the real-time counterpart of what the simulator does
// in virtual time.
type Controller struct {
	arlo *Arlo
	cl   *cluster.Cluster
	opts ControllerOptions

	window *metrics.Window

	mu        sync.Mutex
	binCounts []int
	lastReset time.Time

	stop chan struct{}
	done chan struct{}
	once sync.Once

	// stats
	reallocs     int
	replacements int
	scaleOuts    int
	scaleIns     int
}

// NewController wires a control plane to a running cluster. Call Start to
// begin the control loop and Observe for every served request.
func (a *Arlo) NewController(cl *cluster.Cluster, opts ControllerOptions) (*Controller, error) {
	if cl == nil {
		return nil, fmt.Errorf("core: nil cluster")
	}
	if opts.AllocPeriod <= 0 {
		opts.AllocPeriod = a.allocPeriod
	}
	if opts.ScalePeriod <= 0 {
		opts.ScalePeriod = time.Second
	}
	if opts.LatencyWindow <= 0 {
		opts.LatencyWindow = 10 * time.Second
	}
	if opts.ReplaceDelay < 0 {
		opts.ReplaceDelay = 0
	} else if opts.ReplaceDelay == 0 {
		opts.ReplaceDelay = time.Second
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 2
	}
	return &Controller{
		arlo:      a,
		cl:        cl,
		opts:      opts,
		window:    metrics.NewWindow(opts.LatencyWindow),
		binCounts: make([]int, len(a.Profile.Runtimes)),
		lastReset: time.Now(),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}, nil
}

// Observe records one served request: its tokenized length feeds the
// demand estimate, its latency the auto-scaler's window.
func (c *Controller) Observe(length int, lat time.Duration) {
	c.window.Record(lat)
	bin := c.binOf(length)
	if bin < 0 {
		return
	}
	c.mu.Lock()
	c.binCounts[bin]++
	c.mu.Unlock()
}

func (c *Controller) binOf(length int) int {
	if length <= 0 {
		return -1
	}
	uppers := c.arlo.Profile.MaxLengths()
	i := sort.SearchInts(uppers, length)
	if i >= len(uppers) {
		i = len(uppers) - 1
	}
	return i
}

// Start launches the control loop. Stop ends it.
func (c *Controller) Start() {
	go c.run()
}

// Stop terminates the control loop and waits for it to finish.
func (c *Controller) Stop() {
	c.once.Do(func() { close(c.stop) })
	<-c.done
}

// Stats reports the control plane's action counts: reallocation rounds,
// instance replacements, scale-outs and scale-ins.
func (c *Controller) Stats() (reallocs, replacements, scaleOuts, scaleIns int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reallocs, c.replacements, c.scaleOuts, c.scaleIns
}

func (c *Controller) run() {
	defer close(c.done)
	allocTick := time.NewTicker(c.opts.AllocPeriod)
	defer allocTick.Stop()
	var scaleTick *time.Ticker
	var scaleC <-chan time.Time
	if c.opts.Scaler != nil {
		scaleTick = time.NewTicker(c.opts.ScalePeriod)
		defer scaleTick.Stop()
		scaleC = scaleTick.C
	}
	start := time.Now()
	for {
		select {
		case <-c.stop:
			return
		case <-allocTick.C:
			c.reallocate()
		case at := <-scaleC:
			c.autoscale(at.Sub(start))
		}
	}
}

// reallocate estimates demand from the window since the last round,
// solves the allocation for the current pool, and applies a minimal
// batched replacement plan.
func (c *Controller) reallocate() {
	c.mu.Lock()
	elapsed := time.Since(c.lastReset)
	if elapsed < c.arlo.Profile.SLO {
		c.mu.Unlock()
		return
	}
	windows := float64(elapsed) / float64(c.arlo.Profile.SLO)
	q := make([]float64, len(c.binCounts))
	total := 0
	for i, n := range c.binCounts {
		q[i] = float64(n) / windows
		total += n
		c.binCounts[i] = 0
	}
	c.lastReset = time.Now()
	c.mu.Unlock()
	if total == 0 {
		return // no traffic observed: keep the current deployment
	}

	current := c.cl.Allocation()
	g := 0
	for _, n := range current {
		g += n
	}
	if g == 0 {
		return
	}
	target, err := c.arlo.Solver.Allocate(g, q)
	if err != nil {
		return // keep the current deployment
	}
	plan, err := allocator.PlanReplacements(current, target.N)
	if err != nil || len(plan) == 0 {
		c.mu.Lock()
		c.reallocs++
		c.mu.Unlock()
		return
	}
	for _, batch := range allocator.Batches(plan, c.opts.BatchSize) {
		for _, rep := range batch {
			if _, err := c.cl.Replace(rep.From, rep.To, 0); err != nil {
				continue
			}
			c.mu.Lock()
			c.replacements++
			c.mu.Unlock()
		}
		// The batch's swap time gates the next batch (paper section 4).
		select {
		case <-c.stop:
			return
		case <-time.After(c.opts.ReplaceDelay):
		}
	}
	c.mu.Lock()
	c.reallocs++
	c.mu.Unlock()
}

// autoscale applies one target-tracking observation.
func (c *Controller) autoscale(now time.Duration) {
	if c.window.Count() == 0 {
		return
	}
	p98 := c.window.P98()
	g := c.cl.Instances()
	switch c.opts.Scaler.Observe(now, p98, g) {
	case allocator.ScaleOut:
		last := len(c.arlo.Profile.Runtimes) - 1
		if _, err := c.cl.AddInstance(last); err == nil {
			c.mu.Lock()
			c.scaleOuts++
			c.mu.Unlock()
		}
	case allocator.ScaleIn:
		if _, err := c.cl.RemoveInstance(-1); err == nil {
			c.mu.Lock()
			c.scaleIns++
			c.mu.Unlock()
		}
	}
}
