// Package core is the top-level entry point of the Arlo reproduction: it
// wires the calibrated latency model, the offline profiler, the Runtime
// Scheduler (allocation, replacement, auto-scaling) and the Request
// Scheduler (multi-level-queue dispatch) into one system that can be
// simulated (discrete events) or run in real time (emulated cluster).
//
// Typical use:
//
//	a, _ := core.NewSystem(core.WithModel("bert-base"))
//	tr, _ := trace.Generate(trace.Stable(1, 1000, time.Minute))
//	res, _ := a.Simulate(tr, 10)
//	fmt.Println(res.Summary)
package core

import (
	"fmt"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/cluster"
	"arlo/internal/controller"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/sim"
	"arlo/internal/tenant"
	"arlo/internal/trace"
)

// Options configure an Arlo deployment. The zero value of every field
// selects the paper's defaults.
type Options struct {
	// Model names a preset ("bert-base", "bert-large", "dolly") or is
	// overridden by LatencyModel. Default "bert-base".
	Model string
	// LatencyModel supplies a custom calibrated model.
	LatencyModel *model.LatencyModel
	// SLO defaults to the preset's published objective (150 ms BERT-Base,
	// 450 ms BERT-Large).
	SLO time.Duration
	// NumRuntimes defaults to the staircase choice (max_length/tile, 8
	// for BERT).
	NumRuntimes int
	// Lambda, Alpha, MaxPeek are the Request Scheduler parameters
	// (defaults 0.85, 0.9, 6).
	Lambda, Alpha float64
	MaxPeek       int
	// AllocPeriod is the Runtime Scheduler period (default 120 s).
	AllocPeriod time.Duration
	// DispatchPolicy names the dispatch policy: "RS" (default, the
	// paper's Request Scheduler) or a baseline ("ILB", "IG", "LL",
	// "INFaaS"). The Lambda/Alpha/MaxPeek knobs only apply to "RS".
	DispatchPolicy string
	// BatchSize enables dynamic batching in clusters built by NewCluster
	// (and in simulations): instances coalesce up to this many same-runtime
	// requests per kernel, clamped per runtime to the profiled SLO headroom.
	// 0 or 1 disables batching.
	BatchSize int
	// BatchDelay bounds the batch-collection window (modeled time). 0
	// defaults to SLO/100 when batching is on; negative disables waiting
	// (greedy formation).
	BatchDelay time.Duration
	// Continuous switches clusters built by NewCluster to iteration-level
	// (continuous) batching for generative workloads: batches re-form
	// every iteration, finished sequences exit immediately, and queued
	// requests join freed decode slots mid-flight.
	Continuous bool
	// MeanOutTokens hints the expected generative output length for the
	// continuous capacity model (0 defaults to 16).
	MeanOutTokens float64
	// Tenants, when non-empty, enables multi-tenant serving in clusters
	// built by NewCluster: token-bucket admission plus weighted fair
	// dispatch across the given tenant records.
	Tenants []tenant.Config
	// Controller tunes control loops built by NewController (period,
	// scaler, hysteresis, replacement budget, dry-run). A zero Period
	// inherits AllocPeriod.
	Controller controller.Options
}

// Arlo is a configured system.
type Arlo struct {
	// Model is the calibrated latency model.
	Model *model.LatencyModel
	// Profile is the offline runtime profile.
	Profile *profiler.Profile
	// Solver is the Runtime Scheduler's allocation solver.
	Solver *allocator.Solver

	lambda      float64
	alpha       float64
	maxPeek     int
	allocPeriod time.Duration
	policy      string
	batchSize   int
	batchDelay  time.Duration
	continuous  bool
	meanOut     float64
	tenants     []tenant.Config
	ctrlOpts    controller.Options
}

func build(opts Options) (*Arlo, error) {
	lm := opts.LatencyModel
	if lm == nil {
		name := opts.Model
		if name == "" {
			name = model.BertBaseArch.Name
		}
		lm = model.ByName(name)
		if lm == nil {
			return nil, fmt.Errorf("core: unknown model %q", name)
		}
	}
	slo := opts.SLO
	if slo == 0 {
		preset, ok := model.SLO(lm.Arch())
		if !ok {
			return nil, fmt.Errorf("core: model %q has no preset SLO; set Options.SLO", lm.Arch().Name)
		}
		slo = preset
	}
	numRt := opts.NumRuntimes
	if numRt == 0 {
		numRt = lm.Arch().NumRuntimes()
	}
	if numRt <= 0 || lm.Arch().MaxLength%numRt != 0 {
		return nil, fmt.Errorf("core: %d runtimes must evenly divide max length %d", numRt, lm.Arch().MaxLength)
	}
	p, err := profiler.StaticProfile(lm, lm.Arch().RuntimeLengthsN(numRt), slo)
	if err != nil {
		return nil, err
	}
	solver, err := allocator.NewSolver(p)
	if err != nil {
		return nil, err
	}
	a := &Arlo{
		Model:       lm,
		Profile:     p,
		Solver:      solver,
		lambda:      defaultFloat(opts.Lambda, 0.85),
		alpha:       defaultFloat(opts.Alpha, 0.9),
		maxPeek:     defaultInt(opts.MaxPeek, 6),
		allocPeriod: defaultDur(opts.AllocPeriod, 120*time.Second),
		policy:      opts.DispatchPolicy,
		batchSize:   opts.BatchSize,
		batchDelay:  opts.BatchDelay,
		continuous:  opts.Continuous,
		meanOut:     opts.MeanOutTokens,
		tenants:     opts.Tenants,
		ctrlOpts:    opts.Controller,
	}
	if a.policy == "" {
		a.policy = "RS"
	}
	// Validate dispatch policy and parameters eagerly.
	ml, err := queue.NewMultiLevel(p.MaxLengths())
	if err != nil {
		return nil, err
	}
	if _, err := a.DispatcherFactory()(ml); err != nil {
		return nil, err
	}
	return a, nil
}

func defaultFloat(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}

func defaultInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func defaultDur(v, d time.Duration) time.Duration {
	if v == 0 {
		return d
	}
	return v
}

// SLO returns the configured service level objective.
func (a *Arlo) SLO() time.Duration { return a.Profile.SLO }

// DispatcherFactory returns the configured dispatch-policy factory: the
// Request Scheduler with this system's Algorithm 1 parameters by default,
// or the named baseline policy.
func (a *Arlo) DispatcherFactory() sim.DispatcherFactory {
	if a.policy != "" && a.policy != "RS" {
		policy := a.policy
		return func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.New(policy, ml)
		}
	}
	return func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
		return dispatch.NewRequestSchedulerParams(ml, a.lambda, a.alpha, a.maxPeek)
	}
}

// DispatchPolicy returns the configured dispatch policy name.
func (a *Arlo) DispatchPolicy() string { return a.policy }

// AllocatorFunc returns the Runtime Scheduler policy as a simulator hook.
func (a *Arlo) AllocatorFunc() sim.AllocatorFunc {
	return func(g int, q []float64) ([]int, error) {
		al, err := a.Solver.Allocate(g, q)
		if err != nil {
			return nil, err
		}
		return al.N, nil
	}
}

// Demand estimates per-runtime demand (requests per SLO window per length
// bin) from a trace — the Q_i input of the allocation program.
func (a *Arlo) Demand(tr *trace.Trace) []float64 {
	return tr.BinDemand(a.Profile.MaxLengths(), a.Profile.SLO)
}

// Allocate solves the Runtime Scheduler program for g GPUs and demand q.
func (a *Arlo) Allocate(g int, q []float64) (*allocator.Allocation, error) {
	return a.Solver.Allocate(g, q)
}

// SimConfig builds a simulator configuration for a trace on g GPUs: the
// initial allocation is solved from the first two minutes of the trace
// (standing in for history) and reallocation runs every AllocPeriod.
func (a *Arlo) SimConfig(tr *trace.Trace, g int) (sim.Config, error) {
	if tr == nil {
		return sim.Config{}, fmt.Errorf("core: nil trace")
	}
	warm := tr
	if a.allocPeriod < tr.Duration {
		warm = tr.Clip(0, a.allocPeriod)
	}
	initial, err := a.Solver.Allocate(g, a.Demand(warm))
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{
		Profile:           a.Profile,
		Trace:             tr,
		InitialAllocation: initial.N,
		Dispatcher:        a.DispatcherFactory(),
		Allocate:          a.AllocatorFunc(),
		AllocPeriod:       a.allocPeriod,
		ReplacementTime:   time.Second,
		MaxBatch:          a.batchSize,
	}, nil
}

// Simulate runs the discrete-event simulation of this system on a trace
// with a fixed pool of g GPUs.
func (a *Arlo) Simulate(tr *trace.Trace, g int) (*sim.Result, error) {
	cfg, err := a.SimConfig(tr, g)
	if err != nil {
		return nil, err
	}
	return sim.Run(cfg)
}

// SimulateAutoScaled runs the simulation starting from g GPUs with the
// target-tracking auto-scaler enabled (section 4).
func (a *Arlo) SimulateAutoScaled(tr *trace.Trace, g int) (*sim.Result, error) {
	cfg, err := a.SimConfig(tr, g)
	if err != nil {
		return nil, err
	}
	scaler, err := allocator.NewAutoScaler(a.Profile.SLO)
	if err != nil {
		return nil, err
	}
	cfg.Scaler = scaler
	cfg.ScalePeriod = time.Second
	return sim.Run(cfg)
}

// NewCluster starts a real-time emulated cluster of g GPUs allocated for
// the given expected demand (nil demand spreads GPUs evenly).
func (a *Arlo) NewCluster(g int, q []float64) (*cluster.Cluster, error) {
	var initial []int
	var err error
	if q == nil {
		initial, err = allocator.EvenAllocation(g, len(a.Profile.Runtimes))
	} else {
		var al *allocator.Allocation
		al, err = a.Solver.Allocate(g, q)
		if al != nil {
			initial = al.N
		}
	}
	if err != nil {
		return nil, err
	}
	var reg *tenant.Registry
	if len(a.tenants) > 0 {
		reg, err = tenant.NewRegistry(a.tenants...)
		if err != nil {
			return nil, err
		}
	}
	return cluster.New(cluster.Config{
		Profile:           a.Profile,
		InitialAllocation: initial,
		Dispatcher:        a.DispatcherFactory(),
		MaxBatch:          a.batchSize,
		BatchDelay:        a.batchDelay,
		Continuous:        a.continuous,
		MeanOutTokens:     a.meanOut,
		Tenants:           reg,
	})
}
