package core

import (
	"testing"
	"time"

	"arlo/internal/model"
	"arlo/internal/trace"
)

func TestNewDefaults(t *testing.T) {
	a, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if a.Model.Arch().Name != "bert-base" {
		t.Errorf("default model = %q, want bert-base", a.Model.Arch().Name)
	}
	if a.SLO() != 150*time.Millisecond {
		t.Errorf("default SLO = %v, want 150ms", a.SLO())
	}
	if len(a.Profile.Runtimes) != 8 {
		t.Errorf("default runtimes = %d, want 8", len(a.Profile.Runtimes))
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := NewSystem(WithModel("gpt-9000")); err == nil {
		t.Error("unknown model should fail")
	}
	if _, err := NewSystem(WithModel("dolly")); err == nil {
		t.Error("dolly without SLO should fail (no preset)")
	}
	if _, err := NewSystem(WithNumRuntimes(7)); err == nil {
		t.Error("non-divisor runtime count should fail")
	}
	if _, err := NewSystem(WithSchedulerParams(2, 0, 0)); err == nil {
		t.Error("bad lambda should fail")
	}
	if _, err := NewSystem(WithSchedulerParams(0, -1, 0)); err == nil {
		t.Error("bad alpha should fail")
	}
	if _, err := NewSystem(WithSchedulerParams(0, 0, -3)); err == nil {
		t.Error("bad peek level should fail")
	}
}

func TestNewWithCustomSLOAndModel(t *testing.T) {
	a, err := NewSystem(WithModel("dolly"), WithSLO(2*time.Second), WithNumRuntimes(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Profile.Runtimes) != 4 {
		t.Errorf("runtimes = %d, want 4", len(a.Profile.Runtimes))
	}
	b, err := NewSystem(WithLatencyModel(model.BertLarge()))
	if err != nil {
		t.Fatal(err)
	}
	if b.SLO() != 450*time.Millisecond {
		t.Errorf("BERT-Large preset SLO = %v, want 450ms", b.SLO())
	}
}

func TestDemandAndAllocate(t *testing.T) {
	a, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(trace.Stable(5, 500, 30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	q := a.Demand(tr)
	if len(q) != 8 {
		t.Fatalf("demand bins = %d, want 8", len(q))
	}
	total := 0.0
	for _, v := range q {
		total += v
	}
	if total <= 0 {
		t.Error("demand should be positive")
	}
	al, err := a.Allocate(10, q)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, n := range al.N {
		sum += n
	}
	if sum != 10 {
		t.Errorf("allocation sums to %d, want 10", sum)
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	a, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(trace.Stable(7, 600, 20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Simulate(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Rejected != len(tr.Requests) {
		t.Error("conservation violated")
	}
	if res.Summary.Mean <= 0 || res.Summary.P98 < res.Summary.Mean {
		t.Errorf("suspicious summary: %v", res.Summary)
	}
	// At 600 req/s on 10 GPUs, Arlo should hold the SLO comfortably.
	if res.Summary.SLOFraction > 0.05 {
		t.Errorf("SLO violations = %.1f%%, want < 5%%", 100*res.Summary.SLOFraction)
	}
	if _, err := a.Simulate(nil, 10); err == nil {
		t.Error("nil trace should fail")
	}
}

func TestSimulateAutoScaled(t *testing.T) {
	a, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(trace.Bursty(9, 1500, 40*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.SimulateAutoScaled(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeWeightedGPUs <= 0 {
		t.Error("time-weighted GPU count missing")
	}
	if res.Completed+res.Rejected != len(tr.Requests) {
		t.Error("conservation violated")
	}
}

func TestNewClusterEvenAndSolved(t *testing.T) {
	a, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := a.NewCluster(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Instances() != 8 {
		t.Errorf("instances = %d, want 8", cl.Instances())
	}
	cl.Close()

	q := make([]float64, 8)
	q[0] = 100
	cl2, err := a.NewCluster(8, q)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	lat, err := cl2.Submit(20)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Error("cluster latency should be positive")
	}
}
