package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, st, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if st != Optimal {
		t.Fatalf("status = %v, want optimal", st)
	}
	return sol
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMaximizationAsMin(t *testing.T) {
	// maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6  => x=4, y=0, obj 12.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-3, -2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Sense: LE, RHS: 6},
		},
	}
	sol := solveOK(t, p)
	if !approx(sol.Objective, -12) {
		t.Errorf("objective = %v, want -12", sol.Objective)
	}
	if !approx(sol.X[0], 4) || !approx(sol.X[1], 0) {
		t.Errorf("x = %v, want [4 0]", sol.X)
	}
}

func TestGEConstraintsAndPhase1(t *testing.T) {
	// minimize 2x + 3y s.t. x + y >= 10, x >= 3  => x=10? No: y free to 0;
	// cheapest is y=0, x=10 (cost 20) vs x=3,y=7 (6+21=27). Optimal x=10.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: GE, RHS: 10},
			{Coeffs: []float64{1, 0}, Sense: GE, RHS: 3},
		},
	}
	sol := solveOK(t, p)
	if !approx(sol.Objective, 20) {
		t.Errorf("objective = %v, want 20", sol.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// minimize x + 2y s.t. x + y = 5, x <= 3 => x=3, y=2, obj 7.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 5},
			{Coeffs: []float64{1, 0}, Sense: LE, RHS: 3},
		},
	}
	sol := solveOK(t, p)
	if !approx(sol.Objective, 7) || !approx(sol.X[0], 3) || !approx(sol.X[1], 2) {
		t.Errorf("sol = %+v, want x=[3 2] obj 7", sol)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: LE, RHS: 1},
			{Coeffs: []float64{1}, Sense: GE, RHS: 2},
		},
	}
	_, st, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if st != Infeasible {
		t.Errorf("status = %v, want infeasible", st)
	}
}

func TestUnbounded(t *testing.T) {
	// minimize -x with only x >= 0: unbounded below.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: GE, RHS: 0},
		},
	}
	_, st, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if st != Unbounded {
		t.Errorf("status = %v, want unbounded", st)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -2 with minimize x + y => y >= x + 2, best x=0, y=2.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, -1}, Sense: LE, RHS: -2},
		},
	}
	sol := solveOK(t, p)
	if !approx(sol.Objective, 2) {
		t.Errorf("objective = %v, want 2", sol.Objective)
	}
}

func TestDegenerateProblemTerminates(t *testing.T) {
	// A classic cycling-prone problem (Beale); Bland's rule must terminate.
	p := &Problem{
		NumVars:   4,
		Objective: []float64{-0.75, 150, -0.02, 6},
		Constraints: []Constraint{
			{Coeffs: []float64{0.25, -60, -1.0 / 25, 9}, Sense: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -1.0 / 50, 3}, Sense: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Sense: LE, RHS: 1},
		},
	}
	sol := solveOK(t, p)
	if !approx(sol.Objective, -0.05) {
		t.Errorf("Beale objective = %v, want -0.05", sol.Objective)
	}
}

func TestMalformedProblems(t *testing.T) {
	if _, _, err := Solve(nil); err == nil {
		t.Error("nil problem should error")
	}
	if _, _, err := Solve(&Problem{NumVars: 0}); err == nil {
		t.Error("zero vars should error")
	}
	if _, _, err := Solve(&Problem{NumVars: 1, Objective: []float64{1, 2}}); err == nil {
		t.Error("oversized objective should error")
	}
	if _, _, err := Solve(&Problem{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{1, 2}, Sense: LE, RHS: 1}}}); err == nil {
		t.Error("oversized constraint should error")
	}
	if _, _, err := Solve(&Problem{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{1}, Sense: LE, RHS: math.NaN()}}}); err == nil {
		t.Error("NaN RHS should error")
	}
}

func TestNoConstraintsMinimizePositiveCost(t *testing.T) {
	// With x >= 0 and positive costs, optimum is x = 0.
	p := &Problem{NumVars: 3, Objective: []float64{1, 2, 3}}
	sol := solveOK(t, p)
	if !approx(sol.Objective, 0) {
		t.Errorf("objective = %v, want 0", sol.Objective)
	}
}

// TestRandomFeasibilityAgainstBruteForce cross-checks the simplex optimum
// against a fine grid search on random small LPs.
func TestRandomFeasibilityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 60; trial++ {
		// Two vars, box-bounded, random <= constraints: grid-checkable.
		nCons := 1 + rng.Intn(3)
		p := &Problem{
			NumVars:   2,
			Objective: []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2},
			Constraints: []Constraint{
				{Coeffs: []float64{1, 0}, Sense: LE, RHS: 10},
				{Coeffs: []float64{0, 1}, Sense: LE, RHS: 10},
			},
		}
		for k := 0; k < nCons; k++ {
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: []float64{rng.Float64(), rng.Float64()},
				Sense:  LE,
				RHS:    rng.Float64() * 10,
			})
		}
		sol, st, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if st != Optimal {
			t.Fatalf("trial %d: status %v", trial, st)
		}
		// Grid search lower bound check.
		best := math.Inf(1)
		for xi := 0.0; xi <= 10.0; xi += 0.05 {
			for yi := 0.0; yi <= 10.0; yi += 0.05 {
				ok := true
				for _, c := range p.Constraints {
					if c.Coeffs[0]*xi+c.Coeffs[1]*yi > c.RHS+1e-9 {
						ok = false
						break
					}
				}
				if ok {
					v := p.Objective[0]*xi + p.Objective[1]*yi
					if v < best {
						best = v
					}
				}
			}
		}
		if sol.Objective > best+1e-6 {
			t.Errorf("trial %d: simplex %.6f worse than grid %.6f", trial, sol.Objective, best)
		}
		// Solution must satisfy all constraints.
		for ci, c := range p.Constraints {
			if c.Coeffs[0]*sol.X[0]+c.Coeffs[1]*sol.X[1] > c.RHS+1e-6 {
				t.Errorf("trial %d: constraint %d violated", trial, ci)
			}
		}
	}
}

func TestSolutionAlwaysFeasibleQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64()*2 - 0.5
		}
		for i := 0; i < m; i++ {
			coeffs := make([]float64, n)
			for j := range coeffs {
				coeffs[j] = rng.Float64()
			}
			p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Sense: LE, RHS: 1 + rng.Float64()*5})
		}
		// Add a box so negative costs stay bounded.
		for j := 0; j < n; j++ {
			coeffs := make([]float64, n)
			coeffs[j] = 1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Sense: LE, RHS: 20})
		}
		sol, st, err := Solve(p)
		if err != nil || st != Optimal {
			return false
		}
		for _, c := range p.Constraints {
			lhs := 0.0
			for j, v := range c.Coeffs {
				lhs += v * sol.X[j]
			}
			if lhs > c.RHS+1e-6 {
				return false
			}
		}
		for _, v := range sol.X {
			if v < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestStatusAndSenseStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("bad status strings")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("bad sense strings")
	}
	if Status(42).String() == "" || Sense(42).String() == "" {
		t.Error("unknown values should still print")
	}
}
