// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c.x
//	subject to  A_i.x (<=|=|>=) b_i,  x >= 0.
//
// It is the pure-Go substrate standing in for the commercial solver
// (GUROBI) the paper uses for the Runtime Scheduler's integer program;
// package ilp adds branch-and-bound integrality on top. Bland's rule is
// used for anti-cycling, so the solver always terminates.
package lp

import (
	"fmt"
	"math"
)

// Sense is the relation of one constraint.
type Sense int

const (
	// LE is "less than or equal".
	LE Sense = iota
	// GE is "greater than or equal".
	GE
	// EQ is "equal".
	EQ
)

// String returns the relational symbol.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Constraint is one linear constraint: Coeffs.x Sense RHS. Coeffs shorter
// than the variable count are implicitly zero-padded.
type Constraint struct {
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a linear program over NumVars non-negative variables.
type Problem struct {
	NumVars     int
	Objective   []float64 // minimized; shorter slices are zero-padded
	Constraints []Constraint
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies all constraints.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is an optimal point.
type Solution struct {
	X         []float64
	Objective float64
}

const eps = 1e-9

// Solve optimizes the problem. A nil Solution is returned for non-Optimal
// statuses. An error indicates a malformed problem, not infeasibility.
func Solve(p *Problem) (*Solution, Status, error) {
	if p == nil {
		return nil, Infeasible, fmt.Errorf("lp: nil problem")
	}
	if p.NumVars <= 0 {
		return nil, Infeasible, fmt.Errorf("lp: NumVars must be positive, got %d", p.NumVars)
	}
	if len(p.Objective) > p.NumVars {
		return nil, Infeasible, fmt.Errorf("lp: objective has %d coefficients for %d variables", len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) > p.NumVars {
			return nil, Infeasible, fmt.Errorf("lp: constraint %d has %d coefficients for %d variables", i, len(c.Coeffs), p.NumVars)
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return nil, Infeasible, fmt.Errorf("lp: constraint %d has invalid RHS %v", i, c.RHS)
		}
	}

	t := newTableau(p)
	// Phase 1: minimize the sum of artificial variables.
	if t.numArtificial > 0 {
		t.setPhase1Objective()
		if st := t.iterate(); st == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded here
			// means numerical trouble, treat as infeasible.
			return nil, Infeasible, nil
		}
		if t.objectiveValue() > 1e-7 {
			return nil, Infeasible, nil
		}
		t.driveOutArtificials()
	}
	// Phase 2: the real objective.
	t.setPhase2Objective(p)
	if st := t.iterate(); st == Unbounded {
		return nil, Unbounded, nil
	}
	x := t.extract(p.NumVars)
	obj := 0.0
	for j, c := range p.Objective {
		obj += c * x[j]
	}
	return &Solution{X: x, Objective: obj}, Optimal, nil
}

// tableau is the dense simplex tableau. Columns are [structural vars |
// slack/surplus | artificial | RHS]; the last row is the (negated-cost)
// objective row.
type tableau struct {
	rows          [][]float64 // m constraint rows + 1 objective row
	basis         []int       // basic variable per constraint row
	numVars       int         // structural variables
	numSlack      int
	numArtificial int
	artStart      int // column index of the first artificial
}

func newTableau(p *Problem) *tableau {
	m := len(p.Constraints)
	// Count slack and artificial columns.
	numSlack, numArt := 0, 0
	for _, c := range p.Constraints {
		rhs := c.RHS
		sense := c.Sense
		if rhs < 0 {
			sense = flip(sense)
		}
		switch sense {
		case LE:
			numSlack++
		case GE:
			numSlack++ // surplus
			numArt++
		case EQ:
			numArt++
		}
	}
	width := p.NumVars + numSlack + numArt + 1
	t := &tableau{
		rows:          make([][]float64, m+1),
		basis:         make([]int, m),
		numVars:       p.NumVars,
		numSlack:      numSlack,
		numArtificial: numArt,
		artStart:      p.NumVars + numSlack,
	}
	for i := range t.rows {
		t.rows[i] = make([]float64, width)
	}
	slackCol := p.NumVars
	artCol := t.artStart
	for i, c := range p.Constraints {
		row := t.rows[i]
		sign := 1.0
		sense := c.Sense
		if c.RHS < 0 {
			sign = -1
			sense = flip(sense)
		}
		for j, v := range c.Coeffs {
			row[j] = sign * v
		}
		row[width-1] = sign * c.RHS
		switch sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1 // surplus
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
	}
	return t
}

func flip(s Sense) Sense {
	switch s {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

func (t *tableau) width() int  { return len(t.rows[0]) }
func (t *tableau) height() int { return len(t.rows) - 1 }

// setPhase1Objective loads the objective row with the sum of artificials
// expressed in terms of non-basic variables.
func (t *tableau) setPhase1Objective() {
	obj := t.rows[t.height()]
	for j := range obj {
		obj[j] = 0
	}
	for j := t.artStart; j < t.artStart+t.numArtificial; j++ {
		obj[j] = 1
	}
	// Eliminate basic (artificial) variables from the objective row.
	for i, b := range t.basis {
		if obj[b] != 0 {
			t.addRowMultiple(t.height(), i, -obj[b])
		}
	}
}

// setPhase2Objective loads the real objective, eliminating basic columns,
// and pins artificial columns so they never re-enter.
func (t *tableau) setPhase2Objective(p *Problem) {
	obj := t.rows[t.height()]
	for j := range obj {
		obj[j] = 0
	}
	for j, c := range p.Objective {
		obj[j] = c
	}
	for i, b := range t.basis {
		if obj[b] != 0 {
			t.addRowMultiple(t.height(), i, -obj[b])
		}
	}
}

// addRowMultiple adds factor*rows[src] to rows[dst].
func (t *tableau) addRowMultiple(dst, src int, factor float64) {
	d, s := t.rows[dst], t.rows[src]
	for j := range d {
		d[j] += factor * s[j]
	}
}

// objectiveValue returns the current objective (RHS of the objective row,
// negated because the row stores reduced costs).
func (t *tableau) objectiveValue() float64 {
	return -t.rows[t.height()][t.width()-1]
}

// iterate runs simplex pivots until optimality or unboundedness.
func (t *tableau) iterate() Status {
	m := t.height()
	obj := t.rows[m]
	for iter := 0; ; iter++ {
		// Bland's rule: entering variable = lowest-index column with a
		// negative reduced cost. Artificials are excluded in phase 2 by
		// their zeroed columns (driveOutArtificials pins them).
		enter := -1
		for j := 0; j < t.width()-1; j++ {
			if obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test: lowest-index minimizer (Bland).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			a := t.rows[i][enter]
			if a > eps {
				ratio := t.rows[i][t.width()-1] / a
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	row := t.rows[leave]
	p := row[enter]
	for j := range row {
		row[j] /= p
	}
	for i := range t.rows {
		if i == leave {
			continue
		}
		if f := t.rows[i][enter]; f != 0 {
			t.addRowMultiple(i, leave, -f)
		}
	}
	t.basis[leave] = enter
}

// driveOutArtificials pivots remaining basic artificials out of the basis
// where possible and zeroes artificial columns so phase 2 ignores them.
func (t *tableau) driveOutArtificials() {
	for i, b := range t.basis {
		if b < t.artStart {
			continue
		}
		// Find a non-artificial column with a non-zero entry to pivot on.
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: the artificial stays basic at value 0; the
			// row is all-zero over structural columns and harmless.
			_ = i
		}
	}
	// Pin artificial columns at zero cost and remove them from play.
	for i := range t.rows {
		for j := t.artStart; j < t.artStart+t.numArtificial; j++ {
			if t.basisHas(j) {
				continue
			}
			t.rows[i][j] = 0
		}
	}
}

func (t *tableau) basisHas(col int) bool {
	for _, b := range t.basis {
		if b == col {
			return true
		}
	}
	return false
}

// extract reads the structural variable values out of the tableau.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			v := t.rows[i][t.width()-1]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}
