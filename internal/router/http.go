// The router's JSON front end: the same /v1/infer and /v1/generate
// surface a single arlo-server exposes, answered by forwarding over the
// wire protocol to a shard. Error envelopes reuse serve's exported types
// and the wire status' stable code strings, so a shard's typed rejection
// (rate_limited with Retry-After, unserviceable, congested, too_long)
// reaches the HTTP client byte-compatible with the router-less path —
// never rewrapped into a generic 502.

package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"arlo/internal/serve"
	"arlo/internal/wire"
)

// InferResponse is the router's reply to POST /v1/infer: the shard's
// InferResponse plus the route stage.
type InferResponse struct {
	serve.InferResponse
	// RouteMS is the time the router spent choosing a shard (including
	// failed reroute hops) before the successful forward began.
	RouteMS float64 `json:"route_ms"`
	// Shard is the shard that served the request.
	Shard string `json:"shard"`
	// Hops is how many reroute hops the request took (omitted when it
	// was served by the first shard picked).
	Hops int `json:"hops,omitempty"`
}

// GenerateResponse is the router's reply to POST /v1/generate.
type GenerateResponse struct {
	serve.GenerateResponse
	RouteMS float64 `json:"route_ms"`
	Shard   string  `json:"shard"`
	Hops    int     `json:"hops,omitempty"`
}

// inferLabels mirrors the emulated classifier's label strings; wire
// responses carry the index.
var inferLabels = [3]string{"negative", "neutral", "positive"}

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) { r.mux.ServeHTTP(w, req) }

func (r *Router) handleInfer(w http.ResponseWriter, hr *http.Request) {
	if hr.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, serve.CodeMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(io.LimitReader(hr.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "read error")
		return
	}
	var jreq serve.InferRequest
	if err := json.Unmarshal(body, &jreq); err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "invalid JSON")
		return
	}
	if jreq.Text == "" {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "empty text")
		return
	}
	wreq := wire.Request{
		Kind:   wire.KindRequestV2,
		Mode:   wire.ModeTokens,
		Tenant: tenantOf(hr, jreq.Tenant),
	}
	r.finishInfer(w, hr, &wreq, jreq.Text)
}

func (r *Router) handleGenerate(w http.ResponseWriter, hr *http.Request) {
	if hr.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, serve.CodeMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(io.LimitReader(hr.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "read error")
		return
	}
	var jreq serve.GenerateRequest
	if err := decodeStrict(body, &jreq); err != nil {
		// Unknown fields are the versioning rejection, not a malformed
		// body — the same split the shards' own /v1/generate makes.
		if errors.Is(err, serve.ErrUnsupportedField) {
			writeError(w, http.StatusBadRequest, serve.CodeUnsupportedField, err.Error())
		} else {
			writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "invalid JSON")
		}
		return
	}
	if jreq.Text == "" {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "empty text")
		return
	}
	if jreq.MaxNewTokens < 1 || jreq.MaxNewTokens > serve.MaxNewTokensLimit {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest,
			fmt.Sprintf("max_new_tokens must be in [1, %d], got %d", serve.MaxNewTokensLimit, jreq.MaxNewTokens))
		return
	}
	wreq := wire.Request{
		Kind:         wire.KindGenRequestV2,
		Mode:         wire.ModeTokens,
		MaxNewTokens: uint32(jreq.MaxNewTokens),
		Tenant:       tenantOf(hr, jreq.Tenant),
	}
	r.finishInfer(w, hr, &wreq, jreq.Text)
}

// finishInfer tokenizes, routes and answers one HTTP request whose wire
// header (kind, tenant, generation budget) is already built.
func (r *Router) finishInfer(w http.ResponseWriter, hr *http.Request, wreq *wire.Request, text string) {
	ids := r.tok.Encode(text, r.cfg.MaxLength)
	wreq.Tokens = make([]uint32, len(ids))
	for i, id := range ids {
		wreq.Tokens[i] = uint32(id)
	}
	ctx := hr.Context()
	if dl, ok := ctx.Deadline(); ok {
		wreq.Deadline = dl.UnixNano()
	}
	resp, info := r.route(ctx, wreq, len(ids))
	if resp.Status != wire.StatusOK {
		writeWireError(w, &resp)
		return
	}
	label := ""
	if int(resp.Label) < len(inferLabels) {
		label = inferLabels[resp.Label]
	}
	if wreq.Kind == wire.KindGenRequestV2 {
		out := GenerateResponse{
			GenerateResponse: serve.GenerateResponse{
				Label:          label,
				SequenceLength: int(resp.SeqLen),
				OutputTokens:   int(resp.OutTokens),
				TTFTMS:         float64(resp.TTFTNS) / float64(time.Millisecond),
				LatencyMS:      float64(resp.LatencyNS) / float64(time.Millisecond),
				QueueMS:        float64(resp.QueueNS) / float64(time.Millisecond),
				ExecMS:         float64(resp.ExecNS) / float64(time.Millisecond),
				DemotionHops:   int(resp.DemotionHops),
				Instance:       int(resp.Instance),
				Runtime:        int(resp.Runtime),
				Batch:          resp.Batch,
				BatchSize:      int(resp.BatchSize),
			},
			RouteMS: float64(info.route) / float64(time.Millisecond),
			Shard:   info.shard,
			Hops:    info.hops,
		}
		if resp.OutTokens > 1 && resp.LatencyNS > resp.TTFTNS {
			out.TPOTMS = float64(resp.LatencyNS-resp.TTFTNS) / float64(resp.OutTokens-1) / float64(time.Millisecond)
		}
		writeJSON(w, out)
		return
	}
	writeJSON(w, InferResponse{
		InferResponse: serve.InferResponse{
			Label:          label,
			SequenceLength: int(resp.SeqLen),
			LatencyMS:      float64(resp.LatencyNS) / float64(time.Millisecond),
			QueueMS:        float64(resp.QueueNS) / float64(time.Millisecond),
			ExecMS:         float64(resp.ExecNS) / float64(time.Millisecond),
			DemotionHops:   int(resp.DemotionHops),
			Instance:       int(resp.Instance),
			Runtime:        int(resp.Runtime),
			Batch:          resp.Batch,
			BatchSize:      int(resp.BatchSize),
		},
		RouteMS: float64(info.route) / float64(time.Millisecond),
		Shard:   info.shard,
		Hops:    info.hops,
	})
}

// ShardHealth is one shard's state in the router's /healthz aggregation.
type ShardHealth struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// State is "up" when the shard is reachable and its last snapshot
	// reports serving instances, "down" otherwise.
	State string `json:"state"`
	// Healthy, Degraded and Dead are the shard's per-state instance
	// counts from its last snapshot (zero before the first refresh).
	Healthy  int `json:"healthy"`
	Degraded int `json:"degraded"`
	Dead     int `json:"dead"`
	// SnapshotAgeMS is how stale the shard's snapshot is (-1 before the
	// first refresh).
	SnapshotAgeMS float64 `json:"snapshot_age_ms"`
	// Seq is the snapshot's shard-side sequence number.
	Seq uint64 `json:"seq"`
}

// HealthResponse is the router's /healthz body: tier status plus every
// shard's state.
type HealthResponse struct {
	// Status is "ok" while at least one shard is up, "unavailable"
	// otherwise.
	Status string        `json:"status"`
	Shards []ShardHealth `json:"shards"`
}

func (r *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{Status: "unavailable", Shards: make([]ShardHealth, 0, len(r.shards))}
	status := http.StatusServiceUnavailable
	for _, sh := range r.shards {
		shh := ShardHealth{Name: sh.name, Addr: sh.addr, State: "down", SnapshotAgeMS: -1}
		e := sh.snapshot()
		if e != nil {
			shh.Healthy = int(e.snap.Healthy)
			shh.Degraded = int(e.snap.Degraded)
			shh.Dead = int(e.snap.Dead)
			shh.SnapshotAgeMS = float64(time.Since(e.at)) / float64(time.Millisecond)
			shh.Seq = e.snap.Seq
		}
		if !sh.down.Load() && (e == nil || e.snap.Serviceable()) {
			shh.State = "up"
			resp.Status = "ok"
			status = http.StatusOK
		}
		resp.Shards = append(resp.Shards, shh)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

// writeWireError renders a shard's (or the router's own) typed non-OK
// status as the JSON error envelope the shard itself would have written,
// including the Retry-After hint on rate_limited answers.
func writeWireError(w http.ResponseWriter, resp *wire.Response) {
	if resp.Status == wire.StatusRateLimited && resp.RetryAfterNS > 0 {
		secs := int64(math.Ceil(time.Duration(resp.RetryAfterNS).Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeError(w, wireHTTPStatus(resp.Status), resp.Status.String(), resp.Message)
}

// wireHTTPStatus maps a binary status onto the HTTP status the shard's
// own JSON endpoint would have used.
func wireHTTPStatus(s wire.Status) int {
	switch s {
	case wire.StatusInvalid, wire.StatusUnsupportedField:
		return http.StatusBadRequest
	case wire.StatusTooLong:
		return http.StatusRequestEntityTooLarge
	case wire.StatusDeadline:
		return http.StatusGatewayTimeout
	case wire.StatusCongested, wire.StatusNoInstances, wire.StatusUnavailable, wire.StatusUnserviceable:
		return http.StatusServiceUnavailable
	case wire.StatusRateLimited:
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// tenantOf resolves the submitting tenant: the X-Arlo-Tenant header wins
// over the body field, matching the shards' precedence.
func tenantOf(hr *http.Request, bodyTenant string) string {
	if h := hr.Header.Get(serve.TenantHeader); h != "" {
		return h
	}
	return bodyTenant
}

// decodeStrict is the shards' strict JSON decode: unknown fields are
// typed serve.ErrUnsupportedField, other decode failures plain errors.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if strings.Contains(err.Error(), "unknown field") {
			return fmt.Errorf("%w: %v", serve.ErrUnsupportedField, err)
		}
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON object")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(serve.ErrorEnvelope{Error: serve.ErrorBody{Code: code, Message: msg}})
}
