// The router's binary front end: the same pipelined frame protocol a
// shard speaks, answered by forwarding. The router tokenizes ModeText
// bodies itself (one tokenization per request, router-side) and always
// forwards V2 frames, so tenant identity and deadlines survive the hop
// whichever frame revision the client spoke.

package router

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"time"

	"arlo/internal/wire"
)

// ServeWire accepts binary-protocol connections on l until the listener
// fails or the router is closed (Close closes l and returns nil here).
func (r *Router) ServeWire(l net.Listener) error {
	r.listMu.Lock()
	if r.closing.Load() {
		r.listMu.Unlock()
		_ = l.Close()
		return nil
	}
	r.listeners = append(r.listeners, l)
	r.listMu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			if r.closing.Load() {
				return nil
			}
			return err
		}
		go r.serveWireConn(c)
	}
}

func (r *Router) trackConn(c net.Conn) bool {
	r.listMu.Lock()
	if r.closing.Load() {
		r.listMu.Unlock()
		_ = c.Close()
		return false
	}
	if r.conns == nil {
		r.conns = make(map[net.Conn]struct{})
	}
	r.conns[c] = struct{}{}
	r.listMu.Unlock()
	return true
}

func (r *Router) untrackConn(c net.Conn) {
	r.listMu.Lock()
	delete(r.conns, c)
	r.listMu.Unlock()
}

// serveWireConn runs one client connection: decode, forward via the
// routing loop, answer with the client's own id restored.
func (r *Router) serveWireConn(nc net.Conn) {
	if !r.trackConn(nc) {
		return
	}
	defer r.untrackConn(nc)
	defer nc.Close()
	br := bufio.NewReaderSize(nc, 32<<10)
	fw := &frontWriter{bw: bufio.NewWriterSize(nc, 32<<10)}
	var wg sync.WaitGroup
	defer wg.Wait()
	var buf []byte
	for {
		var payload []byte
		var err error
		payload, buf, err = wire.ReadFrame(br, buf)
		if err != nil {
			return
		}
		req, err := wire.DecodeRequest(payload, nil)
		if err != nil {
			if errors.Is(err, wire.ErrBadKind) || errors.Is(err, wire.ErrBadMode) ||
				errors.Is(err, wire.ErrBadVersion) {
				fw.send(&wire.Response{ID: req.ID, Status: wire.StatusUnsupportedField, Message: err.Error()})
				continue
			}
			fw.send(&wire.Response{ID: req.ID, Status: wire.StatusInvalid, Message: "malformed request"})
			continue
		}
		// DecodeRequest aliases the read buffer (Text); ModeTokens decodes
		// into a fresh slice already, and the forwarded request below
		// re-tokenizes Text before the next ReadFrame... but the forward
		// happens on another goroutine, so copy what aliases.
		if req.Mode == wire.ModeText {
			req.Text = string(append([]byte(nil), req.Text...))
		}
		wg.Add(1)
		go func(req wire.Request) {
			defer wg.Done()
			resp := r.routeWire(&req)
			fw.send(&resp)
		}(req)
	}
}

// routeWire adapts one decoded front-end request into the routing loop:
// tokenize text, upgrade the frame to V2, forward, restore the client id.
func (r *Router) routeWire(req *wire.Request) wire.Response {
	clientID := req.ID
	gen := req.Kind == wire.KindGenRequest || req.Kind == wire.KindGenRequestV2
	fwd := wire.Request{
		Kind:         wire.KindRequestV2,
		Mode:         wire.ModeTokens,
		Deadline:     req.Deadline,
		Tenant:       req.Tenant,
		MaxNewTokens: req.MaxNewTokens,
	}
	if gen {
		fwd.Kind = wire.KindGenRequestV2
	}
	switch req.Mode {
	case wire.ModeText:
		if req.Text == "" {
			return wire.Response{ID: clientID, Status: wire.StatusInvalid, Message: "empty text"}
		}
		ids := r.tok.Encode(req.Text, r.cfg.MaxLength)
		fwd.Tokens = make([]uint32, len(ids))
		for i, id := range ids {
			fwd.Tokens[i] = uint32(id)
		}
	case wire.ModeTokens:
		if len(req.Tokens) == 0 {
			return wire.Response{ID: clientID, Status: wire.StatusInvalid, Message: "empty token ids"}
		}
		if len(req.Tokens) > r.cfg.MaxLength {
			req.Tokens = req.Tokens[:r.cfg.MaxLength]
		}
		fwd.Tokens = req.Tokens
	default:
		return wire.Response{ID: clientID, Status: wire.StatusInvalid, Message: "unknown mode"}
	}
	ctx := context.Background()
	if req.Deadline != 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.Unix(0, req.Deadline))
		defer cancel()
	}
	resp, _ := r.route(ctx, &fwd, len(fwd.Tokens))
	resp.ID = clientID
	return resp
}

// frontWriter serializes response frames from concurrent forwards onto
// one buffered client connection.
type frontWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	buf []byte
}

func (w *frontWriter) send(resp *wire.Response) {
	w.mu.Lock()
	w.buf = wire.AppendResponse(w.buf[:0], resp)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(w.buf)))
	_, err := w.bw.Write(hdr[:])
	if err == nil {
		_, err = w.bw.Write(w.buf)
	}
	if err == nil {
		err = w.bw.Flush()
	}
	w.mu.Unlock()
	_ = err // a dead peer surfaces as the read loop's error
}
