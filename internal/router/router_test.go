package router

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"arlo/internal/cluster"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/serve"
	"arlo/internal/tokenizer"
	"arlo/internal/wire"
)

// testShard is one in-process arlo-server shard with a live wire
// listener, plus the handles the chaos tests use to kill and restart it.
type testShard struct {
	name string
	addr string
	srv  *serve.Server
	cl   *cluster.Cluster
}

// startShard boots a shard with the given per-level instance allocation
// over a compressed-time 2-level {128, 512} profile.
func startShard(t *testing.T, name string, alloc []int, timeScale float64) *testShard {
	t.Helper()
	p, err := profiler.StaticProfile(model.BertBase(), []int{128, 512}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		Profile:           p,
		InitialAllocation: alloc,
		TimeScale:         timeScale,
		Dispatcher: func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewRequestScheduler(ml)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(tokenizer.New(), cl, serve.WithMaxLength(512), serve.WithShardName(name))
	if err != nil {
		cl.Close()
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cl.Close()
		t.Fatal(err)
	}
	go func() { _ = srv.ServeWire(l) }()
	ts := &testShard{name: name, addr: l.Addr().String(), srv: srv, cl: cl}
	t.Cleanup(func() { ts.kill() })
	return ts
}

// kill closes the shard's server (listeners and live connections) and
// its cluster. Idempotent.
func (ts *testShard) kill() {
	_ = ts.srv.Close()
	ts.cl.Close()
}

// restart brings the shard back on its previous address with a fresh
// cluster and server.
func (ts *testShard) restart(t *testing.T, alloc []int, timeScale float64) {
	t.Helper()
	p, err := profiler.StaticProfile(model.BertBase(), []int{128, 512}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		Profile:           p,
		InitialAllocation: alloc,
		TimeScale:         timeScale,
		Dispatcher: func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewRequestScheduler(ml)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(tokenizer.New(), cl, serve.WithMaxLength(512), serve.WithShardName(ts.name))
	if err != nil {
		cl.Close()
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", ts.addr)
	if err != nil {
		cl.Close()
		t.Fatalf("restart listen on %s: %v", ts.addr, err)
	}
	go func() { _ = srv.ServeWire(l) }()
	ts.srv, ts.cl = srv, cl
}

func newRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r
}

func shardConfigs(shards ...*testShard) []ShardConfig {
	out := make([]ShardConfig, len(shards))
	for i, s := range shards {
		out[i] = ShardConfig{Name: s.name, Addr: s.addr}
	}
	return out
}

func TestRouterHTTPInferEndToEnd(t *testing.T) {
	a := startShard(t, "a", []int{1, 1}, 0.01)
	b := startShard(t, "b", []int{1, 1}, 0.01)
	r := newRouter(t, Config{Shards: shardConfigs(a, b), SnapshotRefreshInterval: 10 * time.Millisecond})
	hts := httptest.NewServer(r)
	defer hts.Close()

	resp, err := hts.Client().Post(hts.URL+"/v1/infer", "application/json",
		strings.NewReader(`{"text":"the router forwards this request to a shard"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Label == "" || out.SequenceLength == 0 {
		t.Errorf("thin response: %+v", out)
	}
	if out.Shard != "a" && out.Shard != "b" {
		t.Errorf("shard = %q", out.Shard)
	}
	if out.RouteMS < 0 {
		t.Errorf("route_ms = %v", out.RouteMS)
	}

	// The routed answer must match what the shard itself would compute:
	// label and sequence length agree with a direct single-process call.
	direct := httptest.NewServer(a.srv)
	defer direct.Close()
	dresp, err := direct.Client().Post(direct.URL+"/v1/infer", "application/json",
		strings.NewReader(`{"text":"the router forwards this request to a shard"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var dout serve.InferResponse
	if err := json.NewDecoder(dresp.Body).Decode(&dout); err != nil {
		t.Fatal(err)
	}
	if dout.Label != out.Label || dout.SequenceLength != out.SequenceLength {
		t.Errorf("routed (%q, %d) != direct (%q, %d)",
			out.Label, out.SequenceLength, dout.Label, dout.SequenceLength)
	}
}

func TestRouterHTTPGenerate(t *testing.T) {
	a := startShard(t, "a", []int{1, 1}, 0.01)
	r := newRouter(t, Config{Shards: shardConfigs(a), SnapshotRefreshInterval: 10 * time.Millisecond})
	hts := httptest.NewServer(r)
	defer hts.Close()

	resp, err := hts.Client().Post(hts.URL+"/v1/generate", "application/json",
		strings.NewReader(`{"text":"generate from this prompt","max_new_tokens":4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out GenerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.OutputTokens != 4 || out.TTFTMS <= 0 {
		t.Errorf("generate response: %+v", out)
	}

	// Unknown fields reject with unsupported_field, like the shard's own
	// strict decode.
	resp2, err := hts.Client().Post(hts.URL+"/v1/generate", "application/json",
		strings.NewReader(`{"text":"x","max_new_tokens":4,"temperature":0.7}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var env serve.ErrorEnvelope
	if err := json.NewDecoder(resp2.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != 400 || env.Error.Code != serve.CodeUnsupportedField {
		t.Errorf("unknown field: status %d code %q", resp2.StatusCode, env.Error.Code)
	}
}

func TestRouterWireFrontEndToEnd(t *testing.T) {
	a := startShard(t, "a", []int{1, 1}, 0.01)
	b := startShard(t, "b", []int{1, 1}, 0.01)
	r := newRouter(t, Config{Shards: shardConfigs(a, b), SnapshotRefreshInterval: 10 * time.Millisecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = r.ServeWire(l) }()

	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Pipeline a few requests with distinct ids; all must come back with
	// their own id and StatusOK.
	const n = 8
	var reqBuf []byte
	for i := 1; i <= n; i++ {
		reqBuf = wire.AppendFrame(reqBuf[:0], wire.AppendRequest(nil, &wire.Request{
			ID:   uint64(i),
			Mode: wire.ModeText,
			Text: "pipelined request through the router tier",
		}))
		if _, err := nc.Write(reqBuf); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(nc)
	var buf []byte
	got := map[uint64]bool{}
	for i := 0; i < n; i++ {
		var payload []byte
		payload, buf, err = wire.ReadFrame(br, buf)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != wire.StatusOK {
			t.Fatalf("id %d: status %v (%s)", resp.ID, resp.Status, resp.Message)
		}
		if got[resp.ID] {
			t.Fatalf("duplicate response for id %d", resp.ID)
		}
		got[resp.ID] = true
	}
}

func TestRouterPolicies(t *testing.T) {
	a := startShard(t, "a", []int{1, 1}, 0.01)
	b := startShard(t, "b", []int{1, 1}, 0.01)
	c := startShard(t, "c", []int{1, 1}, 0.01)
	for _, policy := range []Policy{PolicyLengthAware, PolicyRoundRobin, PolicyLeastLoaded} {
		t.Run(policy.String(), func(t *testing.T) {
			r := newRouter(t, Config{
				Shards:                  shardConfigs(a, b, c),
				Policy:                  policy,
				SnapshotRefreshInterval: 5 * time.Millisecond,
				Seed:                    7,
			})
			hts := httptest.NewServer(r)
			defer hts.Close()
			var wg sync.WaitGroup
			errs := make(chan error, 30)
			for i := 0; i < 30; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					resp, err := hts.Client().Post(hts.URL+"/v1/infer", "application/json",
						strings.NewReader(`{"text":"spread across shards"}`))
					if err != nil {
						errs <- err
						return
					}
					defer resp.Body.Close()
					if resp.StatusCode != 200 {
						errs <- err
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			routed := uint64(0)
			for _, sh := range r.shards {
				routed += sh.requests.Load()
			}
			if routed < 30 {
				t.Errorf("routed %d requests, want >= 30", routed)
			}
			if policy == PolicyRoundRobin {
				// Round-robin must touch every shard.
				for _, sh := range r.shards {
					if sh.requests.Load() == 0 {
						t.Errorf("round-robin left shard %s unused", sh.name)
					}
				}
			}
		})
	}
}

func TestRouterHealthzAggregation(t *testing.T) {
	a := startShard(t, "a", []int{1, 1}, 0.01)
	b := startShard(t, "b", []int{1, 1}, 0.01)
	r := newRouter(t, Config{Shards: shardConfigs(a, b), SnapshotRefreshInterval: 5 * time.Millisecond})
	waitRefresh(t, r, 2)
	hts := httptest.NewServer(r)
	defer hts.Close()

	var hr HealthResponse
	getJSON(t, hts, "/healthz", 200, &hr)
	if hr.Status != "ok" || len(hr.Shards) != 2 {
		t.Fatalf("healthz = %+v", hr)
	}
	for _, sh := range hr.Shards {
		if sh.State != "up" || sh.Healthy != 2 || sh.SnapshotAgeMS < 0 {
			t.Errorf("shard %s: %+v", sh.Name, sh)
		}
	}

	// Kill one shard: tier stays ok, the dead shard reports down.
	b.kill()
	waitFor(t, 2*time.Second, func() bool {
		var hr HealthResponse
		getJSON(t, hts, "/healthz", 200, &hr)
		for _, sh := range hr.Shards {
			if sh.Name == "b" && sh.State == "down" {
				return true
			}
		}
		return false
	})

	// Kill the other: the tier itself goes unavailable (503).
	a.kill()
	waitFor(t, 2*time.Second, func() bool {
		resp, err := hts.Client().Get(hts.URL + "/healthz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == 503
	})
}

func TestRouterMetrics(t *testing.T) {
	a := startShard(t, "a", []int{1, 1}, 0.01)
	r := newRouter(t, Config{Shards: shardConfigs(a), SnapshotRefreshInterval: 5 * time.Millisecond})
	hts := httptest.NewServer(r)
	defer hts.Close()
	resp, err := hts.Client().Post(hts.URL+"/v1/infer", "application/json",
		strings.NewReader(`{"text":"count me"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mresp, err := hts.Client().Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, mresp.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`arlo_router_requests_total{shard="a"} 1`,
		"arlo_router_reroutes_total 0",
		`arlo_router_shard_up{shard="a"} 1`,
		"arlo_router_snapshot_age_seconds",
		"arlo_router_route_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestRouterImmediateMode(t *testing.T) {
	a := startShard(t, "a", []int{1, 1}, 0.01)
	b := startShard(t, "b", []int{1, 1}, 0.01)
	// SnapshotRefreshInterval 0: no background loops; snapshots are
	// fetched inside each decision.
	r := newRouter(t, Config{Shards: shardConfigs(a, b), Seed: 3})
	hts := httptest.NewServer(r)
	defer hts.Close()
	resp, err := hts.Client().Post(hts.URL+"/v1/infer", "application/json",
		strings.NewReader(`{"text":"immediate snapshots"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Both candidates were probed synchronously, so snapshots exist now.
	fresh := 0
	for _, sh := range r.shards {
		if sh.snapshot() != nil {
			fresh++
		}
	}
	if fresh == 0 {
		t.Error("immediate mode fetched no snapshots")
	}
}

// waitRefresh blocks until every shard has a snapshot with seq >= minSeq.
func waitRefresh(t *testing.T, r *Router, minSeq uint64) {
	t.Helper()
	waitFor(t, 2*time.Second, func() bool {
		for _, sh := range r.shards {
			e := sh.snapshot()
			if e == nil || e.snap.Seq < minSeq {
				return false
			}
		}
		return true
	})
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met before timeout")
}

func getJSON(t *testing.T, hts *httptest.Server, path string, wantStatus int, v any) {
	t.Helper()
	resp, err := hts.Client().Get(hts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s status = %d, want %d", path, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
