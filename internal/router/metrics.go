// The router's own Prometheus exposition. The tier is stateless, so its
// metrics are a handful of atomics — per-shard request counters, the
// reroute total, snapshot age gauges and a route-stage latency
// histogram — rendered in the same 0.0.4 text format the shards use.

package router

import (
	"bufio"
	"fmt"
	"math"
	"net/http"
	"sync/atomic"
	"time"
)

// routeBuckets are the route-stage histogram's upper bounds in seconds:
// routing is microseconds when snapshots are warm, and milliseconds to
// whole seconds only when reroute hops redial dead shards.
var routeBuckets = [...]float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, math.Inf(1),
}

// histogram is a fixed-bucket atomic histogram (the obs package's
// histograms are cluster-internal, and the router carries no recorder).
type histogram struct {
	counts [len(routeBuckets)]atomic.Int64
	sumNS  atomic.Int64
	n      atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	for i, ub := range routeBuckets {
		if s <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	fmt.Fprintln(bw, "# HELP arlo_router_requests_total Requests routed per shard.")
	fmt.Fprintln(bw, "# TYPE arlo_router_requests_total counter")
	for _, sh := range r.shards {
		fmt.Fprintf(bw, "arlo_router_requests_total{shard=%q} %d\n", sh.name, sh.requests.Load())
	}

	fmt.Fprintln(bw, "# HELP arlo_router_reroutes_total Reroute hops taken after shard failures.")
	fmt.Fprintln(bw, "# TYPE arlo_router_reroutes_total counter")
	fmt.Fprintf(bw, "arlo_router_reroutes_total %d\n", r.reroutes.Load())

	fmt.Fprintln(bw, "# HELP arlo_router_inflight Requests currently in flight per shard.")
	fmt.Fprintln(bw, "# TYPE arlo_router_inflight gauge")
	for _, sh := range r.shards {
		fmt.Fprintf(bw, "arlo_router_inflight{shard=%q} %d\n", sh.name, sh.inflight.Load())
	}

	fmt.Fprintln(bw, "# HELP arlo_router_shard_up Shard reachability (1 up, 0 down).")
	fmt.Fprintln(bw, "# TYPE arlo_router_shard_up gauge")
	for _, sh := range r.shards {
		up := 1
		if sh.down.Load() {
			up = 0
		}
		if e := sh.snapshot(); e != nil && !e.snap.Serviceable() {
			up = 0
		}
		fmt.Fprintf(bw, "arlo_router_shard_up{shard=%q} %d\n", sh.name, up)
	}

	fmt.Fprintln(bw, "# HELP arlo_router_snapshot_age_seconds Age of each shard's load snapshot (-1 before the first refresh).")
	fmt.Fprintln(bw, "# TYPE arlo_router_snapshot_age_seconds gauge")
	for _, sh := range r.shards {
		age := -1.0
		if e := sh.snapshot(); e != nil {
			age = time.Since(e.at).Seconds()
		}
		fmt.Fprintf(bw, "arlo_router_snapshot_age_seconds{shard=%q} %g\n", sh.name, age)
	}

	fmt.Fprintln(bw, "# HELP arlo_router_route_seconds Route-stage latency: shard choice plus failed hops before the successful forward.")
	fmt.Fprintln(bw, "# TYPE arlo_router_route_seconds histogram")
	var cum int64
	for i, ub := range routeBuckets {
		cum += r.routeHist.counts[i].Load()
		le := fmt.Sprintf("%g", ub)
		if math.IsInf(ub, 1) {
			le = "+Inf"
		}
		fmt.Fprintf(bw, "arlo_router_route_seconds_bucket{le=%q} %d\n", le, cum)
	}
	fmt.Fprintf(bw, "arlo_router_route_seconds_sum %g\n", float64(r.routeHist.sumNS.Load())/1e9)
	fmt.Fprintf(bw, "arlo_router_route_seconds_count %d\n", r.routeHist.n.Load())
}
