// The error-passthrough pin (a sharded tier's most common regression):
// a shard's typed rejection must reach the client exactly as the shard
// wrote it — same stable code, same HTTP status, same Retry-After hint —
// never rewrapped into a generic 502/internal. The fake shard scripts
// each status; the live-tenant test drives a real token bucket through
// the hop.

package router

import (
	"bufio"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"arlo/internal/cluster"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/serve"
	"arlo/internal/tenant"
	"arlo/internal/tokenizer"
	"arlo/internal/wire"
)

// fakeShard is a scripted wire listener: load probes get a healthy
// snapshot, every inference request gets the configured response.
type fakeShard struct {
	l      net.Listener
	script func(req *wire.Request) wire.Response
}

func startFakeShard(t *testing.T, script func(req *wire.Request) wire.Response) *fakeShard {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeShard{l: l, script: script}
	go fs.serve()
	t.Cleanup(func() { _ = l.Close() })
	return fs
}

func (fs *fakeShard) serve() {
	seq := uint64(0)
	for {
		nc, err := fs.l.Accept()
		if err != nil {
			return
		}
		go func(nc net.Conn) {
			defer nc.Close()
			br := bufio.NewReader(nc)
			var buf, out []byte
			for {
				var payload []byte
				var err error
				payload, buf, err = wire.ReadFrame(br, buf)
				if err != nil {
					return
				}
				if payload[0] == wire.KindLoadRequest {
					id, _ := wire.DecodeLoadRequest(payload)
					seq++
					snap := wire.LoadSnapshot{
						ID: id, Seq: seq, Shard: "fake", Healthy: 2,
						Levels: []wire.LoadLevel{
							{MaxLength: 128, Instances: 1, Capacity: 8},
							{MaxLength: 512, Instances: 1, Capacity: 4},
						},
					}
					out = wire.AppendFrame(out[:0], wire.AppendLoadSnapshot(nil, &snap))
				} else {
					req, err := wire.DecodeRequest(payload, nil)
					if err != nil {
						return
					}
					resp := fs.script(&req)
					resp.ID = req.ID
					out = wire.AppendFrame(out[:0], wire.AppendResponse(nil, &resp))
				}
				if _, err := nc.Write(out); err != nil {
					return
				}
			}
		}(nc)
	}
}

// TestErrorPassthroughHTTP pins every typed shard status' translation at
// the router's JSON front end.
func TestErrorPassthroughHTTP(t *testing.T) {
	cases := []struct {
		name         string
		status       wire.Status
		retryAfterNS uint64
		wantHTTP     int
		wantCode     string
		wantRetry    string // Retry-After header, "" = must be absent
	}{
		{"rate_limited", wire.StatusRateLimited, uint64(2500 * time.Millisecond), 429, "rate_limited", "3"},
		{"rate_limited_subsecond", wire.StatusRateLimited, uint64(10 * time.Millisecond), 429, "rate_limited", "1"},
		{"unserviceable", wire.StatusUnserviceable, 0, 503, "unserviceable", ""},
		{"congested", wire.StatusCongested, 0, 503, "congested", ""},
		{"no_instances", wire.StatusNoInstances, 0, 503, "no_instances", ""},
		{"too_long", wire.StatusTooLong, 0, 413, "too_long", ""},
		{"deadline", wire.StatusDeadline, 0, 504, "deadline_exceeded", ""},
		{"invalid", wire.StatusInvalid, 0, 400, "invalid_request", ""},
		{"unsupported_field", wire.StatusUnsupportedField, 0, 400, "unsupported_field", ""},
		{"internal", wire.StatusInternal, 0, 500, "internal", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := startFakeShard(t, func(req *wire.Request) wire.Response {
				return wire.Response{
					Status:       tc.status,
					RetryAfterNS: tc.retryAfterNS,
					Message:      "scripted " + tc.name,
				}
			})
			// HopBudget 1: a reroute would re-hit the only shard and busy
			// the test; passthrough must not consume hops anyway.
			r := newRouter(t, Config{
				Shards:                  []ShardConfig{{Name: "fake", Addr: fs.l.Addr().String()}},
				SnapshotRefreshInterval: 5 * time.Millisecond,
				HopBudget:               1,
			})
			hts := httptest.NewServer(r)
			defer hts.Close()
			resp, err := hts.Client().Post(hts.URL+"/v1/infer", "application/json",
				strings.NewReader(`{"text":"trigger the scripted status"}`))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantHTTP {
				t.Errorf("http status = %d, want %d", resp.StatusCode, tc.wantHTTP)
			}
			var env serve.ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatal(err)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q (no rewrapping into generic errors)", env.Error.Code, tc.wantCode)
			}
			if env.Error.Message != "scripted "+tc.name {
				t.Errorf("message = %q, want the shard's own", env.Error.Message)
			}
			if got := resp.Header.Get("Retry-After"); got != tc.wantRetry {
				t.Errorf("Retry-After = %q, want %q", got, tc.wantRetry)
			}
		})
	}
}

// TestErrorPassthroughWire pins the binary front end: status, message
// and retry hint survive untouched.
func TestErrorPassthroughWire(t *testing.T) {
	fs := startFakeShard(t, func(req *wire.Request) wire.Response {
		return wire.Response{
			Status:       wire.StatusRateLimited,
			RetryAfterNS: 42e6,
			Message:      "bucket empty",
		}
	})
	r := newRouter(t, Config{
		Shards:                  []ShardConfig{{Name: "fake", Addr: fs.l.Addr().String()}},
		SnapshotRefreshInterval: 5 * time.Millisecond,
		HopBudget:               1,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = r.ServeWire(l) }()
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	frame := wire.AppendFrame(nil, wire.AppendRequest(nil, &wire.Request{
		ID: 9, Mode: wire.ModeText, Text: "hi there",
	}))
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	payload, _, err := wire.ReadFrame(bufio.NewReader(nc), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 9 || resp.Status != wire.StatusRateLimited ||
		resp.RetryAfterNS != 42e6 || resp.Message != "bucket empty" {
		t.Errorf("passthrough mangled: %+v", resp)
	}
}

// TestTenant429ThroughRouter drives a real token bucket: a tenant with a
// near-zero refill exhausts its burst, and the router hop preserves the
// 429 with its Retry-After hint.
func TestTenant429ThroughRouter(t *testing.T) {
	p, err := profiler.StaticProfile(model.BertBase(), []int{128, 512}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := tenant.NewRegistry(tenant.Config{ID: "tight", Capacity: 1, RefillPerSec: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		Profile:           p,
		InitialAllocation: []int{1, 1},
		TimeScale:         0.01,
		Tenants:           reg,
		Dispatcher: func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewRequestScheduler(ml)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	srv, err := serve.New(tokenizer.New(), cl, serve.WithMaxLength(512), serve.WithShardName("tight-shard"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.ServeWire(wl) }()

	r := newRouter(t, Config{
		Shards:                  []ShardConfig{{Name: "tight-shard", Addr: wl.Addr().String()}},
		SnapshotRefreshInterval: 5 * time.Millisecond,
	})
	hts := httptest.NewServer(r)
	defer hts.Close()

	// Hammer with the tenant header until the bucket runs dry; the 429
	// must carry the stable code and a Retry-After hint.
	saw429 := false
	for i := 0; i < 20 && !saw429; i++ {
		req, err := http.NewRequest(http.MethodPost, hts.URL+"/v1/infer",
			strings.NewReader(`{"text":"spend a token"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(serve.TenantHeader, "tight")
		resp, err := hts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == 429 {
			saw429 = true
			var env serve.ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatal(err)
			}
			if env.Error.Code != "rate_limited" {
				t.Errorf("code = %q, want rate_limited", env.Error.Code)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 through the router lost its Retry-After hint")
			}
		}
		resp.Body.Close()
	}
	if !saw429 {
		t.Fatal("tight tenant never hit the rate limit")
	}
}
