// The multi-shard conservation suite: a seeded trace across three
// in-process shards while one is killed and restarted mid-run. The
// audit is the tier's core promise — every submitted request gets
// exactly one answer, either a completion or a typed error (no generic
// internals from transport failures, no silent drops), and no request
// re-routes more than the hop budget allows. Run under -race in CI.

package router

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arlo/internal/serve"
)

// typedCodes are the error codes a client may legitimately see during a
// shard outage; anything else (internal, empty, transport garbage) is a
// conservation violation.
var typedCodes = map[string]bool{
	serve.CodeCongested:        true,
	serve.CodeUnserviceable:    true,
	serve.CodeNoInstances:      true,
	serve.CodeUnavailable:      true,
	serve.CodeDeadlineExceeded: true,
	serve.CodeRateLimited:      true,
}

func TestShardKillRestartConservation(t *testing.T) {
	seeds := []int64{1, 7}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) { runConservation(t, seed) })
	}
}

func runConservation(t *testing.T, seed int64) {
	const scale = 0.005
	a := startShard(t, "a", []int{2, 2}, scale)
	b := startShard(t, "b", []int{2, 2}, scale)
	c := startShard(t, "c", []int{2, 2}, scale)
	r := newRouter(t, Config{
		Shards:                  shardConfigs(a, b, c),
		SnapshotRefreshInterval: 5 * time.Millisecond,
		Seed:                    seed,
	})
	waitRefresh(t, r, 1)
	hts := httptest.NewServer(r)
	defer hts.Close()
	hts.Client().Timeout = 30 * time.Second

	const (
		total   = 240
		workers = 12
	)
	tenants := []string{"alpha", "beta", "gamma"}
	rng := rand.New(rand.NewSource(seed))
	type job struct {
		id     int
		tenant string
		words  int
	}
	jobs := make([]job, total)
	for i := range jobs {
		jobs[i] = job{id: i, tenant: tenants[rng.Intn(len(tenants))], words: 3 + rng.Intn(120)}
	}

	// The chaos script: kill shard b a third of the way through the
	// trace, bring it back at two thirds.
	var done atomic.Int64
	stopChaos := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		killed := false
		for {
			select {
			case <-stopChaos:
				return
			case <-time.After(2 * time.Millisecond):
			}
			n := done.Load()
			if !killed && n >= total/3 {
				b.kill()
				killed = true
			}
			if killed && n >= 2*total/3 {
				b.restart(t, []int{2, 2}, scale)
				return
			}
		}
	}()

	type outcome struct {
		ok   bool
		code string
	}
	outcomes := make([]outcome, total)
	var wg sync.WaitGroup
	next := atomic.Int64{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				j := jobs[i]
				body := fmt.Sprintf(`{"text":%q}`, strings.Repeat("tok ", j.words))
				req, err := http.NewRequest(http.MethodPost, hts.URL+"/v1/infer", strings.NewReader(body))
				if err != nil {
					t.Errorf("job %d: %v", j.id, err)
					done.Add(1)
					continue
				}
				req.Header.Set(serve.TenantHeader, j.tenant)
				resp, err := hts.Client().Do(req)
				if err != nil {
					// A transport error at the client would mean the router
					// itself dropped the request — a conservation failure.
					t.Errorf("job %d: transport error through router: %v", j.id, err)
					done.Add(1)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == 200 {
					outcomes[i] = outcome{ok: true}
				} else {
					var env serve.ErrorEnvelope
					if err := json.Unmarshal(raw, &env); err != nil {
						t.Errorf("job %d: non-envelope error body %q", j.id, raw)
					} else {
						outcomes[i] = outcome{code: env.Error.Code}
					}
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	close(stopChaos)
	chaosWG.Wait()

	// Conservation: every job completed or failed typed; count per tenant.
	completed := map[string]int{}
	typed := map[string]int{}
	for i, o := range outcomes {
		j := jobs[i]
		switch {
		case o.ok:
			completed[j.tenant]++
		case typedCodes[o.code]:
			typed[j.tenant]++
		default:
			t.Errorf("job %d (tenant %s): untyped outcome %+v", j.id, j.tenant, o)
		}
	}
	var sum int
	for _, tn := range tenants {
		sum += completed[tn] + typed[tn]
	}
	if sum != total {
		t.Errorf("conservation broken: %d outcomes for %d requests", sum, total)
	}
	// The surviving shards must have absorbed most of the trace.
	var allCompleted int
	for _, n := range completed {
		allCompleted += n
	}
	if allCompleted < total/2 {
		t.Errorf("only %d/%d completed; outage handling too lossy", allCompleted, total)
	}
	// Bounded reroutes: no request may exceed the hop budget.
	if r.MaxHops() >= r.cfg.HopBudget {
		t.Errorf("max hops %d reached budget %d", r.MaxHops(), r.cfg.HopBudget)
	}
	if r.Reroutes() == 0 {
		t.Log("note: no reroutes observed this run (kill window may have missed in-flight requests)")
	}
	t.Logf("seed %d: completed=%v typed=%v reroutes=%d maxHops=%d",
		seed, completed, typed, r.Reroutes(), r.MaxHops())
}
