// The routing loop shared by both front ends: pick a shard, forward,
// and on transport failure or an unavailable shard re-route under the
// hop budget. The outcome is always a typed wire.Response — the front
// ends only translate it into their protocol, never invent statuses —
// so a shard's rate_limited or unserviceable answer reaches the client
// exactly as the shard wrote it.

package router

import (
	"context"
	"errors"
	"fmt"
	"time"

	"arlo/internal/wire"
)

// routeInfo is the route-stage accounting attached to a reply: which
// shard answered, how many reroute hops it took, and the time spent
// routing (everything before the successful forward began).
type routeInfo struct {
	shard string
	hops  int
	route time.Duration
}

// route forwards one request, rerouting on transport failures and
// StatusUnavailable answers until a shard replies, the hop budget is
// spent, or no shard remains. length is the request's token count (the
// bucketing key); req.ID is clobbered per attempt and must be restored
// by the caller before answering its client.
func (r *Router) route(ctx context.Context, req *wire.Request, length int) (wire.Response, routeInfo) {
	start := time.Now()
	tried := make([]bool, len(r.shards))
	var info routeInfo
	for hops := 0; ; hops++ {
		if hops > 0 {
			r.reroutes.Add(1)
			if hops >= r.cfg.HopBudget {
				r.noteHops(hops)
				return wire.Response{Status: wire.StatusUnserviceable,
					Message: fmt.Sprintf("router: reroute hop budget (%d) exhausted", r.cfg.HopBudget)}, info
			}
		}
		idx := r.pick(length, tried)
		if idx < 0 {
			r.noteHops(hops)
			return wire.Response{Status: wire.StatusUnserviceable,
				Message: "router: no serviceable shard"}, info
		}
		tried[idx] = true
		sh := r.shards[idx]
		sh.requests.Add(1)
		attemptStart := time.Now()
		sh.inflight.Add(1)
		resp, err := r.forward(ctx, sh, req)
		sh.inflight.Add(-1)
		if err == nil && resp.Status != wire.StatusUnavailable {
			info.shard, info.hops, info.route = sh.name, hops, attemptStart.Sub(start)
			r.routeHist.observe(info.route)
			r.noteHops(hops)
			return resp, info
		}
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// The client's own deadline fired mid-flight: a typed
				// deadline answer, not a reroute (re-executing a request
				// whose deadline is spent helps nobody).
				r.noteHops(hops)
				return wire.Response{Status: wire.StatusDeadline, Message: err.Error()}, info
			}
			// Transport failure: the shard is unreachable until a probe
			// says otherwise.
			sh.down.Store(true)
		}
		// StatusUnavailable (the shard is closing) or a dead connection:
		// the request is retryable on another shard.
	}
}

// forward sends the request over the shard's pipelined connection,
// dialing it first when needed.
func (r *Router) forward(ctx context.Context, sh *shard, req *wire.Request) (wire.Response, error) {
	c, err := sh.getConn()
	if err != nil {
		return wire.Response{}, err
	}
	return c.roundTrip(ctx, req)
}

// noteHops records a request's hop count into the max-hops watermark.
func (r *Router) noteHops(h int) {
	for {
		cur := r.maxHops.Load()
		if int64(h) <= cur || r.maxHops.CompareAndSwap(cur, int64(h)) {
			return
		}
	}
}
