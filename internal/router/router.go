// Package router is the stateless routing tier fronting N arlo-server
// shards: clients talk to the router over the same two protocols a
// single server speaks (JSON HTTP and internal/wire frames), and the
// router forwards each request to one shard over a pipelined wire
// connection, choosing the shard with length-aware least-loaded scoring
// against periodically refreshed load snapshots.
//
// The staleness trade-off is explicit: snapshots refresh asynchronously
// every SnapshotRefreshInterval (the exemplar systems' config knob)
// rather than being queried per request, so the router's view lags
// reality by up to one interval. Two mechanisms keep routing sane under
// that lag — power-of-two-choices sampling (score two random candidates,
// take the better, so stale minima cannot herd every request onto one
// shard) and a local in-flight correction (requests this router routed
// since the snapshot was taken are added to the score).
//
// Shard failover reuses the failover package's demotion discipline at
// tier level: a request whose shard dies mid-flight or answers
// StatusUnavailable re-routes to another shard under a bounded hop
// budget (failover.DefaultRequeueBudget by default); when the budget is
// spent or no serviceable shard remains, the client gets a typed
// unserviceable error, never a silent drop. Every other shard answer —
// rate_limited with its Retry-After hint, unserviceable, congested,
// too_long, deadline_exceeded, invalid — passes through verbatim.
package router

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"arlo/internal/failover"
	"arlo/internal/tokenizer"
	"arlo/internal/wire"
)

// Policy selects how the router picks a shard for each request.
type Policy uint8

const (
	// PolicyLengthAware scores the request's length bucket against each
	// candidate's snapshot (depth x padded-length over instances, plus a
	// discounted spillover term for the other buckets and the router's
	// own in-flight count), sampling two candidates power-of-two-choices
	// style. The default.
	PolicyLengthAware Policy = iota
	// PolicyRoundRobin rotates through serviceable shards, blind to load.
	PolicyRoundRobin
	// PolicyLeastLoaded picks the snapshot's global minimum outstanding
	// count — deliberately naive (no sampling, no local correction), the
	// baseline that herds under stale snapshots.
	PolicyLeastLoaded
)

// String returns the flag-friendly policy name.
func (p Policy) String() string {
	switch p {
	case PolicyLengthAware:
		return "length-aware"
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyLeastLoaded:
		return "least-loaded"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy parses a policy name as accepted by the -policy flag.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "length-aware", "la":
		return PolicyLengthAware, nil
	case "round-robin", "rr":
		return PolicyRoundRobin, nil
	case "least-loaded", "ll":
		return PolicyLeastLoaded, nil
	}
	return 0, fmt.Errorf("router: unknown policy %q (want length-aware, round-robin or least-loaded)", s)
}

// ShardConfig names one shard and its wire-protocol address.
type ShardConfig struct {
	// Name labels the shard in metrics and health output; defaults to
	// Addr when empty.
	Name string
	// Addr is the shard's binary wire listener (host:port).
	Addr string
}

// Config configures a Router.
type Config struct {
	// Shards are the shards to front. At least one is required.
	Shards []ShardConfig
	// Policy is the shard-selection policy (default PolicyLengthAware).
	Policy Policy
	// SnapshotRefreshInterval is how often each shard's load snapshot is
	// refreshed in the background. Zero means immediate: the candidates'
	// snapshots are fetched synchronously inside every routing decision —
	// the freshest view and the highest per-request cost.
	SnapshotRefreshInterval time.Duration
	// HopBudget bounds how many times one request may re-route after
	// transport failures or unavailable shards (0 = the failover
	// package's DefaultRequeueBudget).
	HopBudget int
	// MaxLength caps router-side tokenization (0 = 512). Keep it at the
	// shards' model max length so the router and shards bucket requests
	// identically.
	MaxLength int
	// Seed seeds the power-of-two-choices sampler (0 = 1); fixed seeds
	// make routing decisions reproducible in tests.
	Seed int64
}

// shard is the router's per-shard state: the dialed connection, the last
// load snapshot, and the local counters that correct for snapshot lag.
type shard struct {
	name string
	addr string

	// connMu guards conn replacement; the conn itself is internally
	// synchronized for pipelined use.
	connMu sync.Mutex
	conn   *conn

	// snap is the latest load snapshot with its receipt time.
	snap atomic.Pointer[snapEntry]
	// down marks the shard unreachable (dial or transport failure) until
	// a probe succeeds again.
	down atomic.Bool

	// sfMu/sfCh coalesce concurrent immediate-mode probes: while one is
	// in flight every other decision waits on it instead of issuing its
	// own, so probe traffic stays bounded by the RTT, not the request
	// rate.
	sfMu sync.Mutex
	sfCh chan struct{}

	// inflight counts requests this router currently has outstanding on
	// the shard — the local correction added to snapshot scores.
	inflight atomic.Int64
	// requests counts requests ever routed to the shard.
	requests atomic.Uint64
}

type snapEntry struct {
	snap wire.LoadSnapshot
	at   time.Time
}

// Router fronts a set of shards. It is an http.Handler (the JSON front
// end) and serves the binary protocol via ServeWire.
type Router struct {
	cfg    Config
	tok    *tokenizer.Tokenizer
	shards []*shard
	mux    *http.ServeMux

	rngMu sync.Mutex
	rng   *rand.Rand

	rr        atomic.Uint64 // round-robin cursor
	reroutes  atomic.Uint64 // total reroute hops taken
	maxHops   atomic.Int64  // max hops any single request took
	routeHist histogram     // route-stage latency

	closing   atomic.Bool
	stop      chan struct{}
	wg        sync.WaitGroup
	listMu    sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
}

// New builds a router over cfg's shards. With a positive
// SnapshotRefreshInterval the background refresh loops start immediately;
// Close stops them.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("router: no shards configured")
	}
	if cfg.HopBudget == 0 {
		cfg.HopBudget = failover.DefaultRequeueBudget
	}
	if cfg.HopBudget < 1 {
		return nil, fmt.Errorf("router: hop budget must be >= 1, got %d", cfg.HopBudget)
	}
	if cfg.MaxLength == 0 {
		cfg.MaxLength = 512
	}
	if cfg.MaxLength < 2 {
		return nil, fmt.Errorf("router: max length must be >= 2, got %d", cfg.MaxLength)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	r := &Router{
		cfg:  cfg,
		tok:  tokenizer.New(),
		rng:  rand.New(rand.NewSource(seed)),
		mux:  http.NewServeMux(),
		stop: make(chan struct{}),
	}
	seen := make(map[string]bool, len(cfg.Shards))
	for _, sc := range cfg.Shards {
		if sc.Addr == "" {
			return nil, fmt.Errorf("router: shard %q has no address", sc.Name)
		}
		name := sc.Name
		if name == "" {
			name = sc.Addr
		}
		if seen[name] {
			return nil, fmt.Errorf("router: duplicate shard name %q", name)
		}
		seen[name] = true
		r.shards = append(r.shards, &shard{name: name, addr: sc.Addr})
	}
	r.mux.HandleFunc("/v1/infer", r.handleInfer)
	r.mux.HandleFunc("/v1/generate", r.handleGenerate)
	r.mux.HandleFunc("/healthz", r.handleHealth)
	r.mux.HandleFunc("/metrics", r.handleMetrics)
	if cfg.SnapshotRefreshInterval > 0 {
		for _, sh := range r.shards {
			r.wg.Add(1)
			go r.refreshLoop(sh)
		}
	}
	return r, nil
}

// Close stops the refresh loops, the wire listeners and every shard
// connection. Idempotent.
func (r *Router) Close() error {
	if r.closing.Swap(true) {
		return nil
	}
	close(r.stop)
	r.listMu.Lock()
	ls := r.listeners
	r.listeners = nil
	cs := r.conns
	r.conns = nil
	r.listMu.Unlock()
	for _, l := range ls {
		_ = l.Close()
	}
	for c := range cs {
		_ = c.Close()
	}
	for _, sh := range r.shards {
		sh.connMu.Lock()
		if sh.conn != nil {
			sh.conn.close(errRouterClosed)
			sh.conn = nil
		}
		sh.connMu.Unlock()
	}
	r.wg.Wait()
	return nil
}

// Reroutes returns the total reroute hops the router has taken.
func (r *Router) Reroutes() uint64 { return r.reroutes.Load() }

// MaxHops returns the most reroute hops any single request took.
func (r *Router) MaxHops() int { return int(r.maxHops.Load()) }

// HopBudget returns the effective per-request reroute budget.
func (r *Router) HopBudget() int { return r.cfg.HopBudget }

// getConn returns the shard's live connection, dialing when absent or
// dead. A dial failure marks the shard down.
func (sh *shard) getConn() (*conn, error) {
	sh.connMu.Lock()
	defer sh.connMu.Unlock()
	if sh.conn != nil && !sh.conn.isDead() {
		return sh.conn, nil
	}
	c, err := dialShard(sh.addr)
	if err != nil {
		sh.down.Store(true)
		return nil, err
	}
	sh.conn = c
	sh.down.Store(false)
	return c, nil
}

// refreshLoop polls one shard's load snapshot every refresh interval; it
// doubles as the health probe, flipping the shard's down bit on transport
// failures and back on recovery.
func (r *Router) refreshLoop(sh *shard) {
	defer r.wg.Done()
	// First refresh happens immediately so routing does not start blind.
	r.refreshShard(sh)
	t := time.NewTicker(r.cfg.SnapshotRefreshInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.refreshShard(sh)
		}
	}
}

// refreshShard fetches one load snapshot, storing it (and clearing the
// down bit) on success.
func (r *Router) refreshShard(sh *shard) {
	c, err := sh.getConn()
	if err != nil {
		return
	}
	timeout := r.cfg.SnapshotRefreshInterval
	if timeout <= 0 || timeout > time.Second {
		timeout = time.Second
	}
	snap, err := c.loadProbe(timeout)
	if err != nil {
		sh.down.Store(true)
		return
	}
	sh.snap.Store(&snapEntry{snap: snap, at: time.Now()})
	sh.down.Store(false)
}

// snapshot returns the shard's latest load snapshot (nil when none has
// arrived yet).
func (sh *shard) snapshot() *snapEntry { return sh.snap.Load() }

// candidates collects the shards worth trying for this request: not
// already tried this request, not known-down, and not reporting zero
// serving instances. With every shard filtered out it falls back to the
// untried ones regardless of health, so a fully-stale view cannot wedge
// routing while shards recover.
func (r *Router) candidates(tried []bool) []int {
	out := make([]int, 0, len(r.shards))
	for i, sh := range r.shards {
		if tried[i] || sh.down.Load() {
			continue
		}
		if e := sh.snapshot(); e != nil && !e.snap.Serviceable() {
			continue
		}
		out = append(out, i)
	}
	if len(out) == 0 {
		for i := range r.shards {
			if !tried[i] {
				out = append(out, i)
			}
		}
	}
	return out
}

// pick chooses the next shard index for a request of the given token
// length (-1 when every shard has been tried), refreshing candidate
// snapshots synchronously in immediate mode.
func (r *Router) pick(length int, tried []bool) int {
	cand := r.candidates(tried)
	if len(cand) == 0 {
		return -1
	}
	if len(cand) == 1 {
		return cand[0]
	}
	switch r.cfg.Policy {
	case PolicyRoundRobin:
		return cand[int(r.rr.Add(1))%len(cand)]
	case PolicyLeastLoaded:
		if r.cfg.SnapshotRefreshInterval == 0 {
			r.refreshMany(cand...)
		}
		best, bestDepth := cand[0], int64(1)<<62
		for _, i := range cand {
			var depth int64
			if e := r.shards[i].snapshot(); e != nil {
				for _, lv := range e.snap.Levels {
					depth += int64(lv.Depth)
				}
			}
			if depth < bestDepth {
				best, bestDepth = i, depth
			}
		}
		return best
	default: // PolicyLengthAware
		a, b := r.twoOf(cand)
		if r.cfg.SnapshotRefreshInterval == 0 {
			if b != a {
				r.refreshMany(a, b)
			} else {
				r.refreshMany(a)
			}
		}
		if b == a {
			return a
		}
		if r.score(r.shards[b], length) < r.score(r.shards[a], length) {
			return b
		}
		return a
	}
}

// refreshMany refreshes the given shards' snapshots concurrently — the
// immediate-mode (interval 0) per-decision fetch, where paying the probe
// RTTs sequentially would double the routing stage's latency. Probes are
// singleflighted per shard, so a decision's snapshot is never older than
// one probe round-trip even when thousands of decisions share it.
func (r *Router) refreshMany(idx ...int) {
	if len(idx) == 1 {
		r.refreshShardShared(r.shards[idx[0]])
		return
	}
	var wg sync.WaitGroup
	for _, i := range idx[1:] {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.refreshShardShared(r.shards[i])
		}(i)
	}
	r.refreshShardShared(r.shards[idx[0]])
	wg.Wait()
}

// refreshShardShared joins an in-flight probe of the shard when one
// exists, otherwise issues its own and lets later callers join it.
func (r *Router) refreshShardShared(sh *shard) {
	sh.sfMu.Lock()
	if ch := sh.sfCh; ch != nil {
		sh.sfMu.Unlock()
		<-ch
		return
	}
	ch := make(chan struct{})
	sh.sfCh = ch
	sh.sfMu.Unlock()
	r.refreshShard(sh)
	sh.sfMu.Lock()
	sh.sfCh = nil
	sh.sfMu.Unlock()
	close(ch)
}

// twoOf samples two distinct candidate indices (the same index twice when
// only one candidate remains).
func (r *Router) twoOf(cand []int) (int, int) {
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	i := r.rng.Intn(len(cand))
	j := r.rng.Intn(len(cand) - 1)
	if j >= i {
		j++
	}
	return cand[i], cand[j]
}

// spilloverDiscount weights the load of buckets other than the request's
// own in the score: congestion elsewhere matters (demotion spills work
// across levels inside a shard) but less than congestion at the bucket
// the request will actually queue at.
const spilloverDiscount = 0.25

// score estimates the cost of sending a request of the given length to
// the shard: the request's bucket dominates (depth x padded length over
// the bucket's instances), other buckets contribute discounted spillover,
// and the router's own in-flight count toward the shard corrects for
// work the snapshot has not seen yet.
func (r *Router) score(sh *shard, length int) float64 {
	e := sh.snapshot()
	if e == nil {
		// No snapshot yet: only the local in-flight estimate.
		return float64(sh.inflight.Load())
	}
	s := &e.snap
	var cost float64
	bucket := -1
	totalInst := 0
	for i := range s.Levels {
		totalInst += int(s.Levels[i].Instances)
		if bucket < 0 && int(s.Levels[i].MaxLength) >= length {
			bucket = i
		}
	}
	if bucket < 0 && len(s.Levels) > 0 {
		bucket = len(s.Levels) - 1 // over-long requests bucket at the top
	}
	for i := range s.Levels {
		lv := &s.Levels[i]
		inst := float64(lv.Instances)
		if inst < 1 {
			inst = 1
		}
		lvCost := float64(lv.Depth) * float64(lv.MaxLength) / inst
		if i == bucket {
			cost += lvCost
		} else {
			cost += spilloverDiscount * lvCost
		}
	}
	// The local correction: charge each un-snapshotted in-flight request
	// the bucket's padded length spread over the shard's instances.
	bucketLen := float64(r.cfg.MaxLength)
	if bucket >= 0 {
		bucketLen = float64(s.Levels[bucket].MaxLength)
	}
	if totalInst < 1 {
		totalInst = 1
	}
	cost += float64(sh.inflight.Load()) * bucketLen / float64(totalInst)
	return cost
}
