// The router's shard connection: one pipelined wire-protocol connection
// per shard, multiplexing every in-flight forwarded request plus the
// load-snapshot probes over a single read loop. Ids are conn-local — the
// router re-numbers forwarded requests and restores the client's id on
// the way back — so two front-end clients can never collide.

package router

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"arlo/internal/wire"
)

// Transport-level errors: the reroute triggers. Everything a shard
// answers in-protocol passes through to the client instead.
var (
	// errShardDown reports that the shard's connection died with the
	// request in flight (or could not be written at all).
	errShardDown = errors.New("router: shard connection down")
	// errRouterClosed reports the router shut down with requests pending.
	errRouterClosed = errors.New("router: closed")
)

// result is one demultiplexed reply: an inference response or a load
// snapshot, or the transport error that killed the connection.
type result struct {
	resp wire.Response
	snap *wire.LoadSnapshot
	err  error
}

// conn is a pipelined connection to one shard.
type conn struct {
	nc net.Conn

	// wmu serializes frame writes; the write buffer is reused across
	// requests.
	wmu  sync.Mutex
	bw   *bufio.Writer
	wbuf []byte

	mu      sync.Mutex
	pending map[uint64]chan result
	dead    bool
	nextID  atomic.Uint64
}

// dialShard connects to a shard's wire listener and starts the read loop.
func dialShard(addr string) (*conn, error) {
	nc, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errShardDown, err)
	}
	c := &conn{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 32<<10),
		pending: make(map[uint64]chan result),
	}
	go c.readLoop()
	return c, nil
}

func (c *conn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// close kills the connection and fails every pending request with err.
func (c *conn) close(err error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	_ = c.nc.Close()
	for _, ch := range pending {
		ch <- result{err: err}
	}
}

// readLoop demultiplexes reply frames to their pending channels until the
// connection dies, then fails everything still pending.
func (c *conn) readLoop() {
	br := bufio.NewReaderSize(c.nc, 32<<10)
	var buf []byte
	for {
		var payload []byte
		var err error
		payload, buf, err = wire.ReadFrame(br, buf)
		if err != nil {
			c.close(errShardDown)
			return
		}
		if len(payload) == 0 {
			c.close(errShardDown)
			return
		}
		var res result
		var id uint64
		switch payload[0] {
		case wire.KindResponse, wire.KindGenResponse:
			resp, derr := wire.DecodeResponse(payload)
			if derr != nil {
				c.close(errShardDown)
				return
			}
			id, res = resp.ID, result{resp: resp}
		case wire.KindLoadResponse:
			snap, derr := wire.DecodeLoadSnapshot(payload)
			if derr != nil {
				c.close(errShardDown)
				return
			}
			id, res = snap.ID, result{snap: &snap}
		default:
			// A frame kind the router does not speak means the stream
			// cannot be trusted.
			c.close(errShardDown)
			return
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- res
		}
	}
}

// register allocates a conn-local id and its reply channel.
func (c *conn) register() (uint64, chan result, error) {
	id := c.nextID.Add(1)
	ch := make(chan result, 1)
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, nil, errShardDown
	}
	c.pending[id] = ch
	c.mu.Unlock()
	return id, ch, nil
}

func (c *conn) deregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// writeFrame frames and writes one payload under the write lock; a write
// error kills the connection.
func (c *conn) writeFrame(payload []byte) error {
	c.wmu.Lock()
	c.wbuf = wire.AppendFrame(c.wbuf[:0], payload)
	_, err := c.bw.Write(c.wbuf)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.close(errShardDown)
		return errShardDown
	}
	return nil
}

// roundTrip forwards one request (its ID is overwritten with a conn-local
// id) and waits for the shard's reply, the context, or connection death.
func (c *conn) roundTrip(ctx context.Context, req *wire.Request) (wire.Response, error) {
	id, ch, err := c.register()
	if err != nil {
		return wire.Response{}, err
	}
	req.ID = id
	if err := c.writeFrame(wire.AppendRequest(nil, req)); err != nil {
		c.deregister(id)
		return wire.Response{}, err
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return wire.Response{}, res.err
		}
		if res.snap != nil {
			return wire.Response{}, errShardDown // protocol confusion
		}
		return res.resp, nil
	case <-ctx.Done():
		c.deregister(id)
		return wire.Response{}, ctx.Err()
	}
}

// loadProbe requests the shard's load snapshot, waiting at most timeout.
func (c *conn) loadProbe(timeout time.Duration) (wire.LoadSnapshot, error) {
	id, ch, err := c.register()
	if err != nil {
		return wire.LoadSnapshot{}, err
	}
	if err := c.writeFrame(wire.AppendLoadRequest(nil, id)); err != nil {
		c.deregister(id)
		return wire.LoadSnapshot{}, err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			return wire.LoadSnapshot{}, res.err
		}
		if res.snap == nil {
			return wire.LoadSnapshot{}, errShardDown
		}
		return *res.snap, nil
	case <-t.C:
		c.deregister(id)
		return wire.LoadSnapshot{}, fmt.Errorf("%w: load probe timeout", errShardDown)
	}
}
