// Package trace synthesizes the request workloads of the evaluation. The
// paper drives every experiment from Twitter's production trace, which is
// not redistributable; this package regenerates statistically equivalent
// traces from the paper's published statistics: sequence-length median 21,
// 98th percentile 72, maximum ~125 (Fig. 1), recalibrated to span up to 512
// for the serving experiments (section 5, Workloads); per-second arrivals
// follow a Poisson process (Twitter-Stable) or a Markov-modulated Poisson
// process (Twitter-Bursty); and the length distribution drifts over minutes
// so short windows look narrower than long ones (Fig. 1a vs 1b: 10-second
// p98 ~58 vs 10-minute p98 ~72).
package trace

import (
	"math"
	"math/rand"
	"time"
)

// LengthSampler draws a request sequence length, possibly depending on the
// position within the trace (to model slow drift of the distribution).
type LengthSampler interface {
	// SampleLength returns a request length in tokens at trace offset at.
	SampleLength(rng *rand.Rand, at time.Duration) int
}

// LogNormalLengths samples lengths from a discretized log-normal
// distribution clamped to [Min, Max]. The Twitter trace's published
// statistics (median 21, p98 72) fit a log-normal with Mu = ln 21 and
// Sigma ~= 0.6.
type LogNormalLengths struct {
	Mu    float64 // mean of ln(length)
	Sigma float64 // standard deviation of ln(length)
	Min   int     // smallest producible length (>= 1)
	Max   int     // largest producible length
}

// SampleLength implements LengthSampler.
func (l LogNormalLengths) SampleLength(rng *rand.Rand, _ time.Duration) int {
	v := int(math.Round(math.Exp(l.Mu + l.Sigma*rng.NormFloat64())))
	return clampLength(v, l.Min, l.Max)
}

// DriftingLengths wraps a log-normal length distribution whose median
// drifts over the trace: the log-median follows a sinusoid of amplitude
// DriftAmp and period DriftPeriod plus a per-minute random offset. Short
// windows therefore see a narrower distribution (one drift regime) while
// long windows see the widened mixture — the Fig. 1 behaviour. The
// per-minute offsets are derived deterministically from NoiseSeed so two
// generators with equal configuration produce identical drift.
type DriftingLengths struct {
	// Mu/SigmaWindow describe the within-window (short-term) log-normal.
	Mu          float64
	SigmaWindow float64
	// DriftAmp is the amplitude of the log-median drift; the effective
	// long-term sigma is sqrt(SigmaWindow^2 + DriftAmp^2/2).
	DriftAmp    float64
	DriftPeriod time.Duration
	// NoiseAmp scales the per-minute random offset added to the sinusoid.
	NoiseAmp  float64
	NoiseSeed int64
	Min, Max  int
}

// SampleLength implements LengthSampler.
func (d DriftingLengths) SampleLength(rng *rand.Rand, at time.Duration) int {
	mu := d.Mu + d.drift(at)
	v := int(math.Round(math.Exp(mu + d.SigmaWindow*rng.NormFloat64())))
	return clampLength(v, d.Min, d.Max)
}

// drift returns the log-median offset at trace offset at.
func (d DriftingLengths) drift(at time.Duration) float64 {
	var s float64
	if d.DriftPeriod > 0 {
		phase := 2 * math.Pi * float64(at) / float64(d.DriftPeriod)
		s = d.DriftAmp * math.Sin(phase)
	}
	if d.NoiseAmp != 0 {
		minute := int64(at / time.Minute)
		s += d.NoiseAmp * minuteNoise(d.NoiseSeed, minute)
	}
	return s
}

// MixtureLengths samples from a weighted mixture of length distributions
// — e.g. a short-heavy "tweet" component plus a long "article" component.
// Weights need not sum to one; they are normalized.
type MixtureLengths struct {
	Components []LengthSampler
	Weights    []float64
}

// SampleLength implements LengthSampler.
func (m MixtureLengths) SampleLength(rng *rand.Rand, at time.Duration) int {
	if len(m.Components) == 0 {
		return 1
	}
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	if total <= 0 || len(m.Weights) != len(m.Components) {
		return m.Components[0].SampleLength(rng, at)
	}
	pick := rng.Float64() * total
	for i, w := range m.Weights {
		pick -= w
		if pick < 0 {
			return m.Components[i].SampleLength(rng, at)
		}
	}
	return m.Components[len(m.Components)-1].SampleLength(rng, at)
}

// minuteNoise returns a deterministic pseudo-random value in [-1, 1) for
// the given minute index, stable across calls.
func minuteNoise(seed, minute int64) float64 {
	// SplitMix64 finalizer over the (seed, minute) pair.
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(minute)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return 2*float64(x>>11)/float64(1<<53) - 1
}

func clampLength(v, min, max int) int {
	if min < 1 {
		min = 1
	}
	if v < min {
		return min
	}
	if max > 0 && v > max {
		return max
	}
	return v
}

// TwitterLengths returns the length distribution calibrated to the raw
// Twitter trace statistics: median 21 tokens, p98 ~72, maximum 125.
func TwitterLengths(seed int64) LengthSampler {
	return DriftingLengths{
		Mu:          math.Log(21),
		SigmaWindow: 0.494, // 10-second-scale p98 ~= 58 (Fig. 1b)
		DriftAmp:    0.45,  // widens the 10-minute mixture p98 to ~72
		DriftPeriod: 5 * time.Minute,
		NoiseAmp:    0.25,
		NoiseSeed:   seed,
		Min:         1,
		Max:         125,
	}
}

// TwitterRecalibrated returns the serving-experiment distribution: the raw
// Twitter lengths rescaled to span up to a maximum of 512 (section 5,
// Workloads). All ratios are preserved (lengths scale by 512/125). The
// drift is gentler than the raw-trace calibration: rescaling stretches
// absolute length swings by 4x, so the raw drift amplitude would make the
// long-length bins' share oscillate far more violently than any
// production trace; the softened drift keeps the same qualitative
// short-vs-long-window behaviour at serving scale.
func TwitterRecalibrated(seed int64) LengthSampler {
	return DriftingLengths{
		Mu:          math.Log(21 * 512.0 / 125.0), // median ~86
		SigmaWindow: 0.494,
		DriftAmp:    0.22,
		DriftPeriod: 5 * time.Minute,
		NoiseAmp:    0.12,
		NoiseSeed:   seed,
		Min:         1,
		Max:         512,
	}
}
