package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"time"
)

// WriteCSV serializes the trace as "id,at_ms,length" rows with a header —
// the format cmd/arlotrace emits. Generative traces (any request with an
// output budget) add a fourth out_tokens column; ReadCSV accepts both.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t.Generative() {
		if _, err := fmt.Fprintln(bw, "id,at_ms,length,out_tokens"); err != nil {
			return err
		}
		for _, r := range t.Requests {
			if _, err := fmt.Fprintf(bw, "%d,%.3f,%d,%d\n", r.ID, float64(r.At)/float64(time.Millisecond), r.Length, r.OutTokens); err != nil {
				return err
			}
		}
		return bw.Flush()
	}
	if _, err := fmt.Fprintln(bw, "id,at_ms,length"); err != nil {
		return err
	}
	for _, r := range t.Requests {
		if _, err := fmt.Fprintf(bw, "%d,%.3f,%d\n", r.ID, float64(r.At)/float64(time.Millisecond), r.Length); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace from the WriteCSV format: 3-column encoder rows
// ("id,at_ms,length") or 4-column generative rows (+ out_tokens), mixed
// freely. Requests must be sorted by arrival time; the trace duration is
// the given value, or just past the last arrival when duration <= 0.
func ReadCSV(r io.Reader, duration time.Duration) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // 3 or 4 columns, validated per row below
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	start := 0
	if rows[0][0] == "id" {
		start = 1 // skip header
	}
	reqs := make([]Request, 0, len(rows)-start)
	var prev time.Duration
	for i := start; i < len(rows); i++ {
		if len(rows[i]) != 3 && len(rows[i]) != 4 {
			return nil, fmt.Errorf("trace: row %d: want 3 or 4 fields, got %d", i, len(rows[i]))
		}
		id, err := strconv.ParseInt(rows[i][0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad id %q", i, rows[i][0])
		}
		atMS, err := strconv.ParseFloat(rows[i][1], 64)
		if err != nil || atMS < 0 {
			return nil, fmt.Errorf("trace: row %d: bad arrival %q", i, rows[i][1])
		}
		length, err := strconv.Atoi(rows[i][2])
		if err != nil || length < 1 {
			return nil, fmt.Errorf("trace: row %d: bad length %q", i, rows[i][2])
		}
		outTokens := 0
		if len(rows[i]) == 4 {
			outTokens, err = strconv.Atoi(rows[i][3])
			if err != nil || outTokens < 0 {
				return nil, fmt.Errorf("trace: row %d: bad out_tokens %q", i, rows[i][3])
			}
		}
		at := time.Duration(atMS * float64(time.Millisecond))
		if at < prev {
			return nil, fmt.Errorf("trace: row %d: arrivals not sorted (%v after %v)", i, at, prev)
		}
		prev = at
		reqs = append(reqs, Request{ID: id, At: at, Length: length, OutTokens: outTokens})
	}
	d := duration
	if d <= 0 {
		d = prev + time.Nanosecond
	}
	if len(reqs) > 0 && reqs[len(reqs)-1].At >= d {
		return nil, fmt.Errorf("trace: duration %v does not cover the last arrival %v", d, prev)
	}
	return &Trace{Requests: reqs, Duration: d}, nil
}

// EmpiricalLengths samples lengths by inverse-CDF over an observed sample
// — the way to replay a real trace's length distribution at a different
// rate or duration.
type EmpiricalLengths struct {
	sorted []int
}

// NewEmpiricalLengths builds the distribution from observed lengths.
func NewEmpiricalLengths(observed []int) (*EmpiricalLengths, error) {
	if len(observed) == 0 {
		return nil, fmt.Errorf("trace: empirical distribution needs samples")
	}
	sorted := make([]int, len(observed))
	copy(sorted, observed)
	sort.Ints(sorted)
	if sorted[0] < 1 {
		return nil, fmt.Errorf("trace: empirical samples must be >= 1, got %d", sorted[0])
	}
	return &EmpiricalLengths{sorted: sorted}, nil
}

// SampleLength implements LengthSampler.
func (e *EmpiricalLengths) SampleLength(rng *rand.Rand, _ time.Duration) int {
	return e.sorted[rng.Intn(len(e.sorted))]
}

// Quantile returns the nearest-rank p-quantile of the observed sample.
func (e *EmpiricalLengths) Quantile(p float64) int {
	return quantileInt(e.sorted, p)
}
