package trace

import (
	"math"
	"math/rand"
	"time"
)

// Generative trace mode: each request carries an output token budget drawn
// from an output-length distribution, alongside the existing input-length
// distribution. Measured generative workloads are short-heavy with a long
// tail (most completions stop after a sentence, a few run to the cap), so
// the default sampler is geometric with a hard cap.

// OutputSampler draws per-request output token counts.
type OutputSampler interface {
	// SampleOutput returns the number of tokens the request generates
	// (>= 1), possibly conditioned on arrival time.
	SampleOutput(rng *rand.Rand, at time.Duration) int
}

// GeometricOutputs samples output lengths from a capped geometric
// distribution with the given mean: P(n) ∝ (1-p)^(n-1) p with p = 1/Mean.
// Short-heavy with an exponential tail, truncated at Max.
type GeometricOutputs struct {
	// Mean is the uncapped mean output length (>= 1).
	Mean float64
	// Max caps a single request's output (the serving-side max_new_tokens
	// budget); 0 means no cap.
	Max int
}

// SampleOutput implements OutputSampler.
func (g GeometricOutputs) SampleOutput(rng *rand.Rand, _ time.Duration) int {
	mean := g.Mean
	if mean < 1 {
		mean = 1
	}
	// Inverse-CDF of the geometric distribution on {1, 2, ...}.
	p := 1 / mean
	u := rng.Float64()
	n := 1 + int(math.Floor(math.Log(1-u)/math.Log(1-p)))
	if n < 1 {
		n = 1
	}
	if g.Max > 0 && n > g.Max {
		n = g.Max
	}
	return n
}

// FixedOutputs gives every request the same output budget — the degenerate
// sampler used by tests and calibration runs.
type FixedOutputs struct{ Tokens int }

// SampleOutput implements OutputSampler.
func (f FixedOutputs) SampleOutput(*rand.Rand, time.Duration) int {
	if f.Tokens < 1 {
		return 1
	}
	return f.Tokens
}

// Generative returns the generative workload configuration: Poisson
// arrivals at the given rate, the recalibrated (max 512) input-length
// distribution, and geometric outputs with the given mean capped at
// maxOut.
func Generative(seed int64, rate float64, duration time.Duration, meanOut float64, maxOut int) Config {
	return Config{
		Seed:     seed,
		Duration: duration,
		Arrivals: Poisson{Rate: rate},
		Lengths:  TwitterRecalibrated(seed),
		Outputs:  GeometricOutputs{Mean: meanOut, Max: maxOut},
	}
}

// Generative reports whether any request of the trace carries an output
// budget — the predicate that selects the 4-column CSV format.
func (t *Trace) Generative() bool {
	for _, r := range t.Requests {
		if r.OutTokens > 0 {
			return true
		}
	}
	return false
}

// OutTokens returns every request's output budget, in arrival order.
func (t *Trace) OutTokens() []int {
	out := make([]int, len(t.Requests))
	for i, r := range t.Requests {
		out[i] = r.OutTokens
	}
	return out
}

// MeanOutTokens returns the mean output budget over generative requests
// (0 for a pure encoder trace).
func (t *Trace) MeanOutTokens() float64 {
	sum, n := 0, 0
	for _, r := range t.Requests {
		if r.OutTokens > 0 {
			sum += r.OutTokens
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Multi-tenant trace mode: each request carries a tenant identity drawn
// from a tenant sampler, so noisy-neighbor scenarios (one tenant bursting
// against steady victims) replay deterministically through the cluster's
// admission and fair-share machinery.

// TenantSampler draws per-request tenant identities.
type TenantSampler interface {
	// SampleTenant returns the submitting tenant's id, possibly
	// conditioned on arrival time.
	SampleTenant(rng *rand.Rand, at time.Duration) string
}

// WeightedTenants assigns tenants by independent weighted draws: request
// streams mix in proportion to the weights.
type WeightedTenants struct {
	// IDs are the tenant identities to draw from.
	IDs []string
	// Weights are the relative draw weights, parallel to IDs; nil (or a
	// length mismatch) means uniform.
	Weights []float64
}

// SampleTenant implements TenantSampler.
func (w WeightedTenants) SampleTenant(rng *rand.Rand, _ time.Duration) string {
	if len(w.IDs) == 0 {
		return ""
	}
	if len(w.Weights) != len(w.IDs) {
		return w.IDs[rng.Intn(len(w.IDs))]
	}
	total := 0.0
	for _, wt := range w.Weights {
		if wt > 0 {
			total += wt
		}
	}
	if total <= 0 {
		return w.IDs[rng.Intn(len(w.IDs))]
	}
	u := rng.Float64() * total
	for i, wt := range w.Weights {
		if wt <= 0 {
			continue
		}
		u -= wt
		if u < 0 {
			return w.IDs[i]
		}
	}
	return w.IDs[len(w.IDs)-1]
}
