package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzTraceParse fuzzes the CSV trace parser with arbitrary bytes. A
// parse either fails with an error or yields a trace satisfying the
// contract the replay paths depend on: arrivals sorted and non-negative,
// lengths >= 1, and the duration covering the last arrival. Successful
// parses must survive a write/re-read round trip unchanged (the format
// stores arrivals with microsecond precision, which time.Duration
// represents exactly).
func FuzzTraceParse(f *testing.F) {
	f.Add([]byte("id,at_ms,length\n0,0.000,12\n1,5.250,400\n"), int64(0))
	f.Add([]byte("0,1.5,64\n1,2.5,128\n"), int64(time.Second))
	f.Add([]byte("id,at_ms,length\n"), int64(0))
	f.Add([]byte(""), int64(0))
	f.Add([]byte("id,at_ms,length\n0,2.0,8\n1,1.0,8\n"), int64(0))
	f.Add([]byte("0,-1,5\n"), int64(0))
	f.Add([]byte("0,0,0\n"), int64(0))
	f.Add([]byte("a,b,c\n"), int64(0))
	f.Add([]byte("0,1e300,5\n"), int64(0))
	f.Add([]byte("0,nan,5\n"), int64(0))
	f.Add([]byte("\"0\",\"3.25\",\"7\"\n"), int64(0))

	f.Fuzz(func(t *testing.T, data []byte, durNS int64) {
		tr, err := ReadCSV(bytes.NewReader(data), time.Duration(durNS))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}

		var prev time.Duration
		for i, r := range tr.Requests {
			if r.At < 0 {
				t.Fatalf("row %d: negative arrival %v accepted", i, r.At)
			}
			if r.At < prev {
				t.Fatalf("row %d: unsorted arrival %v after %v accepted", i, r.At, prev)
			}
			prev = r.At
			if r.Length < 1 {
				t.Fatalf("row %d: length %d accepted", i, r.Length)
			}
			if r.At >= tr.Duration {
				t.Fatalf("row %d: arrival %v outside duration %v", i, r.At, tr.Duration)
			}
		}

		// Round trip. The writer emits milliseconds with three decimals;
		// skip traces whose arrivals are beyond exact float64 microsecond
		// territory (a parsed 1e300 ms saturates the duration, and its
		// re-rendered form legitimately differs).
		const maxExact = 1000 * time.Hour
		for _, r := range tr.Requests {
			if r.At > maxExact {
				return
			}
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of parsed trace: %v", err)
		}
		wantHeader := "id,at_ms,length\n"
		if tr.Generative() {
			wantHeader = "id,at_ms,length,out_tokens\n"
		}
		if !strings.HasPrefix(buf.String(), wantHeader) {
			t.Fatalf("WriteCSV lost the header: %q", buf.String()[:32])
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()), tr.Duration)
		if err != nil {
			t.Fatalf("re-reading written trace: %v\ncsv:\n%s", err, buf.String())
		}
		if len(back.Requests) != len(tr.Requests) {
			t.Fatalf("round trip changed request count: %d -> %d", len(tr.Requests), len(back.Requests))
		}
		for i := range back.Requests {
			a, b := tr.Requests[i], back.Requests[i]
			if a.ID != b.ID || a.Length != b.Length || a.OutTokens != b.OutTokens {
				t.Fatalf("row %d changed identity: %+v -> %+v", i, a, b)
			}
			// %.3f ms is microsecond resolution; the round trip may snap
			// an arrival to the nearest microsecond but never further.
			diff := a.At - b.At
			if diff < 0 {
				diff = -diff
			}
			if diff > time.Microsecond {
				t.Fatalf("row %d arrival drifted %v (%v -> %v)", i, diff, a.At, b.At)
			}
		}
		if back.Duration != tr.Duration {
			t.Fatalf("round trip changed duration: %v -> %v", tr.Duration, back.Duration)
		}
	})
}

// FuzzGenerativeTraceParse fuzzes the 4-column generative trace format
// specifically: rows carrying an out_tokens budget, mixed freely with
// 3-column encoder rows. Accepted parses must keep every output budget
// non-negative, agree with Generative()/OutTokens()/MeanOutTokens(), and
// survive a write/re-read round trip with budgets intact.
func FuzzGenerativeTraceParse(f *testing.F) {
	f.Add([]byte("id,at_ms,length,out_tokens\n0,0.000,12,8\n1,5.250,400,1\n"), int64(0))
	f.Add([]byte("0,1.5,64,32\n1,2.5,128,0\n"), int64(time.Second))
	f.Add([]byte("id,at_ms,length,out_tokens\n"), int64(0))
	f.Add([]byte("0,0.0,8,4\n1,1.0,8\n2,2.0,16,2\n"), int64(0)) // mixed 3/4-col
	f.Add([]byte("0,0.0,8,-1\n"), int64(0))
	f.Add([]byte("0,0.0,8,notanumber\n"), int64(0))
	f.Add([]byte("0,0.0,8,99999999999999999999\n"), int64(0))
	f.Add([]byte("\"0\",\"3.25\",\"7\",\"2\"\n"), int64(0))

	f.Fuzz(func(t *testing.T, data []byte, durNS int64) {
		tr, err := ReadCSV(bytes.NewReader(data), time.Duration(durNS))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}

		var sum float64
		genN := 0
		for i, r := range tr.Requests {
			if r.OutTokens < 0 {
				t.Fatalf("row %d: negative out_tokens %d accepted", i, r.OutTokens)
			}
			if r.OutTokens > 0 {
				genN++
				sum += float64(r.OutTokens)
			}
		}
		if tr.Generative() != (genN > 0) {
			t.Fatalf("Generative() = %v, but %d generative rows", tr.Generative(), genN)
		}
		outs := tr.OutTokens()
		if len(outs) != len(tr.Requests) {
			t.Fatalf("OutTokens() length %d != %d requests", len(outs), len(tr.Requests))
		}
		// MeanOutTokens averages over generative requests only.
		want := 0.0
		if genN > 0 {
			want = sum / float64(genN)
		}
		if got := tr.MeanOutTokens(); got != want {
			t.Fatalf("MeanOutTokens() = %v, want %v", got, want)
		}

		const maxExact = 1000 * time.Hour
		for _, r := range tr.Requests {
			if r.At > maxExact {
				return
			}
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of parsed trace: %v", err)
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()), tr.Duration)
		if err != nil {
			t.Fatalf("re-reading written trace: %v\ncsv:\n%s", err, buf.String())
		}
		if len(back.Requests) != len(tr.Requests) {
			t.Fatalf("round trip changed request count: %d -> %d", len(tr.Requests), len(back.Requests))
		}
		for i := range back.Requests {
			if back.Requests[i].OutTokens != tr.Requests[i].OutTokens {
				t.Fatalf("row %d out_tokens changed: %d -> %d",
					i, tr.Requests[i].OutTokens, back.Requests[i].OutTokens)
			}
		}
	})
}
