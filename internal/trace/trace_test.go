package trace

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := Generate(Config{Duration: time.Minute, Arrivals: Poisson{Rate: 1}}); err == nil {
		t.Error("missing length sampler should fail")
	}
	if _, err := Generate(Config{Duration: time.Minute, Lengths: TwitterLengths(1)}); err == nil {
		t.Error("missing arrival process should fail")
	}
	if _, err := Generate(Config{Duration: -time.Second, Arrivals: Poisson{Rate: 1}, Lengths: TwitterLengths(1)}); err == nil {
		t.Error("negative duration should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Stable(42, 100, 30*time.Second)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("non-deterministic request count: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
}

func TestGenerateSortedAndInWindow(t *testing.T) {
	tr, err := Generate(Bursty(7, 200, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) == 0 {
		t.Fatal("bursty trace produced no requests")
	}
	for i, r := range tr.Requests {
		if r.At < 0 || r.At >= tr.Duration {
			t.Fatalf("request %d arrival %v outside [0, %v)", i, r.At, tr.Duration)
		}
		if i > 0 && r.At < tr.Requests[i-1].At {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		if r.ID != int64(i) {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if r.Length < 1 || r.Length > 512 {
			t.Fatalf("request %d length %d outside [1, 512]", i, r.Length)
		}
	}
}

func TestPoissonRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ats := Poisson{Rate: 500}.Arrivals(rng, 2*time.Minute)
	got := float64(len(ats)) / 120
	if math.Abs(got-500)/500 > 0.05 {
		t.Errorf("Poisson realized rate %.1f req/s, want ~500", got)
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := (Poisson{Rate: 0}).Arrivals(rng, time.Minute); got != nil {
		t.Error("zero rate should produce no arrivals")
	}
	if got := (Poisson{Rate: 10}).Arrivals(rng, 0); got != nil {
		t.Error("zero duration should produce no arrivals")
	}
}

func TestMMPPMeanRate(t *testing.T) {
	m := BurstyAround(1000)
	if math.Abs(m.MeanRate()-1000) > 1e-6 {
		t.Errorf("BurstyAround mean rate = %.3f, want 1000", m.MeanRate())
	}
	rng := rand.New(rand.NewSource(11))
	ats := m.Arrivals(rng, 10*time.Minute)
	got := float64(len(ats)) / 600
	if math.Abs(got-1000)/1000 > 0.10 {
		t.Errorf("MMPP realized rate %.1f req/s, want ~1000 (within 10%%)", got)
	}
	if !sort.SliceIsSorted(ats, func(i, j int) bool { return ats[i] < ats[j] }) {
		t.Error("MMPP arrivals not sorted")
	}
}

func TestMMPPBurstierThanPoisson(t *testing.T) {
	// The variance of per-second counts must be clearly super-Poisson.
	rate := 300.0
	countVariance := func(ats []time.Duration, seconds int) float64 {
		counts := make([]float64, seconds)
		for _, at := range ats {
			s := int(at / time.Second)
			if s < seconds {
				counts[s]++
			}
		}
		var mean, ss float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(seconds)
		for _, c := range counts {
			ss += (c - mean) * (c - mean)
		}
		return ss / float64(seconds)
	}
	rng := rand.New(rand.NewSource(5))
	dur := 5 * time.Minute
	pVar := countVariance(Poisson{Rate: rate}.Arrivals(rng, dur), 300)
	mVar := countVariance(BurstyAround(rate).Arrivals(rng, dur), 300)
	if mVar < 3*pVar {
		t.Errorf("MMPP per-second count variance %.1f should be >= 3x Poisson's %.1f", mVar, pVar)
	}
}

func TestTwitterLengthCalibration(t *testing.T) {
	tr, err := Generate(Config{
		Seed:     9,
		Duration: 10 * time.Minute,
		Arrivals: Poisson{Rate: 200},
		Lengths:  TwitterLengths(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	// Paper (Fig. 1a): median 21, p98 ~72 at the 10-minute scale.
	if st.Median < 18 || st.Median > 24 {
		t.Errorf("10-min median length = %d, want ~21", st.Median)
	}
	if st.P98 < 60 || st.P98 > 85 {
		t.Errorf("10-min p98 length = %d, want ~72", st.P98)
	}
	if st.Max > 125 {
		t.Errorf("max length = %d, want <= 125", st.Max)
	}
}

func TestShortWindowsNarrowerThanLong(t *testing.T) {
	// Fig. 1: the p98 over 10-second clips (~58) is below the 10-minute
	// p98 (~72) because the distribution drifts between regimes.
	tr, err := Generate(Config{
		Seed:     13,
		Duration: 10 * time.Minute,
		Arrivals: Poisson{Rate: 300},
		Lengths:  TwitterLengths(13),
	})
	if err != nil {
		t.Fatal(err)
	}
	longP98 := tr.Stats().P98
	var shortSum, shortN float64
	for m := 0; m < 10; m++ {
		from := time.Duration(m) * time.Minute
		clip := tr.Clip(from, from+10*time.Second)
		if clip.Stats().Count == 0 {
			continue
		}
		shortSum += float64(clip.Stats().P98)
		shortN++
	}
	avgShort := shortSum / shortN
	if avgShort >= float64(longP98) {
		t.Errorf("mean 10-s p98 (%.1f) should be below 10-min p98 (%d)", avgShort, longP98)
	}
}

func TestRecalibratedSpans512(t *testing.T) {
	tr, err := Generate(Stable(21, 400, 5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Max < 450 {
		t.Errorf("recalibrated max = %d, want close to 512", st.Max)
	}
	if st.Median < 70 || st.Median > 105 {
		t.Errorf("recalibrated median = %d, want ~86 (21 * 512/125)", st.Median)
	}
}

func TestClip(t *testing.T) {
	tr := &Trace{
		Requests: []Request{
			{ID: 0, At: 0, Length: 5},
			{ID: 1, At: 10 * time.Second, Length: 6},
			{ID: 2, At: 20 * time.Second, Length: 7},
			{ID: 3, At: 30 * time.Second, Length: 8},
		},
		Duration: 40 * time.Second,
	}
	c := tr.Clip(10*time.Second, 30*time.Second)
	if len(c.Requests) != 2 {
		t.Fatalf("clip has %d requests, want 2", len(c.Requests))
	}
	if c.Requests[0].At != 0 || c.Requests[1].At != 10*time.Second {
		t.Errorf("clip not rebased: %v, %v", c.Requests[0].At, c.Requests[1].At)
	}
	if c.Duration != 20*time.Second {
		t.Errorf("clip duration = %v, want 20s", c.Duration)
	}
	// Degenerate clips.
	if got := tr.Clip(35*time.Second, 35*time.Second); len(got.Requests) != 0 {
		t.Error("empty window should produce no requests")
	}
	if got := tr.Clip(-time.Second, time.Hour); len(got.Requests) != 4 {
		t.Error("over-wide clip should include all requests")
	}
}

func TestBinCounts(t *testing.T) {
	uppers := []int{64, 128, 192}
	lengths := []int{1, 64, 65, 128, 129, 192, 500}
	got := BinCounts(lengths, uppers)
	want := []int{2, 2, 3} // 500 overflows into the last bin
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BinCounts = %v, want %v", got, want)
		}
	}
	if got := BinCounts(lengths, nil); len(got) != 0 {
		t.Error("no bins should give empty counts")
	}
}

func TestBinCountsConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		uppers := []int{64, 128, 256, 512}
		lengths := make([]int, len(raw))
		for i, v := range raw {
			lengths[i] = 1 + int(v)%600
		}
		total := 0
		for _, c := range BinCounts(lengths, uppers) {
			total += c
		}
		return total == len(lengths)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBinDemand(t *testing.T) {
	tr := &Trace{
		Requests: []Request{
			{At: 0, Length: 10},
			{At: time.Second, Length: 100},
			{At: 2 * time.Second, Length: 10},
			{At: 3 * time.Second, Length: 400},
		},
		Duration: 4 * time.Second,
	}
	// 4 requests over 4 seconds; SLO window 1s => demand per window.
	q := tr.BinDemand([]int{64, 128, 512}, time.Second)
	if q[0] != 0.5 || q[1] != 0.25 || q[2] != 0.25 {
		t.Errorf("BinDemand = %v, want [0.5 0.25 0.25]", q)
	}
	zero := tr.BinDemand([]int{64}, 0)
	if zero[0] != 0 {
		t.Error("zero SLO window should give zero demand")
	}
}

func TestLengthCDF(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{Length: 5}, {Length: 5}, {Length: 10}, {Length: 20},
	}, Duration: time.Second}
	cdf := tr.LengthCDF()
	if len(cdf) != 3 {
		t.Fatalf("CDF has %d distinct points, want 3", len(cdf))
	}
	if cdf[0].Length != 5 || cdf[0].F != 0.5 {
		t.Errorf("first point = %+v, want {5 0.5}", cdf[0])
	}
	if cdf[2].Length != 20 || cdf[2].F != 1.0 {
		t.Errorf("last point = %+v, want {20 1}", cdf[2])
	}
	empty := &Trace{Duration: time.Second}
	if empty.LengthCDF() != nil {
		t.Error("empty trace should have nil CDF")
	}
}

func TestStatsOfEmpty(t *testing.T) {
	if st := StatsOf(nil); st.Count != 0 || st.Median != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestMeanRate(t *testing.T) {
	tr, err := Generate(Stable(3, 100, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if r := tr.MeanRate(); math.Abs(r-100) > 15 {
		t.Errorf("mean rate = %.1f, want ~100", r)
	}
	empty := &Trace{}
	if empty.MeanRate() != 0 {
		t.Error("zero-duration trace should have zero rate")
	}
}

func TestLogNormalClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := LogNormalLengths{Mu: math.Log(21), Sigma: 3.0, Min: 4, Max: 50}
	for i := 0; i < 2000; i++ {
		l := d.SampleLength(rng, 0)
		if l < 4 || l > 50 {
			t.Fatalf("sample %d outside clamp [4, 50]", l)
		}
	}
	// Min below 1 is corrected to 1.
	d2 := LogNormalLengths{Mu: -10, Sigma: 0.1, Min: 0, Max: 50}
	if l := d2.SampleLength(rng, 0); l < 1 {
		t.Errorf("length %d below 1", l)
	}
}

func TestMinuteNoiseDeterministicAndBounded(t *testing.T) {
	for m := int64(0); m < 100; m++ {
		v := minuteNoise(77, m)
		if v < -1 || v >= 1 {
			t.Fatalf("minuteNoise out of [-1,1): %v", v)
		}
		if v != minuteNoise(77, m) {
			t.Fatal("minuteNoise not deterministic")
		}
	}
	if minuteNoise(1, 5) == minuteNoise(2, 5) {
		t.Error("different seeds should decorrelate noise")
	}
}

func TestMixtureLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := MixtureLengths{
		Components: []LengthSampler{
			LogNormalLengths{Mu: math.Log(20), Sigma: 0.1, Min: 1, Max: 64},
			LogNormalLengths{Mu: math.Log(400), Sigma: 0.05, Min: 300, Max: 512},
		},
		Weights: []float64{0.8, 0.2},
	}
	short, long := 0, 0
	const n = 5000
	for i := 0; i < n; i++ {
		l := m.SampleLength(rng, 0)
		switch {
		case l <= 64:
			short++
		case l >= 300:
			long++
		default:
			t.Fatalf("sample %d falls between the components", l)
		}
	}
	frac := float64(long) / n
	if math.Abs(frac-0.2) > 0.03 {
		t.Errorf("long component fraction = %.3f, want ~0.20", frac)
	}
}

func TestMixtureLengthsDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	empty := MixtureLengths{}
	if got := empty.SampleLength(rng, 0); got != 1 {
		t.Errorf("empty mixture should return 1, got %d", got)
	}
	// Mismatched weights fall back to the first component.
	m := MixtureLengths{
		Components: []LengthSampler{LogNormalLengths{Mu: math.Log(10), Sigma: 0.01, Min: 1, Max: 20}},
		Weights:    []float64{1, 2},
	}
	if got := m.SampleLength(rng, 0); got < 1 || got > 20 {
		t.Errorf("fallback sample %d outside the first component's range", got)
	}
	// Zero total weight likewise.
	z := MixtureLengths{
		Components: []LengthSampler{LogNormalLengths{Mu: math.Log(10), Sigma: 0.01, Min: 1, Max: 20}},
		Weights:    []float64{0},
	}
	if got := z.SampleLength(rng, 0); got < 1 || got > 20 {
		t.Errorf("zero-weight sample %d outside range", got)
	}
}
