package trace

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Request is one inference request of a trace.
type Request struct {
	// ID is unique within the trace, assigned in arrival order.
	ID int64
	// At is the arrival offset from the start of the trace.
	At time.Duration
	// Length is the tokenized input sequence length.
	Length int
	// OutTokens is the number of tokens the request generates. 0 marks an
	// encoder (classify-style) request; generative traces draw it from the
	// Config's output sampler.
	OutTokens int
	// Tenant identifies the submitting tenant in multi-tenant traces; the
	// empty string is the default (single-tenant) identity.
	Tenant string
}

// Trace is a generated request stream.
type Trace struct {
	// Requests are sorted by arrival time.
	Requests []Request
	// Duration is the trace window length.
	Duration time.Duration
}

// Config describes how to synthesize a trace.
type Config struct {
	// Seed makes generation reproducible.
	Seed int64
	// Duration is the trace window length.
	Duration time.Duration
	// Arrivals generates arrival timestamps.
	Arrivals ArrivalProcess
	// Lengths samples per-request sequence lengths.
	Lengths LengthSampler
	// Outputs samples per-request output token counts; nil produces an
	// encoder trace (OutTokens 0 on every request).
	Outputs OutputSampler
	// Tenants samples per-request tenant identities; nil produces a
	// single-tenant trace (empty Tenant on every request).
	Tenants TenantSampler
}

// Generate synthesizes a trace from the configuration. Generation is
// deterministic for a given Config.
func Generate(cfg Config) (*Trace, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("trace: duration must be positive, got %v", cfg.Duration)
	}
	if cfg.Arrivals == nil {
		return nil, fmt.Errorf("trace: no arrival process configured")
	}
	if cfg.Lengths == nil {
		return nil, fmt.Errorf("trace: no length sampler configured")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ats := cfg.Arrivals.Arrivals(rng, cfg.Duration)
	reqs := make([]Request, len(ats))
	for i, at := range ats {
		reqs[i] = Request{ID: int64(i), At: at, Length: cfg.Lengths.SampleLength(rng, at)}
		if cfg.Outputs != nil {
			reqs[i].OutTokens = cfg.Outputs.SampleOutput(rng, at)
		}
		if cfg.Tenants != nil {
			reqs[i].Tenant = cfg.Tenants.SampleTenant(rng, at)
		}
	}
	return &Trace{Requests: reqs, Duration: cfg.Duration}, nil
}

// Stable returns the Twitter-Stable configuration: Poisson arrivals at the
// given rate with the recalibrated (max 512) length distribution.
func Stable(seed int64, rate float64, duration time.Duration) Config {
	return Config{
		Seed:     seed,
		Duration: duration,
		Arrivals: Poisson{Rate: rate},
		Lengths:  TwitterRecalibrated(seed),
	}
}

// Bursty returns the Twitter-Bursty configuration: MMPP arrivals averaging
// the given rate with the recalibrated (max 512) length distribution.
func Bursty(seed int64, rate float64, duration time.Duration) Config {
	return Config{
		Seed:     seed,
		Duration: duration,
		Arrivals: BurstyAround(rate),
		Lengths:  TwitterRecalibrated(seed),
	}
}

// Clip returns the sub-trace with arrivals in [from, to), re-based so the
// first possible arrival is at offset 0.
func (t *Trace) Clip(from, to time.Duration) *Trace {
	if to > t.Duration {
		to = t.Duration
	}
	if from < 0 {
		from = 0
	}
	lo := sort.Search(len(t.Requests), func(i int) bool { return t.Requests[i].At >= from })
	hi := sort.Search(len(t.Requests), func(i int) bool { return t.Requests[i].At >= to })
	out := make([]Request, hi-lo)
	for i := lo; i < hi; i++ {
		r := t.Requests[i]
		r.At -= from
		out[i-lo] = r
	}
	d := to - from
	if d < 0 {
		d = 0
	}
	return &Trace{Requests: out, Duration: d}
}

// Lengths returns every request length, in arrival order.
func (t *Trace) Lengths() []int {
	out := make([]int, len(t.Requests))
	for i, r := range t.Requests {
		out[i] = r.Length
	}
	return out
}

// MeanRate returns the average arrival rate in requests per second.
func (t *Trace) MeanRate() float64 {
	if t.Duration <= 0 {
		return 0
	}
	return float64(len(t.Requests)) / t.Duration.Seconds()
}

// LengthStats summarizes a set of request lengths.
type LengthStats struct {
	Count  int
	Median int
	P98    int
	Max    int
	Mean   float64
}

// Stats computes length statistics over the whole trace.
func (t *Trace) Stats() LengthStats { return StatsOf(t.Lengths()) }

// StatsOf computes length statistics over the given lengths.
func StatsOf(lengths []int) LengthStats {
	if len(lengths) == 0 {
		return LengthStats{}
	}
	sorted := make([]int, len(lengths))
	copy(sorted, lengths)
	sort.Ints(sorted)
	sum := 0
	for _, l := range sorted {
		sum += l
	}
	return LengthStats{
		Count:  len(sorted),
		Median: quantileInt(sorted, 0.50),
		P98:    quantileInt(sorted, 0.98),
		Max:    sorted[len(sorted)-1],
		Mean:   float64(sum) / float64(len(sorted)),
	}
}

// quantileInt returns the nearest-rank p-quantile of sorted values.
func quantileInt(sorted []int, p float64) int {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// LengthCDF returns the empirical CDF of request lengths as (length,
// fraction <= length) pairs, one per distinct length.
func (t *Trace) LengthCDF() []LengthCDFPoint {
	ls := t.Lengths()
	if len(ls) == 0 {
		return nil
	}
	sort.Ints(ls)
	out := make([]LengthCDFPoint, 0, 64)
	n := float64(len(ls))
	for i := 0; i < len(ls); i++ {
		if i+1 < len(ls) && ls[i+1] == ls[i] {
			continue // emit each distinct length once, at its last index
		}
		out = append(out, LengthCDFPoint{Length: ls[i], F: float64(i+1) / n})
	}
	return out
}

// LengthCDFPoint is one point of a request-length CDF.
type LengthCDFPoint struct {
	Length int
	F      float64
}

// BinDemand counts the average number of requests per SLO window that fall
// in each runtime's length bin. binUppers must be the sorted runtime
// max_lengths; bin i covers (binUppers[i-1], binUppers[i]]. This is the
// Q_i input of the runtime-allocation program (Eq. 1-7). Requests longer
// than the last bin are counted in the last bin.
func (t *Trace) BinDemand(binUppers []int, sloWindow time.Duration) []float64 {
	counts := BinCounts(t.Lengths(), binUppers)
	out := make([]float64, len(counts))
	if t.Duration <= 0 || sloWindow <= 0 {
		return out
	}
	windows := float64(t.Duration) / float64(sloWindow)
	for i, c := range counts {
		out[i] = float64(c) / windows
	}
	return out
}

// BinCounts counts requests per length bin; bin i covers lengths in
// (binUppers[i-1], binUppers[i]], with bin 0 starting at 1. Lengths above
// the last upper bound fall into the last bin.
func BinCounts(lengths []int, binUppers []int) []int {
	out := make([]int, len(binUppers))
	if len(binUppers) == 0 {
		return out
	}
	for _, l := range lengths {
		i := sort.SearchInts(binUppers, l)
		if i >= len(binUppers) {
			i = len(binUppers) - 1
		}
		out[i]++
	}
	return out
}
