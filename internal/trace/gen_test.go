package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

func TestGeometricOutputsMeanAndCap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GeometricOutputs{Mean: 16, Max: 128}
	sum, n := 0, 20000
	for i := 0; i < n; i++ {
		v := g.SampleOutput(rng, 0)
		if v < 1 {
			t.Fatalf("sample %d < 1", v)
		}
		if v > 128 {
			t.Fatalf("sample %d exceeds cap 128", v)
		}
		sum += v
	}
	mean := float64(sum) / float64(n)
	// The cap shaves a little off the uncapped mean of 16.
	if mean < 13 || mean > 19 {
		t.Errorf("empirical mean = %.2f, want ~16", mean)
	}
}

func TestGeometricOutputsDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := GeometricOutputs{Mean: 0.5} // below 1: clamped to deterministic 1
	for i := 0; i < 100; i++ {
		if v := g.SampleOutput(rng, 0); v != 1 {
			t.Fatalf("mean<1 should always sample 1, got %d", v)
		}
	}
}

func TestFixedOutputs(t *testing.T) {
	if v := (FixedOutputs{Tokens: 7}).SampleOutput(nil, 0); v != 7 {
		t.Errorf("fixed sampler = %d, want 7", v)
	}
	if v := (FixedOutputs{}).SampleOutput(nil, 0); v != 1 {
		t.Errorf("zero fixed sampler = %d, want 1", v)
	}
}

func TestGenerativeTraceDeterministicAndBudgeted(t *testing.T) {
	cfg := Generative(42, 50, 2*time.Second, 16, 256)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) == 0 {
		t.Fatal("empty generative trace")
	}
	if !a.Generative() {
		t.Fatal("Generative() false for generative preset")
	}
	for i := range a.Requests {
		ra, rb := a.Requests[i], b.Requests[i]
		if ra.OutTokens != rb.OutTokens || ra.At != rb.At || ra.Length != rb.Length {
			t.Fatalf("same seed diverged at request %d: %+v vs %+v", i, ra, rb)
		}
		if ra.OutTokens < 1 || ra.OutTokens > 256 {
			t.Fatalf("request %d out tokens %d outside [1, 256]", i, ra.OutTokens)
		}
	}
	if m := a.MeanOutTokens(); m < 8 || m > 32 {
		t.Errorf("mean out tokens = %.2f, want ~16", m)
	}
}

func TestGenerativeCSVRoundTrip(t *testing.T) {
	tr, err := Generate(Generative(7, 100, time.Second, 8, 64))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("id,at_ms,length,out_tokens\n")) {
		t.Fatalf("generative trace wrote header %q", bytes.SplitN(buf.Bytes(), []byte("\n"), 2)[0])
	}
	back, err := ReadCSV(&buf, tr.Duration)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(tr.Requests) {
		t.Fatalf("round trip changed count %d -> %d", len(tr.Requests), len(back.Requests))
	}
	for i := range back.Requests {
		if back.Requests[i].OutTokens != tr.Requests[i].OutTokens {
			t.Fatalf("row %d out tokens %d -> %d", i, tr.Requests[i].OutTokens, back.Requests[i].OutTokens)
		}
	}
}

// An encoder trace (no Outputs sampler) must keep writing the exact
// 3-column format older tooling parses.
func TestEncoderCSVUnchanged(t *testing.T) {
	tr, err := Generate(Stable(3, 100, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Generative() {
		t.Fatal("encoder trace claims to be generative")
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("id,at_ms,length\n")) {
		t.Fatalf("encoder trace wrote header %q", bytes.SplitN(buf.Bytes(), []byte("\n"), 2)[0])
	}
	if bytes.Contains(buf.Bytes(), []byte("out_tokens")) {
		t.Fatal("encoder trace grew an out_tokens column")
	}
}
