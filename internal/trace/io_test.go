package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	orig, err := Generate(Stable(5, 150, 5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, orig.Duration)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(orig.Requests) {
		t.Fatalf("round trip lost requests: %d vs %d", len(got.Requests), len(orig.Requests))
	}
	for i := range orig.Requests {
		o, g := orig.Requests[i], got.Requests[i]
		if o.ID != g.ID || o.Length != g.Length {
			t.Fatalf("request %d mismatch: %+v vs %+v", i, o, g)
		}
		// Arrival times survive at millisecond-fraction precision.
		if diff := o.At - g.At; diff < -time.Microsecond || diff > time.Microsecond {
			t.Fatalf("request %d arrival drifted by %v", i, diff)
		}
	}
	if got.Duration != orig.Duration {
		t.Errorf("duration = %v, want %v", got.Duration, orig.Duration)
	}
}

func TestReadCSVInferredDuration(t *testing.T) {
	in := "id,at_ms,length\n0,0.000,5\n1,1500.000,9\n"
	tr, err := ReadCSV(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration <= 1500*time.Millisecond {
		t.Errorf("inferred duration %v must cover the last arrival", tr.Duration)
	}
	if len(tr.Requests) != 2 || tr.Requests[1].Length != 9 {
		t.Errorf("parsed %+v", tr.Requests)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		dur  time.Duration
	}{
		{"empty", "", 0},
		{"bad id", "x,0.0,5\n", 0},
		{"bad arrival", "0,abc,5\n", 0},
		{"negative arrival", "0,-5.0,5\n", 0},
		{"bad length", "0,0.0,zero\n", 0},
		{"zero length", "0,0.0,0\n", 0},
		{"unsorted", "0,10.0,5\n1,5.0,5\n", 0},
		{"short duration", "0,100.0,5\n", 50 * time.Millisecond},
		{"wrong fields", "1,2\n", 0},
	}
	for _, tc := range cases {
		if _, err := ReadCSV(strings.NewReader(tc.in), tc.dur); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestEmpiricalLengths(t *testing.T) {
	if _, err := NewEmpiricalLengths(nil); err == nil {
		t.Error("empty sample should fail")
	}
	if _, err := NewEmpiricalLengths([]int{5, 0}); err == nil {
		t.Error("non-positive sample should fail")
	}
	obs := []int{10, 10, 10, 10, 50, 50, 200, 400}
	e, err := NewEmpiricalLengths(obs)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Quantile(0.5); got != 10 {
		t.Errorf("median = %d, want 10", got)
	}
	if got := e.Quantile(1.0); got != 400 {
		t.Errorf("max = %d, want 400", got)
	}
	// Sampling reproduces the empirical frequencies.
	rng := rand.New(rand.NewSource(4))
	count10 := 0
	const n = 8000
	for i := 0; i < n; i++ {
		l := e.SampleLength(rng, 0)
		found := false
		for _, v := range obs {
			if v == l {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("sampled %d, not in the observed support", l)
		}
		if l == 10 {
			count10++
		}
	}
	frac := float64(count10) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("P(10) = %.3f, want ~0.5", frac)
	}
}

func TestEmpiricalReplayEndToEnd(t *testing.T) {
	// Record one trace's lengths, replay them at a different rate.
	src, err := Generate(Stable(9, 200, 3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	emp, err := NewEmpiricalLengths(src.Lengths())
	if err != nil {
		t.Fatal(err)
	}
	replay, err := Generate(Config{
		Seed:     10,
		Duration: 3 * time.Second,
		Arrivals: Poisson{Rate: 800},
		Lengths:  emp,
	})
	if err != nil {
		t.Fatal(err)
	}
	srcStats, repStats := src.Stats(), replay.Stats()
	if repStats.Count < 3*srcStats.Count {
		t.Errorf("replay at 4x rate should have ~4x requests: %d vs %d", repStats.Count, srcStats.Count)
	}
	if diff := repStats.Median - srcStats.Median; diff < -15 || diff > 15 {
		t.Errorf("replayed median %d too far from source %d", repStats.Median, srcStats.Median)
	}
}
