package trace

import (
	"math/rand"
	"time"
)

// ArrivalProcess generates request arrival timestamps over a trace window.
type ArrivalProcess interface {
	// Arrivals returns sorted arrival offsets in [0, duration).
	Arrivals(rng *rand.Rand, duration time.Duration) []time.Duration
}

// Poisson is a homogeneous Poisson arrival process — the paper's stable
// pattern ("Twitter-Stable"). Inter-arrival gaps are exponential with mean
// 1/Rate.
type Poisson struct {
	// Rate is the average arrival rate in requests per second.
	Rate float64
}

// Arrivals implements ArrivalProcess.
func (p Poisson) Arrivals(rng *rand.Rand, duration time.Duration) []time.Duration {
	if p.Rate <= 0 || duration <= 0 {
		return nil
	}
	expected := p.Rate * duration.Seconds()
	out := make([]time.Duration, 0, int(expected)+16)
	t := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() / p.Rate * float64(time.Second))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		t += gap
		if t >= duration {
			return out
		}
		out = append(out, t)
	}
}

// MMPP is a two-state Markov-modulated Poisson process — the paper's bursty
// pattern ("Twitter-Bursty"). The process alternates between a low-rate and
// a high-rate state with exponentially distributed sojourn times.
type MMPP struct {
	// LowRate and HighRate are the per-state arrival rates (req/s).
	LowRate, HighRate float64
	// MeanLow and MeanHigh are the mean sojourn times in each state.
	MeanLow, MeanHigh time.Duration
}

// MeanRate returns the long-run average arrival rate of the process.
func (m MMPP) MeanRate() float64 {
	wl := m.MeanLow.Seconds()
	wh := m.MeanHigh.Seconds()
	if wl+wh <= 0 {
		return 0
	}
	return (m.LowRate*wl + m.HighRate*wh) / (wl + wh)
}

// Arrivals implements ArrivalProcess.
func (m MMPP) Arrivals(rng *rand.Rand, duration time.Duration) []time.Duration {
	if duration <= 0 || m.MeanRate() <= 0 {
		return nil
	}
	out := make([]time.Duration, 0, int(m.MeanRate()*duration.Seconds())+16)
	t := time.Duration(0)
	high := rng.Intn(2) == 1 // random initial state
	for t < duration {
		rate, meanStay := m.LowRate, m.MeanLow
		if high {
			rate, meanStay = m.HighRate, m.MeanHigh
		}
		stay := time.Duration(rng.ExpFloat64() * float64(meanStay))
		end := t + stay
		if end > duration {
			end = duration
		}
		if rate > 0 {
			at := t
			for {
				gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
				if gap <= 0 {
					gap = time.Nanosecond
				}
				at += gap
				if at >= end {
					break
				}
				out = append(out, at)
			}
		}
		t = end
		high = !high
	}
	return out
}

// BurstyAround returns an MMPP whose long-run average rate equals rate,
// alternating between a calm state and ~1.8x bursts of a few seconds.
// This is the default "Twitter-Bursty" construction: same average load as
// the stable trace but strongly modulated in the short term, with burst
// excursions sized so a reasonably provisioned cluster is pushed past
// capacity transiently rather than buried for tens of seconds.
func BurstyAround(rate float64) MMPP {
	// Weights: low 22s of every ~28s, high 6s:
	// mean = (0.7*22 + 1.6*6)/28 = 25/28 of the base rate.
	base := rate * 28.0 / 25.0
	return MMPP{
		LowRate:  0.7 * base,
		HighRate: 1.6 * base,
		MeanLow:  22 * time.Second,
		MeanHigh: 6 * time.Second,
	}
}
