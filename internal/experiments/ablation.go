package experiments

import (
	"fmt"
	"io"
	"time"

	"arlo/internal/baselines"
	"arlo/internal/model"
	"arlo/internal/sim"
	"arlo/internal/trace"
)

// AblationFailures injects instance crashes into a moderately loaded
// Bert-Base stream and compares the dispatch policies' resilience. The
// paper motivates the Request Scheduler with exactly this scenario
// (section 1: "idiosyncratic factors such as failures and bugs also lead
// to imbalanced load"): when a runtime loses an instance, demotion lets
// its traffic spill to larger runtimes until the Runtime Scheduler's next
// period repairs the allocation.
func AblationFailures(w io.Writer, opt Options) error {
	dur := 60 * time.Second
	if opt.Full {
		dur = 3 * time.Minute
	}
	lm := model.BertBase()
	slo := 150 * time.Millisecond
	tr, err := trace.Generate(trace.Stable(opt.Seed, 4000, dur))
	if err != nil {
		return err
	}
	// Crash the most loaded instance of the busiest runtime twice, with
	// 15 s outages — long enough to hurt, short enough that the trace's
	// remainder shows recovery.
	failures := []sim.Failure{
		{At: 15 * time.Second, Runtime: 1, Downtime: 15 * time.Second},
		{At: 18 * time.Second, Runtime: 1, Downtime: 15 * time.Second},
		{At: 40 * time.Second, Runtime: 0, Downtime: 15 * time.Second},
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "policy\tmean(ms)\tp98(ms)\tSLO-viol%\tfailures")
	for _, policy := range []string{"RS", "ILB", "IG"} {
		s, err := baselines.ArloWithDispatcher(lm, slo, policy)
		if err != nil {
			return err
		}
		cfg, err := s.SimConfig(tr, 10, 20*time.Second)
		if err != nil {
			return err
		}
		cfg.Failures = failures
		res, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%d\n",
			policy, ms(res.Summary.Mean), ms(res.Summary.P98), 100*res.Summary.SLOFraction, res.Failures)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "(extension: demotion-capable policies should absorb outages that strand ILB's traffic)")
	return nil
}

// AblationBatch sweeps the dynamic-batching extension (paper section 6,
// future work): at low load batching is a pure latency tax (requests wait
// for nothing and pay the shared batch's cost), while past the batch-1
// saturation point it is the only way to keep serving — the classic
// throughput/latency trade-off the paper describes.
func AblationBatch(w io.Writer, opt Options) error {
	dur := 25 * time.Second
	if opt.Full {
		dur = 2 * time.Minute
	}
	lm := model.BertBase()
	slo := 150 * time.Millisecond
	arlo, err := baselines.Arlo(lm, slo)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "load(req/s)\tbatch\tmean(ms)\tp98(ms)\tSLO-viol%")
	for _, rate := range []float64{1000, 4000, 7000} {
		tr, err := trace.Generate(trace.Stable(opt.Seed, rate, dur))
		if err != nil {
			return err
		}
		for _, batch := range []int{1, 2, 4, 8} {
			cfg, err := arlo.SimConfig(tr, 10, 20*time.Second)
			if err != nil {
				return err
			}
			cfg.MaxBatch = batch
			res, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%.0f\t%d\t%s\t%s\t%.2f\n",
				rate, batch, ms(res.Summary.Mean), ms(res.Summary.P98), 100*res.Summary.SLOFraction)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "(extension: batch 1 wins while it keeps up; larger batches extend the capacity ceiling at a latency cost)")
	return nil
}

// AblationParallel exercises the "large models with multiple GPUs"
// discussion (paper section 6): the same Bert-Large pool served by
// tensor-parallel instances of 1, 2 and 4 GPUs each (communication
// fraction 0.15). Polymorphing's advantage over uniform padding persists
// at every shard count because the computation stays shape-dependent —
// exactly the paper's argument.
func AblationParallel(w io.Writer, opt Options) error {
	dur := 25 * time.Second
	if opt.Full {
		dur = 2 * time.Minute
	}
	base := model.BertLarge()
	slo := 450 * time.Millisecond
	const poolGPUs = 24
	tr, err := trace.Generate(trace.Stable(opt.Seed, 1200, dur))
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "shards/instance\tinstances\tscheme\tmean(ms)\tp98(ms)")
	for _, k := range []int{1, 2, 4} {
		lm, err := base.Sharded(k, 0.15)
		if err != nil {
			return err
		}
		instances := poolGPUs / k
		arlo, err := baselines.Arlo(lm, slo)
		if err != nil {
			return err
		}
		st, err := baselines.ST(lm, slo)
		if err != nil {
			return err
		}
		for _, s := range []*baselines.System{st, arlo} {
			cfg, err := s.SimConfig(tr, instances, 20*time.Second)
			if err != nil {
				return err
			}
			res, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%s\n",
				k, instances, s.Name, ms(res.Summary.Mean), ms(res.Summary.P98))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "(extension: Arlo's padding savings survive model parallelism; sharding trades instance count for per-request speed)")
	return nil
}

// AblationLateBinding compares Algorithm 1's early binding (commit every
// request to an instance at arrival) with a late-binding variant that
// holds requests in the central request buffer of the paper's
// architecture (Fig. 3, component (e)) while every candidate instance is
// past its SLO capacity, binding them as completions free capacity.
// Late binding is the classic remedy for early-binding's gamble under
// bursts — an extension of the paper's design space.
func AblationLateBinding(w io.Writer, opt Options) error {
	dur := 100 * time.Second
	if opt.Full {
		dur = 4 * time.Minute
	}
	lm := model.BertLarge()
	slo := 450 * time.Millisecond
	arlo, err := baselines.Arlo(lm, slo)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "load(req/s)\tbinding\tmean(ms)\tp98(ms)\tSLO-viol%\tbuffer peak")
	for _, rate := range []float64{1200, 2200} {
		tr, err := trace.Generate(trace.Bursty(opt.Seed, rate, dur))
		if err != nil {
			return err
		}
		for _, late := range []bool{false, true} {
			cfg, err := arlo.SimConfig(tr, 20, 20*time.Second)
			if err != nil {
				return err
			}
			cfg.AllocPeriod = 40 * time.Second
			cfg.LateBinding = late
			res, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			label := "early"
			if late {
				label = "late"
			}
			fmt.Fprintf(tw, "%.0f\t%s\t%s\t%s\t%.2f\t%d\n",
				rate, label, ms(res.Summary.Mean), ms(res.Summary.P98),
				100*res.Summary.SLOFraction, res.BufferedPeak)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "(extension: late binding should match early binding when idle and soften tails under saturation)")
	return nil
}
