package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/baselines"
	"arlo/internal/core"
	"arlo/internal/model"
	"arlo/internal/sim"
	"arlo/internal/trace"
)

// Fig10 regenerates the large-scale simulation comparison under
// Twitter-Bursty load. Paper scale is 8k req/s on 90 GPUs (Bert-Base) and
// 25k req/s on 300 GPUs (Bert-Large); quick mode scales both down by 3x
// (same per-GPU load) so the suite stays fast.
func Fig10(w io.Writer, opt Options) error {
	dur := 40 * time.Second
	div := 3.0
	if opt.Full {
		dur = 3 * time.Minute
		div = 1.0
	}
	streams := []struct {
		name string
		lm   *model.LatencyModel
		slo  time.Duration
		rate float64
		gpus int
	}{
		{"Bert-Base", model.BertBase(), 150 * time.Millisecond, 8000 / div, int(90 / div)},
		{"Bert-Large", model.BertLarge(), 450 * time.Millisecond, 25000 / div, int(300 / div)},
	}
	for _, st := range streams {
		fmt.Fprintf(w, "-- %s @ %.0f req/s, %d GPUs, Twitter-Bursty --\n", st.name, st.rate, st.gpus)
		tr, err := trace.Generate(trace.Bursty(opt.Seed, st.rate, dur))
		if err != nil {
			return err
		}
		systems, err := fourSystems(st.lm, st.slo, tr)
		if err != nil {
			return err
		}
		results, err := runComparison(w, systems, tr, st.gpus, nil)
		if err != nil {
			return err
		}
		printReductions(w, results)
		// Latency CDF quantiles per scheme (the Fig. 10 curves).
		tw := newTab(w)
		fmt.Fprintln(tw, "scheme\tp25(ms)\tp50(ms)\tp75(ms)\tp90(ms)\tp98(ms)")
		for _, s := range systems {
			r := results[s.Name]
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n", s.Name,
				ms(r.Latency.Percentile(0.25)), ms(r.Latency.Percentile(0.50)),
				ms(r.Latency.Percentile(0.75)), ms(r.Latency.Percentile(0.90)),
				ms(r.Latency.Percentile(0.98)))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "(paper: Arlo mean -70.3%/-98.1% vs ST, -24.1%/-30.7% vs DT, -31.3%/-41.7% vs INFaaS)")
	return nil
}

// Fig11 sweeps the number of compiled runtimes N in {2, 4, 8, 16} for a
// Bert-Large stream on 40 GPUs: too few runtimes leave padding costs on
// the table; beyond the staircase choice (8) the gains vanish.
func Fig11(w io.Writer, opt Options) error {
	dur := 40 * time.Second
	rate := 4800.0
	if opt.Full {
		dur = 3 * time.Minute
	}
	lm := model.BertLarge()
	slo := 450 * time.Millisecond
	tr, err := trace.Generate(trace.Bursty(opt.Seed, rate, dur))
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "#runtimes\tmean(ms)\tp98(ms)\tSLO-viol%")
	for _, n := range []int{2, 4, 8, 16} {
		s, err := baselines.ArloN(lm, slo, n)
		if err != nil {
			return err
		}
		cfg, err := s.SimConfig(tr, 40, 20*time.Second)
		if err != nil {
			return err
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.2f\n", n, ms(res.Summary.Mean), ms(res.Summary.P98), 100*res.Summary.SLOFraction)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "(paper: 2 runtimes fail the stream; 4 violate ~2.5% of SLOs; 8 matches 16)")
	return nil
}

// Table3 compares the Runtime Scheduler's periodic allocation against two
// offline baselines: even GPUs per runtime and a single allocation from
// the global trace distribution. The workload's length distribution
// swings between short-heavy and long-heavy regimes, so any fixed
// allocation is wrong half the time.
func Table3(w io.Writer, opt Options) error {
	dur := 5 * time.Minute
	period := 20 * time.Second
	if opt.Full {
		dur = 16 * time.Minute
		period = 60 * time.Second
	}
	lm := model.BertLarge()
	slo := 450 * time.Millisecond
	const gpus = 40
	// Today's stream runs longer-than-usual inputs with a slow regime
	// drift; the "global trace" statistics the offline baseline is built
	// from describe the long-term average workload (shorter inputs).
	tr, err := trace.Generate(trace.Config{
		Seed:     opt.Seed,
		Duration: dur,
		Arrivals: trace.Poisson{Rate: 4200},
		Lengths: trace.DriftingLengths{
			Mu:          math.Log(120),
			SigmaWindow: 0.40,
			DriftAmp:    0.30,
			DriftPeriod: 8 * period,
			Min:         1,
			Max:         512,
		},
	})
	if err != nil {
		return err
	}
	arlo, err := baselines.Arlo(lm, slo)
	if err != nil {
		return err
	}
	numRt := len(arlo.Profile.Runtimes)

	type policy struct {
		name    string
		initial func() ([]int, error)
		alloc   sim.AllocatorFunc
	}
	caps := make([]int, numRt)
	for i, rt := range arlo.Profile.Runtimes {
		caps[i] = rt.Capacity
	}
	// The global-distribution baseline allocates from the long-term
	// workload statistics, not from the clip it is evaluated on (the
	// paper's "global trace length distribution").
	reference, err := trace.Generate(trace.Config{
		Seed:     opt.Seed + 977,
		Duration: dur,
		Arrivals: trace.Poisson{Rate: 4200},
		Lengths:  trace.TwitterRecalibrated(opt.Seed + 977),
	})
	if err != nil {
		return err
	}
	globalQ := reference.BinDemand(arlo.Profile.MaxLengths(), slo)
	policies := []policy{
		{
			name: "periodic (Runtime Scheduler)",
			initial: func() ([]int, error) {
				return arlo.Initial(gpus, tr.Clip(0, period).BinDemand(arlo.Profile.MaxLengths(), slo))
			},
			alloc: arlo.Allocate,
		},
		{
			name:    "even per runtime (offline)",
			initial: func() ([]int, error) { return allocator.EvenAllocation(gpus, numRt) },
		},
		{
			name:    "global trace distribution (offline)",
			initial: func() ([]int, error) { return allocator.ProportionalAllocation(gpus, globalQ, caps) },
		},
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "allocation\tmean(ms)\tp98(ms)\tSLO-viol%")
	for _, pol := range policies {
		initial, err := pol.initial()
		if err != nil {
			return err
		}
		cfg := sim.Config{
			Profile:           arlo.Profile,
			Trace:             tr,
			InitialAllocation: initial,
			Dispatcher:        arlo.Dispatcher,
			Allocate:          pol.alloc,
			ReplacementTime:   time.Second,
		}
		if pol.alloc != nil {
			cfg.AllocPeriod = period
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\n", pol.name, ms(res.Summary.Mean), ms(res.Summary.P98), 100*res.Summary.SLOFraction)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "(paper: both offline schemes trail periodic allocation under dynamic workloads)")
	return nil
}

// Fig12 traces the GPU counts the Runtime Scheduler assigns to the eight
// runtimes across a drifting bursty trace.
func Fig12(w io.Writer, opt Options) error {
	dur := 4 * time.Minute
	period := 45 * time.Second
	if opt.Full {
		dur = 10 * time.Minute
		period = 120 * time.Second
	}
	a, err := core.NewSystem(core.WithModel("bert-large"), core.WithAllocPeriod(period))
	if err != nil {
		return err
	}
	tr, err := trace.Generate(trace.Bursty(opt.Seed, 5000, dur))
	if err != nil {
		return err
	}
	res, err := a.Simulate(tr, 40)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprint(tw, "t(s)")
	for i := range a.Profile.Runtimes {
		fmt.Fprintf(tw, "\trt%d(%d)", i, a.Profile.Runtimes[i].MaxLength)
	}
	fmt.Fprintln(tw)
	for _, pt := range res.Allocations {
		fmt.Fprintf(tw, "%.0f", pt.At.Seconds())
		for _, n := range pt.N {
			fmt.Fprintf(tw, "\t%d", n)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "reallocations: %d, instance replacements: %d\n", len(res.Allocations)-1, res.Replacements)
	return nil
}

// Table4 compares the Request Scheduler (RS) against intra-group load
// balance (ILB) and inter-group greedy (IG) within Arlo, on three
// Bert-Large Twitter-Bursty traces at different scales; the third trace
// has weak short-term length fluctuation (paper: RS ~ ILB there, both far
// ahead of IG).
func Table4(w io.Writer, opt Options) error {
	dur := 150 * time.Second
	period := 40 * time.Second
	if opt.Full {
		dur = 4 * time.Minute
		period = 120 * time.Second
	}
	lm := model.BertLarge()
	slo := 450 * time.Millisecond
	type stream struct {
		name string
		tr   *trace.Trace
		gpus int
	}
	// Strong short-term length fluctuation: a drifting short-heavy
	// component mixed with a long "document" component, under bursty
	// arrivals. The ideal runtimes of a burst overload before the Runtime
	// Scheduler's next period — demotion is what absorbs it.
	fluctuating := func(seed int64) trace.LengthSampler {
		return trace.MixtureLengths{
			Components: []trace.LengthSampler{
				trace.DriftingLengths{
					Mu: math.Log(60), SigmaWindow: 0.45, DriftAmp: 0.35,
					DriftPeriod: 60 * time.Second, NoiseAmp: 0.2, NoiseSeed: seed,
					Min: 1, Max: 512,
				},
				trace.LogNormalLengths{Mu: math.Log(350), Sigma: 0.25, Min: 128, Max: 512},
			},
			Weights: []float64{0.85, 0.15},
		}
	}
	tr1, err := trace.Generate(trace.Config{
		Seed: opt.Seed, Duration: dur,
		Arrivals: trace.BurstyAround(2200),
		Lengths:  fluctuating(opt.Seed),
	})
	if err != nil {
		return err
	}
	tr2, err := trace.Generate(trace.Config{
		Seed: opt.Seed + 1, Duration: dur,
		Arrivals: trace.BurstyAround(4400),
		Lengths:  fluctuating(opt.Seed + 1),
	})
	if err != nil {
		return err
	}
	// Weak short-term fluctuation: stable arrivals, drift-free lengths.
	tr3, err := trace.Generate(trace.Config{
		Seed:     opt.Seed + 2,
		Duration: dur,
		Arrivals: trace.Poisson{Rate: 3600},
		Lengths: trace.LogNormalLengths{
			Mu:    math.Log(21 * 512.0 / 125.0),
			Sigma: 0.55,
			Min:   1,
			Max:   512,
		},
	})
	if err != nil {
		return err
	}
	streams := []stream{
		{"bursty-small (2.2k req/s, 20 GPUs)", tr1, 20},
		{"bursty-large (4.4k req/s, 40 GPUs)", tr2, 40},
		{"weak-fluctuation (3.6k req/s, 30 GPUs)", tr3, 30},
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "trace\tpolicy\tmean(ms)\tp98(ms)\tSLO-viol%")
	for _, st := range streams {
		for _, policy := range []string{"RS", "ILB", "IG"} {
			s, err := baselines.ArloWithDispatcher(lm, slo, policy)
			if err != nil {
				return err
			}
			cfg, err := s.SimConfig(st.tr, st.gpus, 20*time.Second)
			if err != nil {
				return err
			}
			cfg.AllocPeriod = period // keep the Runtime Scheduler active
			res, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.2f\n",
				st.name, policy, ms(res.Summary.Mean), ms(res.Summary.P98), 100*res.Summary.SLOFraction)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "(paper: RS cuts tail latency up to 95.6% vs ILB and 58.7% vs IG; on the weak-fluctuation trace RS ~ ILB >> IG)")
	return nil
}

// AblationRS sweeps the Request Scheduler's parameters around the paper's
// defaults (lambda 0.85, alpha 0.9, L 6) on a bursty Bert-Large stream —
// the sensitivity analysis behind the section 5 parameter choices.
func AblationRS(w io.Writer, opt Options) error {
	dur := 30 * time.Second
	if opt.Full {
		dur = 2 * time.Minute
	}
	tr, err := trace.Generate(trace.Bursty(opt.Seed, 2800, dur))
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "lambda\talpha\tL\tmean(ms)\tp98(ms)")
	run := func(lambda, alpha float64, L int) error {
		a, err := core.NewSystem(core.WithModel("bert-large"), core.WithSchedulerParams(lambda, alpha, L))
		if err != nil {
			return err
		}
		res, err := a.Simulate(tr, 20)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%.2f\t%.2f\t%d\t%s\t%s\n", lambda, alpha, L, ms(res.Summary.Mean), ms(res.Summary.P98))
		return nil
	}
	for _, lambda := range []float64{0.5, 0.7, 0.85, 0.95} {
		if err := run(lambda, 0.9, 6); err != nil {
			return err
		}
	}
	for _, alpha := range []float64{0.7, 1.0} {
		if err := run(0.85, alpha, 6); err != nil {
			return err
		}
	}
	for _, L := range []int{1, 3} {
		if err := run(0.85, 0.9, L); err != nil {
			return err
		}
	}
	return tw.Flush()
}
