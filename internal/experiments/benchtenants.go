package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"arlo/internal/cluster"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/tenant"
	"arlo/internal/trace"
)

// benchTenantArm is one tenant's measured outcome in one arm.
type benchTenantArm struct {
	Requests      int     `json:"requests"`
	Completed     int     `json:"completed"`
	RateLimited   int     `json:"rate_limited"`
	OtherRejected int     `json:"other_rejected"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	// SLOAttainment is the fraction of completions within the SLO.
	SLOAttainment float64 `json:"slo_attainment"`
}

// benchTenantsResult is the BENCH_tenants.json schema.
type benchTenantsResult struct {
	TimeScale float64 `json:"timescale"`
	SLOMS     float64 `json:"slo_ms"`

	// Baseline runs without a tenant registry: the noisy tenant's burst
	// shares one queue with the victim.
	Baseline map[string]benchTenantArm `json:"baseline"`
	// Protected runs with token-bucket admission on the noisy tenant and
	// weighted fair dispatch.
	Protected map[string]benchTenantArm `json:"protected"`

	// VictimP99Improvement is baseline victim p99 over protected victim
	// p99 — the noisy-neighbor isolation factor.
	VictimP99Improvement float64 `json:"victim_p99_improvement"`
}

// BenchTenants measures noisy-neighbor isolation on the live cluster: a
// steady interactive "victim" tenant shares the cluster with a "noisy"
// tenant offering ~9x the load. The baseline arm runs pre-tenancy (one
// shared queue); the protected arm gives the noisy tenant a token bucket
// and the victim a 8:1 fair-share weight. The report is per-tenant
// latency and SLO attainment in both arms, plus the victim's p99
// improvement. Every noisy rejection in the protected arm must be the
// typed rate-limited error — anything else fails the experiment.
// Results are printed and written to BENCH_tenants.json.
func BenchTenants(w io.Writer, opt Options) error {
	const (
		slo       = 150 * time.Millisecond
		timeScale = 0.05
		victimID  = "victim"
		noisyID   = "noisy"
	)
	dur := 2 * time.Second // modeled
	victimRate, noisyRate := 100.0, 900.0
	if opt.Full {
		dur = 6 * time.Second
	}

	p, err := profiler.StaticProfile(model.BertBase(), []int{128, 512}, slo)
	if err != nil {
		return err
	}
	factory := func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
		return dispatch.NewRequestScheduler(ml)
	}

	// One merged seeded trace per tenant keeps the stimulus identical
	// across arms; the noisy burst occupies the middle half of the window.
	mkTrace := func(seed int64, rate float64, id string, burst bool) (*trace.Trace, error) {
		cfg := trace.Stable(seed, rate, dur)
		cfg.Tenants = trace.WeightedTenants{IDs: []string{id}}
		tr, err := trace.Generate(cfg)
		if err != nil {
			return nil, err
		}
		if burst {
			kept := tr.Requests[:0]
			for _, r := range tr.Requests {
				if r.At >= dur/4 && r.At < 3*dur/4 {
					kept = append(kept, r)
				}
			}
			tr.Requests = kept
		}
		return tr, nil
	}
	victimTr, err := mkTrace(opt.Seed+1, victimRate, victimID, false)
	if err != nil {
		return err
	}
	noisyTr, err := mkTrace(opt.Seed+2, noisyRate, noisyID, true)
	if err != nil {
		return err
	}
	merged := append(append([]trace.Request(nil), victimTr.Requests...), noisyTr.Requests...)
	for i := 1; i < len(merged); i++ {
		for j := i; j > 0 && merged[j].At < merged[j-1].At; j-- {
			merged[j], merged[j-1] = merged[j-1], merged[j]
		}
	}

	runArm := func(cfgs []tenant.Config) (map[string]benchTenantArm, error) {
		var reg *tenant.Registry
		if len(cfgs) > 0 {
			if reg, err = tenant.NewRegistry(cfgs...); err != nil {
				return nil, err
			}
		}
		cl, err := cluster.New(cluster.Config{
			Profile:           p,
			InitialAllocation: []int{1, 1},
			Dispatcher:        factory,
			TimeScale:         timeScale,
			Overhead:          -1,
			Tenants:           reg,
		})
		if err != nil {
			return nil, err
		}
		defer cl.Close()

		type sample struct {
			tenant string
			lat    time.Duration
			err    error
		}
		results := make([]sample, len(merged))
		var wg sync.WaitGroup
		start := time.Now()
		for i := range merged {
			r := &merged[i]
			if wait := time.Until(start.Add(time.Duration(float64(r.At) * timeScale))); wait > 0 {
				time.Sleep(wait)
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := cl.SubmitCtx(context.Background(),
					cluster.Request{Length: merged[i].Length, Tenant: merged[i].Tenant})
				results[i] = sample{tenant: merged[i].Tenant, lat: res.Latency, err: err}
			}(i)
		}
		wg.Wait()

		sloWall := time.Duration(float64(slo) * timeScale)
		out := make(map[string]benchTenantArm, 2)
		lats := make(map[string][]time.Duration, 2)
		for _, s := range results {
			arm := out[s.tenant]
			arm.Requests++
			switch {
			case s.err == nil:
				arm.Completed++
				lats[s.tenant] = append(lats[s.tenant], s.lat)
			case errors.Is(s.err, cluster.ErrRateLimited):
				arm.RateLimited++
			default:
				arm.OtherRejected++
			}
			out[s.tenant] = arm
		}
		for id, arm := range out {
			ls := lats[id]
			within := 0
			for _, l := range ls {
				if l <= sloWall {
					within++
				}
			}
			arm.P50MS = pctMS(ls, 0.50)
			arm.P99MS = pctMS(ls, 0.99)
			if arm.Completed > 0 {
				arm.SLOAttainment = float64(within) / float64(arm.Completed)
			}
			out[id] = arm
		}
		return out, nil
	}

	baseline, err := runArm(nil)
	if err != nil {
		return err
	}
	protected, err := runArm([]tenant.Config{
		{ID: victimID, SLOClass: "interactive", Weight: 8},
		// The bucket caps the noisy tenant near its fair share of token
		// throughput; the surplus of the burst is rejected at admission
		// instead of queueing in front of the victim.
		{ID: noisyID, SLOClass: "batch", Weight: 1, Capacity: 3000, RefillPerSec: 4000},
	})
	if err != nil {
		return err
	}
	if n := protected[noisyID].OtherRejected; n > 0 {
		return fmt.Errorf("bench-tenants: %d noisy rejections were not the typed rate-limited error", n)
	}
	if protected[noisyID].RateLimited == 0 {
		return fmt.Errorf("bench-tenants: admission never fired on the noisy burst; tighten the bucket")
	}

	res := benchTenantsResult{
		TimeScale: timeScale,
		SLOMS:     float64(slo) / float64(time.Millisecond),
		Baseline:  baseline,
		Protected: protected,
	}
	if pp := protected[victimID].P99MS; pp > 0 {
		res.VictimP99Improvement = baseline[victimID].P99MS / pp
	}

	tw := newTab(w)
	fmt.Fprintln(tw, "arm\ttenant\treqs\tok\trate-limited\tother\tp50 ms\tp99 ms\tSLO")
	for _, arm := range []struct {
		name string
		m    map[string]benchTenantArm
	}{{"baseline", baseline}, {"protected", protected}} {
		for _, id := range []string{victimID, noisyID} {
			a := arm.m[id]
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%.3f\t%.3f\t%.1f%%\n",
				arm.name, id, a.Requests, a.Completed, a.RateLimited, a.OtherRejected,
				a.P50MS, a.P99MS, 100*a.SLOAttainment)
		}
	}
	tw.Flush()
	fmt.Fprintf(w, "victim p99 improvement with admission + fair share: %.2fx\n", res.VictimP99Improvement)

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_tenants.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote BENCH_tenants.json")
	return nil
}
