package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"arlo/internal/cluster"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/router"
	"arlo/internal/serve"
	"arlo/internal/tokenizer"
)

// routerShard is one in-process arlo-server shard behind its wire
// listener, restartable for the failover arm.
type routerShard struct {
	name  string
	alloc []int
	slo   time.Duration
	scale float64

	cl  *cluster.Cluster
	srv *serve.Server
	ln  net.Listener
}

func startRouterShard(name string, alloc []int, slo time.Duration, scale float64) (*routerShard, error) {
	s := &routerShard{name: name, alloc: alloc, slo: slo, scale: scale}
	if err := s.up(""); err != nil {
		return nil, err
	}
	return s, nil
}

// up builds the cluster + server and listens; addr pins the listen
// address on restart (empty picks an ephemeral port).
func (s *routerShard) up(addr string) error {
	p, err := profiler.StaticProfile(model.BertBase(), []int{128, 512}, s.slo)
	if err != nil {
		return err
	}
	cl, err := cluster.New(cluster.Config{
		Profile:           p,
		InitialAllocation: s.alloc,
		TimeScale:         s.scale,
		Dispatcher: func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewRequestScheduler(ml)
		},
	})
	if err != nil {
		return err
	}
	srv, err := serve.New(tokenizer.New(), cl,
		serve.WithMaxLength(512), serve.WithShardName(s.name))
	if err != nil {
		cl.Close()
		return err
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		_ = srv.Close()
		cl.Close()
		return err
	}
	s.cl, s.srv, s.ln = cl, srv, ln
	go func() { _ = srv.ServeWire(ln) }()
	return nil
}

func (s *routerShard) addr() string { return s.ln.Addr().String() }

// kill drops the shard hard: listener, server (and with it every router
// connection), then the cluster.
func (s *routerShard) kill() {
	_ = s.ln.Close()
	_ = s.srv.Close()
	s.cl.Close()
}

// restart brings the shard back on the same address with empty queues.
func (s *routerShard) restart() error { return s.up(s.addr()) }

// queueDepths returns each level's queue depth and the shard's instance
// count, read from the same snapshot the router consumes.
func (s *routerShard) queueDepths() (depth, instances int) {
	snap := s.srv.LoadSnapshot()
	for _, lv := range snap.Levels {
		depth += int(lv.Depth)
		instances += int(lv.Instances)
	}
	return depth, instances
}

// benchRouterCell is one (policy, staleness) measurement on the shared
// skewed-length trace.
type benchRouterCell struct {
	Policy      string  `json:"policy"`
	StalenessMS float64 `json:"staleness_ms"`
	Requests    int     `json:"requests"`
	RPS         float64 `json:"rps"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	// SLOAttainment is the fraction of requests finishing within the
	// time-scaled SLO budget, measured at the client socket.
	SLOAttainment float64 `json:"slo_attainment"`
	// Imbalance is max/mean of capacity-normalized shard queue depth,
	// sampled during the run (1.0 = perfectly proportional).
	Imbalance float64 `json:"imbalance"`
	Reroutes  uint64  `json:"reroutes"`
}

// benchRouterFailover is the shard-kill conservation audit.
type benchRouterFailover struct {
	Sent          int    `json:"sent"`
	Completed     int    `json:"completed"`
	TypedErrors   int    `json:"typed_errors"`
	UntypedErrors int    `json:"untyped_errors"`
	Lost          int    `json:"lost"`
	Reroutes      uint64 `json:"reroutes"`
	MaxHops       int    `json:"max_hops"`
	HopBudget     int    `json:"hop_budget"`
}

// benchRouterResult is the BENCH_router.json schema.
type benchRouterResult struct {
	TimeScale   float64 `json:"timescale"`
	SLOBudgetMS float64 `json:"slo_budget_ms"`
	TargetRPS   float64 `json:"target_rps"`
	Shards      []struct {
		Name  string `json:"name"`
		Alloc []int  `json:"alloc"`
	} `json:"shards"`

	Grid []benchRouterCell `json:"grid"`

	// P99SpeedupVsRR is round-robin p99 over length-aware p99 with fresh
	// (immediate) snapshots — the headline routing-quality number.
	P99SpeedupVsRR float64 `json:"p99_speedup_vs_rr"`
	// Imbalance at 1 s staleness: power-of-two-choices (length-aware)
	// vs the naive least-loaded baseline that herds.
	ImbalanceP2CAt1s         float64 `json:"imbalance_p2c_at_1s"`
	ImbalanceLeastLoadedAt1s float64 `json:"imbalance_least_loaded_at_1s"`

	Failover benchRouterFailover `json:"failover"`
}

// benchRouterTrace is the seeded skewed-length trace: mostly short
// requests with a long tail that only fits the 512 bucket.
func benchRouterTrace(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	lens := make([]int, n)
	for i := range lens {
		if rng.Float64() < 0.7 {
			lens[i] = 16 + rng.Intn(104) // short: 16..119
		} else {
			lens[i] = 320 + rng.Intn(180) // long: 320..499
		}
	}
	return lens
}

// benchRouterAllocs is the deliberately heterogeneous deployment: shard
// a has an eighth of the fleet's capacity but a load-blind policy sends
// it a third of the traffic, so its queues set the tail while
// load-aware scoring routes around it.
var benchRouterAllocs = [][]int{{1, 1}, {3, 3}, {4, 4}}

// typedRouterCodes are the stable codes a client may legitimately see
// during a shard outage; anything else breaks conservation.
var typedRouterCodes = map[string]bool{
	serve.CodeCongested:        true,
	serve.CodeUnserviceable:    true,
	serve.CodeNoInstances:      true,
	serve.CodeUnavailable:      true,
	serve.CodeDeadlineExceeded: true,
	serve.CodeRateLimited:      true,
}

// benchRouterRun drives the trace through a fresh 3-shard deployment
// under one (policy, refresh) configuration: open-loop arrivals paced at
// targetRPS (so a policy that overloads one shard diverges instead of
// throttling the workload, as a closed loop would). chaos, when non-nil,
// is invoked with the shards and a progress counter to script kills.
func benchRouterRun(policy router.Policy, refresh time.Duration, slo time.Duration,
	scale float64, lens []int, targetRPS float64, seed int64,
	chaos func(shards []*routerShard, done *atomic.Int64)) (benchRouterCell, benchRouterFailover, error) {

	var cell benchRouterCell
	var audit benchRouterFailover

	shards := make([]*routerShard, len(benchRouterAllocs))
	for i, alloc := range benchRouterAllocs {
		s, err := startRouterShard(string(rune('a'+i)), alloc, slo, scale)
		if err != nil {
			return cell, audit, err
		}
		defer s.kill()
		shards[i] = s
	}
	cfgs := make([]router.ShardConfig, len(shards))
	for i, s := range shards {
		cfgs[i] = router.ShardConfig{Name: s.name, Addr: s.addr()}
	}
	rt, err := router.New(router.Config{
		Shards:                  cfgs,
		Policy:                  policy,
		SnapshotRefreshInterval: refresh,
		MaxLength:               512,
		Seed:                    seed,
	})
	if err != nil {
		return cell, audit, err
	}
	defer rt.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return cell, audit, err
	}
	go func() { _ = rt.ServeWire(rln) }()
	if refresh > 0 {
		// Let the first background refresh land so no arm starts blind.
		time.Sleep(refresh + 20*time.Millisecond)
	}

	clients := make([]*serve.WireClient, 4)
	for i := range clients {
		wc, err := serve.DialWire(rln.Addr().String())
		if err != nil {
			return cell, audit, err
		}
		defer wc.Close()
		clients[i] = wc
	}
	tokens := make([]uint32, 512)
	for i := range tokens {
		tokens[i] = uint32(i%97 + 1)
	}

	// Imbalance sampler: capacity-normalized queue depth per shard,
	// time-averaged over busy samples; the cell's imbalance is max/mean
	// of those averages (1.0 = queues proportional to capacity).
	stopSample := make(chan struct{})
	var sampleWG sync.WaitGroup
	normSum := make([]float64, len(shards))
	var imbN int
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		tick := time.NewTicker(500 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSample:
				return
			case <-tick.C:
			}
			norm := make([]float64, len(shards))
			var total int
			ok := true
			for i, s := range shards {
				d, inst := s.queueDepths()
				if inst == 0 {
					ok = false
					break
				}
				total += d
				norm[i] = float64(d) / float64(inst)
			}
			if !ok || total < 6 {
				continue // too idle (or mid-kill) to say anything about balance
			}
			for i, v := range norm {
				normSum[i] += v
			}
			imbN++
		}
	}()

	var done atomic.Int64
	var chaosWG sync.WaitGroup
	if chaos != nil {
		chaosWG.Add(1)
		go func() { defer chaosWG.Done(); chaos(shards, &done) }()
	}

	total := len(lens)
	lats := make([]time.Duration, total)
	outcomes := make([]error, total)
	// Open loop with a bounded-outstanding backstop: at the cap the
	// pacer blocks rather than shedding, so no outcome is ever dropped
	// from the audit.
	sem := make(chan struct{}, 2048)
	interval := time.Duration(float64(time.Second) / targetRPS)
	var wg sync.WaitGroup
	start := time.Now()
	next := start
	for i := 0; i < total; i++ {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		next = next.Add(interval)
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			wc := clients[i%len(clients)]
			t0 := time.Now()
			_, err := wc.InferTokensCtx(context.Background(), tokens[:lens[i]])
			lats[i] = time.Since(t0)
			outcomes[i] = err
			done.Add(1)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopSample)
	sampleWG.Wait()
	chaosWG.Wait()

	var okLats []time.Duration
	var inSLO int
	sloBudget := time.Duration(float64(slo) * scale)
	audit.Sent = total
	audit.HopBudget = rt.HopBudget()
	audit.Reroutes = rt.Reroutes()
	audit.MaxHops = rt.MaxHops()
	for i, err := range outcomes {
		switch {
		case err == nil:
			audit.Completed++
			okLats = append(okLats, lats[i])
			if lats[i] <= sloBudget {
				inSLO++
			}
		default:
			var apiErr *serve.APIError
			if errors.As(err, &apiErr) && typedRouterCodes[apiErr.Code] {
				audit.TypedErrors++
			} else {
				audit.UntypedErrors++
			}
		}
	}
	audit.Lost = audit.Sent - audit.Completed - audit.TypedErrors - audit.UntypedErrors
	if chaos == nil && audit.Completed != total {
		return cell, audit, fmt.Errorf("router bench (%s, refresh %v): %d/%d requests failed",
			policy, refresh, total-audit.Completed, total)
	}

	cell = benchRouterCell{
		Policy:      policy.String(),
		StalenessMS: float64(refresh) / float64(time.Millisecond),
		Requests:    total,
		RPS:         float64(audit.Completed) / elapsed.Seconds(),
		P50MS:       pctMS(okLats, 0.50),
		P99MS:       pctMS(okLats, 0.99),
		Imbalance:   1,
		Reroutes:    audit.Reroutes,
	}
	if audit.Completed > 0 {
		cell.SLOAttainment = float64(inSLO) / float64(audit.Completed)
	}
	if imbN > 0 {
		var max, sum float64
		for _, v := range normSum {
			sum += v
			if v > max {
				max = v
			}
		}
		if sum > 0 {
			cell.Imbalance = max / (sum / float64(len(normSum)))
		}
	}
	return cell, audit, nil
}

// BenchRouter measures routing quality across the staleness x policy
// grid the exemplar's SnapshotRefreshInterval knob implies: a seeded
// skewed-length trace over three heterogeneous shards, per cell p99,
// SLO attainment and capacity-normalized load imbalance; then a
// shard-kill run whose conservation audit must lose zero requests.
// Results are printed and written to BENCH_router.json.
func BenchRouter(w io.Writer, opt Options) error {
	const (
		slo   = 150 * time.Millisecond
		scale = 0.1
	)
	// targetRPS offers ~70% of the fleet's aggregate capacity — above the
	// point where giving the eighth-capacity shard a third of the traffic
	// (round-robin) overloads it, below what load-proportional routing
	// serves with slack.
	targetRPS := 17000.0
	perRun := 4800
	if opt.Full {
		perRun = 16000
	}
	lens := benchRouterTrace(opt.Seed, perRun)

	policies := []router.Policy{router.PolicyLengthAware, router.PolicyRoundRobin, router.PolicyLeastLoaded}
	staleness := []time.Duration{0, 10 * time.Millisecond, 100 * time.Millisecond, time.Second}

	var res benchRouterResult
	res.TimeScale = scale
	res.SLOBudgetMS = float64(slo) * scale / float64(time.Millisecond)
	res.TargetRPS = targetRPS
	for i, alloc := range benchRouterAllocs {
		res.Shards = append(res.Shards, struct {
			Name  string `json:"name"`
			Alloc []int  `json:"alloc"`
		}{string(rune('a' + i)), alloc})
	}

	tw := newTab(w)
	fmt.Fprintln(tw, "policy\tstaleness\treqs\trps\tp50 ms\tp99 ms\tSLO att\timbalance\treroutes")
	cellAt := map[string]benchRouterCell{}
	for _, st := range staleness {
		for _, pol := range policies {
			cell, _, err := benchRouterRun(pol, st, slo, scale, lens, targetRPS, opt.Seed, nil)
			if err != nil {
				return err
			}
			res.Grid = append(res.Grid, cell)
			cellAt[fmt.Sprintf("%s@%v", pol, st)] = cell
			fmt.Fprintf(tw, "%s\t%v\t%d\t%.0f\t%.3f\t%.3f\t%.3f\t%.2f\t%d\n",
				cell.Policy, st, cell.Requests, cell.RPS, cell.P50MS, cell.P99MS,
				cell.SLOAttainment, cell.Imbalance, cell.Reroutes)
		}
		tw.Flush()
	}

	la0 := cellAt[fmt.Sprintf("%s@%v", router.PolicyLengthAware, time.Duration(0))]
	rr0 := cellAt[fmt.Sprintf("%s@%v", router.PolicyRoundRobin, time.Duration(0))]
	if la0.P99MS > 0 {
		res.P99SpeedupVsRR = rr0.P99MS / la0.P99MS
	}
	res.ImbalanceP2CAt1s = cellAt[fmt.Sprintf("%s@%v", router.PolicyLengthAware, time.Second)].Imbalance
	res.ImbalanceLeastLoadedAt1s = cellAt[fmt.Sprintf("%s@%v", router.PolicyLeastLoaded, time.Second)].Imbalance
	fmt.Fprintf(w, "\nfresh-snapshot p99: length-aware %.3f ms vs round-robin %.3f ms (%.2fx)\n",
		la0.P99MS, rr0.P99MS, res.P99SpeedupVsRR)
	fmt.Fprintf(w, "imbalance at 1s staleness: p2c %.2f vs least-loaded %.2f\n",
		res.ImbalanceP2CAt1s, res.ImbalanceLeastLoadedAt1s)

	// Failover arm: kill shard b a third of the way through, restart at
	// two thirds; every request must complete or fail typed.
	chaos := func(shards []*routerShard, done *atomic.Int64) {
		third := int64(perRun / 3)
		for done.Load() < third {
			time.Sleep(time.Millisecond)
		}
		shards[1].kill()
		for done.Load() < 2*third {
			time.Sleep(time.Millisecond)
		}
		if err := shards[1].restart(); err != nil {
			return // deferred kill on the old handles is safe either way
		}
	}
	_, audit, err := benchRouterRun(router.PolicyLengthAware, 50*time.Millisecond,
		slo, scale, lens, targetRPS, opt.Seed, chaos)
	if err != nil {
		return err
	}
	res.Failover = audit
	fmt.Fprintf(w, "\nshard-kill conservation: sent %d = completed %d + typed %d (untyped %d, lost %d); reroutes %d, max hops %d/%d\n",
		audit.Sent, audit.Completed, audit.TypedErrors, audit.UntypedErrors, audit.Lost,
		audit.Reroutes, audit.MaxHops, audit.HopBudget)
	if audit.UntypedErrors > 0 || audit.Lost != 0 {
		return fmt.Errorf("router bench: conservation broken (untyped %d, lost %d)", audit.UntypedErrors, audit.Lost)
	}

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_router.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote BENCH_router.json")
	return nil
}
