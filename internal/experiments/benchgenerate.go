package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"arlo/internal/cluster"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/obs"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/trace"
)

// benchGenerateResult is the BENCH_generate.json schema: one arm per
// batching discipline on the same generative burst, so CI (or a reviewer)
// can assert the continuous-batching win — higher throughput at
// equal-or-better p99 TTFT — without parsing the table.
type benchGenerateResult struct {
	Workload      string  `json:"workload"`
	Requests      int     `json:"requests"`
	GPUs          int     `json:"gpus"`
	BatchCap      int     `json:"batch_cap"`
	MeanOutTokens float64 `json:"mean_out_tokens"`
	MaxOutTokens  int     `json:"max_out_tokens"`

	RunToCompletion benchGenArm `json:"run_to_completion"`
	Continuous      benchGenArm `json:"continuous"`

	// Speedup is continuous throughput over run-to-completion throughput.
	Speedup float64 `json:"speedup"`
	// TTFTOK is true when the continuous arm's p99 TTFT is no worse than
	// run-to-completion's — the acceptance gate together with Speedup > 1.
	TTFTOK bool `json:"ttft_ok"`
}

type benchGenArm struct {
	ThroughputRPS float64 `json:"throughput_rps"`
	DrainMS       float64 `json:"drain_ms"`
	MeanTTFTMS    float64 `json:"mean_ttft_ms"`
	P99TTFTMS     float64 `json:"p99_ttft_ms"`
	MeanTPOTMS    float64 `json:"mean_tpot_ms"`
}

// BenchGenerate measures continuous (iteration-level) batching against
// run-to-completion batching on the live cluster with a generative burst:
// the same requests — uniform prompt lengths, geometric output budgets —
// are drained once with the batch held until every member finishes
// decoding, and once with the batch re-formed every iteration (completed
// sequences exit immediately, queued requests join freed decode slots
// mid-flight). Continuous batching must win on throughput while holding
// p99 TTFT equal or better: early exits return capacity sooner AND queued
// requests reach their prefill without waiting out a stranger's long
// generation. Results are printed and written to BENCH_generate.json.
func BenchGenerate(w io.Writer, opt Options) error {
	const (
		gpus    = 4
		slo     = 150 * time.Millisecond
		meanOut = 48
		maxOut  = 256
	)
	requests := 256
	if opt.Full {
		requests = 1024
	}
	batchCap := opt.BatchSize
	if batchCap <= 1 {
		batchCap = 8
	}

	lm := model.BertBase()
	p, err := profiler.StaticProfile(lm, []int{lm.Arch().MaxLength}, slo)
	if err != nil {
		return err
	}
	factory := func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
		return dispatch.NewRequestScheduler(ml)
	}

	// One shared request set: both arms see identical prompts and budgets.
	rng := rand.New(rand.NewSource(opt.Seed))
	lengths := make([]int, requests)
	budgets := make([]int, requests)
	sampler := trace.GeometricOutputs{Mean: meanOut, Max: maxOut}
	for i := range lengths {
		lengths[i] = 1 + rng.Intn(lm.Arch().MaxLength)
		budgets[i] = sampler.SampleOutput(rng, 0)
	}

	drain := func(continuous bool) (benchGenArm, error) {
		cl, err := cluster.New(cluster.Config{
			Profile:           p,
			InitialAllocation: []int{gpus},
			Dispatcher:        factory,
			Overhead:          -1,
			MaxBatch:          batchCap,
			BatchDelay:        opt.BatchDelay,
			Continuous:        continuous,
			MeanOutTokens:     meanOut,
		})
		if err != nil {
			return benchGenArm{}, err
		}
		defer cl.Close()
		spans := make([]obs.Span, requests)
		errs := make(chan error, requests)
		var wg sync.WaitGroup
		start := time.Now()
		for i := range lengths {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := cl.SubmitCtx(context.Background(), cluster.Request{
					Length:       lengths[i],
					MaxNewTokens: budgets[i],
				})
				if err != nil {
					errs <- err
					return
				}
				spans[i] = res.Span
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errs:
			return benchGenArm{}, fmt.Errorf("generative burst: %w", err)
		default:
		}

		ttfts := make([]time.Duration, 0, requests)
		var ttftSum, tpotSum time.Duration
		tpotN := 0
		for _, s := range spans {
			ttfts = append(ttfts, s.TTFT)
			ttftSum += s.TTFT
			if tpot := s.TPOT(); tpot > 0 {
				tpotSum += tpot
				tpotN++
			}
		}
		sort.Slice(ttfts, func(i, j int) bool { return ttfts[i] < ttfts[j] })
		p99 := ttfts[(len(ttfts)*99)/100]
		arm := benchGenArm{
			ThroughputRPS: float64(requests) / elapsed.Seconds(),
			DrainMS:       float64(elapsed) / float64(time.Millisecond),
			MeanTTFTMS:    float64(ttftSum) / float64(requests) / float64(time.Millisecond),
			P99TTFTMS:     float64(p99) / float64(time.Millisecond),
		}
		if tpotN > 0 {
			arm.MeanTPOTMS = float64(tpotSum) / float64(tpotN) / float64(time.Millisecond)
		}
		return arm, nil
	}

	rtc, err := drain(false)
	if err != nil {
		return err
	}
	cont, err := drain(true)
	if err != nil {
		return err
	}

	res := benchGenerateResult{
		Workload:        "generative-burst-uniform-prompts-geometric-outputs",
		Requests:        requests,
		GPUs:            gpus,
		BatchCap:        batchCap,
		MeanOutTokens:   meanOut,
		MaxOutTokens:    maxOut,
		RunToCompletion: rtc,
		Continuous:      cont,
		Speedup:         cont.ThroughputRPS / rtc.ThroughputRPS,
		TTFTOK:          cont.P99TTFTMS <= rtc.P99TTFTMS,
	}

	tw := newTab(w)
	fmt.Fprintln(tw, "arm\tthroughput(req/s)\tdrain(ms)\tmean TTFT(ms)\tp99 TTFT(ms)\tmean TPOT(ms)")
	fmt.Fprintf(tw, "run-to-completion\t%.0f\t%.1f\t%.1f\t%.1f\t%.3f\n",
		rtc.ThroughputRPS, rtc.DrainMS, rtc.MeanTTFTMS, rtc.P99TTFTMS, rtc.MeanTPOTMS)
	fmt.Fprintf(tw, "continuous\t%.0f\t%.1f\t%.1f\t%.1f\t%.3f\n",
		cont.ThroughputRPS, cont.DrainMS, cont.MeanTTFTMS, cont.P99TTFTMS, cont.MeanTPOTMS)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "speedup %.2fx; p99 TTFT %.1f ms vs %.1f ms (continuous no worse: %v)\n",
		res.Speedup, cont.P99TTFTMS, rtc.P99TTFTMS, res.TTFTOK)

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_generate.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote BENCH_generate.json")
	return nil
}
