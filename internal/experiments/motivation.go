package experiments

import (
	"fmt"
	"io"
	"time"

	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/queue"
	"arlo/internal/trace"
)

// Fig1 regenerates the sequence-length CDFs of real-world-calibrated
// traces at the 10-minute and 10-second scales: the long window's tail is
// heavier (paper: p50 21 at both scales; p98 72 vs 58).
func Fig1(w io.Writer, opt Options) error {
	tr, err := trace.Generate(trace.Config{
		Seed:     opt.Seed,
		Duration: 10 * time.Minute,
		Arrivals: trace.Poisson{Rate: 300},
		Lengths:  trace.TwitterLengths(opt.Seed),
	})
	if err != nil {
		return err
	}
	long := tr.Stats()
	fmt.Fprintf(w, "10-minute window: n=%d p50=%d p98=%d max=%d\n", long.Count, long.Median, long.P98, long.Max)

	var sumP50, sumP98 float64
	clips := 0
	for m := 0; m < 10; m++ {
		from := time.Duration(m) * time.Minute
		clip := tr.Clip(from, from+10*time.Second)
		st := clip.Stats()
		if st.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "10-second clip @%dm: n=%d p50=%d p98=%d\n", m, st.Count, st.Median, st.P98)
		sumP50 += float64(st.Median)
		sumP98 += float64(st.P98)
		clips++
	}
	if clips > 0 {
		fmt.Fprintf(w, "10-second average: p50=%.1f p98=%.1f (paper: p50 21.0, p98 58 vs 71 over 10 minutes)\n",
			sumP50/float64(clips), sumP98/float64(clips))
	}
	// Selected CDF points of the long window.
	tw := newTab(w)
	fmt.Fprintln(tw, "length\tCDF")
	cdf := tr.LengthCDF()
	step := len(cdf) / 12
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(cdf); i += step {
		fmt.Fprintf(tw, "%d\t%.3f\n", cdf[i].Length, cdf[i].F)
	}
	return tw.Flush()
}

// Fig2 regenerates the static-vs-dynamic compiled latency curves for
// BERT-Base (2a), BERT-Large (2b) and Dolly (2c): the staircase static
// curve and the inflated dynamic curve.
func Fig2(w io.Writer, _ Options) error {
	for _, lm := range []*model.LatencyModel{model.BertBase(), model.BertLarge(), model.Dolly()} {
		fmt.Fprintf(w, "-- %s --\n", lm.Arch().Name)
		tw := newTab(w)
		fmt.Fprintln(tw, "length\tstatic(ms)\tdynamic(ms)\tinflation")
		for s := 32; s <= lm.Arch().MaxLength; s += 32 {
			st := lm.IdealStaticLatency(s)
			dy := lm.DynamicLatency(s)
			fmt.Fprintf(tw, "%d\t%s\t%s\t%.2fx\n", s, ms(st), ms(dy), float64(dy)/float64(st))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		span := float64(lm.IdealStaticLatency(512)) / float64(lm.IdealStaticLatency(64))
		fmt.Fprintf(w, "static lat(512)/lat(64) = %.2fx\n", span)
	}
	fmt.Fprintln(w, "(paper anchors: BERT-Base 4.22x, BERT-Large 5.25x; TensorRT dynamic inflation 1.22-3.56x; Dolly/TVM ~2.86x average)")
	return nil
}

// fig4Outcome is the violation count per policy in the motivating example.
type fig4Outcome struct {
	Ideal, Greedy, Arlo, Optimal int
}

// fig4Run plays the paper's Fig. 4 scenario against one dispatch policy
// and counts SLO violations as dispatches beyond instance capacity.
func fig4Run(policy string) (int, error) {
	ml, err := queue.NewMultiLevel([]int{128, 256, 512})
	if err != nil {
		return 0, err
	}
	// GPU0/GPU1: 128-runtimes nearly full (3 free slots in total);
	// GPU2: 256-runtime with 12 free slots; GPU3: 512-runtime, 14 slots.
	setup := []*queue.Instance{
		queue.NewInstance(0, 0, 18, 20),
		queue.NewInstance(1, 0, 19, 20),
		queue.NewInstance(2, 1, 8, 20),
		queue.NewInstance(3, 2, 0, 14),
	}
	for _, in := range setup {
		if err := ml.Add(in); err != nil {
			return 0, err
		}
	}
	d, err := dispatch.New(policy, ml)
	if err != nil {
		return 0, err
	}
	// Eight initial short requests, then fourteen long latecomers.
	for i := 0; i < 8; i++ {
		if _, err := d.Dispatch(100); err != nil {
			return 0, err
		}
	}
	for i := 0; i < 14; i++ {
		if _, err := d.Dispatch(400); err != nil {
			return 0, err
		}
	}
	violations := 0
	for _, in := range setup {
		if over := in.Outstanding() - in.MaxCapacity; over > 0 {
			violations += over
		}
	}
	return violations, nil
}

// fig4Play computes all policies.
func fig4Play() (fig4Outcome, error) {
	var out fig4Outcome
	var err error
	if out.Ideal, err = fig4Run("ILB"); err != nil {
		return out, err
	}
	if out.Greedy, err = fig4Run("IG"); err != nil {
		return out, err
	}
	if out.Arlo, err = fig4Run("RS"); err != nil {
		return out, err
	}
	// Optimal: 3 shorts fit the 128 slots, 5 the 256 slots, the 14 longs
	// exactly fill the 512 instance.
	out.Optimal = 0
	return out, nil
}

// Fig4 regenerates the motivating example: a 4-GPU cluster where the
// ideal (least padding) policy strands 5 early requests, the greedy
// (least load) policy strands 8 latecomers, and a demotion-aware policy
// strands none.
func Fig4(w io.Writer, _ Options) error {
	out, err := fig4Play()
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "policy\tSLO violations\tpaper")
	fmt.Fprintf(tw, "ideal (least padding, ILB)\t%d\t5\n", out.Ideal)
	fmt.Fprintf(tw, "greedy (least load, IG)\t%d\t8\n", out.Greedy)
	fmt.Fprintf(tw, "Arlo Request Scheduler\t%d\t0\n", out.Arlo)
	fmt.Fprintf(tw, "optimal\t%d\t0\n", out.Optimal)
	return tw.Flush()
}

// Fig5 walks Algorithm 1 through the paper's example: a length-200
// request, lambda 0.85, alpha 0.9, L 3, skipping the congested 256
// runtime for the 512 head.
func Fig5(w io.Writer, _ Options) error {
	ml, err := queue.NewMultiLevel([]int{64, 128, 256, 512})
	if err != nil {
		return err
	}
	instances := []*queue.Instance{
		queue.NewInstance(10, 0, 30, 120),
		queue.NewInstance(20, 1, 40, 80),
		queue.NewInstance(30, 2, 54, 60),
		queue.NewInstance(31, 2, 58, 60),
		queue.NewInstance(40, 3, 28, 48),
		queue.NewInstance(41, 3, 40, 48),
	}
	for _, in := range instances {
		if err := ml.Add(in); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "request length 200; candidates: Q3 (256), Q4 (512); lambda=0.85, alpha=0.9, L=3")
	lambda := 0.85
	for _, lvl := range ml.CandidateLevels(200) {
		head := ml.Level(lvl).Front()
		fmt.Fprintf(w, "level %d (max_length %d): head %d/%d = %.3f vs threshold %.3f -> ",
			lvl, ml.MaxLength(lvl), head.Outstanding(), head.MaxCapacity, head.Congestion(), lambda)
		if head.Congestion() < lambda {
			fmt.Fprintf(w, "dispatch to instance %d\n", head.ID)
			break
		}
		fmt.Fprintln(w, "congested, demote")
		lambda *= 0.9
	}
	rs, err := dispatch.NewRequestSchedulerParams(ml, 0.85, 0.9, 3)
	if err != nil {
		return err
	}
	in, err := rs.Dispatch(200)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Algorithm 1 dispatched to instance %d (runtime max_length %d) — paper: the 28/48 head of Q4\n",
		in.ID, ml.MaxLength(in.Runtime))
	return nil
}
