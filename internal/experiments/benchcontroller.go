package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/cluster"
	"arlo/internal/controller"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/obs"
	"arlo/internal/profiler"
	"arlo/internal/queue"
)

// benchControllerArm is one arm's measured outcome.
type benchControllerArm struct {
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	Rejected  int `json:"rejected"`
	// SLOAttainment is within-SLO completions over all requests, so
	// congestion rejections count against the arm.
	SLOAttainment float64 `json:"slo_attainment"`
	// Phase2SLOAttainment isolates the post-drift window where the frozen
	// allocation is wrong.
	Phase2SLOAttainment float64 `json:"phase2_slo_attainment"`
	P50MS               float64 `json:"p50_ms"`
	P99MS               float64 `json:"p99_ms"`
	Replans             int64   `json:"replans,omitempty"`
	Replacements        int64   `json:"replacements,omitempty"`
	FinalAllocation     []int   `json:"final_allocation"`
}

// benchControllerResult is the BENCH_controller.json schema.
type benchControllerResult struct {
	TimeScale float64 `json:"timescale"`
	SLOMS     float64 `json:"slo_ms"`
	GPUs      int     `json:"gpus"`

	// Frozen keeps the allocation solved for the pre-drift mix; Controller
	// replans from the observed window as the mix drifts.
	Frozen     benchControllerArm `json:"frozen"`
	Controller benchControllerArm `json:"controller"`

	// AttainmentGain is controller minus frozen overall SLO attainment
	// (fractional, positive when the control loop helps).
	AttainmentGain float64 `json:"attainment_gain"`
}

// driftArrival is one synthetic request of the drifting trace.
type driftArrival struct {
	at     time.Duration // modeled offset
	length int
	phase  int
}

// BenchController measures what closing the control loop buys on the live
// cluster when the length mix drifts. The workload runs two phases:
// short-heavy (the allocation both arms start from is solved for this
// mix) then long-heavy, where every request needs the max-length runtime.
// The frozen arm keeps the stale split, so phase 2 piles onto its single
// large instance; the controller arm replans from the observed sliding
// window every period (budgeted replacements, no wall-clock tickers — the
// replay loop steps the controller at schedule points, so a run is
// reproducible). The report is per-arm SLO attainment (overall and
// post-drift), latency percentiles and the controller's replacement
// count. Results are printed and written to BENCH_controller.json.
func BenchController(w io.Writer, opt Options) error {
	const (
		slo       = 150 * time.Millisecond
		timeScale = 0.2
		gpus      = 8
	)
	phase := 4 * time.Second // modeled, per phase
	if opt.Full {
		phase = 10 * time.Second
	}
	ctrlPeriod := phase / 16 // modeled replanning cadence

	p, err := profiler.StaticProfile(model.BertBase(), []int{64, 128, 256, 512}, slo)
	if err != nil {
		return err
	}
	solver, err := allocator.NewSolver(p)
	if err != nil {
		return err
	}
	factory := func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
		return dispatch.NewRequestScheduler(ml)
	}

	// Seeded drifting trace: phase 1 fits the small runtimes, phase 2
	// exceeds the 256 tile so only the max-length runtime serves it.
	mkPhase := func(seed int64, start time.Duration, rate float64, lo, hi int, phase2 bool) []driftArrival {
		rng := rand.New(rand.NewSource(seed))
		n := int(rate * phase.Seconds())
		arrivals := make([]driftArrival, 0, n)
		for i := 0; i < n; i++ {
			ph := 1
			if phase2 {
				ph = 2
			}
			arrivals = append(arrivals, driftArrival{
				at:     start + time.Duration(rng.Int63n(int64(phase))),
				length: lo + rng.Intn(hi-lo+1),
				phase:  ph,
			})
		}
		return arrivals
	}
	// Phase 2 runs at twice the modeled capacity of one max-length
	// instance (the frozen arm's whole serving power for these lengths)
	// but only a quarter of the cluster's if every GPU converges there.
	arrivals := append(
		mkPhase(opt.Seed+1, 0, 500, 1, 120, false),
		mkPhase(opt.Seed+2, phase, 400, 257, 500, true)...)
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].at < arrivals[j].at })

	// Both arms start from the allocation solved for the phase-1 mix.
	q1 := make([]float64, len(p.Runtimes))
	maxLens := p.MaxLengths()
	for _, a := range arrivals {
		if a.phase != 1 {
			continue
		}
		bin := sort.SearchInts(maxLens, a.length)
		if bin >= len(maxLens) {
			bin = len(maxLens) - 1
		}
		q1[bin] += float64(slo) / float64(phase)
	}
	initial, err := solver.Allocate(gpus, q1)
	if err != nil {
		return err
	}

	runArm := func(withController bool) (benchControllerArm, error) {
		var arm benchControllerArm
		rec := obs.NewRecorder(len(p.Runtimes))
		// The window covers one control period of wall time, so the demand
		// estimate tracks the drift instead of averaging both phases.
		rec.SetWindow(time.Duration(float64(ctrlPeriod) * timeScale))
		cl, err := cluster.New(cluster.Config{
			Profile:           p,
			InitialAllocation: append([]int(nil), initial.N...),
			Dispatcher:        factory,
			TimeScale:         timeScale,
			Overhead:          -1,
			Observer:          rec,
		})
		if err != nil {
			return arm, err
		}
		defer cl.Close()

		var ctrl *controller.Controller
		if withController {
			// Default hysteresis keeps phase 1 quiet (the starting split is
			// already right, so churn would only displace in-flight work);
			// the phase-2 objective gap is far past the margin, and the
			// budget rolls the correction out in small batches exactly as
			// section 4 prescribes.
			ctrl, err = controller.New(cl, solver, rec, controller.Options{
				MaxReplacements: 2,
				DemandScale:     timeScale,
			})
			if err != nil {
				return arm, err
			}
		}

		type sample struct {
			phase int
			lat   time.Duration
			err   error
		}
		results := make([]sample, len(arrivals))
		var wg sync.WaitGroup
		nextStep := ctrlPeriod
		start := time.Now()
		for i := range arrivals {
			a := arrivals[i]
			for ctrl != nil && a.at >= nextStep {
				res := ctrl.Step(time.Now())
				if res.Err != nil {
					return arm, fmt.Errorf("bench-controller: step: %w", res.Err)
				}
				nextStep += ctrlPeriod
			}
			if wait := time.Until(start.Add(time.Duration(float64(a.at) * timeScale))); wait > 0 {
				time.Sleep(wait)
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := cl.SubmitCtx(context.Background(), cluster.Request{Length: arrivals[i].length})
				results[i] = sample{phase: arrivals[i].phase, lat: res.Latency, err: err}
			}(i)
		}
		wg.Wait()

		// Result.Latency is modeled (queueing + compute in model time), so
		// it compares against the modeled SLO directly, not slo*timeScale.
		var lats []time.Duration
		var within, p2Within, p2Total int
		for _, s := range results {
			arm.Requests++
			if s.phase == 2 {
				p2Total++
			}
			if s.err != nil {
				arm.Rejected++
				continue
			}
			arm.Completed++
			lats = append(lats, s.lat)
			if s.lat <= slo {
				within++
				if s.phase == 2 {
					p2Within++
				}
			}
		}
		if arm.Requests > 0 {
			arm.SLOAttainment = float64(within) / float64(arm.Requests)
		}
		if p2Total > 0 {
			arm.Phase2SLOAttainment = float64(p2Within) / float64(p2Total)
		}
		arm.P50MS = pctMS(lats, 0.50)
		arm.P99MS = pctMS(lats, 0.99)
		arm.FinalAllocation = cl.Allocation()
		if ctrl != nil {
			st := ctrl.Status()
			arm.Replans = st.Replans
			arm.Replacements = st.Replacements
		}
		return arm, nil
	}

	frozen, err := runArm(false)
	if err != nil {
		return err
	}
	controlled, err := runArm(true)
	if err != nil {
		return err
	}
	if controlled.Replans == 0 {
		return fmt.Errorf("bench-controller: the controller arm never replanned")
	}
	if maxMoves := controlled.Replans * 2; controlled.Replacements > maxMoves {
		return fmt.Errorf("bench-controller: %d replacements exceed the budget bound %d", controlled.Replacements, maxMoves)
	}
	// The control loop must not cost attainment; on the drifting mix it
	// should win outright (small tolerance for scheduling noise).
	if controlled.SLOAttainment < frozen.SLOAttainment-0.02 {
		return fmt.Errorf("bench-controller: controller attainment %.3f fell below frozen %.3f",
			controlled.SLOAttainment, frozen.SLOAttainment)
	}
	if controlled.Phase2SLOAttainment <= frozen.Phase2SLOAttainment {
		return fmt.Errorf("bench-controller: no post-drift win: controller %.3f vs frozen %.3f",
			controlled.Phase2SLOAttainment, frozen.Phase2SLOAttainment)
	}

	res := benchControllerResult{
		TimeScale:      timeScale,
		SLOMS:          float64(slo) / float64(time.Millisecond),
		GPUs:           gpus,
		Frozen:         frozen,
		Controller:     controlled,
		AttainmentGain: controlled.SLOAttainment - frozen.SLOAttainment,
	}

	tw := newTab(w)
	fmt.Fprintln(tw, "arm\treqs\tok\trejected\tSLO\tphase2 SLO\tp50 ms\tp99 ms\treplacements\tfinal alloc")
	for _, row := range []struct {
		name string
		a    benchControllerArm
	}{{"frozen", frozen}, {"controller", controlled}} {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.1f%%\t%.1f%%\t%.3f\t%.3f\t%d\t%v\n",
			row.name, row.a.Requests, row.a.Completed, row.a.Rejected,
			100*row.a.SLOAttainment, 100*row.a.Phase2SLOAttainment,
			row.a.P50MS, row.a.P99MS, row.a.Replacements, row.a.FinalAllocation)
	}
	tw.Flush()
	fmt.Fprintf(w, "closing the loop: %+.1f points of SLO attainment on the drifting mix (%d replacements over %d replans)\n",
		100*res.AttainmentGain, controlled.Replacements, controlled.Replans)

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_controller.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote BENCH_controller.json")
	return nil
}
