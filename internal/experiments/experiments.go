// Package experiments regenerates every table and figure of the paper's
// evaluation (section 5). Each experiment is a self-contained driver that
// builds the workload, runs the systems, and prints the same rows or
// series the paper reports. Absolute numbers reflect this reproduction's
// calibrated latency model and synthetic traces; the shapes — which scheme
// wins, by roughly what factor, where crossovers fall — are the
// reproduction targets (see EXPERIMENTS.md for paper-vs-measured).
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"arlo/internal/baselines"
	"arlo/internal/model"
	"arlo/internal/sim"
	"arlo/internal/trace"
)

// Options tune experiment scale.
type Options struct {
	// Seed makes every workload reproducible.
	Seed int64
	// Full runs paper-scale durations and rates; the default (quick) mode
	// scales traces down so the whole suite finishes in minutes.
	Full bool
	// BatchSize overrides the dynamic-batching cap for experiments that
	// exercise the batched live cluster (bench-batch); 0 keeps each
	// experiment's default.
	BatchSize int
	// BatchDelay overrides the batch-collection window for those
	// experiments; 0 keeps the SLO-aware default, negative forces greedy
	// formation.
	BatchDelay time.Duration
	// Router points the socket-level harnesses (bench-ingress) at a
	// routing tier fronting three shards instead of a single server, so
	// the closed/open loops measure the extra hop end to end.
	Router bool
}

// Spec is one runnable experiment.
type Spec struct {
	// ID is the table/figure identifier, e.g. "fig6" or "table2".
	ID string
	// Title describes what the paper shows there.
	Title string
	// Run executes the experiment and writes its rows to w.
	Run func(w io.Writer, opt Options) error
}

// All returns every experiment in paper order.
func All() []Spec {
	return []Spec{
		{"fig1", "Sequence length distribution at 10-minute vs 10-second scales", Fig1},
		{"fig2", "Static vs dynamic compiled inference latency (BERT-Base/Large, Dolly)", Fig2},
		{"fig4", "Motivating example: ideal vs greedy vs Arlo dispatch, SLO violations", Fig4},
		{"fig5", "Multi-level queue walk-through (Algorithm 1)", Fig5},
		{"fig6", "Testbed latency: Bert-Base and Bert-Large streams, 10 GPUs, 4 schemes", Fig6},
		{"fig7", "Mean latency under varying request load (Bert-Base, 10 GPUs)", Fig7},
		{"fig8", "Consumed GPUs with auto-scaling under bursty load (Bert-Large)", Fig8},
		{"table2", "ILP solving time of Runtime Scheduler", Table2},
		{"fig9", "Request Scheduler dispatch overhead at scale", Fig9},
		{"calib", "Simulator calibration against the real-time prototype (section 5.2.1)", Calibration},
		{"fig10", "Large-scale simulation latency, 4 schemes", Fig10},
		{"fig11", "Latency for N available runtimes (Bert-Large, 40 GPUs)", Fig11},
		{"table3", "Periodic vs even vs global-distribution allocation", Table3},
		{"fig12", "GPUs allocated to eight runtimes over the trace", Fig12},
		{"table4", "RS vs ILB vs IG dispatching (Bert-Large, Twitter-Bursty)", Table4},
		{"ablation-rs", "Request Scheduler parameter sweep (lambda, alpha, L)", AblationRS},
		{"ablation-failures", "Dispatch resilience under instance failures", AblationFailures},
		{"ablation-batch", "Dynamic batch execution trade-off (section 6 extension)", AblationBatch},
		{"ablation-parallel", "Model parallelism: polymorphing with k-GPU instances (section 6 extension)", AblationParallel},
		{"ablation-latebinding", "Early vs late request binding through the central buffer", AblationLateBinding},
		{"bench-batch", "Live-cluster dynamic batching: batch=1 vs batched throughput and sustained p99", BenchBatch},
		{"bench-ingress", "Ingress hot path: JSON vs binary wire protocol at the socket, grouped vs per-request submit", BenchIngress},
		{"bench-generate", "Continuous (iteration-level) vs run-to-completion batching on a generative burst", BenchGenerate},
		{"bench-tenants", "Noisy-neighbor isolation: token-bucket admission + weighted fair sharing vs shared queue", BenchTenants},
		{"bench-controller", "Closing the control loop: live replanning vs frozen allocation on a drifting length mix", BenchController},
		{"bench-router", "Sharded tier routing quality: policy x snapshot staleness grid, shard-kill conservation", BenchRouter},
	}
}

// ByID finds an experiment.
func ByID(id string) (Spec, bool) {
	for _, s := range All() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// newTab returns a tabwriter for aligned experiment tables.
func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// fourSystems assembles Arlo, ST, DT and INFaaS for one model, profiling
// DT's dynamic runtime on a sample of the trace's lengths.
func fourSystems(lm *model.LatencyModel, slo time.Duration, tr *trace.Trace) ([]*baselines.System, error) {
	sample := tr.Lengths()
	if len(sample) > 2000 {
		sample = sample[:2000]
	}
	arlo, err := baselines.Arlo(lm, slo)
	if err != nil {
		return nil, err
	}
	st, err := baselines.ST(lm, slo)
	if err != nil {
		return nil, err
	}
	dt, err := baselines.DT(lm, sample, slo)
	if err != nil {
		return nil, err
	}
	infaas, err := baselines.INFaaS(lm, slo)
	if err != nil {
		return nil, err
	}
	return []*baselines.System{st, dt, infaas, arlo}, nil
}

// runComparison simulates each system on the trace with g GPUs and prints
// mean/p50/p98/SLO rows; it returns the per-system results keyed by name.
func runComparison(w io.Writer, systems []*baselines.System, tr *trace.Trace, g int, mutate func(*sim.Config)) (map[string]*sim.Result, error) {
	results := make(map[string]*sim.Result, len(systems))
	tw := newTab(w)
	fmt.Fprintln(tw, "scheme\tmean(ms)\tp50(ms)\tp98(ms)\tSLO-viol%\trejected")
	for _, s := range systems {
		cfg, err := s.SimConfig(tr, g, 30*time.Second)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		results[s.Name] = res
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.2f\t%d\n",
			s.Name, ms(res.Summary.Mean), ms(res.Summary.P50), ms(res.Summary.P98),
			100*res.Summary.SLOFraction, res.Rejected)
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	return results, nil
}

// reduction formats "A reduces B's metric by X%".
func reduction(base, arlo time.Duration) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (1 - float64(arlo)/float64(base))
}

// printReductions prints Arlo's mean and p98 reductions against each
// baseline, mirroring the paper's headline claims.
func printReductions(w io.Writer, results map[string]*sim.Result) {
	arlo, ok := results["Arlo"]
	if !ok {
		return
	}
	names := make([]string, 0, len(results))
	for name := range results {
		if name != "Arlo" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		r := results[name]
		fmt.Fprintf(w, "Arlo vs %s: mean %+.1f%%, p98 %+.1f%%\n",
			name, -reduction(r.Summary.Mean, arlo.Summary.Mean), -reduction(r.Summary.P98, arlo.Summary.P98))
	}
}
