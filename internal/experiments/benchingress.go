package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"arlo/internal/cluster"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/router"
	"arlo/internal/serve"
	"arlo/internal/tokenizer"
)

// benchIngressArm is one closed-loop socket-level measurement.
type benchIngressArm struct {
	Protocol     string  `json:"protocol"`
	Requests     int     `json:"requests"`
	Conns        int     `json:"conns"`
	Workers      int     `json:"workers"`
	RPS          float64 `json:"rps"`
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	MallocsPerOp float64 `json:"mallocs_per_op"`
}

// benchIngressOpenPoint is one open-loop target-RPS measurement.
type benchIngressOpenPoint struct {
	Protocol    string  `json:"protocol"`
	TargetRPS   float64 `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	Shed        int     `json:"shed,omitempty"`
}

// benchIngressSubmit is one in-process submit-layer measurement.
type benchIngressSubmit struct {
	NSPerOp      float64 `json:"ns_per_op"`
	MallocsPerOp float64 `json:"mallocs_per_op"`
}

// benchIngressResult is the BENCH_ingress.json schema.
type benchIngressResult struct {
	TimeScale float64 `json:"timescale"`
	// Target is what the socket-level loops drove: "single-server" or
	// "router-3shards" (the -router mode's tier).
	Target string `json:"target"`

	JSON        benchIngressArm `json:"json"`
	Wire        benchIngressArm `json:"wire"`
	WireSpeedup float64         `json:"wire_speedup"`

	OpenLoop []benchIngressOpenPoint `json:"open_loop"`

	SubmitPerRequest benchIngressSubmit `json:"submit_per_request"`
	SubmitGrouped    benchIngressSubmit `json:"submit_grouped"`
	// GroupedSpeedup is per-request ns/op divided by grouped ns/op —
	// the amortization win of the ring + SubmitBatch path.
	GroupedSpeedup float64 `json:"grouped_speedup"`
}

const benchIngressText = "a representative request body with enough words to tokenize meaningfully"

// pctMS picks the q-quantile of lats (sorted in place) in milliseconds.
func pctMS(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(q * float64(len(lats)-1))
	return float64(lats[idx]) / float64(time.Millisecond)
}

// mallocsNow reads the process-wide cumulative allocation count.
func mallocsNow() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// BenchIngress measures the ingress hot path at the socket: closed-loop
// RPS, p50/p99 and mallocs/op for the JSON/HTTP endpoint vs the binary
// wire protocol over the same ring-fed cluster, an open-loop target-RPS
// sweep per protocol, and the in-process submit layer (per-request
// SubmitCtx vs grouped ring submission). Emulated compute is compressed
// (TimeScale) so the transport and submit overheads dominate what is
// measured. Results are printed and written to BENCH_ingress.json.
func BenchIngress(w io.Writer, opt Options) error {
	const (
		slo       = 150 * time.Millisecond
		timeScale = 1e-4
	)
	workers := 32
	perWorker := 75
	openDur := 600 * time.Millisecond
	submitOps := 60_000
	if opt.Full {
		perWorker = 400
		openDur = 3 * time.Second
		submitOps = 400_000
	}

	p, err := profiler.StaticProfile(model.BertBase(), []int{128, 512}, slo)
	if err != nil {
		return err
	}
	factory := func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
		return dispatch.NewRequestScheduler(ml)
	}

	// The measured front end: a single server by default, or (with
	// -router) the routing tier over three equal shards, so the loops
	// price the extra hop end to end.
	target := "single-server"
	var handler http.Handler
	var wireFront interface{ ServeWire(net.Listener) error }
	if opt.Router {
		target = "router-3shards"
		var cfgs []router.ShardConfig
		for _, name := range []string{"a", "b", "c"} {
			sh, err := startRouterShard(name, []int{2, 2}, slo, timeScale)
			if err != nil {
				return err
			}
			defer sh.kill()
			cfgs = append(cfgs, router.ShardConfig{Name: sh.name, Addr: sh.addr()})
		}
		rt, err := router.New(router.Config{
			Shards:                  cfgs,
			SnapshotRefreshInterval: 10 * time.Millisecond,
			MaxLength:               512,
			Seed:                    opt.Seed,
		})
		if err != nil {
			return err
		}
		defer rt.Close()
		handler, wireFront = rt, rt
	} else {
		cl, err := cluster.New(cluster.Config{
			Profile:           p,
			InitialAllocation: []int{2, 2},
			Dispatcher:        factory,
			TimeScale:         timeScale,
			Overhead:          -1,
		})
		if err != nil {
			return err
		}
		defer cl.Close()
		srv, err := serve.New(tokenizer.New(), cl,
			serve.WithMaxLength(512),
			serve.WithIngress(cluster.IngressConfig{}))
		if err != nil {
			return err
		}
		defer srv.Close()
		handler, wireFront = srv, srv
	}

	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: handler}
	go func() { _ = hs.Serve(httpLn) }()
	defer hs.Close()
	wireLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = wireFront.ServeWire(wireLn) }()

	httpClient := &serve.Client{BaseURL: "http://" + httpLn.Addr().String()}
	wireConns := make([]*serve.WireClient, 4)
	for i := range wireConns {
		wc, err := serve.DialWire(wireLn.Addr().String())
		if err != nil {
			return err
		}
		defer wc.Close()
		wireConns[i] = wc
	}
	var rr atomic.Uint64
	sendJSON := func(ctx context.Context) error {
		_, err := httpClient.InferCtx(ctx, benchIngressText)
		return err
	}
	sendWire := func(ctx context.Context) error {
		wc := wireConns[rr.Add(1)%uint64(len(wireConns))]
		_, err := wc.InferCtx(ctx, benchIngressText)
		return err
	}

	// Closed loop: W workers each issue their quota back to back; RPS is
	// total/elapsed, latency is per-request at the socket, and mallocs/op
	// is the process-wide allocation delta over the arm (client and
	// server share the process, so it is the whole stack's bill).
	closedLoop := func(protocol string, conns int, send func(context.Context) error) (benchIngressArm, error) {
		total := workers * perWorker
		lats := make([]time.Duration, total)
		var idx atomic.Int64
		var wg sync.WaitGroup
		var failures atomic.Int64
		m0 := mallocsNow()
		start := time.Now()
		for wkr := 0; wkr < workers; wkr++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					t0 := time.Now()
					if err := send(context.Background()); err != nil {
						failures.Add(1)
						continue
					}
					lats[idx.Add(1)-1] = time.Since(t0)
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		mallocs := mallocsNow() - m0
		if n := failures.Load(); n > 0 {
			return benchIngressArm{}, fmt.Errorf("%s closed loop: %d failures", protocol, n)
		}
		lats = lats[:idx.Load()]
		return benchIngressArm{
			Protocol:     protocol,
			Requests:     total,
			Conns:        conns,
			Workers:      workers,
			RPS:          float64(total) / elapsed.Seconds(),
			P50MS:        pctMS(lats, 0.50),
			P99MS:        pctMS(lats, 0.99),
			MallocsPerOp: float64(mallocs) / float64(total),
		}, nil
	}

	// Open loop: arrivals paced at the target rate for the window; each
	// arrival gets its own goroutine, capped so an overloaded server
	// sheds instead of accumulating unbounded callers.
	openLoop := func(protocol string, target float64, send func(context.Context) error) benchIngressOpenPoint {
		interval := time.Duration(float64(time.Second) / target)
		sem := make(chan struct{}, 512)
		var mu sync.Mutex
		var lats []time.Duration
		var wg sync.WaitGroup
		shed := 0
		start := time.Now()
		for next := start; time.Since(start) < openDur; next = next.Add(interval) {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			select {
			case sem <- struct{}{}:
			default:
				shed++
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				t0 := time.Now()
				if err := send(context.Background()); err == nil {
					d := time.Since(t0)
					mu.Lock()
					lats = append(lats, d)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		return benchIngressOpenPoint{
			Protocol:    protocol,
			TargetRPS:   target,
			AchievedRPS: float64(len(lats)) / elapsed.Seconds(),
			P50MS:       pctMS(lats, 0.50),
			P99MS:       pctMS(lats, 0.99),
			Shed:        shed,
		}
	}

	jsonArm, err := closedLoop("json", workers, sendJSON)
	if err != nil {
		return err
	}
	wireArm, err := closedLoop("wire", len(wireConns), sendWire)
	if err != nil {
		return err
	}

	var open []benchIngressOpenPoint
	for _, frac := range []float64{0.5, 0.9, 1.2} {
		open = append(open, openLoop("json", frac*jsonArm.RPS, sendJSON))
	}
	for _, frac := range []float64{0.5, 0.9, 1.2} {
		open = append(open, openLoop("wire", frac*wireArm.RPS, sendWire))
	}

	// Submit layer, in process, on its own cluster with emulated compute
	// collapsed to ~0 so the submission machinery is the whole bill: the
	// same request stream through per-request SubmitCtx (DefaultMaxGroup
	// concurrent producers, one topology RLock + one stripe lock each) vs
	// the grouped SubmitBatch path (the ring consumers' amortized call,
	// one of each per group).
	subCl, err := cluster.New(cluster.Config{
		Profile:           p,
		InitialAllocation: []int{2, 2},
		Dispatcher:        factory,
		TimeScale:         1e-9,
		Overhead:          -1,
	})
	if err != nil {
		return err
	}
	defer subCl.Close()
	submitArm := func(grouped bool) (benchIngressSubmit, error) {
		group := cluster.DefaultMaxGroup
		ops := submitOps / group * group
		var wg sync.WaitGroup
		var failures atomic.Int64
		m0 := mallocsNow()
		start := time.Now()
		if grouped {
			reqs := make([]cluster.Request, group)
			for i := range reqs {
				reqs[i] = cluster.Request{Length: 100}
			}
			for done := 0; done < ops; done += group {
				for _, br := range subCl.SubmitBatch(context.Background(), reqs) {
					if br.Err != nil {
						failures.Add(1)
					}
				}
			}
		} else {
			per := ops / group
			for wkr := 0; wkr < group; wkr++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := subCl.SubmitCtx(context.Background(), cluster.Request{Length: 100}); err != nil {
							failures.Add(1)
						}
					}
				}()
			}
			wg.Wait()
		}
		elapsed := time.Since(start)
		mallocs := mallocsNow() - m0
		if n := failures.Load(); n > 0 {
			return benchIngressSubmit{}, fmt.Errorf("submit arm: %d failures", n)
		}
		return benchIngressSubmit{
			NSPerOp:      float64(elapsed.Nanoseconds()) / float64(ops),
			MallocsPerOp: float64(mallocs) / float64(ops),
		}, nil
	}
	perReq, err := submitArm(false)
	if err != nil {
		return err
	}
	groupedSub, err := submitArm(true)
	if err != nil {
		return err
	}

	res := benchIngressResult{
		TimeScale:        timeScale,
		Target:           target,
		JSON:             jsonArm,
		Wire:             wireArm,
		WireSpeedup:      wireArm.RPS / jsonArm.RPS,
		OpenLoop:         open,
		SubmitPerRequest: perReq,
		SubmitGrouped:    groupedSub,
		GroupedSpeedup:   perReq.NSPerOp / groupedSub.NSPerOp,
	}

	fmt.Fprintf(w, "target: %s\n", target)
	tw := newTab(w)
	fmt.Fprintln(tw, "protocol\treqs\trps\tp50 ms\tp99 ms\tmallocs/op")
	for _, a := range []benchIngressArm{jsonArm, wireArm} {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.3f\t%.3f\t%.1f\n",
			a.Protocol, a.Requests, a.RPS, a.P50MS, a.P99MS, a.MallocsPerOp)
	}
	tw.Flush()
	fmt.Fprintf(w, "wire speedup: %.2fx\n\n", res.WireSpeedup)
	tw = newTab(w)
	fmt.Fprintln(tw, "open loop\ttarget rps\tachieved\tp50 ms\tp99 ms\tshed")
	for _, pnt := range open {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.3f\t%.3f\t%d\n",
			pnt.Protocol, pnt.TargetRPS, pnt.AchievedRPS, pnt.P50MS, pnt.P99MS, pnt.Shed)
	}
	tw.Flush()
	fmt.Fprintf(w, "\nsubmit layer: per-request %.0f ns/op (%.2f mallocs/op), grouped %.0f ns/op (%.2f mallocs/op), %.2fx\n",
		perReq.NSPerOp, perReq.MallocsPerOp, groupedSub.NSPerOp, groupedSub.MallocsPerOp, res.GroupedSpeedup)

	outFile := "BENCH_ingress.json"
	if opt.Router {
		outFile = "BENCH_ingress_router.json"
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outFile, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote "+outFile)
	return nil
}
