package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"arlo/internal/model"
	"arlo/internal/trace"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 15 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if s.ID == "" || s.Title == "" || s.Run == nil {
			t.Errorf("incomplete spec %+v", s)
		}
		if seen[s.ID] {
			t.Errorf("duplicate experiment id %s", s.ID)
		}
		seen[s.ID] = true
		got, ok := ByID(s.ID)
		if !ok || got.ID != s.ID {
			t.Errorf("ByID(%s) failed", s.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should not resolve")
	}
	for _, want := range []string{"fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "table2", "table3", "table4", "calib"} {
		if !seen[want] {
			t.Errorf("experiment %s missing from registry", want)
		}
	}
}

// TestFig4MatchesPaper checks the motivating example's exact violation
// counts: 5 for the ideal policy, 8 for greedy, 0 for the Request
// Scheduler (paper section 3.2, Fig. 4).
func TestFig4MatchesPaper(t *testing.T) {
	out, err := fig4Play()
	if err != nil {
		t.Fatal(err)
	}
	if out.Ideal != 5 {
		t.Errorf("ideal policy violations = %d, want 5", out.Ideal)
	}
	if out.Greedy != 8 {
		t.Errorf("greedy policy violations = %d, want 8", out.Greedy)
	}
	if out.Arlo != 0 {
		t.Errorf("Request Scheduler violations = %d, want 0", out.Arlo)
	}
	if out.Optimal != 0 {
		t.Errorf("optimal violations = %d, want 0", out.Optimal)
	}
}

// TestCheapExperimentsRun smoke-tests the drivers that finish in well
// under a second each.
func TestCheapExperimentsRun(t *testing.T) {
	for _, id := range []string{"fig1", "fig2", "fig4", "fig5", "fig9"} {
		spec, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		var buf bytes.Buffer
		if err := spec.Run(&buf, Options{Seed: 3}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

// TestFig5OutputNamesTheInstance checks the walk-through lands where the
// paper's example does.
func TestFig5OutputNamesTheInstance(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(&buf, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dispatched to instance 40") {
		t.Errorf("Fig5 should dispatch to the 28/48 head (instance 40):\n%s", out)
	}
}

// TestFig2AnchorsInOutput checks the printed model spans.
func TestFig2AnchorsInOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig2(&buf, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"4.23x", "5.25x", "bert-base", "bert-large", "dolly"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2 output missing %q", want)
		}
	}
}

// TestSimExperimentsRun exercises the simulator-backed drivers end to end
// (quick mode). Skipped with -short: together they take tens of seconds.
func TestSimExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments take tens of seconds")
	}
	for _, id := range []string{"fig6", "fig7", "fig10", "fig11", "table2", "table3", "table4", "fig8", "fig12",
		"ablation-rs", "ablation-failures", "ablation-batch", "ablation-parallel", "ablation-latebinding"} {
		id := id
		t.Run(id, func(t *testing.T) {
			spec, ok := ByID(id)
			if !ok {
				t.Fatalf("missing %s", id)
			}
			var buf bytes.Buffer
			if err := spec.Run(&buf, Options{Seed: 5}); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", id)
			}
		})
	}
}

// TestCalibrationRuns replays a real-time clip; skipped with -short.
func TestCalibrationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs in real time")
	}
	var buf bytes.Buffer
	if err := Calibration(&buf, Options{Seed: 6}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fixed overhead") {
		t.Error("calibration output missing the derived overhead")
	}
}

// TestFourSystemsShape asserts the headline ordering the evaluation rests
// on: on a moderate stable load, Arlo's mean beats every baseline.
func TestFourSystemsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four simulations")
	}
	tr, err := trace.Generate(trace.Stable(9, 900, 20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	systems, err := fourSystems(model.BertBase(), 150*time.Millisecond, tr)
	if err != nil {
		t.Fatal(err)
	}
	results, err := runComparison(io.Discard, systems, tr, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	arlo := results["Arlo"].Summary.Mean
	for _, name := range []string{"ST", "DT", "INFaaS"} {
		if arlo >= results[name].Summary.Mean {
			t.Errorf("Arlo mean %v should beat %s mean %v", arlo, name, results[name].Summary.Mean)
		}
	}
}

func TestReductionHelper(t *testing.T) {
	if got := reduction(100*time.Millisecond, 30*time.Millisecond); got != 70 {
		t.Errorf("reduction = %v, want 70", got)
	}
	if got := reduction(0, time.Second); got != 0 {
		t.Errorf("zero base should give 0, got %v", got)
	}
}

func TestRelDiff(t *testing.T) {
	if got := relDiff(100*time.Millisecond, 90*time.Millisecond); got != 10 {
		t.Errorf("relDiff = %v, want 10", got)
	}
	if got := relDiff(0, time.Second); got != 0 {
		t.Errorf("relDiff with zero base = %v, want 0", got)
	}
}
