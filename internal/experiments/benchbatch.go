package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/cluster"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/obs"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/trace"
)

// benchBatchResult is the BENCH_batch.json schema: one arm per batching
// mode plus the sustained-load check, so CI (or a reviewer) can assert the
// speedup and SLO compliance without parsing the table.
type benchBatchResult struct {
	Workload   string  `json:"workload"`
	Requests   int     `json:"requests"`
	GPUs       int     `json:"gpus"`
	BatchAlpha float64 `json:"batch_alpha"`
	SLOMS      float64 `json:"slo_ms"`

	Sequential benchBatchArm `json:"sequential"`
	Batched    benchBatchArm `json:"batched"`
	Speedup    float64       `json:"speedup"`

	Sustained benchBatchSustained `json:"sustained"`
}

type benchBatchArm struct {
	BatchCap      int     `json:"batch_cap"`
	ThroughputRPS float64 `json:"throughput_rps"`
	DrainMS       float64 `json:"drain_ms"`
	MeanBatch     float64 `json:"mean_batch,omitempty"`
}

type benchBatchSustained struct {
	RateRPS   float64 `json:"rate_rps"`
	P99MS     float64 `json:"p99_ms"`
	WithinSLO bool    `json:"within_slo"`
}

// uniformLengths samples sequence lengths uniformly over [1, max] — the
// Fig. 9 workload's length recipe.
type uniformLengths struct{ max int }

func (u uniformLengths) SampleLength(rng *rand.Rand, _ time.Duration) int {
	return 1 + rng.Intn(u.max)
}

// BenchBatch measures the live cluster's dynamic-batching win on the
// Fig. 9 workload (uniform lengths over the model's full range): a burst
// of requests is drained once with batching off and once at batch cap 8,
// and the sustained phase then drives the batched cluster at 1.25x the
// sequential arm's measured throughput to check p99 stays within the SLO.
// Results are printed and written to BENCH_batch.json.
//
// The batch-cost alpha is set to 0.3 — the marginal batch cost calibrated
// against GPU-profiled batch scaling for encoder models, where batch 8
// runs at ~3.1x batch-1 latency (throughput 2.6x) — rather than the
// model's conservative 0.5 default.
func BenchBatch(w io.Writer, opt Options) error {
	const (
		gpus       = 8
		slo        = 150 * time.Millisecond
		batchAlpha = 0.3
	)
	requests := 1600
	sustainDur := 3 * time.Second
	if opt.Full {
		requests = 6400
		sustainDur = 8 * time.Second
	}
	batchCap := opt.BatchSize
	if batchCap <= 1 {
		batchCap = 8
	}

	lm := model.BertBase()
	if err := lm.SetBatchAlpha(batchAlpha); err != nil {
		return err
	}
	p, err := profiler.StaticProfile(lm, lm.Arch().RuntimeLengths(), slo)
	if err != nil {
		return err
	}
	factory := func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
		return dispatch.NewRequestScheduler(ml)
	}

	// Allocate the GPUs for the uniform length mix instead of evenly:
	// uniform lengths put the same request share in every bin, but the
	// long bins cost several times more per request.
	rng := rand.New(rand.NewSource(opt.Seed))
	lengths := make([]int, requests)
	for i := range lengths {
		lengths[i] = 1 + rng.Intn(lm.Arch().MaxLength)
	}
	q := make([]float64, len(p.Runtimes))
	for _, l := range lengths {
		idx, ok := p.IdealRuntime(l)
		if !ok {
			continue
		}
		q[idx]++
	}
	// Normalize counts to requests per SLO window at a nominal rate that
	// keeps the solver in its subscribed regime.
	for i := range q {
		q[i] = q[i] / float64(requests) * 1000 * slo.Seconds()
	}
	solver, err := allocator.NewSolver(p)
	if err != nil {
		return err
	}
	al, err := solver.Allocate(gpus, q)
	if err != nil {
		return err
	}

	drain := func(maxBatch int, rec *obs.Recorder) (time.Duration, error) {
		cl, err := cluster.New(cluster.Config{
			Profile:           p,
			InitialAllocation: al.N,
			Dispatcher:        factory,
			Overhead:          -1,
			MaxBatch:          maxBatch,
			BatchDelay:        opt.BatchDelay,
			Observer:          rec,
		})
		if err != nil {
			return 0, err
		}
		defer cl.Close()
		var wg sync.WaitGroup
		errs := make(chan error, requests)
		start := time.Now()
		for _, l := range lengths {
			wg.Add(1)
			go func(length int) {
				defer wg.Done()
				if _, err := cl.Submit(length); err != nil {
					errs <- err
				}
			}(l)
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errs:
			return 0, fmt.Errorf("burst submit: %w", err)
		default:
		}
		return elapsed, nil
	}

	seqDrain, err := drain(1, nil)
	if err != nil {
		return err
	}
	rec := obs.NewRecorder(len(p.Runtimes))
	batDrain, err := drain(batchCap, rec)
	if err != nil {
		return err
	}
	seqRPS := float64(requests) / seqDrain.Seconds()
	batRPS := float64(requests) / batDrain.Seconds()
	speedup := batRPS / seqRPS
	meanBatch := 0.0
	if rec.Batches() > 0 {
		meanBatch = float64(rec.BatchedRequests()) / float64(rec.Batches())
	}

	// Sustained phase: Poisson arrivals at 1.25x the sequential arm's
	// measured throughput through the batched cluster — a load the
	// sequential workers cannot serve at all, which batching must serve
	// with p99 inside the SLO.
	sustainRate := 1.25 * seqRPS
	tr, err := trace.Generate(trace.Config{
		Seed:     opt.Seed + 1,
		Duration: sustainDur,
		Arrivals: trace.Poisson{Rate: sustainRate},
		Lengths:  uniformLengths{max: lm.Arch().MaxLength},
	})
	if err != nil {
		return err
	}
	cl, err := cluster.New(cluster.Config{
		Profile:           p,
		InitialAllocation: al.N,
		Dispatcher:        factory,
		Overhead:          -1,
		MaxBatch:          batchCap,
		BatchDelay:        opt.BatchDelay,
	})
	if err != nil {
		return err
	}
	pr, err := cl.Replay(tr)
	cl.Close()
	if err != nil {
		return err
	}
	p99 := pr.Latency.Percentile(0.99)

	res := benchBatchResult{
		Workload:   "fig9-uniform-burst",
		Requests:   requests,
		GPUs:       gpus,
		BatchAlpha: batchAlpha,
		SLOMS:      float64(slo) / float64(time.Millisecond),
		Sequential: benchBatchArm{
			BatchCap:      1,
			ThroughputRPS: seqRPS,
			DrainMS:       float64(seqDrain) / float64(time.Millisecond),
		},
		Batched: benchBatchArm{
			BatchCap:      batchCap,
			ThroughputRPS: batRPS,
			DrainMS:       float64(batDrain) / float64(time.Millisecond),
			MeanBatch:     meanBatch,
		},
		Speedup: speedup,
		Sustained: benchBatchSustained{
			RateRPS:   sustainRate,
			P99MS:     float64(p99) / float64(time.Millisecond),
			WithinSLO: p99 <= slo,
		},
	}

	tw := newTab(w)
	fmt.Fprintln(tw, "arm\tbatch cap\tthroughput(req/s)\tdrain(ms)\tmean batch")
	fmt.Fprintf(tw, "sequential\t1\t%.0f\t%.1f\t-\n", seqRPS, res.Sequential.DrainMS)
	fmt.Fprintf(tw, "batched\t%d\t%.0f\t%.1f\t%.2f\n", batchCap, batRPS, res.Batched.DrainMS, meanBatch)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "speedup %.2fx; sustained %.0f req/s p99 %.1f ms (SLO %.0f ms, within=%v)\n",
		speedup, sustainRate, res.Sustained.P99MS, res.SLOMS, res.Sustained.WithinSLO)

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_batch.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote BENCH_batch.json")
	return nil
}
