package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/cluster"
	"arlo/internal/dispatch"
	"arlo/internal/metrics"
	"arlo/internal/model"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/sim"
	"arlo/internal/trace"
)

// Fig6 regenerates the testbed latency comparison: a Bert-Base stream at
// 1k req/s and a Bert-Large stream, both on 10 GPUs under Twitter-Stable,
// across ST, DT, INFaaS and Arlo. The paper drives Bert-Large at 1.5k
// req/s; under this reproduction's calibrated Bert-Large latencies that
// load exceeds what 10 GPUs can serve even unpadded, so the Bert-Large
// stream runs at 700 req/s — the highest load at which the best scheme is
// stable — preserving the comparison's shape (see EXPERIMENTS.md).
func Fig6(w io.Writer, opt Options) error {
	dur := 40 * time.Second
	if opt.Full {
		dur = 5 * time.Minute
	}
	streams := []struct {
		name string
		lm   *model.LatencyModel
		slo  time.Duration
		rate float64
	}{
		{"Bert-Base @ 1000 req/s", model.BertBase(), 150 * time.Millisecond, 1000},
		{"Bert-Large @ 700 req/s", model.BertLarge(), 450 * time.Millisecond, 700},
	}
	for _, st := range streams {
		fmt.Fprintf(w, "-- %s, 10 GPUs, Twitter-Stable --\n", st.name)
		tr, err := trace.Generate(trace.Stable(opt.Seed, st.rate, dur))
		if err != nil {
			return err
		}
		systems, err := fourSystems(st.lm, st.slo, tr)
		if err != nil {
			return err
		}
		results, err := runComparison(w, systems, tr, 10, nil)
		if err != nil {
			return err
		}
		printReductions(w, results)
	}
	fmt.Fprintln(w, "(paper: Arlo mean -70.3%/-66.7% vs ST, -23.7%/-29.2% vs DT, -24.9%/-39.3% vs INFaaS)")
	return nil
}

// Fig7 sweeps the request load for the Bert-Base stream on 10 GPUs: all
// schemes are comparable at low load; ST deteriorates first as padding
// saturates the cluster.
func Fig7(w io.Writer, opt Options) error {
	dur := 25 * time.Second
	if opt.Full {
		dur = 2 * time.Minute
	}
	lm := model.BertBase()
	slo := 150 * time.Millisecond
	loads := []float64{400, 800, 1200, 1600, 2000, 2400}
	tw := newTab(w)
	fmt.Fprintln(tw, "load(req/s)\tST mean(ms)\tDT mean(ms)\tINFaaS mean(ms)\tArlo mean(ms)")
	for _, rate := range loads {
		tr, err := trace.Generate(trace.Stable(opt.Seed, rate, dur))
		if err != nil {
			return err
		}
		systems, err := fourSystems(lm, slo, tr)
		if err != nil {
			return err
		}
		row := map[string]time.Duration{}
		for _, s := range systems {
			cfg, err := s.SimConfig(tr, 10, 20*time.Second)
			if err != nil {
				return err
			}
			res, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			row[s.Name] = res.Summary.Mean
		}
		fmt.Fprintf(tw, "%.0f\t%s\t%s\t%s\t%s\n", rate, ms(row["ST"]), ms(row["DT"]), ms(row["INFaaS"]), ms(row["Arlo"]))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "(paper: metrics comparable below ~1k req/s; ST's queueing explodes first as load grows)")
	return nil
}

// Fig8 runs the auto-scaling comparison: a highly varying Bert-Large
// stream starting from 5 GPUs with target-tracking scaling. The load
// varies on the minutes scale — the regime a reactive scaler can track
// (the paper's Twitter load swings over minutes; second-scale bursts are
// the Request Scheduler's job, Table 4). Arlo should serve the same
// traffic with the fewest time-weighted GPUs and the best tail latency
// (paper: 5.49 GPUs vs 6.38 DT, 6.80 INFaaS, 8.13 ST; p98 330 ms vs
// 397/404/430).
func Fig8(w io.Writer, opt Options) error {
	dur := 6 * time.Minute
	if opt.Full {
		dur = 12 * time.Minute
	}
	lm := model.BertLarge()
	slo := 450 * time.Millisecond
	rate := 500.0
	tr, err := trace.Generate(trace.Config{
		Seed:     opt.Seed,
		Duration: dur,
		Arrivals: trace.MMPP{
			// Minute-scale modulation: mean = (0.6*60 + 1.5*30)/90 = 0.9 base.
			LowRate:  0.6 * rate / 0.9,
			HighRate: 1.5 * rate / 0.9,
			MeanLow:  60 * time.Second,
			MeanHigh: 30 * time.Second,
		},
		Lengths: trace.TwitterRecalibrated(opt.Seed),
	})
	if err != nil {
		return err
	}
	systems, err := fourSystems(lm, slo, tr)
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "scheme\tscaling\ttime-weighted GPUs\tfinal GPUs\tp98(ms)\tscale-outs\tscale-ins")
	for _, s := range systems {
		cfg, err := s.SimConfig(tr, 5, 30*time.Second)
		if err != nil {
			return err
		}
		// Arlo uses target tracking (section 4); the baselines use the
		// headroom heuristic from INFaaS (section 5, Compared schemes).
		scaling := "headroom"
		if s.Name == "Arlo" {
			scaling = "target-tracking"
			scaler, err := allocator.NewAutoScaler(slo)
			if err != nil {
				return err
			}
			cfg.Scaler = scaler
		} else {
			cfg.Scaler = allocator.NewHeadroomScaler()
		}
		cfg.ScalePeriod = time.Second
		res, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.0f\t%s\t%d\t%d\n",
			s.Name, scaling, res.TimeWeightedGPUs, res.GPUs.Last(), ms(res.Summary.P98), res.ScaleOuts, res.ScaleIns)
	}
	return tw.Flush()
}

// Table2 measures the Runtime Scheduler's allocation solve time at the
// paper's three scales (50 GPUs/8 runtimes, 200/12, 1000/16), averaged
// over 20 runs with Twitter-shaped demand.
func Table2(w io.Writer, opt Options) error {
	runs := 20
	tw := newTab(w)
	fmt.Fprintln(tw, "#GPU\t#runtimes\ttime(s)\tpaper(s)")
	paper := []string{"0.156", "0.623", "2.612"}
	cases := []struct{ gpus, runtimes int }{{50, 8}, {200, 12}, {1000, 16}}
	for ci, c := range cases {
		solver, q, err := table2Instance(c.gpus, c.runtimes, opt.Seed+int64(ci))
		if err != nil {
			return err
		}
		var total time.Duration
		for r := 0; r < runs; r++ {
			start := time.Now()
			if _, err := solver.Allocate(c.gpus, q); err != nil {
				return err
			}
			total += time.Since(start)
		}
		fmt.Fprintf(tw, "%d\t%d\t%.4f\t%s\n", c.gpus, c.runtimes, (total / time.Duration(runs)).Seconds(), paper[ci])
	}
	return tw.Flush()
}

// table2Instance builds a solver and demand vector for an allocation
// problem with the given scale. Runtime counts beyond 8 use a wider
// max-length span (the paper's larger deployments profile more shapes).
func table2Instance(gpus, runtimes int, seed int64) (*allocator.Solver, []float64, error) {
	arch := model.Arch{
		Name:         fmt.Sprintf("bench-%d", runtimes),
		Layers:       12,
		Hidden:       768,
		Heads:        12,
		Intermediate: 3072,
		MaxLength:    64 * runtimes,
		TileStep:     64,
	}
	// Anchor latencies scale linearly with the span, BERT-Base-like.
	latTile := 1150 * time.Microsecond
	latMax := latTile * time.Duration(4*runtimes) / 8
	lm, err := model.Calibrate(arch, latTile, latMax, 3.56, 1.22)
	if err != nil {
		return nil, nil, err
	}
	p, err := profiler.StaticProfile(lm, arch.RuntimeLengths(), 150*time.Millisecond)
	if err != nil {
		return nil, nil, err
	}
	solver, err := allocator.NewSolver(p)
	if err != nil {
		return nil, nil, err
	}
	// Demand shaped like the Twitter distribution (heavy short bins),
	// scaled so the cluster is ~60% subscribed.
	rng := rand.New(rand.NewSource(seed))
	q := make([]float64, runtimes)
	weight := 0.0
	for i := range q {
		q[i] = math.Exp(-0.4*float64(i)) * (0.8 + 0.4*rng.Float64())
		weight += q[i] / float64(p.Runtimes[i].Capacity)
	}
	scale := 0.6 * float64(gpus) / weight
	for i := range q {
		q[i] *= scale
	}
	return solver, q, nil
}

// Fig9 measures Request Scheduler dispatch overhead at large scale: 12
// runtimes, 200-1200 instances, a burst of 2x concurrent requests, for
// several peek limits L. The paper reports ~0.737 ms for a 2400-request
// burst over 1200 instances.
func Fig9(w io.Writer, opt Options) error {
	const runtimes = 12
	maxLens := make([]int, runtimes)
	for i := range maxLens {
		maxLens[i] = 64 * (i + 1)
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "instances\trequests\tL\tburst total(ms)\tper dispatch(us)")
	for _, instances := range []int{200, 400, 800, 1200} {
		requests := 2 * instances
		for _, L := range []int{2, 6, 12} {
			total, err := fig9Burst(maxLens, instances, requests, L, opt.Seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%.3f\t%.3f\n",
				instances, requests, L,
				float64(total)/float64(time.Millisecond),
				float64(total)/float64(requests)/float64(time.Microsecond))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "(paper: ~0.737 ms for a 2400-request burst over 1200 instances; larger L costs slightly more)")
	return nil
}

// fig9Burst times dispatching a burst of requests over a synthetic
// deployment.
func fig9Burst(maxLens []int, instances, requests, L int, seed int64) (time.Duration, error) {
	ml, err := queue.NewMultiLevel(maxLens)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	for id := 0; id < instances; id++ {
		in := queue.NewInstance(id, id%len(maxLens), rng.Intn(40), 60)
		if err := ml.Add(in); err != nil {
			return 0, err
		}
	}
	rs, err := dispatch.NewRequestSchedulerParams(ml, 0.85, 0.9, L)
	if err != nil {
		return 0, err
	}
	lengths := make([]int, requests)
	maxLen := maxLens[len(maxLens)-1]
	for i := range lengths {
		lengths[i] = 1 + rng.Intn(maxLen)
	}
	start := time.Now()
	for _, l := range lengths {
		if _, err := rs.Dispatch(l); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// Calibration reproduces section 5.2.1 in two stages, as the paper did:
// a calibration clip measures the real-time prototype's fixed per-request
// overhead (the paper measured 0.8 ms on its testbed for network and
// host-to-device transfers; our emulated workers' overhead is sleep and
// scheduling jitter), the simulator adopts it, and a held-out clip
// validates the agreement. The paper reports mean within 4.3% and p98
// within 2.6%. This experiment runs in real time (about the trace
// duration).
func Calibration(w io.Writer, opt Options) error {
	dur := 10 * time.Second
	rate := 300.0
	if opt.Full {
		dur = 40 * time.Second
	}
	lm := model.BertBase()
	slo := 150 * time.Millisecond
	p, err := profiler.StaticProfile(lm, lm.Arch().RuntimeLengths(), slo)
	if err != nil {
		return err
	}
	tr, err := trace.Generate(trace.Stable(opt.Seed, rate, dur))
	if err != nil {
		return err
	}
	calibClip := tr.Clip(0, dur/2)
	validClip := tr.Clip(dur/2, dur)
	solver, err := allocator.NewSolver(p)
	if err != nil {
		return err
	}
	al, err := solver.Allocate(8, tr.BinDemand(p.MaxLengths(), slo))
	if err != nil {
		return err
	}
	factory := func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
		return dispatch.NewRequestScheduler(ml)
	}
	replayBoth := func(clip *trace.Trace, overhead time.Duration) (proto, simr metrics.Summary, err error) {
		cl, err := cluster.New(cluster.Config{
			Profile:           p,
			InitialAllocation: al.N,
			Dispatcher:        factory,
			Overhead:          -1, // raw wall-clock measurement
		})
		if err != nil {
			return proto, simr, err
		}
		defer cl.Close()
		pr, err := cl.Replay(clip)
		if err != nil {
			return proto, simr, err
		}
		sr, err := sim.Run(sim.Config{
			Profile:           p,
			Trace:             clip,
			InitialAllocation: al.N,
			Dispatcher:        factory,
			Overhead:          overhead,
		})
		if err != nil {
			return proto, simr, err
		}
		return pr.Summary, sr.Summary, nil
	}
	// Stage 1: measure the prototype's fixed per-request overhead.
	proto1, sim1, err := replayBoth(calibClip, -1)
	if err != nil {
		return err
	}
	overhead := proto1.Mean - sim1.Mean
	if overhead < 0 {
		overhead = 0
	}
	fmt.Fprintf(w, "calibration clip: prototype mean %s ms vs raw simulator %s ms -> fixed overhead %.3f ms/request\n",
		ms(proto1.Mean), ms(sim1.Mean), float64(overhead)/float64(time.Millisecond))
	// Stage 2: validate on the held-out clip.
	proto2, sim2, err := replayBoth(validClip, overhead)
	if err != nil {
		return err
	}
	meanDiff := relDiff(proto2.Mean, sim2.Mean)
	p98Diff := relDiff(proto2.P98, sim2.P98)
	tw := newTab(w)
	fmt.Fprintln(tw, "metric\tprototype(ms)\tsimulator(ms)\tdiff%")
	fmt.Fprintf(tw, "mean\t%s\t%s\t%.1f\n", ms(proto2.Mean), ms(sim2.Mean), meanDiff)
	fmt.Fprintf(tw, "p98\t%s\t%s\t%.1f\n", ms(proto2.P98), ms(sim2.P98), p98Diff)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "(paper: mean within 4.3%, p98 within 2.6%, with a 0.8 ms/request fixed overhead)")
	return nil
}

func relDiff(a, b time.Duration) float64 {
	if a <= 0 {
		return 0
	}
	return 100 * math.Abs(float64(a-b)) / float64(a)
}
