package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidatePresets(t *testing.T) {
	for _, a := range []Arch{BertBaseArch, BertLargeArch, DollyArch} {
		if err := a.Validate(); err != nil {
			t.Errorf("preset %s failed validation: %v", a.Name, err)
		}
	}
}

func TestValidateRejectsBadArch(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Arch)
	}{
		{"empty name", func(a *Arch) { a.Name = "" }},
		{"zero layers", func(a *Arch) { a.Layers = 0 }},
		{"negative hidden", func(a *Arch) { a.Hidden = -1 }},
		{"zero heads", func(a *Arch) { a.Heads = 0 }},
		{"hidden not divisible by heads", func(a *Arch) { a.Heads = 7 }},
		{"zero intermediate", func(a *Arch) { a.Intermediate = 0 }},
		{"zero max length", func(a *Arch) { a.MaxLength = 0 }},
		{"zero tile step", func(a *Arch) { a.TileStep = 0 }},
		{"max length not multiple of tile", func(a *Arch) { a.MaxLength = 500 }},
	}
	for _, tc := range cases {
		a := BertBaseArch
		tc.mut(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: expected validation error, got nil", tc.name)
		}
	}
}

func TestRoundUp(t *testing.T) {
	a := BertBaseArch
	cases := []struct{ in, want int }{
		{-5, 64}, {0, 64}, {1, 64}, {20, 64}, {64, 64},
		{65, 128}, {127, 128}, {128, 128}, {129, 192},
		{511, 512}, {512, 512},
	}
	for _, tc := range cases {
		if got := a.RoundUp(tc.in); got != tc.want {
			t.Errorf("RoundUp(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRoundUpProperties(t *testing.T) {
	a := BertBaseArch
	f := func(n int) bool {
		n %= 2048
		got := a.RoundUp(n)
		// Result is a positive multiple of the tile step and >= n.
		if got%a.TileStep != 0 || got < a.TileStep {
			return false
		}
		if n > 0 && got < n {
			return false
		}
		// Tight: no smaller multiple fits.
		return got-a.TileStep < n || got == a.TileStep
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRuntimeLengths(t *testing.T) {
	ls := BertBaseArch.RuntimeLengths()
	if len(ls) != 8 {
		t.Fatalf("BERT should have 8 runtimes (512/64), got %d", len(ls))
	}
	for i, l := range ls {
		if want := 64 * (i + 1); l != want {
			t.Errorf("runtime %d length = %d, want %d", i, l, want)
		}
	}
	if got := BertBaseArch.NumRuntimes(); got != 8 {
		t.Errorf("NumRuntimes = %d, want 8", got)
	}
}

func TestRuntimeLengthsN(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		ls := BertLargeArch.RuntimeLengthsN(n)
		if len(ls) != n {
			t.Fatalf("RuntimeLengthsN(%d) returned %d lengths", n, len(ls))
		}
		if ls[n-1] != 512 {
			t.Errorf("largest runtime must cover MaxLength, got %d", ls[n-1])
		}
		step := 512 / n
		for i, l := range ls {
			if l != step*(i+1) {
				t.Errorf("n=%d: runtime %d length = %d, want %d", n, i, l, step*(i+1))
			}
		}
	}
}

func TestRuntimeLengthsNPanicsOnBadSplit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-divisor runtime count")
		}
	}()
	BertBaseArch.RuntimeLengthsN(3)
}

func TestFLOPsMonotonic(t *testing.T) {
	a := BertBaseArch
	prev := int64(0)
	for s := 1; s <= 512; s += 7 {
		f := a.FLOPs(s)
		if f <= prev {
			t.Fatalf("FLOPs not strictly increasing at s=%d: %d <= %d", s, f, prev)
		}
		prev = f
	}
	if a.FLOPs(0) != 0 || a.FLOPs(-3) != 0 {
		t.Error("FLOPs of non-positive length should be 0")
	}
}

func TestFLOPsSuperLinear(t *testing.T) {
	// Attention's quadratic term makes FLOPs(2s) > 2*FLOPs(s).
	a := BertLargeArch
	for _, s := range []int{16, 64, 128, 256} {
		if a.FLOPs(2*s) <= 2*a.FLOPs(s) {
			t.Errorf("FLOPs(%d)=%d should exceed 2*FLOPs(%d)=%d", 2*s, a.FLOPs(2*s), s, 2*a.FLOPs(s))
		}
	}
}

func TestPaddingWasteFraction(t *testing.T) {
	a := BertBaseArch
	if w := a.PaddingWasteFraction(512, 512); w != 0 {
		t.Errorf("no waste expected at full length, got %v", w)
	}
	if w := a.PaddingWasteFraction(600, 512); w != 0 {
		t.Errorf("over-length request cannot waste, got %v", w)
	}
	// The paper reports ~80.6% of FLOPs wasted serving the Twitter trace
	// (median length 21) with max_length 125. A length-21 request alone
	// should waste more than 80%.
	w := a.PaddingWasteFraction(21, 125)
	if w < 0.80 || w > 0.99 {
		t.Errorf("waste for len 21 on 125 runtime = %.3f, want in [0.80, 0.99]", w)
	}
	// Waste is monotone decreasing in request length.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		l1 := 1 + rng.Intn(511)
		l2 := l1 + rng.Intn(512-l1)
		if a.PaddingWasteFraction(l1, 512) < a.PaddingWasteFraction(l2, 512) {
			t.Fatalf("waste should not increase with length: len %d vs %d", l1, l2)
		}
	}
}
