package model

import (
	"fmt"
	"time"
)

// Sharded derives the latency model of the same architecture executed
// with intra-operator model parallelism across k GPUs — the paper's
// "large models with multiple GPUs" setting (section 6): the computation
// still depends on the input shape, so Arlo schedules k-GPU instances
// exactly like single-GPU ones, just with scaled latencies.
//
// Per-request latency scales by (1 + commFraction*(k-1)) / k: ideal
// k-way speedup discounted by the all-reduce communication that grows
// with the shard count (commFraction is the communication share of one
// step, typically 0.1-0.2 for tensor parallelism).
func (m *LatencyModel) Sharded(k int, commFraction float64) (*LatencyModel, error) {
	if k < 1 {
		return nil, fmt.Errorf("model %s: shard count must be >= 1, got %d", m.arch.Name, k)
	}
	if commFraction < 0 || commFraction >= 1 {
		return nil, fmt.Errorf("model %s: communication fraction must be in [0, 1), got %v", m.arch.Name, commFraction)
	}
	if k == 1 {
		clone := *m
		return &clone, nil
	}
	scale := (1 + commFraction*float64(k-1)) / float64(k)
	sharded := *m
	sharded.arch.Name = fmt.Sprintf("%s-tp%d", m.arch.Name, k)
	sharded.base = scaleDuration(m.base, scale)
	sharded.perToken = scaleDuration(m.perToken, scale)
	return &sharded, nil
}

func scaleDuration(d time.Duration, scale float64) time.Duration {
	return time.Duration(float64(d) * scale)
}
