package model

import "time"

// Generative (prefill + decode) cost model.
//
// An encoder request is one kernel over its whole sequence. A generative
// request is a prefill over the prompt followed by one decode iteration per
// output token, and the decode iterations are where continuous batching
// earns its win: each iteration is dominated by the fixed launch/framework
// overhead plus a small per-sequence cost, so an iteration over b sequences
// costs barely more than over one — but a sequence that has finished its
// output contributes nothing, and a slot it vacates can be refilled
// mid-flight.
//
// The decode-step model reuses the calibrated affine anchors:
//
//	step(ctx_1..ctx_b) = base + sum_j perToken * (1 + attnFrac * ctx_j / MaxLength)
//
// One token per sequence flows through the MLP (the perToken term) and the
// attention over the growing context adds a fraction of a token-cost that
// scales with how full the context is (KV-cache GEMV: memory-bound, linear
// in context length, far cheaper per cached token than prefill FLOPs).
// attnFrac = 0.5 means a sequence at full context costs 1.5 token-units per
// step. For BERT-Base anchors this puts a batch-1 decode step at ~0.63 ms
// and a batch-8 step at ~0.70 ms, against a 512-token prefill of ~4.9 ms —
// the regime where iteration-level scheduling pays.

// decodeAttnFrac is the marginal attention cost of a full context, in
// per-token units (see package comment above).
const decodeAttnFrac = 0.5

// DecodeStepLatency returns the cost of one decode iteration over a batch
// of sequences with the given context lengths (prompt + tokens generated so
// far). Contexts are clamped to the architecture's MaxLength. An empty
// batch costs nothing.
func (m *LatencyModel) DecodeStepLatency(ctxLens []int) time.Duration {
	if len(ctxLens) == 0 {
		return 0
	}
	total := float64(m.base)
	maxLen := float64(m.arch.MaxLength)
	for _, c := range ctxLens {
		if c < 0 {
			c = 0
		}
		if c > m.arch.MaxLength {
			c = m.arch.MaxLength
		}
		total += float64(m.perToken) * (1 + decodeAttnFrac*float64(c)/maxLen)
	}
	return time.Duration(total)
}

// DecodeStepLatencyUniform is DecodeStepLatency for b sequences all at the
// same context length — the common capacity-planning query, allocation-free.
func (m *LatencyModel) DecodeStepLatencyUniform(b, ctx int) time.Duration {
	if b <= 0 {
		return 0
	}
	if ctx < 0 {
		ctx = 0
	}
	if ctx > m.arch.MaxLength {
		ctx = m.arch.MaxLength
	}
	per := float64(m.perToken) * (1 + decodeAttnFrac*float64(ctx)/float64(m.arch.MaxLength))
	return time.Duration(float64(m.base) + float64(b)*per)
}

// GenerateLatency returns the run-to-completion cost of one generative
// request executed alone: a prefill over promptLen tokens (on a runtime
// compiled at maxLength, static/dynamic per c) plus out-1 decode steps at
// the growing context. out <= 1 degrades to the plain encoder cost — the
// prefill itself yields the first token.
func (m *LatencyModel) GenerateLatency(c Compilation, maxLength, promptLen, out int) time.Duration {
	total := m.Latency(c, maxLength, promptLen)
	for t := 1; t < out; t++ {
		total += m.DecodeStepLatencyUniform(1, promptLen+t)
	}
	return total
}
