// Package model describes Transformer architectures and provides the
// calibrated latency model that stands in for real compiled runtimes.
//
// Arlo never executes a neural network: every scheduling decision in the
// paper consumes only (a) the latency of a statically compiled runtime as a
// function of its max_length, (b) the latency of a dynamically compiled
// runtime as a function of the exact request length, and (c) the staircase
// shape of (a). This package reproduces all three from the measurement
// anchors published in the paper (Fig. 2): BERT-Base latency grows 4.22x
// from length 64 to 512 (1.15 ms -> 4.86 ms), BERT-Large 5.25x, dynamic
// compilation inflates latency by 1.22x-3.56x for TensorRT and ~2.86x on
// average for TVM Unity, and static latency is flat within each 64-length
// tile step.
package model

import "fmt"

// Arch describes a discriminative Transformer architecture.
type Arch struct {
	// Name identifies the architecture, e.g. "bert-base".
	Name string
	// Layers is the number of Transformer encoder blocks.
	Layers int
	// Hidden is the model (embedding) dimension.
	Hidden int
	// Heads is the number of attention heads.
	Heads int
	// Intermediate is the feed-forward inner dimension (usually 4*Hidden).
	Intermediate int
	// MaxLength is the longest sequence the model supports.
	MaxLength int
	// TileStep is the GPU matmul tile granularity: static-runtime latency
	// is flat within each TileStep-length band and jumps at multiples of
	// it (the "staircase pattern", paper section 3.3).
	TileStep int
}

// Validate reports whether the architecture is internally consistent.
func (a Arch) Validate() error {
	switch {
	case a.Name == "":
		return fmt.Errorf("model: architecture has no name")
	case a.Layers <= 0:
		return fmt.Errorf("model %s: Layers must be positive, got %d", a.Name, a.Layers)
	case a.Hidden <= 0:
		return fmt.Errorf("model %s: Hidden must be positive, got %d", a.Name, a.Hidden)
	case a.Heads <= 0:
		return fmt.Errorf("model %s: Heads must be positive, got %d", a.Name, a.Heads)
	case a.Hidden%a.Heads != 0:
		return fmt.Errorf("model %s: Hidden (%d) must be divisible by Heads (%d)", a.Name, a.Hidden, a.Heads)
	case a.Intermediate <= 0:
		return fmt.Errorf("model %s: Intermediate must be positive, got %d", a.Name, a.Intermediate)
	case a.MaxLength <= 0:
		return fmt.Errorf("model %s: MaxLength must be positive, got %d", a.Name, a.MaxLength)
	case a.TileStep <= 0:
		return fmt.Errorf("model %s: TileStep must be positive, got %d", a.Name, a.TileStep)
	case a.MaxLength%a.TileStep != 0:
		return fmt.Errorf("model %s: MaxLength (%d) must be a multiple of TileStep (%d)", a.Name, a.MaxLength, a.TileStep)
	}
	return nil
}

// RoundUp returns n rounded up to the next multiple of the tile step,
// clamped to at least one step. This is the effective sequence length a
// static runtime computes over.
func (a Arch) RoundUp(n int) int {
	if n <= a.TileStep {
		return a.TileStep
	}
	r := n % a.TileStep
	if r == 0 {
		return n
	}
	return n + a.TileStep - r
}

// NumRuntimes returns how many statically compiled runtimes Arlo prepares
// for this architecture: one per tile step up to MaxLength (paper section
// 3.3, e.g. 512/64 = 8 for BERT).
func (a Arch) NumRuntimes() int { return a.MaxLength / a.TileStep }

// RuntimeLengths returns the max_length of every runtime Arlo compiles for
// this architecture, in increasing order: TileStep, 2*TileStep, ..., MaxLength.
func (a Arch) RuntimeLengths() []int {
	out := make([]int, 0, a.NumRuntimes())
	for l := a.TileStep; l <= a.MaxLength; l += a.TileStep {
		out = append(out, l)
	}
	return out
}

// RuntimeLengthsN returns n runtime max_lengths evenly spaced across
// MaxLength (step MaxLength/n), the configuration swept in Fig. 11.
// It panics if n does not divide MaxLength.
func (a Arch) RuntimeLengthsN(n int) []int {
	if n <= 0 || a.MaxLength%n != 0 {
		panic(fmt.Sprintf("model %s: cannot split MaxLength %d into %d runtimes", a.Name, a.MaxLength, n))
	}
	step := a.MaxLength / n
	out := make([]int, 0, n)
	for l := step; l <= a.MaxLength; l += step {
		out = append(out, l)
	}
	return out
}

// FLOPs returns the forward-pass floating point operations for one sequence
// of the given length: per layer, QKV/output projections and the FFN cost
// 24*s*H^2 (with Intermediate = 4H) and attention score/value matmuls cost
// 4*s^2*H. Used for the padding-waste analysis in section 2.2.
func (a Arch) FLOPs(seqLen int) int64 {
	if seqLen <= 0 {
		return 0
	}
	s := int64(seqLen)
	h := int64(a.Hidden)
	inter := int64(a.Intermediate)
	proj := 4 * 2 * s * h * h // Q, K, V, output projections
	attn := 2 * 2 * s * s * h // QK^T and attention-weighted V
	ffn := 2 * 2 * s * h * inter
	return int64(a.Layers) * (proj + attn + ffn)
}

// PaddingWasteFraction returns the fraction of FLOPs wasted when a request
// of length reqLen is zero-padded and served by a runtime compiled with the
// given max_length. It returns 0 when no padding occurs.
func (a Arch) PaddingWasteFraction(reqLen, maxLen int) float64 {
	if reqLen >= maxLen || maxLen <= 0 {
		return 0
	}
	total := a.FLOPs(maxLen)
	if total == 0 {
		return 0
	}
	useful := a.FLOPs(reqLen)
	return 1 - float64(useful)/float64(total)
}
