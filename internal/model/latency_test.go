package model

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBertBaseAnchors(t *testing.T) {
	m := BertBase()
	// Paper anchors: lat(512) = 4.86 ms, lat(512)/lat(64) = 4.22x.
	lat512 := m.StaticLatency(512)
	lat64 := m.StaticLatency(64)
	if got := lat512.Seconds() * 1000; math.Abs(got-4.86) > 0.05 {
		t.Errorf("BERT-Base lat(512) = %.3f ms, want ~4.86 ms", got)
	}
	ratio := float64(lat512) / float64(lat64)
	if math.Abs(ratio-4.22) > 0.1 {
		t.Errorf("BERT-Base lat(512)/lat(64) = %.2f, want ~4.22", ratio)
	}
}

func TestBertLargeAnchors(t *testing.T) {
	m := BertLarge()
	ratio := float64(m.StaticLatency(512)) / float64(m.StaticLatency(64))
	if math.Abs(ratio-5.25) > 0.1 {
		t.Errorf("BERT-Large lat(512)/lat(64) = %.2f, want ~5.25", ratio)
	}
}

func TestPaddingInflationMatchesPaper(t *testing.T) {
	// A length-20 request served by a 512 runtime takes 4.28x its actual
	// computation time (paper section 2.2).
	m := BertBase()
	infl := m.PaddingInflation(20, 512)
	if math.Abs(infl-4.22) > 0.15 { // length 20 rounds to the 64 tile
		t.Errorf("padding inflation for len 20 on 512 = %.2f, want ~4.2-4.3", infl)
	}
}

func TestStaticLatencyStaircase(t *testing.T) {
	m := BertBase()
	// Latency is flat within a tile step...
	if m.IdealStaticLatency(65) != m.IdealStaticLatency(128) {
		t.Error("latency should be flat within the 64..128 tile band")
	}
	// ...and jumps across steps.
	if m.IdealStaticLatency(128) >= m.IdealStaticLatency(129) {
		t.Error("latency should jump at the 128->129 boundary")
	}
}

func TestStaticLatencyIgnoresRequestLength(t *testing.T) {
	m := BertBase()
	// A static runtime pads: cost depends only on its compiled max_length.
	want := m.StaticLatency(512)
	for _, reqLen := range []int{1, 20, 64, 300, 512} {
		if got := m.Latency(Static, 512, reqLen); got != want {
			t.Errorf("static runtime latency changed with request length %d: %v != %v", reqLen, got, want)
		}
	}
}

func TestDynamicInflationBand(t *testing.T) {
	m := BertBase()
	for s := 1; s <= 512; s += 13 {
		infl := m.DynamicInflation(s)
		if infl < 1.22-1e-9 || infl > 3.56+1e-9 {
			t.Fatalf("dynamic inflation %.3f at len %d outside the paper's 1.22-3.56 band", infl, s)
		}
	}
	if m.DynamicInflation(1) <= m.DynamicInflation(512) {
		t.Error("inflation should be worst for short sequences")
	}
	// Clamping outside the valid range.
	if m.DynamicInflation(-5) != m.DynamicInflation(0) {
		t.Error("negative lengths should clamp to 0")
	}
	if m.DynamicInflation(1000) != m.DynamicInflation(512) {
		t.Error("over-long lengths should clamp to MaxLength")
	}
}

func TestDollyAverageInflation(t *testing.T) {
	m := Dolly()
	sum := 0.0
	n := 0
	for s := 32; s <= 512; s += 32 {
		sum += m.DynamicInflation(s)
		n++
	}
	avg := sum / float64(n)
	if math.Abs(avg-2.86) > 0.15 {
		t.Errorf("Dolly average dynamic inflation = %.2f, want ~2.86 (paper Fig. 2c)", avg)
	}
}

func TestDynamicBeatsFullPaddingForShortRequests(t *testing.T) {
	// The whole premise of DT vs ST: a short request is faster on a
	// dynamic runtime than padded to 512 on a static one, but slower
	// than on its ideal static runtime.
	for _, m := range []*LatencyModel{BertBase(), BertLarge()} {
		short := 21 // Twitter median
		dyn := m.DynamicLatency(short)
		padded := m.StaticLatency(512)
		ideal := m.IdealStaticLatency(short)
		if dyn >= padded {
			t.Errorf("%s: dynamic (%v) should beat fully padded (%v) for len %d", m.Arch().Name, dyn, padded, short)
		}
		if dyn <= ideal {
			t.Errorf("%s: dynamic (%v) should lose to ideal static (%v) for len %d", m.Arch().Name, dyn, ideal, short)
		}
	}
}

func TestLatencyMonotoneInMaxLength(t *testing.T) {
	m := BertLarge()
	f := func(a, b int) bool {
		a = 1 + abs(a)%512
		b = 1 + abs(b)%512
		if a > b {
			a, b = b, a
		}
		return m.StaticLatency(a) <= m.StaticLatency(b) && m.DynamicLatency(a) <= m.DynamicLatency(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCalibrateRejectsBadAnchors(t *testing.T) {
	cases := []struct {
		name            string
		latTile, latMax time.Duration
		inflS, inflL    float64
	}{
		{"zero tile latency", 0, time.Millisecond, 1.2, 1.2},
		{"max not above tile", 2 * time.Millisecond, time.Millisecond, 1.2, 1.2},
		{"inflation below 1", time.Millisecond, 5 * time.Millisecond, 0.5, 1.2},
		{"superlinear anchors", time.Microsecond, 100 * time.Millisecond, 1.2, 1.2},
	}
	for _, tc := range cases {
		if _, err := Calibrate(BertBaseArch, tc.latTile, tc.latMax, tc.inflS, tc.inflL); err == nil {
			t.Errorf("%s: expected calibration error", tc.name)
		}
	}
	if _, err := Calibrate(Arch{}, time.Millisecond, 5*time.Millisecond, 1.2, 1.2); err == nil {
		t.Error("invalid arch should fail calibration")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"bert-base", "bert-large", "dolly"} {
		m := ByName(name)
		if m == nil {
			t.Fatalf("ByName(%q) returned nil", name)
		}
		if m.Arch().Name != name {
			t.Errorf("ByName(%q) returned arch %q", name, m.Arch().Name)
		}
	}
	if ByName("gpt-17") != nil {
		t.Error("unknown name should return nil")
	}
}

func TestSLOPresets(t *testing.T) {
	if slo, ok := SLO(BertBaseArch); !ok || slo != 150*time.Millisecond {
		t.Errorf("BERT-Base SLO = %v, %v; want 150ms, true", slo, ok)
	}
	if slo, ok := SLO(BertLargeArch); !ok || slo != 450*time.Millisecond {
		t.Errorf("BERT-Large SLO = %v, %v; want 450ms, true", slo, ok)
	}
	if _, ok := SLO(DollyArch); ok {
		t.Error("Dolly has no serving SLO in the paper")
	}
}

func TestCompilationString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Error("unexpected Compilation names")
	}
	if Compilation(9).String() == "" {
		t.Error("unknown compilation should still print")
	}
}

func abs(x int) int {
	if x < 0 {
		if x == math.MinInt {
			return math.MaxInt
		}
		return -x
	}
	return x
}

func TestShardedValidation(t *testing.T) {
	m := BertLarge()
	if _, err := m.Sharded(0, 0.15); err == nil {
		t.Error("zero shards should fail")
	}
	if _, err := m.Sharded(2, -0.1); err == nil {
		t.Error("negative comm fraction should fail")
	}
	if _, err := m.Sharded(2, 1.0); err == nil {
		t.Error("comm fraction 1 should fail")
	}
}

func TestShardedSpeedup(t *testing.T) {
	m := BertLarge()
	tp2, err := m.Sharded(2, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	tp4, err := m.Sharded(4, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	base := m.StaticLatency(512)
	// Exactly (1 + 0.15*(k-1))/k of the single-GPU latency.
	want2 := time.Duration(float64(base) * 1.15 / 2)
	got2 := tp2.StaticLatency(512)
	if got2 < want2-time.Microsecond || got2 > want2+time.Microsecond {
		t.Errorf("tp2 lat(512) = %v, want %v", got2, want2)
	}
	if !(tp4.StaticLatency(512) < got2 && got2 < base) {
		t.Error("latency should fall with shard count")
	}
	// Sub-linear: 4 GPUs buy less than 4x.
	speedup4 := float64(base) / float64(tp4.StaticLatency(512))
	if speedup4 >= 4 || speedup4 <= 2 {
		t.Errorf("tp4 speedup = %.2f, want in (2, 4)", speedup4)
	}
	// The staircase and span shape survive sharding.
	ratio := float64(tp2.StaticLatency(512)) / float64(tp2.StaticLatency(64))
	origRatio := float64(m.StaticLatency(512)) / float64(m.StaticLatency(64))
	if math.Abs(ratio-origRatio) > 1e-4 { // duration rounding at ns granularity
		t.Errorf("sharding must preserve the length-span ratio: %v vs %v", ratio, origRatio)
	}
	if tp2.Arch().Name != "bert-large-tp2" {
		t.Errorf("sharded arch name = %q", tp2.Arch().Name)
	}
}

func TestShardedK1IsClone(t *testing.T) {
	m := BertBase()
	c, err := m.Sharded(1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if c.StaticLatency(512) != m.StaticLatency(512) || c.Arch().Name != m.Arch().Name {
		t.Error("k=1 should be an identical clone")
	}
}
