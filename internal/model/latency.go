package model

import (
	"fmt"
	"time"
)

// Compilation distinguishes how a runtime was produced by the DL compiler.
type Compilation int

const (
	// Static is a runtime compiled for one fixed input shape; shorter
	// requests are zero-padded up to its max_length (paper section 2.2).
	Static Compilation = iota
	// Dynamic is a runtime compiled with a dynamic length axis; it accepts
	// any length without padding but pays a per-kernel dispatch and
	// missed-fusion penalty (paper Fig. 2).
	Dynamic
)

// String returns the compilation mode name.
func (c Compilation) String() string {
	switch c {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Compilation(%d)", int(c))
	}
}

// LatencyModel predicts single-request (batch size 1) computation time for
// runtimes of one architecture, calibrated against two measured anchors.
//
// Static runtimes: lat(max_length) = base + perTile * roundUpTile(max_length).
// The affine form reproduces the paper's anchors exactly: with BERT-Base
// base=0.62 ms and perTile=8.28 us/token, lat(64)=1.15 ms and
// lat(512)=4.86 ms (ratio 4.23x vs the published 4.22x). A static runtime's
// latency depends only on its compiled max_length, never on the request:
// padded tokens are computed like real ones.
//
// Dynamic runtimes: lat(s) = inflation(s) * (base + perToken * s) with no
// tile rounding (dynamic kernels handle exact shapes) and an inflation
// factor interpolated from InflationShort at length 0 to InflationLong at
// MaxLength, matching the measured 3.56x..1.22x band for TensorRT.
type LatencyModel struct {
	arch Arch
	// base is the length-independent kernel-launch + framework overhead.
	base time.Duration
	// perToken is the marginal cost of one (effective) token.
	perToken time.Duration
	// inflationShort/inflationLong bound the dynamic-compilation penalty.
	inflationShort, inflationLong float64
	// inflationHalf is the length scale of the hyperbolic inflation decay;
	// chosen >= base/perToken so dynamic latency stays monotone in length.
	inflationHalf float64
	// batchAlpha is the marginal cost of one extra sequence in a batch
	// relative to a full execution: batch latency = lat * (1 + alpha*(b-1)).
	// Batching amortizes launch overhead and raises GPU utilization, so
	// alpha < 1 (default 0.5 — batch 8 yields ~1.8x throughput, in line
	// with measured BERT batching gains at these sequence lengths).
	batchAlpha float64
}

// CalibrationError is returned when latency anchors cannot produce a
// physically sensible model.
type CalibrationError struct {
	Arch   string
	Reason string
}

// Error implements the error interface.
func (e *CalibrationError) Error() string {
	return fmt.Sprintf("model %s: calibration failed: %s", e.Arch, e.Reason)
}

// Calibrate builds a LatencyModel from two measured static-runtime anchors:
// the latency at one tile step (lenA = TileStep) and at MaxLength. The
// inflation pair bounds the dynamic-compilation penalty (short, long).
func Calibrate(arch Arch, latAtTile, latAtMax time.Duration, inflationShort, inflationLong float64) (*LatencyModel, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	if latAtTile <= 0 || latAtMax <= latAtTile {
		return nil, &CalibrationError{arch.Name, fmt.Sprintf("need 0 < lat(tile)=%v < lat(max)=%v", latAtTile, latAtMax)}
	}
	if inflationShort < 1 || inflationLong < 1 {
		return nil, &CalibrationError{arch.Name, "inflation factors must be >= 1"}
	}
	spanTokens := arch.MaxLength - arch.TileStep
	if spanTokens <= 0 {
		return nil, &CalibrationError{arch.Name, "MaxLength must exceed TileStep"}
	}
	perToken := (latAtMax - latAtTile) / time.Duration(spanTokens)
	base := latAtTile - time.Duration(arch.TileStep)*perToken
	if base < 0 {
		return nil, &CalibrationError{arch.Name, "anchors imply negative fixed overhead (super-linear scaling); use closer anchors"}
	}
	half := float64(arch.TileStep)
	if perToken > 0 {
		if byBase := float64(base) / float64(perToken); byBase > half {
			half = byBase
		}
	}
	return &LatencyModel{
		arch:           arch,
		base:           base,
		perToken:       perToken,
		inflationShort: inflationShort,
		inflationLong:  inflationLong,
		inflationHalf:  half,
		batchAlpha:     0.5,
	}, nil
}

// BatchScale returns the latency multiplier for executing b sequences as
// one batch instead of one: 1 + alpha*(b-1) with alpha < 1 (sub-linear —
// batching amortizes kernel launches and fills the GPU). The paper fixes
// batch size 1 for its latency-sensitive setting and leaves dynamic
// batching as future work (section 6); this model supports the extension.
func (m *LatencyModel) BatchScale(b int) float64 {
	if b <= 1 {
		return 1
	}
	return 1 + m.batchAlpha*float64(b-1)
}

// SetBatchAlpha overrides the marginal batch cost (must be in (0, 1]).
func (m *LatencyModel) SetBatchAlpha(alpha float64) error {
	if alpha <= 0 || alpha > 1 {
		return fmt.Errorf("model %s: batch alpha must be in (0, 1], got %v", m.arch.Name, alpha)
	}
	m.batchAlpha = alpha
	return nil
}

// Arch returns the architecture this model was calibrated for.
func (m *LatencyModel) Arch() Arch { return m.arch }

// StaticLatency returns the computation time of a statically compiled
// runtime with the given max_length. Every request served by that runtime,
// regardless of its own length, costs exactly this much (zero padding).
func (m *LatencyModel) StaticLatency(maxLength int) time.Duration {
	eff := m.arch.RoundUp(maxLength)
	return m.base + time.Duration(eff)*m.perToken
}

// IdealStaticLatency returns the computation time of a request of length
// seqLen on the smallest static runtime that fits it — the "actual
// computation time" baseline the paper compares padding overhead against.
func (m *LatencyModel) IdealStaticLatency(seqLen int) time.Duration {
	return m.StaticLatency(m.arch.RoundUp(seqLen))
}

// DynamicInflation returns the dynamic-compilation latency penalty for a
// request of length seqLen. Kernel-dispatch overhead dominates short
// sequences, so the penalty decays hyperbolically from the short-sequence
// bound toward the long-sequence bound: infl(s) = long + (short-long) *
// half/(s+half). The half-length is chosen so the inflated latency remains
// monotone increasing in sequence length.
func (m *LatencyModel) DynamicInflation(seqLen int) float64 {
	if seqLen < 0 {
		seqLen = 0
	}
	if seqLen > m.arch.MaxLength {
		seqLen = m.arch.MaxLength
	}
	decay := m.inflationHalf / (float64(seqLen) + m.inflationHalf)
	return m.inflationLong + (m.inflationShort-m.inflationLong)*decay
}

// DynamicLatency returns the computation time of a request of length seqLen
// on a dynamically compiled runtime: exact-shape execution (no padding, no
// tile rounding) inflated by the dynamic-compilation penalty.
func (m *LatencyModel) DynamicLatency(seqLen int) time.Duration {
	if seqLen <= 0 {
		seqLen = 1
	}
	exact := m.base + time.Duration(seqLen)*m.perToken
	return time.Duration(float64(exact) * m.DynamicInflation(seqLen))
}

// Latency dispatches on compilation mode: for Static, maxLength selects the
// runtime and seqLen is ignored (padding); for Dynamic, seqLen drives cost.
func (m *LatencyModel) Latency(c Compilation, maxLength, seqLen int) time.Duration {
	if c == Dynamic {
		return m.DynamicLatency(seqLen)
	}
	return m.StaticLatency(maxLength)
}

// PaddingInflation returns how much longer a request of length seqLen takes
// on a static runtime with the given max_length than on its ideal runtime
// (e.g. the paper's 4.28x for a length-20 request on a 512 runtime).
func (m *LatencyModel) PaddingInflation(seqLen, maxLength int) float64 {
	ideal := m.IdealStaticLatency(seqLen)
	if ideal <= 0 {
		return 1
	}
	return float64(m.StaticLatency(maxLength)) / float64(ideal)
}
