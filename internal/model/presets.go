package model

import "time"

// Architecture presets for the three models the paper profiles (Fig. 2).
var (
	// BertBaseArch is BERT-Base: 12 layers, hidden 768, 12 heads, FP32
	// TensorRT compilation, 64-token tile step (paper section 3.3).
	BertBaseArch = Arch{
		Name:         "bert-base",
		Layers:       12,
		Hidden:       768,
		Heads:        12,
		Intermediate: 3072,
		MaxLength:    512,
		TileStep:     64,
	}

	// BertLargeArch is BERT-Large: 24 layers, hidden 1024, 16 heads.
	BertLargeArch = Arch{
		Name:         "bert-large",
		Layers:       24,
		Hidden:       1024,
		Heads:        16,
		Intermediate: 4096,
		MaxLength:    512,
		TileStep:     64,
	}

	// DollyArch approximates Dolly-v2-3b compiled FP16 with TVM Unity
	// (used only for the Fig. 2c dynamic-compilation comparison).
	DollyArch = Arch{
		Name:         "dolly",
		Layers:       32,
		Hidden:       2560,
		Heads:        32,
		Intermediate: 10240,
		MaxLength:    512,
		TileStep:     64,
	}
)

// Latency anchors measured in the paper on an RTX 3090 (Fig. 2 and section
// 2.2): BERT-Base lat(512)=4.86 ms with a 4.22x span from length 64;
// BERT-Large spans 5.25x and its 3x SLO (450 ms vs 150 ms) fixes the scale;
// TensorRT dynamic-shape inflation ranges 3.56x (short) to 1.22x (long);
// Dolly under TVM Unity averages 2.86x.
const (
	bertBaseLatTile  = 1150 * time.Microsecond // 4.86 ms / 4.22
	bertBaseLatMax   = 4860 * time.Microsecond
	bertLargeLatTile = 2500 * time.Microsecond
	bertLargeLatMax  = 13120 * time.Microsecond // 5.25x of tile latency
	dollyLatTile     = 6000 * time.Microsecond
	dollyLatMax      = 34000 * time.Microsecond

	tensorRTInflationShort = 3.56
	tensorRTInflationLong  = 1.22
	tvmInflationShort      = 3.4
	tvmInflationLong       = 2.7 // averages ~2.86x over the length range
)

// BertBase returns the calibrated latency model for BERT-Base (TensorRT).
func BertBase() *LatencyModel {
	return mustCalibrate(BertBaseArch, bertBaseLatTile, bertBaseLatMax, tensorRTInflationShort, tensorRTInflationLong)
}

// BertLarge returns the calibrated latency model for BERT-Large (TensorRT).
func BertLarge() *LatencyModel {
	return mustCalibrate(BertLargeArch, bertLargeLatTile, bertLargeLatMax, tensorRTInflationShort, tensorRTInflationLong)
}

// Dolly returns the calibrated latency model for Dolly (TVM Unity, FP16).
func Dolly() *LatencyModel {
	return mustCalibrate(DollyArch, dollyLatTile, dollyLatMax, tvmInflationShort, tvmInflationLong)
}

// ByName returns the preset latency model with the given architecture name.
// It returns nil when the name is unknown.
func ByName(name string) *LatencyModel {
	switch name {
	case BertBaseArch.Name:
		return BertBase()
	case BertLargeArch.Name:
		return BertLarge()
	case DollyArch.Name:
		return Dolly()
	default:
		return nil
	}
}

// SLO returns the paper's service level objective for a preset architecture
// (150 ms for BERT-Base, 450 ms for BERT-Large) and false for others.
func SLO(arch Arch) (time.Duration, bool) {
	switch arch.Name {
	case BertBaseArch.Name:
		return 150 * time.Millisecond, true
	case BertLargeArch.Name:
		return 450 * time.Millisecond, true
	default:
		return 0, false
	}
}

func mustCalibrate(a Arch, latTile, latMax time.Duration, inflS, inflL float64) *LatencyModel {
	m, err := Calibrate(a, latTile, latMax, inflS, inflL)
	if err != nil {
		panic(err) // presets are compile-time constants; failure is a programming error
	}
	return m
}
