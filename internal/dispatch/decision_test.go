package dispatch

import (
	"context"
	"testing"

	"arlo/internal/queue"
)

// TestDecisionPaperExample re-runs the Fig. 5 walk-through through
// DispatchCtx and checks the Decision record matches the algorithm trace:
// ideal level 2 (256) congested, chosen level 3 (512), two levels peeked.
func TestDecisionPaperExample(t *testing.T) {
	ml := fig5Queue(t)
	rs, err := NewRequestSchedulerParams(ml, 0.85, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	in, dec, err := rs.DispatchCtx(context.Background(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if in.ID != 40 {
		t.Errorf("instance = %d, want 40", in.ID)
	}
	if dec.IdealLevel != 2 {
		t.Errorf("ideal level = %d, want 2 (max_length 256)", dec.IdealLevel)
	}
	if dec.Level != 3 {
		t.Errorf("chosen level = %d, want 3 (max_length 512)", dec.Level)
	}
	if dec.Peeked != 2 {
		t.Errorf("peeked = %d, want 2 (256 congested, 512 taken)", dec.Peeked)
	}
	if dec.Fallback {
		t.Error("fallback set on a normal demotion")
	}
}

func TestDecisionNoDemotionWhenIdle(t *testing.T) {
	ml := fig5Queue(t)
	rs, err := NewRequestSchedulerParams(ml, 0.85, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, dec, err := rs.DispatchCtx(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if dec.IdealLevel != 0 || dec.Level != 0 {
		t.Errorf("levels = (%d, %d), want (0, 0)", dec.IdealLevel, dec.Level)
	}
	if dec.Peeked != 1 {
		t.Errorf("peeked = %d, want 1", dec.Peeked)
	}
}

// TestDecisionFallback congests every candidate level so the scheduler
// takes the Algorithm 1 lines 18-20 fallback and marks the decision.
func TestDecisionFallback(t *testing.T) {
	ml, err := queue.NewMultiLevel([]int{64, 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := ml.Add(queue.NewInstance(1, 0, 10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := ml.Add(queue.NewInstance(2, 1, 10, 10)); err != nil {
		t.Fatal(err)
	}
	rs, err := NewRequestScheduler(ml)
	if err != nil {
		t.Fatal(err)
	}
	in, dec, err := rs.DispatchCtx(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Fallback {
		t.Error("fallback not set with every level congested")
	}
	if dec.Peeked != 2 {
		t.Errorf("peeked = %d, want 2", dec.Peeked)
	}
	if in.ID != 1 || dec.Level != 0 {
		t.Errorf("fallback chose instance %d level %d, want top candidate (1, 0)", in.ID, dec.Level)
	}
}

// TestAllPoliciesImplementContextDispatcher exercises every policy
// through the context-first entry point and checks the decision levels
// are sane (chosen never below ideal for schedulers that demote; never
// negative for any).
func TestAllPoliciesImplementContextDispatcher(t *testing.T) {
	for _, name := range []string{"RS", "ILB", "IG", "LL", "INFaaS"} {
		ml := fig5Queue(t)
		d, err := New(name, ml)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cd, ok := d.(ContextDispatcher)
		if !ok {
			t.Fatalf("%s: does not implement ContextDispatcher", name)
		}
		in, dec, err := cd.DispatchCtx(context.Background(), 200)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if in == nil {
			t.Fatalf("%s: nil instance without error", name)
		}
		if dec.Level != in.Runtime {
			t.Errorf("%s: decision level %d != instance runtime %d", name, dec.Level, in.Runtime)
		}
		if dec.IdealLevel < 0 || dec.Peeked < 1 {
			t.Errorf("%s: implausible decision %+v", name, dec)
		}
	}
}

// TestDispatchAndDispatchCtxAgree pins the compatibility contract: the
// deprecated-style Dispatch and the context-first DispatchCtx pick the
// same instance from the same queue state.
func TestDispatchAndDispatchCtxAgree(t *testing.T) {
	a := fig5Queue(t)
	b := fig5Queue(t)
	rsA, err := NewRequestSchedulerParams(a, 0.85, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	rsB, err := NewRequestSchedulerParams(b, 0.85, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, length := range []int{30, 100, 200, 400, 512} {
		inA, errA := rsA.Dispatch(length)
		inB, _, errB := rsB.DispatchCtx(context.Background(), length)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("length %d: error mismatch %v vs %v", length, errA, errB)
		}
		if errA != nil {
			continue
		}
		if inA.ID != inB.ID {
			t.Errorf("length %d: Dispatch chose %d, DispatchCtx chose %d", length, inA.ID, inB.ID)
		}
	}
}
