// Package dispatch implements Arlo's Request Scheduler (paper section 3.4,
// Algorithm 1) and the dispatching baselines it is evaluated against:
// intra-group load balance (ILB), inter-group greedy (IG), plain global
// least-loaded (LL, the ST/DT policy), and INFaaS-style bin packing. All
// dispatchers operate on the multi-level queue of package queue and share
// a common interface so systems can swap policies.
//
// Every dispatcher is safe for concurrent use: policies hold only
// read-only configuration and delegate all synchronization to the
// lock-striped multi-level queue, so a cluster can run Dispatch from many
// goroutines without a global lock. Candidate levels are walked in
// ascending level index — the package-wide lock order — and no policy
// holds more than one level stripe at a time, so concurrent dispatches
// cannot deadlock.
package dispatch

import (
	"context"
	"errors"
	"fmt"

	"arlo/internal/queue"
)

// ErrTooLong is returned when a request exceeds every deployed runtime's
// max_length.
var ErrTooLong = errors.New("dispatch: request longer than every runtime")

// ErrNoInstances is returned when no instance is deployed for any
// candidate runtime (e.g. mid-replacement).
var ErrNoInstances = errors.New("dispatch: no instance available for the request")

// Dispatcher selects an instance for an arriving request and records the
// dispatch on the multi-level queue (the instance's outstanding count is
// incremented). Completion must be reported back via the queue's
// OnComplete. Implementations are safe for concurrent use.
type Dispatcher interface {
	// Dispatch routes one request of the given token length.
	Dispatch(length int) (*queue.Instance, error)
	// Name identifies the policy in experiment output.
	Name() string
}

// Decision is the observable outcome of one dispatch: which runtime level
// the request ideally belonged to, where it actually went, and how the
// policy got there. It is returned by value so recording a decision never
// allocates on the dispatch hot path.
type Decision struct {
	// IdealLevel is the least-padding feasible runtime level — the head
	// of the Algorithm 1 candidate set Q_e.
	IdealLevel int
	// Level is the runtime level of the chosen instance. Level >
	// IdealLevel means the request was demoted.
	Level int
	// Peeked is how many candidate levels the policy examined before
	// choosing.
	Peeked int
	// Fallback reports that every peeked level was congested and the
	// policy fell back to the top candidate (Algorithm 1 lines 18-20).
	Fallback bool
}

// ContextDispatcher is the context-aware dispatch interface: the context
// carries the request's deadline and cancellation downstream (the queue
// walk itself is nanosecond-scale and never blocks, so policies treat the
// context as advisory — enforcement while queued happens in the cluster),
// and the returned Decision feeds the observability plane's demotion
// counters and span records. All policies in this package implement it;
// their plain Dispatch methods are thin wrappers that drop the Decision.
type ContextDispatcher interface {
	Dispatcher
	// DispatchCtx routes one request of the given token length and
	// reports the routing decision.
	DispatchCtx(ctx context.Context, length int) (*queue.Instance, Decision, error)
}

// GroupDispatcher is the amortized-dispatch interface of the batched
// ingress path: DispatchStale routes exactly like DispatchCtx but records
// the dispatch with queue.MultiLevel.OnDispatchStale — the outstanding
// count is incremented, the chosen level's heap repair is deferred. The
// caller owns the repair: it must call MultiLevel.Reheap once on every
// level it dispatched into before the group ends, turning G stripe-lock
// acquisitions into one per touched level. Within a group the policy may
// therefore read level fronts whose rank is stale by up to the group size
// (their congestion counts stay exact); see the queue package for the
// trade-off.
type GroupDispatcher interface {
	ContextDispatcher
	// DispatchStale routes one request with deferred heap repair.
	DispatchStale(length int) (*queue.Instance, Decision, error)
}

// RequestScheduler is Arlo's multi-level-queue heuristic (Algorithm 1).
// It walks candidate runtimes in increasing max_length order, accepting
// the first whose least-loaded instance is below a congestion threshold
// that decays by Alpha per level, peeking at most MaxPeek levels, and
// falling back to the top (least padding) candidate when every peeked
// level is congested.
type RequestScheduler struct {
	ml *queue.MultiLevel
	// Lambda is the initial congestion threshold (paper default 0.85).
	Lambda float64
	// Alpha is the per-level threshold decay (paper default 0.9).
	Alpha float64
	// MaxPeek is L, the maximum number of candidate levels examined
	// (paper default 6).
	MaxPeek int
}

// NewRequestScheduler builds the scheduler over a multi-level queue with
// the paper's default parameters (lambda 0.85, alpha 0.9, L 6).
func NewRequestScheduler(ml *queue.MultiLevel) (*RequestScheduler, error) {
	return NewRequestSchedulerParams(ml, 0.85, 0.9, 6)
}

// NewRequestSchedulerParams builds the scheduler with explicit parameters.
func NewRequestSchedulerParams(ml *queue.MultiLevel, lambda, alpha float64, maxPeek int) (*RequestScheduler, error) {
	if ml == nil {
		return nil, fmt.Errorf("dispatch: nil multi-level queue")
	}
	if lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("dispatch: lambda must be in (0, 1], got %v", lambda)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("dispatch: alpha must be in (0, 1], got %v", alpha)
	}
	if maxPeek < 1 {
		return nil, fmt.Errorf("dispatch: max peek level must be >= 1, got %d", maxPeek)
	}
	return &RequestScheduler{ml: ml, Lambda: lambda, Alpha: alpha, MaxPeek: maxPeek}, nil
}

// Name implements Dispatcher.
func (rs *RequestScheduler) Name() string { return "RS" }

// Dispatch implements Algorithm 1. The multi-level peek walk (lines 6-17)
// reads level heads lock-free in ascending level order; only the final
// OnDispatch takes the chosen instance's level stripe.
func (rs *RequestScheduler) Dispatch(length int) (*queue.Instance, error) {
	in, _, err := rs.dispatch(length)
	return in, err
}

// DispatchCtx implements ContextDispatcher.
func (rs *RequestScheduler) DispatchCtx(_ context.Context, length int) (*queue.Instance, Decision, error) {
	return rs.dispatch(length)
}

// DispatchStale implements GroupDispatcher: the Algorithm 1 walk with the
// chosen level's heap repair deferred to the caller's per-group Reheap.
func (rs *RequestScheduler) DispatchStale(length int) (*queue.Instance, Decision, error) {
	in, dec, err := rs.pick(length)
	if err != nil {
		return nil, dec, err
	}
	rs.ml.OnDispatchStale(in)
	return in, dec, nil
}

func (rs *RequestScheduler) dispatch(length int) (*queue.Instance, Decision, error) {
	in, dec, err := rs.pick(length)
	if err != nil {
		return nil, dec, err
	}
	rs.ml.OnDispatch(in) // lines 21-22
	return in, dec, nil
}

// pick runs the Algorithm 1 selection walk without recording the
// dispatch; dispatch and DispatchStale differ only in how the pick is
// accounted on the queue.
func (rs *RequestScheduler) pick(length int) (*queue.Instance, Decision, error) {
	var dec Decision
	cands := rs.ml.CandidateLevels(length) // line 2
	if len(cands) == 0 {
		return nil, dec, ErrTooLong
	}
	dec.IdealLevel = cands[0]
	peek := cands
	if len(peek) > rs.MaxPeek { // lines 3-5
		peek = peek[:rs.MaxPeek]
	}
	lambda := rs.Lambda
	var chosen *queue.Instance
	for _, lvl := range peek { // lines 6-17
		dec.Peeked++
		head := rs.ml.Level(lvl).Front()
		if head == nil {
			// No instance currently deployed at this level; treat as
			// fully congested and move on.
			lambda *= rs.Alpha
			continue
		}
		if head.Congestion() < lambda { // lines 9-13
			chosen = head
			break
		}
		lambda *= rs.Alpha // line 15
	}
	if chosen == nil { // lines 18-20: fall back to the top candidate
		dec.Fallback = true
		for _, lvl := range cands {
			if head := rs.ml.Level(lvl).Front(); head != nil {
				chosen = head
				break
			}
		}
	}
	if chosen == nil {
		return nil, dec, ErrNoInstances
	}
	dec.Level = chosen.Runtime
	return chosen, dec, nil
}

// ILB is the Intra-group Load Balance baseline (Table 4): every request
// goes to its ideal (least padding) runtime, load-balanced across that
// runtime's instances, never demoted.
type ILB struct {
	ml *queue.MultiLevel
}

// NewILB builds the baseline over a multi-level queue.
func NewILB(ml *queue.MultiLevel) (*ILB, error) {
	if ml == nil {
		return nil, fmt.Errorf("dispatch: nil multi-level queue")
	}
	return &ILB{ml: ml}, nil
}

// Name implements Dispatcher.
func (d *ILB) Name() string { return "ILB" }

// Dispatch implements Dispatcher: least-loaded instance of the first
// candidate level that has instances.
func (d *ILB) Dispatch(length int) (*queue.Instance, error) {
	in, _, err := d.dispatch(length)
	return in, err
}

// DispatchCtx implements ContextDispatcher.
func (d *ILB) DispatchCtx(_ context.Context, length int) (*queue.Instance, Decision, error) {
	return d.dispatch(length)
}

func (d *ILB) dispatch(length int) (*queue.Instance, Decision, error) {
	var dec Decision
	cands := d.ml.CandidateLevels(length)
	if len(cands) == 0 {
		return nil, dec, ErrTooLong
	}
	dec.IdealLevel = cands[0]
	for _, lvl := range cands {
		dec.Peeked++
		if head := d.ml.Level(lvl).Front(); head != nil {
			dec.Level = head.Runtime
			d.ml.OnDispatch(head)
			return head, dec, nil
		}
	}
	return nil, dec, ErrNoInstances
}

// IG is the Inter-groups Greedy baseline (Table 4): every request goes to
// the least busy instance among all candidate runtimes, regardless of
// padding cost.
type IG struct {
	ml *queue.MultiLevel
}

// NewIG builds the baseline over a multi-level queue.
func NewIG(ml *queue.MultiLevel) (*IG, error) {
	if ml == nil {
		return nil, fmt.Errorf("dispatch: nil multi-level queue")
	}
	return &IG{ml: ml}, nil
}

// Name implements Dispatcher.
func (d *IG) Name() string { return "IG" }

// Dispatch implements Dispatcher: global least-outstanding across all
// candidate levels (each level's head is its least-loaded instance).
// Ties keep the earlier (smaller max_length) level's head.
func (d *IG) Dispatch(length int) (*queue.Instance, error) {
	in, _, err := d.dispatch(length)
	return in, err
}

// DispatchCtx implements ContextDispatcher.
func (d *IG) DispatchCtx(_ context.Context, length int) (*queue.Instance, Decision, error) {
	return d.dispatch(length)
}

func (d *IG) dispatch(length int) (*queue.Instance, Decision, error) {
	var dec Decision
	cands := d.ml.CandidateLevels(length)
	if len(cands) == 0 {
		return nil, dec, ErrTooLong
	}
	dec.IdealLevel = cands[0]
	dec.Peeked = len(cands)
	var best *queue.Instance
	bestOut := 0
	for _, lvl := range cands {
		head := d.ml.Level(lvl).Front()
		if head == nil {
			continue
		}
		// Snapshot the count once so the comparison and the recorded
		// choice agree even while completions race.
		if o := head.Outstanding(); best == nil || o < bestOut {
			best, bestOut = head, o
		}
	}
	if best == nil {
		return nil, dec, ErrNoInstances
	}
	dec.Level = best.Runtime
	d.ml.OnDispatch(best)
	return best, dec, nil
}

// LeastLoaded is the plain global least-loaded policy the single-runtime
// baselines (ST/DT) degenerate to: route to the least busy length-feasible
// instance, breaking ties by instance ID across all candidate levels. It
// differs from IG only in the tie-break — IG prefers the earlier level's
// head, LeastLoaded the globally smallest ID — which makes it the natural
// policy when levels carry no padding-cost meaning (one runtime, or
// homogeneous replicas).
type LeastLoaded struct {
	ml *queue.MultiLevel
}

// NewLeastLoaded builds the baseline over a multi-level queue.
func NewLeastLoaded(ml *queue.MultiLevel) (*LeastLoaded, error) {
	if ml == nil {
		return nil, fmt.Errorf("dispatch: nil multi-level queue")
	}
	return &LeastLoaded{ml: ml}, nil
}

// Name implements Dispatcher.
func (d *LeastLoaded) Name() string { return "LL" }

// Dispatch implements Dispatcher.
func (d *LeastLoaded) Dispatch(length int) (*queue.Instance, error) {
	in, _, err := d.dispatch(length)
	return in, err
}

// DispatchCtx implements ContextDispatcher.
func (d *LeastLoaded) DispatchCtx(_ context.Context, length int) (*queue.Instance, Decision, error) {
	return d.dispatch(length)
}

func (d *LeastLoaded) dispatch(length int) (*queue.Instance, Decision, error) {
	var dec Decision
	cands := d.ml.CandidateLevels(length)
	if len(cands) == 0 {
		return nil, dec, ErrTooLong
	}
	dec.IdealLevel = cands[0]
	dec.Peeked = len(cands)
	var best *queue.Instance
	bestOut := 0
	for _, lvl := range cands {
		head := d.ml.Level(lvl).Front()
		if head == nil {
			continue
		}
		o := head.Outstanding()
		if best == nil || o < bestOut || (o == bestOut && head.ID < best.ID) {
			best, bestOut = head, o
		}
	}
	if best == nil {
		return nil, dec, ErrNoInstances
	}
	dec.Level = best.Runtime
	d.ml.OnDispatch(best)
	return best, dec, nil
}

// BinPacking is the INFaaS-style dispatcher (section 2.3, 5): requests
// are packed onto already-busy instances that satisfy the length
// requirement, up to a small per-instance bin depth (INFaaS packs work
// into batches on as few instances as possible rather than spreading it),
// spilling to the next instance once a bin fills; with every bin full it
// degrades to the global least-loaded instance. It is length-feasible but
// neither padding- nor dynamics-aware — the two deficiencies the paper
// attributes to INFaaS.
type BinPacking struct {
	ml *queue.MultiLevel
	// PackDepth is the bin size: the outstanding count up to which an
	// instance keeps accepting packed requests (default 4).
	PackDepth int
}

// NewBinPacking builds the INFaaS-style dispatcher.
func NewBinPacking(ml *queue.MultiLevel) (*BinPacking, error) {
	if ml == nil {
		return nil, fmt.Errorf("dispatch: nil multi-level queue")
	}
	return &BinPacking{ml: ml, PackDepth: 4}, nil
}

// Name implements Dispatcher.
func (d *BinPacking) Name() string { return "INFaaS" }

// Dispatch implements Dispatcher. Selection is fully deterministic:
// earlier (smaller max_length) levels win ties, and within a level ties
// break toward the smaller instance ID — independent of the heaps'
// internal array order.
func (d *BinPacking) Dispatch(length int) (*queue.Instance, error) {
	in, _, err := d.dispatch(length)
	return in, err
}

// DispatchCtx implements ContextDispatcher. Fallback reports that every
// bin was full and the policy degraded to global least-loaded.
func (d *BinPacking) DispatchCtx(_ context.Context, length int) (*queue.Instance, Decision, error) {
	return d.dispatch(length)
}

func (d *BinPacking) dispatch(length int) (*queue.Instance, Decision, error) {
	var dec Decision
	cands := d.ml.CandidateLevels(length)
	if len(cands) == 0 {
		return nil, dec, ErrTooLong
	}
	dec.IdealLevel = cands[0]
	dec.Peeked = len(cands)
	var (
		packed, fallback       *queue.Instance
		packedOut, fallbackOut int
		buf                    [64]*queue.Instance
		scan                   = buf[:0]
	)
	for _, lvl := range cands {
		scan = d.ml.Level(lvl).AppendInstances(scan[:0])
		for _, in := range scan {
			o := in.Outstanding()
			if o < d.PackDepth {
				// Fullest bin below the depth wins; earlier (smaller)
				// levels win ties, then smaller IDs.
				if packed == nil || o > packedOut ||
					(o == packedOut && in.Runtime == packed.Runtime && in.ID < packed.ID) {
					packed, packedOut = in, o
				}
			}
			if fallback == nil || o < fallbackOut ||
				(o == fallbackOut && in.Runtime == fallback.Runtime && in.ID < fallback.ID) {
				fallback, fallbackOut = in, o
			}
		}
	}
	chosen := packed
	if chosen == nil {
		dec.Fallback = true
		chosen = fallback
	}
	if chosen == nil {
		return nil, dec, ErrNoInstances
	}
	dec.Level = chosen.Runtime
	d.ml.OnDispatch(chosen)
	return chosen, dec, nil
}

// Compile-time checks: every built-in policy is context-aware.
var (
	_ ContextDispatcher = (*RequestScheduler)(nil)
	_ ContextDispatcher = (*ILB)(nil)
	_ ContextDispatcher = (*IG)(nil)
	_ ContextDispatcher = (*LeastLoaded)(nil)
	_ ContextDispatcher = (*BinPacking)(nil)
)

// New returns the named dispatcher over the multi-level queue: "RS",
// "ILB", "IG", "LL", or "INFaaS".
func New(name string, ml *queue.MultiLevel) (Dispatcher, error) {
	switch name {
	case "RS":
		return NewRequestScheduler(ml)
	case "ILB":
		return NewILB(ml)
	case "IG":
		return NewIG(ml)
	case "LL":
		return NewLeastLoaded(ml)
	case "INFaaS":
		return NewBinPacking(ml)
	default:
		return nil, fmt.Errorf("dispatch: unknown policy %q", name)
	}
}
