package dispatch_test

import (
	"fmt"
	"log"

	"arlo/internal/dispatch"
	"arlo/internal/queue"
)

// ExampleRequestScheduler_Dispatch replays the paper's Fig. 5 example: a
// length-200 request skips the congested 256-runtime head (54/60 >= the
// 0.85 threshold) and is demoted to the 512 head (28/48 < 0.765).
func ExampleRequestScheduler_Dispatch() {
	ml, err := queue.NewMultiLevel([]int{64, 128, 256, 512})
	if err != nil {
		log.Fatal(err)
	}
	instances := []*queue.Instance{
		queue.NewInstance(30, 2, 54, 60),
		queue.NewInstance(31, 2, 58, 60),
		queue.NewInstance(40, 3, 28, 48),
		queue.NewInstance(41, 3, 40, 48),
	}
	for _, in := range instances {
		if err := ml.Add(in); err != nil {
			log.Fatal(err)
		}
	}
	rs, err := dispatch.NewRequestSchedulerParams(ml, 0.85, 0.9, 3)
	if err != nil {
		log.Fatal(err)
	}
	in, err := rs.Dispatch(200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance %d (max_length %d), outstanding now %d\n",
		in.ID, ml.MaxLength(in.Runtime), in.Outstanding())
	// Output:
	// instance 40 (max_length 512), outstanding now 29
}
