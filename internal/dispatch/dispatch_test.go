package dispatch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"arlo/internal/queue"
)

// fig5Queue reproduces the paper's Fig. 5 example: four runtimes with
// max_lengths 64/128/256/512; head-instance loads and capacities as drawn.
func fig5Queue(t *testing.T) *queue.MultiLevel {
	t.Helper()
	ml, err := queue.NewMultiLevel([]int{64, 128, 256, 512})
	if err != nil {
		t.Fatal(err)
	}
	add := func(id, runtime, outstanding, capacity int) {
		t.Helper()
		if err := ml.Add(queue.NewInstance(id, runtime, outstanding, capacity)); err != nil {
			t.Fatal(err)
		}
	}
	// Level Q1 (64): irrelevant for the length-200 request.
	add(10, 0, 30, 120)
	// Level Q2 (128): nothing (request length 200 skips it anyway).
	add(20, 1, 40, 80)
	// Level Q3 (256): head instance 54/60 — congested (0.9 > 0.85).
	add(30, 2, 54, 60)
	add(31, 2, 58, 60)
	// Level Q4 (512): head instance 28/48 — 0.583 < 0.765.
	add(40, 3, 28, 48)
	add(41, 3, 40, 48)
	return ml
}

func TestAlgorithm1PaperExample(t *testing.T) {
	// The paper's walk-through: a length-200 request with lambda 0.85,
	// alpha 0.9, L 3 skips the congested 256 runtime (54/60 >= 0.85) and
	// lands on the 512 head (28/48 < 0.765).
	ml := fig5Queue(t)
	rs, err := NewRequestSchedulerParams(ml, 0.85, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	in, err := rs.Dispatch(200)
	if err != nil {
		t.Fatal(err)
	}
	if in.ID != 40 {
		t.Errorf("dispatched to instance %d, want 40 (512 head)", in.ID)
	}
	if in.Outstanding() != 29 {
		t.Errorf("outstanding = %d, want 29 after dispatch", in.Outstanding())
	}
}

func TestAlgorithm1TakesIdealWhenUncongested(t *testing.T) {
	ml := fig5Queue(t)
	// Relieve the 256 head below the threshold.
	head := ml.Get(30)
	head.SetOutstanding(10)
	ml.Level(2).Update(head)
	rs, err := NewRequestScheduler(ml)
	if err != nil {
		t.Fatal(err)
	}
	in, err := rs.Dispatch(200)
	if err != nil {
		t.Fatal(err)
	}
	if in.ID != 30 {
		t.Errorf("dispatched to %d, want the ideal runtime head 30", in.ID)
	}
}

func TestAlgorithm1FallbackToTopCandidate(t *testing.T) {
	// Saturate every candidate: the request must fall back to the first
	// (least padding) candidate's head (Algorithm 1 lines 18-19).
	ml := fig5Queue(t)
	for _, id := range []int{30, 31, 40, 41} {
		in := ml.Get(id)
		in.SetOutstanding(in.MaxCapacity)
		ml.Level(in.Runtime).Update(in)
	}
	rs, err := NewRequestScheduler(ml)
	if err != nil {
		t.Fatal(err)
	}
	in, err := rs.Dispatch(200)
	if err != nil {
		t.Fatal(err)
	}
	if in.Runtime != 2 {
		t.Errorf("fallback went to runtime %d, want 2 (least padding)", in.Runtime)
	}
}

func TestAlgorithm1MaxPeekLimit(t *testing.T) {
	// With L=1 and a congested ideal runtime, no demotion can happen: the
	// fallback picks the ideal runtime again.
	ml := fig5Queue(t)
	rs, err := NewRequestSchedulerParams(ml, 0.85, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := rs.Dispatch(200)
	if err != nil {
		t.Fatal(err)
	}
	if in.Runtime != 2 {
		t.Errorf("L=1 must stay on the ideal runtime, got runtime %d", in.Runtime)
	}
}

func TestAlgorithm1SkipsEmptyLevels(t *testing.T) {
	ml, err := queue.NewMultiLevel([]int{64, 128, 256})
	if err != nil {
		t.Fatal(err)
	}
	// Only the 256 runtime has an instance.
	if err := ml.Add(queue.NewInstance(1, 2, 0, 10)); err != nil {
		t.Fatal(err)
	}
	rs, err := NewRequestScheduler(ml)
	if err != nil {
		t.Fatal(err)
	}
	in, err := rs.Dispatch(10)
	if err != nil {
		t.Fatal(err)
	}
	if in.ID != 1 {
		t.Errorf("dispatch = %d, want the only instance", in.ID)
	}
}

func TestDispatchErrors(t *testing.T) {
	ml, err := queue.NewMultiLevel([]int{64, 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"RS", "ILB", "IG", "INFaaS"} {
		d, err := New(name, ml)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Dispatch(129); err != ErrTooLong {
			t.Errorf("%s: over-long request error = %v, want ErrTooLong", name, err)
		}
		if _, err := d.Dispatch(10); err != ErrNoInstances {
			t.Errorf("%s: empty cluster error = %v, want ErrNoInstances", name, err)
		}
	}
}

func TestILBNeverDemotes(t *testing.T) {
	ml := fig5Queue(t)
	// Even with the ideal runtime saturated, ILB keeps piling on it.
	for _, id := range []int{30, 31} {
		in := ml.Get(id)
		in.SetOutstanding(in.MaxCapacity)
		ml.Level(in.Runtime).Update(in)
	}
	d, err := NewILB(ml)
	if err != nil {
		t.Fatal(err)
	}
	in, err := d.Dispatch(200)
	if err != nil {
		t.Fatal(err)
	}
	if in.Runtime != 2 {
		t.Errorf("ILB dispatched to runtime %d, want ideal runtime 2", in.Runtime)
	}
}

func TestILBBalancesWithinGroup(t *testing.T) {
	ml := fig5Queue(t)
	d, err := NewILB(ml)
	if err != nil {
		t.Fatal(err)
	}
	first, err := d.Dispatch(200)
	if err != nil {
		t.Fatal(err)
	}
	if first.ID != 30 {
		t.Fatalf("first dispatch to %d, want least-loaded 30", first.ID)
	}
	// Load instance 30 up to 59 (ties break toward the lower ID, so 30
	// absorbs the tie at 58): the next dispatch must go to 31.
	for i := 0; i < 4; i++ {
		if _, err := d.Dispatch(200); err != nil {
			t.Fatal(err)
		}
	}
	in, err := d.Dispatch(200)
	if err != nil {
		t.Fatal(err)
	}
	if in.ID != 31 {
		t.Errorf("ILB should rotate to instance 31, got %d", in.ID)
	}
}

func TestIGPicksGlobalLeastBusy(t *testing.T) {
	ml := fig5Queue(t)
	d, err := NewIG(ml)
	if err != nil {
		t.Fatal(err)
	}
	in, err := d.Dispatch(200)
	if err != nil {
		t.Fatal(err)
	}
	// Candidates' heads: 256 head has 54, 512 head has 28 — IG takes 28
	// even though 512 means more padding.
	if in.ID != 40 {
		t.Errorf("IG dispatched to %d, want 40 (globally least busy)", in.ID)
	}
	// A length-10 request sees the 64 head (30)... but the 512 head now
	// has 29: IG greedily seizes the larger runtime.
	in2, err := d.Dispatch(10)
	if err != nil {
		t.Fatal(err)
	}
	if in2.ID != 40 {
		t.Errorf("IG dispatched to %d, want 40 (outstanding 29 < 30)", in2.ID)
	}
}

func TestBinPackingFillsOneBinBeforeSpilling(t *testing.T) {
	ml, err := queue.NewMultiLevel([]int{256, 512})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 3; id++ {
		if err := ml.Add(&queue.Instance{ID: id, Runtime: id % 2, MaxCapacity: 60}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := NewBinPacking(ml)
	if err != nil {
		t.Fatal(err)
	}
	// First PackDepth dispatches all pack onto the same instance (the
	// fullest non-full bin), then spill to the next.
	first, err := d.Dispatch(200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.PackDepth-1; i++ {
		in, err := d.Dispatch(200)
		if err != nil {
			t.Fatal(err)
		}
		if in.ID != first.ID {
			t.Fatalf("dispatch %d went to %d, want packed onto %d", i, in.ID, first.ID)
		}
	}
	spill, err := d.Dispatch(200)
	if err != nil {
		t.Fatal(err)
	}
	if spill.ID == first.ID {
		t.Errorf("full bin should spill to another instance")
	}
}

func TestBinPackingFallsBackWhenSaturated(t *testing.T) {
	ml := fig5Queue(t)
	d, err := NewBinPacking(ml)
	if err != nil {
		t.Fatal(err)
	}
	// Every fig5 instance is beyond the pack depth: fallback is the
	// least-loaded candidate (instance 40, outstanding 28).
	in, err := d.Dispatch(200)
	if err != nil {
		t.Fatal(err)
	}
	if in.ID != 40 {
		t.Errorf("fallback picked %d, want 40 (least loaded candidate)", in.ID)
	}
}

func TestParamValidation(t *testing.T) {
	ml := fig5Queue(t)
	cases := []struct {
		lambda, alpha float64
		peek          int
	}{
		{0, 0.9, 6}, {1.5, 0.9, 6}, {0.85, 0, 6}, {0.85, 1.1, 6}, {0.85, 0.9, 0},
	}
	for _, tc := range cases {
		if _, err := NewRequestSchedulerParams(ml, tc.lambda, tc.alpha, tc.peek); err == nil {
			t.Errorf("params (%v, %v, %d) should fail", tc.lambda, tc.alpha, tc.peek)
		}
	}
	if _, err := NewRequestScheduler(nil); err == nil {
		t.Error("nil queue should fail")
	}
	if _, err := NewILB(nil); err == nil {
		t.Error("nil queue should fail for ILB")
	}
	if _, err := NewIG(nil); err == nil {
		t.Error("nil queue should fail for IG")
	}
	if _, err := NewBinPacking(nil); err == nil {
		t.Error("nil queue should fail for bin packing")
	}
	if _, err := New("bogus", ml); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestNamesStable(t *testing.T) {
	ml := fig5Queue(t)
	for _, name := range []string{"RS", "ILB", "IG", "INFaaS"} {
		d, err := New(name, ml)
		if err != nil {
			t.Fatal(err)
		}
		if d.Name() != name {
			t.Errorf("Name() = %q, want %q", d.Name(), name)
		}
	}
}

func TestThresholdDecaySequence(t *testing.T) {
	// Construct three levels with heads at congestion 0.80 each. With
	// lambda=0.85, alpha=0.5: level0 accepts immediately (0.80 < 0.85).
	// Raise level0 head to 0.90: level1 threshold is 0.425 < 0.80 ->
	// rejected, level2 likewise; fallback to level0.
	ml, err := queue.NewMultiLevel([]int{64, 128, 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ml.Add(queue.NewInstance(i, i, 8, 10)); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := NewRequestSchedulerParams(ml, 0.85, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	in, err := rs.Dispatch(10)
	if err != nil {
		t.Fatal(err)
	}
	if in.ID != 0 {
		t.Fatalf("0.80 < 0.85 should accept level 0, got %d", in.ID)
	}
	// Now level 0's head is at 0.9.
	in0 := ml.Get(0)
	in0.SetOutstanding(9)
	ml.Level(0).Update(in0)
	in, err = rs.Dispatch(10)
	if err != nil {
		t.Fatal(err)
	}
	if in.Runtime != 0 {
		t.Errorf("decayed thresholds reject all; fallback should be level 0, got %d", in.Runtime)
	}
}

// TestDispatchersNeverMisplaceQuick fuzzes all four policies over random
// deployments and request lengths: a dispatched request must always land
// on an instance whose runtime accepts its length, and the queue's
// outstanding accounting must stay consistent.
func TestDispatchersNeverMisplaceQuick(t *testing.T) {
	maxLens := []int{64, 128, 256, 512}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ml, err := queue.NewMultiLevel(maxLens)
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(12)
		for id := 0; id < n; id++ {
			if err := ml.Add(queue.NewInstance(id, rng.Intn(len(maxLens)), rng.Intn(50), 10+rng.Intn(50))); err != nil {
				return false
			}
		}
		policies := []Dispatcher{}
		for _, name := range []string{"RS", "ILB", "IG", "INFaaS"} {
			d, err := New(name, ml)
			if err != nil {
				return false
			}
			policies = append(policies, d)
		}
		before := ml.TotalOutstanding()
		dispatched := 0
		for i := 0; i < 60; i++ {
			length := 1 + rng.Intn(600)
			d := policies[rng.Intn(len(policies))]
			in, err := d.Dispatch(length)
			if err == ErrTooLong {
				if length <= 512 {
					return false // the 512 level always exists as a candidate
				}
				continue
			}
			if err == ErrNoInstances {
				// Legal only when no deployed instance can serve the length.
				for _, lvl := range ml.CandidateLevels(length) {
					if ml.Level(lvl).Len() > 0 {
						return false
					}
				}
				continue
			}
			if err != nil {
				return false
			}
			if maxLens[in.Runtime] < length {
				return false // misplaced
			}
			dispatched++
		}
		return ml.TotalOutstanding() == before+dispatched
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
