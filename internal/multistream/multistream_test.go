package multistream

import (
	"testing"
	"time"

	"arlo/internal/core"
	"arlo/internal/trace"
)

func twoStreams(t testing.TB, baseRate, largeRate float64, d time.Duration) []*Stream {
	t.Helper()
	base, err := core.NewSystem(core.WithModel("bert-base"))
	if err != nil {
		t.Fatal(err)
	}
	large, err := core.NewSystem(core.WithModel("bert-large"))
	if err != nil {
		t.Fatal(err)
	}
	trBase, err := trace.Generate(trace.Stable(31, baseRate, d))
	if err != nil {
		t.Fatal(err)
	}
	trLarge, err := trace.Generate(trace.Stable(33, largeRate, d))
	if err != nil {
		t.Fatal(err)
	}
	return []*Stream{
		{Name: "bert-base", System: base, Trace: trBase},
		{Name: "bert-large", System: large, Trace: trLarge},
	}
}

func TestStreamValidate(t *testing.T) {
	var nilStream *Stream
	if err := nilStream.Validate(); err == nil {
		t.Error("nil stream should fail")
	}
	a, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{Duration: time.Second}
	cases := []*Stream{
		{System: a, Trace: tr},
		{Name: "x", Trace: tr},
		{Name: "x", System: a},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestPartitionConservesAndFavorsHeavyStream(t *testing.T) {
	// Same model, very different loads: the loaded stream must get more.
	a1, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := core.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	light, err := trace.Generate(trace.Stable(1, 200, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := trace.Generate(trace.Stable(2, 2000, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	streams := []*Stream{
		{Name: "light", System: a1, Trace: light},
		{Name: "heavy", System: a2, Trace: heavy},
	}
	const g = 12
	shares, err := Partition(g, streams)
	if err != nil {
		t.Fatal(err)
	}
	if shares[0]+shares[1] != g {
		t.Fatalf("shares %v do not sum to %d", shares, g)
	}
	if shares[1] <= shares[0] {
		t.Errorf("heavy stream should receive more GPUs: %v", shares)
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(4, nil); err == nil {
		t.Error("no streams should fail")
	}
	streams := twoStreams(t, 3000, 3000, 10*time.Second)
	if _, err := Partition(1, streams); err == nil {
		t.Error("pool below the SLO minima should fail")
	}
}

func TestEvenPartition(t *testing.T) {
	got, err := EvenPartition(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EvenPartition(7,3) = %v, want %v", got, want)
		}
	}
	if _, err := EvenPartition(2, 3); err == nil {
		t.Error("too few GPUs should fail")
	}
	if _, err := EvenPartition(2, 0); err == nil {
		t.Error("zero streams should fail")
	}
}

func TestRunEndToEnd(t *testing.T) {
	streams := twoStreams(t, 1200, 400, 15*time.Second)
	const g = 14
	results, err := Run(g, streams, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	totalGPUs := 0
	for _, r := range results {
		totalGPUs += r.GPUs
		if r.Res.Completed == 0 {
			t.Errorf("stream %s completed nothing", r.Name)
		}
	}
	if totalGPUs != g {
		t.Errorf("results use %d GPUs, want %d", totalGPUs, g)
	}
	if WeightedMean(results) <= 0 {
		t.Error("weighted mean should be positive")
	}
}

func TestRunShareValidation(t *testing.T) {
	streams := twoStreams(t, 500, 300, 5*time.Second)
	if _, err := Run(10, streams, []int{5}); err == nil {
		t.Error("share dimension mismatch should fail")
	}
	if _, err := Run(10, streams, []int{4, 4}); err == nil {
		t.Error("shares not summing to pool should fail")
	}
}

// TestCoordinatedBeatsEvenSplit is the extension's headline: the demand-
// aware partition achieves a lower pool-wide weighted mean than the naive
// even split when streams have asymmetric loads.
func TestCoordinatedBeatsEvenSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four simulations")
	}
	streams := twoStreams(t, 2600, 250, 20*time.Second)
	const g = 14
	coordShares, err := Partition(g, streams)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := Run(g, streams, coordShares)
	if err != nil {
		t.Fatal(err)
	}
	evenShares, err := EvenPartition(g, len(streams))
	if err != nil {
		t.Fatal(err)
	}
	even, err := Run(g, streams, evenShares)
	if err != nil {
		t.Fatal(err)
	}
	if WeightedMean(coord) >= WeightedMean(even) {
		t.Errorf("coordinated partition %v (mean %v) should beat even %v (mean %v)",
			coordShares, WeightedMean(coord), evenShares, WeightedMean(even))
	}
}

func TestWeightedMeanEmpty(t *testing.T) {
	if WeightedMean(nil) != 0 {
		t.Error("empty results should give zero")
	}
}
