// Package multistream extends Arlo to the multiple-request-stream setting
// sketched in the paper's Discussion (section 6): each stream (a model +
// SLO + traffic pattern) runs its own dedicated Arlo, and a coordinator
// shares the GPU pool among the streams. The coordinator splits the pool
// by greedy marginal cost: every GPU goes to the stream whose predicted
// objective (the same Eq. 1-7 program each stream's Runtime Scheduler
// solves) improves the most, so a stream with heavier or longer-sequence
// traffic receives a larger share. Within its share, each stream
// schedules independently — exactly the paper's "dedicated Arlo per
// stream" deployment.
package multistream

import (
	"fmt"
	"math"
	"time"

	"arlo/internal/core"
	"arlo/internal/sim"
	"arlo/internal/trace"
)

// Stream couples one Arlo system with its traffic.
type Stream struct {
	// Name labels the stream in results.
	Name string
	// System is the stream's dedicated Arlo.
	System *core.Arlo
	// Trace is the stream's request stream.
	Trace *trace.Trace
}

// Validate reports whether the stream is usable.
func (s *Stream) Validate() error {
	switch {
	case s == nil:
		return fmt.Errorf("multistream: nil stream")
	case s.Name == "":
		return fmt.Errorf("multistream: stream without a name")
	case s.System == nil:
		return fmt.Errorf("multistream: stream %s has no system", s.Name)
	case s.Trace == nil:
		return fmt.Errorf("multistream: stream %s has no trace", s.Name)
	}
	return nil
}

// demand returns the stream's per-runtime demand estimate.
func (s *Stream) demand() []float64 { return s.System.Demand(s.Trace) }

// minGPUs returns the smallest pool the stream's allocation program
// accepts without relaxing its SLO bounds.
func minGPUs(st *Stream, q []float64) int {
	for g := 1; ; g++ {
		al, err := st.System.Allocate(g, q)
		if err == nil && !al.Relaxed {
			return g
		}
		if g > 1<<20 {
			return g // unreachable guard
		}
	}
}

// Partition splits g GPUs across the streams by greedy marginal cost.
// Each stream first receives its SLO-feasible minimum; remaining GPUs go
// one at a time to the stream with the largest predicted objective
// improvement. It returns the per-stream GPU counts, aligned with
// streams.
func Partition(g int, streams []*Stream) ([]int, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("multistream: no streams")
	}
	demands := make([][]float64, len(streams))
	shares := make([]int, len(streams))
	costs := make([]float64, len(streams))
	used := 0
	for i, st := range streams {
		if err := st.Validate(); err != nil {
			return nil, err
		}
		demands[i] = st.demand()
		shares[i] = minGPUs(st, demands[i])
		used += shares[i]
	}
	if used > g {
		return nil, fmt.Errorf("multistream: %d GPUs cannot satisfy the streams' SLO minima (%d needed)", g, used)
	}
	for i, st := range streams {
		al, err := st.System.Allocate(shares[i], demands[i])
		if err != nil {
			return nil, err
		}
		costs[i] = al.Cost
	}
	for ; used < g; used++ {
		bestIdx, bestGain := -1, -math.MaxFloat64
		bestCost := 0.0
		for i, st := range streams {
			al, err := st.System.Allocate(shares[i]+1, demands[i])
			if err != nil {
				continue
			}
			gain := costs[i] - al.Cost
			if gain > bestGain {
				bestIdx, bestGain, bestCost = i, gain, al.Cost
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("multistream: no stream accepts more GPUs")
		}
		shares[bestIdx]++
		costs[bestIdx] = bestCost
	}
	return shares, nil
}

// EvenPartition splits g GPUs evenly (leftovers to the later streams) —
// the naive baseline Partition is compared against.
func EvenPartition(g, numStreams int) ([]int, error) {
	if numStreams <= 0 {
		return nil, fmt.Errorf("multistream: no streams")
	}
	if g < numStreams {
		return nil, fmt.Errorf("multistream: %d GPUs for %d streams", g, numStreams)
	}
	out := make([]int, numStreams)
	base, rem := g/numStreams, g%numStreams
	for i := range out {
		out[i] = base
		if i >= numStreams-rem {
			out[i]++
		}
	}
	return out, nil
}

// StreamResult is one stream's outcome under a partition.
type StreamResult struct {
	Name string
	GPUs int
	Res  *sim.Result
}

// Run partitions g GPUs across the streams (using Partition when shares
// is nil) and simulates every stream within its share. Streams are
// independent once partitioned, exactly as in the paper's dedicated-Arlo
// deployment.
func Run(g int, streams []*Stream, shares []int) ([]StreamResult, error) {
	var err error
	if shares == nil {
		shares, err = Partition(g, streams)
		if err != nil {
			return nil, err
		}
	}
	if len(shares) != len(streams) {
		return nil, fmt.Errorf("multistream: %d shares for %d streams", len(shares), len(streams))
	}
	total := 0
	for _, s := range shares {
		total += s
	}
	if total != g {
		return nil, fmt.Errorf("multistream: shares sum to %d, want %d", total, g)
	}
	out := make([]StreamResult, len(streams))
	for i, st := range streams {
		res, err := st.System.Simulate(st.Trace, shares[i])
		if err != nil {
			return nil, fmt.Errorf("multistream: stream %s: %w", st.Name, err)
		}
		out[i] = StreamResult{Name: st.Name, GPUs: shares[i], Res: res}
	}
	return out, nil
}

// WeightedMean returns the request-weighted mean latency across the
// streams' results — the pool-level objective the coordinator minimizes.
func WeightedMean(results []StreamResult) time.Duration {
	var total time.Duration
	n := 0
	for _, r := range results {
		total += r.Res.Summary.Mean * time.Duration(r.Res.Completed)
		n += r.Res.Completed
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}
