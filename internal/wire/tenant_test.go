package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// TestV1GoldenBytes pins the pre-tenancy frame layout byte for byte: a V1
// request encoded today must match the exact bytes an old client produced,
// and those bytes must decode to the same request. If this test fails the
// wire revision broke deployed clients.
func TestV1GoldenBytes(t *testing.T) {
	req := Request{Kind: KindRequest, ID: 0x0102030405060708, Deadline: 0x1112131415161718,
		Mode: ModeText, Text: "hi"}
	var golden []byte
	golden = append(golden, KindRequest)
	golden = binary.LittleEndian.AppendUint64(golden, req.ID)
	golden = binary.LittleEndian.AppendUint64(golden, uint64(req.Deadline))
	golden = append(golden, ModeText)
	golden = append(golden, "hi"...)

	got := AppendRequest(nil, &req)
	if !bytes.Equal(got, golden) {
		t.Fatalf("V1 encoding drifted:\n got %x\nwant %x", got, golden)
	}
	dec, err := DecodeRequest(golden, nil)
	if err != nil {
		t.Fatalf("decode golden V1: %v", err)
	}
	if dec.ID != req.ID || dec.Deadline != req.Deadline || dec.Text != "hi" || dec.Tenant != "" {
		t.Fatalf("golden V1 decode mismatch: %+v", dec)
	}

	gen := Request{Kind: KindGenRequest, ID: 9, Mode: ModeTokens,
		Tokens: []uint32{7, 9}, MaxNewTokens: 5}
	var goldenGen []byte
	goldenGen = append(goldenGen, KindGenRequest)
	goldenGen = binary.LittleEndian.AppendUint64(goldenGen, gen.ID)
	goldenGen = binary.LittleEndian.AppendUint64(goldenGen, 0)
	goldenGen = append(goldenGen, ModeTokens)
	goldenGen = binary.LittleEndian.AppendUint32(goldenGen, 5)
	goldenGen = binary.LittleEndian.AppendUint32(goldenGen, 2)
	goldenGen = binary.LittleEndian.AppendUint32(goldenGen, 7)
	goldenGen = binary.LittleEndian.AppendUint32(goldenGen, 9)
	if got := AppendRequest(nil, &gen); !bytes.Equal(got, goldenGen) {
		t.Fatalf("V1 gen encoding drifted:\n got %x\nwant %x", got, goldenGen)
	}
	if dec, err := DecodeRequest(goldenGen, nil); err != nil || dec.MaxNewTokens != 5 || len(dec.Tokens) != 2 {
		t.Fatalf("golden V1 gen decode: %+v err=%v", dec, err)
	}
}

func TestV2RequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Kind: KindRequestV2, ID: 1, Mode: ModeText, Text: "hello", Tenant: "acme"},
		{Kind: KindRequestV2, ID: 2, Mode: ModeTokens, Tokens: []uint32{1, 2, 3}, Tenant: ""},
		{Kind: KindRequestV2, ID: 3, Deadline: 123456789, Mode: ModeText, Text: "", Tenant: "team-a.prod:eu"},
		{Kind: KindGenRequestV2, ID: 4, Mode: ModeText, Text: "gen", MaxNewTokens: 64, Tenant: "noisy"},
		{Kind: KindGenRequestV2, ID: 5, Mode: ModeTokens, Tokens: []uint32{42}, MaxNewTokens: 1, Tenant: "x"},
	}
	for _, want := range cases {
		p := AppendRequest(nil, &want)
		if p[1] != FrameVersion {
			t.Fatalf("kind %d: version byte = %d, want %d", want.Kind, p[1], FrameVersion)
		}
		got, err := DecodeRequest(p, nil)
		if err != nil {
			t.Fatalf("decode V2 %+v: %v", want, err)
		}
		if got.Kind != want.Kind || got.ID != want.ID || got.Deadline != want.Deadline ||
			got.Tenant != want.Tenant || got.MaxNewTokens != want.MaxNewTokens ||
			got.Text != want.Text || len(got.Tokens) != len(want.Tokens) {
			t.Fatalf("V2 roundtrip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestV2BadVersion(t *testing.T) {
	p := AppendRequest(nil, &Request{Kind: KindRequestV2, ID: 1, Mode: ModeText, Tenant: "t"})
	p[1] = 3
	if _, err := DecodeRequest(p, nil); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version=3 err = %v, want ErrBadVersion", err)
	}
}

func TestV2TruncatedTenant(t *testing.T) {
	p := AppendRequest(nil, &Request{Kind: KindRequestV2, ID: 1, Mode: ModeText, Tenant: "tenant"})
	// Cut into the tenant bytes: length prefix promises more than present.
	if _, err := DecodeRequest(p[:reqV2HeaderLen+3], nil); !errors.Is(err, ErrShortPayload) {
		t.Fatalf("truncated tenant err = %v, want ErrShortPayload", err)
	}
	// Missing the length prefix entirely.
	if _, err := DecodeRequest(p[:reqV2HeaderLen], nil); !errors.Is(err, ErrShortPayload) {
		t.Fatalf("missing tenant_len err = %v, want ErrShortPayload", err)
	}
}

func TestV2TenantLengthClamp(t *testing.T) {
	long := string(bytes.Repeat([]byte{'a'}, 300))
	p := AppendRequest(nil, &Request{Kind: KindRequestV2, ID: 1, Mode: ModeText, Tenant: long})
	got, err := DecodeRequest(p, nil)
	if err != nil {
		t.Fatalf("decode clamped tenant: %v", err)
	}
	if len(got.Tenant) != 255 {
		t.Fatalf("tenant len = %d, want clamp to 255", len(got.Tenant))
	}
}

func TestRateLimitedResponseRoundTrip(t *testing.T) {
	want := Response{Kind: KindResponse, ID: 77, Status: StatusRateLimited,
		RetryAfterNS: 1_500_000_000, Message: "tenant noisy over budget"}
	p := AppendResponse(nil, &want)
	got, err := DecodeResponse(p)
	if err != nil {
		t.Fatalf("decode rate-limited response: %v", err)
	}
	if got.Status != StatusRateLimited || got.RetryAfterNS != want.RetryAfterNS ||
		got.Message != want.Message || got.ID != want.ID {
		t.Fatalf("rate-limited roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Truncated retry hint is a short payload, not a silent zero.
	if _, err := DecodeResponse(p[:respHeaderLen+4]); !errors.Is(err, ErrShortPayload) {
		t.Fatalf("truncated retry hint err = %v, want ErrShortPayload", err)
	}
	if !StatusRateLimited.Retryable() {
		t.Fatal("StatusRateLimited must be retryable")
	}
	if StatusRateLimited.String() != "rate_limited" {
		t.Fatalf("String() = %q", StatusRateLimited.String())
	}
}
