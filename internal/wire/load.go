package wire

// Load-snapshot frames: the router tier's view of one shard's state,
// refreshed asynchronously on a configurable interval instead of queried
// synchronously per request. A snapshot is deliberately compact — one
// frame carries everything the routing score needs (per-runtime queue
// depth by length bucket, instance health counts, lifetime admission
// counters) so a refresh costs one small frame each way on the same
// pipelined connection the data plane uses.
//
// Load request payload:
//
//	u8 kind=7 | u64 id
//
// Load response payload:
//
//	u8 kind=8 | u64 id | u64 seq | u8 shard_len | shard |
//	u16 healthy | u16 degraded | u16 dead |
//	u64 submitted | u64 completed | u64 rejected | u32 util_milli |
//	u8 num_levels | num_levels x (u32 max_length | u32 depth |
//	                              u16 instances | u32 capacity)
//
// seq is the shard's monotonically increasing snapshot sequence number,
// so a router holding two snapshots can tell which is fresher without
// trusting clocks across machines.

import "encoding/binary"

// Load-snapshot frame kinds (continuing the request/response numbering).
const (
	// KindLoadRequest asks the shard for its current load snapshot.
	KindLoadRequest = 7
	// KindLoadResponse carries the shard's load snapshot.
	KindLoadResponse = 8
)

// LoadLevel is one runtime level's (length bucket's) load in a snapshot.
type LoadLevel struct {
	// MaxLength is the runtime's padded sequence length — the bucket
	// boundary routing buckets requests against.
	MaxLength uint32 `json:"max_length"`
	// Depth is the level's outstanding (dispatched, not completed)
	// request count.
	Depth uint32 `json:"depth"`
	// Instances is how many instances serve the level.
	Instances uint16 `json:"instances"`
	// Capacity is the level's summed SLO-feasible queue bound (Σ M_i).
	Capacity uint32 `json:"capacity"`
}

// LoadSnapshot is one shard's compact load report.
type LoadSnapshot struct {
	// ID echoes the requesting frame's multiplexing id.
	ID uint64 `json:"-"`
	// Seq is the shard's monotonically increasing snapshot sequence.
	Seq uint64 `json:"seq"`
	// Shard is the shard's self-reported name (at most 255 bytes on the
	// wire; empty when the operator never named the shard).
	Shard string `json:"shard"`
	// Healthy, Degraded and Dead count instances per serving state — the
	// same split the arlo_instance_health gauge and /healthz export.
	Healthy  uint16 `json:"healthy"`
	Degraded uint16 `json:"degraded"`
	Dead     uint16 `json:"dead"`
	// Submitted, Completed and Rejected are the shard's lifetime
	// admission counters (rejected spans every reason, including tenant
	// rate limiting).
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Rejected  uint64 `json:"rejected"`
	// UtilMilli is total outstanding work over total capacity in
	// thousandths (1000 = nominally full).
	UtilMilli uint32 `json:"util_milli"`
	// Levels is the per-runtime load, ordered by increasing MaxLength.
	Levels []LoadLevel `json:"levels"`
}

// Serviceable reports whether the shard can serve any request at all: at
// least one instance is healthy or degraded.
func (s *LoadSnapshot) Serviceable() bool { return s.Healthy+s.Degraded > 0 }

const (
	loadReqLen      = 1 + 8 // kind, id
	loadLevelLen    = 4 + 4 + 2 + 4
	maxLoadLevels   = 255
	maxLoadShardLen = 255
)

// AppendLoadRequest appends an encoded load-snapshot request payload.
func AppendLoadRequest(dst []byte, id uint64) []byte {
	dst = append(dst, KindLoadRequest)
	return binary.LittleEndian.AppendUint64(dst, id)
}

// DecodeLoadRequest parses a load-snapshot request payload, returning the
// multiplexing id.
func DecodeLoadRequest(p []byte) (uint64, error) {
	if len(p) < loadReqLen {
		return 0, ErrShortPayload
	}
	if p[0] != KindLoadRequest {
		return 0, ErrBadKind
	}
	return binary.LittleEndian.Uint64(p[1:]), nil
}

// AppendLoadSnapshot appends an encoded load-snapshot response payload.
// A Shard name beyond 255 bytes and Levels beyond 255 entries are
// truncated to the wire's one-byte length prefixes.
func AppendLoadSnapshot(dst []byte, s *LoadSnapshot) []byte {
	dst = append(dst, KindLoadResponse)
	dst = binary.LittleEndian.AppendUint64(dst, s.ID)
	dst = binary.LittleEndian.AppendUint64(dst, s.Seq)
	shard := s.Shard
	if len(shard) > maxLoadShardLen {
		shard = shard[:maxLoadShardLen]
	}
	dst = append(dst, uint8(len(shard)))
	dst = append(dst, shard...)
	dst = binary.LittleEndian.AppendUint16(dst, s.Healthy)
	dst = binary.LittleEndian.AppendUint16(dst, s.Degraded)
	dst = binary.LittleEndian.AppendUint16(dst, s.Dead)
	dst = binary.LittleEndian.AppendUint64(dst, s.Submitted)
	dst = binary.LittleEndian.AppendUint64(dst, s.Completed)
	dst = binary.LittleEndian.AppendUint64(dst, s.Rejected)
	dst = binary.LittleEndian.AppendUint32(dst, s.UtilMilli)
	levels := s.Levels
	if len(levels) > maxLoadLevels {
		levels = levels[:maxLoadLevels]
	}
	dst = append(dst, uint8(len(levels)))
	for i := range levels {
		l := &levels[i]
		dst = binary.LittleEndian.AppendUint32(dst, l.MaxLength)
		dst = binary.LittleEndian.AppendUint32(dst, l.Depth)
		dst = binary.LittleEndian.AppendUint16(dst, l.Instances)
		dst = binary.LittleEndian.AppendUint32(dst, l.Capacity)
	}
	return dst
}

// DecodeLoadSnapshot parses a load-snapshot response payload. The
// returned snapshot owns its memory (the shard name is copied), so the
// caller may retain it past the read buffer's reuse. Trailing bytes after
// the declared levels are malformed.
func DecodeLoadSnapshot(p []byte) (LoadSnapshot, error) {
	var s LoadSnapshot
	if len(p) < 1+8+8+1 {
		return s, ErrShortPayload
	}
	if p[0] != KindLoadResponse {
		return s, ErrBadKind
	}
	s.ID = binary.LittleEndian.Uint64(p[1:])
	s.Seq = binary.LittleEndian.Uint64(p[9:])
	sn := int(p[17])
	rest := p[18:]
	if len(rest) < sn {
		return s, ErrShortPayload
	}
	s.Shard = string(rest[:sn])
	rest = rest[sn:]
	if len(rest) < 2+2+2+8+8+8+4+1 {
		return s, ErrShortPayload
	}
	s.Healthy = binary.LittleEndian.Uint16(rest)
	s.Degraded = binary.LittleEndian.Uint16(rest[2:])
	s.Dead = binary.LittleEndian.Uint16(rest[4:])
	s.Submitted = binary.LittleEndian.Uint64(rest[6:])
	s.Completed = binary.LittleEndian.Uint64(rest[14:])
	s.Rejected = binary.LittleEndian.Uint64(rest[22:])
	s.UtilMilli = binary.LittleEndian.Uint32(rest[30:])
	n := int(rest[34])
	rest = rest[35:]
	if len(rest) != n*loadLevelLen {
		return s, ErrShortPayload
	}
	if n > 0 {
		s.Levels = make([]LoadLevel, n)
		for i := 0; i < n; i++ {
			off := i * loadLevelLen
			s.Levels[i] = LoadLevel{
				MaxLength: binary.LittleEndian.Uint32(rest[off:]),
				Depth:     binary.LittleEndian.Uint32(rest[off+4:]),
				Instances: binary.LittleEndian.Uint16(rest[off+8:]),
				Capacity:  binary.LittleEndian.Uint32(rest[off+10:]),
			}
		}
	}
	return s, nil
}
