package wire

import (
	"reflect"
	"strings"
	"testing"
)

func TestLoadRequestRoundTrip(t *testing.T) {
	for _, id := range []uint64{0, 1, 1<<63 + 12345} {
		p := AppendLoadRequest(nil, id)
		got, err := DecodeLoadRequest(p)
		if err != nil {
			t.Fatalf("DecodeLoadRequest(%d): %v", id, err)
		}
		if got != id {
			t.Errorf("id = %d, want %d", got, id)
		}
	}
	if _, err := DecodeLoadRequest([]byte{KindLoadRequest, 1}); err != ErrShortPayload {
		t.Errorf("short payload err = %v, want ErrShortPayload", err)
	}
	if _, err := DecodeLoadRequest(AppendLoadSnapshot(nil, &LoadSnapshot{})); err != ErrBadKind {
		t.Errorf("wrong kind err = %v, want ErrBadKind", err)
	}
}

func TestLoadSnapshotRoundTrip(t *testing.T) {
	snaps := []LoadSnapshot{
		{},
		{ID: 7, Seq: 42, Shard: "shard-a", Healthy: 3, Degraded: 1, Dead: 2,
			Submitted: 100, Completed: 90, Rejected: 10, UtilMilli: 812,
			Levels: []LoadLevel{
				{MaxLength: 128, Depth: 5, Instances: 2, Capacity: 24},
				{MaxLength: 512, Depth: 0, Instances: 1, Capacity: 4},
			}},
		{ID: 1<<64 - 1, Seq: 1<<64 - 1, Shard: strings.Repeat("x", 255),
			Levels: []LoadLevel{{MaxLength: 1<<32 - 1, Depth: 1<<32 - 1, Instances: 1<<16 - 1, Capacity: 1<<32 - 1}}},
	}
	for i, want := range snaps {
		p := AppendLoadSnapshot(nil, &want)
		got, err := DecodeLoadSnapshot(p)
		if err != nil {
			t.Fatalf("snap %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("snap %d: round trip mismatch\n got %+v\nwant %+v", i, got, want)
		}
		// Re-encode must be byte-identical: the frame has one canonical form.
		if p2 := AppendLoadSnapshot(nil, &got); string(p2) != string(p) {
			t.Errorf("snap %d: re-encode differs", i)
		}
	}
}

func TestLoadSnapshotTruncation(t *testing.T) {
	long := LoadSnapshot{Shard: strings.Repeat("n", 300), Levels: make([]LoadLevel, 300)}
	for i := range long.Levels {
		long.Levels[i].MaxLength = uint32(i)
	}
	got, err := DecodeLoadSnapshot(AppendLoadSnapshot(nil, &long))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Shard) != 255 || len(got.Levels) != 255 {
		t.Errorf("truncation: shard %d levels %d, want 255/255", len(got.Shard), len(got.Levels))
	}
}

func TestLoadSnapshotDecodeErrors(t *testing.T) {
	full := AppendLoadSnapshot(nil, &LoadSnapshot{Shard: "s", Levels: []LoadLevel{{MaxLength: 128}}})
	for n := 0; n < len(full); n++ {
		if _, err := DecodeLoadSnapshot(full[:n]); err == nil {
			t.Errorf("truncated at %d: decode succeeded", n)
		}
	}
	// Trailing garbage after the declared levels is malformed.
	if _, err := DecodeLoadSnapshot(append(append([]byte{}, full...), 0xff)); err == nil {
		t.Error("trailing byte: decode succeeded")
	}
	if _, err := DecodeLoadSnapshot([]byte{KindResponse, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err != ErrBadKind {
		t.Errorf("wrong kind err = %v, want ErrBadKind", err)
	}
}

func TestLoadSnapshotServiceable(t *testing.T) {
	cases := []struct {
		s    LoadSnapshot
		want bool
	}{
		{LoadSnapshot{Healthy: 1}, true},
		{LoadSnapshot{Degraded: 2}, true},
		{LoadSnapshot{Dead: 4}, false},
		{LoadSnapshot{}, false},
	}
	for i, c := range cases {
		if got := c.s.Serviceable(); got != c.want {
			t.Errorf("case %d: Serviceable = %v, want %v", i, got, c.want)
		}
	}
}

// FuzzLoadSnapshotDecode checks that arbitrary payloads never panic the
// decoder and that every successfully decoded snapshot survives a
// re-encode/re-decode round trip (decode ∘ encode identity), with the
// re-encode byte-identical to the accepted input — the frame has exactly
// one canonical encoding.
func FuzzLoadSnapshotDecode(f *testing.F) {
	f.Add(AppendLoadSnapshot(nil, &LoadSnapshot{}))
	f.Add(AppendLoadSnapshot(nil, &LoadSnapshot{ID: 3, Seq: 9, Shard: "a",
		Healthy: 2, Submitted: 10, Completed: 8, Rejected: 2, UtilMilli: 500,
		Levels: []LoadLevel{{MaxLength: 128, Depth: 1, Instances: 1, Capacity: 12}}}))
	f.Add(AppendLoadSnapshot(nil, &LoadSnapshot{Shard: "shard-b", Dead: 3,
		Levels: []LoadLevel{{MaxLength: 128}, {MaxLength: 256}, {MaxLength: 512}}}))
	f.Add(AppendLoadRequest(nil, 77))
	f.Add([]byte{KindLoadResponse})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		s, err := DecodeLoadSnapshot(p)
		if err != nil {
			return
		}
		enc := AppendLoadSnapshot(nil, &s)
		if string(enc) != string(p) {
			t.Fatalf("accepted payload is not canonical: %x != %x", enc, p)
		}
		s2, err := DecodeLoadSnapshot(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("decode∘encode identity broken:\n %+v\n %+v", s, s2)
		}
	})
}
