// Package wire is the binary ingress protocol: length-prefixed frames
// multiplexed over one connection, built to keep the serving hot path off
// the JSON/HTTP tax (header parsing, escaping, per-request allocations,
// one connection churn per in-flight request).
//
// Framing (all integers little-endian):
//
//	u32 payload length | payload
//
// Request payload:
//
//	u8 kind=1 | u64 id | i64 deadline (unix nanos, 0 = none) | u8 mode |
//	  mode 0 (raw text):  UTF-8 bytes to tokenize server-side
//	  mode 1 (token ids): u32 count | count x u32 ids pre-encoded client-side
//
// Response payload:
//
//	u8 kind=2 | u64 id | u8 status |
//	  status 0 (ok):   u8 label | u32 seq_len | u64 latency_ns |
//	                   u64 queue_ns | u64 exec_ns | u16 demotion_hops |
//	                   u32 instance | u32 runtime | i64 batch | u32 batch_size
//	  status != 0:     UTF-8 error message
//
// Generative request payload (kind=3) is the request payload with the
// generation parameters between the mode byte and the body:
//
//	u8 kind=3 | u64 id | i64 deadline | u8 mode | u32 max_new_tokens | body
//
// Generative response payload (kind=4) is the response payload with the
// generative timings appended to the ok block:
//
//	... u32 batch_size | u64 ttft_ns | u32 out_tokens
//
// V2 request payloads (kinds 5 and 6) are the frame revision that carries
// tenant identity. A version byte follows the kind so the revision can
// grow again without new kinds, then the V1 header fields, then the
// tenant id length-prefixed with one byte, then the body:
//
//	u8 kind=5|6 | u8 ver=2 | u64 id | i64 deadline | u8 mode |
//	  [u32 max_new_tokens when kind=6] | u8 tenant_len | tenant | body
//
// V1 request frames (kinds 1 and 3) still decode byte-for-byte — an old
// client never has to change; servers predating V2 answer the unknown
// kinds with StatusUnsupportedField, which V2 clients can detect.
// Rate-limited responses (StatusRateLimited) carry a retry hint before
// the error message:
//
//	u8 kind=2 | u64 id | u8 status=10 | u64 retry_after_ns | message
//
// Ids are chosen by the client and echoed verbatim, so responses may
// return out of submission order and clients can pipeline: many requests
// in flight on one connection, matched by id on the way back. The u32
// length prefix is bounded by MaxFrame on both sides; a peer that sends a
// longer frame is protocol-broken and the connection is dropped rather
// than resynchronized.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame kinds (first payload byte).
const (
	KindRequest  = 1
	KindResponse = 2
	// KindGenRequest is a generative request: KindRequest plus generation
	// parameters (max_new_tokens).
	KindGenRequest = 3
	// KindGenResponse is a generative reply: KindResponse plus TTFT and
	// the generated token count.
	KindGenResponse = 4
	// KindRequestV2 is the tenant-carrying frame revision of KindRequest:
	// a version byte follows the kind, and the tenant id precedes the body.
	KindRequestV2 = 5
	// KindGenRequestV2 is the tenant-carrying revision of KindGenRequest.
	KindGenRequestV2 = 6
)

// FrameVersion is the version byte V2 request frames carry after the
// kind.
const FrameVersion = 2

// Request modes.
const (
	// ModeText carries raw text the server tokenizes.
	ModeText = 0
	// ModeTokens carries token ids pre-encoded client-side; the server
	// skips tokenization entirely.
	ModeTokens = 1
)

// MaxFrame bounds a frame payload (matches the JSON endpoint's 1 MiB
// request cap). ReadFrame rejects longer frames before buffering them.
const MaxFrame = 1 << 20

// Status is the response outcome: StatusOK or the binary twin of the JSON
// envelope's stable error code.
type Status uint8

// Response statuses. The numeric values are wire format — append only.
const (
	StatusOK Status = iota
	StatusInvalid
	StatusTooLong
	StatusCongested
	StatusNoInstances
	StatusUnavailable
	StatusUnserviceable
	StatusDeadline
	StatusInternal
	// StatusUnsupportedField rejects a request carrying a field or frame
	// variant the server does not implement.
	StatusUnsupportedField
	// StatusRateLimited rejects a request refused by tenant token-bucket
	// admission; the response carries a retry_after_ns hint before the
	// message. The JSON twin is HTTP 429 + Retry-After.
	StatusRateLimited
	numStatuses
)

// String returns the JSON envelope's stable code for the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusInvalid:
		return "invalid_request"
	case StatusTooLong:
		return "too_long"
	case StatusCongested:
		return "congested"
	case StatusNoInstances:
		return "no_instances"
	case StatusUnavailable:
		return "unavailable"
	case StatusUnserviceable:
		return "unserviceable"
	case StatusDeadline:
		return "deadline_exceeded"
	case StatusInternal:
		return "internal"
	case StatusUnsupportedField:
		return "unsupported_field"
	case StatusRateLimited:
		return "rate_limited"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Retryable reports whether the status is a transient condition worth
// retrying: the ones the JSON endpoint answers 503 for, plus
// StatusRateLimited (retry after the carried hint, the JSON 429 twin).
func (s Status) Retryable() bool {
	switch s {
	case StatusCongested, StatusNoInstances, StatusUnavailable, StatusUnserviceable,
		StatusRateLimited:
		return true
	}
	return false
}

// Request is one decoded inference request.
type Request struct {
	// Kind is KindRequest or KindGenRequest; 0 encodes as KindRequest.
	Kind uint8
	// ID is the client-chosen multiplexing id, echoed on the response.
	ID uint64
	// Deadline is the request deadline in unix nanoseconds (0 = none).
	Deadline int64
	// Mode is ModeText or ModeTokens.
	Mode uint8
	// MaxNewTokens is the generative output budget (KindGenRequest only).
	MaxNewTokens uint32
	// Text is the input to tokenize (ModeText).
	Text string
	// Tokens are the pre-encoded token ids (ModeTokens).
	Tokens []uint32
	// Tenant is the submitting tenant id (V2 kinds only; at most 255
	// bytes on the wire). Encoding a non-empty Tenant requires a V2 kind.
	Tenant string
}

// Response is one decoded inference reply; the fields mirror the JSON
// InferResponse with durations in nanoseconds.
type Response struct {
	// Kind is KindResponse or KindGenResponse; 0 encodes as KindResponse.
	Kind         uint8
	ID           uint64
	Status       Status
	Label        uint8
	SeqLen       uint32
	LatencyNS    uint64
	QueueNS      uint64
	ExecNS       uint64
	DemotionHops uint16
	Instance     uint32
	Runtime      uint32
	Batch        int64
	BatchSize    uint32
	// TTFTNS and OutTokens are the generative timings (KindGenResponse
	// only): time to first token and generated token count.
	TTFTNS    uint64
	OutTokens uint32
	// RetryAfterNS is the admission retry hint (StatusRateLimited only).
	RetryAfterNS uint64
	// Message is the error detail when Status != StatusOK.
	Message string
}

// Decode errors. ErrFrameTooLarge aborts the connection (the stream
// cannot be resynchronized); the others are per-frame.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrShortPayload  = errors.New("wire: truncated payload")
	ErrBadKind       = errors.New("wire: unexpected frame kind")
	ErrBadMode       = errors.New("wire: unknown request mode")
	ErrBadStatus     = errors.New("wire: unknown response status")
	ErrBadVersion    = errors.New("wire: unknown frame version")
)

const (
	reqHeaderLen     = 1 + 8 + 8 + 1 // kind, id, deadline, mode
	genReqHeaderLen  = reqHeaderLen + 4
	reqV2HeaderLen   = 1 + 1 + 8 + 8 + 1 // kind, version, id, deadline, mode
	genReqV2FixedLen = reqV2HeaderLen + 4
	respHeaderLen    = 1 + 8 + 1 // kind, id, status
	respOKLen        = respHeaderLen + 1 + 4 + 8 + 8 + 8 + 2 + 4 + 4 + 8 + 4
	genRespOKLen     = respOKLen + 8 + 4
	genRespTrailerAt = respOKLen // offset of ttft_ns in a gen ok payload
)

// AppendFrame appends the length prefix and payload to dst. Use with a
// payload built by AppendRequest/AppendResponse on a reused buffer, then
// write dst in one syscall.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// ReadFrame reads one length-prefixed payload into buf (grown as needed)
// and returns the payload slice, valid until the next call with the same
// buffer. io.EOF is returned bare only on a clean frame boundary.
func ReadFrame(r io.Reader, buf []byte) ([]byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, buf, ErrFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, buf, err
	}
	return buf, buf, nil
}

// AppendRequest appends the encoded request payload (no length prefix).
// Kind 0 encodes as KindRequest; KindGenRequest adds the generation
// parameters.
func AppendRequest(dst []byte, r *Request) []byte {
	kind := r.Kind
	if kind == 0 {
		kind = KindRequest
	}
	v2 := kind == KindRequestV2 || kind == KindGenRequestV2
	dst = append(dst, kind)
	if v2 {
		dst = append(dst, FrameVersion)
	}
	dst = binary.LittleEndian.AppendUint64(dst, r.ID)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Deadline))
	dst = append(dst, r.Mode)
	if kind == KindGenRequest || kind == KindGenRequestV2 {
		dst = binary.LittleEndian.AppendUint32(dst, r.MaxNewTokens)
	}
	if v2 {
		tenant := r.Tenant
		if len(tenant) > 255 {
			tenant = tenant[:255] // the length prefix is one byte
		}
		dst = append(dst, uint8(len(tenant)))
		dst = append(dst, tenant...)
	}
	switch r.Mode {
	case ModeTokens:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Tokens)))
		for _, id := range r.Tokens {
			dst = binary.LittleEndian.AppendUint32(dst, id)
		}
	default:
		dst = append(dst, r.Text...)
	}
	return dst
}

// DecodeRequest parses a request payload. The returned Request aliases p
// (Text and Tokens reference its bytes where possible) — copy before
// reusing the read buffer if the request outlives the frame. Tokens are
// decoded into tokens[:0] when a scratch slice is supplied.
func DecodeRequest(p []byte, tokens []uint32) (Request, error) {
	var r Request
	if len(p) < reqHeaderLen {
		return r, ErrShortPayload
	}
	var body []byte
	switch p[0] {
	case KindRequest, KindGenRequest:
		r.Kind = p[0]
		r.ID = binary.LittleEndian.Uint64(p[1:])
		r.Deadline = int64(binary.LittleEndian.Uint64(p[9:]))
		r.Mode = p[17]
		body = p[reqHeaderLen:]
		if r.Kind == KindGenRequest {
			if len(p) < genReqHeaderLen {
				return r, ErrShortPayload
			}
			r.MaxNewTokens = binary.LittleEndian.Uint32(p[reqHeaderLen:])
			body = p[genReqHeaderLen:]
		}
	case KindRequestV2, KindGenRequestV2:
		if len(p) < reqV2HeaderLen {
			return r, ErrShortPayload
		}
		if p[1] != FrameVersion {
			return r, ErrBadVersion
		}
		r.Kind = p[0]
		r.ID = binary.LittleEndian.Uint64(p[2:])
		r.Deadline = int64(binary.LittleEndian.Uint64(p[10:]))
		r.Mode = p[18]
		body = p[reqV2HeaderLen:]
		if r.Kind == KindGenRequestV2 {
			if len(p) < genReqV2FixedLen {
				return r, ErrShortPayload
			}
			r.MaxNewTokens = binary.LittleEndian.Uint32(p[reqV2HeaderLen:])
			body = p[genReqV2FixedLen:]
		}
		if len(body) < 1 {
			return r, ErrShortPayload
		}
		tn := int(body[0])
		body = body[1:]
		if len(body) < tn {
			return r, ErrShortPayload
		}
		r.Tenant = string(body[:tn])
		body = body[tn:]
	default:
		return r, ErrBadKind
	}
	switch r.Mode {
	case ModeText:
		r.Text = string(body)
	case ModeTokens:
		if len(body) < 4 {
			return r, ErrShortPayload
		}
		n := binary.LittleEndian.Uint32(body)
		body = body[4:]
		if uint64(len(body)) != uint64(n)*4 {
			return r, fmt.Errorf("%w: %d token bytes for count %d", ErrShortPayload, len(body), n)
		}
		toks := tokens[:0]
		for i := uint32(0); i < n; i++ {
			toks = append(toks, binary.LittleEndian.Uint32(body[i*4:]))
		}
		r.Tokens = toks
	default:
		return r, ErrBadMode
	}
	return r, nil
}

// AppendResponse appends the encoded response payload (no length prefix).
// Kind 0 encodes as KindResponse; KindGenResponse appends the generative
// trailer to the ok block.
func AppendResponse(dst []byte, r *Response) []byte {
	kind := r.Kind
	if kind == 0 {
		kind = KindResponse
	}
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint64(dst, r.ID)
	dst = append(dst, uint8(r.Status))
	if r.Status != StatusOK {
		if r.Status == StatusRateLimited {
			dst = binary.LittleEndian.AppendUint64(dst, r.RetryAfterNS)
		}
		return append(dst, r.Message...)
	}
	dst = append(dst, r.Label)
	dst = binary.LittleEndian.AppendUint32(dst, r.SeqLen)
	dst = binary.LittleEndian.AppendUint64(dst, r.LatencyNS)
	dst = binary.LittleEndian.AppendUint64(dst, r.QueueNS)
	dst = binary.LittleEndian.AppendUint64(dst, r.ExecNS)
	dst = binary.LittleEndian.AppendUint16(dst, r.DemotionHops)
	dst = binary.LittleEndian.AppendUint32(dst, r.Instance)
	dst = binary.LittleEndian.AppendUint32(dst, r.Runtime)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Batch))
	dst = binary.LittleEndian.AppendUint32(dst, r.BatchSize)
	if kind == KindGenResponse {
		dst = binary.LittleEndian.AppendUint64(dst, r.TTFTNS)
		dst = binary.LittleEndian.AppendUint32(dst, r.OutTokens)
	}
	return dst
}

// DecodeResponse parses a response payload. Message aliases p on error
// statuses.
func DecodeResponse(p []byte) (Response, error) {
	var r Response
	if len(p) < respHeaderLen {
		return r, ErrShortPayload
	}
	if p[0] != KindResponse && p[0] != KindGenResponse {
		return r, ErrBadKind
	}
	r.Kind = p[0]
	r.ID = binary.LittleEndian.Uint64(p[1:])
	r.Status = Status(p[9])
	if r.Status >= numStatuses {
		return r, ErrBadStatus
	}
	if r.Status != StatusOK {
		rest := p[respHeaderLen:]
		if r.Status == StatusRateLimited {
			if len(rest) < 8 {
				return r, ErrShortPayload
			}
			r.RetryAfterNS = binary.LittleEndian.Uint64(rest)
			rest = rest[8:]
		}
		r.Message = string(rest)
		return r, nil
	}
	if len(p) < respOKLen {
		return r, ErrShortPayload
	}
	if r.Kind == KindGenResponse {
		if len(p) < genRespOKLen {
			return r, ErrShortPayload
		}
		r.TTFTNS = binary.LittleEndian.Uint64(p[genRespTrailerAt:])
		r.OutTokens = binary.LittleEndian.Uint32(p[genRespTrailerAt+8:])
	}
	r.Label = p[10]
	r.SeqLen = binary.LittleEndian.Uint32(p[11:])
	r.LatencyNS = binary.LittleEndian.Uint64(p[15:])
	r.QueueNS = binary.LittleEndian.Uint64(p[23:])
	r.ExecNS = binary.LittleEndian.Uint64(p[31:])
	r.DemotionHops = binary.LittleEndian.Uint16(p[39:])
	r.Instance = binary.LittleEndian.Uint32(p[41:])
	r.Runtime = binary.LittleEndian.Uint32(p[45:])
	r.Batch = int64(binary.LittleEndian.Uint64(p[49:]))
	r.BatchSize = binary.LittleEndian.Uint32(p[57:])
	return r, nil
}
