package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 1, Mode: ModeText, Text: "the quick brown fox"},
		{ID: 42, Deadline: 1_700_000_000_000_000_000, Mode: ModeText, Text: ""},
		{ID: 7, Mode: ModeTokens, Tokens: []uint32{101, 2023, 102}},
		{ID: 1<<64 - 1, Mode: ModeTokens, Tokens: nil},
		{Kind: KindGenRequest, ID: 8, Mode: ModeText, Text: "generate from this", MaxNewTokens: 32},
		{Kind: KindGenRequest, ID: 9, Deadline: 1_700_000_000_000_000_000, Mode: ModeTokens,
			Tokens: []uint32{7, 8, 9}, MaxNewTokens: 1},
	}
	for _, want := range cases {
		p := AppendRequest(nil, &want)
		got, err := DecodeRequest(p, nil)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got.ID != want.ID || got.Deadline != want.Deadline || got.Mode != want.Mode || got.Text != want.Text {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
		if got.MaxNewTokens != want.MaxNewTokens {
			t.Errorf("max_new_tokens: got %d want %d", got.MaxNewTokens, want.MaxNewTokens)
		}
		wantKind := want.Kind
		if wantKind == 0 {
			wantKind = KindRequest
		}
		if got.Kind != wantKind {
			t.Errorf("kind: got %d want %d", got.Kind, wantKind)
		}
		if len(got.Tokens) != len(want.Tokens) {
			t.Fatalf("tokens: got %v want %v", got.Tokens, want.Tokens)
		}
		for i := range want.Tokens {
			if got.Tokens[i] != want.Tokens[i] {
				t.Errorf("token %d: got %d want %d", i, got.Tokens[i], want.Tokens[i])
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Kind: KindResponse, ID: 9, Status: StatusOK, Label: 2, SeqLen: 128, LatencyNS: 5_000_000,
			QueueNS: 1_000, ExecNS: 4_999_000, DemotionHops: 1, Instance: 3,
			Runtime: 1, Batch: 77, BatchSize: 4},
		{Kind: KindResponse, ID: 10, Status: StatusCongested, Message: "worker 3 queue overflow"},
		{Kind: KindResponse, ID: 11, Status: StatusDeadline, Message: ""},
		{Kind: KindGenResponse, ID: 12, Status: StatusOK, Label: 1, SeqLen: 64, LatencyNS: 9_000_000,
			QueueNS: 2_000, ExecNS: 8_998_000, Instance: 2, Runtime: 3, Batch: 5, BatchSize: 2,
			TTFTNS: 3_000_000, OutTokens: 17},
		{Kind: KindGenResponse, ID: 13, Status: StatusUnsupportedField, Message: "unknown frame kind"},
	}
	for _, want := range cases {
		p := AppendResponse(nil, &want)
		got, err := DecodeResponse(p)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var stream []byte
	payloads := [][]byte{
		AppendRequest(nil, &Request{ID: 1, Mode: ModeText, Text: "a"}),
		AppendResponse(nil, &Response{ID: 1, Status: StatusOK}),
		{},
	}
	for _, p := range payloads {
		stream = AppendFrame(stream, p)
	}
	r := bytes.NewReader(stream)
	var buf []byte
	for i, want := range payloads {
		var p []byte
		var err error
		p, buf, err = ReadFrame(r, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(p, want) {
			t.Errorf("frame %d: got %x want %x", i, p, want)
		}
	}
	if _, _, err := ReadFrame(r, buf); err != io.EOF {
		t.Errorf("after stream: err = %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	stream := []byte{0xff, 0xff, 0xff, 0xff} // 4 GiB-1 length prefix
	if _, _, err := ReadFrame(bytes.NewReader(stream), nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	stream := AppendFrame(nil, []byte("hello"))
	for cut := 1; cut < len(stream); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(stream[:cut]), nil)
		if err == nil {
			t.Fatalf("cut %d: no error on truncated frame", cut)
		}
		if err == io.EOF && cut >= 4 {
			t.Errorf("cut %d: bare EOF mid-frame", cut)
		}
	}
}

func TestDecodeMalformed(t *testing.T) {
	cases := []struct {
		name string
		p    []byte
		req  bool
		want error
	}{
		{"empty request", nil, true, ErrShortPayload},
		{"wrong kind", AppendResponse(nil, &Response{ID: 1}), true, ErrBadKind},
		{"bad mode", append(AppendRequest(nil, &Request{ID: 1})[:17], 9), true, ErrBadMode},
		{"token count lies", append(AppendRequest(nil, &Request{ID: 1, Mode: ModeTokens, Tokens: []uint32{1, 2}}), 0), true, ErrShortPayload},
		{"empty response", nil, false, ErrShortPayload},
		{"response wrong kind", AppendRequest(nil, &Request{ID: 1, Mode: ModeText}), false, ErrBadKind},
		{"bad status", []byte{KindResponse, 0, 0, 0, 0, 0, 0, 0, 0, 0xee}, false, ErrBadStatus},
		{"short ok body", []byte{KindResponse, 0, 0, 0, 0, 0, 0, 0, 0, 0}, false, ErrShortPayload},
	}
	for _, tc := range cases {
		var err error
		if tc.req {
			_, err = DecodeRequest(tc.p, nil)
		} else {
			_, err = DecodeResponse(tc.p)
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeRequestReusesTokenScratch(t *testing.T) {
	p := AppendRequest(nil, &Request{ID: 1, Mode: ModeTokens, Tokens: []uint32{5, 6, 7}})
	scratch := make([]uint32, 0, 8)
	got, err := DecodeRequest(p, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &got.Tokens[0] != &scratch[:1][0] {
		t.Error("decode did not reuse the scratch slice")
	}
}
