package wire

import (
	"bytes"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at both payload decoders and, when
// one accepts, re-encodes and re-decodes to pin decode∘encode = identity
// on the accepted set. Decoders must never panic or over-read: malformed
// frames come straight off the network.
func FuzzWireDecode(f *testing.F) {
	f.Add(AppendRequest(nil, &Request{ID: 1, Mode: ModeText, Text: "hello world"}))
	f.Add(AppendRequest(nil, &Request{ID: 2, Deadline: 1_700_000_000_000_000_000, Mode: ModeTokens, Tokens: []uint32{101, 2023, 102}}))
	f.Add(AppendRequest(nil, &Request{ID: 3, Mode: ModeTokens}))
	f.Add(AppendResponse(nil, &Response{ID: 4, Status: StatusOK, Label: 1, SeqLen: 64, LatencyNS: 1}))
	f.Add(AppendResponse(nil, &Response{ID: 5, Status: StatusCongested, Message: "busy"}))
	f.Add(AppendRequest(nil, &Request{Kind: KindGenRequest, ID: 6, Mode: ModeText, Text: "prompt", MaxNewTokens: 16}))
	f.Add(AppendRequest(nil, &Request{Kind: KindGenRequest, ID: 7, Mode: ModeTokens, Tokens: []uint32{9, 9}, MaxNewTokens: 1}))
	f.Add(AppendResponse(nil, &Response{Kind: KindGenResponse, ID: 8, Status: StatusOK, SeqLen: 32, LatencyNS: 2, TTFTNS: 1, OutTokens: 4}))
	f.Add(AppendResponse(nil, &Response{Kind: KindGenResponse, ID: 9, Status: StatusUnsupportedField, Message: "unknown frame kind"}))
	f.Add([]byte{})
	f.Add([]byte{KindRequest})
	f.Add([]byte{KindResponse, 0, 0, 0, 0, 0, 0, 0, 0, 0xff})
	f.Fuzz(func(t *testing.T, p []byte) {
		if req, err := DecodeRequest(p, nil); err == nil {
			enc := AppendRequest(nil, &req)
			re, err := DecodeRequest(enc, nil)
			if err != nil {
				t.Fatalf("re-decode rejected own encoding: %v", err)
			}
			if re.ID != req.ID || re.Deadline != req.Deadline || re.Mode != req.Mode ||
				re.Kind != req.Kind || re.MaxNewTokens != req.MaxNewTokens ||
				re.Text != req.Text || len(re.Tokens) != len(req.Tokens) {
				t.Fatalf("request identity broken: %+v vs %+v", req, re)
			}
		}
		if resp, err := DecodeResponse(p); err == nil {
			enc := AppendResponse(nil, &resp)
			re, err := DecodeResponse(enc)
			if err != nil {
				t.Fatalf("re-decode rejected own encoding: %v", err)
			}
			// Error payloads may carry trailing garbage in Message; identity
			// must still hold field-for-field after one round trip.
			if re != resp {
				t.Fatalf("response identity broken: %+v vs %+v", resp, re)
			}
		}
		// Framing: a frame built from any payload must read back intact.
		if len(p) <= MaxFrame {
			framed := AppendFrame(nil, p)
			got, _, err := ReadFrame(bytes.NewReader(framed), nil)
			if err != nil {
				t.Fatalf("ReadFrame rejected own framing: %v", err)
			}
			if !bytes.Equal(got, p) {
				t.Fatal("frame round trip corrupted payload")
			}
		}
	})
}
