// Weighted fair ordering across tenants for the cluster's dispatch path.
//
// Fair is a start-time fair queueing (stride) scheduler: each tenant is a
// flow holding a FIFO of pending items, and every item carries a token
// cost. A flow's pass advances by cost/weight per item served, and Pop
// always serves the flow with the smallest pass — so over any backlogged
// interval each tenant's share of dispatched token-time converges to its
// weight, and a tenant with a deep backlog cannot starve the others: its
// pass races ahead and the scheduler round-robins the rest in.
//
// Flows that go idle and return re-enter at the current virtual time
// (max(own pass, vtime)), the standard SFQ rule that prevents an idle
// tenant from banking credit and then monopolizing the queue.
//
// The cluster drains a Fair with a single pump goroutine, so ordering
// decisions here directly become multi-level-queue dispatch order; the
// per-level λ-congestion logic downstream is unchanged.

package queue

import (
	"container/heap"
	"sync"
)

type fairItem[T any] struct {
	v      T
	stride float64 // cost/weight, applied to the flow's pass when served
}

type fairFlow[T any] struct {
	key   string
	pass  float64
	items []fairItem[T]
	head  int
	hix   int // index in the active heap, -1 when idle
}

func (f *fairFlow[T]) size() int { return len(f.items) - f.head }

// Fair is the tenant-fair pending queue. The zero value is not usable;
// call NewFair.
type Fair[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	flows  map[string]*fairFlow[T]
	active fairHeap[T]
	vtime  float64
	size   int
	closed bool
}

// NewFair returns an empty fair queue.
func NewFair[T any]() *Fair[T] {
	f := &Fair[T]{flows: make(map[string]*fairFlow[T])}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Push enqueues an item for the given flow. weight must be positive (it
// is clamped to a small floor); cost is the item's share currency —
// tokens here. Returns false when the queue is closed.
func (q *Fair[T]) Push(key string, weight, cost float64, v T) bool {
	if weight <= 0 {
		weight = 1e-3
	}
	if cost < 1 {
		cost = 1
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	f := q.flows[key]
	if f == nil {
		f = &fairFlow[T]{key: key, hix: -1}
		q.flows[key] = f
	}
	f.items = append(f.items, fairItem[T]{v: v, stride: cost / weight})
	if f.hix < 0 {
		if f.pass < q.vtime {
			f.pass = q.vtime
		}
		heap.Push(&q.active, f)
	}
	q.size++
	q.mu.Unlock()
	q.cond.Signal()
	return true
}

// Pop blocks for the next item in fair order. ok is false once the queue
// is closed *and* drained — pending items are still delivered after
// Close so the consumer can fail or dispatch them.
func (q *Fair[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			return v, false
		}
		q.cond.Wait()
	}
	f := q.active[0]
	it := f.items[f.head]
	f.head++
	q.size--
	q.vtime = f.pass
	f.pass += it.stride
	if f.size() == 0 {
		heap.Pop(&q.active)
		f.hix = -1
		// Release delivered items; keep the flow record (and its pass) so a
		// returning flow re-enters at max(pass, vtime).
		f.items = f.items[:0]
		f.head = 0
	} else {
		heap.Fix(&q.active, 0)
	}
	return it.v, true
}

// Len reports queued items across all flows.
func (q *Fair[T]) Len() int {
	q.mu.Lock()
	n := q.size
	q.mu.Unlock()
	return n
}

// Close stops accepting pushes and wakes blocked Pops. Items already
// queued remain poppable; Pop returns ok=false once drained.
func (q *Fair[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// fairHeap orders active flows by ascending pass (ties broken by key for
// determinism).
type fairHeap[T any] []*fairFlow[T]

func (h fairHeap[T]) Len() int { return len(h) }
func (h fairHeap[T]) Less(i, j int) bool {
	if h[i].pass != h[j].pass {
		return h[i].pass < h[j].pass
	}
	return h[i].key < h[j].key
}
func (h fairHeap[T]) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].hix, h[j].hix = i, j
}
func (h *fairHeap[T]) Push(x any) {
	f := x.(*fairFlow[T])
	f.hix = len(*h)
	*h = append(*h, f)
}
func (h *fairHeap[T]) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	f.hix = -1
	*h = old[:n-1]
	return f
}
