package queue

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevelFrontIsLeastLoaded(t *testing.T) {
	var l Level
	if l.Front() != nil {
		t.Error("empty level front should be nil")
	}
	a := &Instance{ID: 1, Outstanding: 5, MaxCapacity: 10}
	b := &Instance{ID: 2, Outstanding: 2, MaxCapacity: 10}
	c := &Instance{ID: 3, Outstanding: 8, MaxCapacity: 10}
	l.Add(a)
	l.Add(b)
	l.Add(c)
	if l.Front() != b {
		t.Errorf("front = %d, want instance 2", l.Front().ID)
	}
	b.Outstanding = 9
	l.Update(b)
	if l.Front() != a {
		t.Errorf("after update front = %d, want instance 1", l.Front().ID)
	}
	if !l.Remove(a) {
		t.Error("remove of member should succeed")
	}
	if l.Remove(a) {
		t.Error("double remove should fail")
	}
	if l.Front() != c {
		t.Errorf("after removal front = %d, want instance 3", l.Front().ID)
	}
	if l.Len() != 2 {
		t.Errorf("level len = %d, want 2", l.Len())
	}
}

func TestLevelTieBreaksByID(t *testing.T) {
	var l Level
	l.Add(&Instance{ID: 9, Outstanding: 3})
	l.Add(&Instance{ID: 2, Outstanding: 3})
	if l.Front().ID != 2 {
		t.Errorf("tie should break toward smaller ID, got %d", l.Front().ID)
	}
}

func TestLevelHeapInvariantUnderChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var l Level
		live := map[int]*Instance{}
		next := 0
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0, 1: // add
				in := &Instance{ID: next, Outstanding: rng.Intn(50), MaxCapacity: 50}
				next++
				l.Add(in)
				live[in.ID] = in
			case 2: // mutate a random instance
				for _, in := range live {
					in.Outstanding = rng.Intn(50)
					l.Update(in)
					break
				}
			case 3: // remove
				for id, in := range live {
					l.Remove(in)
					delete(live, id)
					break
				}
			}
			// Invariant: front has the minimal outstanding count.
			if front := l.Front(); front != nil {
				for _, in := range live {
					if in.Outstanding < front.Outstanding {
						return false
					}
				}
			} else if len(live) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNewMultiLevelValidation(t *testing.T) {
	if _, err := NewMultiLevel(nil); err == nil {
		t.Error("empty levels should fail")
	}
	if _, err := NewMultiLevel([]int{64, 64}); err == nil {
		t.Error("non-increasing max_lengths should fail")
	}
	if _, err := NewMultiLevel([]int{128, 64}); err == nil {
		t.Error("decreasing max_lengths should fail")
	}
}

func mustML(t *testing.T, lens []int) *MultiLevel {
	t.Helper()
	m, err := NewMultiLevel(lens)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMultiLevelAddRemove(t *testing.T) {
	m := mustML(t, []int{64, 128, 256, 512})
	if m.NumLevels() != 4 {
		t.Fatalf("levels = %d, want 4", m.NumLevels())
	}
	in := &Instance{ID: 7, Runtime: 2, MaxCapacity: 40}
	if err := m.Add(in); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(&Instance{ID: 7, Runtime: 1}); err == nil {
		t.Error("duplicate ID should fail")
	}
	if err := m.Add(&Instance{ID: 8, Runtime: 9}); err == nil {
		t.Error("out-of-range runtime should fail")
	}
	if err := m.Add(&Instance{ID: 9, Runtime: -1}); err == nil {
		t.Error("negative runtime should fail")
	}
	if m.Get(7) != in || m.Size() != 1 {
		t.Error("instance lookup failed")
	}
	if m.Level(2).Front() != in {
		t.Error("instance should head its level")
	}
	if got := m.Remove(7); got != in {
		t.Error("remove should return the instance")
	}
	if m.Remove(7) != nil {
		t.Error("double remove should return nil")
	}
	if m.Size() != 0 || m.Level(2).Front() != nil {
		t.Error("level should be empty after removal")
	}
}

func TestCandidateLevels(t *testing.T) {
	m := mustML(t, []int{64, 128, 256, 512})
	cases := []struct {
		length int
		want   []int
	}{
		{1, []int{0, 1, 2, 3}},
		{64, []int{0, 1, 2, 3}},
		{65, []int{1, 2, 3}},
		{200, []int{2, 3}},
		{512, []int{3}},
		{513, []int{}},
	}
	for _, tc := range cases {
		got := m.CandidateLevels(tc.length)
		if len(got) != len(tc.want) {
			t.Errorf("CandidateLevels(%d) = %v, want %v", tc.length, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("CandidateLevels(%d) = %v, want %v", tc.length, got, tc.want)
				break
			}
		}
	}
}

func TestDispatchCompleteCycle(t *testing.T) {
	m := mustML(t, []int{64, 128})
	a := &Instance{ID: 1, Runtime: 0, MaxCapacity: 10}
	b := &Instance{ID: 2, Runtime: 0, MaxCapacity: 10}
	for _, in := range []*Instance{a, b} {
		if err := m.Add(in); err != nil {
			t.Fatal(err)
		}
	}
	m.OnDispatch(a)
	m.OnDispatch(a)
	if m.Level(0).Front() != b {
		t.Error("least-loaded should rotate to b after dispatching to a")
	}
	if m.TotalOutstanding() != 2 {
		t.Errorf("outstanding = %d, want 2", m.TotalOutstanding())
	}
	m.OnComplete(a)
	m.OnComplete(a)
	m.OnComplete(a) // extra completion is clamped at zero
	if a.Outstanding != 0 {
		t.Errorf("outstanding clamped at 0, got %d", a.Outstanding)
	}
	if m.TotalOutstanding() != 0 {
		t.Errorf("total outstanding = %d, want 0", m.TotalOutstanding())
	}
}

func TestCongestion(t *testing.T) {
	in := &Instance{Outstanding: 54, MaxCapacity: 60}
	if got := in.Congestion(); got != 0.9 {
		t.Errorf("congestion = %v, want 0.9", got)
	}
	broken := &Instance{Outstanding: 3, MaxCapacity: 0}
	if got := broken.Congestion(); got != 1 {
		t.Errorf("zero-capacity congestion = %v, want 1 (saturated)", got)
	}
}

func TestInstancesEnumeration(t *testing.T) {
	m := mustML(t, []int{64, 128})
	for i := 0; i < 5; i++ {
		if err := m.Add(&Instance{ID: i, Runtime: i % 2, MaxCapacity: 10}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.Instances()); got != 5 {
		t.Errorf("Instances() returned %d, want 5", got)
	}
	if got := len(m.Level(0).Instances()); got != 3 {
		t.Errorf("level 0 has %d instances, want 3", got)
	}
}
