package queue

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestLevelFrontIsLeastLoaded(t *testing.T) {
	var l Level
	if l.Front() != nil {
		t.Error("empty level front should be nil")
	}
	a := NewInstance(1, 0, 5, 10)
	b := NewInstance(2, 0, 2, 10)
	c := NewInstance(3, 0, 8, 10)
	l.Add(a)
	l.Add(b)
	l.Add(c)
	if l.Front() != b {
		t.Errorf("front = %d, want instance 2", l.Front().ID)
	}
	b.SetOutstanding(9)
	l.Update(b)
	if l.Front() != a {
		t.Errorf("after update front = %d, want instance 1", l.Front().ID)
	}
	if !l.Remove(a) {
		t.Error("remove of member should succeed")
	}
	if l.Remove(a) {
		t.Error("double remove should fail")
	}
	if l.Front() != c {
		t.Errorf("after removal front = %d, want instance 3", l.Front().ID)
	}
	if l.Len() != 2 {
		t.Errorf("level len = %d, want 2", l.Len())
	}
}

func TestLevelTieBreaksByID(t *testing.T) {
	var l Level
	l.Add(NewInstance(9, 0, 3, 0))
	l.Add(NewInstance(2, 0, 3, 0))
	if l.Front().ID != 2 {
		t.Errorf("tie should break toward smaller ID, got %d", l.Front().ID)
	}
}

func TestLevelHeapInvariantUnderChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var l Level
		live := map[int]*Instance{}
		next := 0
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0, 1: // add
				in := NewInstance(next, 0, rng.Intn(50), 50)
				next++
				l.Add(in)
				live[in.ID] = in
			case 2: // mutate a random instance
				for _, in := range live {
					in.SetOutstanding(rng.Intn(50))
					l.Update(in)
					break
				}
			case 3: // remove
				for id, in := range live {
					l.Remove(in)
					delete(live, id)
					break
				}
			}
			// Invariant: front has the minimal outstanding count.
			if front := l.Front(); front != nil {
				for _, in := range live {
					if in.Outstanding() < front.Outstanding() {
						return false
					}
				}
			} else if len(live) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMultiLevelQuickInvariants drives the striped implementation through
// random dispatch/complete/add/remove traffic and checks the scheduler's
// two core invariants after every operation: each level's front is its
// least-loaded member (by outstanding, ties by ID), and TotalOutstanding
// equals the sum of the per-instance counters.
func TestMultiLevelQuickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := mustMLf(t, []int{64, 128, 256})
		live := []*Instance{}
		next := 0
		dispatched := 0
		for op := 0; op < 400; op++ {
			switch rng.Intn(6) {
			case 0, 1: // add
				in := NewInstance(next, rng.Intn(3), 0, 1+rng.Intn(40))
				next++
				if err := m.Add(in); err != nil {
					return false
				}
				live = append(live, in)
			case 2, 3: // dispatch to a level front
				if len(live) == 0 {
					continue
				}
				lvl := rng.Intn(3)
				if head := m.Level(lvl).Front(); head != nil {
					m.OnDispatch(head)
					dispatched++
				}
			case 4: // complete on a random live instance
				if len(live) == 0 {
					continue
				}
				in := live[rng.Intn(len(live))]
				if in.Outstanding() > 0 {
					m.OnComplete(in)
					dispatched--
				}
			case 5: // remove a random instance
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				in := live[i]
				if m.Remove(in.ID) != in {
					return false
				}
				dispatched -= in.Outstanding()
				live = append(live[:i], live[i+1:]...)
			}
			if m.TotalOutstanding() != dispatched {
				return false
			}
			for lvl := 0; lvl < m.NumLevels(); lvl++ {
				front := m.Level(lvl).Front()
				for _, in := range m.Level(lvl).Instances() {
					if front == nil {
						return false
					}
					if in.Outstanding() < front.Outstanding() ||
						(in.Outstanding() == front.Outstanding() && in.ID < front.ID) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentDispatchCompleteStress hammers the striped queue from
// many goroutines — dispatching against level fronts and completing —
// and verifies the post-quiescence invariants: outstanding counts sum to
// dispatches minus completions, and every level front is its least-loaded
// member. Run under -race this also proves the striping is data-race
// free.
func TestConcurrentDispatchCompleteStress(t *testing.T) {
	const (
		levels   = 4
		perLevel = 8
		iters    = 3000
		grs      = 8
	)
	maxLens := make([]int, levels)
	for i := range maxLens {
		maxLens[i] = 64 * (i + 1)
	}
	m := mustMLf(t, maxLens)
	for id := 0; id < levels*perLevel; id++ {
		if err := m.Add(NewInstance(id, id%levels, 0, 30)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < grs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			backlog := make([]*Instance, 0, 64)
			for i := 0; i < iters; i++ {
				lvl := rng.Intn(levels)
				if head := m.Level(lvl).Front(); head != nil {
					m.OnDispatch(head)
					backlog = append(backlog, head)
				}
				// Complete about as fast as we dispatch, slightly lagging
				// so there is always in-flight load.
				if len(backlog) > 4 {
					j := rng.Intn(len(backlog))
					m.OnComplete(backlog[j])
					backlog[j] = backlog[len(backlog)-1]
					backlog = backlog[:len(backlog)-1]
				}
				if i%64 == 0 {
					runtime.Gosched()
				}
			}
			for _, in := range backlog {
				m.OnComplete(in)
			}
		}(g)
	}
	wg.Wait()
	if got := m.TotalOutstanding(); got != 0 {
		t.Errorf("after full drain total outstanding = %d, want 0", got)
	}
	for lvl := 0; lvl < m.NumLevels(); lvl++ {
		front := m.Level(lvl).Front()
		if front == nil {
			t.Fatalf("level %d unexpectedly empty", lvl)
		}
		for _, in := range m.Level(lvl).Instances() {
			if in.Outstanding() < front.Outstanding() {
				t.Errorf("level %d front %d (out %d) is not least-loaded: instance %d has %d",
					lvl, front.ID, front.Outstanding(), in.ID, in.Outstanding())
			}
		}
	}
}

// TestConcurrentTopologyChurn mixes dispatch/complete traffic with
// concurrent instance add/remove — the scale-out/replacement path — to
// prove the topology lock and the level stripes compose without deadlock
// or lost accounting.
func TestConcurrentTopologyChurn(t *testing.T) {
	m := mustMLf(t, []int{64, 128})
	for id := 0; id < 8; id++ {
		if err := m.Add(NewInstance(id, id%2, 0, 20)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if head := m.Level(rng.Intn(2)).Front(); head != nil {
					m.OnDispatch(head)
					m.OnComplete(head)
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		id := 1000 + i
		if err := m.Add(NewInstance(id, i%2, 0, 20)); err != nil {
			t.Fatal(err)
		}
		m.Remove(id)
	}
	close(stop)
	wg.Wait()
	if m.Size() != 8 {
		t.Errorf("size = %d, want the original 8", m.Size())
	}
}

func TestNewMultiLevelValidation(t *testing.T) {
	if _, err := NewMultiLevel(nil); err == nil {
		t.Error("empty levels should fail")
	}
	if _, err := NewMultiLevel([]int{64, 64}); err == nil {
		t.Error("non-increasing max_lengths should fail")
	}
	if _, err := NewMultiLevel([]int{128, 64}); err == nil {
		t.Error("decreasing max_lengths should fail")
	}
}

func mustML(t *testing.T, lens []int) *MultiLevel {
	t.Helper()
	m, err := NewMultiLevel(lens)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mustMLf is mustML for helpers called from testing/quick functions where
// t.Fatal must not be called off the test goroutine.
func mustMLf(t *testing.T, lens []int) *MultiLevel {
	m, err := NewMultiLevel(lens)
	if err != nil {
		t.Error(err)
		return nil
	}
	return m
}

func TestMultiLevelAddRemove(t *testing.T) {
	m := mustML(t, []int{64, 128, 256, 512})
	if m.NumLevels() != 4 {
		t.Fatalf("levels = %d, want 4", m.NumLevels())
	}
	in := &Instance{ID: 7, Runtime: 2, MaxCapacity: 40}
	if err := m.Add(in); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(&Instance{ID: 7, Runtime: 1}); err == nil {
		t.Error("duplicate ID should fail")
	}
	if err := m.Add(&Instance{ID: 8, Runtime: 9}); err == nil {
		t.Error("out-of-range runtime should fail")
	}
	if err := m.Add(&Instance{ID: 9, Runtime: -1}); err == nil {
		t.Error("negative runtime should fail")
	}
	if m.Get(7) != in || m.Size() != 1 {
		t.Error("instance lookup failed")
	}
	if m.Level(2).Front() != in {
		t.Error("instance should head its level")
	}
	if got := m.Remove(7); got != in {
		t.Error("remove should return the instance")
	}
	if m.Remove(7) != nil {
		t.Error("double remove should return nil")
	}
	if m.Size() != 0 || m.Level(2).Front() != nil {
		t.Error("level should be empty after removal")
	}
}

func TestCandidateLevels(t *testing.T) {
	m := mustML(t, []int{64, 128, 256, 512})
	cases := []struct {
		length int
		want   []int
	}{
		{1, []int{0, 1, 2, 3}},
		{64, []int{0, 1, 2, 3}},
		{65, []int{1, 2, 3}},
		{200, []int{2, 3}},
		{512, []int{3}},
		{513, []int{}},
	}
	for _, tc := range cases {
		got := m.CandidateLevels(tc.length)
		if len(got) != len(tc.want) {
			t.Errorf("CandidateLevels(%d) = %v, want %v", tc.length, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("CandidateLevels(%d) = %v, want %v", tc.length, got, tc.want)
				break
			}
		}
	}
}

func TestDispatchCompleteCycle(t *testing.T) {
	m := mustML(t, []int{64, 128})
	a := &Instance{ID: 1, Runtime: 0, MaxCapacity: 10}
	b := &Instance{ID: 2, Runtime: 0, MaxCapacity: 10}
	for _, in := range []*Instance{a, b} {
		if err := m.Add(in); err != nil {
			t.Fatal(err)
		}
	}
	m.OnDispatch(a)
	m.OnDispatch(a)
	if m.Level(0).Front() != b {
		t.Error("least-loaded should rotate to b after dispatching to a")
	}
	if m.TotalOutstanding() != 2 {
		t.Errorf("outstanding = %d, want 2", m.TotalOutstanding())
	}
	m.OnComplete(a)
	m.OnComplete(a)
	m.OnComplete(a) // extra completion is clamped at zero
	if a.Outstanding() != 0 {
		t.Errorf("outstanding clamped at 0, got %d", a.Outstanding())
	}
	if m.TotalOutstanding() != 0 {
		t.Errorf("total outstanding = %d, want 0", m.TotalOutstanding())
	}
}

func TestCongestion(t *testing.T) {
	in := NewInstance(0, 0, 54, 60)
	if got := in.Congestion(); got != 0.9 {
		t.Errorf("congestion = %v, want 0.9", got)
	}
	broken := NewInstance(0, 0, 3, 0)
	if got := broken.Congestion(); got != 1 {
		t.Errorf("zero-capacity congestion = %v, want 1 (saturated)", got)
	}
}

func TestInstancesEnumeration(t *testing.T) {
	m := mustML(t, []int{64, 128})
	for i := 0; i < 5; i++ {
		if err := m.Add(&Instance{ID: i, Runtime: i % 2, MaxCapacity: 10}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.Instances()); got != 5 {
		t.Errorf("Instances() returned %d, want 5", got)
	}
	if got := len(m.Level(0).Instances()); got != 3 {
		t.Errorf("level 0 has %d instances, want 3", got)
	}
	buf := make([]*Instance, 0, 8)
	if got := len(m.Level(0).AppendInstances(buf)); got != 3 {
		t.Errorf("AppendInstances returned %d, want 3", got)
	}
}
