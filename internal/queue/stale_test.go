package queue

import "testing"

// TestOnDispatchStaleReheap checks the deferred-repair contract: counts
// are exact immediately, heap rank (and the cached front) only after
// Reheap.
func TestOnDispatchStaleReheap(t *testing.T) {
	m, err := NewMultiLevel([]int{128})
	if err != nil {
		t.Fatal(err)
	}
	a := NewInstance(1, 0, 0, 10)
	b := NewInstance(2, 0, 0, 10)
	for _, in := range []*Instance{a, b} {
		if err := m.Add(in); err != nil {
			t.Fatal(err)
		}
	}
	// Front is a (least-loaded, lowest-ID) — pile deferred dispatches on it.
	for i := 0; i < 5; i++ {
		m.OnDispatchStale(a)
	}
	if a.Outstanding() != 5 {
		t.Fatalf("outstanding %d, want 5 (counts must be exact before Reheap)", a.Outstanding())
	}
	if got := m.Level(0).Front(); got != a {
		t.Fatalf("front moved to %d before Reheap; staleness contract says it stays %d", got.ID, a.ID)
	}
	m.Reheap(0)
	if got := m.Level(0).Front(); got != b {
		t.Fatalf("front %d after Reheap, want %d (the now least-loaded)", got.ID, b.ID)
	}
	// Reheap also absorbs a pending lazy fix-up.
	m.OnDispatchStale(b)
	m.Level(0).dirty.Store(true)
	m.Reheap(0)
	if m.Level(0).dirty.Load() {
		t.Fatal("Reheap left the dirty flag set")
	}
}
