// Package queue provides the scheduling data structures of Arlo's Request
// Scheduler (paper section 3.4, Fig. 5): a per-runtime priority queue of
// instances keyed by outstanding load, and the multi-level queue that
// stacks one such priority queue per runtime in increasing max_length
// order. The instance with the least ongoing load always sits at the head
// of its level.
//
// # Concurrency model
//
// The multi-level queue is safe for concurrent use and synchronization is
// striped per level: each Level carries its own mutex, so dispatches
// against different runtimes never contend. Outstanding counts are
// atomics, which makes Congestion() reads lock-free and lets completions
// avoid blocking on a busy level: OnComplete decrements atomically and
// only repairs the heap if the level lock is immediately available,
// otherwise it marks the level dirty and the next Front() re-heapifies
// (the lazy fix-up trade-off: a completion may briefly leave a stale heap
// position, never a stale count).
//
// Lock order: topology lock (MultiLevel.topo) before any level lock, and
// level locks in ascending level index. No method of this package holds
// two level locks at once, so callers walking candidate levels (the
// Algorithm 1 peek loop) are deadlock-free by construction.
package queue

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Sentinel errors for construction and topology changes, matched with
// errors.Is; the wrapped messages carry the offending values.
var (
	// ErrNoLevels: a multi-level queue needs at least one runtime level.
	ErrNoLevels = errors.New("queue: need at least one runtime level")
	// ErrLevelOrder: runtime max_lengths must be strictly increasing.
	ErrLevelOrder = errors.New("queue: max_lengths must be strictly increasing")
	// ErrRuntimeRange: an instance names a runtime level that does not
	// exist.
	ErrRuntimeRange = errors.New("queue: runtime index out of range")
	// ErrDuplicateInstance: an instance ID is already registered.
	ErrDuplicateInstance = errors.New("queue: duplicate instance ID")
)

// Instance is the scheduler-side view of one deployed runtime instance.
// Instances must not be copied after first use (the outstanding counter
// is an atomic); handle them by pointer.
type Instance struct {
	// ID is unique across the cluster.
	ID int
	// Runtime is the index of the runtime this instance serves (sorted by
	// increasing max_length).
	Runtime int
	// MaxCapacity is M_i: the largest queue the instance can drain within
	// the SLO.
	MaxCapacity int

	// outstanding counts dispatched-but-not-completed requests. Atomic so
	// congestion reads and completion decrements never need a level lock.
	outstanding atomic.Int64

	heapIndex int // position in its level's heap; -1 when detached. Guarded by the level's mutex.

	// Pad past the 48-byte size class so consecutively allocated
	// instances never share a cache line: the outstanding counter above
	// is written from every core on every dispatch and completion, and
	// false sharing between neighbouring instances flattens the parallel
	// dispatch path's scaling.
	_ [24]byte
}

// NewInstance constructs a detached instance with a seeded outstanding
// count — the literal-free way to build test and experiment fixtures now
// that the counter is atomic.
func NewInstance(id, runtime, outstanding, maxCapacity int) *Instance {
	in := &Instance{ID: id, Runtime: runtime, MaxCapacity: maxCapacity}
	in.outstanding.Store(int64(outstanding))
	return in
}

// Outstanding returns the dispatched-but-not-completed request count.
// It is a lock-free atomic read.
func (in *Instance) Outstanding() int { return int(in.outstanding.Load()) }

// SetOutstanding overwrites the outstanding count (test and experiment
// seeding; live accounting goes through OnDispatch/OnComplete). The
// caller must restore heap order via Level.Update when the instance is
// attached to a level.
func (in *Instance) SetOutstanding(n int) { in.outstanding.Store(int64(n)) }

// Congestion returns the instance's congestion level P = outstanding /
// capacity used by Algorithm 1 (lines 7-9). Lock-free.
func (in *Instance) Congestion() float64 {
	if in.MaxCapacity <= 0 {
		return 1
	}
	return float64(in.outstanding.Load()) / float64(in.MaxCapacity)
}

// instanceHeap is a min-heap of instances ordered by outstanding load,
// breaking ties by ID for determinism.
type instanceHeap []*Instance

func (h instanceHeap) Len() int { return len(h) }
func (h instanceHeap) Less(i, j int) bool {
	oi, oj := h[i].outstanding.Load(), h[j].outstanding.Load()
	if oi != oj {
		return oi < oj
	}
	return h[i].ID < h[j].ID
}
func (h instanceHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}
func (h *instanceHeap) Push(x any) {
	in := x.(*Instance)
	in.heapIndex = len(*h)
	*h = append(*h, in)
}
func (h *instanceHeap) Pop() any {
	old := *h
	n := len(old)
	in := old[n-1]
	old[n-1] = nil
	in.heapIndex = -1
	*h = old[:n-1]
	return in
}

// Level is the priority queue of one runtime's instances. It carries its
// own mutex — one stripe of the multi-level queue's lock striping — and
// must not be copied after first use.
type Level struct {
	mu sync.Mutex
	h  instanceHeap
	// dirty records that an outstanding count changed without a heap
	// fix-up (a completion that found the lock busy); the next Front()
	// re-heapifies. Separate from mu so completions can set it lock-free.
	dirty atomic.Bool
	// front caches h[0] (nil when empty), refreshed under mu after every
	// heap mutation, so the Algorithm 1 peek walk reads level heads
	// without taking any stripe lock.
	front atomic.Pointer[Instance]

	// Levels live contiguously in MultiLevel.levels; pad so two stripes'
	// mutexes and front caches never share a cache line.
	_ [64]byte
}

// refreshFrontLocked re-caches the heap head; caller holds l.mu.
func (l *Level) refreshFrontLocked() {
	if len(l.h) == 0 {
		l.front.Store(nil)
		return
	}
	l.front.Store(l.h[0])
}

// Len returns the number of instances at this level.
func (l *Level) Len() int {
	l.mu.Lock()
	n := len(l.h)
	l.mu.Unlock()
	return n
}

// Front returns the least-loaded instance, or nil when the level is
// empty. With no lazy fix-up pending this is a lock-free atomic read of
// the cached head; a pending fix-up is applied first, so the head is the
// minimum by (outstanding, ID) as of this call.
func (l *Level) Front() *Instance {
	if !l.dirty.Load() {
		return l.front.Load()
	}
	l.mu.Lock()
	if l.dirty.Swap(false) {
		heap.Init(&l.h)
		l.refreshFrontLocked()
	}
	front := l.front.Load()
	l.mu.Unlock()
	return front
}

// Add inserts an instance into the level.
func (l *Level) Add(in *Instance) {
	l.mu.Lock()
	heap.Push(&l.h, in)
	l.refreshFrontLocked()
	l.mu.Unlock()
}

// Remove detaches an instance from the level. It reports whether the
// instance was present.
func (l *Level) Remove(in *Instance) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dirty.Swap(false) {
		heap.Init(&l.h)
	}
	ok := in.heapIndex >= 0 && in.heapIndex < len(l.h) && l.h[in.heapIndex] == in
	if ok {
		heap.Remove(&l.h, in.heapIndex)
	}
	l.refreshFrontLocked()
	return ok
}

// Update restores heap order after an instance's outstanding count
// changed. With a lazy fix-up pending the per-entry repair is skipped:
// the whole level re-heapifies on the next Front anyway.
func (l *Level) Update(in *Instance) {
	l.mu.Lock()
	l.fixLocked(in)
	l.mu.Unlock()
}

// fixLocked repairs in's heap position; caller holds l.mu.
func (l *Level) fixLocked(in *Instance) {
	if l.dirty.Load() {
		return // the next Front() re-heapifies the whole level
	}
	if in.heapIndex >= 0 && in.heapIndex < len(l.h) && l.h[in.heapIndex] == in {
		heap.Fix(&l.h, in.heapIndex)
		l.refreshFrontLocked()
	}
}

// Depth returns the level's queue depth: the sum of outstanding requests
// across its instances — the per-level gauge of the observability plane.
func (l *Level) Depth() int {
	l.mu.Lock()
	d := 0
	for _, in := range l.h {
		d += int(in.outstanding.Load())
	}
	l.mu.Unlock()
	return d
}

// Instances returns a snapshot of the level's instances in unspecified
// order.
func (l *Level) Instances() []*Instance {
	l.mu.Lock()
	out := make([]*Instance, len(l.h))
	copy(out, l.h)
	l.mu.Unlock()
	return out
}

// AppendInstances appends a snapshot of the level's instances to dst and
// returns the extended slice — the allocation-free variant of Instances
// for hot paths that reuse a scratch buffer.
func (l *Level) AppendInstances(dst []*Instance) []*Instance {
	l.mu.Lock()
	dst = append(dst, l.h...)
	l.mu.Unlock()
	return dst
}

// MultiLevel is the Request Scheduler's multi-level queue: level k holds
// the instances of runtime k, with runtimes sorted by increasing
// max_length. It is safe for concurrent use; see the package comment for
// the locking design.
type MultiLevel struct {
	levels     []Level
	maxLengths []int // per level, increasing; immutable after construction
	levelIdx   []int // [0, 1, ..., L-1]; CandidateLevels returns suffixes of it

	// topo guards instance membership (byID). Dispatch and completion
	// never take it; only topology changes (Add/Remove) and enumeration
	// do.
	topo sync.RWMutex
	byID map[int]*Instance
}

// NewMultiLevel creates a multi-level queue for runtimes with the given
// max_lengths, which must be strictly increasing.
func NewMultiLevel(maxLengths []int) (*MultiLevel, error) {
	if len(maxLengths) == 0 {
		return nil, ErrNoLevels
	}
	for i := 1; i < len(maxLengths); i++ {
		if maxLengths[i] <= maxLengths[i-1] {
			return nil, fmt.Errorf("%w: got %v", ErrLevelOrder, maxLengths)
		}
	}
	ls := make([]int, len(maxLengths))
	copy(ls, maxLengths)
	idx := make([]int, len(maxLengths))
	for i := range idx {
		idx[i] = i
	}
	return &MultiLevel{
		levels:     make([]Level, len(maxLengths)),
		maxLengths: ls,
		levelIdx:   idx,
		byID:       make(map[int]*Instance),
	}, nil
}

// NumLevels returns the number of runtime levels.
func (m *MultiLevel) NumLevels() int { return len(m.levels) }

// MaxLength returns the max_length of runtime level k.
func (m *MultiLevel) MaxLength(k int) int { return m.maxLengths[k] }

// Level returns level k.
func (m *MultiLevel) Level(k int) *Level { return &m.levels[k] }

// Add registers an instance under its runtime's level. It returns an error
// for an out-of-range runtime index or duplicate instance ID.
func (m *MultiLevel) Add(in *Instance) error {
	if in.Runtime < 0 || in.Runtime >= len(m.levels) {
		return fmt.Errorf("%w: instance %d has runtime %d outside [0, %d)", ErrRuntimeRange, in.ID, in.Runtime, len(m.levels))
	}
	m.topo.Lock()
	defer m.topo.Unlock()
	if _, dup := m.byID[in.ID]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateInstance, in.ID)
	}
	m.levels[in.Runtime].Add(in)
	m.byID[in.ID] = in
	return nil
}

// Remove detaches an instance by ID, returning it (nil if unknown).
func (m *MultiLevel) Remove(id int) *Instance {
	m.topo.Lock()
	defer m.topo.Unlock()
	in, ok := m.byID[id]
	if !ok {
		return nil
	}
	m.levels[in.Runtime].Remove(in)
	delete(m.byID, id)
	return in
}

// Get returns the instance with the given ID, or nil.
func (m *MultiLevel) Get(id int) *Instance {
	m.topo.RLock()
	in := m.byID[id]
	m.topo.RUnlock()
	return in
}

// Size returns the total number of registered instances.
func (m *MultiLevel) Size() int {
	m.topo.RLock()
	n := len(m.byID)
	m.topo.RUnlock()
	return n
}

// CandidateLevels returns the indexes of all runtime levels whose
// max_length can accommodate a request of the given length, in increasing
// max_length order (the candidate set Q_e of Algorithm 1, line 2). The
// result is empty when the request exceeds every runtime.
//
// Because max_lengths are increasing the candidate set is always a level
// suffix, so the returned slice is a shared read-only view — callers must
// not modify it. No allocation on the dispatch hot path.
func (m *MultiLevel) CandidateLevels(length int) []int {
	// Binary search for the first level with maxLengths[k] >= length.
	lo, hi := 0, len(m.maxLengths)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.maxLengths[mid] < length {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return m.levelIdx[lo:]
}

// OnDispatch records a dispatch to the instance: its outstanding count is
// incremented and its level's heap order restored (Algorithm 1, line 22).
// Only the instance's level stripe is locked.
func (m *MultiLevel) OnDispatch(in *Instance) {
	in.outstanding.Add(1)
	m.levels[in.Runtime].Update(in)
}

// OnDispatchStale records a dispatch to the instance with the heap repair
// deferred: the outstanding count is incremented atomically but the
// level's heap order is NOT restored — the instance may sit below its true
// position and the cached Front may go stale until the caller runs Reheap
// on the touched level. This is the group-submit half of the ingress
// path's staleness/latency trade-off: a batch of G dispatches pays one
// stripe lock (the Reheap) instead of G, at the cost of load-balance
// decisions inside the group reading a front whose count is accurate but
// whose "least loaded" rank may be stale by up to G-1 dispatches.
//
// Callers MUST call Reheap on every level they dispatched into before
// releasing the group, or the level's order stays stale indefinitely
// (counts — and therefore congestion and capacity accounting — remain
// exact throughout; only the heap rank lags).
func (m *MultiLevel) OnDispatchStale(in *Instance) {
	in.outstanding.Add(1)
}

// Reheap restores level k's heap order and front cache in one critical
// section — the per-group repair paired with OnDispatchStale. It also
// absorbs any pending lazy fix-up (the dirty flag completions set under
// contention).
func (m *MultiLevel) Reheap(k int) {
	l := &m.levels[k]
	l.mu.Lock()
	l.dirty.Store(false)
	heap.Init(&l.h)
	l.refreshFrontLocked()
	l.mu.Unlock()
}

// OnComplete records a request completion on the instance. The decrement
// is atomic and never blocks on the level lock: if the lock is free the
// heap position is repaired inline (so single-threaded behavior matches
// the eager implementation exactly); under contention the level is marked
// dirty and the next Front() re-heapifies.
func (m *MultiLevel) OnComplete(in *Instance) {
	// Clamped atomic decrement: never below zero.
	for {
		o := in.outstanding.Load()
		if o <= 0 {
			return
		}
		if in.outstanding.CompareAndSwap(o, o-1) {
			break
		}
	}
	l := &m.levels[in.Runtime]
	if l.mu.TryLock() {
		l.fixLocked(in)
		l.mu.Unlock()
		return
	}
	// Lock busy: defer the fix-up. Store after the decrement so a
	// concurrent Front() that already swapped dirty off re-observes it.
	l.dirty.Store(true)
}

// Instances returns every registered instance in unspecified order.
func (m *MultiLevel) Instances() []*Instance {
	m.topo.RLock()
	out := make([]*Instance, 0, len(m.byID))
	for _, in := range m.byID {
		out = append(out, in)
	}
	m.topo.RUnlock()
	return out
}

// TotalOutstanding sums outstanding requests across all instances.
func (m *MultiLevel) TotalOutstanding() int {
	m.topo.RLock()
	total := 0
	for _, in := range m.byID {
		total += int(in.outstanding.Load())
	}
	m.topo.RUnlock()
	return total
}
