// Package queue provides the scheduling data structures of Arlo's Request
// Scheduler (paper section 3.4, Fig. 5): a per-runtime priority queue of
// instances keyed by outstanding load, and the multi-level queue that
// stacks one such priority queue per runtime in increasing max_length
// order. The instance with the least ongoing load always sits at the head
// of its level.
package queue

import (
	"container/heap"
	"fmt"
)

// Instance is the scheduler-side view of one deployed runtime instance.
type Instance struct {
	// ID is unique across the cluster.
	ID int
	// Runtime is the index of the runtime this instance serves (sorted by
	// increasing max_length).
	Runtime int
	// Outstanding counts dispatched-but-not-completed requests.
	Outstanding int
	// MaxCapacity is M_i: the largest queue the instance can drain within
	// the SLO.
	MaxCapacity int

	heapIndex int // position in its level's heap; -1 when detached
}

// Congestion returns the instance's congestion level P = outstanding /
// capacity used by Algorithm 1 (lines 7-9).
func (in *Instance) Congestion() float64 {
	if in.MaxCapacity <= 0 {
		return 1
	}
	return float64(in.Outstanding) / float64(in.MaxCapacity)
}

// instanceHeap is a min-heap of instances ordered by outstanding load,
// breaking ties by ID for determinism.
type instanceHeap []*Instance

func (h instanceHeap) Len() int { return len(h) }
func (h instanceHeap) Less(i, j int) bool {
	if h[i].Outstanding != h[j].Outstanding {
		return h[i].Outstanding < h[j].Outstanding
	}
	return h[i].ID < h[j].ID
}
func (h instanceHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}
func (h *instanceHeap) Push(x any) {
	in := x.(*Instance)
	in.heapIndex = len(*h)
	*h = append(*h, in)
}
func (h *instanceHeap) Pop() any {
	old := *h
	n := len(old)
	in := old[n-1]
	old[n-1] = nil
	in.heapIndex = -1
	*h = old[:n-1]
	return in
}

// Level is the priority queue of one runtime's instances.
type Level struct {
	h instanceHeap
}

// Len returns the number of instances at this level.
func (l *Level) Len() int { return len(l.h) }

// Front returns the least-loaded instance, or nil when the level is empty.
func (l *Level) Front() *Instance {
	if len(l.h) == 0 {
		return nil
	}
	return l.h[0]
}

// Add inserts an instance into the level.
func (l *Level) Add(in *Instance) {
	heap.Push(&l.h, in)
}

// Remove detaches an instance from the level. It reports whether the
// instance was present.
func (l *Level) Remove(in *Instance) bool {
	if in.heapIndex < 0 || in.heapIndex >= len(l.h) || l.h[in.heapIndex] != in {
		return false
	}
	heap.Remove(&l.h, in.heapIndex)
	return true
}

// Update restores heap order after an instance's Outstanding changed.
func (l *Level) Update(in *Instance) {
	if in.heapIndex >= 0 && in.heapIndex < len(l.h) && l.h[in.heapIndex] == in {
		heap.Fix(&l.h, in.heapIndex)
	}
}

// Instances returns all instances at this level in unspecified order.
func (l *Level) Instances() []*Instance {
	out := make([]*Instance, len(l.h))
	copy(out, l.h)
	return out
}

// MultiLevel is the Request Scheduler's multi-level queue: level k holds
// the instances of runtime k, with runtimes sorted by increasing
// max_length.
type MultiLevel struct {
	levels     []Level
	maxLengths []int // per level, increasing
	byID       map[int]*Instance
}

// NewMultiLevel creates a multi-level queue for runtimes with the given
// max_lengths, which must be strictly increasing.
func NewMultiLevel(maxLengths []int) (*MultiLevel, error) {
	if len(maxLengths) == 0 {
		return nil, fmt.Errorf("queue: need at least one runtime level")
	}
	for i := 1; i < len(maxLengths); i++ {
		if maxLengths[i] <= maxLengths[i-1] {
			return nil, fmt.Errorf("queue: max_lengths must be strictly increasing, got %v", maxLengths)
		}
	}
	ls := make([]int, len(maxLengths))
	copy(ls, maxLengths)
	return &MultiLevel{
		levels:     make([]Level, len(maxLengths)),
		maxLengths: ls,
		byID:       make(map[int]*Instance),
	}, nil
}

// NumLevels returns the number of runtime levels.
func (m *MultiLevel) NumLevels() int { return len(m.levels) }

// MaxLength returns the max_length of runtime level k.
func (m *MultiLevel) MaxLength(k int) int { return m.maxLengths[k] }

// Level returns level k.
func (m *MultiLevel) Level(k int) *Level { return &m.levels[k] }

// Add registers an instance under its runtime's level. It returns an error
// for an out-of-range runtime index or duplicate instance ID.
func (m *MultiLevel) Add(in *Instance) error {
	if in.Runtime < 0 || in.Runtime >= len(m.levels) {
		return fmt.Errorf("queue: instance %d has runtime %d outside [0, %d)", in.ID, in.Runtime, len(m.levels))
	}
	if _, dup := m.byID[in.ID]; dup {
		return fmt.Errorf("queue: duplicate instance ID %d", in.ID)
	}
	m.levels[in.Runtime].Add(in)
	m.byID[in.ID] = in
	return nil
}

// Remove detaches an instance by ID, returning it (nil if unknown).
func (m *MultiLevel) Remove(id int) *Instance {
	in, ok := m.byID[id]
	if !ok {
		return nil
	}
	m.levels[in.Runtime].Remove(in)
	delete(m.byID, id)
	return in
}

// Get returns the instance with the given ID, or nil.
func (m *MultiLevel) Get(id int) *Instance { return m.byID[id] }

// Size returns the total number of registered instances.
func (m *MultiLevel) Size() int { return len(m.byID) }

// CandidateLevels returns the indexes of all runtime levels whose
// max_length can accommodate a request of the given length, in increasing
// max_length order (the candidate set Q_e of Algorithm 1, line 2). The
// result is empty when the request exceeds every runtime.
func (m *MultiLevel) CandidateLevels(length int) []int {
	out := make([]int, 0, len(m.levels))
	for k, ml := range m.maxLengths {
		if ml >= length {
			out = append(out, k)
		}
	}
	return out
}

// OnDispatch records a dispatch to the instance: its outstanding count is
// incremented and its level's heap order restored (Algorithm 1, line 22).
func (m *MultiLevel) OnDispatch(in *Instance) {
	in.Outstanding++
	m.levels[in.Runtime].Update(in)
}

// OnComplete records a request completion on the instance.
func (m *MultiLevel) OnComplete(in *Instance) {
	if in.Outstanding > 0 {
		in.Outstanding--
	}
	m.levels[in.Runtime].Update(in)
}

// Instances returns every registered instance in unspecified order.
func (m *MultiLevel) Instances() []*Instance {
	out := make([]*Instance, 0, len(m.byID))
	for _, in := range m.byID {
		out = append(out, in)
	}
	return out
}

// TotalOutstanding sums outstanding requests across all instances.
func (m *MultiLevel) TotalOutstanding() int {
	total := 0
	for _, in := range m.byID {
		total += in.Outstanding
	}
	return total
}
