package queue

import (
	"math/rand"
	"testing"
	"time"
)

// popN pops n items and tallies them by flow key.
func popN(t *testing.T, q *Fair[string], n int) map[string]int {
	t.Helper()
	got := make(map[string]int)
	for i := 0; i < n; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop %d/%d returned ok=false", i, n)
		}
		got[v]++
	}
	return got
}

// TestFairEqualWeightsUnequalBacklog is the starvation test: one flow
// offers 9x the other's load at equal weight, and over any backlogged
// prefix the dispatch share must still split ~50:50 — the deep backlog
// waits behind the light flow's current share instead of ahead of it.
func TestFairEqualWeightsUnequalBacklog(t *testing.T) {
	q := NewFair[string]()
	for i := 0; i < 900; i++ {
		q.Push("noisy", 1, 1, "noisy")
	}
	for i := 0; i < 100; i++ {
		q.Push("victim", 1, 1, "victim")
	}
	got := popN(t, q, 200)
	// Both flows stay backlogged through the window, so each is entitled to
	// ~100 of the first 200 dispatches (±10%).
	if got["victim"] < 90 || got["victim"] > 110 {
		t.Fatalf("victim got %d of first 200 dispatches, want 100 +/- 10", got["victim"])
	}
	// The remaining 800 drain in arrival order once victim is empty.
	rest := popN(t, q, 800)
	if rest["noisy"]+got["noisy"] != 900 || rest["victim"]+got["victim"] != 100 {
		t.Fatalf("lost items: %v then %v", got, rest)
	}
}

// TestFairWeightedShare checks weight proportionality: weights 3:1 at
// equal offered load converge to a 75:25 dispatch share (±10%).
func TestFairWeightedShare(t *testing.T) {
	q := NewFair[string]()
	for i := 0; i < 300; i++ {
		q.Push("heavy", 3, 1, "heavy")
		q.Push("light", 1, 1, "light")
	}
	got := popN(t, q, 200)
	if got["heavy"] < 135 || got["heavy"] > 165 {
		t.Fatalf("heavy got %d of first 200, want 150 +/- 15", got["heavy"])
	}
}

// TestFairCostCurrency verifies the share currency is cost, not item
// count: a flow pushing 10x-cost items at equal weight gets ~1/10 the
// items over a backlogged window (equal token throughput).
func TestFairCostCurrency(t *testing.T) {
	q := NewFair[string]()
	for i := 0; i < 500; i++ {
		q.Push("big", 1, 10, "big")
		q.Push("small", 1, 1, "small")
	}
	got := popN(t, q, 220)
	// Equal token share means ~20 big (200 tokens) per ~200 small.
	if got["big"] < 14 || got["big"] > 26 {
		t.Fatalf("big got %d of first 220 pops, want ~20", got["big"])
	}
}

// TestFairIdleReentry pins the SFQ re-entry rule: a flow that goes idle
// re-enters at the current virtual time and cannot bank credit while
// away to monopolize the queue on return.
func TestFairIdleReentry(t *testing.T) {
	q := NewFair[string]()
	q.Push("a", 1, 1, "a")
	if v, _ := q.Pop(); v != "a" {
		t.Fatal("warmup pop")
	}
	// vtime advances far while "a" is idle.
	for i := 0; i < 100; i++ {
		q.Push("b", 1, 1, "b")
	}
	popN(t, q, 100)
	// "a" returns; with both flows backlogged it gets its fair half, not a
	// 100-item catch-up burst.
	for i := 0; i < 50; i++ {
		q.Push("a", 1, 1, "a")
		q.Push("b", 1, 1, "b")
	}
	got := popN(t, q, 20)
	if got["a"] > 13 {
		t.Fatalf("returning flow monopolized: %d of first 20 pops", got["a"])
	}
}

// TestFairRandomizedConservation pushes a random interleaving across
// several flows and checks every item comes back exactly once.
func TestFairRandomizedConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := NewFair[string]()
	keys := []string{"a", "b", "c", "d"}
	pushed := make(map[string]int)
	total := 0
	for i := 0; i < 2000; i++ {
		k := keys[rng.Intn(len(keys))]
		q.Push(k, float64(rng.Intn(4))+0.5, float64(rng.Intn(100)), k)
		pushed[k]++
		total++
		// Interleave pops so flows go idle and re-enter.
		if rng.Intn(3) == 0 {
			v, ok := q.Pop()
			if !ok {
				t.Fatal("pop failed with items queued")
			}
			pushed[v]--
			total--
		}
	}
	for total > 0 {
		v, ok := q.Pop()
		if !ok {
			t.Fatalf("queue dried up with %d items unaccounted", total)
		}
		pushed[v]--
		total--
	}
	if q.Len() != 0 {
		t.Fatalf("Len() = %d after draining", q.Len())
	}
	for k, n := range pushed {
		if n != 0 {
			t.Fatalf("flow %s: %d items lost or duplicated", k, n)
		}
	}
}

// TestFairCloseDrain checks shutdown semantics: Close rejects new pushes
// but queued items remain poppable, and Pop reports done only once
// drained.
func TestFairCloseDrain(t *testing.T) {
	q := NewFair[string]()
	for i := 0; i < 3; i++ {
		q.Push("a", 1, 1, "a")
	}
	q.Close()
	if q.Push("a", 1, 1, "late") {
		t.Fatal("Push accepted after Close")
	}
	for i := 0; i < 3; i++ {
		if _, ok := q.Pop(); !ok {
			t.Fatalf("queued item %d not delivered after Close", i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop returned an item from a drained closed queue")
	}
}

// TestFairCloseWakesBlockedPop checks a consumer blocked in Pop returns
// promptly when the queue closes empty.
func TestFairCloseWakesBlockedPop(t *testing.T) {
	q := NewFair[string]()
	done := make(chan bool, 1)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("blocked Pop returned an item from an empty queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake the blocked Pop")
	}
}

// TestFairWeightClamp pins the defensive clamps: non-positive weights
// and sub-1 costs must not wedge the pass arithmetic.
func TestFairWeightClamp(t *testing.T) {
	q := NewFair[string]()
	q.Push("z", 0, 0, "z")
	q.Push("n", -5, -3, "n")
	got := popN(t, q, 2)
	if got["z"] != 1 || got["n"] != 1 {
		t.Fatalf("clamped pushes lost items: %v", got)
	}
}
