package queue

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// refLevel is the naive reference model of one level: a flat slice,
// re-scanned on every query. The real Level must agree with it after
// every operation.
type refLevel struct {
	insts map[int]*Instance
}

func (r *refLevel) front() *Instance {
	var best *Instance
	for _, in := range r.insts {
		if best == nil || in.Outstanding() < best.Outstanding() ||
			(in.Outstanding() == best.Outstanding() && in.ID < best.ID) {
			best = in
		}
	}
	return best
}

func (r *refLevel) depth() int {
	d := 0
	for _, in := range r.insts {
		d += in.Outstanding()
	}
	return d
}

// refCandidates is the reference spelling of CandidateLevels: every level
// whose max_length covers the request, smallest first.
func refCandidates(maxLens []int, length int) []int {
	var out []int
	for k, ml := range maxLens {
		if ml >= length {
			out = append(out, k)
		}
	}
	return out
}

// TestMultiLevelMatchesReferenceModel drives the lock-striped multi-level
// queue and a naive reference model with the same seeded operation
// stream — add, remove, dispatch, complete (including spurious completes
// that must clamp at zero) — and checks every queryable property after
// each step: size, per-level depth and front, candidate levels, total
// outstanding, and id lookup.
func TestMultiLevelMatchesReferenceModel(t *testing.T) {
	maxLens := []int{64, 128, 256, 512}
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		ml, err := NewMultiLevel(maxLens)
		if err != nil {
			t.Fatal(err)
		}
		ref := make([]refLevel, len(maxLens))
		for k := range ref {
			ref[k].insts = make(map[int]*Instance)
		}
		nextID := 0
		var live []int // ids currently attached

		for op := 0; op < 400; op++ {
			switch r := rng.Intn(10); {
			case r < 3: // add
				rt := rng.Intn(len(maxLens))
				in := NewInstance(nextID, rt, rng.Intn(4), 8)
				nextID++
				if err := ml.Add(in); err != nil {
					t.Fatalf("trial %d op %d: add: %v", trial, op, err)
				}
				ref[rt].insts[in.ID] = in
				live = append(live, in.ID)
			case r < 4 && len(live) > 0: // remove
				i := rng.Intn(len(live))
				id := live[i]
				live = append(live[:i], live[i+1:]...)
				removed := ml.Remove(id)
				if removed == nil || removed.ID != id {
					t.Fatalf("trial %d op %d: remove(%d) = %v", trial, op, id, removed)
				}
				delete(ref[removed.Runtime].insts, id)
			case r < 7 && len(live) > 0: // dispatch to some instance
				id := live[rng.Intn(len(live))]
				in := ml.Get(id)
				ml.OnDispatch(in)
			case len(live) > 0: // complete (sometimes spurious: must clamp)
				id := live[rng.Intn(len(live))]
				in := ml.Get(id)
				before := in.Outstanding()
				ml.OnComplete(in)
				if before == 0 && in.Outstanding() != 0 {
					t.Fatalf("trial %d op %d: spurious complete drove outstanding to %d", trial, op, in.Outstanding())
				}
			}

			// Full property sweep against the reference.
			if got, want := ml.Size(), len(live); got != want {
				t.Fatalf("trial %d op %d: size %d, ref %d", trial, op, got, want)
			}
			total := 0
			for k := range maxLens {
				lvl := ml.Level(k)
				if got, want := lvl.Len(), len(ref[k].insts); got != want {
					t.Fatalf("trial %d op %d: level %d len %d, ref %d", trial, op, k, got, want)
				}
				if got, want := lvl.Depth(), ref[k].depth(); got != want {
					t.Fatalf("trial %d op %d: level %d depth %d, ref %d", trial, op, k, got, want)
				}
				gotF, wantF := lvl.Front(), ref[k].front()
				if gotF != wantF {
					t.Fatalf("trial %d op %d: level %d front %v, ref %v", trial, op, k, gotF, wantF)
				}
				total += ref[k].depth()
			}
			if got := ml.TotalOutstanding(); got != total {
				t.Fatalf("trial %d op %d: total outstanding %d, ref %d", trial, op, got, total)
			}
			length := 1 + rng.Intn(600)
			if got, want := ml.CandidateLevels(length), refCandidates(maxLens, length); !equalInts(got, want) {
				t.Fatalf("trial %d op %d: candidates(%d) = %v, ref %v", trial, op, length, got, want)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMultiLevelConcurrentConservation hammers a fixed topology with
// paired dispatch/complete from many goroutines plus concurrent Front and
// Depth readers. Run under -race this audits the striped locking; the
// final state must conserve: every dispatch was matched by a complete, so
// all counters return to zero and the heaps still answer queries.
func TestMultiLevelConcurrentConservation(t *testing.T) {
	maxLens := []int{128, 512}
	ml, err := NewMultiLevel(maxLens)
	if err != nil {
		t.Fatal(err)
	}
	var insts []*Instance
	for id := 0; id < 6; id++ {
		in := NewInstance(id, id%2, 0, 16)
		insts = append(insts, in)
		if err := ml.Add(in); err != nil {
			t.Fatal(err)
		}
	}
	const (
		workers  = 8
		perGor   = 500
		nReaders = 2
	)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < nReaders; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for k := range maxLens {
					ml.Level(k).Front()
					ml.Level(k).Depth()
				}
				ml.TotalOutstanding()
			}
		}()
	}
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perGor; i++ {
				in := insts[rng.Intn(len(insts))]
				ml.OnDispatch(in)
				ml.OnComplete(in)
			}
		}(int64(w))
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if got := ml.TotalOutstanding(); got != 0 {
		t.Errorf("total outstanding after paired ops = %d, want 0", got)
	}
	for _, in := range insts {
		if got := in.Outstanding(); got != 0 {
			t.Errorf("instance %d outstanding = %d, want 0", in.ID, got)
		}
	}
	// The heaps must still be coherent: fronts answer, and a sweep of
	// removals drains cleanly.
	for k := range maxLens {
		if f := ml.Level(k).Front(); f == nil {
			t.Errorf("level %d front nil on populated level", k)
		}
	}
	ids := make([]int, 0, len(insts))
	for _, in := range insts {
		ids = append(ids, in.ID)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if removed := ml.Remove(id); removed == nil {
			t.Errorf("remove(%d) after hammering = nil", id)
		}
	}
	if ml.Size() != 0 {
		t.Errorf("size after draining = %d", ml.Size())
	}
}
