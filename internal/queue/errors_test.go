package queue

import (
	"errors"
	"testing"
)

func TestSentinelErrorsMatch(t *testing.T) {
	if _, err := NewMultiLevel(nil); !errors.Is(err, ErrNoLevels) {
		t.Errorf("empty levels: err = %v, want ErrNoLevels", err)
	}
	if _, err := NewMultiLevel([]int{128, 64}); !errors.Is(err, ErrLevelOrder) {
		t.Errorf("unsorted levels: err = %v, want ErrLevelOrder", err)
	}
	ml, err := NewMultiLevel([]int{64, 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := ml.Add(NewInstance(1, 5, 0, 10)); !errors.Is(err, ErrRuntimeRange) {
		t.Errorf("bad runtime: err = %v, want ErrRuntimeRange", err)
	}
	if err := ml.Add(NewInstance(1, 0, 0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := ml.Add(NewInstance(1, 1, 0, 10)); !errors.Is(err, ErrDuplicateInstance) {
		t.Errorf("dup id: err = %v, want ErrDuplicateInstance", err)
	}
}

func TestLevelDepth(t *testing.T) {
	ml, err := NewMultiLevel([]int{64})
	if err != nil {
		t.Fatal(err)
	}
	if err := ml.Add(NewInstance(1, 0, 3, 10)); err != nil {
		t.Fatal(err)
	}
	if err := ml.Add(NewInstance(2, 0, 4, 10)); err != nil {
		t.Fatal(err)
	}
	if got := ml.Level(0).Depth(); got != 7 {
		t.Errorf("depth = %d, want 7", got)
	}
	in := ml.Level(0).Front()
	ml.OnDispatch(in)
	if got := ml.Level(0).Depth(); got != 8 {
		t.Errorf("depth after dispatch = %d, want 8", got)
	}
	ml.OnComplete(in)
	if got := ml.Level(0).Depth(); got != 7 {
		t.Errorf("depth after complete = %d, want 7", got)
	}
}
