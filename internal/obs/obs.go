// Package obs is the request-lifecycle observability plane of the Arlo
// reproduction: every request carries a Span that records where its time
// went (tokenize -> dispatch decision -> worker queue -> execution ->
// completion) and which Algorithm 1 decisions were taken along the way
// (ideal vs. chosen runtime level, peeked levels, congestion fallback).
// The paper's whole evaluation (Figs. 8-10) is a per-request latency
// decomposition; this package is what makes that decomposition available
// from a live serving deployment instead of only from the simulator.
//
// A Recorder aggregates spans into counters, a demotion matrix and
// latency histograms, and renders everything in Prometheus text format
// (see prom.go). The recording side is built for the dispatch hot path:
//
//   - every method is nil-receiver safe, so call sites pay one predictable
//     branch when observability is disabled instead of wrapping each call;
//   - histograms are lock-striped over fixed shards of atomic bucket
//     counters, with the stripe chosen from per-span fields (instance id +
//     length) so concurrent recorders do not share a cache line and no
//     shared cursor is contended;
//   - nothing on the record path allocates: spans live inside the
//     caller's pooled job structs and bucket indexing is a bit scan.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Span is the lifecycle record of one request. All durations are in the
// cluster's modeled time (un-scaled when the cluster compresses wall
// time). A Span is plain data: it is embedded by value in results and
// pooled job structs, never allocated by this package.
type Span struct {
	// Length is the tokenized sequence length the request was dispatched
	// on.
	Length int
	// Enqueued is the wall-clock submission time.
	Enqueued time.Time
	// Tokenize is the time spent encoding the input upstream of the
	// cluster (zero when the caller submitted raw lengths).
	Tokenize time.Duration
	// Route is the time a routing tier spent choosing a shard for the
	// request, including any reroute hops (zero in single-process
	// serving, where no router fronts the cluster).
	Route time.Duration
	// Dispatch is the time spent inside the dispatch decision itself.
	Dispatch time.Duration
	// Queue is the time from dispatch to execution start — the queueing
	// delay of Fig. 8's decomposition.
	Queue time.Duration
	// Exec is the emulated kernel execution time.
	Exec time.Duration
	// Total is the end-to-end modeled latency (queue + exec + overhead).
	Total time.Duration
	// IdealLevel is the least-padding feasible runtime level (the head of
	// the Algorithm 1 candidate set).
	IdealLevel int
	// Level is the runtime level the request actually executed on;
	// Level > IdealLevel means the request was demoted.
	Level int
	// Instance is the ID of the instance that executed the request.
	Instance int
	// Peeked is how many candidate levels the scheduler examined.
	Peeked int
	// Fallback reports that every peeked level was congested and the
	// scheduler fell back to the top candidate (Algorithm 1 lines 18-20).
	Fallback bool
	// Batch is the cluster-wide sequence number of the batched kernel the
	// request executed in (0 when it ran as a sequential singleton): spans
	// sharing a Batch value rode the same kernel.
	Batch int64
	// BatchSize is how many requests shared that kernel (0 when the request
	// was not batched).
	BatchSize int
	// FormWait is how long the batch former held the request's batch open
	// collecting followers — the batching tax inside Queue.
	FormWait time.Duration
	// IngressWait is how long the request sat in the ingress submit ring
	// before its group was drained and dispatched (0 when submitted
	// directly). Unlike the other stages it is measured in wall time: the
	// ring lives upstream of the cluster's modeled clock.
	IngressWait time.Duration
	// OutTokens is how many tokens the request generated (0 for encoder
	// requests, >= 1 for generative ones).
	OutTokens int
	// TTFT is the time from submission to the request's first generated
	// token — the end of its prefill iteration. Zero for encoder requests,
	// whose only "token" is the classification result at Total.
	TTFT time.Duration
	// Tenant is the resolved tenant the request was accounted to (empty
	// when the cluster runs without a tenant registry).
	Tenant string
}

// TPOT is the mean time per output token after the first (the decode-side
// latency axis of generative serving). Zero when the request generated at
// most one token.
func (s *Span) TPOT() time.Duration {
	if s.OutTokens <= 1 || s.TTFT <= 0 || s.Total <= s.TTFT {
		return 0
	}
	return (s.Total - s.TTFT) / time.Duration(s.OutTokens-1)
}

// DemotionHops is how many levels past the ideal runtime the request was
// pushed (0 when served at its ideal level).
func (s *Span) DemotionHops() int {
	if h := s.Level - s.IdealLevel; h > 0 {
		return h
	}
	return 0
}

// RejectReason classifies why a submission was refused.
type RejectReason uint8

const (
	// RejectTooLong: the request exceeds every deployed runtime.
	RejectTooLong RejectReason = iota
	// RejectNoInstances: no instance deployed for any candidate runtime.
	RejectNoInstances
	// RejectCongested: the chosen worker's queue overflowed.
	RejectCongested
	// RejectClosed: the cluster was shut down.
	RejectClosed
	// RejectUnserviceable: the request exhausted its requeue budget under
	// repeated instance failures.
	RejectUnserviceable
	// RejectDeadline: the request's deadline was already spent when its
	// ingress group was drained; it was refused before touching the queue.
	RejectDeadline
	// RejectRateLimited: tenant token-bucket admission refused the request
	// before it touched the queue.
	RejectRateLimited
	// RejectOther: any other submission failure.
	RejectOther

	numRejectReasons
)

// String returns the Prometheus label value for the reason.
func (r RejectReason) String() string {
	switch r {
	case RejectTooLong:
		return "too_long"
	case RejectNoInstances:
		return "no_instances"
	case RejectCongested:
		return "congested"
	case RejectClosed:
		return "closed"
	case RejectUnserviceable:
		return "unserviceable"
	case RejectDeadline:
		return "deadline"
	case RejectRateLimited:
		return "rate_limited"
	default:
		return "other"
	}
}

// Health classifies an instance's serving state for the health gauge:
// Healthy serves at full speed, Degraded serves with inflated execution
// latency (a slow GPU, thermal throttling, a noisy neighbour), Dead is
// crashed and detached from dispatching until its downtime elapses.
type Health int32

const (
	// Dead: crashed; detached from its queue level, queued and in-flight
	// work requeued elsewhere.
	Dead Health = iota
	// Degraded: still dispatched to, but executing slower than profiled.
	Degraded
	// Healthy: serving at the profiled latency.
	Healthy
)

// String returns the human-readable state name.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	default:
		return "dead"
	}
}

// GaugeValue renders the state for the arlo_instance_health gauge:
// 2 healthy, 1 degraded, 0 dead — ordered so alerting rules can threshold
// on "< 2".
func (h Health) GaugeValue() int { return int(h) }

// RequeueReason classifies why a dispatched request was requeued through
// the failover demotion path.
type RequeueReason uint8

const (
	// RequeueQueued: the request was queued on an instance that failed.
	RequeueQueued RequeueReason = iota
	// RequeueInflight: the request was executing when its instance failed;
	// it restarts from scratch elsewhere.
	RequeueInflight

	numRequeueReasons
)

// String returns the Prometheus label value for the reason.
func (r RequeueReason) String() string {
	switch r {
	case RequeueInflight:
		return "inflight"
	default:
		return "queued"
	}
}

// Histogram bucket layout: exponential, le = 125µs << i for the finite
// buckets plus a +Inf overflow slot. 125µs..~65.5s covers everything from
// the 0.8ms dispatch overhead to deeply congested tails.
const (
	histBase      = 125 * time.Microsecond
	numBuckets    = 20
	bucketInf     = numBuckets // index of the +Inf slot
	histShards    = 8          // power of two; stripe count per histogram
	histShardMask = histShards - 1
)

// bucketOf returns the finite bucket index for d, or bucketInf when d
// exceeds the largest finite boundary. Branch-free except the clamps.
func bucketOf(d time.Duration) int {
	if d <= histBase {
		return 0
	}
	// 2^(i-1) < d/base <= 2^i  =>  bucket i.
	idx := bits.Len64(uint64((d - 1) / histBase))
	if idx > numBuckets-1 {
		return bucketInf
	}
	return idx
}

// bucketLE returns the upper boundary of finite bucket i in seconds.
func bucketLE(i int) float64 {
	return float64(histBase<<uint(i)) / float64(time.Second)
}

// histShard is one stripe of a histogram. At ~180 bytes a shard spans
// multiple cache lines on its own, so neighbouring shards only ever share
// an edge line; the stripe choice (below) keeps concurrent writers apart.
type histShard struct {
	buckets [numBuckets + 1]atomic.Int64
	sumNS   atomic.Int64
	count   atomic.Int64
}

// hist is a lock-striped histogram: writers pick a shard from per-span
// data, readers sum across shards at scrape time.
type hist struct {
	shards [histShards]histShard
}

func (h *hist) observe(shard int, d time.Duration) {
	s := &h.shards[shard&histShardMask]
	s.buckets[bucketOf(d)].Add(1)
	s.sumNS.Add(int64(d))
	s.count.Add(1)
}

// snapshot sums the shards into cumulative bucket counts, total count and
// sum (seconds).
func (h *hist) snapshot() (cum [numBuckets + 1]int64, count int64, sumSec float64) {
	var sumNS int64
	for i := range h.shards {
		s := &h.shards[i]
		for b := 0; b <= numBuckets; b++ {
			cum[b] += s.buckets[b].Load()
		}
		count += s.count.Load()
		sumNS += s.sumNS.Load()
	}
	for b := 1; b <= numBuckets; b++ {
		cum[b] += cum[b-1]
	}
	return cum, count, float64(sumNS) / float64(time.Second)
}

// Recorder aggregates request spans for one cluster. All recording
// methods are safe for concurrent use and safe on a nil receiver (no-op),
// so a disabled observability plane costs call sites a single branch.
type Recorder struct {
	levels int

	submitted atomic.Int64
	completed atomic.Int64
	cancelled atomic.Int64
	rejected  [numRejectReasons]atomic.Int64
	requeues  [numRequeueReasons]atomic.Int64

	// demotions is the (from, to) runtime-pair counter matrix of
	// Algorithm 1 demotions, flattened row-major: from*levels + to.
	demotions []atomic.Int64

	queueH       hist
	execH        hist
	totalH       hist
	formWaitH    hist
	ingressWaitH hist
	ttftH        hist
	tpotH        hist

	// Batch formation aggregates: batches counts executed batches,
	// batchedReqs their member totals; the per-level pairs feed the
	// occupancy gauge (mean batch size vs. the profiled cap B_i).
	batches        atomic.Int64
	batchedReqs    atomic.Int64
	batchSizeB     [numBatchBuckets + 1]atomic.Int64
	levelBatches   []atomic.Int64
	levelBatchReqs []atomic.Int64

	// snapshot, when set, provides the live cluster state (queue depths,
	// instance loads) gauges are rendered from at scrape time.
	snapshot atomic.Pointer[func() Snapshot]

	// ctrlStats, when set, provides the control loop's state rendered as
	// arlo_controller_* metrics at scrape time (see window.go).
	ctrlStats atomic.Pointer[func() ControllerStat]

	// win is the sliding-window view of recent lengths and latencies the
	// controller reads (see window.go).
	win window
}

// NewRecorder builds a recorder for a cluster with the given number of
// runtime levels (used to size the demotion matrix; levels < 1 is
// clamped to 1).
func NewRecorder(levels int) *Recorder {
	if levels < 1 {
		levels = 1
	}
	r := &Recorder{
		levels:         levels,
		demotions:      make([]atomic.Int64, levels*levels),
		levelBatches:   make([]atomic.Int64, levels),
		levelBatchReqs: make([]atomic.Int64, levels),
	}
	r.win.init(levels)
	return r
}

// Batch-size histogram layout: power-of-two buckets le 1,2,4,...,64 plus
// +Inf — batch caps are small integers, so seven finite buckets cover any
// plausible B_i.
const numBatchBuckets = 7

// batchBucketOf returns the finite bucket index for a batch size, or
// numBatchBuckets for the +Inf slot.
func batchBucketOf(size int) int {
	if size <= 1 {
		return 0
	}
	idx := bits.Len64(uint64(size - 1))
	if idx > numBatchBuckets-1 {
		return numBatchBuckets
	}
	return idx
}

// batchBucketLE returns the upper boundary of finite batch bucket i.
func batchBucketLE(i int) int { return 1 << uint(i) }

// RecordBatch counts one executed batch of the given member count on the
// given runtime level. Out-of-range levels still count toward the global
// aggregates so the books stay consistent.
func (r *Recorder) RecordBatch(level, size int) {
	if r == nil || size < 1 {
		return
	}
	r.batches.Add(1)
	r.batchedReqs.Add(int64(size))
	r.batchSizeB[batchBucketOf(size)].Add(1)
	if level >= 0 && level < r.levels {
		r.levelBatches[level].Add(1)
		r.levelBatchReqs[level].Add(int64(size))
	}
}

// Batches returns the total executed batches recorded.
func (r *Recorder) Batches() int64 {
	if r == nil {
		return 0
	}
	return r.batches.Load()
}

// BatchedRequests returns the total requests executed inside batches.
func (r *Recorder) BatchedRequests() int64 {
	if r == nil {
		return 0
	}
	return r.batchedReqs.Load()
}

// MeanBatchSize returns the mean members-per-batch for one runtime level
// (0 when the level has executed no batches, or on an out-of-range level).
func (r *Recorder) MeanBatchSize(level int) float64 {
	if r == nil || level < 0 || level >= r.levels {
		return 0
	}
	n := r.levelBatches[level].Load()
	if n == 0 {
		return 0
	}
	return float64(r.levelBatchReqs[level].Load()) / float64(n)
}

// Levels returns the number of runtime levels the recorder was sized for.
func (r *Recorder) Levels() int {
	if r == nil {
		return 0
	}
	return r.levels
}

// RecordSubmit counts one submission attempt.
func (r *Recorder) RecordSubmit() {
	if r == nil {
		return
	}
	r.submitted.Add(1)
}

// RecordDemotion counts one Algorithm 1 demotion from the ideal runtime
// level to the chosen one. Out-of-range pairs are dropped.
func (r *Recorder) RecordDemotion(from, to int) {
	if r == nil {
		return
	}
	if from < 0 || to < 0 || from >= r.levels || to >= r.levels {
		return
	}
	r.demotions[from*r.levels+to].Add(1)
}

// RecordSpan folds one completed request's span into the histograms,
// the completion counter, and the sliding window (stamped now). The span
// itself is not retained.
func (r *Recorder) RecordSpan(s *Span) {
	if r == nil {
		return
	}
	r.recordSpan(s)
	r.win.observe(s, time.Now())
}

// recordSpan folds the span into the lifetime aggregates only.
func (r *Recorder) recordSpan(s *Span) {
	// Stripe by span identity rather than a shared cursor: concurrent
	// completions from different instances land on different shards with
	// no cross-core traffic on the shard choice itself.
	shard := s.Instance + s.Length
	r.queueH.observe(shard, s.Queue)
	r.execH.observe(shard, s.Exec)
	r.totalH.observe(shard, s.Total)
	if s.BatchSize > 0 {
		r.formWaitH.observe(shard, s.FormWait)
	}
	if s.IngressWait > 0 {
		r.ingressWaitH.observe(shard, s.IngressWait)
	}
	if s.OutTokens > 0 && s.TTFT > 0 {
		r.ttftH.observe(shard, s.TTFT)
		if tpot := s.TPOT(); tpot > 0 {
			r.tpotH.observe(shard, tpot)
		}
	}
	r.completed.Add(1)
}

// RecordCancel counts one request cancelled (context done) while queued
// or executing.
func (r *Recorder) RecordCancel() {
	if r == nil {
		return
	}
	r.cancelled.Add(1)
}

// RecordReject counts one refused submission.
func (r *Recorder) RecordReject(reason RejectReason) {
	if r == nil {
		return
	}
	if reason >= numRejectReasons {
		reason = RejectOther
	}
	r.rejected[reason].Add(1)
}

// RecordRequeue counts one request displaced by an instance failure and
// re-dispatched through the failover demotion path.
func (r *Recorder) RecordRequeue(reason RequeueReason) {
	if r == nil {
		return
	}
	if reason >= numRequeueReasons {
		reason = RequeueQueued
	}
	r.requeues[reason].Add(1)
}

// SetSnapshot installs the live-state callback rendered into gauges at
// scrape time (per-level queue depth, per-instance utilization). Safe to
// call while recording; a nil receiver is a no-op.
func (r *Recorder) SetSnapshot(fn func() Snapshot) {
	if r == nil {
		return
	}
	if fn == nil {
		r.snapshot.Store(nil)
		return
	}
	r.snapshot.Store(&fn)
}

// LiveSnapshot invokes the installed live-state callback and returns the
// cluster snapshot, or ok=false when no callback is installed. This is
// the structured path the control loop reads utilization from (the same
// data the Prometheus gauges render).
func (r *Recorder) LiveSnapshot() (Snapshot, bool) {
	if r == nil {
		return Snapshot{}, false
	}
	fnp := r.snapshot.Load()
	if fnp == nil {
		return Snapshot{}, false
	}
	return (*fnp)(), true
}

// Submitted returns the total submission attempts recorded.
func (r *Recorder) Submitted() int64 {
	if r == nil {
		return 0
	}
	return r.submitted.Load()
}

// Completed returns the total completed requests recorded.
func (r *Recorder) Completed() int64 {
	if r == nil {
		return 0
	}
	return r.completed.Load()
}

// Cancelled returns the total cancelled requests recorded.
func (r *Recorder) Cancelled() int64 {
	if r == nil {
		return 0
	}
	return r.cancelled.Load()
}

// Rejected returns the total rejected submissions across all reasons.
func (r *Recorder) Rejected() int64 {
	if r == nil {
		return 0
	}
	var total int64
	for i := range r.rejected {
		total += r.rejected[i].Load()
	}
	return total
}

// Requeues returns the total failure-displaced requeues across all
// reasons.
func (r *Recorder) Requeues() int64 {
	if r == nil {
		return 0
	}
	var total int64
	for i := range r.requeues {
		total += r.requeues[i].Load()
	}
	return total
}

// RequeuesFor returns the requeue count for one reason.
func (r *Recorder) RequeuesFor(reason RequeueReason) int64 {
	if r == nil || reason >= numRequeueReasons {
		return 0
	}
	return r.requeues[reason].Load()
}

// RejectedFor returns the rejection count for one reason.
func (r *Recorder) RejectedFor(reason RejectReason) int64 {
	if r == nil || reason >= numRejectReasons {
		return 0
	}
	return r.rejected[reason].Load()
}

// Demotions returns the demotion count for one (from, to) runtime pair.
func (r *Recorder) Demotions(from, to int) int64 {
	if r == nil || from < 0 || to < 0 || from >= r.levels || to >= r.levels {
		return 0
	}
	return r.demotions[from*r.levels+to].Load()
}
