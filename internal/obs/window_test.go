package obs

import (
	"strings"
	"testing"
	"time"
)

// vt maps a virtual offset onto the absolute timeline the window slots on.
func vt(d time.Duration) time.Time { return time.Unix(0, 0).Add(d) }

func spanAt(r *Recorder, length int, total time.Duration, at time.Time) {
	r.RecordSpanAt(&Span{Length: length, Total: total, Instance: length}, at)
}

func TestWindowLengthDistKnownDistribution(t *testing.T) {
	r := NewRecorder(4)
	r.SetLengthBins([]int{64, 128, 256, 512})
	r.SetWindow(80 * time.Second) // 10s slots

	// A known mixture inside one window: 50 short, 30 medium, 15 large,
	// 5 clamped past the last runtime.
	now := vt(40 * time.Second)
	for i := 0; i < 50; i++ {
		spanAt(r, 32, time.Millisecond, now)
	}
	for i := 0; i < 30; i++ {
		spanAt(r, 100, time.Millisecond, now.Add(-9*time.Second))
	}
	for i := 0; i < 15; i++ {
		spanAt(r, 256, time.Millisecond, now.Add(-30*time.Second))
	}
	for i := 0; i < 5; i++ {
		spanAt(r, 9999, time.Millisecond, now)
	}

	dist := r.LengthDistAt(now)
	want := []int64{50, 30, 15, 5}
	if len(dist) != len(want) {
		t.Fatalf("LengthDist len = %d, want %d", len(dist), len(want))
	}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("bin %d = %d, want %d", i, dist[i], want[i])
		}
	}
	if n := r.WindowSamples(now); n != 100 {
		t.Errorf("WindowSamples = %d, want 100", n)
	}
}

func TestWindowEvictsOldSlots(t *testing.T) {
	r := NewRecorder(2)
	r.SetLengthBins([]int{128, 512})
	r.SetWindow(80 * time.Second)

	spanAt(r, 64, time.Millisecond, vt(5*time.Second))
	if dist := r.LengthDistAt(vt(5 * time.Second)); dist[0] != 1 {
		t.Fatalf("fresh sample not visible: %v", dist)
	}
	// One full window later the sample's slot is stale: excluded even
	// though its counters were never overwritten.
	later := vt(5*time.Second + 81*time.Second)
	if dist := r.LengthDistAt(later); dist[0] != 0 || dist[1] != 0 {
		t.Fatalf("stale sample still visible at +window: %v", dist)
	}
	// Drift: refill with long requests; only they are observed.
	for i := 0; i < 10; i++ {
		spanAt(r, 400, time.Millisecond, later)
	}
	dist := r.LengthDistAt(later)
	if dist[0] != 0 || dist[1] != 10 {
		t.Fatalf("post-drift dist = %v, want [0 10]", dist)
	}
}

func TestWindowFutureSamplesExcluded(t *testing.T) {
	r := NewRecorder(1)
	r.SetLengthBins([]int{512})
	r.SetWindow(80 * time.Second)
	spanAt(r, 10, time.Millisecond, vt(200*time.Second))
	if dist := r.LengthDistAt(vt(100 * time.Second)); dist[0] != 0 {
		t.Fatalf("future sample visible in earlier query: %v", dist)
	}
}

func TestWindowP98KnownDistribution(t *testing.T) {
	r := NewRecorder(1)
	r.SetWindow(80 * time.Second)
	now := vt(10 * time.Second)

	// 98 fast + 2 slow: nearest rank 98 lands in the fast bucket whose
	// upper boundary is exactly 1ms (125µs << 3).
	for i := 0; i < 98; i++ {
		spanAt(r, 1, time.Millisecond, now)
	}
	for i := 0; i < 2; i++ {
		spanAt(r, 1, 100*time.Millisecond, now)
	}
	if got := r.P98At(now); got != time.Millisecond {
		t.Fatalf("P98 = %v, want 1ms", got)
	}

	// One more slow sample tips rank 98 past the fast bucket: p98 resolves
	// to the 100ms bucket's upper boundary, 128ms (125µs << 10).
	spanAt(r, 1, 100*time.Millisecond, now)
	if got := r.P98At(now); got != 128*time.Millisecond {
		t.Fatalf("P98 after tip = %v, want 128ms", got)
	}
}

func TestWindowP98EmptyIsZero(t *testing.T) {
	r := NewRecorder(1)
	if got := r.P98At(vt(0)); got != 0 {
		t.Fatalf("empty-window P98 = %v, want 0", got)
	}
}

func TestWindowDefaultsAndNilSafety(t *testing.T) {
	r := NewRecorder(2)
	if got := r.WindowSpan(); got != 60*time.Second {
		t.Fatalf("default WindowSpan = %v, want 60s", got)
	}
	r.SetWindow(8 * time.Second)
	if got := r.WindowSpan(); got != 8*time.Second {
		t.Fatalf("WindowSpan = %v, want 8s", got)
	}
	r.SetWindow(0)
	if got := r.WindowSpan(); got != 60*time.Second {
		t.Fatalf("reset WindowSpan = %v, want 60s", got)
	}
	// No bins installed: LengthDist is nil, latency still windowed.
	r.RecordSpan(&Span{Length: 10, Total: time.Millisecond})
	if dist := r.LengthDist(); dist != nil {
		t.Fatalf("LengthDist without bins = %v, want nil", dist)
	}
	if r.P98() == 0 {
		t.Fatal("wall-clock RecordSpan did not reach the window")
	}

	var nilRec *Recorder
	nilRec.SetWindow(time.Second)
	nilRec.SetLengthBins([]int{1})
	nilRec.RecordSpanAt(&Span{}, time.Now())
	nilRec.SetControllerStats(nil)
	if nilRec.LengthDist() != nil || nilRec.P98() != 0 || nilRec.WindowSpan() != 0 || nilRec.WindowSamples(time.Now()) != 0 {
		t.Fatal("nil recorder window accessors must be zero-valued")
	}
}

func TestControllerStatsRendered(t *testing.T) {
	r := NewRecorder(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "arlo_controller_") {
		t.Fatal("controller metrics rendered without an installed callback")
	}

	r.SetControllerStats(func() ControllerStat {
		return ControllerStat{Replans: 3, PlansHeld: 1, Replacements: 5, ScaleOuts: 2, ScaleIns: 1, GPUs: 8, DryRun: true}
	})
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"arlo_controller_replans_total 3",
		"arlo_controller_plans_held_total 1",
		"arlo_controller_replacements_total 5",
		`arlo_controller_scale_total{direction="out"} 2`,
		`arlo_controller_scale_total{direction="in"} 1`,
		"arlo_controller_gpus 8",
		"arlo_controller_dry_run 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
