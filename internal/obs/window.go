// Sliding-window view of the request stream for the control loop: the
// controller needs the *recent* length distribution (the q-vector of the
// allocation program) and the *recent* p98 latency (the autoscaler's
// target-tracking signal), not the lifetime aggregates the Prometheus
// histograms accumulate. Scraping the text exposition back out of
// ourselves would be both slow and wrong (lifetime counts never forget a
// drifted distribution), so the Recorder keeps a second, windowed
// structure fed from the same RecordSpan call.
//
// Mechanics: the window is a ring of winSlots slots, each covering
// span/winSlots of time. A slot is addressed by epoch — the record (or
// query) timestamp divided by the slot width — so slot i holds epoch e iff
// e ≡ i (mod winSlots); writing into a slot whose stored epoch is older
// first rotates it (CAS on the epoch, winner zeroes the counters). A query
// at time t sums every slot whose epoch lies in (epoch(t)-winSlots,
// epoch(t)], i.e. the trailing window, and stale or future slots are
// excluded by their epoch label alone — no background ticker, no locks on
// the record path.
//
// The rotation race is benign and documented: a writer that loses the CAS
// while another rotates the same slot may fold its sample into counters
// that are being zeroed, undercounting by at most a handful of samples per
// rotation. Control decisions average over thousands of samples; the
// deterministic test suite feeds the window sequentially where the counts
// are exact.
//
// All timestamps are explicit (`RecordSpanAt`, `LengthDistAt`, `P98At`) so
// a fake-clock test can drive the window with virtual time; the
// wall-clock conveniences (`RecordSpan`, `LengthDist`, `P98`) just pass
// time.Now().

package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

const (
	// winSlots is the ring size: queries see between (winSlots-1)/winSlots
	// and 100% of the nominal span depending on phase, which is plenty of
	// resolution for a control period much longer than one slot.
	winSlots = 8
	// defaultWindowSpan matches the paper's 60s observation window for the
	// runtime scheduler's demand estimate.
	defaultWindowSpan = 60 * time.Second
)

// winSlot is one rotation slot of the window. epochPlus1 holds the slot's
// epoch + 1 so the zero value marks "never written".
type winSlot struct {
	epochPlus1 atomic.Int64
	lenCounts  []atomic.Int64
	latBuckets [numBuckets + 1]atomic.Int64
	latCount   atomic.Int64
}

// window is the slot ring plus its configuration. It lives inside
// Recorder; all methods are called through nil-safe Recorder wrappers.
type window struct {
	// slotNS is the slot width in nanoseconds (span = slotNS * winSlots).
	slotNS atomic.Int64
	// bins, when set, are the runtime max-length upper bounds the length
	// histogram buckets on (ascending; installed by cluster.SetObserver or
	// SetLengthBins). Unset means lengths are not windowed.
	bins  atomic.Pointer[[]int]
	slots [winSlots]winSlot
}

func (w *window) init(levels int) {
	w.slotNS.Store(int64(defaultWindowSpan) / winSlots)
	for i := range w.slots {
		w.slots[i].lenCounts = make([]atomic.Int64, levels)
	}
}

// slotFor rotates (if needed) and returns the slot for epoch. Returns nil
// when the slot currently holds a newer epoch (the record is stale by more
// than the full window — drop it rather than pollute a fresh slot).
func (w *window) slotFor(epoch int64) *winSlot {
	idx := epoch % winSlots
	if idx < 0 {
		idx += winSlots
	}
	s := &w.slots[idx]
	want := epoch + 1
	for {
		cur := s.epochPlus1.Load()
		if cur == want {
			return s
		}
		if cur > want {
			return nil
		}
		if s.epochPlus1.CompareAndSwap(cur, want) {
			for i := range s.lenCounts {
				s.lenCounts[i].Store(0)
			}
			for i := range s.latBuckets {
				s.latBuckets[i].Store(0)
			}
			s.latCount.Store(0)
			return s
		}
	}
}

// observe folds one span into the window at the given timestamp.
func (w *window) observe(s *Span, at time.Time) {
	slotNS := w.slotNS.Load()
	if slotNS <= 0 {
		return
	}
	slot := w.slotFor(at.UnixNano() / slotNS)
	if slot == nil {
		return
	}
	if bins := w.bins.Load(); bins != nil && s.Length > 0 {
		b := sort.SearchInts(*bins, s.Length)
		if b >= len(slot.lenCounts) {
			b = len(slot.lenCounts) - 1
		}
		if b >= 0 {
			slot.lenCounts[b].Add(1)
		}
	}
	slot.latBuckets[bucketOf(s.Total)].Add(1)
	slot.latCount.Add(1)
}

// live reports whether a slot holding slotEpoch is inside the trailing
// window of a query at nowEpoch.
func live(slotEpoch, nowEpoch int64) bool {
	return slotEpoch > nowEpoch-winSlots && slotEpoch <= nowEpoch
}

// lengthDist sums the per-bin length counts across live slots. Returns nil
// when no bins are installed.
func (w *window) lengthDist(at time.Time) []int64 {
	if w.bins.Load() == nil {
		return nil
	}
	slotNS := w.slotNS.Load()
	if slotNS <= 0 {
		return nil
	}
	nowEpoch := at.UnixNano() / slotNS
	var out []int64
	for i := range w.slots {
		s := &w.slots[i]
		if !live(s.epochPlus1.Load()-1, nowEpoch) {
			continue
		}
		if out == nil {
			out = make([]int64, len(s.lenCounts))
		}
		for b := range s.lenCounts {
			out[b] += s.lenCounts[b].Load()
		}
	}
	if out == nil {
		out = make([]int64, len(w.slots[0].lenCounts))
	}
	return out
}

// percentile returns the nearest-rank percentile of windowed request
// latency as the upper boundary of the bucket the rank falls in (the same
// exponential layout as the Prometheus histograms), together with the
// sample count. Zero duration when the window is empty. A rank landing in
// the +Inf bucket reports one doubling past the largest finite boundary.
func (w *window) percentile(p float64, at time.Time) (time.Duration, int64) {
	slotNS := w.slotNS.Load()
	if slotNS <= 0 {
		return 0, 0
	}
	nowEpoch := at.UnixNano() / slotNS
	var merged [numBuckets + 1]int64
	var count int64
	for i := range w.slots {
		s := &w.slots[i]
		if !live(s.epochPlus1.Load()-1, nowEpoch) {
			continue
		}
		for b := range s.latBuckets {
			merged[b] += s.latBuckets[b].Load()
		}
		count += s.latCount.Load()
	}
	if count == 0 {
		return 0, 0
	}
	rank := int64(math.Ceil(p * float64(count)))
	if rank < 1 {
		rank = 1
	}
	if rank > count {
		rank = count
	}
	var cum int64
	for b := 0; b <= numBuckets; b++ {
		cum += merged[b]
		if cum >= rank {
			return histBase << uint(b), count
		}
	}
	return histBase << uint(numBuckets), count
}

// SetWindow sets the sliding-window span the controller-facing estimators
// (LengthDist, P98) cover. Non-positive spans restore the 60s default.
// Call before recording: changing the slot width re-labels existing slots'
// epochs, effectively clearing the window.
func (r *Recorder) SetWindow(span time.Duration) {
	if r == nil {
		return
	}
	if span <= 0 {
		span = defaultWindowSpan
	}
	slot := int64(span) / winSlots
	if slot < 1 {
		slot = 1
	}
	r.win.slotNS.Store(slot)
}

// WindowSpan returns the sliding-window span currently in effect.
func (r *Recorder) WindowSpan() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.win.slotNS.Load() * winSlots)
}

// SetLengthBins installs the runtime max-length upper bounds the windowed
// length histogram buckets on (ascending, one per runtime level; the
// cluster installs its profile's MaxLengths automatically in SetObserver).
// A length l lands in the first bin with upper >= l; longer-than-all
// lengths clamp into the last bin. Nil or empty disables length windowing.
func (r *Recorder) SetLengthBins(uppers []int) {
	if r == nil {
		return
	}
	if len(uppers) == 0 {
		r.win.bins.Store(nil)
		return
	}
	cp := make([]int, len(uppers))
	copy(cp, uppers)
	sort.Ints(cp)
	r.win.bins.Store(&cp)
}

// RecordSpanAt is RecordSpan with an explicit timestamp for the sliding
// window, so deterministic tests can drive the controller's observation
// plane with virtual time.
func (r *Recorder) RecordSpanAt(s *Span, at time.Time) {
	if r == nil {
		return
	}
	r.recordSpan(s)
	r.win.observe(s, at)
}

// LengthDist returns the per-runtime-level request counts observed inside
// the sliding window ending now — the raw material of the allocation
// program's demand vector q. The slice is indexed like the profile's
// runtime levels. Nil when no length bins are installed (no cluster
// observer and no SetLengthBins call).
func (r *Recorder) LengthDist() []int64 {
	return r.LengthDistAt(time.Now())
}

// LengthDistAt is LengthDist at an explicit query time.
func (r *Recorder) LengthDistAt(at time.Time) []int64 {
	if r == nil {
		return nil
	}
	return r.win.lengthDist(at)
}

// P98 returns the 98th-percentile end-to-end latency of requests completed
// inside the sliding window ending now, resolved to the upper boundary of
// its histogram bucket. Zero when the window is empty.
func (r *Recorder) P98() time.Duration {
	return r.P98At(time.Now())
}

// P98At is P98 at an explicit query time.
func (r *Recorder) P98At(at time.Time) time.Duration {
	if r == nil {
		return 0
	}
	d, _ := r.win.percentile(0.98, at)
	return d
}

// WindowSamples returns how many request completions the sliding window
// ending at the query time currently holds.
func (r *Recorder) WindowSamples(at time.Time) int64 {
	if r == nil {
		return 0
	}
	_, n := r.win.percentile(0.98, at)
	return n
}

// ControllerStat is the control loop's scrape-time state, rendered into
// the arlo_controller_* metrics. The controller package installs a
// callback via SetControllerStats; keeping only a plain-data contract here
// avoids an obs -> controller import cycle.
type ControllerStat struct {
	// Replans counts control periods that re-solved the allocation program.
	Replans int64
	// PlansHeld counts replans whose plan was suppressed by hysteresis.
	PlansHeld int64
	// Replacements counts instance replacements actually applied.
	Replacements int64
	// ScaleOuts / ScaleIns count autoscaler GPU additions and removals.
	ScaleOuts int64
	ScaleIns  int64
	// GPUs is the live cluster size the controller currently sees.
	GPUs int
	// DryRun reports the controller is observing and planning only.
	DryRun bool
}

// SetControllerStats installs the control-loop state callback rendered as
// arlo_controller_* metrics at scrape time. Safe while recording; nil
// receiver and nil fn are no-ops that disable the series.
func (r *Recorder) SetControllerStats(fn func() ControllerStat) {
	if r == nil {
		return
	}
	if fn == nil {
		r.ctrlStats.Store(nil)
		return
	}
	r.ctrlStats.Store(&fn)
}
