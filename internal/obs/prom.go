// Prometheus text-format exposition of the Recorder's aggregates plus
// the live cluster gauges. The format follows the 0.0.4 text exposition
// spec (the one every Prometheus scraper accepts): HELP/TYPE headers,
// cumulative histogram buckets with le labels, _sum and _count series.
// Rendering happens only at scrape time, so it favours clarity over
// allocation-freedom.

package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
)

// LevelStat is the scrape-time state of one runtime level.
type LevelStat struct {
	// Level is the runtime level index (increasing max_length).
	Level int
	// MaxLength is the runtime's padded sequence length.
	MaxLength int
	// Instances is how many instances are deployed at the level.
	Instances int
	// Depth is the level's queue depth: outstanding (dispatched but not
	// completed) requests summed across the level's instances.
	Depth int
	// BatchCap is B_i, the level's SLO-clamped dynamic-batching cap (0
	// when batching is disabled).
	BatchCap int
}

// InstanceStat is the scrape-time state of one instance.
type InstanceStat struct {
	ID          int
	Runtime     int
	Outstanding int
	// Capacity is M_i, the instance's SLO-feasible queue bound.
	Capacity int
	// Health is the instance's serving state; failed instances appear
	// here as Dead until their downtime elapses and they rejoin.
	Health Health
}

// TenantStat is the scrape-time admission/dispatch accounting of one
// tenant (multi-tenant clusters only).
type TenantStat struct {
	// Tenant is the tenant id (a metric label value).
	Tenant string
	// Admitted and Rejected count token-bucket admission decisions.
	Admitted int64
	Rejected int64
	// Share is the tenant's fraction of cumulative dispatched token cost —
	// the realized fair-share split across the dispatch order.
	Share float64
}

// Snapshot is the live cluster state rendered into gauges.
type Snapshot struct {
	Levels    []LevelStat
	Instances []InstanceStat
	// Tenants is empty when the cluster runs without a tenant registry.
	Tenants []TenantStat
}

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every metric in Prometheus text format.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if r == nil {
		fmt.Fprint(bw, "# observability disabled\n")
		return bw.Flush()
	}

	fmt.Fprint(bw, "# HELP arlo_requests_submitted_total Requests submitted to the cluster.\n")
	fmt.Fprint(bw, "# TYPE arlo_requests_submitted_total counter\n")
	fmt.Fprintf(bw, "arlo_requests_submitted_total %d\n", r.submitted.Load())

	fmt.Fprint(bw, "# HELP arlo_requests_completed_total Requests completed by the cluster.\n")
	fmt.Fprint(bw, "# TYPE arlo_requests_completed_total counter\n")
	fmt.Fprintf(bw, "arlo_requests_completed_total %d\n", r.completed.Load())

	fmt.Fprint(bw, "# HELP arlo_requests_cancelled_total Requests cancelled by their context while queued or executing.\n")
	fmt.Fprint(bw, "# TYPE arlo_requests_cancelled_total counter\n")
	fmt.Fprintf(bw, "arlo_requests_cancelled_total %d\n", r.cancelled.Load())

	fmt.Fprint(bw, "# HELP arlo_requests_rejected_total Submissions refused, by reason.\n")
	fmt.Fprint(bw, "# TYPE arlo_requests_rejected_total counter\n")
	for reason := RejectReason(0); reason < numRejectReasons; reason++ {
		fmt.Fprintf(bw, "arlo_requests_rejected_total{reason=%q} %d\n",
			reason.String(), r.rejected[reason].Load())
	}

	fmt.Fprint(bw, "# HELP arlo_requeues_total Requests displaced by instance failures and re-dispatched, by displacement point.\n")
	fmt.Fprint(bw, "# TYPE arlo_requeues_total counter\n")
	for reason := RequeueReason(0); reason < numRequeueReasons; reason++ {
		fmt.Fprintf(bw, "arlo_requeues_total{reason=%q} %d\n",
			reason.String(), r.requeues[reason].Load())
	}

	fmt.Fprint(bw, "# HELP arlo_demotions_total Algorithm 1 demotions by (ideal, chosen) runtime-level pair.\n")
	fmt.Fprint(bw, "# TYPE arlo_demotions_total counter\n")
	for from := 0; from < r.levels; from++ {
		for to := 0; to < r.levels; to++ {
			if n := r.demotions[from*r.levels+to].Load(); n != 0 {
				fmt.Fprintf(bw, "arlo_demotions_total{from=\"%d\",to=\"%d\"} %d\n", from, to, n)
			}
		}
	}

	if fnp := r.snapshot.Load(); fnp != nil {
		snap := (*fnp)()
		fmt.Fprint(bw, "# HELP arlo_queue_depth Outstanding requests per runtime level.\n")
		fmt.Fprint(bw, "# TYPE arlo_queue_depth gauge\n")
		for _, l := range snap.Levels {
			fmt.Fprintf(bw, "arlo_queue_depth{level=\"%d\",max_length=\"%d\"} %d\n",
				l.Level, l.MaxLength, l.Depth)
		}
		fmt.Fprint(bw, "# HELP arlo_level_instances Deployed instances per runtime level.\n")
		fmt.Fprint(bw, "# TYPE arlo_level_instances gauge\n")
		for _, l := range snap.Levels {
			fmt.Fprintf(bw, "arlo_level_instances{level=\"%d\",max_length=\"%d\"} %d\n",
				l.Level, l.MaxLength, l.Instances)
		}
		fmt.Fprint(bw, "# HELP arlo_instance_outstanding Outstanding requests per instance.\n")
		fmt.Fprint(bw, "# TYPE arlo_instance_outstanding gauge\n")
		for _, in := range snap.Instances {
			fmt.Fprintf(bw, "arlo_instance_outstanding{instance=\"%d\",runtime=\"%d\"} %d\n",
				in.ID, in.Runtime, in.Outstanding)
		}
		fmt.Fprint(bw, "# HELP arlo_instance_health Instance serving state: 2 healthy, 1 degraded (slowed execution), 0 dead (crashed, awaiting rejoin).\n")
		fmt.Fprint(bw, "# TYPE arlo_instance_health gauge\n")
		for _, in := range snap.Instances {
			fmt.Fprintf(bw, "arlo_instance_health{instance=\"%d\",runtime=\"%d\",state=%q} %d\n",
				in.ID, in.Runtime, in.Health.String(), in.Health.GaugeValue())
		}
		fmt.Fprint(bw, "# HELP arlo_instance_utilization Outstanding / SLO-feasible capacity per instance.\n")
		fmt.Fprint(bw, "# TYPE arlo_instance_utilization gauge\n")
		for _, in := range snap.Instances {
			util := 1.0
			if in.Capacity > 0 {
				util = float64(in.Outstanding) / float64(in.Capacity)
			}
			fmt.Fprintf(bw, "arlo_instance_utilization{instance=\"%d\",runtime=\"%d\"} %g\n",
				in.ID, in.Runtime, util)
		}
		if len(snap.Tenants) > 0 {
			fmt.Fprint(bw, "# HELP arlo_admission_total Token-bucket admission decisions per tenant.\n")
			fmt.Fprint(bw, "# TYPE arlo_admission_total counter\n")
			for _, t := range snap.Tenants {
				fmt.Fprintf(bw, "arlo_admission_total{tenant=%q,decision=\"admitted\"} %d\n", t.Tenant, t.Admitted)
				fmt.Fprintf(bw, "arlo_admission_total{tenant=%q,decision=\"rejected\"} %d\n", t.Tenant, t.Rejected)
			}
			fmt.Fprint(bw, "# HELP arlo_tenant_queue_share Tenant share of cumulative dispatched token cost.\n")
			fmt.Fprint(bw, "# TYPE arlo_tenant_queue_share gauge\n")
			for _, t := range snap.Tenants {
				fmt.Fprintf(bw, "arlo_tenant_queue_share{tenant=%q} %g\n", t.Tenant, t.Share)
			}
		}
		batchingOn := false
		for _, l := range snap.Levels {
			if l.BatchCap > 0 {
				batchingOn = true
				break
			}
		}
		if batchingOn {
			fmt.Fprint(bw, "# HELP arlo_batch_occupancy Mean batch size / profiled cap B_i per runtime level.\n")
			fmt.Fprint(bw, "# TYPE arlo_batch_occupancy gauge\n")
			for _, l := range snap.Levels {
				if l.BatchCap <= 0 {
					continue
				}
				fmt.Fprintf(bw, "arlo_batch_occupancy{level=\"%d\",max_length=\"%d\",cap=\"%d\"} %g\n",
					l.Level, l.MaxLength, l.BatchCap, r.MeanBatchSize(l.Level)/float64(l.BatchCap))
			}
		}
	}

	if fnp := r.ctrlStats.Load(); fnp != nil {
		cs := (*fnp)()
		fmt.Fprint(bw, "# HELP arlo_controller_replans_total Control periods that re-solved the allocation program.\n")
		fmt.Fprint(bw, "# TYPE arlo_controller_replans_total counter\n")
		fmt.Fprintf(bw, "arlo_controller_replans_total %d\n", cs.Replans)
		fmt.Fprint(bw, "# HELP arlo_controller_plans_held_total Replans whose replacement plan was suppressed by hysteresis.\n")
		fmt.Fprint(bw, "# TYPE arlo_controller_plans_held_total counter\n")
		fmt.Fprintf(bw, "arlo_controller_plans_held_total %d\n", cs.PlansHeld)
		fmt.Fprint(bw, "# HELP arlo_controller_replacements_total Instance replacements applied by the control loop.\n")
		fmt.Fprint(bw, "# TYPE arlo_controller_replacements_total counter\n")
		fmt.Fprintf(bw, "arlo_controller_replacements_total %d\n", cs.Replacements)
		fmt.Fprint(bw, "# HELP arlo_controller_scale_total Autoscaler GPU count changes, by direction.\n")
		fmt.Fprint(bw, "# TYPE arlo_controller_scale_total counter\n")
		fmt.Fprintf(bw, "arlo_controller_scale_total{direction=\"out\"} %d\n", cs.ScaleOuts)
		fmt.Fprintf(bw, "arlo_controller_scale_total{direction=\"in\"} %d\n", cs.ScaleIns)
		fmt.Fprint(bw, "# HELP arlo_controller_gpus Live GPU count the controller manages.\n")
		fmt.Fprint(bw, "# TYPE arlo_controller_gpus gauge\n")
		fmt.Fprintf(bw, "arlo_controller_gpus %d\n", cs.GPUs)
		fmt.Fprint(bw, "# HELP arlo_controller_dry_run 1 when the controller observes and plans without applying.\n")
		fmt.Fprint(bw, "# TYPE arlo_controller_dry_run gauge\n")
		dry := 0
		if cs.DryRun {
			dry = 1
		}
		fmt.Fprintf(bw, "arlo_controller_dry_run %d\n", dry)
	}

	fmt.Fprint(bw, "# HELP arlo_batch_size Members per executed dynamic batch.\n")
	fmt.Fprint(bw, "# TYPE arlo_batch_size histogram\n")
	var cumBatch int64
	for b := 0; b < numBatchBuckets; b++ {
		cumBatch += r.batchSizeB[b].Load()
		fmt.Fprintf(bw, "arlo_batch_size_bucket{le=\"%d\"} %d\n", batchBucketLE(b), cumBatch)
	}
	cumBatch += r.batchSizeB[numBatchBuckets].Load()
	fmt.Fprintf(bw, "arlo_batch_size_bucket{le=\"+Inf\"} %d\n", cumBatch)
	fmt.Fprintf(bw, "arlo_batch_size_sum %d\n", r.batchedReqs.Load())
	fmt.Fprintf(bw, "arlo_batch_size_count %d\n", r.batches.Load())

	writeHist(bw, "arlo_request_queue_seconds", "Queueing delay from dispatch to execution start.", &r.queueH)
	writeHist(bw, "arlo_request_exec_seconds", "Emulated execution time.", &r.execH)
	writeHist(bw, "arlo_request_latency_seconds", "End-to-end modeled request latency.", &r.totalH)
	writeHist(bw, "arlo_batch_form_wait_seconds", "Time batched requests spent in batch formation.", &r.formWaitH)
	writeHist(bw, "arlo_ingress_wait_seconds", "Wall time requests spent in the ingress submit ring before group dispatch.", &r.ingressWaitH)
	writeHist(bw, "arlo_ttft_seconds", "Time to first generated token (generative requests only).", &r.ttftH)
	writeHist(bw, "arlo_tpot_seconds", "Mean time per output token after the first (generative requests only).", &r.tpotH)

	return bw.Flush()
}

func writeHist(w io.Writer, name, help string, h *hist) {
	cum, count, sumSec := h.snapshot()
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for b := 0; b < numBuckets; b++ {
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, bucketLE(b), cum[b])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[bucketInf])
	fmt.Fprintf(w, "%s_sum %g\n", name, sumSec)
	fmt.Fprintf(w, "%s_count %d\n", name, count)
}

// Handler returns the GET /metrics endpoint serving the Prometheus text
// exposition. Safe on a nil receiver (serves the disabled marker).
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}
