package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 0},
		{125 * time.Microsecond, 0},
		{125*time.Microsecond + 1, 1},
		{250 * time.Microsecond, 1},
		{251 * time.Microsecond, 2},
		{time.Millisecond, 3},
		{time.Second, 13},
		{65 * time.Second, 19},
		{66 * time.Second, bucketInf},
		{time.Hour, bucketInf},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.d); got != tc.want {
			t.Errorf("bucketOf(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
	// Every finite bucket's boundary must classify into that bucket.
	for b := 0; b < numBuckets; b++ {
		le := time.Duration(bucketLE(b) * float64(time.Second))
		if got := bucketOf(le); got != b {
			t.Errorf("boundary of bucket %d (%v) classified into %d", b, le, got)
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.RecordSubmit()
	r.RecordDemotion(0, 1)
	r.RecordSpan(&Span{})
	r.RecordCancel()
	r.RecordReject(RejectCongested)
	r.SetSnapshot(nil)
	if r.Submitted() != 0 || r.Completed() != 0 || r.Cancelled() != 0 || r.Rejected() != 0 {
		t.Error("nil recorder should report zero counts")
	}
	if r.Demotions(0, 0) != 0 || r.Levels() != 0 {
		t.Error("nil recorder should report zero demotions/levels")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "disabled") {
		t.Errorf("nil exposition = %q, want disabled marker", sb.String())
	}
}

func TestRecorderCounts(t *testing.T) {
	r := NewRecorder(4)
	r.RecordSubmit()
	r.RecordSubmit()
	r.RecordDemotion(0, 2)
	r.RecordDemotion(0, 2)
	r.RecordDemotion(1, 3)
	r.RecordSpan(&Span{Length: 10, Queue: time.Millisecond, Exec: 2 * time.Millisecond, Total: 3 * time.Millisecond})
	r.RecordCancel()
	r.RecordReject(RejectTooLong)
	r.RecordReject(RejectCongested)

	if got := r.Submitted(); got != 2 {
		t.Errorf("submitted = %d, want 2", got)
	}
	if got := r.Completed(); got != 1 {
		t.Errorf("completed = %d, want 1", got)
	}
	if got := r.Cancelled(); got != 1 {
		t.Errorf("cancelled = %d, want 1", got)
	}
	if got := r.Rejected(); got != 2 {
		t.Errorf("rejected = %d, want 2", got)
	}
	if got := r.Demotions(0, 2); got != 2 {
		t.Errorf("demotions(0,2) = %d, want 2", got)
	}
	if got := r.Demotions(1, 3); got != 1 {
		t.Errorf("demotions(1,3) = %d, want 1", got)
	}
	// Out-of-range pairs are dropped, not panics.
	r.RecordDemotion(-1, 0)
	r.RecordDemotion(0, 99)
	if got := r.Demotions(0, 0); got != 0 {
		t.Errorf("demotions(0,0) = %d, want 0", got)
	}
}

func TestSpanDemotionHops(t *testing.T) {
	s := Span{IdealLevel: 1, Level: 4}
	if got := s.DemotionHops(); got != 3 {
		t.Errorf("hops = %d, want 3", got)
	}
	s = Span{IdealLevel: 2, Level: 2}
	if got := s.DemotionHops(); got != 0 {
		t.Errorf("hops = %d, want 0", got)
	}
	// A promotion (shouldn't happen, but) never reports negative hops.
	s = Span{IdealLevel: 3, Level: 1}
	if got := s.DemotionHops(); got != 0 {
		t.Errorf("hops = %d, want 0", got)
	}
}

func TestWritePrometheusShape(t *testing.T) {
	r := NewRecorder(3)
	r.RecordSubmit()
	r.RecordDemotion(0, 1)
	r.RecordSpan(&Span{Length: 64, Instance: 5, Queue: time.Millisecond, Exec: 40 * time.Millisecond, Total: 42 * time.Millisecond})
	r.SetSnapshot(func() Snapshot {
		return Snapshot{
			Levels: []LevelStat{
				{Level: 0, MaxLength: 64, Instances: 2, Depth: 3},
				{Level: 1, MaxLength: 128, Instances: 1, Depth: 0},
			},
			Instances: []InstanceStat{
				{ID: 0, Runtime: 0, Outstanding: 3, Capacity: 6},
			},
		}
	})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE arlo_requests_submitted_total counter",
		"arlo_requests_submitted_total 1",
		"# TYPE arlo_demotions_total counter",
		`arlo_demotions_total{from="0",to="1"} 1`,
		"# TYPE arlo_queue_depth gauge",
		`arlo_queue_depth{level="0",max_length="64"} 3`,
		`arlo_queue_depth{level="1",max_length="128"} 0`,
		`arlo_level_instances{level="0",max_length="64"} 2`,
		`arlo_instance_outstanding{instance="0",runtime="0"} 3`,
		`arlo_instance_utilization{instance="0",runtime="0"} 0.5`,
		"# TYPE arlo_request_latency_seconds histogram",
		`arlo_request_latency_seconds_bucket{le="+Inf"} 1`,
		"arlo_request_latency_seconds_count 1",
		`arlo_requests_rejected_total{reason="too_long"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative: the +Inf bucket equals the
	// count, and earlier buckets never exceed later ones.
	cum, count, _ := r.totalH.snapshot()
	if cum[bucketInf] != count {
		t.Errorf("+Inf bucket %d != count %d", cum[bucketInf], count)
	}
	for b := 1; b <= numBuckets; b++ {
		if cum[b] < cum[b-1] {
			t.Errorf("bucket %d (%d) < bucket %d (%d): not cumulative", b, cum[b], b-1, cum[b-1])
		}
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	r := NewRecorder(2)
	r.RecordSubmit()
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("content type = %q, want %q", ct, ContentType)
	}

	post, err := ts.Client().Post(ts.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(4)
	const (
		goroutines = 8
		perG       = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.RecordSubmit()
				s := Span{
					Length:   1 + (g*perG+i)%512,
					Instance: g,
					Queue:    time.Duration(i) * time.Microsecond,
					Exec:     time.Duration(i) * 10 * time.Microsecond,
					Total:    time.Duration(i) * 11 * time.Microsecond,
					Level:    (g + i) % 4,
				}
				if i%7 == 0 {
					r.RecordDemotion(i%4, (i+1)%4)
				}
				r.RecordSpan(&s)
			}
		}(g)
	}
	wg.Wait()
	if got := r.Submitted(); got != goroutines*perG {
		t.Errorf("submitted = %d, want %d", got, goroutines*perG)
	}
	if got := r.Completed(); got != goroutines*perG {
		t.Errorf("completed = %d, want %d", got, goroutines*perG)
	}
	_, count, _ := r.totalH.snapshot()
	if count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", count, goroutines*perG)
	}
}
