// The deterministic convergence suite — the headline test of the control
// loop. Everything here runs on a fake clock: the controller's Step and
// Autoscale take explicit timestamps, the observation window is fed with
// seeded, virtually-timestamped spans, and the allocation solver plus
// PlanReplacements are deterministic, so every assertion is exact — no
// wall-clock sleeps, no tolerance bands — and the whole suite is run
// under -race in CI (live cluster workers keep running underneath while
// the loop swaps their instances).
package controller

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arlo/internal/allocator"
)

// seededLengths draws n request lengths in [lo, hi] from a seeded PRNG.
func seededLengths(seed int64, n, lo, hi int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = lo + rng.Intn(hi-lo+1)
	}
	return out
}

// TestConvergenceOnDriftingTrace is the acceptance-criterion test: the
// request-length distribution drifts from short-heavy to long-heavy
// mid-run; the controller re-solves and applies replacements until the
// live topology exactly matches the solver's target for the post-drift
// distribution, in exactly |plan| = L1/2 replacements.
func TestConvergenceOnDriftingTrace(t *testing.T) {
	p := testProfile(t) // runtimes 64/128/256/512
	solver, err := allocator.NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecorder(t, p)

	const g = 8
	phase1 := seededLengths(1, 400, 1, 120)   // short-heavy: bins 0-1
	phase2 := seededLengths(2, 400, 256, 500) // long-heavy: bins 2-3
	q1 := demandOf(rec, p, phase1)
	q2 := demandOf(rec, p, phase2)
	want1, err := solver.Allocate(g, q1)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := solver.Allocate(g, q2)
	if err != nil {
		t.Fatal(err)
	}
	if equalInts(want1.N, want2.N) {
		t.Fatalf("degenerate drift: both phases solve to %v", want1.N)
	}

	// The cluster starts converged for phase 1.
	cl := testCluster(t, p, want1.N)
	c, err := New(cl, solver, rec, Options{Hysteresis: -1, MaxReplacements: -1})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: spans spread across the trailing window. The loop must
	// recognize the topology is already optimal and plan nothing.
	t1 := vt(60 * time.Second)
	for i, l := range phase1 {
		feed(rec, []int{l}, 2*time.Millisecond, t1.Add(-time.Duration(i%4)*10*time.Second))
	}
	res := c.Step(t1)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Replanned || !equalInts(res.Target, want1.N) {
		t.Fatalf("phase-1 step: %+v, want target %v", res, want1.N)
	}
	if len(res.Plan) != 0 || res.Applied != 0 {
		t.Fatalf("phase-1 step planned %v on a converged topology", res.Plan)
	}

	// Phase 2: two windows later (phase-1 slots all evicted), the
	// distribution has drifted long.
	t2 := t1.Add(2 * rec.WindowSpan())
	for i, l := range phase2 {
		feed(rec, []int{l}, 2*time.Millisecond, t2.Add(-time.Duration(i%4)*10*time.Second))
	}
	wantMoves := l1(want1.N, want2.N) / 2
	res = c.Step(t2)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !equalInts(res.Target, want2.N) {
		t.Fatalf("post-drift target = %v, want %v (demand %v)", res.Target, want2.N, q2)
	}
	if res.Applied != wantMoves || len(res.Plan) != wantMoves {
		t.Fatalf("applied %d replacements (plan %d), want exactly L1/2 = %d", res.Applied, len(res.Plan), wantMoves)
	}
	if got := cl.Allocation(); !equalInts(got, want2.N) {
		t.Fatalf("final topology %v, want MILP target %v", got, want2.N)
	}

	// A further period on the same window is a fixed point.
	res = c.Step(t2)
	if len(res.Plan) != 0 || res.Applied != 0 {
		t.Fatalf("converged topology replanned: %+v", res)
	}
	if st := c.Status(); st.Replacements != int64(wantMoves) || st.Replans != 3 {
		t.Fatalf("status after convergence: %+v", st)
	}
}

// TestBudgetedConvergenceIsMonotone pins the replacement budget: with
// MaxReplacements=1 a large drift converges one swap per period, the L1
// distance to target shrinking by exactly 2 each step, reaching the
// target in exactly L1/2 periods.
func TestBudgetedConvergenceIsMonotone(t *testing.T) {
	p := testProfile(t)
	solver, err := allocator.NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecorder(t, p)

	const g = 8
	phase2 := seededLengths(3, 400, 256, 500)
	q2 := demandOf(rec, p, phase2)
	want, err := solver.Allocate(g, q2)
	if err != nil {
		t.Fatal(err)
	}
	start := []int{5, 1, 1, 1}
	if sumInts(start) != g {
		t.Fatal("bad start vector")
	}
	dist := l1(start, want.N)
	if dist == 0 {
		t.Fatalf("degenerate: start %v already equals target", start)
	}

	cl := testCluster(t, p, start)
	c, err := New(cl, solver, rec, Options{Hysteresis: -1, MaxReplacements: 1})
	if err != nil {
		t.Fatal(err)
	}
	now := vt(60 * time.Second)
	feed(rec, phase2, 2*time.Millisecond, now)

	for step := 1; step <= dist/2; step++ {
		res := c.Step(now)
		if res.Err != nil {
			t.Fatalf("step %d: %v", step, res.Err)
		}
		if res.Applied != 1 {
			t.Fatalf("step %d applied %d, want exactly the budget (1)", step, res.Applied)
		}
		if got := l1(cl.Allocation(), want.N); got != dist-2*step {
			t.Fatalf("step %d: L1 distance %d, want %d", step, got, dist-2*step)
		}
	}
	if got := cl.Allocation(); !equalInts(got, want.N) {
		t.Fatalf("after %d budgeted steps topology is %v, want %v", dist/2, got, want.N)
	}
	if res := c.Step(now); res.Applied != 0 {
		t.Fatalf("converged topology kept churning: %+v", res)
	}
}

// TestConvergenceUnderLiveLoad drives real traffic through the cluster
// while the controller swaps instances underneath it: every synchronous
// submission must resolve (complete or return a typed error), work must
// keep completing mid-churn, and the topology must still land exactly on
// the solver target. This is the -race half of the convergence story.
func TestConvergenceUnderLiveLoad(t *testing.T) {
	p := testProfile(t, 128, 512)
	solver, err := allocator.NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecorder(t, p)

	const g = 6
	longLens := seededLengths(4, 300, 300, 500)
	want, err := solver.Allocate(g, demandOf(rec, p, longLens))
	if err != nil {
		t.Fatal(err)
	}
	start := []int{g - 1, 1}
	if equalInts(start, want.N) {
		t.Fatalf("degenerate: start %v already equals target %v", start, want.N)
	}

	cl := testCluster(t, p, start)
	c, err := New(cl, solver, rec, Options{Hysteresis: -1, MaxReplacements: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Live workers hammer the long runtime while the loop replaces
	// instances under them.
	var completed, failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.Submit(300 + rng.Intn(200)); err != nil {
					failed.Add(1)
				} else {
					completed.Add(1)
				}
			}
		}(int64(100 + w))
	}

	now := vt(60 * time.Second)
	feed(rec, longLens, 2*time.Millisecond, now)
	deadline := time.Now().Add(30 * time.Second)
	// Wait for traffic to flow before the first swap so replacements
	// genuinely race in-flight work, then keep stepping until the
	// topology converges AND more work has completed through the churn.
	for completed.Load() < 50 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	preChurn := completed.Load()
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no convergence: topology %v, want %v, %d completed", cl.Allocation(), want.N, completed.Load())
		}
		if equalInts(cl.Allocation(), want.N) && completed.Load() >= preChurn+50 {
			break
		}
		// A Step on a converged topology is a no-op; one that races a
		// congested drain returns a typed error and retries next lap.
		c.Step(now)
		time.Sleep(100 * time.Microsecond)
	}
	close(stop)
	wg.Wait()

	if got := cl.Allocation(); !equalInts(got, want.N) {
		t.Fatalf("final topology %v, want %v", got, want.N)
	}
	if completed.Load() == 0 {
		t.Fatal("no request completed while the loop was replacing instances")
	}
	t.Logf("live load through churn: %d completed, %d typed failures, %d replacements",
		completed.Load(), failed.Load(), c.Status().Replacements)
}

// TestAutoscaleOutUnderPressure: p98 at the SLO trips the target tracker
// immediately, the new worker lands on the max-length runtime, and the
// cooldown rate-limits the next one — all on the fake clock.
func TestAutoscaleOutUnderPressure(t *testing.T) {
	p := testProfile(t)
	solver, _ := allocator.NewSolver(p)
	cl := testCluster(t, p, []int{1, 1, 1, 1})
	rec := testRecorder(t, p)
	scaler, err := allocator.NewAutoScaler(testSLO)
	if err != nil {
		t.Fatal(err)
	}
	scaler.MaxGPUs = 6
	c, err := New(cl, solver, rec, Options{Scaler: scaler})
	if err != nil {
		t.Fatal(err)
	}

	// No samples: no signal, no action.
	if act := c.Autoscale(vt(60 * time.Second)); act != allocator.ScaleNone {
		t.Fatalf("empty-window autoscale acted: %v", act)
	}

	// Saturated latency (p98 >= 95% of SLO) at every tick.
	slow := func(at time.Time) { feed(rec, []int{100, 200, 300, 400}, testSLO, at) }
	base := vt(60 * time.Second)
	slow(base)
	if act := c.Autoscale(base); act != allocator.ScaleOut {
		t.Fatalf("pressure tick 1: %v, want scale-out", act)
	}
	if got := cl.Instances(); got != 5 {
		t.Fatalf("instances = %d, want 5", got)
	}
	if alloc := cl.Allocation(); alloc[len(alloc)-1] != 2 {
		t.Fatalf("scale-out landed on %v, want the max-length runtime", alloc)
	}

	// Inside the 5s cooldown: still under pressure, but no second worker.
	slow(base.Add(time.Second))
	if act := c.Autoscale(base.Add(time.Second)); act != allocator.ScaleNone {
		t.Fatalf("tick inside cooldown: %v, want none", act)
	}
	// Past the cooldown: out again, up to MaxGPUs.
	slow(base.Add(6 * time.Second))
	if act := c.Autoscale(base.Add(6 * time.Second)); act != allocator.ScaleOut {
		t.Fatalf("tick past cooldown: %v, want scale-out", act)
	}
	if got := cl.Instances(); got != 6 {
		t.Fatalf("instances = %d, want 6", got)
	}
	// At the MaxGPUs cap: pressure no longer adds workers.
	slow(base.Add(12 * time.Second))
	if act := c.Autoscale(base.Add(12 * time.Second)); act != allocator.ScaleNone {
		t.Fatalf("tick at MaxGPUs: %v, want none", act)
	}
	if st := c.Status(); st.ScaleOuts != 2 {
		t.Fatalf("ScaleOuts = %d, want 2", st.ScaleOuts)
	}
}

// TestAutoscaleInAfterQuietPeriod: a full 60s evaluation period below 50%
// of the SLO releases exactly one worker — not one per tick.
func TestAutoscaleInAfterQuietPeriod(t *testing.T) {
	p := testProfile(t)
	solver, _ := allocator.NewSolver(p)
	cl := testCluster(t, p, []int{1, 1, 1, 1})
	rec := testRecorder(t, p)
	scaler, err := allocator.NewAutoScaler(testSLO)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cl, solver, rec, Options{Scaler: scaler})
	if err != nil {
		t.Fatal(err)
	}

	base := vt(60 * time.Second)
	quiet := func(at time.Time) { feed(rec, []int{100, 300}, time.Millisecond, at) }
	// Ticks every 10s for a minute: comfortable, not yet a full period.
	for off := time.Duration(0); off < 60*time.Second; off += 10 * time.Second {
		quiet(base.Add(off))
		if act := c.Autoscale(base.Add(off)); act != allocator.ScaleNone {
			t.Fatalf("tick %v inside evaluation period acted: %v", off, act)
		}
	}
	// The period completes: release one.
	at := base.Add(61 * time.Second)
	quiet(at)
	if act := c.Autoscale(at); act != allocator.ScaleIn {
		t.Fatalf("tick past evaluation period: %v, want scale-in", act)
	}
	if got := cl.Instances(); got != 3 {
		t.Fatalf("instances = %d, want 3", got)
	}
	// The window restarts: the immediately following tick must not
	// release another.
	at = at.Add(10 * time.Second)
	quiet(at)
	if act := c.Autoscale(at); act != allocator.ScaleNone {
		t.Fatalf("tick right after scale-in acted: %v", act)
	}
	if st := c.Status(); st.ScaleIns != 1 || st.GPUs != 3 {
		t.Fatalf("status after scale-in: %+v", st)
	}
}

// TestAutoscaleDryRun records the decision without touching the pool.
func TestAutoscaleDryRun(t *testing.T) {
	p := testProfile(t)
	solver, _ := allocator.NewSolver(p)
	cl := testCluster(t, p, []int{1, 1, 1, 1})
	rec := testRecorder(t, p)
	scaler, err := allocator.NewAutoScaler(testSLO)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cl, solver, rec, Options{Scaler: scaler, DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	base := vt(60 * time.Second)
	feed(rec, []int{100, 200}, testSLO, base)
	if act := c.Autoscale(base); act != allocator.ScaleOut {
		t.Fatalf("dry-run pressure tick: %v, want scale-out decision", act)
	}
	if got := cl.Instances(); got != 4 {
		t.Fatalf("dry run grew the pool to %d", got)
	}
	if st := c.Status(); st.ScaleOuts != 1 {
		t.Fatalf("dry-run decision not recorded: %+v", st)
	}
}
