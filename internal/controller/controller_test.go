package controller

import (
	"sort"
	"strings"
	"testing"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/cluster"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/obs"
	"arlo/internal/profiler"
	"arlo/internal/queue"
)

const testSLO = 150 * time.Millisecond

func testProfile(t testing.TB, lengths ...int) *profiler.Profile {
	t.Helper()
	if len(lengths) == 0 {
		lengths = []int{64, 128, 256, 512}
	}
	p, err := profiler.StaticProfile(model.BertBase(), lengths, testSLO)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testCluster(t testing.TB, p *profiler.Profile, alloc []int) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Profile:           p,
		InitialAllocation: alloc,
		Dispatcher: func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewRequestScheduler(ml)
		},
		TimeScale: 0.01,
		Overhead:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// testRecorder builds the controller's observation plane: a standalone
// recorder (deliberately NOT the cluster's observer, so live wall-clock
// completions cannot collide with the virtual timeline the tests feed).
func testRecorder(t testing.TB, p *profiler.Profile) *obs.Recorder {
	t.Helper()
	rec := obs.NewRecorder(len(p.Runtimes))
	rec.SetLengthBins(p.MaxLengths())
	return rec
}

// vt maps a virtual offset onto the absolute timeline the window slots on.
func vt(d time.Duration) time.Time { return time.Unix(0, 0).Add(d) }

// feed records one span per length at the given virtual time with the
// given end-to-end latency.
func feed(rec *obs.Recorder, lengths []int, total time.Duration, at time.Time) {
	for _, l := range lengths {
		rec.RecordSpanAt(&obs.Span{Length: l, Total: total, Instance: l}, at)
	}
}

// binCounts mirrors the window's binning: first upper >= length, clamped
// into the last bin.
func binCounts(lengths []int, uppers []int) []int64 {
	counts := make([]int64, len(uppers))
	for _, l := range lengths {
		b := sort.SearchInts(uppers, l)
		if b >= len(uppers) {
			b = len(uppers) - 1
		}
		counts[b]++
	}
	return counts
}

// demandOf converts fed-span bin counts into the q-vector the controller
// derives: requests per SLO window.
func demandOf(rec *obs.Recorder, p *profiler.Profile, lengths []int) []float64 {
	counts := binCounts(lengths, p.MaxLengths())
	windows := float64(rec.WindowSpan()) / float64(p.SLO)
	q := make([]float64, len(counts))
	for i, n := range counts {
		q[i] = float64(n) / windows
	}
	return q
}

func sumInts(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func l1(a, b []int) int {
	d := 0
	for i := range a {
		if a[i] > b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	return d
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewValidation(t *testing.T) {
	p := testProfile(t)
	solver, err := allocator.NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	cl := testCluster(t, p, []int{1, 1, 1, 1})
	rec := testRecorder(t, p)

	if _, err := New(nil, solver, rec, Options{}); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := New(cl, nil, rec, Options{}); err == nil {
		t.Error("nil solver accepted")
	}
	if _, err := New(cl, solver, nil, Options{}); err == nil {
		t.Error("nil recorder accepted")
	}

	c, err := New(cl, solver, rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.MaxReplacements != DefaultMaxReplacements {
		t.Errorf("default MaxReplacements = %d, want %d", st.MaxReplacements, DefaultMaxReplacements)
	}
	if st.Hysteresis != DefaultHysteresis {
		t.Errorf("default Hysteresis = %g, want %g", st.Hysteresis, DefaultHysteresis)
	}
	if st.PeriodMS != float64(DefaultPeriod)/float64(time.Millisecond) {
		t.Errorf("default PeriodMS = %g", st.PeriodMS)
	}
	if st.Running {
		t.Error("controller reports running before Start")
	}
}

func TestStepSkipsIdleWindow(t *testing.T) {
	p := testProfile(t)
	solver, _ := allocator.NewSolver(p)
	cl := testCluster(t, p, []int{1, 1, 1, 1})
	rec := testRecorder(t, p)
	c, err := New(cl, solver, rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := c.Step(vt(time.Minute))
	if res.Replanned || res.Err != nil {
		t.Fatalf("idle step = %+v, want inert", res)
	}
	if c.Status().Replans != 0 {
		t.Error("idle step counted as a replan")
	}
}

func TestStepErrorsWithoutLengthBins(t *testing.T) {
	p := testProfile(t)
	solver, _ := allocator.NewSolver(p)
	cl := testCluster(t, p, []int{1, 1, 1, 1})
	rec := obs.NewRecorder(len(p.Runtimes)) // no bins installed
	c, err := New(cl, solver, rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res := c.Step(vt(time.Minute)); res.Err == nil {
		t.Fatal("step without length bins must error")
	}
	if c.Status().LastError == "" {
		t.Error("error not surfaced in Status")
	}
}

func TestDryRunPlansWithoutTouchingTopology(t *testing.T) {
	p := testProfile(t)
	solver, _ := allocator.NewSolver(p)
	cl := testCluster(t, p, []int{4, 0, 0, 0})
	rec := testRecorder(t, p)
	c, err := New(cl, solver, rec, Options{DryRun: true, Hysteresis: -1, MaxReplacements: -1})
	if err != nil {
		t.Fatal(err)
	}
	// All demand on the largest runtime: the solve must want to move
	// instances off level 0.
	lengths := make([]int, 200)
	for i := range lengths {
		lengths[i] = 500
	}
	now := vt(time.Minute)
	feed(rec, lengths, time.Millisecond, now)
	res := c.Step(now)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Replanned || len(res.Plan) == 0 {
		t.Fatalf("dry-run step = %+v, want a non-empty plan", res)
	}
	if res.Applied != 0 {
		t.Fatalf("dry run applied %d replacements", res.Applied)
	}
	if got := cl.Allocation(); !equalInts(got, []int{4, 0, 0, 0}) {
		t.Fatalf("dry run mutated topology: %v", got)
	}
	if st := c.Status(); !st.DryRun || st.Replacements != 0 || st.Replans != 1 {
		t.Fatalf("status after dry-run step: %+v", st)
	}
}

func TestHysteresisHoldsMarginalPlans(t *testing.T) {
	p := testProfile(t)
	solver, _ := allocator.NewSolver(p)
	cl := testCluster(t, p, []int{2, 2, 2, 2})
	rec := testRecorder(t, p)
	// An absurd hysteresis margin: no finite improvement can clear it, so
	// any plan the solver produces must be held.
	c, err := New(cl, solver, rec, Options{Hysteresis: 1e9, MaxReplacements: -1})
	if err != nil {
		t.Fatal(err)
	}
	lengths := make([]int, 300)
	for i := range lengths {
		lengths[i] = 30
	}
	now := vt(time.Minute)
	feed(rec, lengths, time.Millisecond, now)
	res := c.Step(now)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Replanned {
		t.Fatal("expected a replan")
	}
	if len(res.Plan) == 0 {
		t.Skip("solver already satisfied with uniform split for this demand")
	}
	if !res.Held {
		t.Fatal("marginal plan not held by hysteresis")
	}
	if got := cl.Allocation(); !equalInts(got, []int{2, 2, 2, 2}) {
		t.Fatalf("held plan still mutated topology: %v", got)
	}
	if st := c.Status(); st.PlansHeld != 1 {
		t.Fatalf("PlansHeld = %d, want 1", st.PlansHeld)
	}
}

func TestStartStopIdempotent(t *testing.T) {
	p := testProfile(t)
	solver, _ := allocator.NewSolver(p)
	cl := testCluster(t, p, []int{1, 1, 1, 1})
	rec := testRecorder(t, p)
	c, err := New(cl, solver, rec, Options{Period: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Start()
	if !c.Running() {
		t.Fatal("not running after Start")
	}
	c.Stop()
	c.Stop()
	if c.Running() {
		t.Fatal("still running after Stop")
	}

	// Stop without Start must not hang.
	c2, err := New(cl, solver, rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2.Stop()
}

func TestControllerMetricsExposed(t *testing.T) {
	p := testProfile(t)
	solver, _ := allocator.NewSolver(p)
	cl := testCluster(t, p, []int{1, 1, 1, 1})
	rec := testRecorder(t, p)
	if _, err := New(cl, solver, rec, Options{}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rec.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"arlo_controller_replans_total", "arlo_controller_replacements_total", "arlo_controller_gpus 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
