// Package controller closes the paper's control loop on the live cluster:
// the Runtime Scheduler's allocation program (Eqs. 1-7) and the section 4
// target-tracking autoscaler, until now only exercised inside simulator
// experiments, run here against the serving topology itself.
//
// Every control period the loop reads the observed request-length
// distribution and p98 latency from the obs plane's sliding window,
// re-solves the allocation program for the current GPU count, diffs the
// result against the live topology, and applies the minimal-replacement
// plan through the cluster's Replace path. A separate, faster loop feeds
// the autoscaler (target-tracking on p98, or utilization headroom) and
// grows or shrinks the GPU pool through AddInstance/RemoveInstance. Three
// dampers keep the loop from thrashing, mirroring the k8s-HPA
// desired/current pattern:
//
//   - hysteresis: a plan is applied only when the solver's objective beats
//     the current topology's objective by a configurable margin, so noise
//     around an optimum does not churn instances;
//   - a max-replacements-per-period budget: large drifts converge over
//     several periods instead of restarting half the fleet at once;
//   - dry-run mode: observe, solve and record without touching topology.
//
// Determinism is a design constraint, not an afterthought: Step and
// Autoscale take explicit timestamps and do all their work synchronously,
// so the convergence test suite drives the loop with a fake clock and
// seeded traces — Start merely wraps the same methods in wall-clock
// tickers for production use.
package controller

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/cluster"
	"arlo/internal/obs"
)

// Defaults for Options' zero values.
const (
	// DefaultPeriod is the replanning interval: frequent enough to track
	// minute-scale drift, infrequent enough that the observation window
	// fully refreshes between solves.
	DefaultPeriod = 15 * time.Second
	// DefaultScalePeriod is the autoscaler observation interval (the paper
	// evaluates the target tracker on second-scale ticks).
	DefaultScalePeriod = time.Second
	// DefaultMaxReplacements bounds topology churn per control period.
	DefaultMaxReplacements = 4
	// DefaultHysteresis is the minimum fractional objective improvement a
	// plan must promise before it is applied.
	DefaultHysteresis = 0.05
)

// Options tune the control loop. The zero value is usable: paper-shaped
// defaults are filled in by New.
type Options struct {
	// Period is the replanning interval (default DefaultPeriod).
	Period time.Duration
	// ScalePeriod is the autoscaler interval (default DefaultScalePeriod).
	ScalePeriod time.Duration
	// Scaler decides the total GPU count; nil disables autoscaling and the
	// loop only replans the split across runtimes.
	Scaler allocator.Scaler
	// MaxReplacements caps replacements applied per period (0 means
	// DefaultMaxReplacements; negative means unlimited).
	MaxReplacements int
	// Hysteresis is the fractional objective improvement required before a
	// replacement plan is applied (0 means DefaultHysteresis; negative
	// means none — every non-empty plan is applied).
	Hysteresis float64
	// MinObservations is the minimum number of windowed samples required
	// before the loop replans (default 1): an idle cluster keeps its
	// topology.
	MinObservations int
	// DemandScale multiplies the windowed demand estimate before solving
	// (0 means 1). The obs window counts wall-clock arrivals while the
	// profile's capacities are in modeled time, so when the loop drives a
	// time-compressed emulated cluster the raw estimate overstates modeled
	// demand by 1/TimeScale — set this to the cluster's TimeScale to
	// correct it. Real-time clusters (TimeScale 1) need no correction.
	DemandScale float64
	// ReplaceDelay is the modeled swap gap passed to cluster.Replace (the
	// paper measures ~1s to load a replacement runtime; 0 swaps
	// instantly).
	ReplaceDelay time.Duration
	// Exact solves the allocation program with the branch-and-bound MILP
	// reference instead of the Pareto-pruned DP (identical objectives;
	// the DP is faster and is the default).
	Exact bool
	// DryRun observes, solves and records decisions without mutating the
	// cluster.
	DryRun bool
}

// Controller runs the closed loop over one cluster. Create with New; all
// exported methods are safe for concurrent use.
type Controller struct {
	cl     *cluster.Cluster
	solver *allocator.Solver
	rec    *obs.Recorder
	opts   Options

	// mu serializes control decisions (Step, Autoscale, Status snapshots
	// of planning state) against each other; cluster mutation methods do
	// their own locking.
	mu         sync.Mutex
	epochSet   bool
	epoch      time.Time
	lastDemand []float64
	lastTarget []int
	lastErr    string

	replans      atomic.Int64
	plansHeld    atomic.Int64
	replacements atomic.Int64
	scaleOuts    atomic.Int64
	scaleIns     atomic.Int64

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StepResult reports what one control period decided, for tests and logs.
type StepResult struct {
	// Replanned reports the allocation program was solved this period
	// (false when the window held too few observations).
	Replanned bool
	// Held reports hysteresis suppressed a non-empty plan.
	Held bool
	// Target is the solved per-runtime instance counts.
	Target []int
	// Plan is the minimal replacement plan toward Target, already
	// truncated to the per-period budget.
	Plan []allocator.Replacement
	// Applied is how many replacements were executed (0 in dry-run).
	Applied int
	// Err is the solve or diff error, if any; the loop retries next
	// period.
	Err error
}

// New builds a controller over the cluster, solver and recorder. The
// recorder must be the cluster's observer (or at least fed the same
// traffic) — it is where the loop reads its demand and latency signals.
// The controller installs itself as the recorder's controller-stats
// source for the arlo_controller_* metrics.
func New(cl *cluster.Cluster, solver *allocator.Solver, rec *obs.Recorder, opts Options) (*Controller, error) {
	if cl == nil {
		return nil, errors.New("controller: nil cluster")
	}
	if solver == nil || solver.Profile == nil {
		return nil, errors.New("controller: nil solver")
	}
	if rec == nil {
		return nil, errors.New("controller: nil recorder (the loop is blind without the obs plane)")
	}
	if opts.Period <= 0 {
		opts.Period = DefaultPeriod
	}
	if opts.ScalePeriod <= 0 {
		opts.ScalePeriod = DefaultScalePeriod
	}
	if opts.MaxReplacements == 0 {
		opts.MaxReplacements = DefaultMaxReplacements
	}
	if opts.Hysteresis == 0 {
		opts.Hysteresis = DefaultHysteresis
	} else if opts.Hysteresis < 0 {
		opts.Hysteresis = 0
	}
	if opts.MinObservations < 1 {
		opts.MinObservations = 1
	}
	if opts.DemandScale <= 0 {
		opts.DemandScale = 1
	}
	c := &Controller{
		cl:     cl,
		solver: solver,
		rec:    rec,
		opts:   opts,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	rec.SetControllerStats(c.controllerStat)
	return c, nil
}

// demand converts windowed per-runtime counts into the allocation
// program's q-vector: expected requests per SLO window.
func (c *Controller) demand(counts []int64, at time.Time) []float64 {
	span := c.rec.WindowSpan()
	slo := c.solver.Profile.SLO
	windows := 1.0
	if span > 0 && slo > 0 {
		windows = float64(span) / float64(slo)
	}
	q := make([]float64, len(counts))
	for i, n := range counts {
		q[i] = float64(n) / windows * c.opts.DemandScale
	}
	return q
}

// Step runs one replanning period at the given timestamp: read the
// windowed length distribution, solve the allocation program for the
// live GPU count, and apply (up to the budget, subject to hysteresis)
// the minimal replacement plan. Production calls it from the Start
// ticker with time.Now(); tests call it directly with virtual time.
func (c *Controller) Step(now time.Time) StepResult {
	c.mu.Lock()
	defer c.mu.Unlock()

	counts := c.rec.LengthDistAt(now)
	if counts == nil {
		return c.fail(fmt.Errorf("controller: recorder has no length bins installed"))
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	if total < int64(c.opts.MinObservations) {
		return StepResult{}
	}
	current := c.cl.Allocation()
	g := 0
	for _, n := range current {
		g += n
	}
	if g == 0 {
		return c.fail(errors.New("controller: cluster has no instances"))
	}

	q := c.demand(counts, now)
	target, err := c.solve(g, q)
	if err != nil {
		return c.fail(fmt.Errorf("controller: solve: %w", err))
	}
	c.replans.Add(1)
	c.lastDemand = q
	c.lastTarget = target.N
	c.lastErr = ""

	plan, err := allocator.PlanReplacements(current, target.N)
	if err != nil {
		// The topology changed size between Allocation() and the solve
		// (an autoscaler or operator racing us); retry next period.
		return c.fail(fmt.Errorf("controller: diff: %w", err))
	}
	res := StepResult{Replanned: true, Target: target.N, Plan: plan}
	if len(plan) == 0 {
		return res
	}

	// Hysteresis: the plan must promise a real objective win over the
	// topology we already have. An unevaluable current topology (e.g. the
	// top runtime lost its last instance, violating Eq. 7) must be fixed,
	// so it never holds the plan.
	if c.opts.Hysteresis > 0 {
		curCost, cerr := allocator.EvaluateObjective(c.solver.Profile, q, current)
		if cerr == nil && curCost <= target.Cost*(1+c.opts.Hysteresis) {
			c.plansHeld.Add(1)
			res.Held = true
			return res
		}
	}

	if c.opts.MaxReplacements > 0 && len(plan) > c.opts.MaxReplacements {
		plan = plan[:c.opts.MaxReplacements]
		res.Plan = plan
	}
	if c.opts.DryRun {
		return res
	}
	for _, rep := range plan {
		if _, err := c.cl.Replace(rep.From, rep.To, c.opts.ReplaceDelay); err != nil {
			// A failure or concurrent scale event got there first; the
			// next period replans from the topology that actually exists.
			res.Err = fmt.Errorf("controller: replace %d->%d: %w", rep.From, rep.To, err)
			break
		}
		res.Applied++
		c.replacements.Add(1)
	}
	return res
}

// solve runs the configured allocation solver.
func (c *Controller) solve(g int, q []float64) (*allocator.Allocation, error) {
	if c.opts.Exact {
		return c.solver.AllocateMILP(g, q)
	}
	return c.solver.Allocate(g, q)
}

// fail records the error for Status and returns it.
func (c *Controller) fail(err error) StepResult {
	c.lastErr = err.Error()
	return StepResult{Err: err}
}

// Autoscale runs one autoscaler observation at the given timestamp and
// applies its action (grow at the max-length runtime so the new worker
// absorbs anything; shrink the least busy instance). The scaler's virtual
// clock starts at the first call. Returns the action decided (taken, or
// merely recorded in dry-run).
func (c *Controller) Autoscale(now time.Time) allocator.ScaleAction {
	if c.opts.Scaler == nil {
		return allocator.ScaleNone
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.epochSet {
		c.epoch = now
		c.epochSet = true
	}
	p98 := c.rec.P98At(now)
	if p98 <= 0 {
		return allocator.ScaleNone // empty window: no signal, no action
	}
	act := c.opts.Scaler.ObserveLoad(now.Sub(c.epoch), p98, c.utilization(), c.cl.Instances())
	switch act {
	case allocator.ScaleOut:
		if !c.opts.DryRun {
			if _, err := c.cl.AddInstance(len(c.solver.Profile.Runtimes) - 1); err != nil {
				c.lastErr = err.Error()
				return allocator.ScaleNone
			}
		}
		c.scaleOuts.Add(1)
	case allocator.ScaleIn:
		if !c.opts.DryRun {
			if _, err := c.cl.RemoveInstance(-1); err != nil {
				c.lastErr = err.Error()
				return allocator.ScaleNone
			}
		}
		c.scaleIns.Add(1)
	}
	return act
}

// utilization is cluster-wide outstanding work over summed SLO-feasible
// capacity, read from the recorder's live snapshot (0 when unavailable).
func (c *Controller) utilization() float64 {
	snap, ok := c.rec.LiveSnapshot()
	if !ok {
		return 0
	}
	var out, cap int
	for _, in := range snap.Instances {
		if in.Health == obs.Dead {
			continue
		}
		out += in.Outstanding
		cap += in.Capacity
	}
	if cap <= 0 {
		return 0
	}
	return float64(out) / float64(cap)
}

// Start launches the wall-clock control loop: Step every Period,
// Autoscale every ScalePeriod (when a Scaler is configured). Idempotent.
func (c *Controller) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	go c.run()
}

func (c *Controller) run() {
	defer close(c.done)
	replan := time.NewTicker(c.opts.Period)
	defer replan.Stop()
	var scaleC <-chan time.Time
	if c.opts.Scaler != nil {
		scale := time.NewTicker(c.opts.ScalePeriod)
		defer scale.Stop()
		scaleC = scale.C
	}
	for {
		select {
		case <-c.stop:
			return
		case <-replan.C:
			c.Step(time.Now())
		case <-scaleC:
			c.Autoscale(time.Now())
		}
	}
}

// Stop halts the loop and waits for the goroutine to exit. Idempotent;
// safe (and a no-op beyond marking stopped) when Start was never called.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	if c.started.Load() {
		<-c.done
	}
}

// Running reports whether the wall-clock loop has been started and not
// yet stopped.
func (c *Controller) Running() bool {
	if !c.started.Load() {
		return false
	}
	select {
	case <-c.stop:
		return false
	default:
		return true
	}
}

// Status is the controller's introspection snapshot, served by
// GET /v1/controller.
type Status struct {
	Running     bool    `json:"running"`
	DryRun      bool    `json:"dry_run"`
	Exact       bool    `json:"exact_solver"`
	PeriodMS    float64 `json:"period_ms"`
	AutoScaling bool    `json:"auto_scaling"`

	GPUs       int   `json:"gpus"`
	Allocation []int `json:"allocation"`
	// Target and DemandPerSLO reflect the last solved period (absent
	// before the first solve).
	Target       []int     `json:"target,omitempty"`
	DemandPerSLO []float64 `json:"demand_per_slo,omitempty"`

	P98MS         float64 `json:"p98_ms"`
	WindowSamples int64   `json:"window_samples"`
	WindowMS      float64 `json:"window_ms"`

	Replans         int64   `json:"replans"`
	PlansHeld       int64   `json:"plans_held"`
	Replacements    int64   `json:"replacements"`
	ScaleOuts       int64   `json:"scale_outs"`
	ScaleIns        int64   `json:"scale_ins"`
	MaxReplacements int     `json:"max_replacements"`
	Hysteresis      float64 `json:"hysteresis"`
	LastError       string  `json:"last_error,omitempty"`
}

// Status captures the loop's current state.
func (c *Controller) Status() Status {
	now := time.Now()
	alloc := c.cl.Allocation()
	g := 0
	for _, n := range alloc {
		g += n
	}
	st := Status{
		Running:         c.Running(),
		DryRun:          c.opts.DryRun,
		Exact:           c.opts.Exact,
		PeriodMS:        float64(c.opts.Period) / float64(time.Millisecond),
		AutoScaling:     c.opts.Scaler != nil,
		GPUs:            g,
		Allocation:      alloc,
		P98MS:           float64(c.rec.P98At(now)) / float64(time.Millisecond),
		WindowSamples:   c.rec.WindowSamples(now),
		WindowMS:        float64(c.rec.WindowSpan()) / float64(time.Millisecond),
		Replans:         c.replans.Load(),
		PlansHeld:       c.plansHeld.Load(),
		Replacements:    c.replacements.Load(),
		ScaleOuts:       c.scaleOuts.Load(),
		ScaleIns:        c.scaleIns.Load(),
		MaxReplacements: c.opts.MaxReplacements,
		Hysteresis:      c.opts.Hysteresis,
	}
	c.mu.Lock()
	if c.lastTarget != nil {
		st.Target = append([]int(nil), c.lastTarget...)
	}
	if c.lastDemand != nil {
		st.DemandPerSLO = append([]float64(nil), c.lastDemand...)
	}
	st.LastError = c.lastErr
	c.mu.Unlock()
	return st
}

// controllerStat feeds the obs plane's arlo_controller_* metrics.
func (c *Controller) controllerStat() obs.ControllerStat {
	return obs.ControllerStat{
		Replans:      c.replans.Load(),
		PlansHeld:    c.plansHeld.Load(),
		Replacements: c.replacements.Load(),
		ScaleOuts:    c.scaleOuts.Load(),
		ScaleIns:     c.scaleIns.Load(),
		GPUs:         c.cl.Instances(),
		DryRun:       c.opts.DryRun,
	}
}
