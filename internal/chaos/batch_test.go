package chaos

import (
	"testing"
	"time"
)

// TestConservationManySeedsBatched replays the conservation audit with
// dynamic batching enabled: across seeded runs sweeping the batch cap and
// the collection-window policy, with crashes, slowdowns and client
// cancellations racing batch formation, every submitted request still
// resolves exactly once and the observability books balance. Batch-level
// crash semantics (a killed instance loses its whole in-flight batch) must
// not lose, duplicate or leak any member.
func TestConservationManySeedsBatched(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 30
	}
	p := testProfile(t)
	caps := []int{2, 4, 8}
	for seed := 0; seed < seeds; seed++ {
		maxBatch := caps[seed%len(caps)]
		// Alternate greedy formation with the SLO-aware default window so
		// both wait paths face the fault schedule.
		delay := time.Duration(0)
		if seed%2 == 1 {
			delay = -1
		}
		cfg := Config{
			Profile:        p,
			Allocation:     []int{1, 2},
			Trace:          testTrace(t, int64(seed), 150, 200*time.Millisecond),
			TimeScale:      0.02,
			Seed:           int64(seed),
			CancelFraction: 0.2,
			MaxBatch:       maxBatch,
			BatchDelay:     delay,
			Events: []Event{
				{At: 20 * time.Millisecond, Kind: Slow, Runtime: 1, Factor: 3},
				{At: 50 * time.Millisecond, Kind: Fail, Runtime: 1, Downtime: 60 * time.Millisecond},
				{At: 100 * time.Millisecond, Kind: Fail, Runtime: -1, Downtime: 0},
			},
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d (batch %d): %v", seed, maxBatch, err)
		}
		if err := rep.Check(); err != nil {
			t.Fatalf("seed %d (batch %d): %v", seed, maxBatch, err)
		}
		if rep.Submitted != len(cfg.Trace.Requests) {
			t.Fatalf("seed %d: submitted %d of %d trace requests",
				seed, rep.Submitted, len(cfg.Trace.Requests))
		}
	}
}

// TestScriptedBatchCrash pins the batch-level failure semantics: the only
// small-runtime instance is slowed so its queue (and an in-flight batch)
// is deep, then crashed permanently after the trace ends. Every displaced
// member — the whole batch, plus everything queued behind it — must
// re-enter the failover demotion path exactly once: the demotion counter
// from runtime 0 to runtime 1 equals the displaced-work counters, and all
// of it completes on the survivors.
func TestScriptedBatchCrash(t *testing.T) {
	p := testProfile(t)
	rep, err := Run(Config{
		Profile:    p,
		Allocation: []int{1, 2},
		// A short trace that ends before the crash: no post-crash arrival
		// can record a submit-time demotion, so demotions(0->1) counts
		// failover redispatches only.
		Trace:      testTrace(t, 13, 300, 50*time.Millisecond),
		TimeScale:  0.02,
		MaxBatch:   8,
		BatchDelay: -1, // greedy formation: batches fill straight off the queue
		Events: []Event{
			// 50x slowdown stretches the in-flight batched kernel across the
			// crash instant and keeps the rest of the load queued behind it.
			{At: 5 * time.Millisecond, Kind: Slow, Runtime: 0, Factor: 50},
			{At: 60 * time.Millisecond, Kind: Fail, Runtime: 0, Downtime: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	// No cancellations and a single displacement per request: everything
	// submitted must complete.
	if rep.Completed != rep.Submitted {
		t.Errorf("completed %d of %d submitted (unserviceable %d, other %d)",
			rep.Completed, rep.Submitted, rep.Unserviceable, rep.OtherRejected)
	}
	displaced := rep.RequeuesQueued + rep.RequeuesInflight
	if displaced == 0 {
		t.Fatal("crash under a slowed deep queue displaced nothing")
	}
	// Exactly-once redispatch through demotion: every displaced member
	// (queued or mid-batch) demoted 0->1 once, and nothing else recorded a
	// demotion.
	if got := rep.Recorder.Demotions(0, 1); got != displaced {
		t.Errorf("demotions 0->1 = %d, displaced = %d (queued %d, inflight %d); want equal",
			got, displaced, rep.RequeuesQueued, rep.RequeuesInflight)
	}
	if got := rep.FinalAllocation[0]; got != 0 {
		t.Errorf("runtime 0 allocation after permanent crash = %d, want 0", got)
	}
}
