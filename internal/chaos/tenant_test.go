package chaos

import (
	"testing"
	"time"

	"arlo/internal/tenant"
)

// TestConservationManySeedsTenants re-runs the conservation sweep with
// the cluster in multi-tenant mode: every request carries a seeded tenant
// draw, one tenant's token bucket is tight enough to reject under the
// offered load, and the audit extends per tenant — outcomes partition
// each tenant's submissions, rate-limited rejections are typed and
// counted exactly once, and the registry's own admission counters agree
// with the harness's books. Run with -race to also audit the bucket and
// fair-queue synchronization.
func TestConservationManySeedsTenants(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 30
	}
	p := testProfile(t)
	tenants := []tenant.Config{
		{ID: "interactive", SLOClass: "interactive", Weight: 2},
		{ID: "standard", Weight: 1},
		// A deliberately tight bucket: the seeded share of the load that
		// lands here overruns it, so admission rejections exercise the
		// rate-limited outcome class in most runs.
		{ID: "noisy", SLOClass: "batch", Capacity: 400, RefillPerSec: 50, Weight: 1},
	}
	sawRateLimited := false
	for seed := 0; seed < seeds; seed++ {
		cfg := Config{
			Profile:        p,
			Allocation:     []int{1, 2},
			Trace:          testTrace(t, int64(seed), 150, 200*time.Millisecond),
			TimeScale:      0.02,
			Seed:           int64(seed),
			CancelFraction: 0.2,
			MaxBatch:       4,
			Tenants:        tenants,
			Events: []Event{
				{At: 20 * time.Millisecond, Kind: Slow, Runtime: 1, Factor: 3},
				{At: 50 * time.Millisecond, Kind: Fail, Runtime: 1, Downtime: 60 * time.Millisecond},
				{At: 100 * time.Millisecond, Kind: Fail, Runtime: -1, Downtime: 0},
			},
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Submitted != len(cfg.Trace.Requests) {
			t.Fatalf("seed %d: submitted %d of %d trace requests", seed, rep.Submitted, len(cfg.Trace.Requests))
		}
		if rep.RateLimited > 0 {
			sawRateLimited = true
			// Rejections must come only from the bucket-limited tenant:
			// unlimited tenants can never be rate-limited.
			for _, id := range []string{"interactive", "standard"} {
				if b := rep.PerTenant[id]; b.RateLimited != 0 {
					t.Fatalf("seed %d: unlimited tenant %s saw %d rate-limited", seed, id, b.RateLimited)
				}
			}
		}
	}
	if !sawRateLimited {
		t.Error("no run exercised the rate-limited path; tighten the noisy tenant's bucket")
	}
}
