package chaos

import (
	"testing"
	"time"
)

// TestConservationManySeedsController re-runs the conservation sweep with
// the closed control loop live: every quarter of the trace the controller
// re-solves the allocation program from the observed length distribution
// and applies the replacement plan, so replans race the scripted crashes,
// slowdowns, rejoins and client cancellations. The invariants do not
// bend: a controller-driven Replace displaces queued and in-flight work
// exactly like a crash does, and every submitted request must still
// resolve exactly once with the observability books in balance. Run with
// -race to also audit the replan/failover synchronization.
func TestConservationManySeedsController(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 40
	}
	p := testProfile(t)
	sawReplacement := false
	for seed := 0; seed < seeds; seed++ {
		cfg := Config{
			Profile: p,
			// Deliberately lopsided for the mostly-short Twitter lengths:
			// the solver wants GPUs on the small runtime, so replans have
			// real replacements to apply while the schedule fires.
			Allocation:     []int{1, 3},
			Trace:          testTrace(t, int64(seed), 150, 200*time.Millisecond),
			TimeScale:      0.02,
			Seed:           int64(seed),
			CancelFraction: 0.2,
			Controller:     true,
			Events: []Event{
				{At: 20 * time.Millisecond, Kind: Slow, Runtime: 1, Factor: 3},
				{At: 50 * time.Millisecond, Kind: Fail, Runtime: 1, Downtime: 60 * time.Millisecond},
				{At: 100 * time.Millisecond, Kind: Fail, Runtime: -1, Downtime: 0},
			},
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Submitted != len(cfg.Trace.Requests) {
			t.Fatalf("seed %d: submitted %d of %d trace requests", seed, rep.Submitted, len(cfg.Trace.Requests))
		}
		if rep.Replans == 0 {
			t.Fatalf("seed %d: controller mode ran without a single replan", seed)
		}
		if rep.Replacements > 0 {
			sawReplacement = true
		}
	}
	if !sawReplacement {
		t.Error("no seed produced a controller replacement; the sweep never exercised the replan/failover race")
	}
}

// TestControllerReplansConverge pins the control loop's steady-state
// effect without faults: the light load needs only one small-runtime
// instance, and the solver parks spare capacity on the max-length runtime
// (it can absorb any demotion), so periodic replans drain the deliberately
// overweight small runtime toward the big one — and the books still
// balance afterwards.
func TestControllerReplansConverge(t *testing.T) {
	p := testProfile(t)
	rep, err := Run(Config{
		Profile:          p,
		Allocation:       []int{3, 1},
		Trace:            testTrace(t, 5, 300, 400*time.Millisecond),
		TimeScale:        0.02,
		Controller:       true,
		ControllerPeriod: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	if rep.Replans < 2 {
		t.Errorf("replans = %d, want at least 2 over the run", rep.Replans)
	}
	if rep.Replacements == 0 {
		t.Error("controller applied no replacements from a lopsided start")
	}
	if got := rep.FinalAllocation[1]; got < 2 {
		t.Errorf("final allocation %v: runtime 1 should have absorbed the spare GPUs", rep.FinalAllocation)
	}
	gpus := 0
	for _, n := range rep.FinalAllocation {
		gpus += n
	}
	if gpus != 4 {
		t.Errorf("replanning must conserve the GPU pool: final %v sums to %d, want 4", rep.FinalAllocation, gpus)
	}
}
