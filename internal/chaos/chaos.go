// Package chaos is the deterministic fault-injection harness for the live
// cluster: it drives a real cluster.Cluster with a seeded synthetic load
// while executing a scripted schedule of instance crashes, slowdowns and
// recoveries, then audits the conservation invariants the failover design
// promises — every submitted request completes exactly once, is cancelled
// by its own context, or terminates with a typed error. No request is
// lost, and none is delivered twice.
//
// Determinism is in the inputs, not the interleaving: the load (arrival
// offsets, lengths, which requests carry a cancelling deadline) and the
// failure schedule derive entirely from the seed, so a failing seed
// replays the same stimulus. The goroutine interleaving underneath still
// varies — which is the point: the invariants must hold on every
// interleaving, and the harness checks them after each run. The same
// failure schedule can be cross-checked against the discrete-event
// simulator's failure model (sim.Failure), which shares its victim
// selection and demotion rule through internal/failover.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/cluster"
	"arlo/internal/controller"
	"arlo/internal/dispatch"
	"arlo/internal/obs"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/tenant"
	"arlo/internal/trace"
)

// Kind selects what an Event does to the cluster.
type Kind int

const (
	// Fail crashes the most loaded instance of Event.Runtime (-1 for
	// cluster-wide), displacing its work through the failover path; the
	// instance rejoins after Event.Downtime (0 keeps it down).
	Fail Kind = iota
	// Slow multiplies the execution latency of the most loaded instance
	// of Event.Runtime by Event.Factor until the end of the run.
	Slow
)

// Event is one scripted fault, timed in modeled time from the run start.
type Event struct {
	At       time.Duration
	Kind     Kind
	Runtime  int
	Downtime time.Duration
	Factor   float64
}

// Config describes one chaos run.
type Config struct {
	// Profile and Allocation define the cluster under test.
	Profile    *profiler.Profile
	Allocation []int
	// Dispatcher defaults to the paper's Request Scheduler.
	Dispatcher func(ml *queue.MultiLevel) (dispatch.Dispatcher, error)
	// Trace is the load; required. Arrival offsets are modeled time.
	Trace *trace.Trace
	// Events is the fault schedule, in modeled time.
	Events []Event
	// TimeScale compresses modeled time to wall time (default 0.02).
	TimeScale float64
	// Seed drives the cancellation draws (the load itself is already
	// deterministic via the trace's own seed).
	Seed int64
	// CancelFraction of requests carry a deliberately tight deadline so
	// cancellation races the failure paths (default 0, max 1).
	CancelFraction float64
	// RequeueBudget overrides the cluster's displacement budget.
	RequeueBudget int
	// MaxBatch enables dynamic batching in the cluster under test (see
	// cluster.Config.MaxBatch); the conservation invariants must hold
	// per batch member exactly as they do per sequential request.
	MaxBatch int
	// BatchDelay bounds the batch-collection window in modeled time (see
	// cluster.Config.BatchDelay).
	BatchDelay time.Duration
	// Generative switches the cluster to the continuous (iteration-level)
	// batching loop and gives every request an output budget: the trace's
	// own OutTokens when set, otherwise a seeded draw from
	// [1, MaxNewTokens]. Conservation extends to the iteration level — a
	// completed request must deliver its full token count (crash-displaced
	// partial generations restart, they do not leak).
	Generative bool
	// MaxNewTokens bounds the drawn output budgets (default 32; only read
	// when Generative).
	MaxNewTokens int
	// Controller runs the closed control loop during the run: at every
	// ControllerPeriod of modeled time the loop re-solves the allocation
	// program from the observed length distribution and applies the
	// replacement plan — so replans race the scripted failures, slowdowns
	// and rejoins. The conservation audit is unchanged: a replacement that
	// displaces in-flight work must still deliver every request exactly
	// once or reject it with a typed error.
	Controller bool
	// ControllerPeriod is the replanning cadence in modeled time (default
	// Trace.Duration/4; only read when Controller).
	ControllerPeriod time.Duration
	// Tenants, when non-empty, runs the cluster in multi-tenant mode:
	// every request is assigned a seeded tenant draw from this list, and
	// the conservation audit extends per tenant — token-bucket rejections
	// must be typed, counted exactly once, and agree with the registry's
	// own books.
	Tenants []tenant.Config
}

// Report is the audited outcome of one run. Submitted is partitioned
// exactly into the four outcome classes.
type Report struct {
	Submitted     int
	Completed     int
	Cancelled     int
	Unserviceable int
	// OtherRejected counts typed submission-path errors that are neither
	// cancellations nor budget exhaustion (congestion, no instances,
	// too-long).
	OtherRejected int
	// RateLimited counts token-bucket admission rejections (multi-tenant
	// runs only).
	RateLimited int
	// Unexpected collects errors outside the typed taxonomy — any entry
	// is an invariant violation.
	Unexpected []error

	// PerTenant partitions the outcome books by tenant id (multi-tenant
	// runs only).
	PerTenant map[string]*TenantBooks
	// TenantStats is the registry's own accounting at the end of the run,
	// cross-checked against PerTenant by Check.
	TenantStats []tenant.Stat

	// Replans and Replacements count control-loop activity (controller
	// runs only): how many periods solved, and how many instance
	// replacements the plans applied while racing the fault schedule.
	Replans      int64
	Replacements int64

	// Requeues splits the displaced-work counter by displacement point.
	RequeuesQueued   int64
	RequeuesInflight int64

	// Recorder exposes the observability books for deeper assertions.
	Recorder *obs.Recorder
	// FinalAllocation is the per-runtime instance count after the run.
	FinalAllocation []int
	// FinalHealth summarizes instance health at the end of the run.
	FinalHealth cluster.HealthSummary
}

// TenantBooks is one tenant's outcome partition in a multi-tenant run.
type TenantBooks struct {
	Submitted     int
	Completed     int
	Cancelled     int
	Unserviceable int
	OtherRejected int
	RateLimited   int
}

// Check audits the conservation invariants and returns the first
// violation:
//
//   - outcome partition: every submitted request is in exactly one of
//     {completed, cancelled, unserviceable, other-rejected};
//   - no untyped errors escaped;
//   - the recorder's books agree with the harness's own counts, which
//     rules out double-delivery (a request delivered twice would complete
//     once in the harness but twice in the recorder).
func (r *Report) Check() error {
	if len(r.Unexpected) > 0 {
		return fmt.Errorf("chaos: %d untyped errors, first: %w", len(r.Unexpected), r.Unexpected[0])
	}
	outcomes := r.Completed + r.Cancelled + r.Unserviceable + r.OtherRejected + r.RateLimited
	if outcomes != r.Submitted {
		return fmt.Errorf("chaos: conservation violated: %d outcomes for %d submissions", outcomes, r.Submitted)
	}
	rec := r.Recorder
	if got, want := rec.Completed(), int64(r.Completed); got != want {
		return fmt.Errorf("chaos: recorder completed %d, harness saw %d (double or lost delivery)", got, want)
	}
	if got, want := rec.Cancelled(), int64(r.Cancelled); got != want {
		return fmt.Errorf("chaos: recorder cancelled %d, harness saw %d", got, want)
	}
	if got, want := rec.Rejected(), int64(r.Unserviceable+r.OtherRejected+r.RateLimited); got != want {
		return fmt.Errorf("chaos: recorder rejected %d, harness saw %d", got, want)
	}
	if bal := rec.Submitted() - rec.Completed() - rec.Cancelled() - rec.Rejected(); bal != 0 {
		return fmt.Errorf("chaos: recorder books unbalanced by %d", bal)
	}
	return r.checkTenants()
}

// checkTenants audits the multi-tenant extension of the conservation
// invariants: the per-tenant books partition the totals, every tenant's
// outcomes partition its own submissions, and the registry's admission
// counters agree with what the harness observed — an admission decided
// twice (or a rejection also dispatched) breaks the agreement.
func (r *Report) checkTenants() error {
	if len(r.PerTenant) == 0 {
		return nil
	}
	var sub, rl int
	for id, b := range r.PerTenant {
		sub += b.Submitted
		rl += b.RateLimited
		if got := b.Completed + b.Cancelled + b.Unserviceable + b.OtherRejected + b.RateLimited; got != b.Submitted {
			return fmt.Errorf("chaos: tenant %s conservation violated: %d outcomes for %d submissions", id, got, b.Submitted)
		}
	}
	if sub != r.Submitted || rl != r.RateLimited {
		return fmt.Errorf("chaos: per-tenant books (%d submitted, %d rate-limited) do not partition totals (%d, %d)",
			sub, rl, r.Submitted, r.RateLimited)
	}
	stats := make(map[string]tenant.Stat, len(r.TenantStats))
	for _, st := range r.TenantStats {
		stats[st.ID] = st
	}
	for id, b := range r.PerTenant {
		st, ok := stats[id]
		if !ok {
			return fmt.Errorf("chaos: tenant %s missing from registry stats", id)
		}
		if st.Rejected != int64(b.RateLimited) {
			return fmt.Errorf("chaos: tenant %s registry rejected %d, harness saw %d", id, st.Rejected, b.RateLimited)
		}
		// A request cancelled before it reached admission (its tight
		// deadline expired in the submit path's first check) is counted by
		// the harness but never by the bucket, so admitted may fall short
		// of submitted-minus-rate-limited — but only by cancellations.
		upper := int64(b.Submitted - b.RateLimited)
		lower := upper - int64(b.Cancelled)
		if st.Admitted > upper || st.Admitted < lower {
			return fmt.Errorf("chaos: tenant %s registry admitted %d, harness bounds [%d, %d]",
				id, st.Admitted, lower, upper)
		}
	}
	return nil
}

// Run executes one chaos scenario to completion and returns the audited
// report (call Check for the invariant verdict). The cluster is built,
// driven and closed inside the call.
func Run(cfg Config) (*Report, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("chaos: nil trace")
	}
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 0.02
	}
	disp := cfg.Dispatcher
	if disp == nil {
		disp = func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewRequestScheduler(ml)
		}
	}
	maxNew := cfg.MaxNewTokens
	if maxNew < 1 {
		maxNew = 32
	}
	var reg *tenant.Registry
	if len(cfg.Tenants) > 0 {
		var err error
		if reg, err = tenant.NewRegistry(cfg.Tenants...); err != nil {
			return nil, err
		}
	}
	rec := obs.NewRecorder(len(cfg.Profile.MaxLengths()))
	cl, err := cluster.New(cluster.Config{
		Profile:           cfg.Profile,
		InitialAllocation: cfg.Allocation,
		Dispatcher:        disp,
		TimeScale:         scale,
		Overhead:          -1,
		RequeueBudget:     cfg.RequeueBudget,
		Observer:          rec,
		MaxBatch:          cfg.MaxBatch,
		BatchDelay:        cfg.BatchDelay,
		Continuous:        cfg.Generative,
		MeanOutTokens:     float64(maxNew+1) / 2,
		Tenants:           reg,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	// The control loop shares the run's recorder and cluster, replanning
	// with no hysteresis or budget so every period exercises the Replace
	// path. Replace errors are expected mid-schedule (the plan races
	// failures); Step already tolerates them and replans next period.
	var ctrl *controller.Controller
	if cfg.Controller {
		solver, err := allocator.NewSolver(cfg.Profile)
		if err != nil {
			return nil, err
		}
		ctrl, err = controller.New(cl, solver, rec, controller.Options{
			Hysteresis:      -1,
			MaxReplacements: -1,
			DemandScale:     scale,
		})
		if err != nil {
			return nil, err
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{Recorder: rec}
	if reg != nil {
		rep.PerTenant = make(map[string]*TenantBooks, len(cfg.Tenants))
		for _, tc := range cfg.Tenants {
			rep.PerTenant[tc.ID] = &TenantBooks{}
		}
	}

	// Merge arrivals, fault events and controller ticks into one
	// modeled-time schedule.
	type step struct {
		at   time.Duration
		req  *trace.Request
		ev   *Event
		ctrl bool
	}
	steps := make([]step, 0, len(cfg.Trace.Requests)+len(cfg.Events))
	for i := range cfg.Trace.Requests {
		r := &cfg.Trace.Requests[i]
		steps = append(steps, step{at: r.At, req: r})
	}
	for i := range cfg.Events {
		ev := &cfg.Events[i]
		steps = append(steps, step{at: ev.At, ev: ev})
	}
	if ctrl != nil {
		period := cfg.ControllerPeriod
		if period <= 0 {
			period = cfg.Trace.Duration / 4
		}
		if period > 0 {
			for at := period; at <= cfg.Trace.Duration; at += period {
				steps = append(steps, step{at: at, ctrl: true})
			}
		}
	}
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].at < steps[j].at })

	// Cancellation deadlines and output budgets are drawn up front, in
	// schedule order, so the stimulus depends only on the seed.
	deadlines := make([]time.Duration, len(steps))
	budgets := make([]int, len(steps))
	tenants := make([]string, len(steps))
	for i, st := range steps {
		if st.req == nil {
			continue
		}
		if rng.Float64() < cfg.CancelFraction {
			// Tight enough to race queueing and the failure windows.
			deadlines[i] = time.Duration(1+rng.Intn(5)) * time.Millisecond
		}
		if cfg.Generative {
			budgets[i] = st.req.OutTokens
			if budgets[i] < 1 {
				budgets[i] = 1 + rng.Intn(maxNew)
			}
		}
		if reg != nil {
			tenants[i] = st.req.Tenant
			if tenants[i] == "" {
				tenants[i] = cfg.Tenants[rng.Intn(len(cfg.Tenants))].ID
			}
		}
	}

	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	classify := func(tn string, err error) {
		mu.Lock()
		defer mu.Unlock()
		books := &TenantBooks{}
		if rep.PerTenant != nil {
			if b, ok := rep.PerTenant[tn]; ok {
				books = b
			} else {
				rep.PerTenant[tn] = books
			}
		}
		switch {
		case err == nil:
			rep.Completed++
			books.Completed++
		case errors.Is(err, cluster.ErrDeadlineExceeded):
			rep.Cancelled++
			books.Cancelled++
		case errors.Is(err, cluster.ErrRateLimited):
			rep.RateLimited++
			books.RateLimited++
		case errors.Is(err, cluster.ErrUnserviceable):
			rep.Unserviceable++
			books.Unserviceable++
		case errors.Is(err, cluster.ErrCongested),
			errors.Is(err, cluster.ErrClusterClosed),
			errors.Is(err, dispatch.ErrNoInstances),
			errors.Is(err, dispatch.ErrTooLong):
			rep.OtherRejected++
			books.OtherRejected++
		default:
			rep.Unexpected = append(rep.Unexpected, err)
		}
	}

	// resolved counts requests whose outcome has been classified; the
	// event barrier below uses it to tell "not yet dispatched" from
	// "already finished".
	resolved := func() int {
		mu.Lock()
		defer mu.Unlock()
		return rep.Completed + rep.Cancelled + rep.Unserviceable + rep.OtherRejected +
			rep.RateLimited + len(rep.Unexpected)
	}

	start := time.Now()
	for i, st := range steps {
		if wait := time.Until(start.Add(time.Duration(float64(st.at) * scale))); wait > 0 {
			time.Sleep(wait)
		}
		if st.ev != nil || st.ctrl {
			// Dispatch barrier: wait (bounded) until every earlier arrival
			// has been routed or resolved, so the queue state a fault (or a
			// replan) observes is a function of the schedule, not of how
			// the runtime happened to interleave the submitter goroutines.
			barrier := time.Now().Add(time.Second)
			for cl.Outstanding()+resolved() < rep.Submitted && time.Now().Before(barrier) {
				time.Sleep(20 * time.Microsecond)
			}
			if st.ctrl {
				// Replace errors are legal here — the plan races failures
				// and rejoins; the loop replans from whatever topology
				// exists next tick. Conservation is what Check audits.
				_ = ctrl.Step(time.Now())
				continue
			}
			switch st.ev.Kind {
			case Fail:
				// "No instance to fail" is legal mid-schedule (a prior
				// permanent failure emptied the runtime); the event is a
				// no-op then, matching the simulator's behaviour.
				_, _ = cl.FailInstance(st.ev.Runtime, st.ev.Downtime)
			case Slow:
				_, _ = cl.SlowInstance(st.ev.Runtime, st.ev.Factor)
			}
			continue
		}
		rep.Submitted++
		length := st.req.Length
		deadline := deadlines[i]
		budget := budgets[i]
		tn := tenants[i]
		if rep.PerTenant != nil {
			mu.Lock()
			b, ok := rep.PerTenant[tn]
			if !ok {
				b = &TenantBooks{}
				rep.PerTenant[tn] = b
			}
			b.Submitted++
			mu.Unlock()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			if deadline > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(float64(deadline)*scale))
				defer cancel()
			}
			res, err := cl.SubmitCtx(ctx, cluster.Request{Length: length, MaxNewTokens: budget, Tenant: tn})
			if err == nil && budget > 0 && res.Span.OutTokens != budget {
				// Iteration-level conservation: a completion must carry its
				// full generation — a short count means a crash-displaced
				// partial leaked through as finished.
				err = fmt.Errorf("chaos: completed with %d of %d tokens", res.Span.OutTokens, budget)
			}
			classify(tn, err)
		}()
	}
	wg.Wait()

	if reg != nil {
		rep.TenantStats = reg.Stats()
	}
	if ctrl != nil {
		st := ctrl.Status()
		rep.Replans = st.Replans
		rep.Replacements = st.Replacements
	}
	rep.RequeuesQueued = rec.RequeuesFor(obs.RequeueQueued)
	rep.RequeuesInflight = rec.RequeuesFor(obs.RequeueInflight)
	rep.FinalAllocation = cl.Allocation()
	rep.FinalHealth = cluster.Summarize(cl.Health())
	return rep, nil
}
