package chaos

import (
	"testing"
	"time"

	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/sim"
	"arlo/internal/trace"
)

func testProfile(t testing.TB) *profiler.Profile {
	t.Helper()
	p, err := profiler.StaticProfile(model.BertBase(), []int{128, 512}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testTrace(t testing.TB, seed int64, rate float64, dur time.Duration) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.Stable(seed, rate, dur))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestConservationManySeeds is the tentpole assertion: across hundreds of
// seeded runs mixing crashes (transient and permanent), slowdowns and
// client cancellations, every submitted request resolves exactly once —
// completed, cancelled, or typed error — and the observability books
// agree with the harness's own tally (which would expose a double
// delivery). Run with -race to also audit the synchronization.
func TestConservationManySeeds(t *testing.T) {
	seeds := 500
	if testing.Short() {
		seeds = 60
	}
	p := testProfile(t)
	for seed := 0; seed < seeds; seed++ {
		cfg := Config{
			Profile:        p,
			Allocation:     []int{1, 2},
			Trace:          testTrace(t, int64(seed), 150, 200*time.Millisecond),
			TimeScale:      0.02,
			Seed:           int64(seed),
			CancelFraction: 0.2,
			Events: []Event{
				{At: 20 * time.Millisecond, Kind: Slow, Runtime: 1, Factor: 3},
				{At: 50 * time.Millisecond, Kind: Fail, Runtime: 1, Downtime: 60 * time.Millisecond},
				{At: 100 * time.Millisecond, Kind: Fail, Runtime: -1, Downtime: 0},
			},
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Submitted != len(cfg.Trace.Requests) {
			t.Fatalf("seed %d: submitted %d of %d trace requests", seed, rep.Submitted, len(cfg.Trace.Requests))
		}
	}
}

// TestConservationManySeedsGenerative re-runs the conservation sweep with
// the cluster in continuous (iteration-level) batching mode and every
// request carrying an output budget. The invariants tighten: beyond the
// outcome partition and balanced books, every completion must deliver its
// full token count — a crash mid-decode displaces the resident sequence,
// which restarts and finishes exactly once; partial generations never
// surface as completed. Run with -race to also audit the per-iteration
// admission synchronization.
func TestConservationManySeedsGenerative(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 40
	}
	p := testProfile(t)
	for seed := 0; seed < seeds; seed++ {
		tr, err := trace.Generate(trace.Generative(int64(seed), 120, 200*time.Millisecond, 8, 32))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Profile:        p,
			Allocation:     []int{1, 2},
			Trace:          tr,
			TimeScale:      0.02,
			Seed:           int64(seed),
			CancelFraction: 0.2,
			MaxBatch:       4,
			Generative:     true,
			MaxNewTokens:   32,
			Events: []Event{
				{At: 20 * time.Millisecond, Kind: Slow, Runtime: 1, Factor: 3},
				{At: 50 * time.Millisecond, Kind: Fail, Runtime: 1, Downtime: 60 * time.Millisecond},
				{At: 100 * time.Millisecond, Kind: Fail, Runtime: -1, Downtime: 0},
			},
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Submitted != len(cfg.Trace.Requests) {
			t.Fatalf("seed %d: submitted %d of %d trace requests", seed, rep.Submitted, len(cfg.Trace.Requests))
		}
	}
}

// TestScriptedPermanentFailure pins the deterministic end state of a
// permanent crash: the runtime's allocation shrinks by one, displaced
// work is visible on the requeue counters, and the books still balance.
func TestScriptedPermanentFailure(t *testing.T) {
	p := testProfile(t)
	rep, err := Run(Config{
		Profile:    p,
		Allocation: []int{1, 2},
		// Twitter lengths are mostly short, so the load piles onto the
		// single small-runtime instance; a cluster-wide crash therefore
		// hits it with a deep queue, and the displaced short requests can
		// only demote into the surviving larger runtimes — the failover
		// rule end to end.
		Trace:     testTrace(t, 7, 600, 100*time.Millisecond),
		TimeScale: 0.02,
		Events: []Event{
			// Slowing the small instance 50x first guarantees its queue is
			// deep when the crash lands, so displacement is deterministic.
			{At: 5 * time.Millisecond, Kind: Slow, Runtime: 0, Factor: 50},
			{At: 50 * time.Millisecond, Kind: Fail, Runtime: -1, Downtime: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	if got := rep.FinalAllocation[0]; got != 0 {
		t.Errorf("runtime 0 allocation after permanent failure = %d, want 0", got)
	}
	if rep.RequeuesQueued+rep.RequeuesInflight == 0 {
		t.Error("no displaced work recorded for a crash under load")
	}
	if rep.FinalHealth.Dead != 1 {
		t.Errorf("final health = %+v, want exactly 1 dead", rep.FinalHealth)
	}
}

// TestRecoveryRestoresAllocation checks the transient-failure path: after
// the downtime elapses the crashed instance rejoins, so the run ends at
// the starting allocation with everything healthy.
func TestRecoveryRestoresAllocation(t *testing.T) {
	p := testProfile(t)
	rep, err := Run(Config{
		Profile:    p,
		Allocation: []int{1, 2},
		Trace:      testTrace(t, 11, 200, 300*time.Millisecond),
		TimeScale:  0.02,
		Events: []Event{
			{At: 40 * time.Millisecond, Kind: Fail, Runtime: 1, Downtime: 50 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	if got, want := rep.FinalAllocation[1], 2; got != want {
		t.Errorf("runtime 1 allocation after recovery = %d, want %d", got, want)
	}
	if rep.FinalHealth.Dead != 0 || rep.FinalHealth.Healthy == 0 {
		t.Errorf("final health = %+v, want all healthy", rep.FinalHealth)
	}
}

// TestCrossCheckAgainstSimulator runs the same profile, allocation, load
// and failure schedule through the discrete-event simulator and the live
// harness. The two share the failover rule (internal/failover), so their
// steady-state routing must agree: both absorb the crash, serve every
// request, and end at the same GPU count.
func TestCrossCheckAgainstSimulator(t *testing.T) {
	p := testProfile(t)
	tr := testTrace(t, 3, 150, 300*time.Millisecond)
	failAt := 60 * time.Millisecond

	simRes, err := sim.Run(sim.Config{
		Profile:           p,
		Trace:             tr,
		InitialAllocation: []int{1, 2},
		Dispatcher: func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewRequestScheduler(ml)
		},
		Overhead: -1,
		Failures: []sim.Failure{{At: failAt, Runtime: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := Run(Config{
		Profile:    p,
		Allocation: []int{1, 2},
		Trace:      tr,
		TimeScale:  0.02,
		// A generous budget: this scenario checks routing parity, not
		// budget exhaustion — survivors exist for every length.
		RequeueBudget: 64,
		Events: []Event{
			{At: failAt, Kind: Fail, Runtime: 1, Downtime: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}

	if simRes.Failures != 1 {
		t.Fatalf("simulator applied %d failures, want 1", simRes.Failures)
	}
	// Routing parity: both sides serve the full trace despite the crash.
	if simRes.Completed != len(tr.Requests) {
		t.Errorf("simulator completed %d of %d", simRes.Completed, len(tr.Requests))
	}
	if rep.Completed != len(tr.Requests) {
		t.Errorf("live cluster completed %d of %d (unserviceable %d, other %d)",
			rep.Completed, len(tr.Requests), rep.Unserviceable, rep.OtherRejected)
	}
	// Topology parity: one permanent crash leaves both at the same GPU
	// count, on the same runtime.
	gpus := 0
	for _, n := range rep.FinalAllocation {
		gpus += n
	}
	if got := int(simRes.GPUs.Last()); got != gpus {
		t.Errorf("end GPU count: simulator %d, live cluster %d", got, gpus)
	}
	if rep.FinalAllocation[1] != 1 {
		t.Errorf("live runtime 1 allocation = %d, want 1", rep.FinalAllocation[1])
	}
}
