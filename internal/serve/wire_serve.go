// Binary-protocol front end: the same inference semantics as POST
// /v1/infer served over internal/wire's length-prefixed frames on a
// second listener. One connection carries many in-flight requests —
// clients pipeline and responses return as each request completes,
// matched by id — so the per-request cost is one frame each way instead
// of an HTTP round trip.

package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"arlo/internal/cluster"
	"arlo/internal/dispatch"
	"arlo/internal/wire"
)

// ServeWire accepts binary-protocol connections on l until the listener
// fails or the server is closed (Close closes l and returns nil here).
// Run it on its own goroutine next to the HTTP listener.
func (s *Server) ServeWire(l net.Listener) error {
	s.listMu.Lock()
	if s.closing.Load() {
		s.listMu.Unlock()
		_ = l.Close()
		return nil
	}
	s.listeners = append(s.listeners, l)
	s.listMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closing.Load() {
				return nil
			}
			return err
		}
		go s.serveWireConn(conn)
	}
}

// serveWireConn runs one connection: a single read loop decodes frames
// and fans each request out to its own goroutine, which submits to the
// cluster and writes its response frame under the shared write lock —
// out-of-order completion is the point of the id field.
func (s *Server) serveWireConn(conn net.Conn) {
	if !s.trackConn(conn) {
		return
	}
	defer s.untrackConn(conn)
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 32<<10)
	ww := &wireWriter{bw: bufio.NewWriterSize(conn, 32<<10)}
	var wg sync.WaitGroup
	defer wg.Wait()
	var buf []byte
	for {
		var payload []byte
		var err error
		payload, buf, err = wire.ReadFrame(br, buf)
		if err != nil {
			// EOF, torn frame or an oversized prefix: the stream cannot be
			// trusted past this point, so drop the connection.
			return
		}
		// Load-snapshot probes are answered inline: building a snapshot is
		// a handful of atomic reads, and routers poll on an interval, so a
		// goroutine per probe would cost more than the probe.
		if len(payload) > 0 && payload[0] == wire.KindLoadRequest {
			id, err := wire.DecodeLoadRequest(payload)
			if err != nil {
				ww.send(&wire.Response{Status: wire.StatusInvalid, Message: "malformed load request"})
				continue
			}
			snap := s.LoadSnapshot()
			snap.ID = id
			ww.sendRaw(wire.AppendLoadSnapshot(nil, &snap))
			continue
		}
		// Decode aliases the read buffer only for fields we copy below
		// (Text is copied by string conversion, Tokens decode into a fresh
		// slice), so the next ReadFrame may reuse buf while the request is
		// still in flight.
		req, err := wire.DecodeRequest(payload, nil)
		if err != nil {
			// A kind or mode this server does not speak is the binary twin
			// of an unknown JSON field: reject it as unsupported rather than
			// malformed, so versioned clients can tell the two apart.
			if errors.Is(err, wire.ErrBadKind) || errors.Is(err, wire.ErrBadMode) ||
				errors.Is(err, wire.ErrBadVersion) {
				ww.send(&wire.Response{ID: req.ID, Status: wire.StatusUnsupportedField, Message: err.Error()})
				continue
			}
			ww.send(&wire.Response{ID: req.ID, Status: wire.StatusInvalid, Message: "malformed request"})
			continue
		}
		wg.Add(1)
		go func(req wire.Request) {
			defer wg.Done()
			resp := s.inferWire(&req)
			ww.send(&resp)
		}(req)
	}
}

// wireWriter serializes response frames from concurrent request
// goroutines onto one buffered connection writer.
type wireWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	buf []byte
}

// sendRaw frames and writes an already-encoded payload (load snapshots,
// which have their own encoder) under the same write lock as send.
func (w *wireWriter) sendRaw(payload []byte) {
	w.mu.Lock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	_, err := w.bw.Write(hdr[:])
	if err == nil {
		_, err = w.bw.Write(payload)
	}
	if err == nil {
		err = w.bw.Flush()
	}
	w.mu.Unlock()
	_ = err // a dead peer surfaces as the read loop's error
}

func (w *wireWriter) send(resp *wire.Response) {
	w.mu.Lock()
	w.buf = wire.AppendResponse(w.buf[:0], resp)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(w.buf)))
	_, err := w.bw.Write(hdr[:])
	if err == nil {
		_, err = w.bw.Write(w.buf)
	}
	if err == nil {
		err = w.bw.Flush()
	}
	w.mu.Unlock()
	_ = err // a dead peer surfaces as the read loop's error
}

// inferWire is handleInfer (or, for KindGenRequest frames, handleGenerate)
// for one decoded binary request: gen requests carry their output budget
// through the cluster and are answered with a KindGenResponse frame whose
// trailer holds TTFT and the generated token count.
func (s *Server) inferWire(req *wire.Request) wire.Response {
	gen := req.Kind == wire.KindGenRequest || req.Kind == wire.KindGenRequestV2
	if gen && (req.MaxNewTokens < 1 || req.MaxNewTokens > MaxNewTokensLimit) {
		return wire.Response{ID: req.ID, Status: wire.StatusInvalid,
			Message: fmt.Sprintf("max_new_tokens must be in [1, %d], got %d", MaxNewTokensLimit, req.MaxNewTokens)}
	}
	var (
		length   int
		tokTime  time.Duration
		labelIdx uint8
	)
	switch req.Mode {
	case wire.ModeText:
		if req.Text == "" {
			return wire.Response{ID: req.ID, Status: wire.StatusInvalid, Message: "empty text"}
		}
		tokStart := time.Now()
		ids := s.tok.Encode(req.Text, s.maxLen)
		tokTime = time.Since(tokStart)
		length = len(ids)
		labelIdx = classifyIndex(ids)
	case wire.ModeTokens:
		if len(req.Tokens) == 0 {
			return wire.Response{ID: req.ID, Status: wire.StatusInvalid, Message: "empty token ids"}
		}
		if len(req.Tokens) > s.maxLen {
			// Mirror the tokenizer's cap on the pre-encoded path.
			req.Tokens = req.Tokens[:s.maxLen]
		}
		length = len(req.Tokens)
		labelIdx = classifyTokens(req.Tokens)
	default:
		return wire.Response{ID: req.ID, Status: wire.StatusInvalid, Message: "unknown mode"}
	}

	ctx := context.Background()
	if req.Deadline != 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.Unix(0, req.Deadline))
		defer cancel()
	}
	if s.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.reqTimeout)
		defer cancel()
	}
	creq := cluster.Request{Length: length, Tokenize: tokTime, Tenant: req.Tenant}
	if gen {
		creq.MaxNewTokens = int(req.MaxNewTokens)
	}
	res, err := s.submit(ctx, creq)
	if err != nil {
		s.rejected.Add(1)
		eresp := wire.Response{ID: req.ID, Status: wireStatus(err), Message: err.Error()}
		if eresp.Status == wire.StatusRateLimited {
			eresp.RetryAfterNS = uint64(retryAfterOf(err))
		}
		return eresp
	}
	s.served.Add(1)
	s.window.Record(res.Latency)
	s.notify(length, res.Latency)
	resp := wire.Response{
		ID:           req.ID,
		Status:       wire.StatusOK,
		Label:        labelIdx,
		SeqLen:       uint32(length),
		LatencyNS:    uint64(res.Latency),
		QueueNS:      uint64(res.Span.Queue),
		ExecNS:       uint64(res.Span.Exec),
		DemotionHops: uint16(res.Span.DemotionHops()),
		Instance:     uint32(res.Span.Instance),
		Runtime:      uint32(res.Span.Level),
		Batch:        res.Span.Batch,
		BatchSize:    uint32(res.Span.BatchSize),
	}
	if gen {
		resp.Kind = wire.KindGenResponse
		resp.TTFTNS = uint64(res.Span.TTFT)
		resp.OutTokens = uint32(res.Span.OutTokens)
	}
	return resp
}

// wireStatus is mapError's binary twin.
func wireStatus(err error) wire.Status {
	switch {
	case errors.Is(err, ErrUnsupportedField):
		return wire.StatusUnsupportedField
	case errors.Is(err, dispatch.ErrTooLong):
		return wire.StatusTooLong
	case errors.Is(err, cluster.ErrDeadlineExceeded):
		return wire.StatusDeadline
	case errors.Is(err, cluster.ErrUnserviceable):
		return wire.StatusUnserviceable
	case errors.Is(err, cluster.ErrCongested):
		return wire.StatusCongested
	case errors.Is(err, dispatch.ErrNoInstances):
		return wire.StatusNoInstances
	case errors.Is(err, cluster.ErrClusterClosed):
		return wire.StatusUnavailable
	case errors.Is(err, ErrRateLimited):
		return wire.StatusRateLimited
	default:
		return wire.StatusInternal
	}
}

// classifyIndex is classify returning the label index instead of the
// string.
func classifyIndex(ids []int) uint8 {
	h := uint64(14695981039346656037)
	for _, id := range ids {
		h ^= uint64(id)
		h *= 1099511628211
	}
	return uint8(h % 3)
}

// classifyTokens folds pre-encoded token ids with the same hash so a
// ModeTokens request classifies identically to the ModeText request it
// was encoded from.
func classifyTokens(ids []uint32) uint8 {
	h := uint64(14695981039346656037)
	for _, id := range ids {
		h ^= uint64(id)
		h *= 1099511628211
	}
	return uint8(h % 3)
}
