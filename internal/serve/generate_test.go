package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestGenerateEndToEnd(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	resp, err := c.Generate("the quick brown fox jumps over the lazy dog", 8)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OutputTokens != 8 {
		t.Errorf("output_tokens = %d, want 8", resp.OutputTokens)
	}
	if resp.TTFTMS <= 0 {
		t.Errorf("ttft_ms = %v, want > 0", resp.TTFTMS)
	}
	if resp.TPOTMS <= 0 {
		t.Errorf("tpot_ms = %v, want > 0 for 8 output tokens", resp.TPOTMS)
	}
	if resp.LatencyMS < resp.TTFTMS {
		t.Errorf("latency %vms < ttft %vms", resp.LatencyMS, resp.TTFTMS)
	}
	if resp.SequenceLength <= 0 {
		t.Errorf("sequence_length = %d", resp.SequenceLength)
	}
}

func TestGenerateRejectsUnknownFields(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := `{"text":"hello world","max_new_tokens":4,"temperature":0.7}`
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeUnsupportedField {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeUnsupportedField)
	}
	if !strings.Contains(env.Error.Message, "temperature") {
		t.Errorf("message %q should name the offending field", env.Error.Message)
	}
}

func TestGenerateValidation(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cases := []struct {
		name, body string
		wantCode   string
	}{
		{"empty text", `{"text":"","max_new_tokens":4}`, CodeInvalidRequest},
		{"zero budget", `{"text":"hi","max_new_tokens":0}`, CodeInvalidRequest},
		{"negative budget", `{"text":"hi","max_new_tokens":-3}`, CodeInvalidRequest},
		{"huge budget", `{"text":"hi","max_new_tokens":1000000}`, CodeInvalidRequest},
		{"bad json", `{"text":`, CodeInvalidRequest},
		{"trailing garbage", `{"text":"hi","max_new_tokens":4} extra`, CodeInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var env ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatal(err)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", env.Error.Code, tc.wantCode)
			}
		})
	}
}

func TestGenerateClientSurfacesUnsupportedField(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := []byte(`{"text":"hi","max_new_tokens":2,"top_p":0.9}`)
	c := &Client{BaseURL: ts.URL}
	var out GenerateResponse
	err := c.postJSON(t.Context(), "/v1/generate", body, &out)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Code != CodeUnsupportedField || apiErr.Status != http.StatusBadRequest {
		t.Errorf("got (%q, %d), want (%q, 400)", apiErr.Code, apiErr.Status, CodeUnsupportedField)
	}
}

// /v1/infer must stay byte-compatible: the lenient decoder still accepts
// unknown fields, and the hand-rolled response encoding is unchanged.
func TestInferStaysLenient(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := `{"text":"hello world","future_field":true}`
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (lenient decode)", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var ir InferResponse
	if err := json.Unmarshal(buf.Bytes(), &ir); err != nil {
		t.Fatalf("infer response no longer valid JSON: %v", err)
	}
	// No generative fields may leak into the infer encoding.
	if bytes.Contains(buf.Bytes(), []byte("ttft")) || bytes.Contains(buf.Bytes(), []byte("output_tokens")) {
		t.Errorf("infer response grew generative fields: %s", buf.String())
	}
}
