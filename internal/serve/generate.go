package serve

// The generative endpoint: POST /v1/generate submits a prompt with a
// requested output budget through the same dispatch path as /v1/infer,
// and reports the generative latency decomposition — time-to-first-token
// (TTFT) and time-per-output-token (TPOT) — alongside the lifecycle span.
// The generated text itself is emulated (the system under study is the
// scheduler); the response carries the token count, not token strings.
//
// Unlike /v1/infer, whose decoder tolerates unknown JSON fields for
// compatibility with older clients, /v1/generate rejects them: generation
// parameters silently ignored (a sampling knob the server does not
// implement, a typo'd field) would change what the caller gets back, so an
// unknown field is a typed ErrUnsupportedField mapped to the
// unsupported_field envelope code with HTTP 400.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"arlo/internal/cluster"
)

// ErrUnsupportedField reports a /v1/generate request carrying a field the
// server does not implement. Mapped to CodeUnsupportedField (HTTP 400) in
// the error envelope and StatusUnsupportedField on the wire.
var ErrUnsupportedField = errors.New("serve: unsupported field")

// CodeUnsupportedField is the envelope code for ErrUnsupportedField.
const CodeUnsupportedField = "unsupported_field"

// MaxNewTokensLimit caps GenerateRequest.MaxNewTokens: a budget beyond it
// is rejected as invalid rather than holding a decode slot indefinitely.
const MaxNewTokensLimit = 4096

// GenerateRequest is the body of POST /v1/generate. Unknown fields are
// rejected with unsupported_field.
type GenerateRequest struct {
	// Text is the prompt.
	Text string `json:"text"`
	// MaxNewTokens is the output budget: the request completes after
	// generating this many tokens. Must be in [1, MaxNewTokensLimit].
	MaxNewTokens int `json:"max_new_tokens"`
	// Tenant is the submitting tenant id; the X-Arlo-Tenant header wins
	// when both are present.
	Tenant string `json:"tenant,omitempty"`
}

// GenerateResponse is the reply of POST /v1/generate.
type GenerateResponse struct {
	// Label is the emulated generation summary (deterministic over the
	// prompt's token ids, as /v1/infer's classifier output).
	Label string `json:"label"`
	// SequenceLength is the tokenized prompt length Arlo dispatched on.
	SequenceLength int `json:"sequence_length"`
	// OutputTokens is how many tokens were generated (the request's
	// max_new_tokens — emulated generation never stops early).
	OutputTokens int `json:"output_tokens"`
	// TTFTMS is the time to first token in milliseconds: submission to the
	// end of the request's prefill iteration.
	TTFTMS float64 `json:"ttft_ms"`
	// TPOTMS is the mean time per output token after the first, in
	// milliseconds; 0 when a single token was generated.
	TPOTMS float64 `json:"tpot_ms"`
	// LatencyMS is the measured end-to-end serving latency in milliseconds.
	LatencyMS float64 `json:"latency_ms"`
	// QueueMS is the time spent queued before execution started.
	QueueMS float64 `json:"queue_ms"`
	// ExecMS is the emulated kernel execution time (prefill plus decode
	// residency).
	ExecMS float64 `json:"exec_ms"`
	// DemotionHops, Instance, Runtime, Batch, BatchSize mirror
	// InferResponse.
	DemotionHops int   `json:"demotion_hops"`
	Instance     int   `json:"instance"`
	Runtime      int   `json:"runtime"`
	Batch        int64 `json:"batch,omitempty"`
	BatchSize    int   `json:"batch_size,omitempty"`
}

// decodeStrict unmarshals a /v1/generate body, rejecting unknown fields
// with ErrUnsupportedField (carrying the offending field name) and
// malformed JSON with a plain error.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if strings.Contains(err.Error(), "unknown field") {
			return fmt.Errorf("%w: %v", ErrUnsupportedField, err)
		}
		return err
	}
	// Trailing garbage after the object is malformed too.
	if dec.More() {
		return fmt.Errorf("trailing data after JSON object")
	}
	return nil
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "read error")
		return
	}
	var req GenerateRequest
	if err := decodeStrict(body, &req); err != nil {
		if errors.Is(err, ErrUnsupportedField) {
			writeError(w, http.StatusBadRequest, CodeUnsupportedField, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "invalid JSON")
		return
	}
	if req.Text == "" {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "empty text")
		return
	}
	if req.MaxNewTokens < 1 || req.MaxNewTokens > MaxNewTokensLimit {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest,
			fmt.Sprintf("max_new_tokens must be in [1, %d], got %d", MaxNewTokensLimit, req.MaxNewTokens))
		return
	}
	ctx := r.Context()
	if s.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.reqTimeout)
		defer cancel()
	}
	tokStart := time.Now()
	ids := s.tok.Encode(req.Text, s.maxLen)
	res, err := s.submit(ctx, cluster.Request{
		Length:       len(ids),
		Tokenize:     time.Since(tokStart),
		MaxNewTokens: req.MaxNewTokens,
		Tenant:       tenantOf(r, req.Tenant),
	})
	if err != nil {
		s.rejected.Add(1)
		writeMappedError(w, err)
		return
	}
	s.served.Add(1)
	s.window.Record(res.Latency)
	s.notify(len(ids), res.Latency)
	writeJSON(w, GenerateResponse{
		Label:          classify(ids),
		SequenceLength: len(ids),
		OutputTokens:   res.Span.OutTokens,
		TTFTMS:         float64(res.Span.TTFT) / float64(time.Millisecond),
		TPOTMS:         float64(res.Span.TPOT()) / float64(time.Millisecond),
		LatencyMS:      float64(res.Latency) / float64(time.Millisecond),
		QueueMS:        float64(res.Span.Queue) / float64(time.Millisecond),
		ExecMS:         float64(res.Span.Exec) / float64(time.Millisecond),
		DemotionHops:   res.Span.DemotionHops(),
		Instance:       res.Span.Instance,
		Runtime:        res.Span.Level,
		Batch:          res.Span.Batch,
		BatchSize:      res.Span.BatchSize,
	})
}

// Generate posts one generative request with background context.
func (c *Client) Generate(text string, maxNewTokens int) (*GenerateResponse, error) {
	return c.GenerateCtx(context.Background(), text, maxNewTokens)
}

// GenerateCtx posts one generative request, honoring ctx across all
// attempts and applying the client's per-attempt Timeout and retry policy.
func (c *Client) GenerateCtx(ctx context.Context, text string, maxNewTokens int) (*GenerateResponse, error) {
	body, err := json.Marshal(GenerateRequest{Text: text, MaxNewTokens: maxNewTokens})
	if err != nil {
		return nil, err
	}
	var out GenerateResponse
	if err := c.postJSON(ctx, "/v1/generate", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
