// WireClient speaks the binary ingress protocol: one TCP connection, many
// in-flight requests, responses matched by id. It is the pipelining
// counterpart of Client — no per-request connection or HTTP framing, so a
// closed-loop caller fleet shares one socket.

package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"arlo/internal/wire"
)

// WireClient is a pipelining binary-protocol client. Safe for concurrent
// use; every in-flight Infer shares the connection. The policy fields
// (Tenant, MaxRetries, Backoff) must be set before the first call.
type WireClient struct {
	// Tenant, when non-empty, upgrades every request to a V2 frame
	// carrying it — the binary twin of the X-Arlo-Tenant header.
	Tenant string
	// MaxRetries is how many times a retryable non-OK status (congested,
	// rate-limited, ...) is retried. Zero means a single attempt.
	MaxRetries int
	// Backoff is the delay before the first retry, doubling each retry;
	// a rate-limited reply's retry_after_ns hint floors the wait.
	// Defaults to 50ms when MaxRetries > 0.
	Backoff time.Duration

	conn net.Conn

	wmu  sync.Mutex
	bw   *bufio.Writer
	wbuf []byte

	mu      sync.Mutex
	pending map[uint64]chan wire.Response
	readErr error
	closed  bool

	nextID atomic.Uint64
}

// DialWire connects to a server's binary listener.
func DialWire(addr string) (*WireClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &WireClient{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 32<<10),
		pending: make(map[uint64]chan wire.Response),
	}
	go c.readLoop()
	return c, nil
}

// readLoop delivers response frames to their waiting callers until the
// connection dies, then fails every pending call.
func (c *WireClient) readLoop() {
	br := bufio.NewReaderSize(c.conn, 32<<10)
	var buf []byte
	for {
		var payload []byte
		var err error
		payload, buf, err = wire.ReadFrame(br, buf)
		if err != nil {
			c.fail(err)
			return
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp // buffered; never blocks the read loop
		}
	}
}

// fail poisons the client: every pending and future call returns err.
func (c *WireClient) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
}

// Close tears down the connection; in-flight calls return an error.
func (c *WireClient) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.fail(fmt.Errorf("serve: wire client closed"))
	return err
}

// Infer sends one raw-text request with background context.
func (c *WireClient) Infer(text string) (*InferResponse, error) {
	return c.InferCtx(context.Background(), text)
}

// InferCtx sends one raw-text request; the server tokenizes.
func (c *WireClient) InferCtx(ctx context.Context, text string) (*InferResponse, error) {
	return c.do(ctx, &wire.Request{Mode: wire.ModeText, Text: text})
}

// InferTokensCtx sends pre-encoded token ids, skipping server-side
// tokenization — the lowest-overhead submit path.
func (c *WireClient) InferTokensCtx(ctx context.Context, tokens []uint32) (*InferResponse, error) {
	return c.do(ctx, &wire.Request{Mode: wire.ModeTokens, Tokens: tokens})
}

// Generate sends one generative request with background context.
func (c *WireClient) Generate(text string, maxNewTokens int) (*GenerateResponse, error) {
	return c.GenerateCtx(context.Background(), text, maxNewTokens)
}

// GenerateCtx sends one KindGenRequest frame and decodes the
// KindGenResponse trailer (TTFT, generated token count).
func (c *WireClient) GenerateCtx(ctx context.Context, text string, maxNewTokens int) (*GenerateResponse, error) {
	resp, err := c.doRaw(ctx, &wire.Request{
		Kind:         wire.KindGenRequest,
		Mode:         wire.ModeText,
		Text:         text,
		MaxNewTokens: uint32(maxNewTokens),
	})
	if err != nil {
		return nil, err
	}
	label := ""
	if int(resp.Label) < len(inferLabels) {
		label = inferLabels[resp.Label]
	}
	out := &GenerateResponse{
		Label:          label,
		SequenceLength: int(resp.SeqLen),
		OutputTokens:   int(resp.OutTokens),
		TTFTMS:         float64(resp.TTFTNS) / float64(time.Millisecond),
		LatencyMS:      float64(resp.LatencyNS) / float64(time.Millisecond),
		QueueMS:        float64(resp.QueueNS) / float64(time.Millisecond),
		ExecMS:         float64(resp.ExecNS) / float64(time.Millisecond),
		DemotionHops:   int(resp.DemotionHops),
		Instance:       int(resp.Instance),
		Runtime:        int(resp.Runtime),
		Batch:          resp.Batch,
		BatchSize:      int(resp.BatchSize),
	}
	if resp.OutTokens > 1 && resp.LatencyNS > resp.TTFTNS {
		out.TPOTMS = float64(resp.LatencyNS-resp.TTFTNS) / float64(resp.OutTokens-1) / float64(time.Millisecond)
	}
	return out, nil
}

func (c *WireClient) do(ctx context.Context, req *wire.Request) (*InferResponse, error) {
	resp, err := c.doRaw(ctx, req)
	if err != nil {
		return nil, err
	}
	return wireToInfer(resp)
}

// doRaw sends req, retrying retryable non-OK statuses under the client's
// policy. Each attempt is a fresh frame with a fresh id.
func (c *WireClient) doRaw(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.doOnce(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, lastErr
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || !retryable(apiErr.Status) {
			return nil, lastErr
		}
		if attempt >= c.MaxRetries {
			return nil, lastErr
		}
		wait := time.Duration(rand.Int63n(int64(backoff))) + 1
		if apiErr.RetryAfter > wait {
			wait = apiErr.RetryAfter
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, lastErr
		}
		backoff *= 2
	}
}

func (c *WireClient) doOnce(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	if c.Tenant != "" {
		req.Tenant = c.Tenant
		switch req.Kind {
		case 0, wire.KindRequest:
			req.Kind = wire.KindRequestV2
		case wire.KindGenRequest:
			req.Kind = wire.KindGenRequestV2
		}
	}
	req.ID = c.nextID.Add(1)
	if d, ok := ctx.Deadline(); ok {
		req.Deadline = d.UnixNano()
	}
	ch := make(chan wire.Response, 1)
	c.mu.Lock()
	if err := c.readErr; err != nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("serve: wire connection dead: %w", err)
	}
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("serve: wire client closed")
	}
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	c.wbuf = wire.AppendRequest(c.wbuf[:0], req)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(c.wbuf)))
	_, err := c.bw.Write(hdr[:])
	if err == nil {
		_, err = c.bw.Write(c.wbuf)
	}
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			return nil, fmt.Errorf("serve: wire connection dead: %w", err)
		}
		if resp.Status != wire.StatusOK {
			return nil, &APIError{
				Status:     wireHTTPStatus(resp.Status),
				Code:       resp.Status.String(),
				Message:    resp.Message,
				RetryAfter: time.Duration(resp.RetryAfterNS),
			}
		}
		return &resp, nil
	case <-ctx.Done():
		// The server still answers (its side of the deadline fires too);
		// drop the pending entry so the read loop discards that reply.
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// wireToInfer translates an ok binary response into the JSON client's
// types; doRaw already turned error statuses into *APIError with the same
// stable code, so errors.Is against the cluster sentinels behaves
// identically across protocols.
func wireToInfer(resp *wire.Response) (*InferResponse, error) {
	label := ""
	if int(resp.Label) < len(inferLabels) {
		label = inferLabels[resp.Label]
	}
	return &InferResponse{
		Label:          label,
		SequenceLength: int(resp.SeqLen),
		LatencyMS:      float64(resp.LatencyNS) / float64(time.Millisecond),
		QueueMS:        float64(resp.QueueNS) / float64(time.Millisecond),
		ExecMS:         float64(resp.ExecNS) / float64(time.Millisecond),
		DemotionHops:   int(resp.DemotionHops),
		Instance:       int(resp.Instance),
		Runtime:        int(resp.Runtime),
		Batch:          resp.Batch,
		BatchSize:      int(resp.BatchSize),
	}, nil
}

// wireHTTPStatus maps a binary status onto the HTTP status the JSON
// endpoint would have used, keeping APIError semantics (retryable checks,
// logging) protocol-independent.
func wireHTTPStatus(s wire.Status) int {
	switch s {
	case wire.StatusInvalid, wire.StatusUnsupportedField:
		return http.StatusBadRequest
	case wire.StatusTooLong:
		return http.StatusRequestEntityTooLarge
	case wire.StatusDeadline:
		return http.StatusGatewayTimeout
	case wire.StatusCongested, wire.StatusNoInstances, wire.StatusUnavailable, wire.StatusUnserviceable:
		return http.StatusServiceUnavailable
	case wire.StatusRateLimited:
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}
