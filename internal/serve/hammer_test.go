package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"arlo/internal/cluster"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/obs"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/tokenizer"
)

// hammerServer builds a small cluster with a recorder installed so the
// conservation invariant is checkable at the serve boundary.
func hammerServer(t *testing.T, opts ...Option) (*Server, *obs.Recorder) {
	t.Helper()
	p, err := profiler.StaticProfile(model.BertBase(), []int{128, 512}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		Profile:           p,
		InitialAllocation: []int{1, 1},
		Dispatcher: func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewRequestScheduler(ml)
		},
		TimeScale: 0.05, // compress emulated compute so the hammer churns
		Overhead:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	rec := obs.NewRecorder(cl.NumLevels())
	srv, err := New(tokenizer.New(), cl, append([]Option{WithRecorder(rec)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, rec
}

// hammer fires concurrent POST /v1/infer with mid-flight cancellations
// and checks the conservation invariant: every request the recorder saw
// submitted resolved exactly one way, and no load leaks.
func hammer(t *testing.T, srv *Server, rec *obs.Recorder) {
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const (
		producers = 8
		perProd   = 25
	)
	body, _ := json.Marshal(InferRequest{Text: "a mid sized request body for the hammer to chew on"})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < perProd; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				if rng.Intn(3) == 0 {
					// Mid-flight cancellation at a random point inside the
					// request's expected lifetime.
					d := time.Duration(rng.Intn(2_000)) * time.Microsecond
					time.AfterFunc(d, cancel)
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					cancel()
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := ts.Client().Do(req)
				if err == nil {
					_ = resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable &&
						resp.StatusCode != http.StatusGatewayTimeout {
						t.Errorf("unexpected status %d", resp.StatusCode)
					}
				} else if ctx.Err() == nil {
					t.Errorf("transport error without cancellation: %v", err)
				}
				cancel()
			}
		}(p)
	}
	wg.Wait()

	// Conservation at the serve boundary: the cluster resolved every
	// submission exactly once and holds no residual load.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rec.Submitted() == rec.Completed()+rec.Cancelled()+rec.Rejected() &&
			srv.cluster.Outstanding() == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s, c, x, r := rec.Submitted(), rec.Completed(), rec.Cancelled(), rec.Rejected()
	if s != c+x+r {
		t.Errorf("books: submitted %d != completed %d + cancelled %d + rejected %d", s, c, x, r)
	}
	if s == 0 {
		t.Error("hammer produced no submissions")
	}
	if got := srv.cluster.Outstanding(); got != 0 {
		t.Errorf("outstanding = %d after drain, want 0", got)
	}
	if served := srv.served.Load(); served != c {
		t.Errorf("serve counted %d served, recorder %d completed", served, c)
	}
}

func TestHammerInferDirect(t *testing.T) {
	srv, rec := hammerServer(t)
	hammer(t, srv, rec)
}

func TestHammerInferIngress(t *testing.T) {
	srv, rec := hammerServer(t, WithIngress(cluster.IngressConfig{Shards: 2, MaxGroup: 8}))
	hammer(t, srv, rec)
}

// TestHammerWire is the binary-protocol hammer: pipelined concurrent
// submissions with mid-flight cancellations over a handful of shared
// connections.
func TestHammerWire(t *testing.T) {
	srv, rec := hammerServer(t, WithIngress(cluster.IngressConfig{Shards: 2, MaxGroup: 8}))
	addr := startWire(t, srv)

	const (
		conns   = 4
		workers = 4
		perW    = 15
	)
	var wg sync.WaitGroup
	for ci := 0; ci < conns; ci++ {
		c, err := DialWire(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < perW; i++ {
					ctx := context.Background()
					cancel := context.CancelFunc(func() {})
					if rng.Intn(3) == 0 {
						ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(2_000))*time.Microsecond)
					}
					_, err := c.InferCtx(ctx, "wire hammer request text")
					if err != nil && ctx.Err() == nil && !errors.Is(err, cluster.ErrDeadlineExceeded) &&
						!errors.Is(err, cluster.ErrCongested) {
						t.Errorf("unexpected wire error: %v", err)
					}
					cancel()
				}
			}(int64(ci*workers + w))
		}
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rec.Submitted() == rec.Completed()+rec.Cancelled()+rec.Rejected() &&
			srv.cluster.Outstanding() == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s, c, x, r := rec.Submitted(), rec.Completed(), rec.Cancelled(), rec.Rejected(); s != c+x+r {
		t.Errorf("books: submitted %d != completed %d + cancelled %d + rejected %d", s, c, x, r)
	}
	if got := srv.cluster.Outstanding(); got != 0 {
		t.Errorf("outstanding = %d after drain, want 0", got)
	}
}
