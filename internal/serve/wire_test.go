package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"arlo/internal/cluster"
)

// startWire attaches a binary listener to the server and returns its
// address.
func startWire(t *testing.T, srv *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.ServeWire(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return l.Addr().String()
}

func TestWireInferEndToEnd(t *testing.T) {
	srv, _ := testServer(t)
	addr := startWire(t, srv)
	c, err := DialWire(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Infer("the data team won the game today")
	if err != nil {
		t.Fatal(err)
	}
	if resp.SequenceLength <= 0 {
		t.Errorf("sequence length = %d, want > 0", resp.SequenceLength)
	}
	if resp.LatencyMS <= 0 {
		t.Errorf("latency = %v, want > 0", resp.LatencyMS)
	}
	if resp.Label == "" {
		t.Error("empty label")
	}

	// The binary reply must agree with the JSON endpoint's semantics:
	// identical input classifies identically.
	want := classify(srv.tok.Encode("the data team won the game today", srv.maxLen))
	if resp.Label != want {
		t.Errorf("label %q, want %q", resp.Label, want)
	}
}

func TestWireInferTokensSkipsTokenizer(t *testing.T) {
	srv, _ := testServer(t)
	addr := startWire(t, srv)
	c, err := DialWire(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ids := srv.tok.Encode("a pre-encoded request", srv.maxLen)
	toks := make([]uint32, len(ids))
	for i, id := range ids {
		toks[i] = uint32(id)
	}
	resp, err := c.InferTokensCtx(context.Background(), toks)
	if err != nil {
		t.Fatal(err)
	}
	if resp.SequenceLength != len(ids) {
		t.Errorf("sequence length = %d, want %d", resp.SequenceLength, len(ids))
	}
	if want := classify(ids); resp.Label != want {
		t.Errorf("label %q, want %q (token mode must classify like text mode)", resp.Label, want)
	}
}

func TestWirePipelinedConcurrent(t *testing.T) {
	srv, _ := testServer(t)
	addr := startWire(t, srv)
	c, err := DialWire(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			texts := []string{
				"short one",
				"a somewhat longer sentence with several more words in it",
				"x",
			}
			resp, err := c.Infer(texts[i%len(texts)])
			if err != nil {
				errs <- err
				return
			}
			if resp.SequenceLength <= 0 {
				errs <- errors.New("bad sequence length")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := srv.served.Load(); got != n {
		t.Errorf("served = %d, want %d", got, n)
	}
}

func TestWireErrorMapping(t *testing.T) {
	srv, _ := testServer(t)
	addr := startWire(t, srv)
	c, err := DialWire(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Empty text is invalid at the protocol layer.
	if _, err := c.Infer(""); err == nil {
		t.Error("empty text should fail")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Code != CodeInvalidRequest {
			t.Errorf("err = %v, want invalid_request APIError", err)
		}
	}

	// A spent deadline maps back to the cluster sentinel through
	// errors.Is, exactly like the JSON client.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := c.InferCtx(ctx, "some text"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("spent deadline: err = %v, want ctx deadline error", err)
	}
}

func TestWireServerWithIngress(t *testing.T) {
	srv, _ := testServerOpts(t, WithIngress(cluster.IngressConfig{Shards: 2}))
	addr := startWire(t, srv)
	c, err := DialWire(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Infer("ring fed inference request")
	if err != nil {
		t.Fatal(err)
	}
	if resp.LatencyMS <= 0 {
		t.Errorf("latency = %v, want > 0", resp.LatencyMS)
	}
}

// testServerOpts is testServer with extra server options.
func testServerOpts(t *testing.T, opts ...Option) (*Server, *cluster.Cluster) {
	t.Helper()
	srv, cl := testServer(t)
	_ = srv
	opts = append([]Option{WithMaxLength(512)}, opts...)
	srv2, err := New(srv.tok, cl, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv2.Close() })
	return srv2, cl
}

// TestAppendInferResponseMatchesJSON pins the hand-rolled encoder to
// encoding/json byte-for-byte, omitempty behavior included.
func TestAppendInferResponseMatchesJSON(t *testing.T) {
	cases := []InferResponse{
		{Label: "positive", SequenceLength: 128, LatencyMS: 5.125, QueueMS: 0.25,
			ExecMS: 4.875, DemotionHops: 2, Instance: 3, Runtime: 1},
		{Label: "neutral", SequenceLength: 1, LatencyMS: 0, QueueMS: 0, ExecMS: 0},
		{Label: "negative", SequenceLength: 512, LatencyMS: 123.456789, QueueMS: 1e-7,
			ExecMS: 1e22, DemotionHops: 0, Instance: 0, Runtime: 7, Batch: 42, BatchSize: 8},
	}
	for _, r := range cases {
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		got := appendInferResponse(nil, &r)
		// json.Encoder (the old writer) appends a newline; Marshal doesn't.
		if string(got) != string(want)+"\n" {
			t.Errorf("encoding diverged:\n got: %s\nwant: %s", got, want)
		}
	}
}

func TestWireGenerateEndToEnd(t *testing.T) {
	srv, _ := testServer(t)
	addr := startWire(t, srv)
	c, err := DialWire(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Generate("the quick brown fox jumps over the lazy dog", 8)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OutputTokens != 8 {
		t.Errorf("output tokens = %d, want 8", resp.OutputTokens)
	}
	if resp.TTFTMS <= 0 {
		t.Errorf("ttft = %vms, want > 0", resp.TTFTMS)
	}
	if resp.LatencyMS < resp.TTFTMS {
		t.Errorf("latency %vms < ttft %vms", resp.LatencyMS, resp.TTFTMS)
	}

	// A budget outside [1, MaxNewTokensLimit] is invalid, not unsupported.
	if _, err := c.Generate("hi", 0); err == nil {
		t.Error("zero max_new_tokens should fail")
	}
}
