package serve

// Tenant identity and the tenant admin API.
//
// Identity: every inference request resolves its tenant from the
// X-Arlo-Tenant header first, then the body's "tenant" field, and falls
// back to the default tenant when neither is present — so pre-tenancy
// clients keep working byte-for-byte. Rejections by token-bucket
// admission map to HTTP 429 with a Retry-After header computed from the
// bucket's refill rate.
//
// Admin:
//
//	GET /v1/tenants       — every tenant's config
//	GET /v1/tenants/{id}  — one tenant's config and counters
//	PUT /v1/tenants/{id}  — create or live-update one tenant record
//
// All three answer 404 not_found on clusters running without a tenant
// registry: multi-tenancy is a construction-time opt-in, not something
// the admin API can switch on.

import (
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"arlo/internal/tenant"
)

// ErrRateLimited is the admission-rejection sentinel surfaced as HTTP
// 429 rate_limited. Alias of the cluster/tenant sentinel so callers can
// match at whichever layer they hold.
var ErrRateLimited = tenant.ErrRateLimited

// TenantHeader is the request header carrying the tenant id; it takes
// precedence over the body field.
const TenantHeader = "X-Arlo-Tenant"

// tenantOf resolves a request's tenant id: header first, body field
// second, empty (→ default tenant) otherwise.
func tenantOf(r *http.Request, bodyTenant string) string {
	if h := r.Header.Get(TenantHeader); h != "" {
		return h
	}
	return bodyTenant
}

// writeMappedError renders a dispatch-path error through the envelope,
// adding the Retry-After header (whole seconds, rounded up, at least 1)
// on rate-limited rejections so well-behaved clients back off by the
// bucket's actual refill horizon.
func writeMappedError(w http.ResponseWriter, err error) {
	status, code := mapError(err)
	if status == http.StatusTooManyRequests {
		var rl *tenant.RateLimitError
		if errors.As(err, &rl) {
			secs := int64(math.Ceil(rl.RetryAfter.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
	}
	writeError(w, status, code, err.Error())
}

// TenantRecord is the admin API's view of one tenant: its config plus
// live admission counters.
type TenantRecord struct {
	tenant.Config
	// Admitted, Rejected and Dispatched are cumulative counters; zero on
	// PUT responses for a freshly created tenant.
	Admitted   int64 `json:"admitted"`
	Rejected   int64 `json:"rejected"`
	Dispatched int64 `json:"dispatched"`
}

// TenantList is the reply of GET /v1/tenants.
type TenantList struct {
	Tenants []TenantRecord `json:"tenants"`
}

// registryOr404 returns the cluster's tenant registry, answering 404
// when multi-tenancy is disabled.
func (s *Server) registryOr404(w http.ResponseWriter) *tenant.Registry {
	reg := s.cluster.Tenants()
	if reg == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "multi-tenancy is not enabled")
	}
	return reg
}

func record(t *tenant.Tenant) TenantRecord {
	st := t.Stat()
	return TenantRecord{
		Config:     t.Config(),
		Admitted:   st.Admitted,
		Rejected:   st.Rejected,
		Dispatched: st.Dispatched,
	}
}

// handleTenants serves GET /v1/tenants: every tenant's record, sorted by
// id.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	reg := s.registryOr404(w)
	if reg == nil {
		return
	}
	stats := reg.Stats()
	out := TenantList{Tenants: make([]TenantRecord, 0, len(stats))}
	for _, st := range stats {
		if t, ok := reg.Lookup(st.ID); ok {
			out.Tenants = append(out.Tenants, record(t))
		}
	}
	writeJSON(w, out)
}

// handleTenant serves GET and PUT /v1/tenants/{id}.
func (s *Server) handleTenant(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/tenants/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such tenant")
		return
	}
	reg := s.registryOr404(w)
	if reg == nil {
		return
	}
	switch r.Method {
	case http.MethodGet:
		t, ok := reg.Lookup(id)
		if !ok {
			writeError(w, http.StatusNotFound, CodeNotFound, "no such tenant: "+id)
			return
		}
		writeJSON(w, record(t))
	case http.MethodPut:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, "read error")
			return
		}
		var cfg tenant.Config
		if err := decodeStrict(body, &cfg); err != nil {
			if errors.Is(err, ErrUnsupportedField) {
				writeError(w, http.StatusBadRequest, CodeUnsupportedField, err.Error())
				return
			}
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, "invalid JSON")
			return
		}
		// The path is the identity; a body id may only agree with it.
		if cfg.ID == "" {
			cfg.ID = id
		} else if cfg.ID != id {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest,
				"body id "+cfg.ID+" does not match path id "+id)
			return
		}
		if err := cfg.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
			return
		}
		writeJSON(w, record(reg.Put(cfg)))
	default:
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET or PUT required")
	}
}

// retryAfterOf extracts the rate-limit retry hint from an error, 0 when
// absent — the wire path encodes it as retry_after_ns.
func retryAfterOf(err error) time.Duration {
	var rl *tenant.RateLimitError
	if errors.As(err, &rl) {
		return rl.RetryAfter
	}
	return 0
}
