package serve

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"arlo/internal/cluster"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/tokenizer"
)

func testServer(t *testing.T) (*Server, *cluster.Cluster) {
	t.Helper()
	p, err := profiler.StaticProfile(model.BertBase(), model.BertBaseArch.RuntimeLengths(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		Profile:           p,
		InitialAllocation: []int{1, 1, 1, 1, 1, 1, 1, 1},
		Dispatcher: func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewRequestScheduler(ml)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	srv, err := New(tokenizer.New(), cl, WithMaxLength(512))
	if err != nil {
		t.Fatal(err)
	}
	return srv, cl
}

func TestNewValidation(t *testing.T) {
	_, cl := testServer(t)
	if _, err := New(nil, cl); err == nil {
		t.Error("nil tokenizer should fail")
	}
	if _, err := New(tokenizer.New(), nil); err == nil {
		t.Error("nil cluster should fail")
	}
	if _, err := New(tokenizer.New(), cl, WithMaxLength(1)); err == nil {
		t.Error("tiny max length should fail")
	}
}

func TestInferEndToEnd(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	resp, err := c.Infer("the data team won the game today")
	if err != nil {
		t.Fatal(err)
	}
	if resp.SequenceLength < 3 {
		t.Errorf("sequence length = %d, want >= 3", resp.SequenceLength)
	}
	if resp.LatencyMS <= 0 {
		t.Errorf("latency = %v, want > 0", resp.LatencyMS)
	}
	switch resp.Label {
	case "positive", "negative", "neutral":
	default:
		t.Errorf("unexpected label %q", resp.Label)
	}
	// Determinism: same text, same label.
	resp2, err := c.Infer("the data team won the game today")
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Label != resp.Label {
		t.Errorf("labels differ across identical inputs: %q vs %q", resp.Label, resp2.Label)
	}
}

func TestInferRejectsBadRequests(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, tc := range []struct {
		name string
		do   func() (int, error)
	}{
		{"GET method", func() (int, error) {
			resp, err := ts.Client().Get(ts.URL + "/v1/infer")
			if err != nil {
				return 0, err
			}
			defer resp.Body.Close()
			return resp.StatusCode, nil
		}},
		{"bad JSON", func() (int, error) {
			resp, err := ts.Client().Post(ts.URL+"/v1/infer", "application/json", strings.NewReader("{"))
			if err != nil {
				return 0, err
			}
			defer resp.Body.Close()
			return resp.StatusCode, nil
		}},
		{"empty text", func() (int, error) {
			resp, err := ts.Client().Post(ts.URL+"/v1/infer", "application/json", strings.NewReader(`{"text":""}`))
			if err != nil {
				return 0, err
			}
			defer resp.Body.Close()
			return resp.StatusCode, nil
		}},
	} {
		code, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if code < 400 || code >= 500 {
			t.Errorf("%s: status = %d, want 4xx", tc.name, code)
		}
	}
}

func TestStatsCountServed(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	const n = 5
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Infer("hello world this is a test"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Served != n {
		t.Errorf("served = %d, want %d", stats.Served, n)
	}
	if stats.Instances != 8 {
		t.Errorf("instances = %d, want 8", stats.Instances)
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
}

func TestClientErrorPaths(t *testing.T) {
	c := &Client{BaseURL: "http://127.0.0.1:1"} // nothing listening
	if _, err := c.Infer("x"); err == nil {
		t.Error("unreachable server should error")
	}
	if _, err := c.Stats(); err == nil {
		t.Error("unreachable server should error for stats")
	}
}

func TestClassifyDeterministic(t *testing.T) {
	a := classify([]int{1, 2, 3})
	b := classify([]int{1, 2, 3})
	if a != b {
		t.Error("classify must be deterministic")
	}
	if classify([]int{1, 2, 3}) == classify([]int{3, 2, 1}) &&
		classify([]int{5}) == classify([]int{6}) &&
		classify([]int{7}) == classify([]int{8}) {
		t.Error("classify looks constant across distinct inputs")
	}
}

func TestStatsIncludePercentiles(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	for i := 0; i < 10; i++ {
		if _, err := c.Infer("some words to classify now"); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.P50MS <= 0 || stats.P98MS < stats.P50MS {
		t.Errorf("percentiles look wrong: p50=%v p98=%v", stats.P50MS, stats.P98MS)
	}
}
