package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"arlo/internal/cluster"
	"arlo/internal/dispatch"
	"arlo/internal/obs"
	"arlo/internal/tokenizer"
)

func TestNewOptionDefaults(t *testing.T) {
	_, cl := testServer(t)
	srv, err := New(tokenizer.New(), cl)
	if err != nil {
		t.Fatal(err)
	}
	if srv.maxLen != cl.MaxLength() {
		t.Errorf("default max length = %d, want cluster max %d", srv.maxLen, cl.MaxLength())
	}
	if srv.Recorder() == nil {
		t.Error("recorder not auto-wired")
	}
	if cl.Observer() != srv.Recorder() {
		t.Error("auto-wired recorder not installed on the cluster")
	}
	// A second server over the same cluster reuses the recorder instead
	// of silently replacing it.
	srv2, err := New(tokenizer.New(), cl)
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Recorder() != srv.Recorder() {
		t.Error("second server should reuse the cluster's recorder")
	}
}

func TestNewOptionValidation(t *testing.T) {
	_, cl := testServer(t)
	if _, err := New(tokenizer.New(), cl, WithMaxLength(1)); err == nil {
		t.Error("tiny max length should fail")
	}
	if _, err := New(tokenizer.New(), cl, WithRecorder(nil)); err == nil {
		t.Error("nil recorder should fail")
	}
	if _, err := New(tokenizer.New(), cl, WithRequestTimeout(0)); err == nil {
		t.Error("zero request timeout should fail")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, cl := testServer(t)
	rec := obs.NewRecorder(cl.NumLevels())
	srv, err := New(tokenizer.New(), cl, WithRecorder(rec), WithMaxLength(512))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	if _, err := c.Infer("scrape me after serving this"); err != nil {
		t.Fatal(err)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != obs.ContentType {
		t.Errorf("content type = %q, want %q", got, obs.ContentType)
	}
	body, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"arlo_requests_submitted_total 1",
		"arlo_requests_completed_total 1",
		"# TYPE arlo_demotions_total counter",
		`arlo_queue_depth{level="0",max_length="64"} 0`,
		`arlo_level_instances{level="0",max_length="64"} 1`,
		"# TYPE arlo_request_latency_seconds histogram",
		"arlo_request_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestInferResponseCarriesSpan(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	resp, err := c.Infer("span fields should be populated here")
	if err != nil {
		t.Fatal(err)
	}
	if resp.ExecMS <= 0 {
		t.Errorf("exec_ms = %v, want > 0", resp.ExecMS)
	}
	if resp.QueueMS < 0 {
		t.Errorf("queue_ms = %v, want >= 0", resp.QueueMS)
	}
	if resp.LatencyMS < resp.ExecMS {
		t.Errorf("latency_ms %v < exec_ms %v", resp.LatencyMS, resp.ExecMS)
	}
	if resp.DemotionHops != 0 {
		t.Errorf("demotion_hops = %d on an idle cluster, want 0", resp.DemotionHops)
	}
}

func TestErrorEnvelopeShape(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/infer", "application/json", strings.NewReader(`{"text":""}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("reply is not an error envelope: %v", err)
	}
	if env.Error.Code != CodeInvalidRequest {
		t.Errorf("code = %q, want %q", env.Error.Code, CodeInvalidRequest)
	}
	if env.Error.Message == "" {
		t.Error("envelope message is empty")
	}
}

func TestAPIErrorMatchesSentinels(t *testing.T) {
	for _, tc := range []struct {
		code   string
		target error
	}{
		{CodeCongested, cluster.ErrCongested},
		{CodeDeadlineExceeded, cluster.ErrDeadlineExceeded},
		{CodeUnavailable, cluster.ErrClusterClosed},
		{CodeTooLong, dispatch.ErrTooLong},
		{CodeNoInstances, dispatch.ErrNoInstances},
	} {
		apiErr := &APIError{Status: 503, Code: tc.code, Message: "x"}
		if !errors.Is(apiErr, tc.target) {
			t.Errorf("APIError{%s} should match %v", tc.code, tc.target)
		}
	}
	apiErr := &APIError{Status: 503, Code: CodeCongested}
	if errors.Is(apiErr, cluster.ErrDeadlineExceeded) {
		t.Error("congested must not match ErrDeadlineExceeded")
	}
}

func TestInferAfterCloseMapsToUnavailable(t *testing.T) {
	srv, cl := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl.Close()
	c := &Client{BaseURL: ts.URL}
	_, err := c.Infer("cluster is gone")
	if err == nil {
		t.Fatal("infer against a closed cluster should fail")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %T, want *APIError", err)
	}
	if apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != CodeUnavailable {
		t.Errorf("got (%d, %s), want (503, %s)", apiErr.Status, apiErr.Code, CodeUnavailable)
	}
	if !errors.Is(err, cluster.ErrClusterClosed) {
		t.Error("should match cluster.ErrClusterClosed through the envelope")
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeError(w, http.StatusServiceUnavailable, CodeCongested, "try later")
			return
		}
		writeJSON(w, InferResponse{Label: "neutral", SequenceLength: 3, LatencyMS: 1})
	}))
	defer backend.Close()

	c := &Client{BaseURL: backend.URL, MaxRetries: 3, Backoff: time.Millisecond}
	resp, err := c.Infer("retry until it lands")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Label != "neutral" {
		t.Errorf("label = %q", resp.Label)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("backend saw %d calls, want 3", got)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge, CodeTooLong, "too long")
	}))
	defer backend.Close()

	c := &Client{BaseURL: backend.URL, MaxRetries: 5, Backoff: time.Millisecond}
	_, err := c.Infer("should fail once")
	if !errors.Is(err, dispatch.ErrTooLong) {
		t.Fatalf("err = %v, want ErrTooLong match", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("backend saw %d calls, want 1 (no retries on 4xx)", got)
	}
}

func TestClientDoesNotRetryDeadlineExceeded(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded, "spent")
	}))
	defer backend.Close()

	c := &Client{BaseURL: backend.URL, MaxRetries: 5, Backoff: time.Millisecond}
	_, err := c.Infer("budget already spent")
	if !errors.Is(err, cluster.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded match", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("backend saw %d calls, want 1 (no retries on 504)", got)
	}
}

func TestClientRetriesAreBounded(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusServiceUnavailable, CodeCongested, "always busy")
	}))
	defer backend.Close()

	c := &Client{BaseURL: backend.URL, MaxRetries: 2, Backoff: time.Millisecond}
	_, err := c.Infer("never succeeds")
	if !errors.Is(err, cluster.ErrCongested) {
		t.Fatalf("err = %v, want ErrCongested match", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("backend saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

func TestServerRequestTimeout(t *testing.T) {
	// A request timeout far below any feasible execution forces the
	// server to cancel the dispatch while queued and answer 504.
	_, cl := testServer(t)
	srv, err := New(tokenizer.New(), cl, WithRequestTimeout(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	_, err = c.Infer("this cannot possibly finish in a nanosecond")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Status != http.StatusGatewayTimeout || apiErr.Code != CodeDeadlineExceeded {
		t.Errorf("got (%d, %s), want (504, %s)", apiErr.Status, apiErr.Code, CodeDeadlineExceeded)
	}
}

func TestPprofBehindOption(t *testing.T) {
	_, cl := testServer(t)
	plain, err := New(tokenizer.New(), cl)
	if err != nil {
		t.Fatal(err)
	}
	withPprof, err := New(tokenizer.New(), cl, WithPprof())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		srv  *Server
		want int
	}{
		{plain, http.StatusNotFound},
		{withPprof, http.StatusOK},
	} {
		ts := httptest.NewServer(tc.srv)
		resp, err := ts.Client().Get(ts.URL + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("pprof status = %d, want %d", resp.StatusCode, tc.want)
		}
		ts.Close()
	}
}
