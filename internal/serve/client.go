package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"time"

	"arlo/internal/cluster"
	"arlo/internal/dispatch"
)

// defaultHTTPClient replaces http.DefaultClient as the zero-config
// transport: the default caps idle connections per host at 2, so a
// closed-loop caller fleet churns through TCP handshakes and TIME_WAIT
// sockets. Keep-alives stay on and the idle pool is sized for benchmark
// fan-in.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   30 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:     true,
		MaxIdleConns:          256,
		MaxIdleConnsPerHost:   128,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: time.Second,
	},
}

// Client is a typed client for the server's API with per-request
// timeouts and bounded retry-with-backoff for transient failures.
type Client struct {
	// BaseURL like "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Timeout bounds each individual attempt (not the whole retry
	// sequence). Zero means no per-attempt timeout beyond the caller's
	// context.
	Timeout time.Duration
	// MaxRetries is how many times a failed attempt is retried. Only
	// transport errors and retryable statuses (503, 502, 500) are
	// retried; 4xx and 504 are not. Zero means a single attempt.
	MaxRetries int
	// Backoff is the delay before the first retry, doubling each retry.
	// Defaults to 50ms when MaxRetries > 0.
	Backoff time.Duration
	// Tenant, when non-empty, is sent as the X-Arlo-Tenant header on every
	// request — the client-side half of tenant identity.
	Tenant string
}

// APIError is a non-2xx reply decoded from the server's error envelope.
// It matches the dispatch-path sentinels through errors.Is, so callers
// can handle HTTP and in-process submissions identically:
//
//	_, err := client.Infer(text)
//	if errors.Is(err, cluster.ErrCongested) { backoff() }
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable envelope code (see CodeInvalidRequest etc.).
	Code string
	// Message is the server's human-readable detail.
	Message string
	// RetryAfter is the server's backoff hint (429 replies); zero when the
	// server sent none.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: %s (%d): %s", e.Code, e.Status, e.Message)
}

// Is maps envelope codes back onto the sentinels the server mapped them
// from.
func (e *APIError) Is(target error) bool {
	switch target {
	case cluster.ErrCongested:
		return e.Code == CodeCongested
	case cluster.ErrDeadlineExceeded:
		return e.Code == CodeDeadlineExceeded
	case cluster.ErrClusterClosed:
		return e.Code == CodeUnavailable
	case cluster.ErrUnserviceable:
		return e.Code == CodeUnserviceable
	case dispatch.ErrTooLong:
		return e.Code == CodeTooLong
	case dispatch.ErrNoInstances:
		return e.Code == CodeNoInstances
	case ErrRateLimited:
		return e.Code == CodeRateLimited
	}
	return false
}

// retryable reports whether a reply status is worth another attempt: the
// transient 5xx family plus 429 (the budget refills), but not 504 (the
// request's time budget is spent, a retry would just spend it again).
func retryable(status int) bool {
	switch status {
	case http.StatusInternalServerError, http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusTooManyRequests:
		return true
	}
	return false
}

// Infer posts one inference request with background context.
func (c *Client) Infer(text string) (*InferResponse, error) {
	return c.InferCtx(context.Background(), text)
}

// InferCtx posts one inference request, honoring ctx across all attempts
// and applying the client's per-attempt Timeout and retry policy.
func (c *Client) InferCtx(ctx context.Context, text string) (*InferResponse, error) {
	body, err := json.Marshal(InferRequest{Text: text})
	if err != nil {
		return nil, err
	}
	var out InferResponse
	if err := c.postJSON(ctx, "/v1/infer", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// postJSON posts body to path and decodes a 200 reply into out, retrying
// transient failures under the client's policy.
func (c *Client) postJSON(ctx context.Context, path string, body []byte, out any) error {
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.postOnce(ctx, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		// The caller's context ending is never retryable; neither are
		// non-retryable API statuses.
		if ctx.Err() != nil {
			return lastErr
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && !retryable(apiErr.Status) {
			return lastErr
		}
		if attempt >= c.MaxRetries {
			return lastErr
		}
		// Full jitter on the exponential schedule: a uniformly random wait
		// in (0, backoff] decorrelates retry herds after a shared transient
		// (congestion, instance failure) instead of synchronizing them.
		wait := time.Duration(rand.Int63n(int64(backoff))) + 1
		if apiErr != nil && apiErr.RetryAfter > wait {
			// A rate-limited reply's Retry-After floors the wait: retrying
			// before the bucket refills is a guaranteed second rejection.
			wait = apiErr.RetryAfter
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return lastErr
		}
		backoff *= 2
	}
}

func (c *Client) postOnce(ctx context.Context, path string, body []byte, out any) error {
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns a non-2xx reply into an *APIError, tolerating
// non-envelope bodies (proxies, panics) by falling back to the raw text.
func decodeError(resp *http.Response) error {
	retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var env ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Code != "" {
		return &APIError{Status: resp.StatusCode, Code: env.Error.Code,
			Message: env.Error.Message, RetryAfter: retryAfter}
	}
	return &APIError{
		Status:     resp.StatusCode,
		Code:       CodeInternal,
		Message:    string(bytes.TrimSpace(raw)),
		RetryAfter: retryAfter,
	}
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the only
// form this server emits); 0 on absent or unparseable values.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseInt(v, 10, 64)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Stats fetches the server counters.
func (c *Client) Stats() (*Stats, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out Stats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the raw Prometheus text exposition from /metrics.
func (c *Client) Metrics() (string, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	raw, err := io.ReadAll(resp.Body)
	return string(raw), err
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}
