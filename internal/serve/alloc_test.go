package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"arlo/internal/cluster"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/tokenizer"
)

// allocServer is a cluster with compute collapsed to ~0 so handler-level
// allocation measurements aren't dominated by scheduling waits.
func allocServer(tb testing.TB) *Server {
	tb.Helper()
	p, err := profiler.StaticProfile(model.BertBase(), []int{128, 512}, 150*time.Millisecond)
	if err != nil {
		tb.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		Profile:           p,
		InitialAllocation: []int{2, 2},
		Dispatcher: func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewRequestScheduler(ml)
		},
		TimeScale: 1e-9,
		Overhead:  -1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(cl.Close)
	srv, err := New(tokenizer.New(), cl, WithMaxLength(512))
	if err != nil {
		tb.Fatal(err)
	}
	return srv
}

// nopResponseWriter swallows the response so AllocsPerRun sees only the
// handler's own allocations, not a fresh httptest recorder per call.
type nopResponseWriter struct{ h http.Header }

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nopResponseWriter) WriteHeader(int)             {}

// TestInferAllocGuard is the bench-serve regression guard: the JSON hot
// path (read + decode + tokenize + submit + encode) must stay on its
// pooled-buffer diet. The bound has headroom over the measured steady
// state (~10 allocs/op) but catches a return to ReadAll +
// reflection-based encoding (~2-3x that).
func TestInferAllocGuard(t *testing.T) {
	srv := allocServer(t)
	body, _ := json.Marshal(InferRequest{Text: "a mid sized request body for the allocation guard"})
	w := &nopResponseWriter{h: make(http.Header)}
	rd := bytes.NewReader(body)
	req, err := http.NewRequest(http.MethodPost, "/v1/infer", io.NopCloser(rd))
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		rd.Reset(body)
		srv.handleInfer(w, req)
	}
	run() // warm pools and the cluster's job pool
	allocs := testing.AllocsPerRun(300, run)
	const maxAllocs = 24
	if allocs > maxAllocs {
		t.Errorf("handleInfer allocs/op = %.1f, want <= %d (JSON hot-path diet regressed)", allocs, maxAllocs)
	}
}

// BenchmarkInferJSONHandler is the handler-level half of make bench-serve.
func BenchmarkInferJSONHandler(b *testing.B) {
	srv := allocServer(b)
	body, _ := json.Marshal(InferRequest{Text: "a mid sized request body for the allocation guard"})
	w := &nopResponseWriter{h: make(http.Header)}
	rd := bytes.NewReader(body)
	req, err := http.NewRequest(http.MethodPost, "/v1/infer", io.NopCloser(rd))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		srv.handleInfer(w, req)
	}
}

// BenchmarkInferJSONSocket measures the same request through a real HTTP
// server and the tuned client transport — the socket-level JSON number
// bench-ingress compares against the wire protocol.
func BenchmarkInferJSONSocket(b *testing.B) {
	srv := allocServer(b)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Infer("a mid sized request body for the allocation guard"); err != nil {
			b.Fatal(err)
		}
	}
}
