// Package serve provides the HTTP serving front end standing in for the
// paper's Triton integration: a JSON inference endpoint that tokenizes the
// request text, dispatches it by sequence length through an Arlo-scheduled
// emulated cluster, and reports the measured latency decomposed the way
// the paper's evaluation does (queueing vs. execution, demotion hops).
// The classifier output itself is emulated (deterministic over the token
// ids) — the system under study is the scheduler, not the model.
//
// Endpoints:
//
//	POST /v1/infer   — classify text; errors use the versioned envelope
//	                   {"error":{"code":..., "message":...}}
//	POST /v1/generate — generate max_new_tokens tokens from a prompt;
//	                   reports TTFT/TPOT alongside the lifecycle span and
//	                   rejects unknown fields with unsupported_field
//	GET  /v1/tenants — list tenant configs; GET/PUT /v1/tenants/{id}
//	                   reads or live-updates one record (404 not_found on
//	                   clusters without a tenant registry)
//	GET  /v1/stats   — JSON serving counters and window percentiles
//	GET  /v1/controller — live control-loop status (allocation, target,
//	                   demand, replans, replacements), only with
//	                   WithController; 404 not_found otherwise
//	GET  /metrics    — Prometheus text exposition of the cluster's
//	                   observability plane (counters, demotion matrix,
//	                   queue-depth gauges, instance health, latency
//	                   histograms)
//	GET  /healthz    — liveness + per-state instance counts; 503 once no
//	                   instance is serving
//	POST /v1/chaos/fail    — crash an instance, only with WithChaos()
//	POST /v1/chaos/slow    — degrade an instance, only with WithChaos()
//	POST /v1/chaos/restore — restore a degraded instance, only with WithChaos()
//	GET  /debug/pprof/* — runtime profiles, only with WithPprof()
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"arlo/internal/cluster"
	"arlo/internal/controller"
	"arlo/internal/dispatch"
	"arlo/internal/metrics"
	"arlo/internal/obs"
	"arlo/internal/tokenizer"
)

// InferRequest is the body of POST /v1/infer.
type InferRequest struct {
	// Text is the input to classify.
	Text string `json:"text"`
	// Tenant is the submitting tenant id. The X-Arlo-Tenant header takes
	// precedence; absent both, the request is accounted to the default
	// tenant. Ignored on clusters without a tenant registry.
	Tenant string `json:"tenant,omitempty"`
}

// InferResponse is the reply of POST /v1/infer. Beyond the label and
// end-to-end latency it carries the request's lifecycle span — the same
// per-request decomposition the paper's Figs. 8-10 are built from.
type InferResponse struct {
	// Label is the (emulated) classification.
	Label string `json:"label"`
	// SequenceLength is the tokenized input length Arlo dispatched on.
	SequenceLength int `json:"sequence_length"`
	// LatencyMS is the measured end-to-end serving latency in
	// milliseconds.
	LatencyMS float64 `json:"latency_ms"`
	// QueueMS is the time spent queued before execution started.
	QueueMS float64 `json:"queue_ms"`
	// ExecMS is the emulated kernel execution time.
	ExecMS float64 `json:"exec_ms"`
	// DemotionHops is how many runtime levels past its ideal (least
	// padding) level the request was pushed by congestion; 0 when served
	// at the ideal level.
	DemotionHops int `json:"demotion_hops"`
	// Instance is the ID of the instance that executed the request.
	Instance int `json:"instance"`
	// Runtime is the runtime level the request executed on.
	Runtime int `json:"runtime"`
	// Batch is the dynamic batch the request executed in (omitted when the
	// request ran sequentially); requests sharing a batch id rode the same
	// emulated kernel.
	Batch int64 `json:"batch,omitempty"`
	// BatchSize is how many requests shared that kernel (omitted when
	// unbatched).
	BatchSize int `json:"batch_size,omitempty"`
}

// ErrorBody is the inner object of the versioned error envelope.
type ErrorBody struct {
	// Code is a stable machine-readable error class: invalid_request,
	// unsupported_field, too_long, congested, no_instances, unavailable,
	// deadline_exceeded, method_not_allowed or internal.
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
}

// ErrorEnvelope is the body of every non-2xx /v1/infer reply:
// {"error":{"code":"...","message":"..."}}.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// Stable error codes of the envelope.
const (
	CodeInvalidRequest   = "invalid_request"
	CodeTooLong          = "too_long"
	CodeCongested        = "congested"
	CodeNoInstances      = "no_instances"
	CodeUnavailable      = "unavailable"
	CodeUnserviceable    = "unserviceable"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeInternal         = "internal"
	CodeRateLimited      = "rate_limited"
	CodeNotFound         = "not_found"
)

// Stats is the reply of GET /v1/stats. Latency percentiles cover the
// trailing 60 seconds.
type Stats struct {
	Served    int64   `json:"served"`
	Rejected  int64   `json:"rejected"`
	Instances int     `json:"instances"`
	P50MS     float64 `json:"p50_ms"`
	P98MS     float64 `json:"p98_ms"`
}

// Observer receives every served request's tokenized length and measured
// latency — the hook Arlo's online control plane (core.Controller) feeds
// its demand and latency estimates from.
type Observer interface {
	Observe(length int, lat time.Duration)
}

// Server routes inference requests into a cluster.
type Server struct {
	tok        *tokenizer.Tokenizer
	cluster    *cluster.Cluster
	maxLen     int
	reqTimeout time.Duration
	pprof      bool
	chaos      bool
	rec        *obs.Recorder
	mux        *http.ServeMux
	served     atomic.Int64
	rejected   atomic.Int64

	// shard is the operator-assigned shard name (WithShardName); loadSeq
	// orders the load snapshots this server hands out.
	shard   string
	loadSeq atomic.Uint64

	// ingress, when configured with WithIngress, is the ring-fed submit
	// path both protocols dispatch through instead of per-request
	// Cluster.SubmitCtx.
	ingress    *cluster.Ingress
	ingressCfg *cluster.IngressConfig

	// closing gates the wire accept loops; listeners holds every listener
	// handed to ServeWire so Close can unblock them, and conns every
	// accepted wire connection so Close drops in-flight peers too (a
	// killed shard must look dead to its routers, not merely stop
	// accepting new dials).
	closing   atomic.Bool
	listMu    sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}

	window *metrics.Window

	// ctrl, when attached with WithController, backs GET /v1/controller.
	// The server only reads status; the caller owns the loop's lifecycle.
	ctrl *controller.Controller

	obsMu    sync.RWMutex
	observer Observer
}

// Option configures a Server at construction.
type Option func(*Server) error

// WithMaxLength caps the encoded sequence length (the model's maximum
// input). Defaults to the cluster's largest deployed runtime length.
func WithMaxLength(n int) Option {
	return func(s *Server) error {
		if n < 2 {
			return fmt.Errorf("serve: max length must be >= 2, got %d", n)
		}
		s.maxLen = n
		return nil
	}
}

// WithObserver installs the served-request observer (see Observer) at
// construction; SetObserver can still replace it while serving.
func WithObserver(o Observer) Option {
	return func(s *Server) error {
		s.observer = o
		return nil
	}
}

// WithRecorder uses the given observability recorder for /metrics and
// installs it on the cluster so spans flow into it. By default the server
// reuses the cluster's recorder, creating one when the cluster has none.
func WithRecorder(rec *obs.Recorder) Option {
	return func(s *Server) error {
		if rec == nil {
			return fmt.Errorf("serve: nil recorder")
		}
		s.rec = rec
		return nil
	}
}

// WithPprof mounts net/http/pprof under /debug/pprof/. Off by default:
// profiles expose internals and cost CPU when scraped.
func WithPprof() Option {
	return func(s *Server) error {
		s.pprof = true
		return nil
	}
}

// WithChaos mounts the fault-injection endpoints (POST /v1/chaos/fail,
// /v1/chaos/slow, /v1/chaos/restore). Off by default: they crash real
// instances and belong only in test and demo deployments.
func WithChaos() Option {
	return func(s *Server) error {
		s.chaos = true
		return nil
	}
}

// WithIngress routes submissions through a cluster.Ingress (sharded
// submit rings drained in groups) instead of per-request SubmitCtx — the
// amortized hot path. The server owns the ingress; Close shuts it down.
func WithIngress(cfg cluster.IngressConfig) Option {
	return func(s *Server) error {
		s.ingressCfg = &cfg
		return nil
	}
}

// WithController attaches a control loop for GET /v1/controller, which
// reports the loop's live status (allocation, replan/replacement
// counters, autoscaler state). The server never starts or stops the
// loop — the caller owns its lifecycle. Without this option the endpoint
// answers 404 not_found.
func WithController(ctrl *controller.Controller) Option {
	return func(s *Server) error {
		if ctrl == nil {
			return fmt.Errorf("serve: nil controller")
		}
		s.ctrl = ctrl
		return nil
	}
}

// WithRequestTimeout bounds every inference request server-side: requests
// still queued when the timeout fires are dequeued and answered 504. The
// client's own context (disconnect, client-side deadline) is always
// honored regardless.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) error {
		if d <= 0 {
			return fmt.Errorf("serve: request timeout must be positive, got %v", d)
		}
		s.reqTimeout = d
		return nil
	}
}

// New wires a tokenizer and a running cluster into an HTTP handler.
func New(tok *tokenizer.Tokenizer, cl *cluster.Cluster, opts ...Option) (*Server, error) {
	if tok == nil {
		return nil, fmt.Errorf("serve: nil tokenizer")
	}
	if cl == nil {
		return nil, fmt.Errorf("serve: nil cluster")
	}
	s := &Server{
		tok:     tok,
		cluster: cl,
		maxLen:  cl.MaxLength(),
		mux:     http.NewServeMux(),
		window:  metrics.NewWindow(60 * time.Second),
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	// Wire the observability recorder: an explicit one is installed on
	// the cluster, otherwise reuse the cluster's, otherwise create one so
	// /metrics works out of the box.
	switch {
	case s.rec != nil:
		cl.SetObserver(s.rec)
	case cl.Observer() != nil:
		s.rec = cl.Observer()
	default:
		s.rec = obs.NewRecorder(cl.NumLevels())
		cl.SetObserver(s.rec)
	}
	if s.ingressCfg != nil {
		s.ingress = cluster.NewIngress(cl, *s.ingressCfg)
	}
	s.mux.HandleFunc("/v1/infer", s.handleInfer)
	s.mux.HandleFunc("/v1/generate", s.handleGenerate)
	s.mux.HandleFunc("/v1/tenants", s.handleTenants)
	s.mux.HandleFunc("/v1/tenants/", s.handleTenant)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/load", s.handleLoad)
	s.mux.HandleFunc("/v1/controller", s.handleController)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.Handle("/metrics", s.rec.Handler())
	if s.chaos {
		s.mux.HandleFunc("/v1/chaos/fail", s.handleChaosFail)
		s.mux.HandleFunc("/v1/chaos/slow", s.handleChaosSlow)
		s.mux.HandleFunc("/v1/chaos/restore", s.handleChaosRestore)
	}
	if s.pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// SetObserver installs (or clears, with nil) the served-request observer.
// Safe to call while serving.
func (s *Server) SetObserver(o Observer) {
	s.obsMu.Lock()
	s.observer = o
	s.obsMu.Unlock()
}

// Recorder returns the observability recorder backing /metrics.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// submit dispatches one request through the configured path: the ring
// ingress when WithIngress was given, per-request SubmitCtx otherwise.
func (s *Server) submit(ctx context.Context, req cluster.Request) (cluster.Result, error) {
	if s.ingress != nil {
		return s.ingress.SubmitCtx(ctx, req)
	}
	return s.cluster.SubmitCtx(ctx, req)
}

// Close stops the wire listeners, drops accepted wire connections, and
// stops the ingress (when configured). The cluster itself stays up — the
// caller owns it. Idempotent.
func (s *Server) Close() error {
	s.closing.Store(true)
	s.listMu.Lock()
	ls := s.listeners
	s.listeners = nil
	cs := s.conns
	s.conns = nil
	s.listMu.Unlock()
	for _, l := range ls {
		_ = l.Close()
	}
	for c := range cs {
		_ = c.Close()
	}
	if s.ingress != nil {
		s.ingress.Close()
	}
	return nil
}

// trackConn registers an accepted wire connection for Close; it reports
// false (and closes the connection) when the server is already closing.
func (s *Server) trackConn(c net.Conn) bool {
	s.listMu.Lock()
	if s.closing.Load() {
		s.listMu.Unlock()
		_ = c.Close()
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[c] = struct{}{}
	s.listMu.Unlock()
	return true
}

func (s *Server) untrackConn(c net.Conn) {
	s.listMu.Lock()
	delete(s.conns, c)
	s.listMu.Unlock()
}

func (s *Server) notify(length int, lat time.Duration) {
	s.obsMu.RLock()
	o := s.observer
	s.obsMu.RUnlock()
	if o != nil {
		o.Observe(length, lat)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// bufPool recycles the request-read and response-encode buffers of the
// JSON hot path, so steady-state serving does not grow one garbage buffer
// pair per request.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required")
		return
	}
	rb := bufPool.Get().(*bytes.Buffer)
	rb.Reset()
	defer bufPool.Put(rb)
	if _, err := rb.ReadFrom(io.LimitReader(r.Body, 1<<20)); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "read error")
		return
	}
	var req InferRequest
	if err := json.Unmarshal(rb.Bytes(), &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "invalid JSON")
		return
	}
	if req.Text == "" {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "empty text")
		return
	}
	ctx := r.Context()
	if s.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.reqTimeout)
		defer cancel()
	}
	tokStart := time.Now()
	ids := s.tok.Encode(req.Text, s.maxLen)
	res, err := s.submit(ctx, cluster.Request{
		Length:   len(ids),
		Tokenize: time.Since(tokStart),
		Tenant:   tenantOf(r, req.Tenant),
	})
	if err != nil {
		s.rejected.Add(1)
		writeMappedError(w, err)
		return
	}
	s.served.Add(1)
	s.window.Record(res.Latency)
	s.notify(len(ids), res.Latency)
	resp := InferResponse{
		Label:          classify(ids),
		SequenceLength: len(ids),
		LatencyMS:      float64(res.Latency) / float64(time.Millisecond),
		QueueMS:        float64(res.Span.Queue) / float64(time.Millisecond),
		ExecMS:         float64(res.Span.Exec) / float64(time.Millisecond),
		DemotionHops:   res.Span.DemotionHops(),
		Instance:       res.Span.Instance,
		Runtime:        res.Span.Level,
		Batch:          res.Span.Batch,
		BatchSize:      res.Span.BatchSize,
	}
	// Hand-rolled encode on a pooled buffer: every field is a number or
	// one of three fixed labels, so reflection-based marshalling buys
	// nothing but allocations here.
	bp := encPool.Get().(*[]byte)
	b := appendInferResponse((*bp)[:0], &resp)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
	*bp = b[:0] // keep any grown capacity with the pool
	encPool.Put(bp)
}

// encPool recycles response-encode buffers across requests.
var encPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// appendInferResponse encodes an InferResponse as the exact JSON
// encoding/json would produce for it (field order, omitempty pair).
func appendInferResponse(dst []byte, r *InferResponse) []byte {
	dst = append(dst, `{"label":"`...)
	dst = append(dst, r.Label...)
	dst = append(dst, `","sequence_length":`...)
	dst = strconv.AppendInt(dst, int64(r.SequenceLength), 10)
	dst = append(dst, `,"latency_ms":`...)
	dst = appendJSONFloat(dst, r.LatencyMS)
	dst = append(dst, `,"queue_ms":`...)
	dst = appendJSONFloat(dst, r.QueueMS)
	dst = append(dst, `,"exec_ms":`...)
	dst = appendJSONFloat(dst, r.ExecMS)
	dst = append(dst, `,"demotion_hops":`...)
	dst = strconv.AppendInt(dst, int64(r.DemotionHops), 10)
	dst = append(dst, `,"instance":`...)
	dst = strconv.AppendInt(dst, int64(r.Instance), 10)
	dst = append(dst, `,"runtime":`...)
	dst = strconv.AppendInt(dst, int64(r.Runtime), 10)
	if r.Batch != 0 {
		dst = append(dst, `,"batch":`...)
		dst = strconv.AppendInt(dst, r.Batch, 10)
	}
	if r.BatchSize != 0 {
		dst = append(dst, `,"batch_size":`...)
		dst = strconv.AppendInt(dst, int64(r.BatchSize), 10)
	}
	dst = append(dst, '}', '\n')
	return dst
}

// appendJSONFloat matches encoding/json's float formatting (shortest
// round-trip form, 'e' only for extreme exponents).
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := f
	if abs < 0 {
		abs = -abs
	}
	fmtByte := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		fmtByte = 'e'
	}
	dst = strconv.AppendFloat(dst, f, fmtByte, -1, 64)
	if fmtByte == 'e' {
		// encoding/json cleans e-09 up to e-9; match it byte for byte.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// mapError translates dispatch-path errors into the envelope's stable
// code and HTTP status. Transient conditions map to 503 so clients retry;
// a spent deadline maps to 504 so they do not.
func mapError(err error) (status int, code string) {
	switch {
	case errors.Is(err, ErrUnsupportedField):
		return http.StatusBadRequest, CodeUnsupportedField
	case errors.Is(err, dispatch.ErrTooLong):
		return http.StatusRequestEntityTooLarge, CodeTooLong
	case errors.Is(err, cluster.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout, CodeDeadlineExceeded
	case errors.Is(err, cluster.ErrUnserviceable):
		// The requeue budget is bounded, not the outage: once instances
		// rejoin a retry can succeed, so keep it in the retryable family.
		return http.StatusServiceUnavailable, CodeUnserviceable
	case errors.Is(err, cluster.ErrCongested):
		return http.StatusServiceUnavailable, CodeCongested
	case errors.Is(err, dispatch.ErrNoInstances):
		return http.StatusServiceUnavailable, CodeNoInstances
	case errors.Is(err, cluster.ErrClusterClosed):
		return http.StatusServiceUnavailable, CodeUnavailable
	case errors.Is(err, ErrRateLimited):
		return http.StatusTooManyRequests, CodeRateLimited
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, Stats{
		Served:    s.served.Load(),
		Rejected:  s.rejected.Load(),
		Instances: s.cluster.Instances(),
		P50MS:     float64(s.window.Percentile(0.50)) / float64(time.Millisecond),
		P98MS:     float64(s.window.P98()) / float64(time.Millisecond),
	})
}

// handleController reports the attached control loop's status
// (controller.Status) — the live view of the closed loop: current vs.
// target allocation, observed demand and p98, replan/replacement
// counters and autoscaler activity.
func (s *Server) handleController(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	if s.ctrl == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "no controller attached")
		return
	}
	writeJSON(w, s.ctrl.Status())
}

// HealthResponse is the body of GET /healthz: overall status, per-state
// instance counts, and each instance's serving state — the same split
// the arlo_instance_health gauge exports, so routers and operators read
// one source of truth.
type HealthResponse struct {
	// Status is "ok" while at least one instance is serving (healthy or
	// degraded), "unavailable" otherwise.
	Status string `json:"status"`
	cluster.HealthSummary
	// Shard is the operator-assigned shard name (omitted when unnamed).
	Shard string `json:"shard,omitempty"`
	// Instances is each instance's serving state, sorted by ID.
	Instances []InstanceHealthInfo `json:"instances"`
}

// InstanceHealthInfo is one instance's serving state in HealthResponse.
type InstanceHealthInfo struct {
	ID      int    `json:"id"`
	Runtime int    `json:"runtime"`
	State   string `json:"state"`
	// SlowFactor is the degraded-mode execution multiplier (omitted when
	// 1, i.e. healthy; 0 means dead).
	SlowFactor float64 `json:"slow_factor,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	hs := s.cluster.Health()
	sum := cluster.Summarize(hs)
	resp := HealthResponse{
		Status:        "ok",
		HealthSummary: sum,
		Shard:         s.shard,
		Instances:     make([]InstanceHealthInfo, 0, len(hs)),
	}
	for _, h := range hs {
		info := InstanceHealthInfo{ID: h.ID, Runtime: h.Runtime, State: h.State.String()}
		if h.SlowFactor != 1 {
			info.SlowFactor = h.SlowFactor
		}
		resp.Instances = append(resp.Instances, info)
	}
	status := http.StatusOK
	if sum.Healthy+sum.Degraded == 0 {
		// Every instance is down: the server cannot serve a single
		// request, which load balancers should see as not-ready.
		resp.Status = "unavailable"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

// ChaosFailRequest is the body of POST /v1/chaos/fail.
type ChaosFailRequest struct {
	// Runtime selects which runtime loses its most loaded instance; -1
	// picks the most loaded instance cluster-wide.
	Runtime int `json:"runtime"`
	// DowntimeMS is how long the instance stays down before rejoining;
	// 0 or negative keeps it down for the rest of the run.
	DowntimeMS float64 `json:"downtime_ms"`
}

// ChaosSlowRequest is the body of POST /v1/chaos/slow.
type ChaosSlowRequest struct {
	Runtime int `json:"runtime"`
	// Factor multiplies the instance's emulated execution latency.
	Factor float64 `json:"factor"`
}

// ChaosRestoreRequest is the body of POST /v1/chaos/restore.
type ChaosRestoreRequest struct {
	Instance int `json:"instance"`
}

// ChaosResponse acknowledges a chaos action with the affected instance.
type ChaosResponse struct {
	Instance int `json:"instance"`
}

// decodeChaos reads a chaos endpoint's POST body into v, writing the
// envelope error itself on failure.
func decodeChaos(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST required")
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "read error")
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "invalid JSON")
		return false
	}
	return true
}

func (s *Server) handleChaosFail(w http.ResponseWriter, r *http.Request) {
	var req ChaosFailRequest
	if !decodeChaos(w, r, &req) {
		return
	}
	downtime := time.Duration(req.DowntimeMS * float64(time.Millisecond))
	id, err := s.cluster.FailInstance(req.Runtime, downtime)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	writeJSON(w, ChaosResponse{Instance: id})
}

func (s *Server) handleChaosSlow(w http.ResponseWriter, r *http.Request) {
	var req ChaosSlowRequest
	if !decodeChaos(w, r, &req) {
		return
	}
	id, err := s.cluster.SlowInstance(req.Runtime, req.Factor)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	writeJSON(w, ChaosResponse{Instance: id})
}

func (s *Server) handleChaosRestore(w http.ResponseWriter, r *http.Request) {
	var req ChaosRestoreRequest
	if !decodeChaos(w, r, &req) {
		return
	}
	if err := s.cluster.RestoreInstance(req.Instance); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err.Error())
		return
	}
	writeJSON(w, ChaosResponse{Instance: req.Instance})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorEnvelope{Error: ErrorBody{Code: code, Message: msg}})
}

// inferLabels are the emulated classifier's output classes; wire
// responses carry the index, JSON responses the string.
var inferLabels = [3]string{"negative", "neutral", "positive"}

// classify is the emulated discriminative head: a deterministic label over
// the token ids (FNV-style fold), standing in for BERT's classifier. Two
// identical inputs always classify identically.
func classify(ids []int) string {
	h := uint64(14695981039346656037)
	for _, id := range ids {
		h ^= uint64(id)
		h *= 1099511628211
	}
	return inferLabels[h%3]
}
