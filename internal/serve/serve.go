// Package serve provides the HTTP serving front end standing in for the
// paper's Triton integration: a JSON inference endpoint that tokenizes the
// request text, dispatches it by sequence length through an Arlo-scheduled
// emulated cluster, and reports the measured latency. The classifier
// output itself is emulated (deterministic over the token ids) — the
// system under study is the scheduler, not the model.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"arlo/internal/cluster"
	"arlo/internal/metrics"
	"arlo/internal/tokenizer"
)

// InferRequest is the body of POST /v1/infer.
type InferRequest struct {
	// Text is the input to classify.
	Text string `json:"text"`
}

// InferResponse is the reply of POST /v1/infer.
type InferResponse struct {
	// Label is the (emulated) classification.
	Label string `json:"label"`
	// SequenceLength is the tokenized input length Arlo dispatched on.
	SequenceLength int `json:"sequence_length"`
	// LatencyMS is the measured serving latency in milliseconds.
	LatencyMS float64 `json:"latency_ms"`
}

// Stats is the reply of GET /v1/stats. Latency percentiles cover the
// trailing 60 seconds.
type Stats struct {
	Served    int64   `json:"served"`
	Rejected  int64   `json:"rejected"`
	Instances int     `json:"instances"`
	P50MS     float64 `json:"p50_ms"`
	P98MS     float64 `json:"p98_ms"`
}

// Observer receives every served request's tokenized length and measured
// latency — the hook Arlo's online control plane (core.Controller) feeds
// its demand and latency estimates from.
type Observer interface {
	Observe(length int, lat time.Duration)
}

// Server routes inference requests into a cluster.
type Server struct {
	tok      *tokenizer.Tokenizer
	cluster  *cluster.Cluster
	maxLen   int
	mux      *http.ServeMux
	served   atomic.Int64
	rejected atomic.Int64

	window *metrics.Window

	obsMu    sync.RWMutex
	observer Observer
}

// SetObserver installs (or clears, with nil) the served-request observer.
// Safe to call while serving.
func (s *Server) SetObserver(o Observer) {
	s.obsMu.Lock()
	s.observer = o
	s.obsMu.Unlock()
}

func (s *Server) notify(length int, lat time.Duration) {
	s.obsMu.RLock()
	o := s.observer
	s.obsMu.RUnlock()
	if o != nil {
		o.Observe(length, lat)
	}
}

// NewServer wires a tokenizer and a running cluster into an HTTP handler.
// maxLen caps the encoded sequence length (the model's maximum input).
func NewServer(tok *tokenizer.Tokenizer, cl *cluster.Cluster, maxLen int) (*Server, error) {
	if tok == nil {
		return nil, fmt.Errorf("serve: nil tokenizer")
	}
	if cl == nil {
		return nil, fmt.Errorf("serve: nil cluster")
	}
	if maxLen < 2 {
		return nil, fmt.Errorf("serve: max length must be >= 2, got %d", maxLen)
	}
	s := &Server{
		tok:     tok,
		cluster: cl,
		maxLen:  maxLen,
		mux:     http.NewServeMux(),
		window:  metrics.NewWindow(60 * time.Second),
	}
	s.mux.HandleFunc("/v1/infer", s.handleInfer)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	var req InferRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "invalid JSON", http.StatusBadRequest)
		return
	}
	if req.Text == "" {
		http.Error(w, "empty text", http.StatusBadRequest)
		return
	}
	ids := s.tok.Encode(req.Text, s.maxLen)
	lat, err := s.cluster.Submit(len(ids))
	if err != nil {
		s.rejected.Add(1)
		http.Error(w, fmt.Sprintf("dispatch failed: %v", err), http.StatusServiceUnavailable)
		return
	}
	s.served.Add(1)
	s.window.Record(lat)
	s.notify(len(ids), lat)
	writeJSON(w, InferResponse{
		Label:          classify(ids),
		SequenceLength: len(ids),
		LatencyMS:      float64(lat) / float64(time.Millisecond),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, Stats{
		Served:    s.served.Load(),
		Rejected:  s.rejected.Load(),
		Instances: s.cluster.Instances(),
		P50MS:     float64(s.window.Percentile(0.50)) / float64(time.Millisecond),
		P98MS:     float64(s.window.P98()) / float64(time.Millisecond),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// classify is the emulated discriminative head: a deterministic label over
// the token ids (FNV-style fold), standing in for BERT's classifier. Two
// identical inputs always classify identically.
func classify(ids []int) string {
	labels := [3]string{"negative", "neutral", "positive"}
	h := uint64(14695981039346656037)
	for _, id := range ids {
		h ^= uint64(id)
		h *= 1099511628211
	}
	return labels[h%3]
}

// Client is a minimal typed client for the server's API.
type Client struct {
	// BaseURL like "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// Infer posts one inference request.
func (c *Client) Infer(text string) (*InferResponse, error) {
	body, err := json.Marshal(InferRequest{Text: text})
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Post(c.BaseURL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("serve: infer returned %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var out InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the server counters.
func (c *Client) Stats() (*Stats, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: stats returned %d", resp.StatusCode)
	}
	var out Stats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}
