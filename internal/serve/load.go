// Shard-side load reporting: the compact snapshot a router tier scores
// shards by. The same snapshot is served two ways — GET /v1/load as JSON
// for operators and tests, and wire.KindLoadRequest frames on the binary
// listener so a router refreshes it over the connection it already
// routes through (one small frame each way, no extra dial).

package serve

import (
	"net/http"

	"arlo/internal/cluster"
	"arlo/internal/wire"
)

// WithShardName names this server's shard in load snapshots and /healthz,
// so a router aggregating several shards can label per-shard metrics and
// health by something stabler than a dialed address. Empty (the default)
// means the server is not part of a sharded deployment — snapshots still
// work, with an empty name.
func WithShardName(name string) Option {
	return func(s *Server) error {
		s.shard = name
		return nil
	}
}

// ShardName returns the name set with WithShardName ("" when unnamed).
func (s *Server) ShardName() string { return s.shard }

// LoadSnapshot builds the shard's current load report: per-runtime queue
// depth by length bucket, instance health counts, lifetime admission
// counters, and utilization in thousandths. Seq increases with every
// call, so two snapshots from the same shard are ordered without clocks.
func (s *Server) LoadSnapshot() wire.LoadSnapshot {
	snap := wire.LoadSnapshot{
		Seq:       s.loadSeq.Add(1),
		Shard:     s.shard,
		Submitted: uint64(s.rec.Submitted()),
		Completed: uint64(s.rec.Completed()),
		Rejected:  uint64(s.rec.Rejected()),
	}
	sum := cluster.Summarize(s.cluster.Health())
	snap.Healthy = uint16(sum.Healthy)
	snap.Degraded = uint16(sum.Degraded)
	snap.Dead = uint16(sum.Dead)
	live, ok := s.rec.LiveSnapshot()
	if !ok {
		return snap
	}
	// Per-level capacity is the sum of the level's instance bounds (Σ M_i);
	// the gauge snapshot carries it per instance, keyed by runtime index.
	levelCap := make(map[int]int, len(live.Levels))
	var outstanding, capacity int
	for _, in := range live.Instances {
		levelCap[in.Runtime] += in.Capacity
		outstanding += in.Outstanding
		capacity += in.Capacity
	}
	if capacity > 0 {
		snap.UtilMilli = uint32(outstanding * 1000 / capacity)
	}
	snap.Levels = make([]wire.LoadLevel, 0, len(live.Levels))
	for _, lv := range live.Levels {
		snap.Levels = append(snap.Levels, wire.LoadLevel{
			MaxLength: uint32(lv.MaxLength),
			Depth:     uint32(lv.Depth),
			Instances: uint16(lv.Instances),
			Capacity:  uint32(levelCap[lv.Level]),
		})
	}
	return snap
}

// handleLoad serves GET /v1/load: the wire load snapshot as JSON.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET required")
		return
	}
	snap := s.LoadSnapshot()
	writeJSON(w, &snap)
}
