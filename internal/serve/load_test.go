package serve

import (
	"bufio"
	"encoding/json"
	"net"
	"net/http/httptest"
	"testing"

	"arlo/internal/wire"
)

func TestLoadSnapshotShape(t *testing.T) {
	srv, cl := testServer(t)
	srv.shard = "shard-test"
	snap := srv.LoadSnapshot()
	if snap.Shard != "shard-test" {
		t.Errorf("shard = %q", snap.Shard)
	}
	if snap.Seq != 1 {
		t.Errorf("seq = %d, want 1", snap.Seq)
	}
	if got := srv.LoadSnapshot().Seq; got != 2 {
		t.Errorf("second seq = %d, want 2", got)
	}
	if int(snap.Healthy) != cl.Instances() {
		t.Errorf("healthy = %d, want %d", snap.Healthy, cl.Instances())
	}
	if len(snap.Levels) != cl.NumLevels() {
		t.Fatalf("levels = %d, want %d", len(snap.Levels), cl.NumLevels())
	}
	for i := 1; i < len(snap.Levels); i++ {
		if snap.Levels[i].MaxLength <= snap.Levels[i-1].MaxLength {
			t.Errorf("levels not sorted by max length: %v", snap.Levels)
		}
	}
	for i, lv := range snap.Levels {
		if lv.Instances == 0 || lv.Capacity == 0 {
			t.Errorf("level %d: instances %d capacity %d, want both > 0", i, lv.Instances, lv.Capacity)
		}
	}
	if !snap.Serviceable() {
		t.Error("fresh cluster should be serviceable")
	}
}

func TestLoadEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/load")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var snap wire.LoadSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Seq == 0 || len(snap.Levels) == 0 {
		t.Errorf("load JSON looks empty: %+v", snap)
	}
}

func TestWireLoadProbe(t *testing.T) {
	srv, _ := testServer(t)
	srv.shard = "wired"
	addr := startWire(t, srv)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire.AppendFrame(nil, wire.AppendLoadRequest(nil, 42))); err != nil {
		t.Fatal(err)
	}
	payload, _, err := wire.ReadFrame(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := wire.DecodeLoadSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != 42 {
		t.Errorf("id = %d, want 42", snap.ID)
	}
	if snap.Shard != "wired" {
		t.Errorf("shard = %q", snap.Shard)
	}
	if len(snap.Levels) == 0 || !snap.Serviceable() {
		t.Errorf("snapshot not serviceable or empty: %+v", snap)
	}
}

func TestHealthzInstances(t *testing.T) {
	srv, cl := testServer(t)
	if _, err := cl.SlowInstance(0, 3); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if len(hr.Instances) != cl.Instances() {
		t.Fatalf("instances = %d, want %d", len(hr.Instances), cl.Instances())
	}
	// The per-instance array must agree with the aggregate counts — the
	// same split arlo_instance_health exports.
	counts := map[string]int{}
	degradedFactor := 0.0
	for _, in := range hr.Instances {
		counts[in.State]++
		if in.State == "degraded" {
			degradedFactor = in.SlowFactor
		}
	}
	if counts["healthy"] != hr.Healthy || counts["degraded"] != hr.Degraded || counts["dead"] != hr.Dead {
		t.Errorf("per-instance states %v disagree with summary %+v", counts, hr.HealthSummary)
	}
	if hr.Degraded != 1 || degradedFactor != 3 {
		t.Errorf("degraded = %d factor = %v, want 1 and 3", hr.Degraded, degradedFactor)
	}
}
