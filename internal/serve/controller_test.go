package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/cluster"
	"arlo/internal/controller"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/obs"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/tokenizer"
)

// testController builds a cluster plus a (stopped) control loop over it.
func testController(t *testing.T) (*cluster.Cluster, *controller.Controller) {
	t.Helper()
	p, err := profiler.StaticProfile(model.BertBase(), model.BertBaseArch.RuntimeLengths(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(len(p.Runtimes))
	cl, err := cluster.New(cluster.Config{
		Profile:           p,
		InitialAllocation: []int{1, 1, 1, 1, 1, 1, 1, 1},
		Observer:          rec,
		Dispatcher: func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewRequestScheduler(ml)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	solver, err := allocator.NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(cl, solver, rec, controller.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return cl, ctrl
}

func TestControllerEndpoint(t *testing.T) {
	cl, ctrl := testController(t)
	srv, err := New(tokenizer.New(), cl, WithController(ctrl))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/controller")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/controller = %d, want 200", resp.StatusCode)
	}
	var st controller.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.GPUs != 8 || len(st.Allocation) != 8 {
		t.Errorf("status reports %d GPUs, allocation %v; want 8 instances", st.GPUs, st.Allocation)
	}
	if st.Running {
		t.Error("loop was never started but reports running")
	}

	post, err := http.Post(ts.URL+"/v1/controller", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	var env ErrorEnvelope
	if err := json.NewDecoder(post.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if post.StatusCode != http.StatusMethodNotAllowed || env.Error.Code != CodeMethodNotAllowed {
		t.Errorf("POST = %d %q, want 405 %s", post.StatusCode, env.Error.Code, CodeMethodNotAllowed)
	}
}

func TestControllerEndpointAbsent(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/controller")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != CodeNotFound {
		t.Errorf("GET without controller = %d %q, want 404 %s", resp.StatusCode, env.Error.Code, CodeNotFound)
	}
}

func TestWithControllerNil(t *testing.T) {
	_, cl := testServer(t)
	if _, err := New(tokenizer.New(), cl, WithController(nil)); err == nil {
		t.Error("nil controller should fail construction")
	}
}
