package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"arlo/internal/cluster"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/tenant"
	"arlo/internal/tokenizer"
)

// testTenantServer builds a server over a multi-tenant cluster.
func testTenantServer(t *testing.T, cfgs ...tenant.Config) (*Server, *cluster.Cluster) {
	t.Helper()
	p, err := profiler.StaticProfile(model.BertBase(), model.BertBaseArch.RuntimeLengths(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := tenant.NewRegistry(cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		Profile:           p,
		InitialAllocation: []int{1, 1, 1, 1, 1, 1, 1, 1},
		Dispatcher: func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewRequestScheduler(ml)
		},
		Tenants: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	srv, err := New(tokenizer.New(), cl, WithMaxLength(512))
	if err != nil {
		t.Fatal(err)
	}
	return srv, cl
}

func postInfer(t *testing.T, url, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/infer", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestInferTenantIdentityResolution pins the precedence chain: header
// beats body field, body field beats nothing, and neither means the
// default tenant — verified against the registry's own books.
func TestInferTenantIdentityResolution(t *testing.T) {
	srv, cl := testTenantServer(t,
		tenant.Config{ID: "hdr"},
		tenant.Config{ID: "body"},
	)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		name string
		body string
		hdr  map[string]string
		want string
	}{
		{"header wins over body", `{"text":"hi there","tenant":"body"}`,
			map[string]string{TenantHeader: "hdr"}, "hdr"},
		{"body alone", `{"text":"hi there","tenant":"body"}`, nil, "body"},
		{"neither is default", `{"text":"hi there"}`, nil, tenant.DefaultID},
	}
	reg := cl.Tenants()
	for _, tc := range cases {
		before := reg.Get(tc.want).Stat().Admitted
		resp := postInfer(t, ts.URL, tc.body, tc.hdr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", tc.name, resp.StatusCode)
		}
		if got := reg.Get(tc.want).Stat().Admitted; got != before+1 {
			t.Errorf("%s: tenant %q admitted %d, want %d", tc.name, tc.want, got, before+1)
		}
	}
}

// TestInferTenantFieldKeepsByteCompat: a request carrying the new tenant
// body field must produce byte-identical response output to the same text
// without it — tenancy adds no response surface to /v1/infer.
func TestInferTenantFieldKeepsByteCompat(t *testing.T) {
	srv, _ := testTenantServer(t, tenant.Config{ID: "a"})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	read := func(body string) []byte {
		resp := postInfer(t, ts.URL, body, nil)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := read(`{"text":"the same words"}`)
	tenanted := read(`{"text":"the same words","tenant":"a"}`)
	// Latency fields differ run to run; compare the structural bytes by
	// re-encoding through the typed response.
	var a, b InferResponse
	if err := json.Unmarshal(plain, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(tenanted, &b); err != nil {
		t.Fatal(err)
	}
	if a.Label != b.Label || a.SequenceLength != b.SequenceLength {
		t.Errorf("tenant field changed the response: %+v vs %+v", a, b)
	}
	// And the raw bytes must re-encode exactly via the pinned encoder —
	// no extra fields appeared for tenanted requests.
	if want := appendInferResponse(nil, &b); !bytes.Equal(tenanted, want) {
		t.Errorf("tenanted response bytes diverge from the pinned encoding:\n got: %s\nwant: %s", tenanted, want)
	}
}

// TestInferRateLimited429 pins the rejection surface: HTTP 429, the
// rate_limited envelope code, and a Retry-After header of at least one
// whole second.
func TestInferRateLimited429(t *testing.T) {
	srv, _ := testTenantServer(t,
		tenant.Config{ID: "tight", Capacity: 16, RefillPerSec: 0.001})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	hdr := map[string]string{TenantHeader: "tight"}
	resp := postInfer(t, ts.URL, `{"text":"first one fits the bucket"}`, hdr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-budget request: status %d", resp.StatusCode)
	}
	resp = postInfer(t, ts.URL, `{"text":"second one finds it empty"}`, hdr)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := time.ParseDuration(ra + "s")
	if err != nil || secs < time.Second {
		t.Errorf("Retry-After %q, want whole seconds >= 1", ra)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeRateLimited {
		t.Errorf("envelope code %q, want %q", env.Error.Code, CodeRateLimited)
	}
}

// TestClientRetryAfterFloorsBackoff: a 429 with Retry-After must floor
// the client's backoff wait — it retries, but not before the hinted
// horizon.
func TestClientRetryAfterFloorsBackoff(t *testing.T) {
	var calls atomic.Int64
	var firstGap atomic.Int64
	var last atomic.Int64
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		now := time.Now().UnixNano()
		if prev := last.Swap(now); n == 2 {
			firstGap.Store(now - prev)
		}
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, CodeRateLimited, "bucket empty")
			return
		}
		resp := InferResponse{Label: "neutral", SequenceLength: 3}
		_, _ = w.Write(appendInferResponse(nil, &resp))
	}))
	defer fake.Close()

	c := &Client{BaseURL: fake.URL, MaxRetries: 2, Backoff: time.Millisecond, Tenant: "t"}
	start := time.Now()
	out, err := c.Infer("hello")
	if err != nil {
		t.Fatalf("retry did not recover from 429: %v", err)
	}
	if out.Label != "neutral" {
		t.Fatalf("wrong response after retry: %+v", out)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("%d attempts, want 2", n)
	}
	// The 1ms backoff alone would retry almost instantly; the Retry-After
	// floor stretches the gap to ~1s.
	if gap := time.Duration(firstGap.Load()); gap < 900*time.Millisecond {
		t.Errorf("retry gap %v ignored Retry-After of 1s", gap)
	}
	if el := time.Since(start); el < 900*time.Millisecond {
		t.Errorf("total elapsed %v below the hinted horizon", el)
	}
}

// TestClientRateLimitedNotRetriedPastBudget: 429 stays an *APIError that
// matches ErrRateLimited once retries are exhausted.
func TestClientRateLimitedNotRetriedPastBudget(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusTooManyRequests, CodeRateLimited, "always empty")
	}))
	defer fake.Close()
	c := &Client{BaseURL: fake.URL, MaxRetries: 0}
	_, err := c.Infer("hello")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err %v does not match ErrRateLimited", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err %v, want 429 APIError", err)
	}
}

// TestTenantsAdminCRUD drives the admin surface end to end: list, read,
// create, live-update, and every rejection class.
func TestTenantsAdminCRUD(t *testing.T) {
	srv, cl := testTenantServer(t,
		tenant.Config{ID: "a", SLOClass: "interactive", Capacity: 100, RefillPerSec: 10, Weight: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	do := func(method, path, body string) (*http.Response, []byte) {
		t.Helper()
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// List: the configured tenant plus the implicit default, sorted.
	resp, body := do(http.MethodGet, "/v1/tenants", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}
	var list TenantList
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Tenants) != 2 || list.Tenants[0].ID != "a" || list.Tenants[1].ID != tenant.DefaultID {
		t.Fatalf("list = %+v", list.Tenants)
	}

	// Read one, counters included.
	resp, body = do(http.MethodGet, "/v1/tenants/a", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d", resp.StatusCode)
	}
	var rec TenantRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.SLOClass != "interactive" || rec.Capacity != 100 || rec.Weight != 4 || rec.Admitted != 0 {
		t.Fatalf("record = %+v", rec)
	}

	// Unknown tenant is 404 not_found.
	resp, body = do(http.MethodGet, "/v1/tenants/nobody", "")
	var env ErrorEnvelope
	_ = json.Unmarshal(body, &env)
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != CodeNotFound {
		t.Fatalf("unknown get: status %d code %q", resp.StatusCode, env.Error.Code)
	}

	// Create a new record via PUT; the path supplies the id.
	resp, body = do(http.MethodPut, "/v1/tenants/b", `{"slo_class":"batch","weight":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	if got, _ := cl.Tenants().Lookup("b"); got == nil || got.Class() != tenant.Batch {
		t.Fatal("PUT did not create the record in the live registry")
	}

	// Live-update an existing record; the running cluster sees it.
	resp, _ = do(http.MethodPut, "/v1/tenants/a", `{"id":"a","weight":9}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d", resp.StatusCode)
	}
	if w := cl.Tenants().Get("a").Weight(); w != 9 {
		t.Fatalf("live weight %v after PUT, want 9", w)
	}

	// Rejections: body/path id mismatch, unknown field (strict decode),
	// invalid config, wrong method.
	for _, tc := range []struct {
		name, method, path, body string
		status                   int
		code                     string
	}{
		{"id mismatch", http.MethodPut, "/v1/tenants/a", `{"id":"zzz"}`, http.StatusBadRequest, CodeInvalidRequest},
		{"unknown field", http.MethodPut, "/v1/tenants/a", `{"burst":5}`, http.StatusBadRequest, CodeUnsupportedField},
		{"invalid config", http.MethodPut, "/v1/tenants/a", `{"weight":-3}`, http.StatusBadRequest, CodeInvalidRequest},
		{"bad json", http.MethodPut, "/v1/tenants/a", `{`, http.StatusBadRequest, CodeInvalidRequest},
		{"delete", http.MethodDelete, "/v1/tenants/a", ``, http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"post list", http.MethodPost, "/v1/tenants", ``, http.StatusMethodNotAllowed, CodeMethodNotAllowed},
	} {
		resp, body = do(tc.method, tc.path, tc.body)
		_ = json.Unmarshal(body, &env)
		if resp.StatusCode != tc.status || env.Error.Code != tc.code {
			t.Errorf("%s: status %d code %q, want %d %q", tc.name, resp.StatusCode, env.Error.Code, tc.status, tc.code)
		}
	}
}

// TestTenantsAdmin404WhenDisabled: the whole admin surface answers 404
// not_found on a single-tenant cluster.
func TestTenantsAdmin404WhenDisabled(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/v1/tenants"},
		{http.MethodGet, "/v1/tenants/a"},
		{http.MethodPut, "/v1/tenants/a"},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(`{}`))
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env ErrorEnvelope
		_ = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || env.Error.Code != CodeNotFound {
			t.Errorf("%s %s: status %d code %q, want 404 not_found", tc.method, tc.path, resp.StatusCode, env.Error.Code)
		}
	}
}

// TestWireTenantIdentityAndRateLimit drives tenant identity through the
// binary protocol: the client's Tenant upgrades frames to V2, admission
// rejections come back as StatusRateLimited with a usable retry hint, and
// the V1 path (no tenant) is untouched.
func TestWireTenantIdentityAndRateLimit(t *testing.T) {
	srv, cl := testTenantServer(t,
		tenant.Config{ID: "w", Capacity: 16, RefillPerSec: 0.001})
	addr := startWire(t, srv)

	// V1 first: a client with no tenant set books to the default record.
	plain, err := DialWire(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.Infer("short hello"); err != nil {
		t.Fatalf("V1 infer on a tenant-enabled server: %v", err)
	}
	if got := cl.Tenants().Get(tenant.DefaultID).Stat().Admitted; got != 1 {
		t.Fatalf("default tenant admitted %d after a V1 request, want 1", got)
	}

	// V2: tenant identity rides the frame; the books move with it.
	tc, err := DialWire(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	tc.Tenant = "w"
	if _, err := tc.Infer("short hello"); err != nil {
		t.Fatalf("tenanted infer: %v", err)
	}
	if got := cl.Tenants().Get("w").Stat().Admitted; got != 1 {
		t.Fatalf("tenant w admitted %d, want 1", got)
	}

	// The bucket is spent: the next request must rate-limit with a typed
	// error carrying the Retry-After horizon.
	_, err = tc.Infer("this one finds the bucket empty")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-budget wire request returned %v, want ErrRateLimited", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("wire rejection %v is not an *APIError", err)
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.RetryAfter <= 0 {
		t.Fatalf("wire rejection status %d retryAfter %v", apiErr.Status, apiErr.RetryAfter)
	}
	if got := cl.Tenants().Get("w").Stat().Rejected; got != 1 {
		t.Fatalf("tenant w rejected %d, want 1", got)
	}
}
