// Package ilp solves mixed-integer linear programs by branch-and-bound
// over LP relaxations from package lp. Together they are the pure-Go
// replacement for the commercial solver the paper invokes (GUROBI,
// section 3.3); the Runtime Scheduler's allocation program itself is
// solved by the specialized exact method in package allocator, but this
// generic substrate is available for the linear formulations and is
// exercised by Table 2's overhead benchmarks.
package ilp

import (
	"fmt"
	"math"

	"arlo/internal/lp"
)

// Problem is a linear program plus integrality requirements.
type Problem struct {
	LP lp.Problem
	// Integer marks the variables that must take integer values. A nil
	// slice makes every variable integral. A shorter slice is padded
	// with false.
	Integer []bool
}

// Options control the branch-and-bound search.
type Options struct {
	// MaxNodes bounds explored subproblems; 0 means the default (200000).
	MaxNodes int
}

// ErrNodeLimit is returned when the node budget is exhausted before any
// integral incumbent is found.
var ErrNodeLimit = fmt.Errorf("ilp: node limit reached without an integral solution")

const intTol = 1e-6

// Solve optimizes the MILP. The returned status mirrors package lp:
// Optimal with the best integral solution found, Infeasible when no
// integral point exists, Unbounded when the relaxation is unbounded.
func Solve(p *Problem, opt Options) (*lp.Solution, lp.Status, error) {
	if p == nil {
		return nil, lp.Infeasible, fmt.Errorf("ilp: nil problem")
	}
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	isInt := func(j int) bool {
		if p.Integer == nil {
			return true
		}
		if j < len(p.Integer) {
			return p.Integer[j]
		}
		return false
	}

	type node struct {
		extra []lp.Constraint
	}
	stack := []node{{}}
	var best *lp.Solution
	nodes := 0
	sawFeasibleRelaxation := false

	for len(stack) > 0 {
		if nodes >= maxNodes {
			if best != nil {
				return best, lp.Optimal, nil
			}
			return nil, lp.Infeasible, ErrNodeLimit
		}
		nodes++
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		sub := lp.Problem{
			NumVars:     p.LP.NumVars,
			Objective:   p.LP.Objective,
			Constraints: append(append([]lp.Constraint{}, p.LP.Constraints...), nd.extra...),
		}
		sol, st, err := lp.Solve(&sub)
		if err != nil {
			return nil, lp.Infeasible, err
		}
		switch st {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			// An unbounded relaxation at the root means the MILP is
			// unbounded or pathological; deeper nodes only add bounds.
			if len(nd.extra) == 0 {
				return nil, lp.Unbounded, nil
			}
			continue
		}
		sawFeasibleRelaxation = true
		if best != nil && sol.Objective >= best.Objective-1e-9 {
			continue // bound: relaxation cannot beat the incumbent
		}
		// Find the most fractional integer variable.
		branch := -1
		worst := intTol
		for j := 0; j < p.LP.NumVars; j++ {
			if !isInt(j) {
				continue
			}
			f := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if f > worst {
				worst = f
				branch = j
			}
		}
		if branch < 0 {
			// Integral: round off the numerical fuzz and keep as incumbent.
			snapped := &lp.Solution{X: append([]float64{}, sol.X...), Objective: sol.Objective}
			for j := range snapped.X {
				if isInt(j) {
					snapped.X[j] = math.Round(snapped.X[j])
				}
			}
			best = snapped
			continue
		}
		v := sol.X[branch]
		lo, hi := math.Floor(v), math.Ceil(v)
		down := make([]lp.Constraint, len(nd.extra)+1)
		copy(down, nd.extra)
		down[len(nd.extra)] = boundConstraint(p.LP.NumVars, branch, lp.LE, lo)
		up := make([]lp.Constraint, len(nd.extra)+1)
		copy(up, nd.extra)
		up[len(nd.extra)] = boundConstraint(p.LP.NumVars, branch, lp.GE, hi)
		stack = append(stack, node{extra: down}, node{extra: up})
	}
	if best == nil {
		if sawFeasibleRelaxation {
			return nil, lp.Infeasible, nil
		}
		return nil, lp.Infeasible, nil
	}
	return best, lp.Optimal, nil
}

func boundConstraint(n, j int, sense lp.Sense, rhs float64) lp.Constraint {
	coeffs := make([]float64, n)
	coeffs[j] = 1
	return lp.Constraint{Coeffs: coeffs, Sense: sense, RHS: rhs}
}
