package ilp

import (
	"math"
	"math/rand"
	"testing"

	"arlo/internal/lp"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestKnapsack(t *testing.T) {
	// maximize 8a + 11b + 6c + 4d with weights 5,7,4,3 <= 14, binaries.
	// Optimum: b + c + d = 21 (weight 14) vs a+b (19, w12) vs a+c+d (18).
	p := &Problem{
		LP: lp.Problem{
			NumVars:   4,
			Objective: []float64{-8, -11, -6, -4},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{5, 7, 4, 3}, Sense: lp.LE, RHS: 14},
				{Coeffs: []float64{1, 0, 0, 0}, Sense: lp.LE, RHS: 1},
				{Coeffs: []float64{0, 1, 0, 0}, Sense: lp.LE, RHS: 1},
				{Coeffs: []float64{0, 0, 1, 0}, Sense: lp.LE, RHS: 1},
				{Coeffs: []float64{0, 0, 0, 1}, Sense: lp.LE, RHS: 1},
			},
		},
	}
	sol, st, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st != lp.Optimal {
		t.Fatalf("status = %v", st)
	}
	if !approx(sol.Objective, -21) {
		t.Errorf("objective = %v, want -21", sol.Objective)
	}
	want := []float64{0, 1, 1, 1}
	for j := range want {
		if !approx(sol.X[j], want[j]) {
			t.Errorf("x = %v, want %v", sol.X, want)
			break
		}
	}
}

func TestIntegralityChangesOptimum(t *testing.T) {
	// maximize x + y s.t. 2x + 3y <= 8: LP optimum x=4 (obj 4) already
	// integral; make it fractional: 3x + 2y <= 7, x <= 1.5 region...
	// Use: maximize y s.t. 2y <= 5 => LP y=2.5, ILP y=2.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   1,
			Objective: []float64{-1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{2}, Sense: lp.LE, RHS: 5},
			},
		},
	}
	sol, st, err := Solve(p, Options{})
	if err != nil || st != lp.Optimal {
		t.Fatalf("err=%v st=%v", err, st)
	}
	if !approx(sol.X[0], 2) {
		t.Errorf("x = %v, want 2", sol.X[0])
	}
}

func TestMixedInteger(t *testing.T) {
	// x integer, y continuous. minimize -10x - y s.t. x + y <= 3.7, x<=2.2.
	// LP relaxation picks x=2.2; the MILP optimum is x=2, y=1.7 (obj -21.7).
	p := &Problem{
		LP: lp.Problem{
			NumVars:   2,
			Objective: []float64{-10, -1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 1}, Sense: lp.LE, RHS: 3.7},
				{Coeffs: []float64{1, 0}, Sense: lp.LE, RHS: 2.2},
			},
		},
		Integer: []bool{true, false},
	}
	sol, st, err := Solve(p, Options{})
	if err != nil || st != lp.Optimal {
		t.Fatalf("err=%v st=%v", err, st)
	}
	if !approx(sol.X[0], 2) || !approx(sol.X[1], 1.7) {
		t.Errorf("x = %v, want [2 1.7]", sol.X)
	}
}

func TestIntegerInfeasible(t *testing.T) {
	// 0.4 <= x <= 0.6 has no integer point.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   1,
			Objective: []float64{1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1}, Sense: lp.GE, RHS: 0.4},
				{Coeffs: []float64{1}, Sense: lp.LE, RHS: 0.6},
			},
		},
	}
	_, st, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st != lp.Infeasible {
		t.Errorf("status = %v, want infeasible", st)
	}
}

func TestUnboundedRoot(t *testing.T) {
	p := &Problem{
		LP: lp.Problem{
			NumVars:   1,
			Objective: []float64{-1},
		},
	}
	_, st, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st != lp.Unbounded {
		t.Errorf("status = %v, want unbounded", st)
	}
}

func TestNilProblem(t *testing.T) {
	if _, _, err := Solve(nil, Options{}); err == nil {
		t.Error("nil problem should error")
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem needing more than one node, with budget 1 and no incumbent.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   2,
			Objective: []float64{-1, -1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{2, 2}, Sense: lp.LE, RHS: 3},
			},
		},
	}
	_, _, err := Solve(p, Options{MaxNodes: 1})
	if err != ErrNodeLimit {
		t.Errorf("err = %v, want ErrNodeLimit", err)
	}
}

// TestAgainstBruteForce cross-checks random small pure-integer programs
// against exhaustive enumeration.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(2) // 2-3 vars, domain 0..6 via box constraints
		p := &Problem{LP: lp.Problem{NumVars: n, Objective: make([]float64, n)}}
		for j := range p.LP.Objective {
			p.LP.Objective[j] = math.Round((rng.Float64()*10-5)*10) / 10
		}
		box := 6.0
		for j := 0; j < n; j++ {
			coeffs := make([]float64, n)
			coeffs[j] = 1
			p.LP.Constraints = append(p.LP.Constraints, lp.Constraint{Coeffs: coeffs, Sense: lp.LE, RHS: box})
		}
		nCons := 1 + rng.Intn(2)
		for k := 0; k < nCons; k++ {
			coeffs := make([]float64, n)
			for j := range coeffs {
				coeffs[j] = math.Round(rng.Float64()*30) / 10
			}
			p.LP.Constraints = append(p.LP.Constraints, lp.Constraint{Coeffs: coeffs, Sense: lp.LE, RHS: math.Round(rng.Float64()*100) / 10})
		}
		sol, st, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over the integer box.
		best := math.Inf(1)
		feasibleExists := false
		x := make([]int, n)
		var rec func(j int)
		rec = func(j int) {
			if j == n {
				for _, c := range p.LP.Constraints {
					lhs := 0.0
					for jj, v := range c.Coeffs {
						lhs += v * float64(x[jj])
					}
					if lhs > c.RHS+1e-9 {
						return
					}
				}
				feasibleExists = true
				v := 0.0
				for jj, c := range p.LP.Objective {
					v += c * float64(x[jj])
				}
				if v < best {
					best = v
				}
				return
			}
			for v := 0; v <= int(box); v++ {
				x[j] = v
				rec(j + 1)
			}
		}
		rec(0)
		if !feasibleExists {
			if st != lp.Infeasible {
				t.Errorf("trial %d: brute force infeasible but solver says %v", trial, st)
			}
			continue
		}
		if st != lp.Optimal {
			t.Errorf("trial %d: expected optimal, got %v", trial, st)
			continue
		}
		if math.Abs(sol.Objective-best) > 1e-6 {
			t.Errorf("trial %d: B&B %.4f vs brute force %.4f (obj %v cons %v)",
				trial, sol.Objective, best, p.LP.Objective, p.LP.Constraints)
		}
	}
}
