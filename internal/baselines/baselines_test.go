package baselines

import (
	"testing"
	"time"

	"arlo/internal/model"
	"arlo/internal/sim"
	"arlo/internal/trace"
)

const slo = 150 * time.Millisecond

func stableTrace(t testing.TB, rate float64, d time.Duration) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.Stable(17, rate, d))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSystemConstruction(t *testing.T) {
	lm := model.BertBase()
	arlo, err := Arlo(lm, slo)
	if err != nil {
		t.Fatal(err)
	}
	if len(arlo.Profile.Runtimes) != 8 {
		t.Errorf("Arlo should deploy 8 runtimes, got %d", len(arlo.Profile.Runtimes))
	}
	st, err := ST(lm, slo)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Profile.Runtimes) != 1 || st.Profile.Runtimes[0].MaxLength != 512 {
		t.Error("ST should deploy a single 512 runtime")
	}
	dt, err := DT(lm, []int{20, 50, 100, 300}, slo)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Profile.Runtimes[0].Compilation != model.Dynamic {
		t.Error("DT runtime should be dynamic")
	}
	inf, err := INFaaS(lm, slo)
	if err != nil {
		t.Fatal(err)
	}
	if len(inf.Profile.Runtimes) != 8 {
		t.Errorf("INFaaS should deploy the multi-variant runtimes, got %d", len(inf.Profile.Runtimes))
	}
}

func TestConstructionErrors(t *testing.T) {
	if _, err := Arlo(nil, slo); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := ST(nil, slo); err == nil {
		t.Error("nil model should fail for ST")
	}
	if _, err := DT(nil, []int{10}, slo); err == nil {
		t.Error("nil model should fail for DT")
	}
	if _, err := INFaaS(nil, slo); err == nil {
		t.Error("nil model should fail for INFaaS")
	}
	if _, err := ArloN(model.BertBase(), slo, 7); err == nil {
		t.Error("non-divisor runtime count should fail")
	}
}

func TestArloNSweep(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		s, err := ArloN(model.BertBase(), slo, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Profile.Runtimes) != n {
			t.Errorf("ArloN(%d) deployed %d runtimes", n, len(s.Profile.Runtimes))
		}
	}
}

func TestSimConfigValidation(t *testing.T) {
	s, err := Arlo(model.BertBase(), slo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SimConfig(nil, 10, 0); err == nil {
		t.Error("nil trace should fail")
	}
	tr := stableTrace(t, 100, 5*time.Second)
	if _, err := s.SimConfig(tr, 0, 0); err == nil {
		t.Error("zero GPUs should fail")
	}
}

func TestAllFourSystemsRunEndToEnd(t *testing.T) {
	lm := model.BertBase()
	tr := stableTrace(t, 400, 10*time.Second)
	systems := make([]*System, 0, 4)
	arlo, err := Arlo(lm, slo)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ST(lm, slo)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := DT(lm, tr.Lengths()[:200], slo)
	if err != nil {
		t.Fatal(err)
	}
	inf, err := INFaaS(lm, slo)
	if err != nil {
		t.Fatal(err)
	}
	systems = append(systems, arlo, st, dt, inf)

	results := map[string]*sim.Result{}
	for _, s := range systems {
		cfg, err := s.SimConfig(tr, 10, 5*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if res.Completed+res.Rejected != len(tr.Requests) {
			t.Errorf("%s: conservation violated", s.Name)
		}
		if res.Rejected != 0 {
			t.Errorf("%s: rejected %d requests", s.Name, res.Rejected)
		}
		results[s.Name] = res
	}

	// The paper's headline ordering at moderate load: Arlo beats ST
	// decisively and is at least competitive with DT and INFaaS.
	if results["Arlo"].Summary.Mean >= results["ST"].Summary.Mean {
		t.Errorf("Arlo mean %v should beat ST mean %v",
			results["Arlo"].Summary.Mean, results["ST"].Summary.Mean)
	}
	if results["Arlo"].Summary.Mean > results["DT"].Summary.Mean {
		t.Errorf("Arlo mean %v should not lose to DT mean %v",
			results["Arlo"].Summary.Mean, results["DT"].Summary.Mean)
	}
	if results["Arlo"].Summary.Mean > results["INFaaS"].Summary.Mean {
		t.Errorf("Arlo mean %v should not lose to INFaaS mean %v",
			results["Arlo"].Summary.Mean, results["INFaaS"].Summary.Mean)
	}
}

func TestArloWithDispatcherAblation(t *testing.T) {
	lm := model.BertBase()
	for _, policy := range []string{"RS", "ILB", "IG"} {
		s, err := ArloWithDispatcher(lm, slo, policy)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != "Arlo/"+policy {
			t.Errorf("name = %q", s.Name)
		}
	}
	if _, err := ArloWithDispatcher(lm, slo, "bogus"); err == nil {
		// Construction defers dispatcher instantiation; the error should
		// surface when the sim config is built and run.
		s, _ := ArloWithDispatcher(lm, slo, "bogus")
		tr := stableTrace(t, 50, 2*time.Second)
		cfg, err := s.SimConfig(tr, 4, 0)
		if err != nil {
			return // also acceptable: failure at config time
		}
		if _, err := sim.Run(cfg); err == nil {
			t.Error("bogus dispatch policy should fail somewhere")
		}
	}
}
