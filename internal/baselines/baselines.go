// Package baselines assembles the four serving systems the evaluation
// compares (paper section 5, "Compared schemes"):
//
//   - ST: one statically compiled runtime at the unified maximum length,
//     load-balanced — every request pays full padding.
//   - DT: one dynamically compiled runtime, load-balanced — no padding but
//     inflated kernel time.
//   - INFaaS: multiple runtime variants with bin-packing dispatch and
//     load-driven (not length-aware) allocation.
//   - Arlo: polymorphing with the Runtime Scheduler's ILP allocation and
//     the Request Scheduler's multi-level-queue dispatch.
//
// Each system produces a sim.Config so experiments treat them uniformly.
package baselines

import (
	"fmt"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/sim"
	"arlo/internal/trace"
)

// System is one comparable serving scheme.
type System struct {
	// Name is the scheme label used in experiment output.
	Name string
	// Profile describes the deployed runtimes.
	Profile *profiler.Profile
	// Dispatcher builds the request-dispatch policy.
	Dispatcher sim.DispatcherFactory
	// Allocate is the periodic Runtime Scheduler policy (nil = fixed
	// deployment).
	Allocate sim.AllocatorFunc
	// Initial computes the starting allocation for g GPUs given warm-up
	// demand (requests per SLO window per runtime bin).
	Initial func(g int, q []float64) ([]int, error)
}

// Arlo assembles the full Arlo system: one runtime per tile step, exact
// allocation, Request Scheduler dispatch with the paper's parameters.
func Arlo(lm *model.LatencyModel, slo time.Duration) (*System, error) {
	if lm == nil {
		return nil, fmt.Errorf("baselines: nil latency model")
	}
	return ArloN(lm, slo, lm.Arch().NumRuntimes())
}

// ArloN assembles Arlo with numRuntimes evenly spaced runtimes (the Fig.
// 11 sweep).
func ArloN(lm *model.LatencyModel, slo time.Duration, numRuntimes int) (*System, error) {
	if lm == nil {
		return nil, fmt.Errorf("baselines: nil latency model")
	}
	if numRuntimes <= 0 || lm.Arch().MaxLength%numRuntimes != 0 {
		return nil, fmt.Errorf("baselines: %d runtimes must evenly divide max length %d", numRuntimes, lm.Arch().MaxLength)
	}
	p, err := profiler.StaticProfile(lm, lm.Arch().RuntimeLengthsN(numRuntimes), slo)
	if err != nil {
		return nil, err
	}
	solver, err := allocator.NewSolver(p)
	if err != nil {
		return nil, err
	}
	allocate := func(g int, q []float64) ([]int, error) {
		a, err := solver.Allocate(g, q)
		if err != nil {
			return nil, err
		}
		return a.N, nil
	}
	return &System{
		Name:    "Arlo",
		Profile: p,
		Dispatcher: func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewRequestScheduler(ml)
		},
		Allocate: allocate,
		Initial:  allocate,
	}, nil
}

// ArloWithDispatcher assembles Arlo's runtimes and allocation but swaps
// the dispatch policy ("RS", "ILB", "IG", "INFaaS") — the Table 4
// ablation.
func ArloWithDispatcher(lm *model.LatencyModel, slo time.Duration, policy string) (*System, error) {
	s, err := Arlo(lm, slo)
	if err != nil {
		return nil, err
	}
	s.Name = "Arlo/" + policy
	s.Dispatcher = func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
		return dispatch.New(policy, ml)
	}
	return s, nil
}

// ST assembles the uniform zero-padding baseline: one static runtime at
// the model's maximum length, least-loaded dispatch, fixed deployment.
func ST(lm *model.LatencyModel, slo time.Duration) (*System, error) {
	if lm == nil {
		return nil, fmt.Errorf("baselines: nil latency model")
	}
	p, err := profiler.StaticProfile(lm, []int{lm.Arch().MaxLength}, slo)
	if err != nil {
		return nil, err
	}
	return &System{
		Name:    "ST",
		Profile: p,
		Dispatcher: func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewILB(ml) // single level: pure load balance
		},
		Initial: func(g int, _ []float64) ([]int, error) {
			return allocator.SingleRuntimeAllocation(g, 1, 0)
		},
	}, nil
}

// DT assembles the dynamic-compilation baseline: one dynamic runtime
// profiled over the given representative lengths, least-loaded dispatch.
func DT(lm *model.LatencyModel, sampleLengths []int, slo time.Duration) (*System, error) {
	if lm == nil {
		return nil, fmt.Errorf("baselines: nil latency model")
	}
	p, err := profiler.DynamicProfile(lm, sampleLengths, slo)
	if err != nil {
		return nil, err
	}
	return &System{
		Name:    "DT",
		Profile: p,
		Dispatcher: func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewILB(ml)
		},
		Initial: func(g int, _ []float64) ([]int, error) {
			return allocator.SingleRuntimeAllocation(g, 1, 0)
		},
	}, nil
}

// INFaaS assembles the multi-variant baseline: the same runtimes as Arlo
// but bin-packing dispatch and allocation proportional to raw request
// counts — load-aware, not length-aware (section 2.3: it "does not take
// into account the distribution of input lengths").
func INFaaS(lm *model.LatencyModel, slo time.Duration) (*System, error) {
	if lm == nil {
		return nil, fmt.Errorf("baselines: nil latency model")
	}
	p, err := profiler.StaticProfile(lm, lm.Arch().RuntimeLengths(), slo)
	if err != nil {
		return nil, err
	}
	countProportional := func(g int, q []float64) ([]int, error) {
		// Equal per-instance weights: shares follow request counts only.
		flat := make([]int, len(q))
		for i := range flat {
			flat[i] = 1
		}
		return allocator.ProportionalAllocation(g, q, flat)
	}
	return &System{
		Name:    "INFaaS",
		Profile: p,
		Dispatcher: func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
			return dispatch.NewBinPacking(ml)
		},
		Allocate: countProportional,
		Initial:  countProportional,
	}, nil
}

// SimConfig builds a simulator configuration for the system over a trace
// with g GPUs. Warm-up demand for the initial allocation is estimated
// from the first warmup window of the trace itself (the paper bootstraps
// from history); warmup <= 0 uses the whole trace.
func (s *System) SimConfig(tr *trace.Trace, g int, warmup time.Duration) (sim.Config, error) {
	if tr == nil {
		return sim.Config{}, fmt.Errorf("baselines: nil trace")
	}
	if g < 1 {
		return sim.Config{}, fmt.Errorf("baselines: need at least one GPU")
	}
	window := tr
	if warmup > 0 && warmup < tr.Duration {
		window = tr.Clip(0, warmup)
	}
	q := window.BinDemand(s.Profile.MaxLengths(), s.Profile.SLO)
	initial, err := s.Initial(g, q)
	if err != nil {
		return sim.Config{}, fmt.Errorf("baselines: initial allocation for %s: %w", s.Name, err)
	}
	cfg := sim.Config{
		Profile:           s.Profile,
		Trace:             tr,
		InitialAllocation: initial,
		Dispatcher:        s.Dispatcher,
		Allocate:          s.Allocate,
		ReplacementTime:   time.Second,
	}
	if s.Allocate != nil {
		cfg.AllocPeriod = 120 * time.Second
	}
	return cfg, nil
}
