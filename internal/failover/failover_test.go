package failover

import (
	"math/rand"
	"testing"

	"arlo/internal/queue"
)

// refVictim is the naive reference spelling of the selection rule, kept
// deliberately close to the simulator's historical mostLoadedOf /
// mostLoadedAny implementations so PickVictim cannot drift from them.
func refVictim(insts []*queue.Instance, rtIdx int) *queue.Instance {
	var worst *queue.Instance
	for _, in := range insts {
		if rtIdx >= 0 && in.Runtime != rtIdx {
			continue
		}
		if worst == nil {
			worst = in
			continue
		}
		if in.Outstanding() > worst.Outstanding() {
			worst = in
		} else if in.Outstanding() == worst.Outstanding() && in.ID < worst.ID {
			worst = in
		}
	}
	return worst
}

// TestPickVictimMatchesSimRule pins the shared victim-selection rule
// against the reference model over randomized instance sets: most loaded
// wins, ties break toward the smaller ID, -1 means cluster-wide.
func TestPickVictimMatchesSimRule(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(12)
		insts := make([]*queue.Instance, n)
		for i := range insts {
			insts[i] = queue.NewInstance(i, rng.Intn(3), rng.Intn(5), 10)
		}
		// Shuffle so selection cannot depend on slice order.
		rng.Shuffle(n, func(i, j int) { insts[i], insts[j] = insts[j], insts[i] })
		for rt := -1; rt < 3; rt++ {
			got, want := PickVictim(insts, rt), refVictim(insts, rt)
			if got != want {
				t.Fatalf("trial %d rt %d: PickVictim = %v, reference = %v", trial, rt, got, want)
			}
		}
	}
}

func TestPickVictimEmpty(t *testing.T) {
	if v := PickVictim(nil, -1); v != nil {
		t.Errorf("PickVictim(nil) = %v, want nil", v)
	}
	insts := []*queue.Instance{queue.NewInstance(0, 0, 3, 10)}
	if v := PickVictim(insts, 1); v != nil {
		t.Errorf("PickVictim for runtime with no instances = %v, want nil", v)
	}
}

func TestPickVictimPrefersMostLoaded(t *testing.T) {
	insts := []*queue.Instance{
		queue.NewInstance(0, 0, 2, 10),
		queue.NewInstance(1, 0, 7, 10),
		queue.NewInstance(2, 1, 9, 10),
	}
	if v := PickVictim(insts, 0); v.ID != 1 {
		t.Errorf("victim of runtime 0 = %d, want 1 (most loaded)", v.ID)
	}
	if v := PickVictim(insts, -1); v.ID != 2 {
		t.Errorf("cluster-wide victim = %d, want 2 (most loaded anywhere)", v.ID)
	}
}
