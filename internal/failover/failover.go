// Package failover holds the single demotion-on-failure rule shared by
// the discrete-event simulator (internal/sim) and the live cluster
// (internal/cluster), so the two failure models cannot drift apart. The
// paper motivates the Request Scheduler's dynamics-awareness with
// "idiosyncratic factors such as failures and bugs" (section 1): an
// instance crash unbalances load faster than the 120 s Runtime Scheduler
// can react, and the request-level scheduler has to absorb the transient.
//
// # The rule
//
// Both failure models follow the same three steps:
//
//  1. Victim selection: a failure targeting runtime r crashes the MOST
//     loaded instance of r (ties break toward the smaller instance ID);
//     targeting runtime -1 crashes the most loaded instance cluster-wide.
//     The most loaded instance is the worst case the scheduler must
//     absorb — it strands the largest amount of queued work.
//
//  2. Demotion through the normal dispatch path: every request displaced
//     by the crash (queued or in-flight; in-flight work restarts from
//     scratch) re-enters through the ACTIVE dispatch policy with no
//     special placement. Under Algorithm 1 this means displaced work from
//     a dead small-runtime instance degrades gracefully into larger
//     runtimes exactly the way congestion-demoted requests do — the
//     failure path introduces no second routing algorithm.
//
//  3. Bounded displacement: a request can only be displaced a bounded
//     number of times (DefaultRequeueBudget in the live cluster; the
//     simulator's event loop is finite by construction) before it fails
//     with a typed unserviceable error instead of cycling through
//     repeated crashes forever.
//
// TestPickVictimMatchesSimRule (failover_test.go) pins step 1 against a
// naive reference; internal/chaos cross-checks step 2 by running the same
// failure schedule through the simulator and the live cluster and
// comparing the steady-state routing.
package failover

import "arlo/internal/queue"

// DefaultRequeueBudget is how many times the live cluster re-dispatches
// one request displaced by instance failures (or congested during a
// failure transient) before failing it as unserviceable. It is sized to
// survive a couple of back-to-back crashes plus the congestion retries of
// the recovery window without ever allowing livelock.
const DefaultRequeueBudget = 8

// PickVictim returns the failure rule's victim among insts: the most
// loaded instance of runtime rtIdx (any runtime when rtIdx is -1), ties
// broken toward the smaller ID. It returns nil when no instance matches.
// The outstanding counts are read through the instances' atomic loads, so
// the caller needs no additional synchronization beyond holding a
// consistent snapshot of the instance set.
func PickVictim(insts []*queue.Instance, rtIdx int) *queue.Instance {
	var worst *queue.Instance
	for _, in := range insts {
		if rtIdx >= 0 && in.Runtime != rtIdx {
			continue
		}
		if worst == nil || in.Outstanding() > worst.Outstanding() ||
			(in.Outstanding() == worst.Outstanding() && in.ID < worst.ID) {
			worst = in
		}
	}
	return worst
}
