// Package allocator implements Arlo's Runtime Scheduler (paper section
// 3.3): periodically solving the integer program of Eqs. 1-7 to allocate
// GPU instances across the model's runtimes, planning minimal instance
// replacements between consecutive allocations (section 4), and the
// target-tracking auto-scaler that grows and shrinks the cluster under
// load fluctuation.
//
// The allocation program minimizes the demand-weighted mean latency
//
//	min  sum_i L_i(B_i) * C_i                            (Eq. 1)
//	s.t. sum_i N_i = G                                   (Eq. 2)
//	     N_i >= floor(Q_i / M_i)                         (Eq. 3)
//	     R_i = max(R_{i-1} + Q_i - N_i*M_i, 0)           (Eq. 4)
//	     C_i = min(R_{i-1} + Q_i, N_i*M_i), C_I takes all (Eq. 5)
//	     B_i = C_i / N_i                                 (Eq. 6)
//	     N_I >= 1                                        (Eq. 7)
//
// where Q_i is the average demand per SLO window in runtime i's length
// bin, M_i its profiled capacity, and R_i the requests demoted to larger
// runtimes. The paper hands this to GUROBI; the cascade structure admits
// an exact dynamic program over (runtime index, GPUs used) with
// Pareto-pruned (carry-over, cost) states, which this package implements
// in pure Go. On the paper's Table 2 sizes (up to 1000 GPUs, 16 runtimes)
// it solves in well under a second.
package allocator

import (
	"fmt"
	"math"
	"time"

	"arlo/internal/profiler"
)

// Allocation is the result of one Runtime Scheduler decision.
type Allocation struct {
	// N is the number of GPU instances assigned to each runtime, aligned
	// with the profile's runtimes.
	N []int
	// Cost is the objective value: demand-weighted mean latency summed
	// over all processed requests, in seconds (sum L_i(B_i)*C_i).
	Cost float64
	// Relaxed reports that the Eq. 3 lower bounds had to be dropped
	// because the cluster is too small to satisfy them (demand is then
	// absorbed through demotion and the last runtime).
	Relaxed bool
}

// PredictedMean returns the objective converted to a per-request mean
// latency given the total demand the allocation was computed for.
func (a *Allocation) PredictedMean(totalDemand float64) time.Duration {
	if totalDemand <= 0 {
		return 0
	}
	return time.Duration(a.Cost / totalDemand * float64(time.Second))
}

// Solver computes optimal allocations for one profiled model.
type Solver struct {
	Profile *profiler.Profile
}

// NewSolver returns a Solver over the profile.
func NewSolver(p *profiler.Profile) (*Solver, error) {
	if p == nil || len(p.Runtimes) == 0 {
		return nil, fmt.Errorf("allocator: profile with no runtimes")
	}
	return &Solver{Profile: p}, nil
}

// Allocate solves the allocation program for g GPUs and per-runtime demand
// q (requests per SLO window, len equal to the number of runtimes). When
// the Eq. 3 lower bounds are unsatisfiable with g GPUs the solver relaxes
// them and reports Relaxed.
func (s *Solver) Allocate(g int, q []float64) (*Allocation, error) {
	rts := s.Profile.Runtimes
	if len(q) != len(rts) {
		return nil, fmt.Errorf("allocator: demand has %d bins for %d runtimes", len(q), len(rts))
	}
	if g < 1 {
		return nil, fmt.Errorf("allocator: need at least one GPU, got %d", g)
	}
	for i, v := range q {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("allocator: invalid demand %v for runtime %d", v, i)
		}
	}
	minN := make([]int, len(rts))
	total := 0
	for i, rt := range rts {
		minN[i] = int(q[i] / float64(rt.Capacity)) // floor (Eq. 3)
		total += minN[i]
	}
	if minN[len(rts)-1] < 1 {
		total += 1 - minN[len(rts)-1]
		minN[len(rts)-1] = 1 // Eq. 7
	}
	relaxed := false
	if total > g {
		// Not enough GPUs for the SLO lower bounds: drop them, keep Eq. 7.
		relaxed = true
		for i := range minN {
			minN[i] = 0
		}
		minN[len(rts)-1] = 1
	}
	n, cost := s.solveDP(g, q, minN)
	if n == nil {
		return nil, fmt.Errorf("allocator: no feasible allocation for %d GPUs across %d runtimes", g, len(rts))
	}
	return &Allocation{N: n, Cost: cost, Relaxed: relaxed}, nil
}

// dpState is one Pareto-frontier entry: after allocating some prefix of
// runtimes with a given GPU total, carry requests R remain demoted and
// cost has accrued. choice/parent reconstruct the allocation.
type dpState struct {
	carry  float64
	cost   float64
	choice int // N for the runtime that produced this state
	parent int // index of the predecessor state in the previous stage slice
	gPrev  int // GPUs used before this stage's choice
}

// solveDP runs the exact DP. It returns nil when infeasible.
func (s *Solver) solveDP(g int, q []float64, minN []int) ([]int, float64) {
	rts := s.Profile.Runtimes
	numRt := len(rts)
	// minTail[i] = sum of minN over runtimes i..end (GPUs that must be
	// reserved for the remaining stages).
	minTail := make([]int, numRt+1)
	for i := numRt - 1; i >= 0; i-- {
		minTail[i] = minTail[i+1] + minN[i]
	}
	if minTail[0] > g {
		return nil, 0
	}

	// states[gUsed] = Pareto set of (carry, cost) after the current stage.
	type stage map[int][]dpState
	cur := stage{0: {dpState{carry: 0, cost: 0, choice: -1, parent: -1}}}
	// history[i] holds stage i's state slices for reconstruction.
	history := make([]map[int][]dpState, numRt)

	for i := 0; i < numRt; i++ {
		rt := rts[i]
		next := stage{}
		last := i == numRt-1
		for gUsed, sts := range cur {
			avail := g - gUsed - minTail[i+1]
			if avail < minN[i] {
				continue
			}
			for si, st := range sts {
				inflow := st.carry + q[i]
				// Useful N caps at ceil(inflow): beyond it every request
				// runs immediately (B <= 1) and extra GPUs are better
				// spent later; the last runtime absorbs all leftovers.
				hi := avail
				if !last {
					if useful := int(math.Ceil(inflow)); useful < hi {
						hi = useful
					}
					if hi < minN[i] {
						hi = minN[i]
					}
				} else {
					hi = avail // Eq. 2: all remaining GPUs go to the last runtime
				}
				lo := minN[i]
				if last {
					lo = avail
				}
				for n := lo; n <= hi; n++ {
					carry, term := stageCost(rt, inflow, n, last)
					ns := dpState{
						carry:  carry,
						cost:   st.cost + term,
						choice: n,
						parent: si,
						gPrev:  gUsed,
					}
					key := gUsed + n
					next[key] = paretoInsert(next[key], ns)
				}
			}
		}
		history[i] = next
		cur = next
	}

	// The answer is the min-cost state with exactly g GPUs used.
	finals, ok := cur[g]
	if !ok || len(finals) == 0 {
		return nil, 0
	}
	bestIdx := 0
	for i := 1; i < len(finals); i++ {
		if finals[i].cost < finals[bestIdx].cost {
			bestIdx = i
		}
	}
	// Reconstruct choices back through the stages.
	n := make([]int, numRt)
	st := finals[bestIdx]
	gUsed := g
	for i := numRt - 1; i >= 0; i-- {
		n[i] = st.choice
		if i > 0 {
			prev := history[i-1][st.gPrev]
			gUsed = st.gPrev
			st = prev[st.parent]
			_ = gUsed
		}
	}
	return n, finals[bestIdx].cost
}

// stageCost evaluates Eqs. 4-6 for one runtime: given inflow = R_{i-1} +
// Q_i and N instances, it returns the demoted carry R_i and the objective
// term L_i(B_i) * C_i in seconds. With N = 0 nothing is processed and
// everything is demoted. The last runtime processes all inflow (Eq. 5).
func stageCost(rt profiler.Runtime, inflow float64, n int, last bool) (carry, term float64) {
	if n <= 0 {
		if last {
			// Unreachable by construction (Eq. 7) but defensive.
			return 0, math.Inf(1)
		}
		return inflow, 0
	}
	capacity := float64(n) * float64(rt.Capacity)
	var c float64
	if last {
		c = inflow
		carry = 0
	} else {
		c = math.Min(inflow, capacity)
		carry = inflow - c
		if carry < 1e-12 {
			carry = 0
		}
	}
	if c <= 0 {
		return carry, 0
	}
	b := c / float64(n)
	term = rt.MeanLatency(b).Seconds() * c
	return carry, term
}

// paretoInsert adds a state to a Pareto frontier ordered by carry: a state
// is kept only if no existing state has both carry <= and cost <= its own
// (with strict improvement in one).
func paretoInsert(frontier []dpState, s dpState) []dpState {
	const tol = 1e-12
	// If any existing state dominates s, the frontier is unchanged.
	for _, f := range frontier {
		if f.carry <= s.carry+tol && f.cost <= s.cost+tol {
			return frontier
		}
	}
	// Otherwise drop states s dominates and append s. Filtering in place
	// is safe: the slice is owned exclusively by this stage's map entry.
	kept := frontier[:0]
	for _, f := range frontier {
		if s.carry <= f.carry+tol && s.cost <= f.cost+tol {
			continue
		}
		kept = append(kept, f)
	}
	return append(kept, s)
}

// EvaluateObjective computes the Eq. 1 objective for an explicit
// allocation n against demand q: sum over runtimes of L_i(B_i)*C_i, in
// seconds. It mirrors stageCost and is used to validate the DP and to
// score the Table 3 baseline allocations.
func EvaluateObjective(p *profiler.Profile, q []float64, n []int) (float64, error) {
	if len(q) != len(p.Runtimes) || len(n) != len(p.Runtimes) {
		return 0, fmt.Errorf("allocator: dimension mismatch (%d runtimes, %d demands, %d allocations)", len(p.Runtimes), len(q), len(n))
	}
	if n[len(n)-1] < 1 {
		return 0, fmt.Errorf("allocator: last runtime must have at least one instance (Eq. 7)")
	}
	carry := 0.0
	total := 0.0
	for i, rt := range p.Runtimes {
		last := i == len(n)-1
		c, term := stageCost(rt, carry+q[i], n[i], last)
		carry = c
		total += term
	}
	return total, nil
}
