package allocator

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"arlo/internal/model"
	"arlo/internal/profiler"
)

func TestAllocateMILPValidation(t *testing.T) {
	s := newSolver(t, bertBaseProfile(t))
	if _, err := s.AllocateMILP(10, []float64{1}); err == nil {
		t.Error("dimension mismatch should fail")
	}
	if _, err := s.AllocateMILP(0, make([]float64, 8)); err == nil {
		t.Error("zero GPUs should fail")
	}
	bad := make([]float64, 8)
	bad[0] = math.Inf(1)
	if _, err := s.AllocateMILP(10, bad); err == nil {
		t.Error("infinite demand should fail")
	}
	// No-demotion variant needs ceil bounds satisfiable.
	heavy := make([]float64, 8)
	for i, rt := range s.Profile.Runtimes {
		heavy[i] = 3 * float64(rt.Capacity)
	}
	if _, err := s.AllocateMILP(4, heavy); err == nil {
		t.Error("insufficient pool should fail the no-demotion variant")
	}
}

func TestAllocateMILPConserves(t *testing.T) {
	lm := model.BertBase()
	p, err := profiler.StaticProfile(lm, []int{128, 256, 512}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s := newSolver(t, p)
	q := []float64{150, 40, 10}
	a, err := s.AllocateMILP(8, q)
	if err != nil {
		t.Fatal(err)
	}
	if sumInts(a.N) != 8 {
		t.Errorf("MILP allocation %v does not sum to 8", a.N)
	}
	if a.N[2] < 1 {
		t.Errorf("Eq. 7 violated: %v", a.N)
	}
	for i, rt := range p.Runtimes {
		if need := int(math.Ceil(q[i] / float64(rt.Capacity))); a.N[i] < need {
			t.Errorf("runtime %d: N=%d below no-demotion bound %d", i, a.N[i], need)
		}
	}
}

// TestMILPMatchesDPWithoutDemotion cross-checks the MILP backend against
// the exact Pareto-DP solver on instances where the optimum performs no
// demotion (plentiful capacity): both must find the same objective.
func TestMILPMatchesDPWithoutDemotion(t *testing.T) {
	lm := model.BertBase()
	p, err := profiler.StaticProfile(lm, []int{128, 256, 512}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s := newSolver(t, p)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		g := 6 + rng.Intn(6)
		q := make([]float64, 3)
		for i, rt := range p.Runtimes {
			// Light demand: at most ~60% of one instance per bin, so the
			// optimum never demotes.
			q[i] = math.Floor(rng.Float64() * 0.6 * float64(rt.Capacity))
		}
		dp, err := s.Allocate(g, q)
		if err != nil {
			t.Fatalf("trial %d: DP: %v", trial, err)
		}
		milp, err := s.AllocateMILP(g, q)
		if err != nil {
			t.Fatalf("trial %d: MILP: %v", trial, err)
		}
		if math.Abs(dp.Cost-milp.Cost) > 1e-9*(1+dp.Cost) {
			t.Errorf("trial %d: DP cost %.12f != MILP cost %.12f (g=%d q=%v dp=%v milp=%v)",
				trial, dp.Cost, milp.Cost, g, q, dp.N, milp.N)
		}
	}
}

// TestMILPNeverBeatsDP: the DP solves a relaxation of the MILP's
// no-demotion program, so the DP's cost is a lower bound.
func TestMILPNeverBeatsDP(t *testing.T) {
	lm := model.BertBase()
	p, err := profiler.StaticProfile(lm, []int{128, 256, 512}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s := newSolver(t, p)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		g := 5 + rng.Intn(8)
		q := make([]float64, 3)
		for i, rt := range p.Runtimes {
			q[i] = math.Floor(rng.Float64() * 1.4 * float64(rt.Capacity))
		}
		milp, err := s.AllocateMILP(g, q)
		if err != nil {
			continue // no-demotion variant may be infeasible; fine
		}
		dp, err := s.Allocate(g, q)
		if err != nil {
			t.Fatalf("trial %d: DP: %v", trial, err)
		}
		if dp.Cost > milp.Cost+1e-9*(1+milp.Cost) {
			t.Errorf("trial %d: DP cost %.12f exceeds MILP cost %.12f", trial, dp.Cost, milp.Cost)
		}
	}
}
