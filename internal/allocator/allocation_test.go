package allocator

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"arlo/internal/model"
	"arlo/internal/profiler"
)

func bertBaseProfile(t testing.TB) *profiler.Profile {
	t.Helper()
	lm := model.BertBase()
	p, err := profiler.StaticProfile(lm, lm.Arch().RuntimeLengths(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newSolver(t testing.TB, p *profiler.Profile) *Solver {
	t.Helper()
	s, err := NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSolverValidation(t *testing.T) {
	if _, err := NewSolver(nil); err == nil {
		t.Error("nil profile should fail")
	}
	if _, err := NewSolver(&profiler.Profile{}); err == nil {
		t.Error("empty profile should fail")
	}
}

func TestAllocateValidation(t *testing.T) {
	s := newSolver(t, bertBaseProfile(t))
	if _, err := s.Allocate(10, []float64{1, 2}); err == nil {
		t.Error("demand dimension mismatch should fail")
	}
	if _, err := s.Allocate(0, make([]float64, 8)); err == nil {
		t.Error("zero GPUs should fail")
	}
	bad := make([]float64, 8)
	bad[3] = math.NaN()
	if _, err := s.Allocate(10, bad); err == nil {
		t.Error("NaN demand should fail")
	}
	bad[3] = -1
	if _, err := s.Allocate(10, bad); err == nil {
		t.Error("negative demand should fail")
	}
}

func TestAllocateBasicInvariants(t *testing.T) {
	p := bertBaseProfile(t)
	s := newSolver(t, p)
	q := []float64{400, 200, 100, 60, 30, 15, 8, 4}
	g := 12
	a, err := s.Allocate(g, q)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for i, n := range a.N {
		if n < 0 {
			t.Errorf("negative allocation at runtime %d", i)
		}
		sum += n
	}
	if sum != g {
		t.Errorf("allocations sum to %d, want %d (Eq. 2)", sum, g)
	}
	if a.N[len(a.N)-1] < 1 {
		t.Error("largest runtime must get at least one instance (Eq. 7)")
	}
	if a.Relaxed {
		t.Error("12 GPUs should satisfy the Eq. 3 bounds for this demand")
	}
	// Eq. 3 lower bounds.
	for i, rt := range p.Runtimes {
		if minN := int(q[i] / float64(rt.Capacity)); a.N[i] < minN {
			t.Errorf("runtime %d: N=%d below Eq. 3 bound %d", i, a.N[i], minN)
		}
	}
	// Objective agrees with the standalone evaluator.
	obj, err := EvaluateObjective(p, q, a.N)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-a.Cost) > 1e-9 {
		t.Errorf("solver cost %v != evaluated %v", a.Cost, obj)
	}
	if a.PredictedMean(sumFloats(q)) <= 0 {
		t.Error("predicted mean should be positive")
	}
	if a.PredictedMean(0) != 0 {
		t.Error("zero demand should predict zero mean")
	}
}

func sumFloats(q []float64) float64 {
	s := 0.0
	for _, v := range q {
		s += v
	}
	return s
}

// TestAllocateOptimalVsBruteForce exhaustively enumerates all feasible
// allocations on small instances and checks the DP matches the optimum.
func TestAllocateOptimalVsBruteForce(t *testing.T) {
	lm := model.BertBase()
	p, err := profiler.StaticProfile(lm, []int{128, 256, 384, 512}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s := newSolver(t, p)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		g := 3 + rng.Intn(8)
		q := make([]float64, 4)
		for i := range q {
			q[i] = math.Floor(rng.Float64()*float64(p.Runtimes[i].Capacity)*2.5*10) / 10
		}
		a, err := s.Allocate(g, q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Brute force over all compositions of g into 4 parts.
		best := math.Inf(1)
		minN := make([]int, 4)
		feasible := true
		need := 0
		for i, rt := range p.Runtimes {
			minN[i] = int(q[i] / float64(rt.Capacity))
			need += minN[i]
		}
		if minN[3] < 1 {
			need += 1 - minN[3]
			minN[3] = 1
		}
		if need > g {
			feasible = false
		}
		if !feasible {
			if !a.Relaxed {
				t.Errorf("trial %d: expected relaxed allocation", trial)
			}
			continue
		}
		for n0 := minN[0]; n0 <= g; n0++ {
			for n1 := minN[1]; n0+n1 <= g; n1++ {
				for n2 := minN[2]; n0+n1+n2 <= g; n2++ {
					n3 := g - n0 - n1 - n2
					if n3 < minN[3] {
						continue
					}
					obj, err := EvaluateObjective(p, q, []int{n0, n1, n2, n3})
					if err != nil {
						t.Fatal(err)
					}
					if obj < best {
						best = obj
					}
				}
			}
		}
		if a.Cost > best+1e-9 {
			t.Errorf("trial %d: DP cost %.9f exceeds brute-force optimum %.9f (g=%d q=%v N=%v)",
				trial, a.Cost, best, g, q, a.N)
		}
	}
}

func TestAllocateFavorsLoadedBins(t *testing.T) {
	// All demand in the shortest bin: almost all GPUs should serve the
	// shortest runtime (modulo Eq. 7).
	p := bertBaseProfile(t)
	s := newSolver(t, p)
	q := make([]float64, 8)
	q[0] = 1000
	a, err := s.Allocate(10, q)
	if err != nil {
		t.Fatal(err)
	}
	if a.N[0] < 8 {
		t.Errorf("expected most GPUs on runtime 0, got %v", a.N)
	}
	if a.N[7] < 1 {
		t.Errorf("Eq. 7 violated: %v", a.N)
	}
}

func TestAllocateRelaxesWhenClusterTooSmall(t *testing.T) {
	p := bertBaseProfile(t)
	s := newSolver(t, p)
	// Demand far above what 2 GPUs can host under Eq. 3.
	q := []float64{5000, 4000, 3000, 2000, 1500, 1000, 800, 500}
	a, err := s.Allocate(2, q)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Relaxed {
		t.Error("expected relaxed allocation")
	}
	if a.N[len(a.N)-1] < 1 {
		t.Error("Eq. 7 must survive relaxation")
	}
	if sumInts(a.N) != 2 {
		t.Errorf("allocation must still use exactly 2 GPUs, got %v", a.N)
	}
}

func sumInts(n []int) int {
	s := 0
	for _, v := range n {
		s += v
	}
	return s
}

func TestAllocateZeroDemandParksOnLargest(t *testing.T) {
	p := bertBaseProfile(t)
	s := newSolver(t, p)
	a, err := s.Allocate(5, make([]float64, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != 0 {
		t.Errorf("zero demand should cost 0, got %v", a.Cost)
	}
	if sumInts(a.N) != 5 {
		t.Errorf("must still place all GPUs: %v", a.N)
	}
}

func TestEvaluateObjectiveValidation(t *testing.T) {
	p := bertBaseProfile(t)
	if _, err := EvaluateObjective(p, []float64{1}, []int{1}); err == nil {
		t.Error("dimension mismatch should fail")
	}
	n := make([]int, 8)
	if _, err := EvaluateObjective(p, make([]float64, 8), n); err == nil {
		t.Error("Eq. 7 violation should fail")
	}
}

func TestEvaluateObjectiveDemotionCascade(t *testing.T) {
	// Demand overflowing runtime 0's capacity must be demoted and priced
	// at runtime 1's latency.
	lm := model.BertBase()
	p, err := profiler.StaticProfile(lm, []int{64, 512}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cap0 := float64(p.Runtimes[0].Capacity)
	q := []float64{cap0 * 1.5, 0} // one instance of runtime 0 oversubscribed by 50%
	obj, err := EvaluateObjective(p, q, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Runtime 0 processes cap0 requests (saturated); 0.5*cap0 demote to
	// runtime 1 and are priced at its latency curve.
	demoted := 0.5 * cap0
	want := p.Runtimes[0].MeanLatency(cap0).Seconds()*cap0 +
		p.Runtimes[1].MeanLatency(demoted).Seconds()*demoted
	if math.Abs(obj-want)/want > 1e-9 {
		t.Errorf("objective = %v, want %v", obj, want)
	}
}

func TestAllocateDeterministic(t *testing.T) {
	p := bertBaseProfile(t)
	s := newSolver(t, p)
	q := []float64{100, 80, 60, 40, 20, 10, 5, 2}
	a1, err := s.Allocate(16, q)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Allocate(16, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.N {
		if a1.N[i] != a2.N[i] {
			t.Fatalf("non-deterministic allocation: %v vs %v", a1.N, a2.N)
		}
	}
}

func TestAllocateLargeScaleFinishesQuickly(t *testing.T) {
	// Table 2's largest configuration: 1000 GPUs, 16 runtimes. The paper
	// reports 2.6 s with GUROBI; our DP must stay in the same ballpark.
	lm := model.BertLarge()
	p, err := profiler.StaticProfile(lm, lm.Arch().RuntimeLengthsN(16), 450*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s := newSolver(t, p)
	q := make([]float64, 16)
	for i := range q {
		// Twitter-like: heavy short-bin demand decaying toward long bins.
		q[i] = 3000 * math.Exp(-0.45*float64(i))
	}
	start := time.Now()
	a, err := s.Allocate(1000, q)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if sumInts(a.N) != 1000 {
		t.Errorf("allocation sums to %d, want 1000", sumInts(a.N))
	}
	if elapsed > 10*time.Second {
		t.Errorf("1000-GPU solve took %v, want well under 10s", elapsed)
	}
	t.Logf("1000 GPUs / 16 runtimes solved in %v, N=%v", elapsed, a.N)
}
