package allocator

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func applyPlan(t *testing.T, current []int, plan []Replacement) []int {
	t.Helper()
	out := make([]int, len(current))
	copy(out, current)
	for _, r := range plan {
		if out[r.From] <= 0 {
			t.Fatalf("plan removes an instance from empty runtime %d", r.From)
		}
		out[r.From]--
		out[r.To]++
	}
	return out
}

func TestPlanReplacements(t *testing.T) {
	current := []int{4, 2, 1, 1}
	target := []int{2, 3, 1, 2}
	plan, err := PlanReplacements(current, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("plan has %d replacements, want 2 (half the L1 distance)", len(plan))
	}
	got := applyPlan(t, current, plan)
	for i := range target {
		if got[i] != target[i] {
			t.Fatalf("plan result %v, want %v", got, target)
		}
	}
}

func TestPlanReplacementsNoChange(t *testing.T) {
	plan, err := PlanReplacements([]int{3, 3}, []int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 0 {
		t.Errorf("identical plans need no replacements, got %d", len(plan))
	}
}

func TestPlanReplacementsValidation(t *testing.T) {
	if _, err := PlanReplacements([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := PlanReplacements([]int{1, 2}, []int{2, 2}); err == nil {
		t.Error("GPU count mismatch should fail")
	}
	if _, err := PlanReplacements([]int{-1, 4}, []int{1, 2}); err == nil {
		t.Error("negative counts should fail")
	}
}

func TestPlanReplacementsMinimalQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(8)
		current := make([]int, k)
		target := make([]int, k)
		total := 0
		for i := range current {
			current[i] = rng.Intn(10)
			total += current[i]
		}
		// Random redistribution of the same total.
		left := total
		for i := 0; i < k-1; i++ {
			target[i] = rng.Intn(left + 1)
			left -= target[i]
		}
		target[k-1] = left
		plan, err := PlanReplacements(current, target)
		if err != nil {
			return false
		}
		// Minimality: |plan| == sum of positive deltas.
		wantLen := 0
		for i := range current {
			if d := current[i] - target[i]; d > 0 {
				wantLen += d
			}
		}
		if len(plan) != wantLen {
			return false
		}
		// Correctness: applying the plan reaches the target.
		out := make([]int, k)
		copy(out, current)
		for _, r := range plan {
			if out[r.From] <= 0 {
				return false
			}
			out[r.From]--
			out[r.To]++
		}
		for i := range target {
			if out[i] != target[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBatches(t *testing.T) {
	plan := []Replacement{{0, 1}, {0, 2}, {1, 2}, {3, 0}, {3, 1}}
	batches := Batches(plan, 2)
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3", len(batches))
	}
	if len(batches[0]) != 2 || len(batches[2]) != 1 {
		t.Errorf("bad batch sizes: %d, %d, %d", len(batches[0]), len(batches[1]), len(batches[2]))
	}
	if got := Batches(plan, 0); len(got) != 5 {
		t.Errorf("non-positive batch size should default to 1, got %d batches", len(got))
	}
	if got := Batches(nil, 3); got != nil {
		t.Error("empty plan should produce no batches")
	}
}
