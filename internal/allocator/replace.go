package allocator

import "fmt"

// Replacement is one instance switching runtimes: a GPU currently serving
// runtime From is flushed and reloaded with runtime To. A replacement
// takes about one second in the paper's prototype (section 4).
type Replacement struct {
	From, To int
}

// PlanReplacements computes a minimal replacement plan turning the current
// per-runtime instance counts into the target counts. The number of
// replacements is exactly half the L1 distance between the two count
// vectors — no instance is touched unless its runtime's count must change
// (section 4, "replaces the minimum number of current runtime instances").
// Both vectors must have equal length and equal sums.
func PlanReplacements(current, target []int) ([]Replacement, error) {
	if len(current) != len(target) {
		return nil, fmt.Errorf("allocator: current has %d runtimes, target %d", len(current), len(target))
	}
	sumC, sumT := 0, 0
	for i := range current {
		if current[i] < 0 || target[i] < 0 {
			return nil, fmt.Errorf("allocator: negative instance count at runtime %d", i)
		}
		sumC += current[i]
		sumT += target[i]
	}
	if sumC != sumT {
		return nil, fmt.Errorf("allocator: plans must conserve GPUs (current %d, target %d)", sumC, sumT)
	}
	var surplus, deficit []int // runtime indexes, with multiplicity
	for i := range current {
		for d := current[i] - target[i]; d > 0; d-- {
			surplus = append(surplus, i)
		}
		for d := target[i] - current[i]; d > 0; d-- {
			deficit = append(deficit, i)
		}
	}
	plan := make([]Replacement, len(surplus))
	for k := range surplus {
		plan[k] = Replacement{From: surplus[k], To: deficit[k]}
	}
	return plan, nil
}

// Batches splits a replacement plan into batches of at most batchSize so
// replacements roll out gradually and uninvolved instances absorb traffic
// in the meantime (section 4, "carried out in small batches").
func Batches(plan []Replacement, batchSize int) [][]Replacement {
	if batchSize <= 0 {
		batchSize = 1
	}
	var out [][]Replacement
	for start := 0; start < len(plan); start += batchSize {
		end := start + batchSize
		if end > len(plan) {
			end = len(plan)
		}
		out = append(out, plan[start:end])
	}
	return out
}
