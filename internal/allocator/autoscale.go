package allocator

import (
	"fmt"
	"time"
)

// ScaleAction is an auto-scaler decision.
type ScaleAction int

const (
	// ScaleNone keeps the cluster size.
	ScaleNone ScaleAction = iota
	// ScaleOut adds one GPU worker, loaded with the maximum-length
	// runtime so it can immediately absorb any request.
	ScaleOut
	// ScaleIn releases the least busy instance.
	ScaleIn
)

// String returns the action name.
func (a ScaleAction) String() string {
	switch a {
	case ScaleNone:
		return "none"
	case ScaleOut:
		return "scale-out"
	case ScaleIn:
		return "scale-in"
	default:
		return fmt.Sprintf("ScaleAction(%d)", int(a))
	}
}

// AutoScaler implements the paper's target-tracking scaling policy
// (section 4): a worker is added when the p98 latency of recently executed
// requests reaches 95% of the SLO; the least busy instance is released
// when the p98 stays below 50% of the SLO over a 60-second evaluation
// period. The Runtime Scheduler re-optimizes the allocation after every
// action.
type AutoScaler struct {
	// SLO is the stream's latency objective.
	SLO time.Duration
	// OutFraction and InFraction are the p98/SLO thresholds (defaults
	// 0.95 and 0.50).
	OutFraction, InFraction float64
	// InPeriod is the scale-in evaluation period (default 60 s).
	InPeriod time.Duration
	// OutCooldown rate-limits consecutive scale-outs (default 5 s) so one
	// burst does not add a worker per observation tick.
	OutCooldown time.Duration
	// MinGPUs and MaxGPUs clamp the cluster size (defaults 1 and no cap).
	MinGPUs, MaxGPUs int

	lastOut     time.Duration
	inWindowOK  bool // p98 stayed under the scale-in threshold all window
	windowStart time.Duration
	started     bool
}

// NewAutoScaler returns an AutoScaler with the paper's defaults for the
// given SLO.
func NewAutoScaler(slo time.Duration) (*AutoScaler, error) {
	if slo <= 0 {
		return nil, fmt.Errorf("allocator: autoscaler needs a positive SLO, got %v", slo)
	}
	return &AutoScaler{
		SLO:         slo,
		OutFraction: 0.95,
		InFraction:  0.50,
		InPeriod:    60 * time.Second,
		OutCooldown: 5 * time.Second,
		MinGPUs:     1,
	}, nil
}

// Observe feeds one periodic observation: the p98 latency of recently
// completed requests at virtual time now with the given current GPU count.
// It returns the action to take. Callers apply the action and continue
// observing.
func (a *AutoScaler) Observe(now time.Duration, p98 time.Duration, gpus int) ScaleAction {
	if !a.started {
		a.started = true
		a.windowStart = now
		a.inWindowOK = true
		a.lastOut = now - a.OutCooldown // allow an immediate first scale-out
	}
	outThresh := time.Duration(a.OutFraction * float64(a.SLO))
	inThresh := time.Duration(a.InFraction * float64(a.SLO))

	if p98 >= outThresh {
		a.inWindowOK = false
		a.windowStart = now // any pressure restarts the scale-in window
		if now-a.lastOut >= a.OutCooldown && (a.MaxGPUs <= 0 || gpus < a.MaxGPUs) {
			a.lastOut = now
			return ScaleOut
		}
		return ScaleNone
	}
	if p98 >= inThresh {
		// Comfortable but not idle: reset the scale-in window.
		a.inWindowOK = true
		a.windowStart = now
		return ScaleNone
	}
	// Below the scale-in threshold: release a worker only after a full
	// quiet period.
	if !a.inWindowOK {
		a.inWindowOK = true
		a.windowStart = now
		return ScaleNone
	}
	if now-a.windowStart >= a.InPeriod && gpus > a.MinGPUs {
		a.windowStart = now
		return ScaleIn
	}
	return ScaleNone
}

// Scaler abstracts the auto-scaling policy the serving loop consults:
// target tracking (AutoScaler, Arlo's choice) or headroom-based
// (HeadroomScaler, the INFaaS-style heuristic the paper equips ST, DT and
// INFaaS with). Observations carry both the recent p98 latency and the
// cluster's queue utilization so either signal can drive the decision.
type Scaler interface {
	// ObserveLoad reports the recent p98 latency and the cluster-wide
	// queue utilization (outstanding work / SLO capacity, 0..1+) at
	// virtual time now with the current GPU count, returning an action.
	ObserveLoad(now time.Duration, p98 time.Duration, utilization float64, gpus int) ScaleAction
}

// ObserveLoad implements Scaler for the target-tracking policy: it keys
// on the latency signal and ignores utilization.
func (a *AutoScaler) ObserveLoad(now time.Duration, p98 time.Duration, _ float64, gpus int) ScaleAction {
	return a.Observe(now, p98, gpus)
}

// HeadroomScaler is the INFaaS-style heuristic (paper section 5,
// "Compared schemes"): keep a utilization headroom by adding a worker
// when cluster queue utilization exceeds OutThreshold and releasing one
// when it stays under InThreshold for a full InPeriod. It never looks at
// latency.
type HeadroomScaler struct {
	// OutThreshold triggers scale-out (default 0.8).
	OutThreshold float64
	// InThreshold arms scale-in (default 0.3).
	InThreshold float64
	// InPeriod is how long utilization must stay low (default 60 s).
	InPeriod time.Duration
	// OutCooldown rate-limits scale-outs (default 5 s).
	OutCooldown time.Duration
	// MinGPUs/MaxGPUs clamp the pool (defaults 1 / unbounded).
	MinGPUs, MaxGPUs int

	started     bool
	lastOut     time.Duration
	windowStart time.Duration
}

// NewHeadroomScaler returns a HeadroomScaler with the defaults above.
func NewHeadroomScaler() *HeadroomScaler {
	return &HeadroomScaler{
		OutThreshold: 0.8,
		InThreshold:  0.3,
		InPeriod:     60 * time.Second,
		OutCooldown:  5 * time.Second,
		MinGPUs:      1,
	}
}

// ObserveLoad implements Scaler.
func (h *HeadroomScaler) ObserveLoad(now time.Duration, _ time.Duration, utilization float64, gpus int) ScaleAction {
	if !h.started {
		h.started = true
		h.windowStart = now
		h.lastOut = now - h.OutCooldown
	}
	if utilization >= h.OutThreshold {
		h.windowStart = now
		if now-h.lastOut >= h.OutCooldown && (h.MaxGPUs <= 0 || gpus < h.MaxGPUs) {
			h.lastOut = now
			return ScaleOut
		}
		return ScaleNone
	}
	if utilization >= h.InThreshold {
		h.windowStart = now
		return ScaleNone
	}
	if now-h.windowStart >= h.InPeriod && gpus > h.MinGPUs {
		h.windowStart = now
		return ScaleIn
	}
	return ScaleNone
}
