package allocator

import (
	"math/rand"
	"testing"
)

// randomSplit spreads g GPUs across levels runtimes with a seeded draw.
func randomSplit(rng *rand.Rand, g, levels int) []int {
	counts := make([]int, levels)
	for i := 0; i < g; i++ {
		counts[rng.Intn(levels)]++
	}
	return counts
}

// FuzzPlanReplacements fuzzes the replacement planner over random
// same-sum topology pairs and checks the section 4 properties on every
// draw:
//
//   - the plan exists for any conserving pair (the planner must never
//     reject a reachable target);
//   - minimality: |plan| is exactly half the L1 distance between the
//     vectors — no instance moves unless its runtime's count must change;
//   - applying the plan step by step never drives a count negative and
//     lands exactly on the target.
func FuzzPlanReplacements(f *testing.F) {
	f.Add(int64(1), uint8(2), uint16(4))
	f.Add(int64(7), uint8(8), uint16(64))
	f.Add(int64(42), uint8(1), uint16(0))
	f.Add(int64(-3), uint8(16), uint16(200))
	f.Fuzz(func(t *testing.T, seed int64, levels uint8, gpus uint16) {
		L := int(levels)%16 + 1
		g := int(gpus) % 256
		rng := rand.New(rand.NewSource(seed))
		current := randomSplit(rng, g, L)
		target := randomSplit(rng, g, L)

		plan, err := PlanReplacements(current, target)
		if err != nil {
			t.Fatalf("conserving pair rejected: %v (current %v, target %v)", err, current, target)
		}

		l1 := 0
		for i := range current {
			d := current[i] - target[i]
			if d < 0 {
				d = -d
			}
			l1 += d
		}
		if len(plan) != l1/2 {
			t.Fatalf("plan size %d, want L1/2 = %d (current %v, target %v)", len(plan), l1/2, current, target)
		}

		state := append([]int(nil), current...)
		for k, rep := range plan {
			if rep.From < 0 || rep.From >= L || rep.To < 0 || rep.To >= L {
				t.Fatalf("step %d references runtime outside [0,%d): %+v", k, L, rep)
			}
			state[rep.From]--
			state[rep.To]++
			if state[rep.From] < 0 {
				t.Fatalf("step %d drains runtime %d below zero (current %v, target %v)", k, rep.From, current, target)
			}
		}
		for i := range state {
			if state[i] != target[i] {
				t.Fatalf("plan does not reach target: ended %v, want %v (from %v)", state, target, current)
			}
		}
	})
}
