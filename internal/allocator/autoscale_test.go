package allocator

import (
	"testing"
	"time"
)

func newScaler(t *testing.T) *AutoScaler {
	t.Helper()
	a, err := NewAutoScaler(450 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAutoScalerValidation(t *testing.T) {
	if _, err := NewAutoScaler(0); err == nil {
		t.Error("zero SLO should fail")
	}
}

func TestScaleOutOnPressure(t *testing.T) {
	a := newScaler(t)
	// p98 at 95% of the SLO triggers an immediate scale-out.
	if got := a.Observe(0, 428*time.Millisecond, 5); got != ScaleOut {
		t.Errorf("action = %v, want scale-out", got)
	}
	// Cooldown suppresses an immediate second scale-out.
	if got := a.Observe(time.Second, 440*time.Millisecond, 6); got != ScaleNone {
		t.Errorf("action during cooldown = %v, want none", got)
	}
	// After the cooldown, pressure scales out again.
	if got := a.Observe(7*time.Second, 440*time.Millisecond, 6); got != ScaleOut {
		t.Errorf("action after cooldown = %v, want scale-out", got)
	}
}

func TestScaleOutRespectsMax(t *testing.T) {
	a := newScaler(t)
	a.MaxGPUs = 5
	if got := a.Observe(0, 449*time.Millisecond, 5); got != ScaleNone {
		t.Errorf("at MaxGPUs action = %v, want none", got)
	}
}

func TestScaleInAfterQuietPeriod(t *testing.T) {
	a := newScaler(t)
	low := 100 * time.Millisecond // < 50% of 450 ms
	if got := a.Observe(0, low, 8); got != ScaleNone {
		t.Errorf("first observation = %v, want none", got)
	}
	if got := a.Observe(30*time.Second, low, 8); got != ScaleNone {
		t.Errorf("mid-window = %v, want none", got)
	}
	if got := a.Observe(61*time.Second, low, 8); got != ScaleIn {
		t.Errorf("after 60s quiet = %v, want scale-in", got)
	}
	// The window restarts after an action.
	if got := a.Observe(62*time.Second, low, 7); got != ScaleNone {
		t.Errorf("right after scale-in = %v, want none", got)
	}
}

func TestScaleInBlockedByPressureSpike(t *testing.T) {
	a := newScaler(t)
	low := 100 * time.Millisecond
	mid := 300 * time.Millisecond // between 50% and 95%
	a.Observe(0, low, 8)
	a.Observe(30*time.Second, mid, 8) // comfort-zone reading resets the window
	if got := a.Observe(61*time.Second, low, 8); got != ScaleNone {
		t.Errorf("window should have been reset, got %v", got)
	}
	if got := a.Observe(91*time.Second, low, 8); got != ScaleIn {
		t.Errorf("after fresh 60s quiet = %v, want scale-in", got)
	}
}

func TestScaleInRespectsMin(t *testing.T) {
	a := newScaler(t)
	a.MinGPUs = 3
	low := 50 * time.Millisecond
	a.Observe(0, low, 3)
	if got := a.Observe(2*time.Minute, low, 3); got != ScaleNone {
		t.Errorf("at MinGPUs action = %v, want none", got)
	}
}

func TestPressureResetsQuietWindow(t *testing.T) {
	a := newScaler(t)
	low := 50 * time.Millisecond
	hot := 440 * time.Millisecond
	a.Observe(0, low, 4)
	a.Observe(50*time.Second, hot, 4) // scale-out likely; window must reset
	if got := a.Observe(70*time.Second, low, 5); got == ScaleIn {
		t.Error("quiet window must restart after pressure")
	}
	if got := a.Observe(131*time.Second, low, 5); got != ScaleIn {
		t.Errorf("after a full fresh window = %v, want scale-in", got)
	}
}

func TestScaleActionString(t *testing.T) {
	if ScaleNone.String() != "none" || ScaleOut.String() != "scale-out" || ScaleIn.String() != "scale-in" {
		t.Error("bad action strings")
	}
	if ScaleAction(9).String() == "" {
		t.Error("unknown action should still print")
	}
}

func TestHeadroomScalerScalesOutOnUtilization(t *testing.T) {
	h := NewHeadroomScaler()
	if got := h.ObserveLoad(0, 0, 0.85, 5); got != ScaleOut {
		t.Errorf("85%% utilization = %v, want scale-out", got)
	}
	// Cooldown suppresses back-to-back scale-outs.
	if got := h.ObserveLoad(time.Second, 0, 0.9, 6); got != ScaleNone {
		t.Errorf("during cooldown = %v, want none", got)
	}
	if got := h.ObserveLoad(7*time.Second, 0, 0.9, 6); got != ScaleOut {
		t.Errorf("after cooldown = %v, want scale-out", got)
	}
}

func TestHeadroomScalerScalesInAfterQuiet(t *testing.T) {
	h := NewHeadroomScaler()
	if got := h.ObserveLoad(0, 0, 0.1, 5); got != ScaleNone {
		t.Errorf("first low reading = %v, want none", got)
	}
	if got := h.ObserveLoad(61*time.Second, 0, 0.1, 5); got != ScaleIn {
		t.Errorf("after 60s quiet = %v, want scale-in", got)
	}
	// Mid-band readings reset the window.
	h2 := NewHeadroomScaler()
	h2.ObserveLoad(0, 0, 0.1, 5)
	h2.ObserveLoad(30*time.Second, 0, 0.5, 5)
	if got := h2.ObserveLoad(61*time.Second, 0, 0.1, 5); got != ScaleNone {
		t.Errorf("window should have been reset, got %v", got)
	}
}

func TestHeadroomScalerRespectsBounds(t *testing.T) {
	h := NewHeadroomScaler()
	h.MaxGPUs = 5
	if got := h.ObserveLoad(0, 0, 0.95, 5); got != ScaleNone {
		t.Errorf("at MaxGPUs = %v, want none", got)
	}
	h2 := NewHeadroomScaler()
	h2.MinGPUs = 3
	h2.ObserveLoad(0, 0, 0.1, 3)
	if got := h2.ObserveLoad(2*time.Minute, 0, 0.1, 3); got != ScaleNone {
		t.Errorf("at MinGPUs = %v, want none", got)
	}
}

func TestAutoScalerImplementsScaler(t *testing.T) {
	var _ Scaler = &AutoScaler{}
	var _ Scaler = &HeadroomScaler{}
	a := newScaler(t)
	// ObserveLoad delegates to the latency-keyed policy.
	if got := a.ObserveLoad(0, 449*time.Millisecond, 0.0, 5); got != ScaleOut {
		t.Errorf("target tracking via ObserveLoad = %v, want scale-out", got)
	}
}
