package allocator

import (
	"testing"
	"testing/quick"
)

func TestEvenAllocation(t *testing.T) {
	n, err := EvenAllocation(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 2, 3, 3} // leftovers go to the largest runtimes
	for i := range want {
		if n[i] != want[i] {
			t.Fatalf("EvenAllocation(10, 4) = %v, want %v", n, want)
		}
	}
	if _, err := EvenAllocation(3, 4); err == nil {
		t.Error("too few GPUs should fail")
	}
	if _, err := EvenAllocation(3, 0); err == nil {
		t.Error("zero runtimes should fail")
	}
}

func TestEvenAllocationConserves(t *testing.T) {
	f := func(g, k uint8) bool {
		numRt := 1 + int(k)%16
		gpus := numRt + int(g)%100
		n, err := EvenAllocation(gpus, numRt)
		if err != nil {
			return false
		}
		sum := 0
		for _, v := range n {
			if v < 1 {
				return false
			}
			sum += v
		}
		return sum == gpus && n[numRt-1] >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProportionalAllocation(t *testing.T) {
	q := []float64{300, 100, 0, 0}
	caps := []int{100, 100, 50, 25}
	n, err := ProportionalAllocation(8, q, caps)
	if err != nil {
		t.Fatal(err)
	}
	if sumInts(n) != 8 {
		t.Fatalf("allocation %v does not sum to 8", n)
	}
	if n[0] <= n[1] {
		t.Errorf("bin with 3x demand should get more GPUs: %v", n)
	}
	if n[3] < 1 {
		t.Errorf("largest runtime must keep an instance: %v", n)
	}
}

func TestProportionalAllocationZeroDemand(t *testing.T) {
	n, err := ProportionalAllocation(5, []float64{0, 0}, []int{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if n[1] != 5 || n[0] != 0 {
		t.Errorf("zero demand should park on the largest runtime, got %v", n)
	}
}

func TestProportionalAllocationValidation(t *testing.T) {
	if _, err := ProportionalAllocation(5, []float64{1}, []int{10, 10}); err == nil {
		t.Error("dimension mismatch should fail")
	}
	if _, err := ProportionalAllocation(0, []float64{1}, []int{10}); err == nil {
		t.Error("zero GPUs should fail")
	}
	if _, err := ProportionalAllocation(5, []float64{1}, []int{0}); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestProportionalAllocationConserves(t *testing.T) {
	f := func(a, b, c, d uint16, g uint8) bool {
		gpus := 1 + int(g)%200
		q := []float64{float64(a % 1000), float64(b % 1000), float64(c % 1000), float64(d % 1000)}
		caps := []int{120, 60, 40, 30}
		n, err := ProportionalAllocation(gpus, q, caps)
		if err != nil {
			return false
		}
		sum := 0
		for _, v := range n {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == gpus && n[3] >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSingleRuntimeAllocation(t *testing.T) {
	n, err := SingleRuntimeAllocation(7, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n[7] != 7 || sumInts(n) != 7 {
		t.Errorf("allocation = %v", n)
	}
	if _, err := SingleRuntimeAllocation(7, 8, 8); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := SingleRuntimeAllocation(0, 8, 0); err == nil {
		t.Error("zero GPUs should fail")
	}
}
