package allocator

import "fmt"

// EvenAllocation splits g GPUs evenly across numRuntimes, giving leftover
// GPUs to the largest runtimes so Eq. 7 always holds — the first offline
// baseline of Table 3.
func EvenAllocation(g, numRuntimes int) ([]int, error) {
	if numRuntimes <= 0 {
		return nil, fmt.Errorf("allocator: need at least one runtime")
	}
	if g < numRuntimes {
		return nil, fmt.Errorf("allocator: even allocation needs at least %d GPUs, got %d", numRuntimes, g)
	}
	n := make([]int, numRuntimes)
	base := g / numRuntimes
	rem := g % numRuntimes
	for i := range n {
		n[i] = base
		if i >= numRuntimes-rem {
			n[i]++
		}
	}
	return n, nil
}

// ProportionalAllocation assigns GPUs proportionally to each runtime's
// share of the demand-weighted work (demand * per-request latency in
// capacity units), the "global trace length distribution" offline baseline
// of Table 3. It guarantees at least one instance on the largest runtime.
func ProportionalAllocation(g int, q []float64, capacities []int) ([]int, error) {
	if len(q) == 0 || len(q) != len(capacities) {
		return nil, fmt.Errorf("allocator: demand/capacity dimension mismatch")
	}
	if g < 1 {
		return nil, fmt.Errorf("allocator: need at least one GPU")
	}
	// Work share per runtime: instances needed to absorb its own demand.
	shares := make([]float64, len(q))
	total := 0.0
	for i := range q {
		if capacities[i] <= 0 {
			return nil, fmt.Errorf("allocator: runtime %d has non-positive capacity", i)
		}
		shares[i] = q[i] / float64(capacities[i])
		total += shares[i]
	}
	n := make([]int, len(q))
	if total <= 0 {
		// No demand: park everything on the largest runtime.
		n[len(n)-1] = g
		return n, nil
	}
	assigned := 0
	for i := range n {
		n[i] = int(float64(g) * shares[i] / total)
		assigned += n[i]
	}
	// Distribute rounding leftovers to the runtimes with the largest
	// fractional remainders, then force Eq. 7.
	for assigned < g {
		bestI, bestFrac := 0, -1.0
		for i := range n {
			frac := float64(g)*shares[i]/total - float64(n[i])
			if frac > bestFrac {
				bestFrac, bestI = frac, i
			}
		}
		n[bestI]++
		assigned++
	}
	if n[len(n)-1] == 0 {
		// Steal one instance from the most-provisioned runtime.
		bestI := 0
		for i, v := range n {
			if v > n[bestI] {
				bestI = i
			}
		}
		n[bestI]--
		n[len(n)-1] = 1
	}
	return n, nil
}

// SingleRuntimeAllocation puts all g GPUs on one runtime index — how the
// ST (all max-length) and DT (one dynamic runtime) baselines deploy.
func SingleRuntimeAllocation(g, numRuntimes, idx int) ([]int, error) {
	if idx < 0 || idx >= numRuntimes {
		return nil, fmt.Errorf("allocator: runtime index %d outside [0, %d)", idx, numRuntimes)
	}
	if g < 1 {
		return nil, fmt.Errorf("allocator: need at least one GPU")
	}
	n := make([]int, numRuntimes)
	n[idx] = g
	return n, nil
}
