package allocator

import (
	"math/rand"
	"testing"
	"time"
)

// TestAutoScalerNoFlapWithinPeriod is the hysteresis property test: over
// seeded oscillating p98 sequences the target tracker must never flap —
// a scale-in is only legal when the entire preceding evaluation period
// was quiet (every observation below the scale-in threshold, so in
// particular no scale-out and no pressure anywhere in the window), and
// two scale-outs never land within one cooldown.
func TestAutoScalerNoFlapWithinPeriod(t *testing.T) {
	const slo = 150 * time.Millisecond
	for seed := int64(0); seed < 50; seed++ {
		a, err := NewAutoScaler(slo)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		gpus := 4
		inThresh := time.Duration(a.InFraction * float64(a.SLO))

		type obs struct {
			at  time.Duration
			p98 time.Duration
		}
		var history []obs
		var lastOut time.Duration = -1 << 62
		for tick := 0; tick < 300; tick++ {
			now := time.Duration(tick) * time.Second
			// Oscillate across both thresholds: [0.3, 1.1] x SLO.
			p98 := time.Duration((0.3 + 0.8*rng.Float64()) * float64(slo))
			history = append(history, obs{at: now, p98: p98})
			switch a.Observe(now, p98, gpus) {
			case ScaleOut:
				if lastOut > -1<<62 && now-lastOut < a.OutCooldown {
					t.Fatalf("seed %d: scale-outs at %v and %v within cooldown %v", seed, lastOut, now, a.OutCooldown)
				}
				lastOut = now
				gpus++
			case ScaleIn:
				if gpus <= a.MinGPUs {
					t.Fatalf("seed %d: scale-in at %v below MinGPUs %d", seed, now, a.MinGPUs)
				}
				for _, o := range history {
					if o.at > now-a.InPeriod && o.at <= now && o.p98 >= inThresh {
						t.Fatalf("seed %d: scale-in at %v but p98 %v at %v was not quiet (threshold %v)",
							seed, now, o.p98, o.at, inThresh)
					}
				}
				gpus--
			}
			if gpus < a.MinGPUs {
				t.Fatalf("seed %d: pool dropped to %d, below MinGPUs %d", seed, gpus, a.MinGPUs)
			}
		}
	}
}

// TestAutoScalerThresholdEdges pins the exact boundary semantics of the
// section 4 policy: the scale-out comparison is inclusive at 95% of the
// SLO, the scale-in band is exclusive at 50%, and a full InPeriod of
// quiet is required before a worker is released.
func TestAutoScalerThresholdEdges(t *testing.T) {
	const slo = 150 * time.Millisecond
	out := time.Duration(0.95 * float64(slo)) // 142.5ms
	in := time.Duration(0.50 * float64(slo))  // 75ms

	cases := []struct {
		name string
		feed func(a *AutoScaler) []ScaleAction
		want []ScaleAction
	}{
		{
			name: "exactly 95% scales out immediately",
			feed: func(a *AutoScaler) []ScaleAction {
				return []ScaleAction{a.Observe(0, out, 4)}
			},
			want: []ScaleAction{ScaleOut},
		},
		{
			name: "just below 95% holds",
			feed: func(a *AutoScaler) []ScaleAction {
				return []ScaleAction{a.Observe(0, out-time.Nanosecond, 4)}
			},
			want: []ScaleAction{ScaleNone},
		},
		{
			name: "second burst within cooldown holds, after cooldown scales out",
			feed: func(a *AutoScaler) []ScaleAction {
				return []ScaleAction{
					a.Observe(0, slo, 4),
					a.Observe(1*time.Second, slo, 5),
					a.Observe(5*time.Second, slo, 5),
				}
			},
			want: []ScaleAction{ScaleOut, ScaleNone, ScaleOut},
		},
		{
			name: "exactly 50% is comfortable, never scales in",
			feed: func(a *AutoScaler) []ScaleAction {
				var acts []ScaleAction
				for tick := 0; tick <= 120; tick++ {
					acts = append(acts, a.Observe(time.Duration(tick)*time.Second, in, 4))
				}
				return acts
			},
			want: nil, // checked below: all ScaleNone
		},
		{
			name: "just under 50% sustained one full period scales in",
			feed: func(a *AutoScaler) []ScaleAction {
				var acts []ScaleAction
				for tick := 0; tick <= 60; tick++ {
					acts = append(acts, a.Observe(time.Duration(tick)*time.Second, in-time.Nanosecond, 4))
				}
				return acts
			},
			want: nil, // checked below: exactly one ScaleIn, at the final tick
		},
		{
			name: "at MinGPUs quiet never scales in",
			feed: func(a *AutoScaler) []ScaleAction {
				var acts []ScaleAction
				for tick := 0; tick <= 180; tick++ {
					acts = append(acts, a.Observe(time.Duration(tick)*time.Second, time.Millisecond, a.MinGPUs))
				}
				return acts
			},
			want: nil, // all ScaleNone
		},
		{
			name: "at MaxGPUs pressure never scales out",
			feed: func(a *AutoScaler) []ScaleAction {
				a.MaxGPUs = 4
				var acts []ScaleAction
				for tick := 0; tick <= 20; tick++ {
					acts = append(acts, a.Observe(time.Duration(tick)*time.Second, slo, 4))
				}
				return acts
			},
			want: nil, // all ScaleNone
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := NewAutoScaler(slo)
			if err != nil {
				t.Fatal(err)
			}
			acts := tc.feed(a)
			if tc.want != nil {
				for i := range tc.want {
					if acts[i] != tc.want[i] {
						t.Fatalf("observation %d = %v, want %v (all: %v)", i, acts[i], tc.want[i], acts)
					}
				}
				return
			}
			switch tc.name {
			case "just under 50% sustained one full period scales in":
				for i, act := range acts {
					if i < len(acts)-1 && act != ScaleNone {
						t.Fatalf("observation %d = %v before the period elapsed", i, act)
					}
				}
				if last := acts[len(acts)-1]; last != ScaleIn {
					t.Fatalf("final observation = %v, want scale-in after a full quiet period", last)
				}
			default:
				for i, act := range acts {
					if act != ScaleNone {
						t.Fatalf("observation %d = %v, want none throughout", i, act)
					}
				}
			}
		})
	}
}
