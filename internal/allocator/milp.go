package allocator

import (
	"fmt"
	"math"

	"arlo/internal/ilp"
	"arlo/internal/lp"
)

// AllocateMILP solves the no-demotion variant of the allocation program
// through the generic MILP substrate (packages lp and ilp) — the code
// path a commercial solver like GUROBI would take in the paper. Demotion
// makes the exact program non-linear (the R_i cascade), so this
// formulation requires every runtime to fully serve its own bin
// (N_i >= ceil(Q_i / M_i)) and linearizes the objective by enumerating
// the per-runtime cost curve into binary selection variables:
//
//	min  sum_{i,n} cost_i(n) * y_{i,n}
//	s.t. sum_n y_{i,n} = 1           for every runtime i
//	     sum_{i,n} n * y_{i,n} = G
//	     y binary
//
// It returns the allocation and its cost. When the optimal solution of
// the full program performs no demotion, the result matches Solver.
// Allocate exactly; the cross-check tests rely on that. Intended for
// modest instances (the binary grid has roughly I*G variables); the
// Pareto-DP solver remains the production path.
func (s *Solver) AllocateMILP(g int, q []float64) (*Allocation, error) {
	rts := s.Profile.Runtimes
	if len(q) != len(rts) {
		return nil, fmt.Errorf("allocator: demand has %d bins for %d runtimes", len(q), len(rts))
	}
	if g < 1 {
		return nil, fmt.Errorf("allocator: need at least one GPU, got %d", g)
	}
	// Per-runtime feasible ranges under the no-demotion restriction.
	lo := make([]int, len(rts))
	hi := make([]int, len(rts))
	need := 0
	for i, rt := range rts {
		if q[i] < 0 || math.IsNaN(q[i]) || math.IsInf(q[i], 0) {
			return nil, fmt.Errorf("allocator: invalid demand %v for runtime %d", q[i], i)
		}
		lo[i] = int(math.Ceil(q[i] / float64(rt.Capacity)))
		if i == len(rts)-1 && lo[i] < 1 {
			lo[i] = 1 // Eq. 7
		}
		need += lo[i]
	}
	if need > g {
		return nil, fmt.Errorf("allocator: no-demotion variant needs %d GPUs, only %d available", need, g)
	}
	for i := range rts {
		hi[i] = g - (need - lo[i])
		// Extra instances beyond one per request are useless.
		if useful := int(math.Ceil(q[i])); useful > lo[i] && useful < hi[i] {
			hi[i] = useful
		}
		if hi[i] < lo[i] {
			hi[i] = lo[i]
		}
	}
	// Build the binary grid.
	type cell struct{ rt, n int }
	var cells []cell
	var objective []float64
	for i, rt := range rts {
		for n := lo[i]; n <= hi[i]; n++ {
			cells = append(cells, cell{rt: i, n: n})
			cost := 0.0
			if q[i] > 0 {
				cost = rt.MeanLatency(q[i]/float64(n)).Seconds() * q[i]
			}
			objective = append(objective, cost)
		}
	}
	numVars := len(cells)
	cons := make([]lp.Constraint, 0, len(rts)+1+numVars)
	// One selection per runtime.
	for i := range rts {
		coeffs := make([]float64, numVars)
		for j, c := range cells {
			if c.rt == i {
				coeffs[j] = 1
			}
		}
		cons = append(cons, lp.Constraint{Coeffs: coeffs, Sense: lp.EQ, RHS: 1})
	}
	// GPUs sum to G.
	gpuCoeffs := make([]float64, numVars)
	for j, c := range cells {
		gpuCoeffs[j] = float64(c.n)
	}
	cons = append(cons, lp.Constraint{Coeffs: gpuCoeffs, Sense: lp.EQ, RHS: float64(g)})
	// Binary upper bounds (lower bound 0 is implicit).
	for j := 0; j < numVars; j++ {
		coeffs := make([]float64, numVars)
		coeffs[j] = 1
		cons = append(cons, lp.Constraint{Coeffs: coeffs, Sense: lp.LE, RHS: 1})
	}
	sol, status, err := ilp.Solve(&ilp.Problem{
		LP: lp.Problem{NumVars: numVars, Objective: objective, Constraints: cons},
	}, ilp.Options{})
	if err != nil {
		return nil, fmt.Errorf("allocator: MILP backend: %w", err)
	}
	if status != lp.Optimal {
		return nil, fmt.Errorf("allocator: MILP backend: %v", status)
	}
	n := make([]int, len(rts))
	for j, c := range cells {
		if sol.X[j] > 0.5 {
			n[c.rt] = c.n
		}
	}
	return &Allocation{N: n, Cost: sol.Objective}, nil
}
