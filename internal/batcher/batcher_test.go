package batcher

import (
	"math/rand"
	"testing"
	"time"
)

// runFormer feeds the scripted arrivals (inter-arrival gaps in wall time)
// into a Former and collects every emitted batch with its emission time.
func runFormer(t *testing.T, pol Policy, gaps []time.Duration, deadline func(int) (time.Time, bool)) (batches [][]int, emitted []time.Time) {
	t.Helper()
	src := make(chan int, len(gaps))
	go func() {
		for i, g := range gaps {
			if g > 0 {
				time.Sleep(g)
			}
			src <- i
		}
		close(src)
	}()
	f := &Former[int]{Source: src, Policy: pol, Deadline: deadline}
	var buf []int
	for {
		batch, ok := f.Next(buf[:0])
		if !ok {
			return batches, emitted
		}
		batches = append(batches, append([]int(nil), batch...))
		emitted = append(emitted, time.Now())
	}
}

// checkReferenceModel audits the invariants the naive reference model
// promises: FIFO order, exactly-once delivery, and the size cap.
func checkReferenceModel(t *testing.T, pol Policy, n int, batches [][]int) {
	t.Helper()
	max := pol.MaxSize
	if max < 1 {
		max = 1
	}
	next := 0
	for bi, b := range batches {
		if len(b) == 0 {
			t.Fatalf("batch %d is empty", bi)
		}
		if len(b) > max {
			t.Fatalf("batch %d has %d members, cap %d", bi, len(b), max)
		}
		for _, it := range b {
			if it != next {
				t.Fatalf("batch %d delivered item %d, want %d (FIFO / exactly-once violated)", bi, it, next)
			}
			next++
		}
	}
	if next != n {
		t.Fatalf("delivered %d of %d items", next, n)
	}
}

// TestFormerAgainstReferenceModel drives random arrival patterns through
// the Former and audits the reference-model invariants: batches are FIFO,
// never exceed MaxSize, and every item is delivered exactly once.
func TestFormerAgainstReferenceModel(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		pol := Policy{
			MaxSize:  1 + rng.Intn(10),
			MaxDelay: time.Duration(rng.Intn(3)) * time.Millisecond,
		}
		gaps := make([]time.Duration, n)
		for i := range gaps {
			if rng.Float64() < 0.3 {
				gaps[i] = time.Duration(rng.Intn(2000)) * time.Microsecond
			}
		}
		batches, _ := runFormer(t, pol, gaps, nil)
		checkReferenceModel(t, pol, n, batches)
	}
}

// TestFormerFullBatchNoWait: when the queue already holds a full batch,
// formation is immediate — the window only applies to partial batches.
func TestFormerFullBatchNoWait(t *testing.T) {
	src := make(chan int, 16)
	for i := 0; i < 8; i++ {
		src <- i
	}
	f := &Former[int]{Source: src, Policy: Policy{MaxSize: 8, MaxDelay: time.Hour}}
	start := time.Now()
	batch, ok := f.Next(nil)
	if !ok || len(batch) != 8 {
		t.Fatalf("Next = %v, %v; want full batch of 8", batch, ok)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("full batch took %v to form; the hour window must not apply", d)
	}
}

// TestFormerWindowBounded: a partial batch is held at most ~MaxDelay. The
// upper bound is generous (scheduler jitter on a loaded CI box) but far
// below any confusion with an unbounded wait.
func TestFormerWindowBounded(t *testing.T) {
	src := make(chan int, 1)
	src <- 0
	f := &Former[int]{Source: src, Policy: Policy{MaxSize: 8, MaxDelay: 20 * time.Millisecond}}
	start := time.Now()
	batch, ok := f.Next(nil)
	if !ok || len(batch) != 1 {
		t.Fatalf("Next = %v, %v; want the lone item", batch, ok)
	}
	if d := time.Since(start); d < 10*time.Millisecond || d > time.Second {
		t.Fatalf("lone item held for %v, want ~20ms window", d)
	}
}

// TestFormerGreedyNoDelay: MaxDelay 0 never waits — the batch is whatever
// was queued at the first receive.
func TestFormerGreedyNoDelay(t *testing.T) {
	src := make(chan int, 4)
	src <- 0
	src <- 1
	f := &Former[int]{Source: src, Policy: Policy{MaxSize: 8}}
	start := time.Now()
	batch, ok := f.Next(nil)
	if !ok || len(batch) != 2 {
		t.Fatalf("Next = %v, %v; want the 2 queued items", batch, ok)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("greedy formation took %v; MaxDelay 0 must not wait", d)
	}
}

// TestFormerDeadlineShrinksWindow: a member whose deadline leaves less
// slack than MaxDelay ends collection at the deadline, not the window.
func TestFormerDeadlineShrinksWindow(t *testing.T) {
	src := make(chan int, 1)
	src <- 0
	urgent := time.Now().Add(5 * time.Millisecond)
	f := &Former[int]{
		Source:   src,
		Policy:   Policy{MaxSize: 8, MaxDelay: 10 * time.Second},
		Deadline: func(int) (time.Time, bool) { return urgent, true },
	}
	start := time.Now()
	batch, ok := f.Next(nil)
	if !ok || len(batch) != 1 {
		t.Fatalf("Next = %v, %v", batch, ok)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("urgent member held %v despite 5ms slack", d)
	}
}

// TestFormerInterrupt: a fired interrupt aborts the wait and returns the
// partial batch so the worker can switch to crash draining.
func TestFormerInterrupt(t *testing.T) {
	src := make(chan int, 1)
	src <- 0
	intr := make(chan struct{})
	f := &Former[int]{
		Source:    src,
		Policy:    Policy{MaxSize: 8, MaxDelay: 10 * time.Second},
		Interrupt: intr,
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(intr)
	}()
	start := time.Now()
	batch, ok := f.Next(nil)
	if !ok || len(batch) != 1 {
		t.Fatalf("Next = %v, %v", batch, ok)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("interrupt took %v to end collection", d)
	}
	// The closed source (post-crash drain in the cluster) ends the Former.
	close(src)
	if _, ok := f.Next(batch[:0]); ok {
		t.Fatal("Next on a closed drained source must report ok=false")
	}
}

// TestFormerCloseMidCollection: a source closed while a batch is forming
// still delivers the collected members, then ends.
func TestFormerCloseMidCollection(t *testing.T) {
	src := make(chan int, 4)
	src <- 0
	src <- 1
	close(src)
	f := &Former[int]{Source: src, Policy: Policy{MaxSize: 8, MaxDelay: time.Hour}}
	batch, ok := f.Next(nil)
	if !ok || len(batch) != 2 {
		t.Fatalf("Next = %v, %v; want both pre-close items", batch, ok)
	}
	if _, ok := f.Next(batch[:0]); ok {
		t.Fatal("second Next must observe the close")
	}
}

// TestFormerBufferReuse: the caller's buffer is appended to in place, so
// steady-state formation allocates only when batches outgrow it.
func TestFormerBufferReuse(t *testing.T) {
	src := make(chan int, 8)
	for i := 0; i < 6; i++ {
		src <- i
	}
	close(src)
	f := &Former[int]{Source: src, Policy: Policy{MaxSize: 3}}
	buf := make([]int, 0, 8)
	b1, ok := f.Next(buf[:0])
	if !ok || len(b1) != 3 || &b1[0] != &buf[:1][0] {
		t.Fatalf("first batch %v must reuse the caller's buffer", b1)
	}
	b2, ok := f.Next(buf[:0])
	if !ok || len(b2) != 3 {
		t.Fatalf("second batch = %v, %v", b2, ok)
	}
}
