package batcher

import (
	"testing"
	"time"
)

// FuzzBatchWindow decodes arbitrary bytes into a batching policy plus an
// arrival pattern (inter-arrival gaps and per-item deadline slacks) and
// checks that no pattern can make the Former violate the reference-model
// invariants: batches stay FIFO, never exceed MaxSize, and deliver every
// item exactly once. Timing properties (the window bound itself) are
// covered by the deterministic tests; under fuzz load wall-clock
// assertions would only manufacture flakes.
func FuzzBatchWindow(f *testing.F) {
	// Handwritten seeds: greedy drain, windowed partial batches, urgent
	// deadlines, singleton cap, burst-then-silence.
	f.Add([]byte{8, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{4, 50, 1, 0, 2, 200, 3, 0, 0, 10, 1})
	f.Add([]byte{1, 255, 9, 9, 9, 9})
	f.Add([]byte{16, 10, 0, 0, 0, 0, 255, 0, 0, 0, 0})
	f.Add([]byte{3, 1, 7, 2, 7, 3, 7, 4, 7, 5, 7})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		pol := Policy{
			// MaxSize 0..15 exercises the <1 clamp; MaxDelay up to ~1.6ms
			// keeps iterations fast while still entering the wait phase.
			MaxSize:  int(data[0] % 16),
			MaxDelay: time.Duration(data[1]%128) * 25 * time.Microsecond,
		}
		rest := data[2:]
		n := len(rest)
		if n > 64 {
			n = 64
		}
		if n == 0 {
			return
		}
		gaps := make([]time.Duration, n)
		slacks := make([]time.Duration, n)
		for i := 0; i < n; i++ {
			b := rest[i]
			gaps[i] = time.Duration(b%8) * 50 * time.Microsecond
			// High bits pick which items carry a deadline and how tight.
			if b&0x80 != 0 {
				slacks[i] = time.Duration(b>>4) * 100 * time.Microsecond
			}
		}
		start := time.Now()
		deadline := func(it int) (time.Time, bool) {
			if slacks[it] == 0 {
				return time.Time{}, false
			}
			return start.Add(slacks[it]), true
		}
		src := make(chan int, n)
		go func() {
			for i := 0; i < n; i++ {
				if gaps[i] > 0 {
					time.Sleep(gaps[i])
				}
				src <- i
			}
			close(src)
		}()
		former := &Former[int]{Source: src, Policy: pol, Deadline: deadline}
		var batches [][]int
		var buf []int
		for {
			batch, ok := former.Next(buf[:0])
			if !ok {
				break
			}
			batches = append(batches, append([]int(nil), batch...))
		}
		checkReferenceModel(t, pol, n, batches)
	})
}
