// Package batcher implements the Triton-style dynamic batch former the
// live cluster's workers use to realize the batched service rate the
// Runtime Scheduler plans for: the allocation program's capacity M_i and
// latency curve L_i(b) (paper Eqs. 1-7) are batch-based, so executing
// requests strictly one at a time leaves the planned throughput on the
// table. A Former coalesces queued same-runtime requests into batches of
// up to MaxSize under a bounded collection window, and the worker then
// executes the whole batch as one emulated kernel (Runtime.BatchCostOf).
//
// The window policy mirrors Triton's max_queue_delay with an SLO-aware
// bound: collection never waits longer than MaxDelay, and never past the
// slack any already-collected member's deadline leaves. A member that
// arrives with no slack left ends collection immediately — batching must
// amortize kernel cost, not manufacture deadline misses.
//
// The Former is deliberately oblivious to job lifecycle (cancellation,
// crash requeueing): it only decides *grouping*. The worker re-checks
// each member's state after formation, which is what makes per-member
// cancellation and batch-level crash semantics composable with any
// grouping decision the Former takes.
package batcher

import "time"

// Policy bounds one Former's batches.
type Policy struct {
	// MaxSize is B_i, the largest batch formed; values below 1 degrade to
	// singleton batches (no coalescing beyond the greedy first item).
	MaxSize int
	// MaxDelay bounds the collection window: once the first member is in
	// hand, the Former waits at most this long for followers. Zero (or
	// negative) disables waiting entirely — the batch is whatever is
	// already queued, the lowest-latency policy.
	MaxDelay time.Duration
}

// Former coalesces items received from Source into bounded batches.
// A Former is owned by a single consumer goroutine; only the channels may
// be touched concurrently.
type Former[T any] struct {
	// Source delivers the items to coalesce. A closed Source ends the
	// Former: Next returns ok=false once the channel is drained.
	Source <-chan T
	// Policy bounds batch size and collection window.
	Policy Policy
	// Deadline, when non-nil, reports the latest instant an item can still
	// start executing (its SLO slack). The collection window never extends
	// past the earliest deadline among collected members.
	Deadline func(T) (time.Time, bool)
	// Window, when non-nil, reports a per-item cap on the collection
	// window (SLO-class policy: interactive members shrink the window,
	// batch-class members tolerate the full MaxDelay). The wait never
	// extends past any member's arrival plus its window. Items without an
	// opinion return ok=false and inherit MaxDelay.
	Window func(T) (time.Duration, bool)
	// Interrupt, when non-nil, aborts the collection wait when it becomes
	// readable (a crashed worker must stop forming and start draining).
	// Items already collected are still returned.
	Interrupt <-chan struct{}

	// timer is the reusable window timer (allocated on first wait).
	timer *time.Timer
	// firstAt is when the last batch's first member was received.
	firstAt time.Time
}

// Next blocks for the first item, then collects followers into buf (which
// it appends to and returns) until the batch is full, the window closes,
// Source runs dry under a zero MaxDelay, or Interrupt fires. ok is false
// when Source is closed and drained — the consumer should stop.
//
// Callers pass a reusable buffer (batch[:0]) so steady-state formation
// allocates nothing.
func (f *Former[T]) Next(buf []T) (batch []T, ok bool) {
	first, open := <-f.Source
	if !open {
		return buf, false
	}
	f.firstAt = time.Now()
	batch = append(buf, first)
	max := f.Policy.MaxSize
	if max < 1 {
		max = 1
	}
	// Greedy phase: take everything already queued, no waiting. This alone
	// captures most of the batching win under load — a backlogged worker
	// always finds followers in its channel.
	for len(batch) < max {
		select {
		case it, open := <-f.Source:
			if !open {
				// Deliver what we have; the next call observes the close.
				return batch, true
			}
			batch = append(batch, it)
		default:
			return f.wait(batch, max)
		}
	}
	return batch, true
}

// FormedIn returns how long the last batch took to form: the time from
// its first member's arrival at the Former to Next's return.
func (f *Former[T]) FormedIn() time.Duration { return time.Since(f.firstAt) }

// Poll collects up to max already-queued items into buf without blocking —
// the iteration-level admission path. A continuous-batching worker with
// sequences mid-decode calls Poll once per iteration to refill freed slots:
// it must never stall the decode of sequences already running, so there is
// no collection window here (the running batch *is* the window). Items
// arrive in Source order, preserving FIFO within the runtime level.
//
// open is false once Source is closed and drained; items collected on the
// closing call are still returned and must be processed.
func (f *Former[T]) Poll(buf []T, max int) (batch []T, open bool) {
	batch = buf
	for len(batch) < max {
		select {
		case it, ok := <-f.Source:
			if !ok {
				return batch, false
			}
			batch = append(batch, it)
		default:
			return batch, true
		}
	}
	return batch, true
}

// wait is the window phase: the queue ran dry before the batch filled, so
// wait out the remaining collection window for followers.
func (f *Former[T]) wait(batch []T, max int) ([]T, bool) {
	if f.Policy.MaxDelay <= 0 {
		return batch, true
	}
	now := time.Now()
	limit := now.Add(f.Policy.MaxDelay)
	limit = f.clampToDeadlines(limit, batch)
	// Members collected so far anchor their window caps at the batch's
	// first arrival: that is how long the batch has already been open.
	limit = f.clampToWindows(limit, batch, f.firstAt)
	for len(batch) < max {
		remain := time.Until(limit)
		if remain <= 0 {
			return batch, true
		}
		if f.timer == nil {
			f.timer = time.NewTimer(remain)
		} else {
			f.timer.Reset(remain)
		}
		select {
		case it, open := <-f.Source:
			f.stopTimer()
			if !open {
				return batch, true
			}
			batch = append(batch, it)
			// A new member with less slack shrinks the window for everyone:
			// the batch starts when its most urgent member must.
			limit = f.clampToDeadlines(limit, batch[len(batch)-1:])
			limit = f.clampToWindows(limit, batch[len(batch)-1:], time.Now())
		case <-f.timer.C:
			return batch, true
		case <-f.Interrupt:
			f.stopTimer()
			return batch, true
		}
	}
	return batch, true
}

// clampToDeadlines lowers limit to the earliest deadline among items.
func (f *Former[T]) clampToDeadlines(limit time.Time, items []T) time.Time {
	if f.Deadline == nil {
		return limit
	}
	for _, it := range items {
		if d, ok := f.Deadline(it); ok && d.Before(limit) {
			limit = d
		}
	}
	return limit
}

// clampToWindows lowers limit to the earliest per-item window expiry
// among items, each anchored at the given arrival instant.
func (f *Former[T]) clampToWindows(limit time.Time, items []T, at time.Time) time.Time {
	if f.Window == nil {
		return limit
	}
	for _, it := range items {
		if w, ok := f.Window(it); ok {
			if exp := at.Add(w); exp.Before(limit) {
				limit = exp
			}
		}
	}
	return limit
}

func (f *Former[T]) stopTimer() {
	if !f.timer.Stop() {
		select {
		case <-f.timer.C:
		default:
		}
	}
}
