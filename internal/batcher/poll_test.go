package batcher

import (
	"math/rand"
	"testing"
)

// pollWorld drives a Former.Poll-based admission loop the way the
// continuous-batching worker does — items occupy a decode slot for a few
// iterations, freed slots refill from the queue each round — and checks it
// round-for-round against a naive reference model (a plain FIFO queue with
// the same slot accounting).
type pollWorld struct {
	slots  int
	src    chan int
	former *Former[int]

	// worker state: remaining iterations per admitted item id.
	active map[int]int
	// reference state.
	refQueue  []int
	refActive map[int]int

	admitted []int // admission order, for FIFO + exactly-once audit
	buf      []int
}

func newPollWorld(slots, capacity int) *pollWorld {
	src := make(chan int, capacity)
	return &pollWorld{
		slots:     slots,
		src:       src,
		former:    &Former[int]{Source: src, Policy: Policy{MaxSize: slots}},
		active:    make(map[int]int),
		refActive: make(map[int]int),
	}
}

// round runs one admission + decode iteration and audits it against the
// reference model. remain maps item id -> its decode residency.
func (w *pollWorld) round(t *testing.T, remain []int) {
	t.Helper()

	// Admission through the Former.
	free := w.slots - len(w.active)
	var polled []int
	if free > 0 {
		var open bool
		polled, open = w.former.Poll(w.buf[:0], free)
		if !open {
			t.Fatal("source closed unexpectedly")
		}
		for _, id := range polled {
			if _, dup := w.active[id]; dup {
				t.Fatalf("item %d admitted twice into the active set", id)
			}
			w.active[id] = remain[id]
			w.admitted = append(w.admitted, id)
		}
	}
	if len(w.active) > w.slots {
		t.Fatalf("size cap violated: %d active > %d slots", len(w.active), w.slots)
	}

	// Reference admission: FIFO from the queue into free slots.
	refFree := w.slots - len(w.refActive)
	var refPolled []int
	for len(refPolled) < refFree && len(w.refQueue) > 0 {
		id := w.refQueue[0]
		w.refQueue = w.refQueue[1:]
		w.refActive[id] = remain[id]
		refPolled = append(refPolled, id)
	}

	// The Former must admit exactly the reference's items, in order.
	if len(polled) != len(refPolled) {
		t.Fatalf("admitted %v, reference admitted %v", polled, refPolled)
	}
	for i := range polled {
		if polled[i] != refPolled[i] {
			t.Fatalf("admission order diverged: %v vs reference %v", polled, refPolled)
		}
	}

	// One decode iteration: everything resident advances, finished exits.
	for id := range w.active {
		w.active[id]--
		if w.active[id] <= 0 {
			delete(w.active, id)
		}
	}
	for id := range w.refActive {
		w.refActive[id]--
		if w.refActive[id] <= 0 {
			delete(w.refActive, id)
		}
	}
}

func (w *pollWorld) enqueue(id int) {
	w.src <- id
	w.refQueue = append(w.refQueue, id)
}

// TestPollMatchesReferenceModel drives random schedules — bursty arrivals,
// variable residencies, slots freeing mid-flight — and demands the
// Poll-based admission loop match the naive model exactly: every item
// admitted exactly once, FIFO within the level, size cap never exceeded
// even when slots free up between polls.
func TestPollMatchesReferenceModel(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		slots := 1 + rng.Intn(8)
		n := 20 + rng.Intn(180)
		w := newPollWorld(slots, n)
		remain := make([]int, n)
		for i := range remain {
			remain[i] = 1 + rng.Intn(5)
		}

		next := 0
		for rounds := 0; next < n || len(w.active) > 0 || len(w.refQueue) > 0; rounds++ {
			if rounds > 10*n+100 {
				t.Fatalf("seed %d: admission loop did not drain", seed)
			}
			// Bursty arrivals: 0-4 items land before this iteration.
			for k := rng.Intn(5); k > 0 && next < n; k-- {
				w.enqueue(next)
				next++
			}
			w.round(t, remain)
		}

		if len(w.admitted) != n {
			t.Fatalf("seed %d: admitted %d of %d items", seed, len(w.admitted), n)
		}
		for i, id := range w.admitted {
			if id != i {
				t.Fatalf("seed %d: FIFO broken: position %d admitted item %d", seed, i, id)
			}
		}
	}
}

// TestPollNeverBlocks pins the non-blocking contract: an empty source
// yields an empty batch immediately with open=true.
func TestPollNeverBlocks(t *testing.T) {
	src := make(chan int)
	f := &Former[int]{Source: src, Policy: Policy{MaxSize: 4}}
	batch, open := f.Poll(nil, 4)
	if !open {
		t.Fatal("open source reported closed")
	}
	if len(batch) != 0 {
		t.Fatalf("empty source yielded %v", batch)
	}
}

// TestPollClosedSource pins shutdown: items already queued on the closing
// call are still delivered, and open flips false only once drained.
func TestPollClosedSource(t *testing.T) {
	src := make(chan int, 4)
	src <- 1
	src <- 2
	close(src)
	f := &Former[int]{Source: src}
	batch, open := f.Poll(nil, 8)
	if open {
		t.Error("drained closed source should report open=false")
	}
	if len(batch) != 2 || batch[0] != 1 || batch[1] != 2 {
		t.Fatalf("closing poll lost items: %v", batch)
	}
	batch, open = f.Poll(batch[:0], 8)
	if open || len(batch) != 0 {
		t.Fatalf("post-close poll: batch=%v open=%v", batch, open)
	}
}

// TestPollHonorsMax pins the size cap when the queue holds more than the
// free slots: exactly max items come out, the rest stay queued in order.
func TestPollHonorsMax(t *testing.T) {
	src := make(chan int, 10)
	for i := 0; i < 10; i++ {
		src <- i
	}
	f := &Former[int]{Source: src}
	batch, open := f.Poll(nil, 3)
	if !open || len(batch) != 3 {
		t.Fatalf("poll(3): batch=%v open=%v", batch, open)
	}
	batch, open = f.Poll(batch[:0], 100)
	if !open || len(batch) != 7 {
		t.Fatalf("second poll should yield the 7 remaining, got %v", batch)
	}
	for i, id := range batch {
		if id != i+3 {
			t.Fatalf("order broken across polls: %v", batch)
		}
	}
}
