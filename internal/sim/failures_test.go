package sim

import (
	"testing"
	"time"

	"arlo/internal/trace"
)

func steadyTrace(rate int, d time.Duration, length int) *trace.Trace {
	gap := time.Second / time.Duration(rate)
	var reqs []trace.Request
	id := int64(0)
	for at := time.Duration(0); at < d; at += gap {
		reqs = append(reqs, trace.Request{ID: id, At: at, Length: length})
		id++
	}
	return &trace.Trace{Requests: reqs, Duration: d}
}

func TestFailureValidation(t *testing.T) {
	p := bertProfile(t, []int{64, 512})
	tr := steadyTrace(100, time.Second, 30)
	base := Config{Profile: p, Trace: tr, InitialAllocation: []int{1, 1}, Dispatcher: rsFactory}
	cases := []Failure{
		{At: -time.Second, Runtime: 0},
		{At: 0, Runtime: 5},
		{At: 0, Runtime: -2},
		{At: 0, Runtime: 0, Downtime: -time.Second},
	}
	for i, f := range cases {
		cfg := base
		cfg.Failures = []Failure{f}
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid failure accepted", i)
		}
	}
}

func TestFailureLosesNoRequests(t *testing.T) {
	p := bertProfile(t, []int{64, 512})
	tr := steadyTrace(200, 4*time.Second, 30)
	res, err := Run(Config{
		Profile:           p,
		Trace:             tr,
		InitialAllocation: []int{2, 1},
		Dispatcher:        rsFactory,
		Failures: []Failure{
			{At: time.Second, Runtime: 0, Downtime: 500 * time.Millisecond},
			{At: 2 * time.Second, Runtime: -1, Downtime: time.Second},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 2 {
		t.Errorf("failures applied = %d, want 2", res.Failures)
	}
	if res.Completed+res.Rejected != len(tr.Requests) {
		t.Errorf("conservation violated: %d + %d != %d", res.Completed, res.Rejected, len(tr.Requests))
	}
	if res.Rejected != 0 {
		t.Errorf("crashes must not lose requests, rejected %d", res.Rejected)
	}
}

func TestFailureWithoutRecoveryShrinksCluster(t *testing.T) {
	p := bertProfile(t, []int{512})
	tr := steadyTrace(100, 2*time.Second, 30)
	res, err := Run(Config{
		Profile:           p,
		Trace:             tr,
		InitialAllocation: []int{3},
		Dispatcher:        rsFactory,
		Failures:          []Failure{{At: time.Second, Runtime: 0}}, // permanent
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.GPUs.Last(); got != 2 {
		t.Errorf("GPU count after permanent failure = %v, want 2", got)
	}
	if res.Completed != len(tr.Requests) {
		t.Errorf("completed %d, want %d", res.Completed, len(tr.Requests))
	}
}

func TestFailureRecoveryRestoresCluster(t *testing.T) {
	p := bertProfile(t, []int{512})
	tr := steadyTrace(100, 3*time.Second, 30)
	res, err := Run(Config{
		Profile:           p,
		Trace:             tr,
		InitialAllocation: []int{3},
		Dispatcher:        rsFactory,
		Failures:          []Failure{{At: time.Second, Runtime: 0, Downtime: 500 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.GPUs.Last(); got != 3 {
		t.Errorf("GPU count after recovery = %v, want 3", got)
	}
	// The dip must be visible in the series.
	sawDip := false
	for _, pt := range res.GPUs.Series() {
		if pt.Value == 2 {
			sawDip = true
		}
	}
	if !sawDip {
		t.Error("GPU series should show the outage dip")
	}
}

func TestFailureOnEmptyRuntimeIsNoop(t *testing.T) {
	p := bertProfile(t, []int{64, 512})
	tr := steadyTrace(50, time.Second, 30)
	res, err := Run(Config{
		Profile:           p,
		Trace:             tr,
		InitialAllocation: []int{0, 1},
		Dispatcher:        rsFactory,
		Failures:          []Failure{{At: 100 * time.Millisecond, Runtime: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Errorf("failure on empty runtime applied %d times, want 0", res.Failures)
	}
	if res.Completed != len(tr.Requests) {
		t.Error("workload should be unaffected")
	}
}

// TestDemotionAbsorbsFailureBetterThanILB injects a failure into the
// short runtime under sustained load: the Request Scheduler can demote
// the stranded short requests to the larger runtime, ILB cannot.
func TestDemotionAbsorbsFailureBetterThanILB(t *testing.T) {
	p := bertProfile(t, []int{64, 512})
	// 1400 req/s of short requests: one 64-instance handles ~870/s, so
	// after its crash ILB has nowhere to go (the remaining 64-instance is
	// the only ideal choice) while RS can use the two 512 instances.
	tr := steadyTrace(1400, 4*time.Second, 30)
	run := func(policy string) *Result {
		t.Helper()
		res, err := Run(Config{
			Profile:           p,
			Trace:             tr,
			InitialAllocation: []int{2, 2},
			Dispatcher:        policyFactory(policy),
			Overhead:          -1,
			Failures:          []Failure{{At: time.Second, Runtime: 0, Downtime: 2 * time.Second}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rs := run("RS")
	ilb := run("ILB")
	if rs.Summary.P98 >= ilb.Summary.P98 {
		t.Errorf("RS p98 %v should beat ILB p98 %v under instance failure", rs.Summary.P98, ilb.Summary.P98)
	}
}
