package sim

import (
	"math"
	"testing"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/dispatch"
	"arlo/internal/model"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/trace"
)

func rsFactory(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
	return dispatch.NewRequestScheduler(ml)
}

func bertProfile(t testing.TB, lengths []int) *profiler.Profile {
	t.Helper()
	p, err := profiler.StaticProfile(model.BertBase(), lengths, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func manualTrace(d time.Duration, reqs ...trace.Request) *trace.Trace {
	return &trace.Trace{Requests: reqs, Duration: d}
}

func TestConfigValidation(t *testing.T) {
	p := bertProfile(t, []int{512})
	tr := manualTrace(time.Second, trace.Request{ID: 0, At: 0, Length: 10})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil profile", Config{Trace: tr, InitialAllocation: []int{1}, Dispatcher: rsFactory}},
		{"nil trace", Config{Profile: p, InitialAllocation: []int{1}, Dispatcher: rsFactory}},
		{"nil dispatcher", Config{Profile: p, Trace: tr, InitialAllocation: []int{1}}},
		{"alloc mismatch", Config{Profile: p, Trace: tr, InitialAllocation: []int{1, 1}, Dispatcher: rsFactory}},
		{"negative alloc", Config{Profile: p, Trace: tr, InitialAllocation: []int{-1}, Dispatcher: rsFactory}},
		{"no instances", Config{Profile: p, Trace: tr, InitialAllocation: []int{0}, Dispatcher: rsFactory}},
		{"alloc without period", Config{Profile: p, Trace: tr, InitialAllocation: []int{1}, Dispatcher: rsFactory,
			Allocate: func(g int, q []float64) ([]int, error) { return []int{g}, nil }}},
	}
	for _, tc := range cases {
		if _, err := Run(tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestSingleInstanceQueueingExact(t *testing.T) {
	// One static 512 runtime, two requests arriving together: the second
	// waits exactly one execution.
	p := bertProfile(t, []int{512})
	lat := p.Runtimes[0].Latency
	tr := manualTrace(time.Second,
		trace.Request{ID: 0, At: 0, Length: 100},
		trace.Request{ID: 1, At: 0, Length: 500},
	)
	res, err := Run(Config{
		Profile:           p,
		Trace:             tr,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		Overhead:          -1, // force zero for exact arithmetic
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 || res.Rejected != 0 {
		t.Fatalf("completed=%d rejected=%d, want 2/0", res.Completed, res.Rejected)
	}
	got := res.Latency.Snapshot()
	if got[0] != lat {
		t.Errorf("first latency = %v, want %v", got[0], lat)
	}
	if got[1] != 2*lat {
		t.Errorf("second latency = %v, want %v (one execution queued)", got[1], 2*lat)
	}
}

func TestOverheadAddedToEveryRequest(t *testing.T) {
	p := bertProfile(t, []int{512})
	lat := p.Runtimes[0].Latency
	tr := manualTrace(time.Second, trace.Request{ID: 0, At: 0, Length: 10})
	res, err := Run(Config{
		Profile:           p,
		Trace:             tr,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Latency.Snapshot()[0]; got != lat+DefaultOverhead {
		t.Errorf("latency = %v, want %v + 0.8ms overhead", got, lat)
	}
}

func TestPolymorphingBeatsFullPadding(t *testing.T) {
	// Short requests on a 64-runtime are ~4.2x faster than on a 512
	// runtime; the simulator must surface that.
	p := bertProfile(t, []int{64, 512})
	reqs := make([]trace.Request, 100)
	for i := range reqs {
		reqs[i] = trace.Request{ID: int64(i), At: time.Duration(i) * 5 * time.Millisecond, Length: 20}
	}
	tr := manualTrace(time.Second, reqs...)
	short, err := Run(Config{
		Profile: p, Trace: tr, InitialAllocation: []int{1, 1},
		Dispatcher: rsFactory, Overhead: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	padded, err := Run(Config{
		Profile: p, Trace: tr, InitialAllocation: []int{0, 2},
		Dispatcher: rsFactory, Overhead: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if short.Summary.Mean >= padded.Summary.Mean {
		t.Errorf("ideal runtime mean %v should beat padded mean %v", short.Summary.Mean, padded.Summary.Mean)
	}
}

func TestRejectsOverlongRequests(t *testing.T) {
	p := bertProfile(t, []int{64, 128})
	tr := manualTrace(time.Second,
		trace.Request{ID: 0, At: 0, Length: 500},
		trace.Request{ID: 1, At: 0, Length: 100},
	)
	res, err := Run(Config{
		Profile: p, Trace: tr, InitialAllocation: []int{1, 1}, Dispatcher: rsFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 1 || res.Completed != 1 {
		t.Errorf("rejected=%d completed=%d, want 1/1", res.Rejected, res.Completed)
	}
}

func TestConservationUnderLoad(t *testing.T) {
	p := bertProfile(t, model.BertBaseArch.RuntimeLengths())
	tr, err := trace.Generate(trace.Stable(5, 800, 20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	alloc := []int{2, 2, 1, 1, 1, 1, 1, 1}
	res, err := Run(Config{
		Profile: p, Trace: tr, InitialAllocation: alloc, Dispatcher: rsFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Rejected != len(tr.Requests) {
		t.Errorf("completed %d + rejected %d != %d arrivals", res.Completed, res.Rejected, len(tr.Requests))
	}
	if res.Rejected != 0 {
		t.Errorf("512-capable cluster should reject nothing, rejected %d", res.Rejected)
	}
	if res.Summary.Mean <= 0 {
		t.Error("mean latency should be positive")
	}
	// Every latency at least one computation plus overhead.
	min := res.Latency.Min()
	if min < p.Runtimes[0].Latency {
		t.Errorf("min latency %v below one execution %v", min, p.Runtimes[0].Latency)
	}
}

func TestDeterministicRuns(t *testing.T) {
	p := bertProfile(t, model.BertBaseArch.RuntimeLengths())
	tr, err := trace.Generate(trace.Bursty(11, 500, 15*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Profile: p, Trace: tr,
		InitialAllocation: []int{2, 1, 1, 1, 1, 1, 1, 2},
		Dispatcher:        rsFactory,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Mean != b.Summary.Mean || a.Summary.P98 != b.Summary.P98 || a.Completed != b.Completed {
		t.Errorf("non-deterministic results: %v vs %v", a.Summary, b.Summary)
	}
}

func TestPeriodicReallocationFollowsDemandShift(t *testing.T) {
	// First half short requests, second half long: the Runtime Scheduler
	// must move instances from the small to the large runtime.
	p := bertProfile(t, []int{64, 512})
	var reqs []trace.Request
	id := int64(0)
	for at := time.Duration(0); at < 10*time.Second; at += 4 * time.Millisecond {
		reqs = append(reqs, trace.Request{ID: id, At: at, Length: 20})
		id++
	}
	for at := 10 * time.Second; at < 20*time.Second; at += 4 * time.Millisecond {
		reqs = append(reqs, trace.Request{ID: id, At: at, Length: 400})
		id++
	}
	tr := manualTrace(20*time.Second, reqs...)
	solver, err := allocator.NewSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Profile: p, Trace: tr,
		InitialAllocation: []int{3, 1},
		Dispatcher:        rsFactory,
		Allocate: func(g int, q []float64) ([]int, error) {
			a, err := solver.Allocate(g, q)
			if err != nil {
				return nil, err
			}
			return a.N, nil
		},
		AllocPeriod:     5 * time.Second,
		ReplacementTime: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replacements == 0 {
		t.Error("demand shift should trigger instance replacements")
	}
	last := res.Allocations[len(res.Allocations)-1]
	if last.N[1] <= 1 {
		t.Errorf("final allocation %v should favor the 512 runtime", last.N)
	}
	if res.Completed+res.Rejected != len(reqs) {
		t.Errorf("conservation violated: %d + %d != %d", res.Completed, res.Rejected, len(reqs))
	}
	if res.Rejected != 0 {
		t.Errorf("no request should be lost across replacements, rejected %d", res.Rejected)
	}
}

func TestAutoScaleOutUnderOverload(t *testing.T) {
	p := bertProfile(t, []int{512})
	// One instance at ~4.86ms/request: 400 req/s is 2x oversubscribed.
	var reqs []trace.Request
	for i := 0; i < 8000; i++ {
		reqs = append(reqs, trace.Request{ID: int64(i), At: time.Duration(i) * 2500 * time.Microsecond, Length: 300})
	}
	tr := manualTrace(20*time.Second, reqs...)
	scaler, err := allocator.NewAutoScaler(p.SLO)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Profile: p, Trace: tr,
		InitialAllocation: []int{1},
		Dispatcher:        rsFactory,
		Scaler:            scaler,
		ScalePeriod:       time.Second,
		ReplacementTime:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleOuts == 0 {
		t.Error("sustained overload should scale out")
	}
	if res.GPUs.Last() <= 1 {
		t.Errorf("GPU count should have grown, last = %v", res.GPUs.Last())
	}
	if res.TimeWeightedGPUs <= 1 {
		t.Errorf("time-weighted GPUs = %v, want > 1", res.TimeWeightedGPUs)
	}
}

func TestAutoScaleInWhenIdle(t *testing.T) {
	p := bertProfile(t, []int{512})
	// Trickle load on 4 instances: p98 stays far below 50% of the SLO.
	var reqs []trace.Request
	for i := 0; i < 140; i++ {
		reqs = append(reqs, trace.Request{ID: int64(i), At: time.Duration(i) * time.Second, Length: 100})
	}
	tr := manualTrace(140*time.Second, reqs...)
	scaler, err := allocator.NewAutoScaler(p.SLO)
	if err != nil {
		t.Fatal(err)
	}
	scaler.MinGPUs = 1
	res, err := Run(Config{
		Profile: p, Trace: tr,
		InitialAllocation: []int{4},
		Dispatcher:        rsFactory,
		Scaler:            scaler,
		ScalePeriod:       time.Second,
		ReplacementTime:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleIns == 0 {
		t.Error("idle cluster should scale in")
	}
	if res.GPUs.Last() >= 4 {
		t.Errorf("GPU count should have shrunk, last = %v", res.GPUs.Last())
	}
}

func TestRequestsWaitAcrossFullReplacement(t *testing.T) {
	// A single instance is replaced; arrivals during the 1 s gap must
	// wait for the new instance, not be dropped.
	p := bertProfile(t, []int{64, 512})
	var reqs []trace.Request
	id := int64(0)
	for at := time.Duration(0); at < 8*time.Second; at += 100 * time.Millisecond {
		reqs = append(reqs, trace.Request{ID: id, At: at, Length: 30})
		id++
	}
	tr := manualTrace(8*time.Second, reqs...)
	flip := false
	res, err := Run(Config{
		Profile: p, Trace: tr,
		InitialAllocation: []int{1, 0},
		Dispatcher:        rsFactory,
		Allocate: func(g int, q []float64) ([]int, error) {
			// Alternate the single GPU between the two runtimes to force
			// a full-cluster replacement every period.
			flip = !flip
			if flip {
				return []int{0, 1}, nil
			}
			return []int{1, 0}, nil
		},
		AllocPeriod:     2 * time.Second,
		ReplacementTime: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Errorf("requests dropped during replacement: %d", res.Rejected)
	}
	if res.Completed != len(reqs) {
		t.Errorf("completed %d, want %d", res.Completed, len(reqs))
	}
	if res.Replacements < 2 {
		t.Errorf("expected repeated replacements, got %d", res.Replacements)
	}
}

func TestNoDrainCutsOffAtTraceEnd(t *testing.T) {
	p := bertProfile(t, []int{512})
	// 100 simultaneous requests on one instance: most cannot finish
	// within the 10ms trace.
	var reqs []trace.Request
	for i := 0; i < 100; i++ {
		reqs = append(reqs, trace.Request{ID: int64(i), At: 0, Length: 10})
	}
	tr := manualTrace(10*time.Millisecond, reqs...)
	cfg := Config{Profile: p, Trace: tr, InitialAllocation: []int{1}, Dispatcher: rsFactory}
	drained, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoDrain = true
	cut, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if drained.Completed != 100 {
		t.Errorf("drained run completed %d, want all 100", drained.Completed)
	}
	if cut.Completed >= drained.Completed {
		t.Errorf("NoDrain should cut off completions: %d vs %d", cut.Completed, drained.Completed)
	}
}

// policyFactory builds a named dispatch policy factory for tests.
func policyFactory(name string) DispatcherFactory {
	return func(ml *queue.MultiLevel) (dispatch.Dispatcher, error) {
		return dispatch.New(name, ml)
	}
}

func TestPerRuntimeStats(t *testing.T) {
	p := bertProfile(t, []int{64, 512})
	tr := manualTrace(time.Second,
		trace.Request{ID: 0, At: 0, Length: 20},
		trace.Request{ID: 1, At: 0, Length: 400},
		trace.Request{ID: 2, At: 0, Length: 30},
	)
	res, err := Run(Config{
		Profile: p, Trace: tr, InitialAllocation: []int{1, 1},
		Dispatcher: rsFactory, Overhead: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRuntime) != 2 {
		t.Fatalf("per-runtime stats = %d entries, want 2", len(res.PerRuntime))
	}
	if res.PerRuntime[0].MaxLength != 64 || res.PerRuntime[1].MaxLength != 512 {
		t.Errorf("max lengths = %d/%d", res.PerRuntime[0].MaxLength, res.PerRuntime[1].MaxLength)
	}
	if res.PerRuntime[0].Completed != 2 || res.PerRuntime[1].Completed != 1 {
		t.Errorf("completed split = %d/%d, want 2/1",
			res.PerRuntime[0].Completed, res.PerRuntime[1].Completed)
	}
	// Short requests on their ideal runtime are not demotions.
	if res.PerRuntime[0].Demoted != 0 || res.PerRuntime[1].Demoted != 0 {
		t.Errorf("unexpected demotions: %+v", res.PerRuntime)
	}
	wantBusy0 := 2 * p.Runtimes[0].Latency
	if res.PerRuntime[0].BusyTime != wantBusy0 {
		t.Errorf("runtime 0 busy = %v, want %v", res.PerRuntime[0].BusyTime, wantBusy0)
	}
}

func TestPerRuntimeDemotionCounted(t *testing.T) {
	p := bertProfile(t, []int{64, 512})
	// Saturate the 64 runtime so shorts demote to the 512 instance.
	var reqs []trace.Request
	for i := 0; i < 400; i++ {
		reqs = append(reqs, trace.Request{ID: int64(i), At: time.Duration(i) * 500 * time.Microsecond, Length: 20})
	}
	tr := manualTrace(time.Second, reqs...)
	res, err := Run(Config{
		Profile: p, Trace: tr, InitialAllocation: []int{1, 1},
		Dispatcher: rsFactory, Overhead: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerRuntime[1].Demoted == 0 {
		t.Errorf("2k req/s of shorts on one 64-instance should demote some: %+v", res.PerRuntime)
	}
	if res.PerRuntime[1].Demoted != res.PerRuntime[1].Completed {
		t.Errorf("every request served by 512 here is a demotion: %+v", res.PerRuntime[1])
	}
}

// TestSimulatorMatchesMD1Theory validates the simulator (and the
// profiler's L_i curve) against queueing theory: a single static runtime
// instance under Poisson arrivals is an M/D/1 queue, whose mean sojourn
// time is lat * (1 + rho/(2(1-rho))). The simulator's measured mean must
// match the closed form within a few percent at moderate utilization.
func TestSimulatorMatchesMD1Theory(t *testing.T) {
	p := bertProfile(t, []int{512})
	lat := p.Runtimes[0].Latency
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		rate := rho / lat.Seconds()
		tr, err := trace.Generate(trace.Config{
			Seed:     int64(100 * rho),
			Duration: 60 * time.Second,
			Arrivals: trace.Poisson{Rate: rate},
			Lengths:  trace.LogNormalLengths{Mu: 4, Sigma: 0.1, Min: 1, Max: 512},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Profile: p, Trace: tr, InitialAllocation: []int{1},
			Dispatcher: rsFactory, Overhead: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := time.Duration(float64(lat) * (1 + rho/(2*(1-rho))))
		got := res.Summary.Mean
		diff := math.Abs(float64(got-want)) / float64(want)
		if diff > 0.10 {
			t.Errorf("rho=%.1f: sim mean %v vs M/D/1 %v (%.1f%% off)", rho, got, want, 100*diff)
		}
	}
}
