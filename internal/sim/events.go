package sim

import (
	"container/heap"
	"time"
)

// eventKind discriminates simulator events.
type eventKind int

const (
	evArrival eventKind = iota
	evCompletion
	evAllocTick
	evScaleTick
	evInstanceReady
	evReplace
	evFailure
)

// event is one entry of the simulation's time-ordered event queue.
type event struct {
	at   time.Duration
	seq  int64 // FIFO tie-break for equal timestamps
	kind eventKind

	req      *pendingRequest // evArrival, evCompletion
	instance *simInstance    // evCompletion, evInstanceReady
	from, to int             // evReplace: runtime indexes of the swap
	failure  *Failure        // evFailure
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// timeline wraps the heap with sequence numbering.
type timeline struct {
	h   eventHeap
	seq int64
}

func (t *timeline) push(at time.Duration, kind eventKind, req *pendingRequest, in *simInstance) {
	t.seq++
	heap.Push(&t.h, &event{at: at, seq: t.seq, kind: kind, req: req, instance: in})
}

func (t *timeline) pushReplace(at time.Duration, from, to int) {
	t.seq++
	heap.Push(&t.h, &event{at: at, seq: t.seq, kind: evReplace, from: from, to: to})
}

func (t *timeline) pushFailure(at time.Duration, f *Failure) {
	t.seq++
	heap.Push(&t.h, &event{at: at, seq: t.seq, kind: evFailure, failure: f})
}

func (t *timeline) pop() *event {
	if len(t.h) == 0 {
		return nil
	}
	return heap.Pop(&t.h).(*event)
}

func (t *timeline) empty() bool { return len(t.h) == 0 }
