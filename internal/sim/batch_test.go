package sim

import (
	"testing"
	"time"

	"arlo/internal/trace"
)

func TestBatchExecutionExactCost(t *testing.T) {
	p := bertProfile(t, []int{512})
	lat := p.Runtimes[0].Latency
	// Four simultaneous requests, batch size 4: the first starts alone
	// (event-driven, no batching delay window); the other three form one
	// batch costing 1 + 0.5*2 = 2 executions, finishing together at 3
	// executions total — versus 4 sequential executions at batch size 1.
	var reqs []trace.Request
	for i := 0; i < 4; i++ {
		reqs = append(reqs, trace.Request{ID: int64(i), At: 0, Length: 100})
	}
	tr := manualTrace(time.Second, reqs...)
	res, err := Run(Config{
		Profile: p, Trace: tr, InitialAllocation: []int{1},
		Dispatcher: rsFactory, Overhead: -1, MaxBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4 {
		t.Fatalf("completed = %d, want 4", res.Completed)
	}
	got := res.Latency.Snapshot()
	approxEq := func(a, b time.Duration) bool {
		d := a - b
		return d > -time.Microsecond && d < time.Microsecond
	}
	if !approxEq(got[0], lat) {
		t.Errorf("first latency = %v, want %v", got[0], lat)
	}
	for _, g := range got[1:] {
		if !approxEq(g, 3*lat) {
			t.Errorf("batched latency = %v, want ~%v", g, 3*lat)
		}
	}
}

func TestBatchingRaisesThroughput(t *testing.T) {
	p := bertProfile(t, []int{512})
	// 1.5x oversubscribed at batch 1: sequential execution falls behind,
	// batch 8 keeps up.
	var reqs []trace.Request
	gap := time.Duration(float64(p.Runtimes[0].Latency) / 1.5)
	for i := 0; i < 2000; i++ {
		reqs = append(reqs, trace.Request{ID: int64(i), At: time.Duration(i) * gap, Length: 100})
	}
	tr := manualTrace(time.Duration(2000)*gap, reqs...)
	run := func(batch int) *Result {
		t.Helper()
		res, err := Run(Config{
			Profile: p, Trace: tr, InitialAllocation: []int{1},
			Dispatcher: rsFactory, Overhead: -1, MaxBatch: batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	batched := run(8)
	if batched.Summary.Mean >= seq.Summary.Mean/2 {
		t.Errorf("batch-8 mean %v should be far below the collapsing batch-1 mean %v",
			batched.Summary.Mean, seq.Summary.Mean)
	}
}

func TestBatchKeepsFIFOAndConservation(t *testing.T) {
	p := bertProfile(t, []int{64, 512})
	tr, err := trace.Generate(trace.Stable(3, 1500, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Profile: p, Trace: tr, InitialAllocation: []int{2, 2},
		Dispatcher: rsFactory, MaxBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Rejected != len(tr.Requests) {
		t.Errorf("conservation violated under batching: %d + %d != %d",
			res.Completed, res.Rejected, len(tr.Requests))
	}
	if res.Rejected != 0 {
		t.Errorf("rejected %d", res.Rejected)
	}
}

func TestBatchWithFailureInjection(t *testing.T) {
	p := bertProfile(t, []int{512})
	tr := steadyTrace(400, 3*time.Second, 100)
	res, err := Run(Config{
		Profile: p, Trace: tr, InitialAllocation: []int{2},
		Dispatcher: rsFactory, MaxBatch: 4,
		Failures: []Failure{{At: time.Second, Runtime: 0, Downtime: 500 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(tr.Requests) {
		t.Errorf("crashed batch lost requests: %d of %d completed", res.Completed, len(tr.Requests))
	}
}

func TestLateBindingConservation(t *testing.T) {
	p := bertProfile(t, []int{64, 512})
	tr, err := trace.Generate(trace.Stable(7, 2500, 8*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Profile: p, Trace: tr, InitialAllocation: []int{2, 2},
		Dispatcher: rsFactory, LateBinding: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Rejected != len(tr.Requests) {
		t.Errorf("late binding lost requests: %d + %d != %d",
			res.Completed, res.Rejected, len(tr.Requests))
	}
}

func TestLateBindingBuffersUnderSaturation(t *testing.T) {
	p := bertProfile(t, []int{512})
	// Far more simultaneous requests than one instance's SLO capacity.
	var reqs []trace.Request
	for i := 0; i < 100; i++ {
		reqs = append(reqs, trace.Request{ID: int64(i), At: 0, Length: 100})
	}
	tr := manualTrace(time.Second, reqs...)
	res, err := Run(Config{
		Profile: p, Trace: tr, InitialAllocation: []int{1},
		Dispatcher: rsFactory, Overhead: -1, LateBinding: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BufferedPeak == 0 {
		t.Error("saturating burst should exercise the central buffer")
	}
	if res.Completed != 100 {
		t.Errorf("completed %d, want all 100", res.Completed)
	}
	// FIFO through the buffer: latencies of a same-length burst on one
	// instance are strictly ordered.
	snap := res.Latency.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i] < snap[i-1] {
			t.Fatal("latencies should be non-decreasing for a FIFO single instance")
		}
	}
}

func TestLateBindingImprovesTailUnderLengthBurst(t *testing.T) {
	// A burst of long requests saturates the large runtimes; late binding
	// lets queued work bind to whichever instance frees first instead of
	// gambling on one queue at arrival time.
	p := bertProfile(t, []int{64, 512})
	var reqs []trace.Request
	id := int64(0)
	for at := time.Duration(0); at < 2*time.Second; at += 600 * time.Microsecond {
		reqs = append(reqs, trace.Request{ID: id, At: at, Length: 400})
		id++
	}
	tr := manualTrace(2*time.Second, reqs...)
	run := func(late bool) *Result {
		t.Helper()
		res, err := Run(Config{
			Profile: p, Trace: tr, InitialAllocation: []int{1, 3},
			Dispatcher: rsFactory, Overhead: -1, LateBinding: late,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	early := run(false)
	late := run(true)
	if late.Summary.P98 > early.Summary.P98 {
		t.Errorf("late binding p98 %v should not exceed early binding %v",
			late.Summary.P98, early.Summary.P98)
	}
}
