// Package sim is the discrete-event cluster simulator (the Go counterpart
// of the paper's ~2000-LoC Python simulator, section 4). It models GPU
// instances executing batch-1 requests sequentially, request dispatching
// through a pluggable policy, the Runtime Scheduler's periodic
// reallocation with ~1 s instance replacement, target-tracking
// auto-scaling, and a fixed 0.8 ms per-request overhead for network and
// host-to-device transfers (section 5.2.1). All randomness lives in the
// trace; the simulation itself is deterministic.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"arlo/internal/allocator"
	"arlo/internal/dispatch"
	"arlo/internal/metrics"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/trace"
)

// DefaultOverhead is the fixed per-request overhead the paper adds in its
// simulator for network and CPU-to-GPU transfer time.
const DefaultOverhead = 800 * time.Microsecond

// AllocatorFunc computes a per-runtime instance allocation for g GPUs
// given the observed demand q (requests per SLO window per length bin).
type AllocatorFunc func(g int, q []float64) ([]int, error)

// DispatcherFactory builds the dispatch policy over the simulator's
// multi-level queue.
type DispatcherFactory func(ml *queue.MultiLevel) (dispatch.Dispatcher, error)

// Config describes one simulation run.
type Config struct {
	// Profile is the offline runtime profile (defines runtimes and SLO).
	Profile *profiler.Profile
	// Trace drives arrivals.
	Trace *trace.Trace
	// InitialAllocation is the starting per-runtime instance counts; its
	// sum is the starting GPU count.
	InitialAllocation []int
	// Dispatcher builds the request-dispatch policy (required).
	Dispatcher DispatcherFactory
	// Allocate is the Runtime Scheduler policy invoked every AllocPeriod;
	// nil disables periodic reallocation (fixed deployment).
	Allocate AllocatorFunc
	// AllocPeriod is the Runtime Scheduler period (paper: 120 s).
	AllocPeriod time.Duration
	// ReplacementTime is how long an instance swap keeps the GPU offline
	// (paper: ~1 s). Also used as provisioning time for scale-out.
	ReplacementTime time.Duration
	// Overhead is added to every request's latency (default 0.8 ms; set
	// negative to force zero).
	Overhead time.Duration
	// Scaler enables auto-scaling when non-nil; observed every
	// ScalePeriod (default 1 s) over a 10 s completion window. Use
	// allocator.AutoScaler for Arlo's target tracking or
	// allocator.HeadroomScaler for the INFaaS-style heuristic the paper
	// equips the baselines with.
	Scaler allocator.Scaler
	// ScalePeriod is the auto-scaler observation interval.
	ScalePeriod time.Duration
	// Drain keeps the simulation running past the trace end until all
	// dispatched requests complete (default true behaviour; set NoDrain
	// to cut off at the trace end instead).
	NoDrain bool
	// Failures injects instance outages (see Failure).
	Failures []Failure
	// MaxBatch lets an idle instance execute up to this many queued
	// requests as one batch (sub-linear batch cost, model.BatchScale).
	// The paper serves at batch size 1 (its latency-sensitive default)
	// and discusses dynamic batching as future work (section 6); values
	// > 1 enable that extension. 0 or 1 means batch size 1.
	MaxBatch int
	// LateBinding holds a request in the central request buffer (the
	// paper's Fig. 3 component (e)) instead of committing it to an
	// instance whose queue already exceeds its SLO capacity; buffered
	// requests are re-dispatched as completions free capacity. Early
	// binding (the default) matches Algorithm 1's behaviour of always
	// dispatching immediately.
	LateBinding bool
}

// AllocationPoint records the per-runtime instance counts at a moment —
// the Fig. 12 time series.
type AllocationPoint struct {
	At time.Duration
	N  []int
}

// Result collects a run's measurements.
type Result struct {
	// Latency holds one sample per completed request.
	Latency *metrics.Recorder
	// Summary is computed against the profile's SLO.
	Summary metrics.Summary
	// Completed and Rejected count requests; Rejected are requests
	// longer than every runtime (never dispatched).
	Completed, Rejected int
	// GPUs tracks the provisioned GPU count over time (auto-scaling).
	GPUs metrics.TimeWeighted
	// TimeWeightedGPUs is GPUs averaged over the trace window.
	TimeWeightedGPUs float64
	// Allocations is the per-runtime allocation time series (Fig. 12).
	Allocations []AllocationPoint
	// Replacements counts instance swaps performed by reallocation.
	Replacements int
	// ScaleOuts and ScaleIns count auto-scaling actions.
	ScaleOuts, ScaleIns int
	// Failures counts injected instance crashes that took effect.
	Failures int
	// BufferedPeak is the largest central-buffer depth observed under
	// late binding (0 without it).
	BufferedPeak int
	// PerRuntime breaks completions down by the runtime that served them.
	PerRuntime []RuntimeStats
}

// RuntimeStats aggregates one runtime's share of the served work.
type RuntimeStats struct {
	// MaxLength identifies the runtime.
	MaxLength int
	// Completed counts requests this runtime served.
	Completed int
	// BusyTime is the total computation time spent on this runtime's
	// instances (excluding queueing and overhead).
	BusyTime time.Duration
	// Demoted counts served requests whose ideal runtime was smaller —
	// work the Request Scheduler demoted here.
	Demoted int
}

// pendingRequest is one in-flight request.
type pendingRequest struct {
	id      int64
	length  int
	arrival time.Duration
}

// simInstance is the executor state of one GPU instance.
type simInstance struct {
	sched        *queue.Instance
	fifo         []*pendingRequest // dispatched, waiting to execute
	executing    []*pendingRequest // the in-flight batch (nil when idle)
	retired      bool              // removed from dispatching; lets executing work finish
	countOnReady bool              // failure recovery: restore s.counts when brought up
}

// Simulator runs one configured simulation.
type Simulator struct {
	cfg       Config
	ml        *queue.MultiLevel
	disp      dispatch.Dispatcher
	tl        timeline
	insts     map[int]*simInstance
	nextID    int
	now       time.Duration
	res       *Result
	counts    []int          // current instance count per runtime (incl. pending swaps)
	binUpper  []int          // runtime max_lengths for demand binning
	arrivals  []int          // arrivals per bin in the current alloc period
	recent    []timedLatency // completion window for autoscaler observations
	overhead  time.Duration
	nextArr   int               // next trace request to schedule (lazy arrivals)
	waiting   []*pendingRequest // requests stalled with no deployable instance
	buffer    []*pendingRequest // late-binding central request buffer (FIFO)
	lastAlloc time.Duration     // when the demand window was last reset
}

type timedLatency struct {
	at  time.Duration
	lat time.Duration
}

// Run executes the simulation and returns its Result.
func Run(cfg Config) (*Result, error) {
	s, err := newSimulator(cfg)
	if err != nil {
		return nil, err
	}
	return s.run()
}

func newSimulator(cfg Config) (*Simulator, error) {
	if cfg.Profile == nil || len(cfg.Profile.Runtimes) == 0 {
		return nil, fmt.Errorf("sim: profile with no runtimes")
	}
	if cfg.Trace == nil {
		return nil, fmt.Errorf("sim: nil trace")
	}
	if cfg.Dispatcher == nil {
		return nil, fmt.Errorf("sim: nil dispatcher factory")
	}
	if len(cfg.InitialAllocation) != len(cfg.Profile.Runtimes) {
		return nil, fmt.Errorf("sim: initial allocation has %d entries for %d runtimes",
			len(cfg.InitialAllocation), len(cfg.Profile.Runtimes))
	}
	totalGPUs := 0
	for i, n := range cfg.InitialAllocation {
		if n < 0 {
			return nil, fmt.Errorf("sim: negative allocation at runtime %d", i)
		}
		totalGPUs += n
	}
	if totalGPUs == 0 {
		return nil, fmt.Errorf("sim: initial allocation deploys no instances")
	}
	if cfg.Allocate != nil && cfg.AllocPeriod <= 0 {
		return nil, fmt.Errorf("sim: periodic allocation requires a positive period")
	}
	if err := validateFailures(cfg.Failures, len(cfg.Profile.Runtimes)); err != nil {
		return nil, err
	}
	if cfg.Scaler != nil && cfg.ScalePeriod <= 0 {
		cfg.ScalePeriod = time.Second
	}
	overhead := cfg.Overhead
	if overhead == 0 {
		overhead = DefaultOverhead
	} else if overhead < 0 {
		overhead = 0
	}

	ml, err := queue.NewMultiLevel(cfg.Profile.MaxLengths())
	if err != nil {
		return nil, err
	}
	disp, err := cfg.Dispatcher(ml)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:      cfg,
		ml:       ml,
		disp:     disp,
		insts:    make(map[int]*simInstance),
		res:      &Result{Latency: metrics.NewRecorder(len(cfg.Trace.Requests))},
		counts:   append([]int{}, cfg.InitialAllocation...),
		binUpper: cfg.Profile.MaxLengths(),
		arrivals: make([]int, len(cfg.Profile.Runtimes)),
		overhead: overhead,
	}
	s.res.PerRuntime = make([]RuntimeStats, len(cfg.Profile.Runtimes))
	for i, rt := range cfg.Profile.Runtimes {
		s.res.PerRuntime[i].MaxLength = rt.MaxLength
	}
	for rtIdx, n := range cfg.InitialAllocation {
		for k := 0; k < n; k++ {
			if err := s.addInstance(rtIdx); err != nil {
				return nil, err
			}
		}
	}
	s.res.GPUs.Set(0, float64(totalGPUs))
	s.recordAllocation(0)
	return s, nil
}

func (s *Simulator) run() (*Result, error) {
	// Arrivals are scheduled lazily (one outstanding arrival event at a
	// time) so multi-minute, multi-thousand-req/s traces do not inflate
	// the event heap.
	s.scheduleNextArrival()
	s.scheduleFailures()
	if s.cfg.Allocate != nil {
		s.tl.push(s.cfg.AllocPeriod, evAllocTick, nil, nil)
	}
	if s.cfg.Scaler != nil {
		s.tl.push(s.cfg.ScalePeriod, evScaleTick, nil, nil)
	}

	end := s.cfg.Trace.Duration
	for !s.tl.empty() {
		e := s.tl.pop()
		if s.cfg.NoDrain && e.at > end {
			break
		}
		s.now = e.at
		switch e.kind {
		case evArrival:
			s.onArrival(e.req)
		case evCompletion:
			s.onCompletion(e.instance, e.req)
		case evAllocTick:
			if e.at <= end { // stop re-arming past the trace
				s.onAllocTick()
				s.tl.push(e.at+s.cfg.AllocPeriod, evAllocTick, nil, nil)
			}
		case evScaleTick:
			if e.at <= end {
				s.onScaleTick()
				s.tl.push(e.at+s.cfg.ScalePeriod, evScaleTick, nil, nil)
			}
		case evInstanceReady:
			s.onInstanceReady(e.instance)
		case evReplace:
			s.replaceOne(e.from, e.to)
		case evFailure:
			s.onFailure(e.failure)
		}
	}
	s.finish()
	return s.res, nil
}

// addInstance creates an instance of runtime rtIdx, registers it for
// dispatching, and returns nil. The caller maintains s.counts.
func (s *Simulator) addInstance(rtIdx int) error {
	rt := s.cfg.Profile.Runtimes[rtIdx]
	in := &queue.Instance{ID: s.nextID, Runtime: rtIdx, MaxCapacity: rt.Capacity}
	s.nextID++
	if err := s.ml.Add(in); err != nil {
		return err
	}
	s.insts[in.ID] = &simInstance{sched: in}
	return nil
}

// scheduleNextArrival pushes the next trace request onto the timeline.
func (s *Simulator) scheduleNextArrival() {
	if s.nextArr >= len(s.cfg.Trace.Requests) {
		return
	}
	r := &s.cfg.Trace.Requests[s.nextArr]
	s.nextArr++
	s.tl.push(r.At, evArrival, &pendingRequest{id: r.ID, length: r.Length, arrival: r.At}, nil)
}

// onArrival dispatches a request (or rejects an over-long one).
func (s *Simulator) onArrival(req *pendingRequest) {
	s.scheduleNextArrival()
	if bin := s.binOf(req.length); bin >= 0 {
		s.arrivals[bin]++
	}
	s.dispatchRequest(req)
}

func (s *Simulator) dispatchRequest(req *pendingRequest) {
	in, err := s.disp.Dispatch(req.length)
	if err != nil {
		if errors.Is(err, dispatch.ErrTooLong) {
			s.res.Rejected++
			return
		}
		// No instance is deployable right now (e.g. mid-replacement):
		// park the request; it is re-dispatched when an instance comes up.
		s.waiting = append(s.waiting, req)
		return
	}
	if s.cfg.LateBinding && in.Outstanding() > in.MaxCapacity {
		// Every candidate is past its SLO capacity (the dispatcher picked
		// this one as the best available): hold the request centrally and
		// bind it when capacity frees up, rather than committing it to a
		// queue it cannot clear in time.
		s.ml.OnComplete(in) // revert the dispatch accounting
		s.buffer = append(s.buffer, req)
		if len(s.buffer) > s.res.BufferedPeak {
			s.res.BufferedPeak = len(s.buffer)
		}
		return
	}
	si := s.insts[in.ID]
	si.fifo = append(si.fifo, req)
	s.maybeStart(si)
}

// drainBuffer re-attempts dispatch for buffered requests in FIFO order,
// scanning past head-of-line requests whose candidates are still full
// (bounded so a deep buffer cannot stall the event loop).
func (s *Simulator) drainBuffer() {
	if len(s.buffer) == 0 {
		return
	}
	const scanLimit = 64
	kept := s.buffer[:0]
	placed := 0
	for i, req := range s.buffer {
		if i >= scanLimit && placed == 0 {
			kept = append(kept, s.buffer[i:]...)
			break
		}
		in, err := s.disp.Dispatch(req.length)
		if err != nil {
			kept = append(kept, req)
			continue
		}
		if in.Outstanding() > in.MaxCapacity {
			s.ml.OnComplete(in)
			kept = append(kept, req)
			continue
		}
		si := s.insts[in.ID]
		si.fifo = append(si.fifo, req)
		s.maybeStart(si)
		placed++
	}
	s.buffer = kept
}

// maybeStart begins executing the instance's next batch when idle: up to
// MaxBatch queued requests run together at the sub-linear batch cost.
func (s *Simulator) maybeStart(si *simInstance) {
	if si.executing != nil || len(si.fifo) == 0 {
		return
	}
	take := 1
	if s.cfg.MaxBatch > 1 {
		take = s.cfg.MaxBatch
		if take > len(si.fifo) {
			take = len(si.fifo)
		}
	}
	batch := si.fifo[:take:take]
	si.fifo = si.fifo[take:]
	si.executing = batch
	rt := s.cfg.Profile.Runtimes[si.sched.Runtime]
	var cost time.Duration
	if take == 1 {
		cost = rt.CostOf(batch[0].length)
	} else {
		lengths := make([]int, take)
		for i, r := range batch {
			lengths[i] = r.length
		}
		cost = rt.BatchCostOf(lengths)
	}
	s.tl.push(s.now+cost, evCompletion, batch[0], si)
}

// onCompletion finishes the executing batch and starts the next. A
// completion whose lead request no longer matches the instance's
// executing batch is stale (the instance crashed mid-execution and the
// work was re-dispatched elsewhere) and is ignored.
func (s *Simulator) onCompletion(si *simInstance, lead *pendingRequest) {
	if len(si.executing) == 0 || si.executing[0] != lead {
		return
	}
	batch := si.executing
	si.executing = nil
	rtIdx := si.sched.Runtime
	rt := s.cfg.Profile.Runtimes[rtIdx]
	rs := &s.res.PerRuntime[rtIdx]
	for _, req := range batch {
		lat := s.now - req.arrival + s.overhead
		s.res.Latency.Record(lat)
		s.res.Completed++
		rs.Completed++
		rs.BusyTime += rt.CostOf(req.length)
		if ideal, ok := s.cfg.Profile.IdealRuntime(req.length); ok && ideal < rtIdx {
			rs.Demoted++
		}
		if s.cfg.Scaler != nil {
			s.recent = append(s.recent, timedLatency{at: s.now, lat: lat})
		}
		s.ml.OnComplete(si.sched) // harmless when the instance is retired
	}
	if si.retired && si.executing == nil && len(si.fifo) == 0 {
		delete(s.insts, si.sched.ID)
		return
	}
	if s.cfg.LateBinding {
		s.drainBuffer()
	}
	s.maybeStart(si)
}

// binOf maps a request length to its runtime bin (largest bin for
// over-long requests mirrors trace.BinCounts; -1 for non-positive).
func (s *Simulator) binOf(length int) int {
	if length <= 0 {
		return -1
	}
	i := sort.SearchInts(s.binUpper, length)
	if i >= len(s.binUpper) {
		i = len(s.binUpper) - 1
	}
	return i
}

// onAllocTick runs the Runtime Scheduler: estimate demand from the
// arrivals of the elapsed window, solve the allocation, and apply a
// minimal replacement plan. It runs on the decision period and — per the
// paper's "automatically adapt to the length distribution with scaled
// resources" — immediately after every auto-scaling action.
func (s *Simulator) onAllocTick() {
	if s.cfg.Allocate == nil {
		return
	}
	slo := s.cfg.Profile.SLO
	elapsed := s.now - s.lastAlloc
	if elapsed < slo {
		return // window too short to estimate demand
	}
	windows := float64(elapsed) / float64(slo)
	q := make([]float64, len(s.arrivals))
	total := 0
	for i, c := range s.arrivals {
		q[i] = float64(c) / windows
		total += c
		s.arrivals[i] = 0
	}
	s.lastAlloc = s.now
	if total == 0 {
		return // an idle window says nothing; keep the deployment
	}
	g := 0
	for _, n := range s.counts {
		g += n
	}
	target, err := s.cfg.Allocate(g, q)
	if err != nil || len(target) != len(s.counts) {
		return // keep the current deployment on solver failure
	}
	plan, err := allocator.PlanReplacements(s.counts, target)
	if err != nil {
		return
	}
	// Roll the plan out in small batches (section 4): each batch starts
	// when the previous batch's replacements complete, so only a couple
	// of GPUs are ever offline at once.
	const batchSize = 2
	for bi, batch := range allocator.Batches(plan, batchSize) {
		start := s.now + time.Duration(bi)*s.cfg.ReplacementTime
		for _, rep := range batch {
			s.tl.pushReplace(start, rep.From, rep.To)
		}
	}
	copy(s.counts, target)
	s.recordAllocation(s.now)
}

// replaceOne retires the least-loaded instance of runtime from and
// provisions one of runtime to after the replacement delay. Queued (not
// yet executing) requests of the retired instance are re-dispatched.
func (s *Simulator) replaceOne(from, to int) {
	victim := s.leastLoadedOf(from)
	if victim == nil {
		return
	}
	s.retire(victim)
	s.res.Replacements++
	ready := &simInstance{sched: &queue.Instance{
		ID:          s.nextID,
		Runtime:     to,
		MaxCapacity: s.cfg.Profile.Runtimes[to].Capacity,
	}}
	s.nextID++
	s.tl.push(s.now+s.cfg.ReplacementTime, evInstanceReady, nil, ready)
}

// retire removes an instance from dispatching and re-dispatches its
// queued requests; the executing request (if any) runs to completion.
func (s *Simulator) retire(si *simInstance) {
	s.ml.Remove(si.sched.ID)
	si.retired = true
	queued := si.fifo
	si.fifo = nil
	// The retired instance's outstanding count drops to just the
	// executing request.
	if o := si.sched.Outstanding() - len(queued); o > 0 {
		si.sched.SetOutstanding(o)
	} else {
		si.sched.SetOutstanding(0)
	}
	if si.executing == nil {
		delete(s.insts, si.sched.ID)
	}
	for _, req := range queued {
		s.dispatchRequest(req)
	}
}

// leastLoadedOf returns the active instance of the runtime with the
// fewest outstanding requests, or nil.
func (s *Simulator) leastLoadedOf(rtIdx int) *simInstance {
	var best *simInstance
	for _, si := range s.insts {
		if si.retired || si.sched.Runtime != rtIdx {
			continue
		}
		if best == nil || si.sched.Outstanding() < best.sched.Outstanding() ||
			(si.sched.Outstanding() == best.sched.Outstanding() && si.sched.ID < best.sched.ID) {
			best = si
		}
	}
	return best
}

// leastLoadedAny returns the least loaded active instance cluster-wide.
func (s *Simulator) leastLoadedAny() *simInstance {
	var best *simInstance
	for _, si := range s.insts {
		if si.retired {
			continue
		}
		if best == nil || si.sched.Outstanding() < best.sched.Outstanding() ||
			(si.sched.Outstanding() == best.sched.Outstanding() && si.sched.ID < best.sched.ID) {
			best = si
		}
	}
	return best
}

// onInstanceReady brings a provisioned/replaced instance online and
// re-dispatches any requests that were stalled with no instance available.
func (s *Simulator) onInstanceReady(si *simInstance) {
	if err := s.ml.Add(si.sched); err != nil {
		return
	}
	s.insts[si.sched.ID] = si
	if si.countOnReady {
		si.countOnReady = false
		s.counts[si.sched.Runtime]++
		s.res.GPUs.Set(s.now, s.res.GPUs.Last()+1)
	}
	if len(s.waiting) > 0 {
		stalled := s.waiting
		s.waiting = nil
		for _, req := range stalled {
			s.dispatchRequest(req)
		}
	}
}

// onScaleTick observes the recent completion window and applies the
// auto-scaler's decision (section 4): scale-out adds a max-length
// instance, scale-in retires the least busy instance.
func (s *Simulator) onScaleTick() {
	window := 10 * time.Second
	cut := s.now - window
	keep := s.recent[:0]
	for _, tl := range s.recent {
		if tl.at >= cut {
			keep = append(keep, tl)
		}
	}
	s.recent = keep
	if len(s.recent) == 0 {
		return
	}
	p98 := p98Of(s.recent)
	g := 0
	for _, n := range s.counts {
		g += n
	}
	switch s.cfg.Scaler.ObserveLoad(s.now, p98, s.utilization(), g) {
	case allocator.ScaleOut:
		last := len(s.counts) - 1
		s.counts[last]++
		s.res.ScaleOuts++
		ready := &simInstance{sched: &queue.Instance{
			ID:          s.nextID,
			Runtime:     last,
			MaxCapacity: s.cfg.Profile.Runtimes[last].Capacity,
		}}
		s.nextID++
		s.tl.push(s.now+s.cfg.ReplacementTime, evInstanceReady, nil, ready)
		s.res.GPUs.Set(s.now, float64(g+1))
		s.recordAllocation(s.now)
		s.onAllocTick() // rebalance runtimes for the new cluster size
	case allocator.ScaleIn:
		victim := s.leastLoadedAny()
		if victim == nil {
			return
		}
		s.counts[victim.sched.Runtime]--
		s.res.ScaleIns++
		s.retire(victim)
		s.res.GPUs.Set(s.now, float64(g-1))
		s.recordAllocation(s.now)
		s.onAllocTick()
	}
}

// utilization returns the cluster-wide queue utilization: outstanding
// requests over the instances' aggregate SLO capacity.
func (s *Simulator) utilization() float64 {
	outstanding, capacity := 0, 0
	for _, in := range s.ml.Instances() {
		outstanding += in.Outstanding()
		capacity += in.MaxCapacity
	}
	if capacity == 0 {
		return 1
	}
	return float64(outstanding) / float64(capacity)
}

func p98Of(window []timedLatency) time.Duration {
	lats := make([]time.Duration, len(window))
	for i, tl := range window {
		lats[i] = tl.lat
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(0.98*float64(len(lats))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	return lats[idx]
}

func (s *Simulator) recordAllocation(at time.Duration) {
	s.res.Allocations = append(s.res.Allocations, AllocationPoint{
		At: at,
		N:  append([]int{}, s.counts...),
	})
}

func (s *Simulator) finish() {
	s.res.Summary = s.res.Latency.Summarize(s.cfg.Profile.SLO)
	s.res.TimeWeightedGPUs = s.res.GPUs.Average(s.cfg.Trace.Duration)
}
