package sim

import (
	"fmt"
	"sort"
	"time"

	"arlo/internal/failover"
	"arlo/internal/queue"
)

// Failure injects an instance outage: at time At, one instance of the
// given runtime crashes (its queued requests are re-dispatched, the
// executing request is lost and re-dispatched too), and the GPU rejoins
// with the same runtime after Downtime. Failures model the paper's
// "idiosyncratic factors such as failures and bugs" (section 1) that
// unbalance load faster than the Runtime Scheduler reacts — the case the
// Request Scheduler's dynamics-awareness is built for.
type Failure struct {
	// At is when the instance crashes.
	At time.Duration
	// Runtime selects which runtime loses an instance (the most loaded
	// instance of that runtime is chosen); -1 picks the most loaded
	// instance cluster-wide.
	Runtime int
	// Downtime is how long the GPU stays offline (0 keeps it down for
	// the rest of the run).
	Downtime time.Duration
}

// validateFailures checks failure specs against the profile.
func validateFailures(failures []Failure, numRuntimes int) error {
	for i, f := range failures {
		if f.At < 0 {
			return fmt.Errorf("sim: failure %d at negative time %v", i, f.At)
		}
		if f.Runtime < -1 || f.Runtime >= numRuntimes {
			return fmt.Errorf("sim: failure %d targets runtime %d outside [-1, %d)", i, f.Runtime, numRuntimes)
		}
		if f.Downtime < 0 {
			return fmt.Errorf("sim: failure %d has negative downtime", i)
		}
	}
	return nil
}

// scheduleFailures pushes failure events onto the timeline, in time order.
func (s *Simulator) scheduleFailures() {
	failures := append([]Failure{}, s.cfg.Failures...)
	sort.Slice(failures, func(i, j int) bool { return failures[i].At < failures[j].At })
	for i := range failures {
		f := failures[i]
		s.tl.pushFailure(f.At, &f)
	}
}

// onFailure crashes an instance: queued and executing work is
// re-dispatched (the executing request restarts from scratch elsewhere),
// and recovery is scheduled when Downtime is positive. Victim selection
// delegates to the failover rule shared with the live cluster.
func (s *Simulator) onFailure(f *Failure) {
	victim := s.pickVictim(f.Runtime)
	if victim == nil {
		return // nothing to crash (e.g. runtime currently has no instances)
	}
	rtIdx := victim.sched.Runtime
	s.res.Failures++
	s.counts[rtIdx]--
	// Capture the executing batch before retiring: a crash loses the
	// in-flight computation, unlike a graceful replacement.
	executing := victim.executing
	victim.executing = nil
	if o := victim.sched.Outstanding() - len(executing); o > 0 {
		victim.sched.SetOutstanding(o)
	} else {
		victim.sched.SetOutstanding(0)
	}
	s.retire(victim)
	delete(s.insts, victim.sched.ID)
	for _, req := range executing {
		s.dispatchRequest(req)
	}
	s.res.GPUs.Set(s.now, s.res.GPUs.Last()-1)
	if f.Downtime > 0 {
		recovered := &simInstance{
			sched: &queue.Instance{
				ID:          s.nextID,
				Runtime:     rtIdx,
				MaxCapacity: s.cfg.Profile.Runtimes[rtIdx].Capacity,
			},
			countOnReady: true,
		}
		s.nextID++
		s.tl.push(s.now+f.Downtime, evInstanceReady, nil, recovered)
	}
}

// pickVictim applies failover.PickVictim (most loaded, ties toward the
// smaller ID, -1 for cluster-wide) over the active instances and maps the
// choice back to its simInstance, or nil when none matches.
func (s *Simulator) pickVictim(rtIdx int) *simInstance {
	insts := make([]*queue.Instance, 0, len(s.insts))
	for _, si := range s.insts {
		if si.retired {
			continue
		}
		insts = append(insts, si.sched)
	}
	chosen := failover.PickVictim(insts, rtIdx)
	if chosen == nil {
		return nil
	}
	return s.insts[chosen.ID]
}
