package profiler

import (
	"testing"
	"time"

	"arlo/internal/model"
)

func bertBaseProfile(t *testing.T) *Profile {
	t.Helper()
	lm := model.BertBase()
	p, err := StaticProfile(lm, lm.Arch().RuntimeLengths(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStaticProfileBertBase(t *testing.T) {
	p := bertBaseProfile(t)
	if len(p.Runtimes) != 8 {
		t.Fatalf("runtimes = %d, want 8", len(p.Runtimes))
	}
	for i, r := range p.Runtimes {
		if r.Index != i {
			t.Errorf("runtime %d has index %d", i, r.Index)
		}
		if r.MaxLength != 64*(i+1) {
			t.Errorf("runtime %d max_length = %d, want %d", i, r.MaxLength, 64*(i+1))
		}
		if r.Compilation != model.Static {
			t.Errorf("runtime %d not static", i)
		}
		if i > 0 && r.Latency <= p.Runtimes[i-1].Latency {
			t.Errorf("latency must increase with max_length at %d", i)
		}
		if i > 0 && r.Capacity >= p.Runtimes[i-1].Capacity {
			t.Errorf("capacity must decrease with max_length at %d", i)
		}
		if r.DrainTime(r.Capacity) > p.SLO {
			t.Errorf("runtime %d: capacity %d does not fit the SLO", i, r.Capacity)
		}
		if r.DrainTime(r.Capacity+1) <= p.SLO {
			t.Errorf("runtime %d: capacity %d is not maximal", i, r.Capacity)
		}
	}
	// Shortest runtime should hold well over 100 requests within 150 ms
	// at ~1.15 ms each.
	if p.Runtimes[0].Capacity < 100 {
		t.Errorf("64-runtime capacity = %d, want > 100", p.Runtimes[0].Capacity)
	}
}

func TestStaticProfileValidation(t *testing.T) {
	lm := model.BertBase()
	slo := 150 * time.Millisecond
	if _, err := StaticProfile(nil, []int{64}, slo); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := StaticProfile(lm, []int{64}, 0); err == nil {
		t.Error("zero SLO should fail")
	}
	if _, err := StaticProfile(lm, nil, slo); err == nil {
		t.Error("no lengths should fail")
	}
	if _, err := StaticProfile(lm, []int{128, 64}, slo); err == nil {
		t.Error("unsorted lengths should fail")
	}
	if _, err := StaticProfile(lm, []int{64, 64}, slo); err == nil {
		t.Error("duplicate lengths should fail")
	}
	if _, err := StaticProfile(lm, []int{-64}, slo); err == nil {
		t.Error("negative length should fail")
	}
	if _, err := StaticProfile(lm, []int{512}, time.Millisecond); err == nil {
		t.Error("SLO below one execution should fail")
	}
}

func TestCostOfStaticIgnoresLength(t *testing.T) {
	p := bertBaseProfile(t)
	r := p.Runtimes[3] // max_length 256
	if r.CostOf(1) != r.CostOf(256) {
		t.Error("static runtime cost must not depend on request length")
	}
	if r.CostOf(10) != r.Latency {
		t.Error("static cost should equal profiled latency")
	}
}

func TestDynamicProfile(t *testing.T) {
	lm := model.BertBase()
	lengths := []int{10, 20, 30, 100, 400}
	p, err := DynamicProfile(lm, lengths, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Runtimes) != 1 {
		t.Fatalf("dynamic profile should have one runtime, got %d", len(p.Runtimes))
	}
	r := p.Runtimes[0]
	if r.Compilation != model.Dynamic {
		t.Error("runtime should be dynamic")
	}
	if r.MaxLength != 512 {
		t.Errorf("dynamic runtime max_length = %d, want 512", r.MaxLength)
	}
	// Dynamic cost depends on request length.
	if r.CostOf(10) >= r.CostOf(400) {
		t.Error("dynamic cost should grow with length")
	}
	// Mean latency should be bracketed by the extremes.
	if r.Latency < r.CostOf(10) || r.Latency > r.CostOf(400) {
		t.Errorf("profiled mean %v outside cost range [%v, %v]", r.Latency, r.CostOf(10), r.CostOf(400))
	}
}

func TestDynamicProfileValidation(t *testing.T) {
	lm := model.BertBase()
	if _, err := DynamicProfile(nil, []int{10}, time.Second); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := DynamicProfile(lm, nil, time.Second); err == nil {
		t.Error("no sample lengths should fail")
	}
	if _, err := DynamicProfile(lm, []int{0}, time.Second); err == nil {
		t.Error("zero sample length should fail")
	}
	if _, err := DynamicProfile(lm, []int{9999}, time.Second); err == nil {
		t.Error("over-long sample should fail")
	}
	if _, err := DynamicProfile(lm, []int{512}, 0); err == nil {
		t.Error("zero SLO should fail")
	}
	if _, err := DynamicProfile(lm, []int{512}, time.Millisecond); err == nil {
		t.Error("SLO below mean latency should fail")
	}
}

func TestIdealRuntime(t *testing.T) {
	p := bertBaseProfile(t)
	cases := []struct {
		length  int
		wantIdx int
		wantOK  bool
	}{
		{1, 0, true}, {64, 0, true}, {65, 1, true},
		{200, 3, true}, {512, 7, true}, {513, 0, false},
	}
	for _, tc := range cases {
		idx, ok := p.IdealRuntime(tc.length)
		if idx != tc.wantIdx || ok != tc.wantOK {
			t.Errorf("IdealRuntime(%d) = (%d, %v), want (%d, %v)", tc.length, idx, ok, tc.wantIdx, tc.wantOK)
		}
	}
}

func TestMeanLatency(t *testing.T) {
	p := bertBaseProfile(t)
	r := p.Runtimes[0]
	if got := r.MeanLatency(0); got != 0 {
		t.Errorf("mean latency of empty workload = %v, want 0", got)
	}
	// A near-idle instance costs about one execution.
	light := r.MeanLatency(1)
	if light < r.Latency || light > r.Latency*11/10 {
		t.Errorf("mean latency at B=1 = %v, want ~%v", light, r.Latency)
	}
	// The curve is strictly increasing and convex in workload.
	cap := float64(r.Capacity)
	prev := time.Duration(0)
	prevDelta := time.Duration(0)
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
		cur := r.MeanLatency(frac * cap)
		if cur <= prev {
			t.Fatalf("mean latency not increasing at rho=%.2f", frac)
		}
		if delta := cur - prev; prev != 0 && delta <= prevDelta {
			t.Fatalf("mean latency not convex at rho=%.2f", frac)
		} else if prev != 0 {
			prevDelta = delta
		}
		prev = cur
	}
	// Near saturation queueing dominates: >> one execution.
	if got := r.MeanLatency(0.95 * cap); got < 5*r.Latency {
		t.Errorf("mean latency at rho=0.95 = %v, want >> %v", got, r.Latency)
	}
	// Past saturation the curve keeps growing.
	if r.MeanLatency(1.5*cap) <= r.MeanLatency(1.0*cap) {
		t.Error("overloaded curve must keep growing")
	}
}

func TestAcceptsAndHelpers(t *testing.T) {
	p := bertBaseProfile(t)
	r := p.Runtimes[1] // 128
	if !r.Accepts(128) || r.Accepts(129) || r.Accepts(0) {
		t.Error("Accepts boundary behaviour wrong")
	}
	if got := p.Largest().MaxLength; got != 512 {
		t.Errorf("largest = %d, want 512", got)
	}
	mls := p.MaxLengths()
	if len(mls) != 8 || mls[0] != 64 || mls[7] != 512 {
		t.Errorf("MaxLengths = %v", mls)
	}
	if r.DrainTime(-1) != 0 {
		t.Error("negative drain should be 0")
	}
}

func TestBatchCostOf(t *testing.T) {
	p := bertBaseProfile(t)
	r := p.Runtimes[3] // max_length 256
	if got := r.BatchCostOf(nil); got != 0 {
		t.Errorf("empty batch cost = %v, want 0", got)
	}
	if got := r.BatchCostOf([]int{100}); got != r.CostOf(100) {
		t.Errorf("singleton batch cost = %v, want %v", got, r.CostOf(100))
	}
	// A static runtime's batch cost scales sub-linearly and is driven by
	// the compiled shape, not the batch's lengths.
	b4 := r.BatchCostOf([]int{10, 20, 30, 40})
	want := time.Duration(float64(r.Latency) * 2.5) // 1 + 0.5*3
	if diff := b4 - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("batch-4 cost = %v, want ~%v", b4, want)
	}
	if b4 >= 4*r.Latency {
		t.Error("batching must beat sequential execution")
	}
	// Dynamic runtimes run at the batch's longest sequence.
	lm := model.BertBase()
	dp, err := DynamicProfile(lm, []int{50, 200}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	dr := dp.Runtimes[0]
	short := dr.BatchCostOf([]int{10, 10})
	long := dr.BatchCostOf([]int{10, 400})
	if long <= short {
		t.Error("dynamic batch cost must grow with the longest member")
	}
}

func TestDrainTimeMonotone(t *testing.T) {
	p := bertBaseProfile(t)
	r := p.Runtimes[0]
	prev := time.Duration(0)
	for n := 0; n <= 10; n++ {
		d := r.DrainTime(n)
		if n > 0 && d <= prev {
			t.Fatalf("drain time not increasing at n=%d", n)
		}
		prev = d
	}
	if r.DrainTime(5) != 5*r.Latency {
		t.Errorf("drain(5) = %v, want %v", r.DrainTime(5), 5*r.Latency)
	}
}

func TestBatchDrainTime(t *testing.T) {
	p := bertBaseProfile(t)
	r := p.Runtimes[0]
	// maxBatch 1 is the sequential DrainTime.
	if got, want := r.BatchDrainTime(5, 1), r.DrainTime(5); got != want {
		t.Errorf("BatchDrainTime(5, 1) = %v, want DrainTime %v", got, want)
	}
	// 10 requests in batches of 4: two full kernels + one remainder of 2.
	lm := p.Model
	want := time.Duration(float64(r.Latency)*lm.BatchScale(4))*2 +
		time.Duration(float64(r.Latency)*lm.BatchScale(2))
	if got := r.BatchDrainTime(10, 4); got != want {
		t.Errorf("BatchDrainTime(10, 4) = %v, want %v", got, want)
	}
	// Batching must never drain slower than sequential execution.
	for _, n := range []int{1, 3, 7, 50, 200} {
		for _, b := range []int{2, 4, 8} {
			if batched, seq := r.BatchDrainTime(n, b), r.DrainTime(n); batched > seq {
				t.Errorf("BatchDrainTime(%d, %d) = %v slower than sequential %v", n, b, batched, seq)
			}
		}
	}
	if r.BatchDrainTime(0, 8) != 0 {
		t.Error("draining nothing must cost nothing")
	}
}

func TestBatchCapacityRaisesCongestionCeiling(t *testing.T) {
	p := bertBaseProfile(t)
	for i, r := range p.Runtimes {
		for _, b := range []int{2, 4, 8} {
			got := r.BatchCapacity(b)
			if got < r.Capacity {
				t.Errorf("runtime %d: BatchCapacity(%d) = %d below sequential %d", i, b, got, r.Capacity)
			}
			// Maximality against the SLO, like the sequential capacity.
			if r.BatchDrainTime(got, b) > p.SLO {
				t.Errorf("runtime %d: BatchCapacity(%d) = %d does not fit the SLO", i, b, got)
			}
			if r.BatchDrainTime(got+1, b) <= p.SLO {
				t.Errorf("runtime %d: BatchCapacity(%d) = %d is not maximal", i, b, got)
			}
		}
	}
	// With the default 0.5 marginal batch cost, batch-8 kernels serve
	// 8/4.5 = 1.78x the sequential rate; the capacity should reflect it.
	r := p.Runtimes[0]
	if got := r.BatchCapacity(8); float64(got) < 1.5*float64(r.Capacity) {
		t.Errorf("BatchCapacity(8) = %d, want >= 1.5x sequential %d", got, r.Capacity)
	}
	if r.BatchCapacity(1) != r.Capacity {
		t.Error("BatchCapacity(1) must be the sequential capacity")
	}
}

func TestBatchWithinSLO(t *testing.T) {
	p := bertBaseProfile(t)
	short, long := p.Runtimes[0], p.Runtimes[len(p.Runtimes)-1]
	// The profiled bound is monotone in the requested cap and respects
	// the SLO for every runtime.
	for _, r := range []Runtime{short, long} {
		prev := 0
		for cap := 1; cap <= 64; cap *= 2 {
			b := r.BatchWithinSLO(cap)
			if b < 1 || b > cap {
				t.Fatalf("BatchWithinSLO(%d) = %d out of range", cap, b)
			}
			if b < prev {
				t.Fatalf("BatchWithinSLO not monotone: %d then %d", prev, b)
			}
			if b > 1 && r.BatchDrainTime(b, b) > p.SLO {
				t.Fatalf("BatchWithinSLO(%d) = %d: one kernel exceeds the SLO", cap, b)
			}
			prev = b
		}
	}
	// A longer runtime has less SLO headroom per kernel, so its profiled
	// batch bound can never exceed the short runtime's.
	if ls, ll := short.BatchWithinSLO(64), long.BatchWithinSLO(64); ll > ls {
		t.Errorf("long-runtime bound %d exceeds short-runtime bound %d", ll, ls)
	}
	// Hand-built runtimes (no profile, no SLO) accept the cap unchanged.
	bare := Runtime{Latency: time.Millisecond, Capacity: 10}
	if got := bare.BatchWithinSLO(8); got != 8 {
		t.Errorf("unprofiled BatchWithinSLO(8) = %d, want 8", got)
	}
	if got := bare.BatchCapacity(8); got != 10 {
		t.Errorf("unprofiled BatchCapacity(8) = %d, want the sequential 10", got)
	}
}

func TestBatchMeanLatency(t *testing.T) {
	p := bertBaseProfile(t)
	r := p.Runtimes[2]
	if got, want := r.BatchMeanLatency(10, 1), r.MeanLatency(10); got != want {
		t.Errorf("BatchMeanLatency(b, 1) = %v, want MeanLatency %v", got, want)
	}
	// At a workload that saturates the sequential curve, the batched
	// service rate must sit lower on the queueing curve.
	b := float64(r.Capacity)
	if seq, batched := r.MeanLatency(b), r.BatchMeanLatency(b, 8); batched >= seq {
		t.Errorf("batched mean %v not below sequential %v at workload %v", batched, seq, b)
	}
	// And it still diverges past its own (larger) saturation point.
	heavy := 4 * float64(r.BatchCapacity(8))
	if lat := r.BatchMeanLatency(heavy, 8); lat < p.SLO {
		t.Errorf("BatchMeanLatency(%v, 8) = %v suspiciously low past saturation", heavy, lat)
	}
}
