// Package profiler implements Arlo's offline profiling stage (paper
// section 3.1, workflow step ③): for every compiled runtime it derives the
// per-request computation time, the batch-to-latency mapping L_i, and the
// maximum capacity within the SLO M_i that the Runtime Scheduler's
// optimization consumes. Profiles are produced from the calibrated latency
// model, standing in for measurements on real hardware.
package profiler

import (
	"fmt"
	"sort"
	"time"

	"arlo/internal/model"
)

// Runtime is the profiled description of one compiled runtime variant.
// Runtimes are the unit of Arlo's polymorphing: one model compiled at
// several max_lengths.
type Runtime struct {
	// Index is the position among the model's runtimes, sorted by
	// increasing MaxLength.
	Index int
	// MaxLength is the longest request this runtime accepts.
	MaxLength int
	// Compilation is how the runtime was compiled (static or dynamic).
	Compilation model.Compilation
	// Latency is the profiled batch-1 computation time per request. For
	// static runtimes it is exact (padding makes every request cost the
	// same); for dynamic runtimes it is the mean over the profiling
	// length distribution.
	Latency time.Duration
	// Capacity is M_i: the largest number of queued requests an instance
	// can drain within the SLO, executing sequentially (batch 1).
	Capacity int

	lm *model.LatencyModel
	// slo is the objective the runtime was profiled against; zero for
	// hand-constructed Runtimes, which then report batch-1 figures from
	// the batch-aware accessors.
	slo time.Duration
}

// CostOf returns the computation time of one request of the given length
// on this runtime. Static runtimes cost their compiled-shape latency
// regardless of request length; dynamic runtimes cost the exact-shape
// latency.
func (r Runtime) CostOf(length int) time.Duration {
	if r.Compilation == model.Dynamic && r.lm != nil {
		return r.lm.DynamicLatency(length)
	}
	return r.Latency
}

// Accepts reports whether a request of the given length fits this runtime.
func (r Runtime) Accepts(length int) bool { return length <= r.MaxLength && length > 0 }

// BatchCostOf returns the computation time of executing the given requests
// as one batch on this runtime: a static runtime pads every sequence to
// its compiled shape, a dynamic one runs at the batch's longest sequence;
// both scale sub-linearly in batch size (model.BatchScale). An empty batch
// costs nothing.
func (r Runtime) BatchCostOf(lengths []int) time.Duration {
	switch len(lengths) {
	case 0:
		return 0
	case 1:
		return r.CostOf(lengths[0])
	}
	longest := lengths[0]
	for _, l := range lengths[1:] {
		if l > longest {
			longest = l
		}
	}
	base := r.CostOf(longest)
	if r.lm == nil {
		return time.Duration(float64(base) * (1 + 0.5*float64(len(lengths)-1)))
	}
	return time.Duration(float64(base) * r.lm.BatchScale(len(lengths)))
}

// DrainTime returns the time to sequentially process n queued requests —
// the batch-to-completion mapping used for SLO feasibility.
func (r Runtime) DrainTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(n) * r.Latency
}

// batchLatency is L_i(b) for one full kernel: the profiled batch-1
// latency scaled by the sub-linear batch factor.
func (r Runtime) batchLatency(b int) time.Duration {
	if b <= 1 {
		return r.Latency
	}
	if r.lm == nil {
		return time.Duration(float64(r.Latency) * (1 + 0.5*float64(b-1)))
	}
	return time.Duration(float64(r.Latency) * r.lm.BatchScale(b))
}

// BatchDrainTime is the batch-aware DrainTime: the time to drain n queued
// requests when the instance executes batches of up to maxBatch — full
// kernels at L_i(maxBatch) plus one remainder kernel. maxBatch <= 1
// degrades to the sequential DrainTime.
func (r Runtime) BatchDrainTime(n, maxBatch int) time.Duration {
	if n <= 0 {
		return 0
	}
	if maxBatch <= 1 {
		return r.DrainTime(n)
	}
	d := time.Duration(n/maxBatch) * r.batchLatency(maxBatch)
	if rem := n % maxBatch; rem > 0 {
		d += r.batchLatency(rem)
	}
	return d
}

// BatchWithinSLO clamps a requested batch cap to what the profiled L_i(b)
// curve allows: the largest b <= cap whose single-kernel execution still
// fits in the SLO. This is how B_i is derived from the profile rather
// than configured blind — a 512-length runtime near its SLO gets a small
// cap, a short one a large cap. Runtimes without a profiled SLO accept
// the requested cap unchanged.
func (r Runtime) BatchWithinSLO(cap int) int {
	if cap < 1 {
		return 1
	}
	if r.slo <= 0 || r.Latency <= 0 {
		return cap
	}
	b := cap
	for b > 1 && r.batchLatency(b) > r.slo {
		b--
	}
	return b
}

// BatchCapacity is the batch-aware M_i: the largest number of queued
// requests an instance drains within the SLO when it executes batches of
// up to maxBatch. This is what makes Algorithm 1's congestion estimate
// (outstanding / capacity, thresholded by lambda) batch-aware — with the
// sequential Capacity a batching instance looks congested at loads it
// serves comfortably, and the scheduler over-demotes. Runtimes without a
// profiled SLO report the sequential Capacity.
func (r Runtime) BatchCapacity(maxBatch int) int {
	if maxBatch <= 1 || r.slo <= 0 || r.Latency <= 0 {
		return r.Capacity
	}
	n := r.Capacity
	for r.BatchDrainTime(n+1, maxBatch) <= r.slo {
		n++
	}
	return n
}

// MeanLatency returns L_i(B): the profiled mapping from per-instance
// workload to mean request latency (the paper obtains this curve by
// offline profiling). B is the average number of requests an instance
// receives per SLO window (B = C_i/N_i in the allocation program, Eq. 6),
// so the instance's utilization is rho = B/M_i. Under Poisson arrivals
// and deterministic service the profiled curve follows the M/D/1 sojourn
// time lat * (1 + rho/(2(1-rho))); past saturation it grows linearly with
// the excess workload (backlog accumulates for the whole window). The
// queueing shape is what makes the Runtime Scheduler leave headroom on
// highly utilized runtimes instead of packing them to the edge.
func (r Runtime) MeanLatency(b float64) time.Duration {
	if b <= 0 {
		return 0
	}
	m := float64(r.Capacity)
	rho := b / m
	lat := float64(r.Latency)
	const knee = 0.98
	if rho < knee {
		return time.Duration(lat * (1 + rho/(2*(1-rho))))
	}
	// Saturated: continue from the knee with linear backlog growth —
	// every request beyond capacity waits roughly a full drain.
	atKnee := lat * (1 + knee/(2*(1-knee)))
	return time.Duration(atKnee + (rho-knee)*m*lat)
}

// BatchMeanLatency is MeanLatency evaluated at the batched service rate:
// an instance executing batches of up to maxBatch serves each request in
// L_i(maxBatch)/maxBatch on average and saturates at BatchCapacity, so
// the same workload sits at a lower utilization on the queueing curve.
// This is the service-rate substitution that keeps the congestion
// estimate honest once instances batch. maxBatch <= 1 is MeanLatency.
func (r Runtime) BatchMeanLatency(b float64, maxBatch int) time.Duration {
	if maxBatch <= 1 {
		return r.MeanLatency(b)
	}
	eff := r
	eff.Latency = r.batchLatency(maxBatch) / time.Duration(maxBatch)
	eff.Capacity = r.BatchCapacity(maxBatch)
	return eff.MeanLatency(b)
}

// Profile is the full offline profile of one model: its runtimes sorted by
// increasing MaxLength, plus the SLO they were profiled against.
type Profile struct {
	Model    *model.LatencyModel
	SLO      time.Duration
	Runtimes []Runtime
}

// StaticProfile profiles statically compiled runtimes at the given
// max_lengths (which must be positive and strictly increasing) against the
// SLO. This is the polymorphing configuration: one runtime per length step.
func StaticProfile(lm *model.LatencyModel, maxLengths []int, slo time.Duration) (*Profile, error) {
	if lm == nil {
		return nil, fmt.Errorf("profiler: nil latency model")
	}
	if slo <= 0 {
		return nil, fmt.Errorf("profiler: SLO must be positive, got %v", slo)
	}
	if len(maxLengths) == 0 {
		return nil, fmt.Errorf("profiler: need at least one runtime length")
	}
	if !sort.IntsAreSorted(maxLengths) {
		return nil, fmt.Errorf("profiler: max_lengths must be sorted, got %v", maxLengths)
	}
	rts := make([]Runtime, len(maxLengths))
	for i, ml := range maxLengths {
		if ml <= 0 {
			return nil, fmt.Errorf("profiler: max_length must be positive, got %d", ml)
		}
		if i > 0 && ml == maxLengths[i-1] {
			return nil, fmt.Errorf("profiler: duplicate max_length %d", ml)
		}
		lat := lm.StaticLatency(ml)
		cap := capacityWithin(slo, lat)
		if cap < 1 {
			return nil, fmt.Errorf("profiler: runtime length %d latency %v exceeds SLO %v", ml, lat, slo)
		}
		rts[i] = Runtime{
			Index:       i,
			MaxLength:   ml,
			Compilation: model.Static,
			Latency:     lat,
			Capacity:    cap,
			lm:          lm,
			slo:         slo,
		}
	}
	return &Profile{Model: lm, SLO: slo, Runtimes: rts}, nil
}

// DynamicProfile profiles a single dynamically compiled runtime (the DT
// baseline). Its mean latency and capacity are measured over the provided
// representative request lengths, mirroring how a real profiler would
// replay a trace sample.
func DynamicProfile(lm *model.LatencyModel, sampleLengths []int, slo time.Duration) (*Profile, error) {
	if lm == nil {
		return nil, fmt.Errorf("profiler: nil latency model")
	}
	if slo <= 0 {
		return nil, fmt.Errorf("profiler: SLO must be positive, got %v", slo)
	}
	if len(sampleLengths) == 0 {
		return nil, fmt.Errorf("profiler: need sample lengths to profile a dynamic runtime")
	}
	var sum time.Duration
	for _, l := range sampleLengths {
		if l <= 0 || l > lm.Arch().MaxLength {
			return nil, fmt.Errorf("profiler: sample length %d outside (0, %d]", l, lm.Arch().MaxLength)
		}
		sum += lm.DynamicLatency(l)
	}
	mean := sum / time.Duration(len(sampleLengths))
	cap := capacityWithin(slo, mean)
	if cap < 1 {
		return nil, fmt.Errorf("profiler: dynamic mean latency %v exceeds SLO %v", mean, slo)
	}
	rt := Runtime{
		Index:       0,
		MaxLength:   lm.Arch().MaxLength,
		Compilation: model.Dynamic,
		Latency:     mean,
		Capacity:    cap,
		lm:          lm,
		slo:         slo,
	}
	return &Profile{Model: lm, SLO: slo, Runtimes: []Runtime{rt}}, nil
}

// MaxLengths returns the profiled runtimes' max_lengths in order.
func (p *Profile) MaxLengths() []int {
	out := make([]int, len(p.Runtimes))
	for i, r := range p.Runtimes {
		out[i] = r.MaxLength
	}
	return out
}

// Largest returns the runtime with the largest max_length.
func (p *Profile) Largest() Runtime { return p.Runtimes[len(p.Runtimes)-1] }

// IdealRuntime returns the index of the smallest runtime that accepts a
// request of the given length — the least-padding choice. ok is false when
// the request exceeds even the largest runtime.
func (p *Profile) IdealRuntime(length int) (idx int, ok bool) {
	for i, r := range p.Runtimes {
		if r.MaxLength >= length {
			return i, true
		}
	}
	return 0, false
}

// capacityWithin returns how many sequential executions of duration lat
// fit in the SLO.
func capacityWithin(slo, lat time.Duration) int {
	if lat <= 0 {
		return 0
	}
	return int(slo / lat)
}
