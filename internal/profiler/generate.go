package profiler

// Generative (prefill + decode) profiling: the per-iteration cost queries
// the continuous-batching worker loop consumes, plus the run-to-completion
// generative batch cost it is benchmarked against, and the gen-aware M_i
// that keeps the queue's lambda-congestion estimate honest once instances
// hold decode slots for many iterations.

import "time"

// DecodeStepCost returns the cost of one decode iteration over sequences
// at the given context lengths on this runtime. Decode kernels are
// shape-dynamic even when the prefill runtime was compiled statically (the
// per-step KV-cache lookup is a GEMV over exact context, not a padded
// encoder pass), so the model's decode-step curve applies to both
// compilation modes. Hand-constructed Runtimes (no latency model) fall
// back to one full profiled latency per iteration — conservative, but
// well-defined.
func (r Runtime) DecodeStepCost(ctxLens []int) time.Duration {
	if len(ctxLens) == 0 {
		return 0
	}
	if r.lm == nil {
		return r.Latency
	}
	return r.lm.DecodeStepLatency(ctxLens)
}

// DecodeStepUniform is DecodeStepCost for b sequences at one context.
func (r Runtime) DecodeStepUniform(b, ctx int) time.Duration {
	if b <= 0 {
		return 0
	}
	if r.lm == nil {
		return r.Latency
	}
	return r.lm.DecodeStepLatencyUniform(b, ctx)
}

// GenCostOf returns the run-to-completion cost of one generative request
// executed alone: prefill at the request length plus out-1 decode steps at
// the growing context. out <= 1 is the plain CostOf (the prefill yields
// the first token).
func (r Runtime) GenCostOf(length, out int) time.Duration {
	cost := r.CostOf(length)
	for t := 1; t < out; t++ {
		cost += r.DecodeStepUniform(1, length+t)
	}
	return cost
}

// DecodeTailCost returns the decode cost after the prefill when the given
// requests run as one run-to-completion batch: every slot stays occupied
// until the longest output finishes, so each of the maxOut-1 iterations
// runs at full batch width — the padding-in-time that continuous batching
// removes. Add BatchCostOf(lengths) for the total.
func (r Runtime) DecodeTailCost(lengths, outs []int) time.Duration {
	if len(lengths) == 0 || len(lengths) != len(outs) {
		return 0
	}
	maxOut := 0
	for _, o := range outs {
		if o > maxOut {
			maxOut = o
		}
	}
	var tail time.Duration
	ctxs := make([]int, len(lengths))
	for t := 1; t < maxOut; t++ {
		for i, l := range lengths {
			ctxs[i] = l + t
		}
		tail += r.DecodeStepCost(ctxs)
	}
	return tail
}

// GenBatchCostOf is the full run-to-completion generative batch cost:
// prefill over the whole batch plus the decode tail.
func (r Runtime) GenBatchCostOf(lengths, outs []int) time.Duration {
	return r.BatchCostOf(lengths) + r.DecodeTailCost(lengths, outs)
}

// GenCapacity is the generative M_i: the largest number of queued requests
// an instance drains within the SLO when it serves them through slots
// decode-slots of a continuous-batching loop, each request generating
// meanOut tokens on average. The per-request service share is the prefill
// kernel amortized over the batch plus the request's own decode
// iterations, each amortized over a full iteration (admission keeps slots
// occupied under load, which is when capacity matters). Contexts are taken
// at the runtime's MaxLength — the conservative end of the decode curve.
// Runtimes without a profiled SLO report BatchCapacity unchanged.
func (r Runtime) GenCapacity(slots int, meanOut float64) int {
	if slots < 1 {
		slots = 1
	}
	if r.slo <= 0 || r.Latency <= 0 {
		return r.BatchCapacity(slots)
	}
	if meanOut < 1 {
		meanOut = 1
	}
	share := float64(r.batchLatency(slots))/float64(slots) +
		(meanOut-1)*float64(r.DecodeStepUniform(slots, r.MaxLength))/float64(slots)
	if share <= 0 {
		return r.BatchCapacity(slots)
	}
	n := int(float64(r.slo) / share)
	if n < 1 {
		n = 1
	}
	return n
}
