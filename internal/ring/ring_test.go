package ring

import (
	"sync"
	"testing"
	"time"
)

// TestSingleShardFIFO checks the core ring contract against a naive
// reference: with one shard and one producer, Drain yields exactly the
// enqueued sequence in order.
func TestSingleShardFIFO(t *testing.T) {
	r := New[int](1, 8)
	var want []int
	for round := 0; round < 50; round++ {
		// Fill to capacity, drain in ragged group sizes.
		for i := 0; ; i++ {
			if _, ok := r.Enqueue(round*100 + i); !ok {
				break
			}
			want = append(want, round*100+i)
		}
		for r.Len(0) > 0 {
			got := r.Drain(0, nil, 3)
			for _, v := range got {
				if v != want[0] {
					t.Fatalf("round %d: drained %d, want %d", round, v, want[0])
				}
				want = want[1:]
			}
		}
	}
	if len(want) != 0 {
		t.Fatalf("%d values never drained", len(want))
	}
}

func TestCapacityRounding(t *testing.T) {
	if got := New[int](1, 100).Capacity(); got != 128 {
		t.Fatalf("capacity 100 rounded to %d, want 128", got)
	}
	if got := New[int](1, 64).Capacity(); got != 64 {
		t.Fatalf("capacity 64 rounded to %d, want 64", got)
	}
	if got := New[int](0, 0); got.Shards() < 1 || got.Capacity() != DefaultShardCapacity {
		t.Fatalf("defaults: shards %d capacity %d", got.Shards(), got.Capacity())
	}
}

// TestBackpressure checks that a full ring rejects instead of blocking or
// overwriting.
func TestBackpressure(t *testing.T) {
	r := New[int](2, 4)
	accepted := 0
	for i := 0; i < 100; i++ {
		if _, ok := r.Enqueue(i); ok {
			accepted++
		}
	}
	if accepted != 2*4 {
		t.Fatalf("accepted %d into a 2x4 ring, want 8", accepted)
	}
	total := 0
	for s := 0; s < r.Shards(); s++ {
		total += len(r.Drain(s, nil, 100))
	}
	if total != accepted {
		t.Fatalf("drained %d, accepted %d", total, accepted)
	}
}

// TestConcurrentNoLossNoDup hammers the ring with many producers and one
// consumer per shard under -race, then checks the multiset of drained
// values against what producers report enqueued: nothing lost, nothing
// duplicated, and each producer's values appear in its enqueue order
// within every shard (per-shard FIFO implies per-producer order there).
func TestConcurrentNoLossNoDup(t *testing.T) {
	const (
		producers = 8
		perProd   = 5000
	)
	r := New[uint64](4, 64)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var mu sync.Mutex
	perShard := make([][]uint64, r.Shards())
	for s := 0; s < r.Shards(); s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			var got []uint64
			buf := make([]uint64, 0, 32)
			for {
				buf = r.Drain(shard, buf[:0], 32)
				got = append(got, buf...)
				if len(buf) == 0 && !r.Wait(shard, stop) {
					// Stopped: one final drain for values published
					// after the last pass.
					got = append(got, r.Drain(shard, buf[:0], 1<<20)...)
					mu.Lock()
					perShard[shard] = got
					mu.Unlock()
					return
				}
			}
		}(s)
	}

	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProd; i++ {
				v := uint64(p)<<32 | uint64(i)
				for {
					if _, ok := r.Enqueue(v); ok {
						break
					}
					time.Sleep(10 * time.Microsecond) // full: back off
				}
			}
		}(p)
	}
	pwg.Wait()
	close(stop)
	wg.Wait()

	seen := make(map[uint64]bool, producers*perProd)
	lastPerProd := make(map[int]map[uint64]int64) // shard -> producer -> last index
	total := 0
	for shard, got := range perShard {
		last := make(map[uint64]int64)
		lastPerProd[shard] = last
		for _, v := range got {
			if seen[v] {
				t.Fatalf("value %x drained twice", v)
			}
			seen[v] = true
			total++
			p, i := v>>32, int64(v&0xffffffff)
			if prev, ok := last[p]; ok && i <= prev {
				t.Fatalf("shard %d: producer %d out of order: %d after %d", shard, p, i, prev)
			}
			last[p] = i
		}
	}
	if total != producers*perProd {
		t.Fatalf("drained %d values, enqueued %d", total, producers*perProd)
	}
}

// TestWaitStop checks that a parked consumer wakes on stop.
func TestWaitStop(t *testing.T) {
	r := New[int](1, 4)
	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() { done <- r.Wait(0, stop) }()
	close(stop)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Wait returned true on stop")
		}
	case <-time.After(time.Second):
		t.Fatal("Wait did not return on stop")
	}
}

func BenchmarkEnqueueDrain(b *testing.B) {
	r := New[int](1, 1024)
	buf := make([]int, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Enqueue(i); !ok {
			b.Fatal("full")
		}
		if i%64 == 63 {
			buf = r.Drain(0, buf[:0], 64)
			if len(buf) != 64 {
				b.Fatalf("drained %d", len(buf))
			}
		}
	}
}
