// Package ring provides the sharded MPSC submit rings of the batched
// ingress path: many producer goroutines enqueue lock-free, one consumer
// goroutine per shard drains in groups and feeds the dispatcher through
// cluster.SubmitBatch, amortizing the per-request handoff (topology lock,
// queue stripe locks, scheduler wakeups) across the group.
//
// Layout follows the lock-free idiom the rest of the repo uses
// (metrics.Window striping, queue.Level padding): shard count defaults to
// GOMAXPROCS, per-shard capacity is rounded up to a power of two so slot
// indexing is a mask, and the producer and consumer cursors live on their
// own cache lines so enqueues from different cores never false-share with
// the drain cursor.
//
// Each shard is a bounded Vyukov-style sequence ring specialized to a
// single consumer: producers claim a slot with one CAS on the shard's tail
// and publish the value by storing the slot's sequence number; the
// consumer observes published slots in claim order, so each shard is FIFO
// in enqueue order. A full shard rejects the enqueue (the producer spills
// to the next shard, and Enqueue fails only when every shard is full) —
// backpressure is explicit, never blocking.
package ring

import (
	"math/bits"
	"runtime"
	"sync/atomic"
)

// slot is one ring entry. seq is the Vyukov sequence: slot i is writable
// when seq == pos (its claim ticket) and readable when seq == pos+1.
type slot[T any] struct {
	seq atomic.Uint64
	val T
}

// pad keeps the hot cursors on private cache lines.
type pad [64]byte

// shard is one MPSC ring. tail is shared by producers (CAS), head is
// owned by the shard's single consumer (atomic so Len and the race
// detector see clean publication).
type shard[T any] struct {
	slots []slot[T]
	mask  uint64

	_    pad
	tail atomic.Uint64
	_    pad
	head atomic.Uint64
	_    pad

	// notify wakes the parked consumer after an enqueue into an idle
	// shard; capacity 1 so a pending wakeup is never lost and producers
	// never block on it.
	notify chan struct{}
}

// Ring is a set of MPSC shards with a round-robin producer cursor.
type Ring[T any] struct {
	shards []shard[T]
	cursor atomic.Uint32
}

// DefaultShardCapacity is the per-shard slot count used when New is given
// a non-positive capacity.
const DefaultShardCapacity = 1024

// New builds a ring with the given shard count (<= 0 defaults to
// GOMAXPROCS) and per-shard capacity rounded up to a power of two (<= 0
// defaults to DefaultShardCapacity).
func New[T any](shards, capacity int) *Ring[T] {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if capacity <= 0 {
		capacity = DefaultShardCapacity
	}
	capacity = 1 << bits.Len(uint(capacity-1)) // round up to a power of two
	if capacity < 2 {
		capacity = 2
	}
	r := &Ring[T]{shards: make([]shard[T], shards)}
	for i := range r.shards {
		s := &r.shards[i]
		s.slots = make([]slot[T], capacity)
		s.mask = uint64(capacity - 1)
		s.notify = make(chan struct{}, 1)
		for j := range s.slots {
			s.slots[j].seq.Store(uint64(j))
		}
	}
	return r
}

// Shards returns the shard count; Drain and Wait address shards by index
// in [0, Shards()).
func (r *Ring[T]) Shards() int { return len(r.shards) }

// Capacity returns the per-shard slot count.
func (r *Ring[T]) Capacity() int { return len(r.shards[0].slots) }

// Enqueue publishes v to one shard, picked round-robin and spilling to
// the next shard when the pick is full. It returns the shard the value
// landed in, or ok=false when every shard is full (the caller should
// surface backpressure, not spin).
func (r *Ring[T]) Enqueue(v T) (shard int, ok bool) {
	start := int(r.cursor.Add(1))
	n := len(r.shards)
	for i := 0; i < n; i++ {
		k := (start + i) % n
		if r.shards[k].enqueue(v) {
			return k, true
		}
	}
	return 0, false
}

// enqueue claims a slot with one CAS on tail and publishes v. Returns
// false when the shard is full.
func (s *shard[T]) enqueue(v T) bool {
	for {
		pos := s.tail.Load()
		sl := &s.slots[pos&s.mask]
		seq := sl.seq.Load()
		switch {
		case seq == pos:
			if s.tail.CompareAndSwap(pos, pos+1) {
				sl.val = v
				sl.seq.Store(pos + 1)
				// Wake the consumer if it is parked; a full notify
				// channel already carries the wakeup.
				select {
				case s.notify <- struct{}{}:
				default:
				}
				return true
			}
		case seq < pos:
			// The slot one lap behind has not been consumed: full.
			return false
		default:
			// Another producer claimed pos first; reload.
		}
	}
}

// Drain appends up to max published values from the shard to buf in FIFO
// order and returns the extended slice. Only the shard's single consumer
// goroutine may call Drain (and Wait) for a given shard index.
func (r *Ring[T]) Drain(shard int, buf []T, max int) []T {
	s := &r.shards[shard]
	pos := s.head.Load()
	for n := 0; n < max; n++ {
		sl := &s.slots[pos&s.mask]
		if sl.seq.Load() != pos+1 {
			break // next slot not yet published
		}
		buf = append(buf, sl.val)
		var zero T
		sl.val = zero // drop the reference; the ring never pins values
		sl.seq.Store(pos + s.mask + 1)
		pos++
	}
	s.head.Store(pos)
	return buf
}

// Len reports the number of published-but-undrained values in the shard.
// Approximate under concurrent enqueues.
func (r *Ring[T]) Len(shard int) int {
	s := &r.shards[shard]
	return int(s.tail.Load() - s.head.Load())
}

// Wait parks the consumer until the shard has (or likely has) work, or
// stop is closed. It returns false on stop. A true return does not
// guarantee a non-empty drain — wakeups may race with the producer — so
// callers loop Drain/Wait.
func (r *Ring[T]) Wait(shard int, stop <-chan struct{}) bool {
	s := &r.shards[shard]
	if s.tail.Load() != s.head.Load() {
		return true
	}
	select {
	case <-s.notify:
		return true
	case <-stop:
		return false
	}
}
