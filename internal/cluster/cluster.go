// Package cluster is the real-time counterpart of the discrete-event
// simulator: the "testbed" of this reproduction. Each GPU instance is a
// goroutine that executes requests sequentially on the wall clock,
// emulating computation with the calibrated latency model; dispatching
// runs through the same multi-level queue and policies as the simulator.
// The section 5.2.1 calibration experiment replays one trace through both
// this prototype and the simulator and compares the distributions.
//
// The dispatch hot path is concurrent: submissions hold only a shared
// (read) lock on the cluster's topology, so any number of goroutines can
// dispatch in parallel while synchronization happens inside the
// lock-striped multi-level queue. The exclusive side of the lock is
// reserved for topology changes — adding or removing workers and Close —
// which also makes Submit-after-Close race-free: Close cannot close a
// worker channel while a submission holding the read lock is sending on
// it. Completions decrement the queue's atomic counters without any
// cluster-level lock.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"arlo/internal/batcher"
	"arlo/internal/dispatch"
	"arlo/internal/failover"
	"arlo/internal/metrics"
	"arlo/internal/obs"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/tenant"
	"arlo/internal/trace"
)

// Sentinel errors, matched with errors.Is.
var (
	// ErrClusterClosed is returned by submissions after Close.
	ErrClusterClosed = errors.New("cluster: closed")
	// ErrCongested is returned when the chosen worker cannot accept the
	// request right now (queue overflow, or the instance was concurrently
	// removed); the condition is transient and the request is safe to
	// retry.
	ErrCongested = errors.New("cluster: congested")
	// ErrDeadlineExceeded is returned by SubmitCtx when the request's
	// context expires or is cancelled before the request completes. The
	// returned error also wraps the context's own error, so
	// errors.Is(err, context.Canceled) and errors.Is(err,
	// context.DeadlineExceeded) discriminate the cause.
	ErrDeadlineExceeded = errors.New("cluster: request deadline exceeded")
	// ErrUnserviceable is returned when a request exhausted its requeue
	// budget: repeated instance failures (or the congestion transients
	// they cause) displaced it more times than the budget allows, and
	// failing it beats cycling it through crashes forever.
	ErrUnserviceable = errors.New("cluster: request unserviceable after repeated failures")
)

// ErrClosed is returned by Submit after Close.
//
// Deprecated: ErrClosed is an alias of ErrClusterClosed, kept for
// existing identity comparisons.
var ErrClosed = ErrClusterClosed

// Config describes a real-time cluster.
type Config struct {
	// Profile defines the runtimes and SLO.
	Profile *profiler.Profile
	// InitialAllocation gives per-runtime instance counts.
	InitialAllocation []int
	// Dispatcher builds the dispatch policy over the cluster's queue.
	Dispatcher func(ml *queue.MultiLevel) (dispatch.Dispatcher, error)
	// TimeScale compresses emulated compute time: wall time = modeled
	// latency * TimeScale. 0 defaults to 1 (real time).
	TimeScale float64
	// Overhead is added to each reported latency (0 defaults to the
	// simulator's 0.8 ms; negative forces zero). It models network +
	// host-device transfer and is not slept.
	Overhead time.Duration
	// QueueDepth bounds each worker's channel (default 8192).
	QueueDepth int
	// RequeueBudget bounds how many times one request is re-dispatched
	// after instance failures before it fails with ErrUnserviceable
	// (default failover.DefaultRequeueBudget; negative disables requeueing
	// entirely so any displacement fails the request).
	RequeueBudget int
	// Observer, when non-nil, receives the cluster's request-lifecycle
	// records (spans, demotions, rejections) and serves its live state as
	// scrape-time gauges. Equivalent to calling SetObserver after New.
	Observer *obs.Recorder
	// MaxBatch enables dynamic batching: an idle worker coalesces up to
	// B_i = min(MaxBatch, Runtime.BatchWithinSLO(MaxBatch)) queued
	// requests and executes them as one emulated kernel at the sub-linear
	// batched cost (Runtime.BatchCostOf). 0 or 1 disables batching and
	// keeps the sequential worker loop byte-for-byte.
	MaxBatch int
	// BatchDelay bounds the batch-collection window in modeled time
	// (scaled by TimeScale like execution): a worker holding a partial
	// batch waits at most this long for followers, and never past the
	// slack any member's context deadline leaves. 0 defaults to the
	// SLO-aware Profile.SLO/100; negative disables waiting entirely
	// (greedy formation — batches are whatever is already queued).
	BatchDelay time.Duration
	// Continuous switches workers to iteration-level (continuous)
	// batching for generative workloads: the batch is re-formed every
	// iteration, completed sequences exit immediately, and queued requests
	// are admitted into freed decode slots mid-flight (no collection
	// window while sequences are resident). Slot count per instance is the
	// same SLO-clamped B_i the run-to-completion path uses. Encoder
	// requests flow through unchanged (a prefill-only iteration).
	Continuous bool
	// MeanOutTokens hints the expected output length of generative
	// requests for the capacity model (the gen-aware M_i fed into the
	// queue's lambda-congestion estimate). 0 defaults to 16. Only read
	// when Continuous is set.
	MeanOutTokens float64
	// Tenants enables multi-tenant serving: token-bucket admission runs in
	// front of every submit path and admitted jobs dispatch in weighted
	// fair order across tenants (see tenancy.go). nil keeps the
	// single-tenant fast path unchanged.
	Tenants *tenant.Registry
}

// Cluster is a running set of emulated GPU workers.
type Cluster struct {
	cfg     Config
	ml      *queue.MultiLevel
	disp    dispatch.Dispatcher
	dispCtx dispatch.ContextDispatcher
	// dispStale is the amortized group-dispatch interface when the policy
	// supports it (nil otherwise; SubmitBatch then falls back to the
	// per-request context dispatch under the shared group lock).
	dispStale dispatch.GroupDispatcher
	overhead  time.Duration
	scale     float64
	depth     int
	budget    int

	// maxBatch and batchDelay are the normalized batching knobs (1 / 0
	// when batching is off); batchSeq numbers executed batches for span
	// correlation. continuous selects the iteration-level worker loop and
	// meanOut is its capacity-model output-length hint.
	maxBatch   int
	batchDelay time.Duration
	batchSeq   atomic.Int64
	continuous bool
	meanOut    float64

	// obsRec is the observability recorder; nil disables recording (all
	// recorder methods are nil-receiver safe, so the hot path pays one
	// atomic load and a predictable branch).
	obsRec atomic.Pointer[obs.Recorder]

	// tenants and fairQ are the multi-tenancy state: nil when
	// Config.Tenants is unset. Admitted jobs queue in fairQ and a single
	// pump goroutine drains them in weighted-fair order (tenancy.go).
	tenants *tenant.Registry
	fairQ   *queue.Fair[*job]

	// mu guards topology only: the workers map, nextID and closed.
	// Submissions hold it shared across dispatch + channel send; worker
	// add/remove and Close hold it exclusively. Dispatch decisions and
	// completion accounting synchronize inside the multi-level queue.
	mu      sync.RWMutex
	workers map[int]*worker
	nextID  int
	closed  bool

	// failed tracks crashed instances through their downtime window so
	// health snapshots keep reporting them as dead until they rejoin
	// (under a fresh ID, via the AddInstance topology path). Guarded by mu.
	failed map[int]*failedInstance

	wg sync.WaitGroup
}

// failedInstance is the downtime-window record of one crashed instance.
type failedInstance struct {
	runtime  int
	capacity int
}

// Job lifecycle states. The submitter and the worker race on the state
// with CAS transitions, which is what makes context cancellation safe
// against the pooled-job recycling:
//
//	pending --worker--> running --worker--> done      (worker sends on done;
//	                                                   submitter recycles)
//	pending --ctx-----> cancelled                     (worker skips execution
//	                                                   and recycles)
//	running --ctx-----> abandoned                     (worker finishes, sends
//	                                                   nothing, recycles)
//
// Exactly one side wins each transition, so exactly one side returns the
// job to the pool and the done channel never holds a stale value.
const (
	jobPending int32 = iota
	jobRunning
	jobDone
	jobCancelled
	jobAbandoned
)

type job struct {
	length  int
	started time.Time
	done    chan time.Duration

	state atomic.Int32

	// requeues counts failure displacements against the cluster's requeue
	// budget. Only the goroutine currently owning the job touches it.
	requeues int

	// err carries a terminal failure (requeue budget exhausted, cluster
	// closed mid-requeue) delivered through the done channel as a
	// negative latency; the send orders the write before the submitter's
	// read.
	err error

	// deadline is the submitter's context deadline (zero when none): the
	// batch former never holds the job past the slack it leaves.
	deadline time.Time

	// Span ingredients, written by the submitter (tokenize, dec, instID)
	// or by the worker before the done send (wait, exec, batch fields) —
	// the channel send orders them before the submitter's reads.
	tokenize    time.Duration
	dispatch    time.Duration
	wait        time.Duration
	exec        time.Duration
	formWait    time.Duration
	ingressWait time.Duration
	batchID     int64
	batchSize   int
	dec         dispatch.Decision
	instID      int

	// maxNew is the request's output token budget (0 = encoder request);
	// ttft and outTokens are the generative results the worker writes
	// before the done send.
	maxNew    int
	ttft      time.Duration
	outTokens int

	// tenant is the resolved tenant record (nil without a registry);
	// window is the SLO class's batch-collection cap in wall time (0 means
	// no per-member opinion).
	tenant *tenant.Tenant
	window time.Duration
}

// failedLatency is the sentinel delivered on the done channel when a job
// terminates with j.err instead of a completion.
const failedLatency = time.Duration(-1)

// jobPool recycles job structs together with their completion channels so
// the steady-state submit path allocates nothing. The buffered channel is
// used for exactly one send and one receive per lease, so a recycled
// channel is always empty.
var jobPool = sync.Pool{
	New: func() any { return &job{done: make(chan time.Duration, 1)} },
}

func newJob(length int) *job {
	j := jobPool.Get().(*job)
	j.length = length
	j.started = time.Now()
	j.state.Store(jobPending)
	j.requeues = 0
	j.err = nil
	j.deadline = time.Time{}
	j.tokenize = 0
	j.dispatch = 0
	j.wait = 0
	j.exec = 0
	j.formWait = 0
	j.ingressWait = 0
	j.batchID = 0
	j.batchSize = 0
	j.dec = dispatch.Decision{}
	j.instID = 0
	j.maxNew = 0
	j.ttft = 0
	j.outTokens = 0
	j.tenant = nil
	j.window = 0
	return j
}

type worker struct {
	inst *queue.Instance
	ch   chan *job

	// kill is closed by FailInstance to interrupt the in-flight
	// execution; dead marks the worker crashed so it requeues instead of
	// executing while draining its channel.
	kill chan struct{}
	dead atomic.Bool

	// slow holds the float64 bits of the degraded-mode execution latency
	// multiplier (1.0 = healthy). Read once per executed job.
	slow atomic.Uint64
}

// slowFactor returns the worker's current execution latency multiplier.
func (w *worker) slowFactor() float64 { return math.Float64frombits(w.slow.Load()) }

// health classifies the worker's serving state.
func (w *worker) health() obs.Health {
	if w.dead.Load() {
		return obs.Dead
	}
	if w.slowFactor() != 1 {
		return obs.Degraded
	}
	return obs.Healthy
}

// plainDispatcher adapts a Dispatcher that predates the context-aware
// interface: the decision degrades to "served at the chosen level" with
// no demotion attribution.
type plainDispatcher struct {
	dispatch.Dispatcher
}

func (p plainDispatcher) DispatchCtx(_ context.Context, length int) (*queue.Instance, dispatch.Decision, error) {
	in, err := p.Dispatch(length)
	if err != nil {
		return nil, dispatch.Decision{}, err
	}
	lvl := in.Runtime
	return in, dispatch.Decision{IdealLevel: lvl, Level: lvl, Peeked: 1}, nil
}

// New starts the cluster's workers.
func New(cfg Config) (*Cluster, error) {
	if cfg.Profile == nil || len(cfg.Profile.Runtimes) == 0 {
		return nil, fmt.Errorf("cluster: profile with no runtimes")
	}
	if len(cfg.InitialAllocation) != len(cfg.Profile.Runtimes) {
		return nil, fmt.Errorf("cluster: allocation has %d entries for %d runtimes",
			len(cfg.InitialAllocation), len(cfg.Profile.Runtimes))
	}
	if cfg.Dispatcher == nil {
		return nil, fmt.Errorf("cluster: nil dispatcher factory")
	}
	total := 0
	for i, n := range cfg.InitialAllocation {
		if n < 0 {
			return nil, fmt.Errorf("cluster: negative allocation at runtime %d", i)
		}
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("cluster: no instances deployed")
	}
	ml, err := queue.NewMultiLevel(cfg.Profile.MaxLengths())
	if err != nil {
		return nil, err
	}
	disp, err := cfg.Dispatcher(ml)
	if err != nil {
		return nil, err
	}
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	overhead := cfg.Overhead
	if overhead == 0 {
		overhead = 800 * time.Microsecond
	} else if overhead < 0 {
		overhead = 0
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 8192
	}
	budget := cfg.RequeueBudget
	if budget == 0 {
		budget = failover.DefaultRequeueBudget
	} else if budget < 0 {
		budget = 0
	}
	maxBatch := cfg.MaxBatch
	if maxBatch < 1 {
		maxBatch = 1
	}
	batchDelay := cfg.BatchDelay
	if batchDelay < 0 {
		batchDelay = 0
	} else if batchDelay == 0 && maxBatch > 1 {
		// SLO-aware default window: a sliver of the objective, so waiting
		// for followers can never dominate the latency budget.
		batchDelay = cfg.Profile.SLO / 100
	}
	meanOut := cfg.MeanOutTokens
	if meanOut < 1 {
		meanOut = 16
	}
	c := &Cluster{
		cfg:        cfg,
		ml:         ml,
		disp:       disp,
		workers:    make(map[int]*worker),
		failed:     make(map[int]*failedInstance),
		overhead:   overhead,
		scale:      scale,
		depth:      depth,
		budget:     budget,
		maxBatch:   maxBatch,
		batchDelay: batchDelay,
		continuous: cfg.Continuous,
		meanOut:    meanOut,
	}
	if cd, ok := disp.(dispatch.ContextDispatcher); ok {
		c.dispCtx = cd
	} else {
		c.dispCtx = plainDispatcher{disp}
	}
	if cfg.Tenants != nil {
		c.tenants = cfg.Tenants
		c.fairQ = queue.NewFair[*job]()
		c.wg.Add(1)
		go c.runFairPump()
	}
	c.dispStale, _ = disp.(dispatch.GroupDispatcher)
	if cfg.Observer != nil {
		c.SetObserver(cfg.Observer)
	}
	c.mu.Lock()
	for rtIdx, n := range cfg.InitialAllocation {
		for k := 0; k < n; k++ {
			if err := c.addWorker(rtIdx); err != nil {
				c.mu.Unlock()
				c.Close()
				return nil, err
			}
		}
	}
	c.mu.Unlock()
	return c, nil
}

// addWorker provisions one worker; caller holds c.mu exclusively.
func (c *Cluster) addWorker(rtIdx int) error {
	rt := c.cfg.Profile.Runtimes[rtIdx]
	// With batching, the instance's congestion ceiling is the batch-aware
	// M_i: the sequential capacity would make Algorithm 1's lambda
	// threshold see congestion at loads a batching instance drains within
	// the SLO, over-demoting into larger runtimes. A continuous-batching
	// instance additionally holds decode slots for many iterations per
	// request, so its ceiling is the generative M_i.
	capn := rt.Capacity
	bcap := c.batchCapFor(rt)
	if c.continuous {
		capn = rt.GenCapacity(bcap, c.meanOut)
	} else if bcap > 1 {
		capn = rt.BatchCapacity(bcap)
	}
	inst := &queue.Instance{ID: c.nextID, Runtime: rtIdx, MaxCapacity: capn}
	c.nextID++
	if err := c.ml.Add(inst); err != nil {
		return err
	}
	w := &worker{inst: inst, ch: make(chan *job, c.depth), kill: make(chan struct{})}
	w.slow.Store(math.Float64bits(1))
	c.workers[inst.ID] = w
	c.wg.Add(1)
	switch {
	case c.continuous:
		go c.runWorkerContinuous(w, rt)
	case bcap > 1:
		go c.runWorkerBatched(w, rt)
	default:
		go c.runWorker(w, rt)
	}
	return nil
}

// batchCapFor returns the effective per-instance batch cap B_i for one
// runtime: the configured cap clamped to the profiled SLO headroom
// (Runtime.BatchWithinSLO), or 1 when batching is disabled. Long runtimes
// whose kernels already fill the SLO keep the sequential loop even in a
// batched cluster.
func (c *Cluster) batchCapFor(rt profiler.Runtime) int {
	if c.maxBatch <= 1 {
		return 1
	}
	return rt.BatchWithinSLO(c.maxBatch)
}

// spinGuard is how much of each emulated execution is busy-waited instead
// of slept: time.Sleep overshoots by OS-timer granularity, which at
// millisecond kernel times would distort tail latencies, so the final
// stretch spins to the deadline.
const spinGuard = 200 * time.Microsecond

// runWorker executes the worker's queue sequentially, emulating the scaled
// modeled computation time per request (sleep + spin to the deadline).
// Completion accounting is lock-free (atomic decrement on the instance).
//
// The state CAS against the submitter implements cancellation-while-
// queued: a job whose context fired before the worker reached it is
// discarded without executing (its submitter already returned), and a job
// abandoned mid-execution completes normally but is recycled here instead
// of being delivered.
//
// A crash (FailInstance) closes w.kill and sets w.dead before closing the
// channel: the in-flight emulated kernel is interrupted mid-sleep (the
// computation is lost, as on a real GPU) and restarted from scratch
// through the failover demotion path, and the drain loop requeues every
// queued job the same way instead of executing it.
func (c *Cluster) runWorker(w *worker, rt profiler.Runtime) {
	defer c.wg.Done()
	// The reusable sleep timer starts stopped; Reset arms it per job.
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for j := range w.ch {
		if w.dead.Load() {
			// Crashed: this worker no longer executes. Revert the dispatch
			// accounting and push the job back through the normal dispatch
			// path (or discard it if its submitter already cancelled).
			c.ml.OnComplete(w.inst)
			if j.state.Load() == jobCancelled {
				jobPool.Put(j)
				continue
			}
			c.redispatch(j, obs.RequeueQueued)
			continue
		}
		if !j.state.CompareAndSwap(jobPending, jobRunning) {
			// Cancelled while queued: dequeue and discard.
			c.ml.OnComplete(w.inst)
			jobPool.Put(j)
			continue
		}
		execStart := time.Now()
		modeled := rt.CostOf(j.length)
		if j.maxNew > 1 {
			// Generative request on a sequential worker: run-to-completion,
			// prefill plus maxNew-1 decode steps as one emulated kernel.
			modeled = rt.GenCostOf(j.length, j.maxNew)
		}
		cost := time.Duration(float64(modeled) * c.scale * w.slowFactor())
		interrupted := c.emulate(w, timer, execStart, cost)
		c.ml.OnComplete(w.inst)
		if interrupted {
			// The instance died mid-execution: the computation is lost.
			// Hand the job back to pending and restart it elsewhere, unless
			// the submitter abandoned it concurrently.
			if j.state.CompareAndSwap(jobRunning, jobPending) {
				c.redispatch(j, obs.RequeueInflight)
			} else {
				jobPool.Put(j)
			}
			continue
		}
		lat := time.Since(j.started)
		// Report in modeled time: un-scale the measured wall time so a
		// compressed run still yields model-scale latencies.
		lat = time.Duration(float64(lat) / c.scale)
		j.wait = time.Duration(float64(execStart.Sub(j.started)) / c.scale)
		j.exec = time.Duration(float64(time.Since(execStart)) / c.scale)
		if j.maxNew >= 1 {
			// First token lands at the end of the prefill; the execution is
			// emulated from the same model, so the split is the model's.
			j.ttft = j.wait + rt.CostOf(j.length)
			j.outTokens = j.maxNew
		}
		if j.state.CompareAndSwap(jobRunning, jobDone) {
			j.done <- lat + c.overhead
		} else {
			// Abandoned mid-execution: the submitter is gone; nothing to
			// deliver.
			jobPool.Put(j)
		}
	}
}

// emulate executes one kernel of the given wall-clock cost: sleep to
// within spinGuard of the deadline, then spin out the residue. Returns
// true when the worker was killed mid-kernel (the computation is lost, as
// on a real GPU).
func (c *Cluster) emulate(w *worker, timer *time.Timer, start time.Time, cost time.Duration) bool {
	deadline := start.Add(cost)
	if cost > spinGuard {
		timer.Reset(cost - spinGuard)
		select {
		case <-timer.C:
		case <-w.kill:
			if !timer.Stop() {
				<-timer.C
			}
			return true
		}
	}
	for time.Now().Before(deadline) {
		// Busy-wait the residue for sub-millisecond accuracy, yielding
		// each pass: on a single-CPU host a long batched kernel would
		// otherwise starve the other workers' batch formers (and the
		// submitters feeding them) for its whole spin. The dead check
		// keeps crash interruption bounded even for kernels short enough
		// to skip the sleep.
		if w.dead.Load() {
			return true
		}
		runtime.Gosched()
	}
	return false
}

// runWorkerBatched is the dynamic-batching worker loop: a batch former
// coalesces up to B_i queued requests under the bounded collection window
// (never past the slack a member's deadline leaves), and the whole batch
// executes as one emulated kernel at the sub-linear batched cost.
//
// Lifecycle semantics compose per member:
//
//   - cancellation: each member is promoted pending -> running by CAS at
//     execution start; a lost CAS means the submitter's context fired
//     during formation, and only that member is dropped;
//   - crash: a killed instance loses the entire in-flight batch — every
//     member whose submitter has not abandoned it re-enters the failover
//     demotion path against its own requeue budget, and the drain loop
//     requeues still-queued work exactly like the sequential worker.
func (c *Cluster) runWorkerBatched(w *worker, rt profiler.Runtime) {
	defer c.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	maxBatch := c.batchCapFor(rt)
	// The deadline slack a member must keep after formation: one full
	// batched kernel, in wall time.
	execEstimate := time.Duration(float64(rt.BatchDrainTime(maxBatch, maxBatch)) * c.scale)
	maxDelay := time.Duration(float64(c.batchDelay) * c.scale)
	if c.tenants != nil {
		// SLO-class window policy: batch-class members may stretch the
		// window up to MaxWindowFactor x the configured delay, interactive
		// members shrink it. The per-member Window cap below enforces each
		// class's bound; MaxDelay is sized for the most patient class.
		maxDelay = time.Duration(float64(maxDelay) * tenant.MaxWindowFactor)
	}
	former := &batcher.Former[*job]{
		Source: w.ch,
		Policy: batcher.Policy{
			MaxSize:  maxBatch,
			MaxDelay: maxDelay,
		},
		Deadline: func(j *job) (time.Time, bool) {
			if j.deadline.IsZero() {
				return time.Time{}, false
			}
			return j.deadline.Add(-execEstimate), true
		},
		Interrupt: w.kill,
	}
	if c.tenants != nil {
		former.Window = func(j *job) (time.Duration, bool) { return j.window, j.window > 0 }
	}
	var batch, run []*job
	var lengths, outs []int
	for {
		var ok bool
		batch, ok = former.Next(batch[:0])
		if !ok {
			return
		}
		if w.dead.Load() {
			// Crashed: drain instead of executing, exactly like the
			// sequential worker but for every collected member.
			for _, j := range batch {
				c.ml.OnComplete(w.inst)
				if j.state.Load() == jobCancelled {
					jobPool.Put(j)
					continue
				}
				c.redispatch(j, obs.RequeueQueued)
			}
			continue
		}
		// Promote members; a lost CAS is a cancellation during formation
		// and drops only that member.
		run, lengths, outs = run[:0], lengths[:0], outs[:0]
		anyGen := false
		for _, j := range batch {
			if !j.state.CompareAndSwap(jobPending, jobRunning) {
				c.ml.OnComplete(w.inst)
				jobPool.Put(j)
				continue
			}
			run = append(run, j)
			lengths = append(lengths, j.length)
			out := j.maxNew
			if out < 1 {
				out = 1
			} else {
				anyGen = true
			}
			outs = append(outs, out)
		}
		if len(run) == 0 {
			continue
		}
		formWait := time.Duration(float64(former.FormedIn()) / c.scale)
		batchID := c.batchSeq.Add(1)
		c.obsRec.Load().RecordBatch(rt.Index, len(run))
		execStart := time.Now()
		modeled := rt.BatchCostOf(lengths)
		if anyGen {
			// Run-to-completion generative semantics: every slot stays held
			// until the longest output finishes — the baseline the
			// continuous loop is benchmarked against.
			modeled = rt.GenBatchCostOf(lengths, outs)
		}
		cost := time.Duration(float64(modeled) * c.scale * w.slowFactor())
		interrupted := c.emulate(w, timer, execStart, cost)
		for range run {
			c.ml.OnComplete(w.inst)
		}
		if interrupted {
			// Batch-level crash semantics: the kernel died with every
			// member's computation; each restarts from scratch through the
			// failover path unless its submitter abandoned it concurrently.
			for _, j := range run {
				if j.state.CompareAndSwap(jobRunning, jobPending) {
					c.redispatch(j, obs.RequeueInflight)
				} else {
					jobPool.Put(j)
				}
			}
			continue
		}
		execEnd := time.Now()
		var prefill time.Duration
		if anyGen {
			prefill = rt.BatchCostOf(lengths)
		}
		for _, j := range run {
			lat := time.Duration(float64(execEnd.Sub(j.started)) / c.scale)
			j.wait = time.Duration(float64(execStart.Sub(j.started)) / c.scale)
			j.exec = time.Duration(float64(execEnd.Sub(execStart)) / c.scale)
			j.formWait = formWait
			j.batchID = batchID
			j.batchSize = len(run)
			if j.maxNew >= 1 {
				// Every member's first token lands when the shared prefill
				// kernel ends (modeled split of the emulated execution).
				j.ttft = j.wait + prefill
				j.outTokens = j.maxNew
			}
			if j.state.CompareAndSwap(jobRunning, jobDone) {
				j.done <- lat + c.overhead
			} else {
				jobPool.Put(j)
			}
		}
	}
}

// Request describes one submission to the cluster.
type Request struct {
	// Length is the tokenized sequence length to dispatch on.
	Length int
	// Tokenize, when set, is the time the caller spent encoding the
	// input; it is folded into the request's span for the full
	// tokenize -> complete decomposition.
	Tokenize time.Duration
	// MaxNewTokens is the generative output budget: the request decodes
	// this many tokens (the prefill yields the first). 0 submits a plain
	// encoder request.
	MaxNewTokens int
	// Tenant identifies the submitting tenant for admission, fair-share
	// accounting and the span label. Empty (and any unregistered id)
	// resolves to the "default" tenant; ignored without a tenant registry.
	Tenant string
}

// Result is the outcome of one completed request: the modeled latency
// plus the full lifecycle span (queueing delay, execution time, demotion
// attribution).
type Result struct {
	// Latency is the end-to-end modeled latency (queueing + compute +
	// overhead) — what Submit used to return bare.
	Latency time.Duration
	// Span is the request's lifecycle record.
	Span obs.Span
}

// Submit dispatches one request of the given token length and blocks until
// it completes, returning its modeled latency (queueing + compute +
// overhead). The job and its completion channel come from a pool, so the
// steady-state path is allocation-free. Callers that need the latency
// decomposition or cancellation should use SubmitCtx.
func (c *Cluster) Submit(length int) (time.Duration, error) {
	res, err := c.SubmitCtx(context.Background(), Request{Length: length})
	if err != nil {
		return 0, err
	}
	return res.Latency, nil
}

// SubmitCtx dispatches one request and blocks until it completes or the
// context is done. The context's deadline and cancellation are honored
// while the request is queued: a request whose context fires before
// execution starts is dequeued without running, and one cancelled
// mid-execution is detached (the emulated kernel cannot be interrupted,
// but the caller returns immediately). Both cases return an error
// wrapping ErrDeadlineExceeded and the context's own error.
//
// With a plain background context the path is identical to Submit:
// allocation-free via the job pool.
func (c *Cluster) SubmitCtx(ctx context.Context, req Request) (Result, error) {
	rec := c.obsRec.Load()
	if err := ctx.Err(); err != nil {
		// Dead-on-arrival contexts still count as one submission attempt
		// with a cancelled outcome, so the recorder's books balance.
		rec.RecordSubmit()
		rec.RecordCancel()
		return Result{}, cancelErr(err)
	}
	t, aerr := c.admitTenant(req.Tenant, req.Length+req.MaxNewTokens)
	if aerr != nil {
		// Rejected at the door: the request never leases a job or touches
		// the queue.
		c.rejectAdmission(rec)
		return Result{}, aerr
	}
	j := newJob(req.Length)
	j.tokenize = req.Tokenize
	if req.MaxNewTokens > 0 {
		j.maxNew = req.MaxNewTokens
	}
	if d, ok := ctx.Deadline(); ok {
		// The batch former bounds its collection window by the slack this
		// deadline leaves.
		j.deadline = d
	}
	c.applyTenant(j, t)
	if err := c.submit(ctx, j); err != nil {
		jobPool.Put(j)
		return Result{}, err
	}
	return c.await(ctx, j, rec)
}

// await blocks until a routed job completes or its context fires — the
// shared back half of SubmitCtx, Ingress.SubmitCtx and SubmitBatch. On
// cancellation it races the worker for the job's state: winning the CAS
// hands ownership to whichever goroutine holds the job next (worker, ring
// consumer or requeuer), which discards it.
func (c *Cluster) await(ctx context.Context, j *job, rec *obs.Recorder) (Result, error) {
	if ctx.Done() == nil {
		return c.deliver(j, <-j.done, rec)
	}
	select {
	case lat := <-j.done:
		return c.deliver(j, lat, rec)
	case <-ctx.Done():
		for {
			if j.state.CompareAndSwap(jobPending, jobCancelled) ||
				j.state.CompareAndSwap(jobRunning, jobAbandoned) {
				// The worker now owns the job (it will discard or recycle
				// it); the submitter must not touch j again.
				rec.RecordCancel()
				return Result{}, cancelErr(ctx.Err())
			}
			// Neither CAS won: the job either terminated (its result is on
			// the channel) or a failure requeue flipped it running ->
			// pending between the two CAS attempts. Poll the channel and
			// retry — the state settles within a few iterations.
			select {
			case lat := <-j.done:
				return c.deliver(j, lat, rec)
			default:
				runtime.Gosched()
			}
		}
	}
}

// deliver consumes a value received from the job's done channel: a
// failure sentinel yields the job's terminal error, anything else is a
// normal completion. Either way the job returns to the pool.
func (c *Cluster) deliver(j *job, lat time.Duration, rec *obs.Recorder) (Result, error) {
	if lat == failedLatency {
		err := j.err
		jobPool.Put(j)
		return Result{}, err
	}
	res := c.finish(j, lat, rec)
	jobPool.Put(j)
	return res, nil
}

// finish assembles the completed job's span, records it, and builds the
// result. Caller still owns j.
func (c *Cluster) finish(j *job, lat time.Duration, rec *obs.Recorder) Result {
	span := obs.Span{
		Length:      j.length,
		Enqueued:    j.started,
		Tokenize:    j.tokenize,
		Dispatch:    j.dispatch,
		Queue:       j.wait,
		Exec:        j.exec,
		Total:       lat,
		IdealLevel:  j.dec.IdealLevel,
		Level:       j.dec.Level,
		Instance:    j.instID,
		Peeked:      j.dec.Peeked,
		Fallback:    j.dec.Fallback,
		Batch:       j.batchID,
		BatchSize:   j.batchSize,
		FormWait:    j.formWait,
		IngressWait: j.ingressWait,
		OutTokens:   j.outTokens,
		TTFT:        j.ttft,
	}
	if j.tenant != nil {
		span.Tenant = j.tenant.ID()
	}
	rec.RecordSpan(&span)
	return Result{Latency: lat, Span: span}
}

// cancelErr maps a context error to the cluster's sentinel while keeping
// the cause inspectable: errors.Is matches ErrDeadlineExceeded and the
// underlying context.Canceled / context.DeadlineExceeded.
func cancelErr(cause error) error {
	return fmt.Errorf("%w: %w", ErrDeadlineExceeded, cause)
}

// rejectReason classifies a submission error for the rejection counter.
func rejectReason(err error) obs.RejectReason {
	switch {
	case errors.Is(err, ErrUnserviceable):
		return obs.RejectUnserviceable
	case errors.Is(err, dispatch.ErrTooLong):
		return obs.RejectTooLong
	case errors.Is(err, dispatch.ErrNoInstances):
		return obs.RejectNoInstances
	case errors.Is(err, ErrCongested):
		return obs.RejectCongested
	case errors.Is(err, ErrClusterClosed):
		return obs.RejectClosed
	case errors.Is(err, ErrDeadlineExceeded):
		// Only the ingress drain rejects on a spent deadline (the direct
		// path surfaces cancellation through RecordCancel instead).
		return obs.RejectDeadline
	case errors.Is(err, tenant.ErrRateLimited):
		return obs.RejectRateLimited
	default:
		return obs.RejectOther
	}
}

// SubmitAsync dispatches one request and returns a channel that yields its
// latency on completion. The channel escapes to the caller and is not
// pooled; latency-sensitive callers that wait inline should prefer Submit.
// A request that becomes unserviceable under repeated instance failures
// yields a negative latency on the channel instead of completing.
func (c *Cluster) SubmitAsync(length int) (<-chan time.Duration, error) {
	j := &job{length: length, started: time.Now(), done: make(chan time.Duration, 1)}
	if err := c.submit(context.Background(), j); err != nil {
		return nil, err
	}
	return j.done, nil
}

// submit routes one job to a worker, recording the submission and any
// rejection or demotion on the observer.
func (c *Cluster) submit(ctx context.Context, j *job) (err error) {
	rec := c.obsRec.Load()
	rec.RecordSubmit()
	defer func() {
		if err != nil {
			rec.RecordReject(rejectReason(err))
		}
	}()
	if c.fairQ != nil {
		// Multi-tenant mode: the job takes its fair turn in the pump's
		// dispatch order instead of routing inline.
		return c.fairEnqueue(j)
	}
	return c.route(ctx, j)
}

// route dispatches one job and hands it to the chosen worker — the shared
// placement step of first submission and failure requeue. It holds the
// topology lock shared so submissions run concurrently with each other
// (the queue stripes its own locks) while Close and worker removal are
// excluded — the channel send can never race a close.
func (c *Cluster) route(ctx context.Context, j *job) error {
	rec := c.obsRec.Load()
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return ErrClusterClosed
	}
	t0 := time.Now()
	inst, dec, err := c.dispCtx.DispatchCtx(ctx, j.length)
	if err != nil {
		return err
	}
	j.dispatch = time.Since(t0)
	j.dec = dec
	j.instID = inst.ID
	if dec.Level > dec.IdealLevel {
		rec.RecordDemotion(dec.IdealLevel, dec.Level)
	}
	w := c.workers[inst.ID]
	if w == nil {
		// The dispatcher chose an instance whose worker is gone (a
		// concurrent removal between the queue walk and the pick).
		// Transient — surfaced as congestion so callers retry.
		c.ml.OnComplete(inst)
		return fmt.Errorf("%w: instance %d no longer deployed", ErrCongested, inst.ID)
	}
	select {
	case w.ch <- j:
		return nil
	default:
		// Worker queue overflow: account the drop and fail loudly rather
		// than distorting latency by blocking the caller.
		c.ml.OnComplete(w.inst)
		return fmt.Errorf("%w: worker %d queue overflow", ErrCongested, inst.ID)
	}
}

// redispatchBackoff separates requeue attempts that failed on a transient
// dispatch error (congestion, no instance up yet mid-recovery) so a
// failure burst does not burn the whole budget in microseconds.
const redispatchBackoff = 200 * time.Microsecond

// redispatch pushes a failure-displaced job back through the normal
// dispatch path — the failover demotion rule (see internal/failover): no
// special placement, the active policy decides, so work from a dead
// small-runtime instance degrades into larger runtimes exactly like a
// congestion demotion. Each attempt consumes one unit of the request's
// requeue budget; exhaustion, closure and permanent dispatch errors
// terminate the job with a typed error instead of livelocking it.
//
// Runs on the dying worker's goroutine, never on a submitter's.
func (c *Cluster) redispatch(j *job, reason obs.RequeueReason) {
	rec := c.obsRec.Load()
	rec.RecordRequeue(reason)
	for {
		if j.state.Load() == jobCancelled {
			// The submitter cancelled while the job was between workers;
			// it already returned, so the requeuer owns the job.
			jobPool.Put(j)
			return
		}
		if j.requeues >= c.budget {
			c.failJob(j, fmt.Errorf("%w: displaced %d times (budget %d)",
				ErrUnserviceable, j.requeues, c.budget))
			return
		}
		j.requeues++
		err := c.route(context.Background(), j)
		if err == nil {
			return
		}
		if errors.Is(err, ErrClusterClosed) || errors.Is(err, dispatch.ErrTooLong) {
			c.failJob(j, err)
			return
		}
		// Transient (congested, no instances mid-recovery): retry against
		// the remaining budget.
		time.Sleep(redispatchBackoff)
	}
}

// failJob terminates a displaced job with a typed error, delivering it to
// the submitter through the done channel (or discarding the job when the
// submitter cancelled concurrently). The rejection is recorded here so
// the books balance exactly like a synchronous submit failure.
func (c *Cluster) failJob(j *job, err error) {
	if j.state.CompareAndSwap(jobPending, jobDone) {
		j.err = err
		c.obsRec.Load().RecordReject(rejectReason(err))
		j.done <- failedLatency
		return
	}
	// Cancelled concurrently: the submitter already returned and counted
	// the cancellation.
	jobPool.Put(j)
}

// Instances returns the current instance count.
func (c *Cluster) Instances() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.workers)
}

// NumLevels returns the number of runtime levels the cluster schedules
// over.
func (c *Cluster) NumLevels() int { return c.ml.NumLevels() }

// MaxLength returns the largest max_length across the cluster's deployed
// runtime levels — the longest request the cluster can serve at all.
func (c *Cluster) MaxLength() int {
	maxLens := c.cfg.Profile.MaxLengths()
	return maxLens[len(maxLens)-1]
}

// SetObserver installs (or clears, with nil) the observability recorder:
// subsequent submissions record spans, demotions and rejections into it,
// and its scrape-time gauges are fed from this cluster's live state. Safe
// to call while serving.
func (c *Cluster) SetObserver(rec *obs.Recorder) {
	if rec != nil {
		rec.SetSnapshot(c.obsSnapshot)
		// Install the profile's runtime boundaries as the sliding-window
		// length bins so the control loop can read the demand vector q
		// straight off the recorder.
		rec.SetLengthBins(c.cfg.Profile.MaxLengths())
	}
	c.obsRec.Store(rec)
}

// Observer returns the installed observability recorder (nil when
// disabled).
func (c *Cluster) Observer() *obs.Recorder { return c.obsRec.Load() }

// obsSnapshot captures the live per-level queue depths and per-instance
// loads for the observer's gauges.
func (c *Cluster) obsSnapshot() obs.Snapshot {
	maxLens := c.cfg.Profile.MaxLengths()
	snap := obs.Snapshot{Levels: make([]obs.LevelStat, c.ml.NumLevels())}
	for k := range snap.Levels {
		lvl := c.ml.Level(k)
		snap.Levels[k] = obs.LevelStat{
			Level:     k,
			MaxLength: maxLens[k],
			Instances: lvl.Len(),
			Depth:     lvl.Depth(),
		}
		if c.maxBatch > 1 {
			snap.Levels[k].BatchCap = c.batchCapFor(c.cfg.Profile.Runtimes[k])
		}
	}
	insts := c.ml.Instances()
	sort.Slice(insts, func(i, j int) bool { return insts[i].ID < insts[j].ID })
	snap.Instances = make([]obs.InstanceStat, 0, len(insts))
	c.mu.RLock()
	for _, in := range insts {
		st := obs.InstanceStat{
			ID:          in.ID,
			Runtime:     in.Runtime,
			Outstanding: in.Outstanding(),
			Capacity:    in.MaxCapacity,
			Health:      obs.Healthy,
		}
		if w := c.workers[in.ID]; w != nil {
			st.Health = w.health()
		}
		snap.Instances = append(snap.Instances, st)
	}
	// Crashed instances left the queue but stay visible (as dead, carrying
	// no load) until their downtime elapses and they rejoin.
	for id, f := range c.failed {
		snap.Instances = append(snap.Instances, obs.InstanceStat{
			ID:       id,
			Runtime:  f.runtime,
			Capacity: f.capacity,
			Health:   obs.Dead,
		})
	}
	c.mu.RUnlock()
	sort.Slice(snap.Instances, func(i, j int) bool {
		return snap.Instances[i].ID < snap.Instances[j].ID
	})
	if c.tenants != nil {
		snap.Tenants = c.tenantSnapshot()
	}
	return snap
}

// Close stops all workers. Pending jobs are completed first.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, w := range c.workers {
		close(w.ch)
	}
	c.mu.Unlock()
	if c.fairQ != nil {
		// The pump drains the fair queue (failing leftovers with
		// ErrClusterClosed) and exits; wg.Wait covers it.
		c.fairQ.Close()
	}
	c.wg.Wait()
}

// ReplayResult is the outcome of replaying a trace on the cluster.
type ReplayResult struct {
	Latency  *metrics.Recorder
	Summary  metrics.Summary
	Rejected int
}

// Replay drives the cluster with a trace in (scaled) real time: each
// request is submitted at its scaled arrival offset from a driver
// goroutine and measured to completion. Replay blocks until every request
// finishes. Jobs are pooled: each completion goroutine returns its job
// after recording the latency.
func (c *Cluster) Replay(tr *trace.Trace) (*ReplayResult, error) {
	if tr == nil {
		return nil, fmt.Errorf("cluster: nil trace")
	}
	var (
		mu       sync.Mutex
		rec      = metrics.NewRecorder(len(tr.Requests))
		rejected int
		wg       sync.WaitGroup
	)
	start := time.Now()
	for i := range tr.Requests {
		r := &tr.Requests[i]
		at := time.Duration(float64(r.At) * c.scale)
		if wait := time.Until(start.Add(at)); wait > 0 {
			time.Sleep(wait)
		}
		var tn *tenant.Tenant
		if c.tenants != nil {
			var aerr error
			tn, aerr = c.admitTenant(r.Tenant, r.Length+r.OutTokens)
			if aerr != nil {
				c.rejectAdmission(c.obsRec.Load())
				mu.Lock()
				rejected++
				mu.Unlock()
				continue
			}
		}
		j := newJob(r.Length)
		if r.OutTokens > 0 {
			j.maxNew = r.OutTokens
		}
		c.applyTenant(j, tn)
		if err := c.submit(context.Background(), j); err != nil {
			jobPool.Put(j)
			mu.Lock()
			rejected++
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat := <-j.done
			if lat == failedLatency {
				// Displaced by failures past the requeue budget (or the
				// cluster closed mid-requeue): counts as a rejection, not a
				// completion.
				jobPool.Put(j)
				mu.Lock()
				rejected++
				mu.Unlock()
				return
			}
			c.finish(j, lat, c.obsRec.Load())
			jobPool.Put(j)
			mu.Lock()
			rec.Record(lat)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return &ReplayResult{
		Latency:  rec,
		Summary:  rec.Summarize(c.cfg.Profile.SLO),
		Rejected: rejected,
	}, nil
}
