// Package cluster is the real-time counterpart of the discrete-event
// simulator: the "testbed" of this reproduction. Each GPU instance is a
// goroutine that executes requests sequentially on the wall clock,
// emulating computation with the calibrated latency model; dispatching
// runs through the same multi-level queue and policies as the simulator.
// The section 5.2.1 calibration experiment replays one trace through both
// this prototype and the simulator and compares the distributions.
//
// The dispatch hot path is concurrent: submissions hold only a shared
// (read) lock on the cluster's topology, so any number of goroutines can
// dispatch in parallel while synchronization happens inside the
// lock-striped multi-level queue. The exclusive side of the lock is
// reserved for topology changes — adding or removing workers and Close —
// which also makes Submit-after-Close race-free: Close cannot close a
// worker channel while a submission holding the read lock is sending on
// it. Completions decrement the queue's atomic counters without any
// cluster-level lock.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"arlo/internal/dispatch"
	"arlo/internal/metrics"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/trace"
)

// Config describes a real-time cluster.
type Config struct {
	// Profile defines the runtimes and SLO.
	Profile *profiler.Profile
	// InitialAllocation gives per-runtime instance counts.
	InitialAllocation []int
	// Dispatcher builds the dispatch policy over the cluster's queue.
	Dispatcher func(ml *queue.MultiLevel) (dispatch.Dispatcher, error)
	// TimeScale compresses emulated compute time: wall time = modeled
	// latency * TimeScale. 0 defaults to 1 (real time).
	TimeScale float64
	// Overhead is added to each reported latency (0 defaults to the
	// simulator's 0.8 ms; negative forces zero). It models network +
	// host-device transfer and is not slept.
	Overhead time.Duration
	// QueueDepth bounds each worker's channel (default 8192).
	QueueDepth int
}

// Cluster is a running set of emulated GPU workers.
type Cluster struct {
	cfg      Config
	ml       *queue.MultiLevel
	disp     dispatch.Dispatcher
	overhead time.Duration
	scale    float64
	depth    int

	// mu guards topology only: the workers map, nextID and closed.
	// Submissions hold it shared across dispatch + channel send; worker
	// add/remove and Close hold it exclusively. Dispatch decisions and
	// completion accounting synchronize inside the multi-level queue.
	mu      sync.RWMutex
	workers map[int]*worker
	nextID  int
	closed  bool

	wg sync.WaitGroup
}

type job struct {
	length  int
	started time.Time
	done    chan time.Duration
}

// jobPool recycles job structs together with their completion channels so
// the steady-state submit path allocates nothing. The buffered channel is
// used for exactly one send and one receive per lease, so a recycled
// channel is always empty.
var jobPool = sync.Pool{
	New: func() any { return &job{done: make(chan time.Duration, 1)} },
}

func newJob(length int) *job {
	j := jobPool.Get().(*job)
	j.length = length
	j.started = time.Now()
	return j
}

type worker struct {
	inst *queue.Instance
	ch   chan *job
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("cluster: closed")

// New starts the cluster's workers.
func New(cfg Config) (*Cluster, error) {
	if cfg.Profile == nil || len(cfg.Profile.Runtimes) == 0 {
		return nil, fmt.Errorf("cluster: profile with no runtimes")
	}
	if len(cfg.InitialAllocation) != len(cfg.Profile.Runtimes) {
		return nil, fmt.Errorf("cluster: allocation has %d entries for %d runtimes",
			len(cfg.InitialAllocation), len(cfg.Profile.Runtimes))
	}
	if cfg.Dispatcher == nil {
		return nil, fmt.Errorf("cluster: nil dispatcher factory")
	}
	total := 0
	for i, n := range cfg.InitialAllocation {
		if n < 0 {
			return nil, fmt.Errorf("cluster: negative allocation at runtime %d", i)
		}
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("cluster: no instances deployed")
	}
	ml, err := queue.NewMultiLevel(cfg.Profile.MaxLengths())
	if err != nil {
		return nil, err
	}
	disp, err := cfg.Dispatcher(ml)
	if err != nil {
		return nil, err
	}
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	overhead := cfg.Overhead
	if overhead == 0 {
		overhead = 800 * time.Microsecond
	} else if overhead < 0 {
		overhead = 0
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 8192
	}
	c := &Cluster{
		cfg:      cfg,
		ml:       ml,
		disp:     disp,
		workers:  make(map[int]*worker),
		overhead: overhead,
		scale:    scale,
		depth:    depth,
	}
	c.mu.Lock()
	for rtIdx, n := range cfg.InitialAllocation {
		for k := 0; k < n; k++ {
			if err := c.addWorker(rtIdx); err != nil {
				c.mu.Unlock()
				c.Close()
				return nil, err
			}
		}
	}
	c.mu.Unlock()
	return c, nil
}

// addWorker provisions one worker; caller holds c.mu exclusively.
func (c *Cluster) addWorker(rtIdx int) error {
	rt := c.cfg.Profile.Runtimes[rtIdx]
	inst := &queue.Instance{ID: c.nextID, Runtime: rtIdx, MaxCapacity: rt.Capacity}
	c.nextID++
	if err := c.ml.Add(inst); err != nil {
		return err
	}
	w := &worker{inst: inst, ch: make(chan *job, c.depth)}
	c.workers[inst.ID] = w
	c.wg.Add(1)
	go c.runWorker(w, rt)
	return nil
}

// spinGuard is how much of each emulated execution is busy-waited instead
// of slept: time.Sleep overshoots by OS-timer granularity, which at
// millisecond kernel times would distort tail latencies, so the final
// stretch spins to the deadline.
const spinGuard = 200 * time.Microsecond

// runWorker executes the worker's queue sequentially, emulating the scaled
// modeled computation time per request (sleep + spin to the deadline).
// Completion accounting is lock-free (atomic decrement on the instance).
func (c *Cluster) runWorker(w *worker, rt profiler.Runtime) {
	defer c.wg.Done()
	for j := range w.ch {
		cost := time.Duration(float64(rt.CostOf(j.length)) * c.scale)
		deadline := time.Now().Add(cost)
		if cost > spinGuard {
			time.Sleep(cost - spinGuard)
		}
		for time.Now().Before(deadline) {
			// Busy-wait the residue for sub-millisecond accuracy.
		}
		lat := time.Since(j.started)
		// Report in modeled time: un-scale the measured wall time so a
		// compressed run still yields model-scale latencies.
		lat = time.Duration(float64(lat) / c.scale)
		c.ml.OnComplete(w.inst)
		j.done <- lat + c.overhead
	}
}

// Submit dispatches one request of the given token length and blocks until
// it completes, returning its modeled latency (queueing + compute +
// overhead). The job and its completion channel come from a pool, so the
// steady-state path is allocation-free.
func (c *Cluster) Submit(length int) (time.Duration, error) {
	j := newJob(length)
	if err := c.submit(j); err != nil {
		jobPool.Put(j)
		return 0, err
	}
	lat := <-j.done
	jobPool.Put(j)
	return lat, nil
}

// SubmitAsync dispatches one request and returns a channel that yields its
// latency on completion. The channel escapes to the caller and is not
// pooled; latency-sensitive callers that wait inline should prefer Submit.
func (c *Cluster) SubmitAsync(length int) (<-chan time.Duration, error) {
	j := &job{length: length, started: time.Now(), done: make(chan time.Duration, 1)}
	if err := c.submit(j); err != nil {
		return nil, err
	}
	return j.done, nil
}

// submit routes one job to a worker. It holds the topology lock shared so
// submissions run concurrently with each other (the queue stripes its own
// locks) while Close and worker removal are excluded — the channel send
// can never race a close.
func (c *Cluster) submit(j *job) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return ErrClosed
	}
	inst, err := c.disp.Dispatch(j.length)
	if err != nil {
		return err
	}
	w := c.workers[inst.ID]
	if w == nil {
		// The dispatcher chose an instance whose worker is gone (a
		// concurrent removal between the queue walk and the pick).
		c.ml.OnComplete(inst)
		return fmt.Errorf("cluster: instance %d no longer deployed", inst.ID)
	}
	select {
	case w.ch <- j:
		return nil
	default:
		// Worker queue overflow: account the drop and fail loudly rather
		// than distorting latency by blocking the caller.
		c.ml.OnComplete(w.inst)
		return fmt.Errorf("cluster: worker %d queue overflow", inst.ID)
	}
}

// Instances returns the current instance count.
func (c *Cluster) Instances() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.workers)
}

// Close stops all workers. Pending jobs are completed first.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, w := range c.workers {
		close(w.ch)
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// ReplayResult is the outcome of replaying a trace on the cluster.
type ReplayResult struct {
	Latency  *metrics.Recorder
	Summary  metrics.Summary
	Rejected int
}

// Replay drives the cluster with a trace in (scaled) real time: each
// request is submitted at its scaled arrival offset from a driver
// goroutine and measured to completion. Replay blocks until every request
// finishes. Jobs are pooled: each completion goroutine returns its job
// after recording the latency.
func (c *Cluster) Replay(tr *trace.Trace) (*ReplayResult, error) {
	if tr == nil {
		return nil, fmt.Errorf("cluster: nil trace")
	}
	var (
		mu       sync.Mutex
		rec      = metrics.NewRecorder(len(tr.Requests))
		rejected int
		wg       sync.WaitGroup
	)
	start := time.Now()
	for i := range tr.Requests {
		r := &tr.Requests[i]
		at := time.Duration(float64(r.At) * c.scale)
		if wait := time.Until(start.Add(at)); wait > 0 {
			time.Sleep(wait)
		}
		j := newJob(r.Length)
		if err := c.submit(j); err != nil {
			jobPool.Put(j)
			mu.Lock()
			rejected++
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat := <-j.done
			jobPool.Put(j)
			mu.Lock()
			rec.Record(lat)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return &ReplayResult{
		Latency:  rec,
		Summary:  rec.Summarize(c.cfg.Profile.SLO),
		Rejected: rejected,
	}, nil
}
