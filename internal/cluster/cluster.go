// Package cluster is the real-time counterpart of the discrete-event
// simulator: the "testbed" of this reproduction. Each GPU instance is a
// goroutine that executes requests sequentially on the wall clock,
// emulating computation with the calibrated latency model; dispatching
// runs through the same multi-level queue and policies as the simulator.
// The section 5.2.1 calibration experiment replays one trace through both
// this prototype and the simulator and compares the distributions.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"arlo/internal/dispatch"
	"arlo/internal/metrics"
	"arlo/internal/profiler"
	"arlo/internal/queue"
	"arlo/internal/trace"
)

// Config describes a real-time cluster.
type Config struct {
	// Profile defines the runtimes and SLO.
	Profile *profiler.Profile
	// InitialAllocation gives per-runtime instance counts.
	InitialAllocation []int
	// Dispatcher builds the dispatch policy over the cluster's queue.
	Dispatcher func(ml *queue.MultiLevel) (dispatch.Dispatcher, error)
	// TimeScale compresses emulated compute time: wall time = modeled
	// latency * TimeScale. 0 defaults to 1 (real time).
	TimeScale float64
	// Overhead is added to each reported latency (0 defaults to the
	// simulator's 0.8 ms; negative forces zero). It models network +
	// host-device transfer and is not slept.
	Overhead time.Duration
	// QueueDepth bounds each worker's channel (default 8192).
	QueueDepth int
}

// Cluster is a running set of emulated GPU workers.
type Cluster struct {
	cfg      Config
	mu       sync.Mutex
	ml       *queue.MultiLevel
	disp     dispatch.Dispatcher
	workers  map[int]*worker
	nextID   int
	closed   bool
	wg       sync.WaitGroup
	overhead time.Duration
	scale    float64
}

type job struct {
	length  int
	started time.Time
	done    chan time.Duration
}

type worker struct {
	inst *queue.Instance
	ch   chan *job
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("cluster: closed")

// New starts the cluster's workers.
func New(cfg Config) (*Cluster, error) {
	if cfg.Profile == nil || len(cfg.Profile.Runtimes) == 0 {
		return nil, fmt.Errorf("cluster: profile with no runtimes")
	}
	if len(cfg.InitialAllocation) != len(cfg.Profile.Runtimes) {
		return nil, fmt.Errorf("cluster: allocation has %d entries for %d runtimes",
			len(cfg.InitialAllocation), len(cfg.Profile.Runtimes))
	}
	if cfg.Dispatcher == nil {
		return nil, fmt.Errorf("cluster: nil dispatcher factory")
	}
	total := 0
	for i, n := range cfg.InitialAllocation {
		if n < 0 {
			return nil, fmt.Errorf("cluster: negative allocation at runtime %d", i)
		}
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("cluster: no instances deployed")
	}
	ml, err := queue.NewMultiLevel(cfg.Profile.MaxLengths())
	if err != nil {
		return nil, err
	}
	disp, err := cfg.Dispatcher(ml)
	if err != nil {
		return nil, err
	}
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	overhead := cfg.Overhead
	if overhead == 0 {
		overhead = 800 * time.Microsecond
	} else if overhead < 0 {
		overhead = 0
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 8192
	}
	c := &Cluster{
		cfg:      cfg,
		ml:       ml,
		disp:     disp,
		workers:  make(map[int]*worker),
		overhead: overhead,
		scale:    scale,
	}
	for rtIdx, n := range cfg.InitialAllocation {
		for k := 0; k < n; k++ {
			if err := c.addWorker(rtIdx, depth); err != nil {
				c.Close()
				return nil, err
			}
		}
	}
	return c, nil
}

func (c *Cluster) addWorker(rtIdx, depth int) error {
	rt := c.cfg.Profile.Runtimes[rtIdx]
	inst := &queue.Instance{ID: c.nextID, Runtime: rtIdx, MaxCapacity: rt.Capacity}
	c.nextID++
	if err := c.ml.Add(inst); err != nil {
		return err
	}
	w := &worker{inst: inst, ch: make(chan *job, depth)}
	c.workers[inst.ID] = w
	c.wg.Add(1)
	go c.runWorker(w, rt)
	return nil
}

// spinGuard is how much of each emulated execution is busy-waited instead
// of slept: time.Sleep overshoots by OS-timer granularity, which at
// millisecond kernel times would distort tail latencies, so the final
// stretch spins to the deadline.
const spinGuard = 200 * time.Microsecond

// runWorker executes the worker's queue sequentially, emulating the scaled
// modeled computation time per request (sleep + spin to the deadline).
func (c *Cluster) runWorker(w *worker, rt profiler.Runtime) {
	defer c.wg.Done()
	for j := range w.ch {
		cost := time.Duration(float64(rt.CostOf(j.length)) * c.scale)
		deadline := time.Now().Add(cost)
		if cost > spinGuard {
			time.Sleep(cost - spinGuard)
		}
		for time.Now().Before(deadline) {
			// Busy-wait the residue for sub-millisecond accuracy.
		}
		lat := time.Since(j.started)
		// Report in modeled time: un-scale the measured wall time so a
		// compressed run still yields model-scale latencies.
		lat = time.Duration(float64(lat) / c.scale)
		c.mu.Lock()
		c.ml.OnComplete(w.inst)
		c.mu.Unlock()
		j.done <- lat + c.overhead
	}
}

// Submit dispatches one request of the given token length and blocks until
// it completes, returning its modeled latency (queueing + compute +
// overhead).
func (c *Cluster) Submit(length int) (time.Duration, error) {
	ch, err := c.SubmitAsync(length)
	if err != nil {
		return 0, err
	}
	return <-ch, nil
}

// SubmitAsync dispatches one request and returns a channel that yields its
// latency on completion.
func (c *Cluster) SubmitAsync(length int) (<-chan time.Duration, error) {
	j := &job{length: length, started: time.Now(), done: make(chan time.Duration, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	inst, err := c.disp.Dispatch(length)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	w := c.workers[inst.ID]
	c.mu.Unlock()
	select {
	case w.ch <- j:
	default:
		// Worker queue overflow: account the drop and fail loudly rather
		// than distorting latency by blocking the caller.
		c.mu.Lock()
		c.ml.OnComplete(w.inst)
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: worker %d queue overflow", inst.ID)
	}
	return j.done, nil
}

// Instances returns the current instance count.
func (c *Cluster) Instances() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Close stops all workers. Pending jobs are completed first.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, w := range c.workers {
		close(w.ch)
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// ReplayResult is the outcome of replaying a trace on the cluster.
type ReplayResult struct {
	Latency  *metrics.Recorder
	Summary  metrics.Summary
	Rejected int
}

// Replay drives the cluster with a trace in (scaled) real time: each
// request is submitted at its scaled arrival offset from a driver
// goroutine and measured to completion. Replay blocks until every request
// finishes.
func (c *Cluster) Replay(tr *trace.Trace) (*ReplayResult, error) {
	if tr == nil {
		return nil, fmt.Errorf("cluster: nil trace")
	}
	var (
		mu       sync.Mutex
		rec      = metrics.NewRecorder(len(tr.Requests))
		rejected int
		wg       sync.WaitGroup
	)
	start := time.Now()
	for i := range tr.Requests {
		r := &tr.Requests[i]
		at := time.Duration(float64(r.At) * c.scale)
		if wait := time.Until(start.Add(at)); wait > 0 {
			time.Sleep(wait)
		}
		ch, err := c.SubmitAsync(r.Length)
		if err != nil {
			mu.Lock()
			rejected++
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat := <-ch
			mu.Lock()
			rec.Record(lat)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return &ReplayResult{
		Latency:  rec,
		Summary:  rec.Summarize(c.cfg.Profile.SLO),
		Rejected: rejected,
	}, nil
}
