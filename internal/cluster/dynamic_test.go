package cluster

import (
	"testing"
	"time"
)

func TestAddRemoveInstance(t *testing.T) {
	p := testProfile(t, []int{64, 512})
	c, err := New(Config{Profile: p, InitialAllocation: []int{1, 1}, Dispatcher: rsFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	id, err := c.AddInstance(0)
	if err != nil {
		t.Fatal(err)
	}
	if id < 2 {
		t.Errorf("new instance ID = %d, want >= 2", id)
	}
	if got := c.Allocation(); got[0] != 2 || got[1] != 1 {
		t.Errorf("allocation = %v, want [2 1]", got)
	}
	removed, err := c.RemoveInstance(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Allocation(); got[0] != 1 {
		t.Errorf("after removal allocation = %v, want [1 1]", got)
	}
	_ = removed
	if _, err := c.AddInstance(7); err == nil {
		t.Error("out-of-range runtime should fail")
	}
	if _, err := c.AddInstance(-1); err == nil {
		t.Error("negative runtime should fail")
	}
}

func TestRemoveInstanceAnyPicksLeastBusy(t *testing.T) {
	p := testProfile(t, []int{64, 512})
	c, err := New(Config{Profile: p, InitialAllocation: []int{1, 1}, Dispatcher: rsFactory, Overhead: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Load the 64 instance with a few requests; the idle 512 instance is
	// then the least busy and should be removed first.
	for i := 0; i < 3; i++ {
		if _, err := c.SubmitAsync(20); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.RemoveInstance(-1); err != nil {
		t.Fatal(err)
	}
	got := c.Allocation()
	if got[1] != 0 || got[0] != 1 {
		t.Errorf("allocation = %v, want the idle 512 instance removed", got)
	}
}

func TestRemoveInstanceErrors(t *testing.T) {
	p := testProfile(t, []int{64, 512})
	c, err := New(Config{Profile: p, InitialAllocation: []int{1, 0}, Dispatcher: rsFactory})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RemoveInstance(1); err == nil {
		t.Error("removing from an empty runtime should fail")
	}
	c.Close()
	if _, err := c.RemoveInstance(0); err != ErrClosed {
		t.Errorf("remove after close = %v, want ErrClosed", err)
	}
	if _, err := c.AddInstance(0); err != ErrClosed {
		t.Errorf("add after close = %v, want ErrClosed", err)
	}
}

func TestRemovedWorkerDrainsItsQueue(t *testing.T) {
	p := testProfile(t, []int{512})
	c, err := New(Config{Profile: p, InitialAllocation: []int{1}, Dispatcher: rsFactory, Overhead: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	chans := make([]<-chan time.Duration, 3)
	for i := range chans {
		ch, err := c.SubmitAsync(100)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	if _, err := c.RemoveInstance(0); err != nil {
		t.Fatal(err)
	}
	// Every already-dispatched request still completes.
	for i, ch := range chans {
		select {
		case lat := <-ch:
			if lat <= 0 {
				t.Errorf("request %d latency %v", i, lat)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("request %d never completed after removal", i)
		}
	}
	// With no workers, a new submit fails cleanly.
	if _, err := c.Submit(100); err == nil {
		t.Error("submit to an empty cluster should fail")
	}
}

func TestReplaceSwapsRuntime(t *testing.T) {
	p := testProfile(t, []int{64, 512})
	c, err := New(Config{Profile: p, InitialAllocation: []int{2, 1}, Dispatcher: rsFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Replace(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	got := c.Allocation()
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("allocation after replace = %v, want [1 2]", got)
	}
	if c.Instances() != 3 {
		t.Errorf("instances = %d, want 3", c.Instances())
	}
}

func TestOutstandingTracksLoad(t *testing.T) {
	p := testProfile(t, []int{512})
	c, err := New(Config{Profile: p, InitialAllocation: []int{1}, Dispatcher: rsFactory, Overhead: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ch, err := c.SubmitAsync(100)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Outstanding(); got != 1 {
		t.Errorf("outstanding = %d, want 1", got)
	}
	<-ch
	// Allow the worker's completion bookkeeping to land.
	deadline := time.Now().Add(time.Second)
	for c.Outstanding() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := c.Outstanding(); got != 0 {
		t.Errorf("outstanding after completion = %d, want 0", got)
	}
}
